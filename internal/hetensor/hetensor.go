// Package hetensor is the tensor frontend for EVA: a library of homomorphic
// tensor kernels (convolution, polynomial activations, average pooling,
// fully-connected layers) that lower high-level neural-network layers onto
// EVA vector instructions, playing the role of CHET's kernel library in the
// paper (Section 7.2). Both the EVA pipeline and the CHET baseline compile
// the exact same kernels; only the downstream instruction insertion and
// scheduling differ, which is precisely the comparison the paper makes.
//
// Layout: each channel of a feature map is packed row-major into its own
// ciphertext (the HW layout of CHET). Convolutions use one rotation per
// kernel tap shared across output channels and one plaintext mask
// multiplication per (input channel, output channel, tap).
package hetensor

import (
	"fmt"

	"eva/internal/builder"
)

// Tensor is an encrypted feature map: one expression per channel, each
// holding an H×W image packed row-major.
type Tensor struct {
	Channels []builder.Expr
	H, W     int
}

// NumChannels returns the channel count.
func (t *Tensor) NumChannels() int { return len(t.Channels) }

// Vector is an encrypted flat vector (e.g. the activations of a
// fully-connected layer) packed into the first Length slots.
type Vector struct {
	Value  builder.Expr
	Length int
}

// Compiler lowers tensor operations onto a program builder.
type Compiler struct {
	b *builder.Builder
	// WeightScale is the log2 encoding scale for plaintext weights and masks.
	WeightScale float64
	// ScalarScale is the log2 encoding scale for scalar constants.
	ScalarScale float64
}

// NewCompiler wraps a program builder. weightScale and scalarScale are the
// log2 scales at which weights/masks and scalars are encoded (the Vector and
// Scalar columns of the paper's Table 4).
func NewCompiler(b *builder.Builder, weightScale, scalarScale float64) *Compiler {
	return &Compiler{b: b, WeightScale: weightScale, ScalarScale: scalarScale}
}

// Builder returns the underlying program builder.
func (c *Compiler) Builder() *builder.Builder { return c.b }

// InputImage declares an encrypted input image of `channels` channels of size
// h×w, one Cipher input per channel, encoded at the given log2 scale.
func (c *Compiler) InputImage(name string, channels, h, w int, logScale float64) (*Tensor, error) {
	if err := c.checkPlane(h, w); err != nil {
		return nil, err
	}
	if channels <= 0 {
		return nil, fmt.Errorf("hetensor: channel count must be positive")
	}
	t := &Tensor{H: h, W: w}
	for ch := 0; ch < channels; ch++ {
		t.Channels = append(t.Channels, c.b.InputWithWidth(fmt.Sprintf("%s_c%d", name, ch), h*w, logScale))
	}
	return t, c.b.Err()
}

func (c *Compiler) checkPlane(h, w int) error {
	if h <= 0 || w <= 0 || h*w > c.b.VecSize() {
		return fmt.Errorf("hetensor: plane %dx%d does not fit the %d-slot vector", h, w, c.b.VecSize())
	}
	if h*w&(h*w-1) != 0 {
		return fmt.Errorf("hetensor: plane size %d must be a power of two", h*w)
	}
	return nil
}

// Conv2D applies a same-padded, stride-1 convolution with plaintext weights
// weights[out][in][kh][kw] and per-output-channel bias (bias may be nil).
func (c *Compiler) Conv2D(kernel string, in *Tensor, weights [][][][]float64, bias []float64) (*Tensor, error) {
	if len(weights) == 0 || len(weights[0]) != in.NumChannels() {
		return nil, fmt.Errorf("hetensor: %s: weight shape mismatch (%d input channels, got %d)", kernel, in.NumChannels(), len(weights))
	}
	kh := len(weights[0][0])
	kw := len(weights[0][0][0])
	if kh%2 == 0 || kw%2 == 0 {
		return nil, fmt.Errorf("hetensor: %s: kernel %dx%d must have odd dimensions", kernel, kh, kw)
	}
	if bias != nil && len(bias) != len(weights) {
		return nil, fmt.Errorf("hetensor: %s: bias length %d does not match %d output channels", kernel, len(bias), len(weights))
	}
	c.b.SetKernel(kernel)
	ph, pw := kh/2, kw/2
	h, w := in.H, in.W
	outC := len(weights)

	// One rotation per (input channel, tap), shared across output channels.
	rotated := make([][]builder.Expr, in.NumChannels())
	for i := range rotated {
		rotated[i] = make([]builder.Expr, kh*kw)
		for dy := -ph; dy <= ph; dy++ {
			for dx := -pw; dx <= pw; dx++ {
				rotated[i][(dy+ph)*kw+(dx+pw)] = in.Channels[i].RotateLeft(dy*w + dx)
			}
		}
	}

	out := &Tensor{H: h, W: w}
	for o := 0; o < outC; o++ {
		var acc builder.Expr
		for i := 0; i < in.NumChannels(); i++ {
			for dy := -ph; dy <= ph; dy++ {
				for dx := -pw; dx <= pw; dx++ {
					wv := weights[o][i][dy+ph][dx+pw]
					if wv == 0 {
						continue
					}
					mask := convMask(h, w, dy, dx, wv)
					term := rotated[i][(dy+ph)*kw+(dx+pw)].MulVector(mask, c.WeightScale)
					if acc.Term() == nil {
						acc = term
					} else {
						acc = acc.Add(term)
					}
				}
			}
		}
		if acc.Term() == nil {
			acc = c.b.Scalar(0, c.WeightScale)
		}
		if bias != nil && bias[o] != 0 {
			acc = acc.AddScalar(bias[o], c.ScalarScale)
		}
		out.Channels = append(out.Channels, acc)
	}
	return out, c.b.Err()
}

// convMask builds the plaintext mask for one convolution tap: the weight
// value at every output position whose source pixel (shifted by dy, dx) is
// inside the image, and zero where the cyclic rotation would wrap across the
// border (realizing zero padding).
func convMask(h, w, dy, dx int, weight float64) []float64 {
	mask := make([]float64, h*w)
	for r := 0; r < h; r++ {
		for col := 0; col < w; col++ {
			sr, sc := r+dy, col+dx
			if sr >= 0 && sr < h && sc >= 0 && sc < w {
				mask[r*w+col] = weight
			}
		}
	}
	return mask
}

// Square applies the x² activation channel-wise.
func (c *Compiler) Square(kernel string, in *Tensor) *Tensor {
	c.b.SetKernel(kernel)
	out := &Tensor{H: in.H, W: in.W}
	for _, ch := range in.Channels {
		out.Channels = append(out.Channels, ch.Square())
	}
	return out
}

// PolyActivation applies the polynomial activation c0 + c1·x + c2·x² + ...
// channel-wise (the FHE-compatible replacement for ReLU).
func (c *Compiler) PolyActivation(kernel string, in *Tensor, coeffs []float64) *Tensor {
	c.b.SetKernel(kernel)
	out := &Tensor{H: in.H, W: in.W}
	for _, ch := range in.Channels {
		out.Channels = append(out.Channels, ch.Polynomial(coeffs, c.ScalarScale))
	}
	return out
}

// AvgPool2 performs 2×2 average pooling with stride 2 and repacks every
// channel into an (H/2)×(W/2) row-major image.
func (c *Compiler) AvgPool2(kernel string, in *Tensor) (*Tensor, error) {
	h, w := in.H, in.W
	if h%2 != 0 || w%2 != 0 || h < 2 || w < 2 {
		return nil, fmt.Errorf("hetensor: %s: cannot 2x2-pool a %dx%d plane", kernel, h, w)
	}
	c.b.SetKernel(kernel)
	oh, ow := h/2, w/2
	out := &Tensor{H: oh, W: ow}
	for _, ch := range in.Channels {
		// Window sums: value at (2r,2c) becomes the average of its 2x2 window.
		sum := ch.Add(ch.RotateLeft(1)).Add(ch.RotateLeft(w)).Add(ch.RotateLeft(w + 1))

		// Phase A: compact columns. After this step the value for output
		// column c' lives at (row, c') for even rows, still with row stride w.
		// The 1/4 averaging factor is folded into the phase-A masks.
		var colPacked builder.Expr
		for cp := 0; cp < ow; cp++ {
			mask := make([]float64, h*w)
			for r := 0; r < h; r += 2 {
				mask[r*w+cp] = 0.25
			}
			term := sum.RotateLeft(cp).MulVector(mask, c.WeightScale)
			if colPacked.Term() == nil {
				colPacked = term
			} else {
				colPacked = colPacked.Add(term)
			}
		}

		// Phase B: compact rows into the (H/2)×(W/2) layout.
		var packed builder.Expr
		for rp := 0; rp < oh; rp++ {
			src := 2 * rp * w
			dst := rp * ow
			mask := make([]float64, h*w)
			for cp := 0; cp < ow; cp++ {
				mask[dst+cp] = 1
			}
			term := colPacked.RotateLeft(src-dst).MulVector(mask, c.WeightScale)
			if packed.Term() == nil {
				packed = term
			} else {
				packed = packed.Add(term)
			}
		}
		out.Channels = append(out.Channels, packed)
	}
	return out, c.b.Err()
}

// GlobalAvgPool averages each channel into a single value held in slot 0 of
// the channel's ciphertext, returning them packed as a Vector (channel i in
// slot i).
func (c *Compiler) GlobalAvgPool(kernel string, in *Tensor) (*Vector, error) {
	c.b.SetKernel(kernel)
	n := in.H * in.W
	var packed builder.Expr
	for i, ch := range in.Channels {
		avg := ch.SumSlots(n).MulScalar(1/float64(n), c.ScalarScale)
		mask := make([]float64, i+1)
		mask[i] = 1
		term := avg.RotateRight(i).MulVector(padPow2(mask, len(in.Channels)), c.WeightScale)
		if packed.Term() == nil {
			packed = term
		} else {
			packed = packed.Add(term)
		}
	}
	return &Vector{Value: packed, Length: len(in.Channels)}, c.b.Err()
}

// FlattenFC flattens the tensor (channel-major) and applies a fully-connected
// layer with plaintext weights[out][in.NumChannels()*H*W] and bias (bias may
// be nil). Output neuron j lands in slot j of the result.
func (c *Compiler) FlattenFC(kernel string, in *Tensor, weights [][]float64, bias []float64) (*Vector, error) {
	n := in.H * in.W
	wantLen := in.NumChannels() * n
	if len(weights) == 0 || len(weights[0]) != wantLen {
		return nil, fmt.Errorf("hetensor: %s: weight row length %d, want %d", kernel, len(weights[0]), wantLen)
	}
	if bias != nil && len(bias) != len(weights) {
		return nil, fmt.Errorf("hetensor: %s: bias length mismatch", kernel)
	}
	c.b.SetKernel(kernel)
	outLen := len(weights)
	var packed builder.Expr
	for j := 0; j < outLen; j++ {
		// Dot product of the flattened input with row j, channel by channel.
		var dot builder.Expr
		for i, ch := range in.Channels {
			seg := weights[j][i*n : (i+1)*n]
			if allZero(seg) {
				continue
			}
			term := ch.DotPlain(seg, c.WeightScale, n)
			if dot.Term() == nil {
				dot = term
			} else {
				dot = dot.Add(term)
			}
		}
		if dot.Term() == nil {
			dot = c.b.Scalar(0, c.WeightScale)
		}
		// Place neuron j into slot j.
		mask := make([]float64, j+1)
		mask[j] = 1
		placed := dot.RotateRight(j).MulVector(padPow2(mask, outLen), c.WeightScale)
		if packed.Term() == nil {
			packed = placed
		} else {
			packed = packed.Add(placed)
		}
	}
	v := &Vector{Value: packed, Length: outLen}
	if bias != nil {
		v.Value = v.Value.Add(c.b.Constant(padPow2(bias, outLen), c.WeightScale))
	}
	return v, c.b.Err()
}

// FC applies a fully-connected layer to a packed vector: weights[out][in.Length].
func (c *Compiler) FC(kernel string, in *Vector, weights [][]float64, bias []float64) (*Vector, error) {
	if len(weights) == 0 || len(weights[0]) != in.Length {
		return nil, fmt.Errorf("hetensor: %s: weight row length %d, want %d", kernel, len(weights[0]), in.Length)
	}
	if bias != nil && len(bias) != len(weights) {
		return nil, fmt.Errorf("hetensor: %s: bias length mismatch", kernel)
	}
	c.b.SetKernel(kernel)
	width := nextPow2(in.Length)
	outLen := len(weights)
	var packed builder.Expr
	for j := 0; j < outLen; j++ {
		dot := in.Value.DotPlain(padPow2(weights[j], in.Length), c.WeightScale, width)
		mask := make([]float64, j+1)
		mask[j] = 1
		placed := dot.RotateRight(j).MulVector(padPow2(mask, outLen), c.WeightScale)
		if packed.Term() == nil {
			packed = placed
		} else {
			packed = packed.Add(placed)
		}
	}
	v := &Vector{Value: packed, Length: outLen}
	if bias != nil {
		v.Value = v.Value.Add(c.b.Constant(padPow2(bias, outLen), c.WeightScale))
	}
	return v, c.b.Err()
}

// Matmul applies a plaintext matrix weights[out][in.Length] (plus optional
// bias) to a packed vector using the diagonal method: with the matrix padded
// to n×n for n = nextPow2(max(rows, in.Length)),
//
//	y = Σ_d diag_d(W) ⊙ rot(x, d),   diag_d[i] = W[i][(i+d) mod n],
//
// so the whole product is n-1 rotations of the ONE source vector instead of
// one masked rotate-and-sum pipeline per output neuron (FC). All-zero
// diagonals are skipped, so sparse or band matrices rotate less. Because
// every rotation shares the same source term, the rewrite layer groups them
// into a single rotation set and the executor evaluates the entire matmul
// with one hoisted key-switch batch — this is the kernel whose end-to-end
// effect BenchmarkHetensorMatmul measures.
//
// The zero columns of the padded matrix make the product insensitive to
// whatever the replication of x carries beyond in.Length, and a final
// fold restores the packed-vector layout (period nextPow2(rows), zeros past
// rows), so Matmul chains with FC, GlobalAvgPool, and itself.
func (c *Compiler) Matmul(kernel string, in *Vector, weights [][]float64, bias []float64) (*Vector, error) {
	if len(weights) == 0 || len(weights[0]) != in.Length {
		return nil, fmt.Errorf("hetensor: %s: weight row length %d, want %d", kernel, len(weights[0]), in.Length)
	}
	if bias != nil && len(bias) != len(weights) {
		return nil, fmt.Errorf("hetensor: %s: bias length mismatch", kernel)
	}
	outLen := len(weights)
	n := nextPow2(max(outLen, in.Length))
	if n > c.b.VecSize() {
		return nil, fmt.Errorf("hetensor: %s: %dx%d matmul needs %d slots; vector has %d", kernel, outLen, in.Length, n, c.b.VecSize())
	}
	c.b.SetKernel(kernel)

	var acc builder.Expr
	for d := 0; d < n; d++ {
		diag := make([]float64, n)
		zero := true
		for i := 0; i < outLen; i++ {
			col := (i + d) % n
			if col >= in.Length {
				continue
			}
			if wv := weights[i][col]; wv != 0 {
				diag[i] = wv
				zero = false
			}
		}
		if zero {
			continue
		}
		src := in.Value
		if d != 0 {
			src = in.Value.RotateLeft(d)
		}
		term := src.MulVector(diag, c.WeightScale)
		if acc.Term() == nil {
			acc = term
		} else {
			acc = acc.Add(term)
		}
	}
	if acc.Term() == nil {
		acc = c.b.Scalar(0, c.WeightScale)
	}
	// Fold the period-n result down to the packed-vector period: slots
	// [outLen, n) are zero (padded matrix rows), so adding the q-step
	// rotations replicates the first window instead of mixing values.
	for q := nextPow2(outLen); q < n; q <<= 1 {
		acc = acc.Add(acc.RotateLeft(q))
	}
	v := &Vector{Value: acc, Length: outLen}
	if bias != nil {
		v.Value = v.Value.Add(c.b.Constant(padPow2(bias, outLen), c.WeightScale))
	}
	return v, c.b.Err()
}

// Output marks the packed vector as a program output.
func (c *Compiler) Output(name string, v *Vector, logScale float64) {
	c.b.Output(name, v.Value, logScale)
}

// padPow2 pads (or copies) values to the next power-of-two length.
func padPow2(values []float64, atLeast int) []float64 {
	n := nextPow2(max(len(values), atLeast))
	out := make([]float64, n)
	copy(out, values)
	return out
}

func nextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

func allZero(v []float64) bool {
	for _, x := range v {
		if x != 0 {
			return false
		}
	}
	return true
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
