package hetensor

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"eva/internal/builder"
	"eva/internal/execute"
)

// plainConv2D is an independent same-padded stride-1 convolution used to
// validate the homomorphic kernel's rotation/mask construction.
func plainConv2D(in [][]float64, h, w int, weights [][][][]float64, bias []float64) [][]float64 {
	outC := len(weights)
	kh := len(weights[0][0])
	kw := len(weights[0][0][0])
	ph, pw := kh/2, kw/2
	out := make([][]float64, outC)
	for o := 0; o < outC; o++ {
		out[o] = make([]float64, h*w)
		for r := 0; r < h; r++ {
			for c := 0; c < w; c++ {
				acc := 0.0
				for i := range in {
					for dy := -ph; dy <= ph; dy++ {
						for dx := -pw; dx <= pw; dx++ {
							sr, sc := r+dy, c+dx
							if sr < 0 || sr >= h || sc < 0 || sc >= w {
								continue
							}
							acc += weights[o][i][dy+ph][dx+pw] * in[i][sr*w+sc]
						}
					}
				}
				if bias != nil {
					acc += bias[o]
				}
				out[o][r*w+c] = acc
			}
		}
	}
	return out
}

func randKernel(rng *rand.Rand, outC, inC, k int) [][][][]float64 {
	w := make([][][][]float64, outC)
	for o := range w {
		w[o] = make([][][]float64, inC)
		for i := range w[o] {
			w[o][i] = make([][]float64, k)
			for y := range w[o][i] {
				w[o][i][y] = make([]float64, k)
				for x := range w[o][i][y] {
					w[o][i][y][x] = rng.Float64()*2 - 1
				}
			}
		}
	}
	return w
}

func randPlane(rng *rand.Rand, n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.Float64()*2 - 1
	}
	return v
}

// runReferenceTensor builds the program, runs the reference executor, and
// returns the named outputs.
func runRef(t *testing.T, b *builder.Builder, in execute.Inputs) map[string][]float64 {
	t.Helper()
	p, err := b.Program()
	if err != nil {
		t.Fatal(err)
	}
	out, err := execute.RunReference(p, in)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestConv2DMatchesPlain(t *testing.T) {
	const h, w = 8, 8
	rng := rand.New(rand.NewSource(1))
	b := builder.New("conv", h*w)
	tc := NewCompiler(b, 20, 15)
	in, err := tc.InputImage("image", 2, h, w, 30)
	if err != nil {
		t.Fatal(err)
	}
	weights := randKernel(rng, 3, 2, 3)
	bias := []float64{0.1, -0.2, 0.3}
	out, err := tc.Conv2D("conv1", in, weights, bias)
	if err != nil {
		t.Fatal(err)
	}
	for o, ch := range out.Channels {
		b.Output(fmt.Sprintf("out%d", o), ch, 30)
	}

	inputs := execute.Inputs{"image_c0": randPlane(rng, h*w), "image_c1": randPlane(rng, h*w)}
	got := runRef(t, b, inputs)
	want := plainConv2D([][]float64{inputs["image_c0"], inputs["image_c1"]}, h, w, weights, bias)
	for o := 0; o < 3; o++ {
		for p := 0; p < h*w; p++ {
			if math.Abs(got[fmt.Sprintf("out%d", o)][p]-want[o][p]) > 1e-9 {
				t.Fatalf("conv output channel %d pixel %d: got %g want %g", o, p, got[fmt.Sprintf("out%d", o)][p], want[o][p])
			}
		}
	}
}

func TestAvgPool2MatchesPlain(t *testing.T) {
	const h, w = 4, 8
	rng := rand.New(rand.NewSource(2))
	b := builder.New("pool", h*w)
	tc := NewCompiler(b, 20, 15)
	in, err := tc.InputImage("image", 1, h, w, 30)
	if err != nil {
		t.Fatal(err)
	}
	out, err := tc.AvgPool2("pool1", in)
	if err != nil {
		t.Fatal(err)
	}
	if out.H != 2 || out.W != 4 {
		t.Fatalf("pooled shape %dx%d, want 2x4", out.H, out.W)
	}
	b.Output("pooled", out.Channels[0], 30)

	img := randPlane(rng, h*w)
	got := runRef(t, b, execute.Inputs{"image_c0": img})["pooled"]
	for r := 0; r < 2; r++ {
		for c := 0; c < 4; c++ {
			want := (img[(2*r)*w+2*c] + img[(2*r)*w+2*c+1] + img[(2*r+1)*w+2*c] + img[(2*r+1)*w+2*c+1]) / 4
			if math.Abs(got[r*4+c]-want) > 1e-9 {
				t.Fatalf("pooled (%d,%d): got %g want %g", r, c, got[r*4+c], want)
			}
		}
	}
}

func TestActivations(t *testing.T) {
	const h, w = 4, 4
	b := builder.New("act", h*w)
	tc := NewCompiler(b, 20, 15)
	in, _ := tc.InputImage("image", 1, h, w, 30)
	sq := tc.Square("sq", in)
	poly := tc.PolyActivation("poly", in, []float64{1, 2, 3})
	b.Output("sq", sq.Channels[0], 30)
	b.Output("poly", poly.Channels[0], 30)
	img := make([]float64, h*w)
	for i := range img {
		img[i] = float64(i) / 8
	}
	got := runRef(t, b, execute.Inputs{"image_c0": img})
	for i, x := range img {
		if math.Abs(got["sq"][i]-x*x) > 1e-9 {
			t.Fatalf("square at %d: got %g want %g", i, got["sq"][i], x*x)
		}
		want := 1 + 2*x + 3*x*x
		if math.Abs(got["poly"][i]-want) > 1e-9 {
			t.Fatalf("poly at %d: got %g want %g", i, got["poly"][i], want)
		}
	}
}

func TestFlattenFCMatchesPlain(t *testing.T) {
	const h, w = 4, 4
	rng := rand.New(rand.NewSource(3))
	b := builder.New("fc", h*w)
	tc := NewCompiler(b, 20, 15)
	in, _ := tc.InputImage("image", 2, h, w, 30)
	weights := make([][]float64, 3)
	for j := range weights {
		weights[j] = randPlane(rng, 2*h*w)
	}
	bias := []float64{0.5, -0.5, 0.25}
	out, err := tc.FlattenFC("fc1", in, weights, bias)
	if err != nil {
		t.Fatal(err)
	}
	if out.Length != 3 {
		t.Fatalf("fc output length %d, want 3", out.Length)
	}
	b.Output("fc", out.Value, 30)

	inputs := execute.Inputs{"image_c0": randPlane(rng, h*w), "image_c1": randPlane(rng, h*w)}
	got := runRef(t, b, inputs)["fc"]
	for j := 0; j < 3; j++ {
		want := bias[j]
		for i := 0; i < h*w; i++ {
			want += weights[j][i]*inputs["image_c0"][i] + weights[j][h*w+i]*inputs["image_c1"][i]
		}
		if math.Abs(got[j]-want) > 1e-9 {
			t.Fatalf("fc neuron %d: got %g want %g", j, got[j], want)
		}
	}
}

func TestFCAndGlobalPool(t *testing.T) {
	const h, w = 4, 4
	rng := rand.New(rand.NewSource(4))
	b := builder.New("head", h*w)
	tc := NewCompiler(b, 20, 15)
	in, _ := tc.InputImage("image", 2, h, w, 30)

	gap, err := tc.GlobalAvgPool("gap", in)
	if err != nil {
		t.Fatal(err)
	}
	w2 := [][]float64{{1, 2}, {-1, 1}, {0.5, 0.5}}
	fc, err := tc.FC("fc", gap, w2, []float64{0, 1, -1})
	if err != nil {
		t.Fatal(err)
	}
	b.Output("gap", gap.Value, 30)
	b.Output("fc", fc.Value, 30)

	inputs := execute.Inputs{"image_c0": randPlane(rng, h*w), "image_c1": randPlane(rng, h*w)}
	got := runRef(t, b, inputs)
	means := make([]float64, 2)
	for c := 0; c < 2; c++ {
		for _, v := range inputs[fmt.Sprintf("image_c%d", c)] {
			means[c] += v
		}
		means[c] /= float64(h * w)
	}
	for c := 0; c < 2; c++ {
		if math.Abs(got["gap"][c]-means[c]) > 1e-9 {
			t.Fatalf("gap channel %d: got %g want %g", c, got["gap"][c], means[c])
		}
	}
	for j := 0; j < 3; j++ {
		want := w2[j][0]*means[0] + w2[j][1]*means[1] + []float64{0, 1, -1}[j]
		if math.Abs(got["fc"][j]-want) > 1e-9 {
			t.Fatalf("fc neuron %d: got %g want %g", j, got["fc"][j], want)
		}
	}
}

func TestKernelErrors(t *testing.T) {
	b := builder.New("err", 64)
	tc := NewCompiler(b, 20, 15)
	if _, err := tc.InputImage("image", 0, 8, 8, 30); err == nil {
		t.Error("expected error for zero channels")
	}
	if _, err := tc.InputImage("image", 1, 16, 16, 30); err == nil {
		t.Error("expected error for plane larger than the vector")
	}
	in, err := tc.InputImage("img", 1, 8, 8, 30)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tc.Conv2D("c", in, randKernel(rand.New(rand.NewSource(5)), 1, 2, 3), nil); err == nil {
		t.Error("expected error for channel mismatch")
	}
	if _, err := tc.Conv2D("c", in, randKernel(rand.New(rand.NewSource(6)), 1, 1, 2), nil); err == nil {
		t.Error("expected error for even kernel size")
	}
	if _, err := tc.Conv2D("c", in, randKernel(rand.New(rand.NewSource(7)), 2, 1, 3), []float64{1}); err == nil {
		t.Error("expected error for bias length mismatch")
	}
	if _, err := tc.FlattenFC("fc", in, [][]float64{make([]float64, 5)}, nil); err == nil {
		t.Error("expected error for FC weight shape mismatch")
	}
	if _, err := tc.FC("fc", &Vector{Value: in.Channels[0], Length: 8}, [][]float64{make([]float64, 5)}, nil); err == nil {
		t.Error("expected error for FC weight shape mismatch")
	}
	odd := &Tensor{Channels: in.Channels, H: 3, W: 3}
	if _, err := tc.AvgPool2("p", odd); err == nil {
		t.Error("expected error pooling an odd-sized plane")
	}
}
