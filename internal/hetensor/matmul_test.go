package hetensor

import (
	"math"
	"math/rand"
	"testing"

	"eva/internal/builder"
	"eva/internal/ckks"
	"eva/internal/compile"
	"eva/internal/execute"
)

func plainMatmul(weights [][]float64, x, bias []float64) []float64 {
	out := make([]float64, len(weights))
	for i, row := range weights {
		for j, w := range row {
			out[i] += w * x[j]
		}
		if bias != nil {
			out[i] += bias[i]
		}
	}
	return out
}

func randMatrix(rng *rand.Rand, rows, cols int) [][]float64 {
	w := make([][]float64, rows)
	for i := range w {
		w[i] = randPlane(rng, cols)
	}
	return w
}

// TestMatmulMatchesPlain validates the diagonal-method matmul on rectangular
// shapes in both directions (wide and tall) and chained with itself, against
// a plain matrix-vector product.
func TestMatmulMatchesPlain(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	b := builder.New("matmul", 32)
	tc := NewCompiler(b, 20, 15)
	x := &Vector{Value: b.InputWithWidth("x", 8, 30), Length: 5}

	wide := randMatrix(rng, 3, 5) // 5 -> 3: output shorter than input
	bias := []float64{0.5, -1, 0.25}
	mid, err := tc.Matmul("wide", x, wide, bias)
	if err != nil {
		t.Fatal(err)
	}
	if mid.Length != 3 {
		t.Fatalf("wide matmul length %d, want 3", mid.Length)
	}
	tall := randMatrix(rng, 6, 3) // 3 -> 6: output longer than input
	out, err := tc.Matmul("tall", mid, tall, nil)
	if err != nil {
		t.Fatal(err)
	}
	b.Output("mid", mid.Value, 30)
	b.Output("out", out.Value, 30)

	// The input vector is declared with width 8 (= nextPow2(5)) and the three
	// padding slots deliberately carry garbage: Matmul's zero weight columns
	// must make the product independent of them.
	xv := randPlane(rng, 8)
	got := runRef(t, b, execute.Inputs{"x": xv})
	wantMid := plainMatmul(wide, xv[:5], bias)
	for i, w := range wantMid {
		if math.Abs(got["mid"][i]-w) > 1e-9 {
			t.Fatalf("wide matmul neuron %d: got %g want %g", i, got["mid"][i], w)
		}
	}
	// The packed-vector invariant: zeros up to the period, then replication.
	if math.Abs(got["mid"][3]) > 1e-9 || math.Abs(got["mid"][4]-wantMid[0]) > 1e-9 {
		t.Fatalf("wide matmul layout broken: slots 3..4 = %v, want [0 %g]", got["mid"][3:5], wantMid[0])
	}
	wantOut := plainMatmul(tall, wantMid, nil)
	for i, w := range wantOut {
		if math.Abs(got["out"][i]-w) > 1e-9 {
			t.Fatalf("tall matmul neuron %d: got %g want %g", i, got["out"][i], w)
		}
	}
}

func TestMatmulErrors(t *testing.T) {
	b := builder.New("err", 8)
	tc := NewCompiler(b, 20, 15)
	x := &Vector{Value: b.InputWithWidth("x", 8, 30), Length: 8}
	if _, err := tc.Matmul("m", x, [][]float64{make([]float64, 5)}, nil); err == nil {
		t.Error("expected error for weight row length mismatch")
	}
	if _, err := tc.Matmul("m", x, randMatrix(rand.New(rand.NewSource(9)), 2, 8), []float64{1}); err == nil {
		t.Error("expected error for bias length mismatch")
	}
	if _, err := tc.Matmul("m", x, randMatrix(rand.New(rand.NewSource(10)), 16, 8), nil); err == nil {
		t.Error("expected error for matmul wider than the vector")
	}
}

// buildMatmulProgram compiles a dim x dim matmul over a vecSize-slot vector,
// the end-to-end workload of BenchmarkHetensorMatmul.
func buildMatmulProgram(tb testing.TB, vecSize, dim int) *compile.Result {
	tb.Helper()
	rng := rand.New(rand.NewSource(42))
	b := builder.New("matmul", vecSize)
	tc := NewCompiler(b, 25, 20)
	x := &Vector{Value: b.InputWithWidth("x", dim, 30), Length: dim}
	out, err := tc.Matmul("mm", x, randMatrix(rng, dim, dim), nil)
	if err != nil {
		tb.Fatal(err)
	}
	b.Output("y", out.Value, 30)
	p, err := b.Program()
	if err != nil {
		tb.Fatal(err)
	}
	res, err := compile.Compile(p, compile.Options{AllowInsecure: true})
	if err != nil {
		tb.Fatal(err)
	}
	return res
}

// TestMatmulDispatchesHoistedBatches runs a compiled matmul on the CKKS
// backend and checks that the executor evaluated its rotations as one hoisted
// batch (dim-1 shared-source rotations), and that the homomorphic result
// matches the plain product.
func TestMatmulDispatchesHoistedBatches(t *testing.T) {
	const dim = 8
	res := buildMatmulProgram(t, 64, dim)
	prng := ckks.NewTestPRNG(3)
	ctx, keys, err := execute.NewContext(res, prng)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	weights := randMatrix(rng, dim, dim) // same stream as buildMatmulProgram
	xv := randPlane(rng, dim)
	enc, err := execute.EncryptInputs(ctx, res, keys, execute.Inputs{"x": xv}, prng)
	if err != nil {
		t.Fatal(err)
	}
	out, err := execute.Run(ctx, res, enc, execute.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if out.Stats.HoistedBatches < 1 || out.Stats.HoistedRotations < dim-1 {
		t.Errorf("matmul run dispatched %d hoisted batches / %d rotations, want >= 1 / >= %d",
			out.Stats.HoistedBatches, out.Stats.HoistedRotations, dim-1)
	}
	dec, _ := execute.DecryptOutputs(ctx, res, keys, out)
	want := plainMatmul(weights, xv, nil)
	for i, w := range want {
		if math.Abs(dec["y"][i]-w) > 1e-3 {
			t.Fatalf("homomorphic matmul neuron %d: got %g want %g", i, dec["y"][i], w)
		}
	}
}

// BenchmarkHetensorMatmul is the end-to-end hoisting benchmark: one compiled
// 32x32 diagonal-method matmul executed on the CKKS backend. Its rotations
// dispatch as a single hoisted batch; compare against a run with
// DisableHoisting to see the end-to-end effect of sharing the decomposition.
func BenchmarkHetensorMatmul(b *testing.B) {
	benchmarkMatmul(b, execute.RunOptions{Scheduler: execute.SchedulerSequential})
}

// BenchmarkHetensorMatmulUnhoisted is the same workload with hoisting
// disabled — the baseline the CI gate compares BenchmarkHetensorMatmul
// against.
func BenchmarkHetensorMatmulUnhoisted(b *testing.B) {
	benchmarkMatmul(b, execute.RunOptions{Scheduler: execute.SchedulerSequential, DisableHoisting: true})
}

func benchmarkMatmul(b *testing.B, ropts execute.RunOptions) {
	const dim = 32
	res := buildMatmulProgram(b, 4096, dim)
	prng := ckks.NewTestPRNG(3)
	ctx, keys, err := execute.NewContext(res, prng)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	enc, err := execute.EncryptInputs(ctx, res, keys, execute.Inputs{"x": randPlane(rng, dim)}, prng)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := execute.Run(ctx, res, enc, ropts); err != nil {
			b.Fatal(err)
		}
	}
}
