package jobs

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// TestDrainWaitsForRunningJobs: Drain must reject new submissions
// immediately but let in-flight jobs finish, and report a clean drain.
func TestDrainWaitsForRunningJobs(t *testing.T) {
	m := NewManager(Config{Workers: 2, QueueDepth: 4})
	release := make(chan struct{})
	snap, err := m.Submit(1, 0, func(ctx context.Context, done func(int)) (any, error) {
		<-release
		return "finished", nil
	})
	if err != nil {
		t.Fatal(err)
	}

	drained := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		drained <- m.Drain(ctx)
	}()

	// Submissions during the drain are rejected with ErrClosed (503 at the
	// HTTP layer, not a retryable shed).
	deadline := time.After(2 * time.Second)
	for {
		_, err := m.Submit(1, 0, func(context.Context, func(int)) (any, error) { return nil, nil })
		if errors.Is(err, ErrClosed) {
			break
		}
		select {
		case <-deadline:
			t.Fatal("submissions were not rejected during drain")
		case <-time.After(time.Millisecond):
		}
	}

	close(release)
	if err := <-drained; err != nil {
		t.Fatalf("drain: %v", err)
	}
	got, _, fs := m.FetchResult(snap.ID)
	if fs != FetchOK || got != "finished" {
		t.Fatalf("after drain: result %v, fetch status %d", got, fs)
	}
}

// TestDrainDeadlineCancelsStragglers: a job that outlives the drain window
// is cancelled, and Drain reports the deadline error.
func TestDrainDeadlineCancelsStragglers(t *testing.T) {
	m := NewManager(Config{Workers: 1})
	started := make(chan struct{})
	snap, err := m.Submit(1, 0, func(ctx context.Context, done func(int)) (any, error) {
		close(started)
		<-ctx.Done() // never finishes on its own
		return nil, ctx.Err()
	})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := m.Drain(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("drain: %v, want deadline exceeded", err)
	}
	final, ok := m.Get(snap.ID)
	if !ok || final.Status != StatusCancelled {
		t.Fatalf("straggler status %v, want cancelled", final.Status)
	}
}

// TestOnFinishHook: the hook fires once per terminal job with the result
// (done) or nil (failed / cancelled-while-queued), and for worker-finished
// jobs it runs before the status turns terminal.
func TestOnFinishHook(t *testing.T) {
	var mu sync.Mutex
	finished := map[string]Snapshot{}
	results := map[string]any{}
	var m *Manager
	hookSawTerminal := make(map[string]bool)
	m = NewManager(Config{Workers: 1, QueueDepth: 8, OnFinish: func(snap Snapshot, result any) {
		mu.Lock()
		defer mu.Unlock()
		finished[snap.ID] = snap
		results[snap.ID] = result
		// At hook time a worker-finished job must not yet be externally
		// terminal: a racing fetch would be told FetchNotDone and retry.
		if live, ok := m.Get(snap.ID); ok {
			hookSawTerminal[snap.ID] = live.Status.Terminal()
		}
	}})
	defer m.Close()

	ok, err := m.Submit(2, 0, func(ctx context.Context, done func(int)) (any, error) {
		done(0)
		done(1)
		return 42, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	bad, err := m.Submit(1, 0, func(context.Context, func(int)) (any, error) {
		return nil, errors.New("boom")
	})
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, m, ok.ID)
	waitTerminal(t, m, bad.ID)

	mu.Lock()
	defer mu.Unlock()
	if snap := finished[ok.ID]; snap.Status != StatusDone || results[ok.ID] != 42 {
		t.Fatalf("done hook: %+v result %v", snap, results[ok.ID])
	}
	if snap := finished[bad.ID]; snap.Status != StatusFailed || results[bad.ID] != nil {
		t.Fatalf("failed hook: %+v result %v", snap, results[bad.ID])
	}
	for id, sawTerminal := range hookSawTerminal {
		if sawTerminal {
			t.Errorf("job %s was already terminal when its hook ran", id)
		}
	}
}

// TestOnFinishHookOnQueuedCancel: cancelling a job that never ran still
// fires the hook exactly once.
func TestOnFinishHookOnQueuedCancel(t *testing.T) {
	var mu sync.Mutex
	calls := map[string]int{}
	m := NewManager(Config{Workers: 1, QueueDepth: 8, OnFinish: func(snap Snapshot, _ any) {
		mu.Lock()
		calls[snap.ID]++
		mu.Unlock()
	}})
	defer m.Close()

	block := make(chan struct{})
	defer close(block)
	if _, err := m.Submit(1, 0, func(ctx context.Context, _ func(int)) (any, error) {
		select {
		case <-block:
		case <-ctx.Done():
		}
		return nil, nil
	}); err != nil {
		t.Fatal(err)
	}
	queued, err := m.Submit(1, 0, func(context.Context, func(int)) (any, error) { return nil, nil })
	if err != nil {
		t.Fatal(err)
	}
	if snap, ok := m.Cancel(queued.ID); !ok || snap.Status != StatusCancelled {
		t.Fatalf("cancel: %+v, %v", snap, ok)
	}
	mu.Lock()
	defer mu.Unlock()
	if calls[queued.ID] != 1 {
		t.Fatalf("hook ran %d times for a queued cancel, want 1", calls[queued.ID])
	}
}

func waitTerminal(t *testing.T, m *Manager, id string) Snapshot {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		snap, ok := m.Get(id)
		if !ok {
			t.Fatalf("job %s disappeared", id)
		}
		if snap.Status.Terminal() {
			return snap
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("job %s never reached a terminal status", id)
	return Snapshot{}
}
