package jobs

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// waitStatus polls until the job reaches a terminal or expected status.
func waitStatus(t *testing.T, m *Manager, id string, want Status) Snapshot {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		snap, ok := m.Get(id)
		if !ok {
			t.Fatalf("job %s disappeared while waiting for %s", id, want)
		}
		if snap.Status == want {
			return snap
		}
		if snap.Status.Terminal() && !want.Terminal() {
			t.Fatalf("job %s reached terminal %s while waiting for %s", id, snap.Status, want)
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("job %s never reached %s", id, want)
	return Snapshot{}
}

func TestJobLifecycleAndEvents(t *testing.T) {
	m := NewManager(Config{Workers: 1})
	defer m.Close()

	snap, err := m.Submit(3, 100, func(ctx context.Context, batchDone func(int)) (any, error) {
		for i := 0; i < 3; i++ {
			batchDone(i)
		}
		return "result-payload", nil
	})
	if err != nil {
		t.Fatal(err)
	}
	history, ch, unsub, ok := m.Subscribe(snap.ID)
	if !ok {
		t.Fatal("subscribe failed")
	}
	defer unsub()

	var events []Event
	events = append(events, history...)
	for e := range ch {
		events = append(events, e)
	}
	var types []string
	for _, e := range events {
		types = append(types, e.Type)
	}
	want := []string{"queued", "running", "batch", "batch", "batch", "done"}
	if fmt.Sprint(types) != fmt.Sprint(want) {
		t.Fatalf("event sequence %v; want %v", types, want)
	}
	if last := events[len(events)-1]; last.BatchesDone != 3 || last.Batches != 3 {
		t.Errorf("terminal event counts = %d/%d; want 3/3", last.BatchesDone, last.Batches)
	}

	res, final, fs := m.FetchResult(snap.ID)
	if fs != FetchOK || res != "result-payload" {
		t.Fatalf("FetchResult = %v, %v; want FetchOK with payload", res, fs)
	}
	if final.Status != StatusDone {
		t.Errorf("final status %s; want done", final.Status)
	}
	// Fetch-once: the second fetch is gone.
	if _, _, fs := m.FetchResult(snap.ID); fs != FetchGone {
		t.Errorf("second FetchResult = %v; want FetchGone", fs)
	}
}

func TestLateSubscriberReplaysHistory(t *testing.T) {
	m := NewManager(Config{Workers: 1})
	defer m.Close()
	snap, err := m.Submit(1, 0, func(ctx context.Context, batchDone func(int)) (any, error) {
		batchDone(0)
		return 42, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	waitStatus(t, m, snap.ID, StatusDone)
	history, ch, unsub, ok := m.Subscribe(snap.ID)
	if !ok {
		t.Fatal("subscribe failed")
	}
	defer unsub()
	if _, open := <-ch; open {
		t.Error("channel of finished job should be closed")
	}
	if n := len(history); n != 4 { // queued, running, batch, done
		t.Errorf("history has %d events; want 4", n)
	}
}

func TestQueueFullSheds(t *testing.T) {
	m := NewManager(Config{Workers: 1, QueueDepth: 1})
	defer m.Close()
	release := make(chan struct{})
	blocked := func(ctx context.Context, _ func(int)) (any, error) {
		select {
		case <-release:
		case <-ctx.Done():
		}
		return nil, ctx.Err()
	}
	first, err := m.Submit(1, 0, blocked)
	if err != nil {
		t.Fatal(err)
	}
	waitStatus(t, m, first.ID, StatusRunning) // worker busy; queue empty again
	if _, err := m.Submit(1, 0, blocked); err != nil {
		t.Fatalf("queue should hold one waiting job: %v", err)
	}
	_, err = m.Submit(1, 0, blocked)
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("third submit = %v; want ErrQueueFull", err)
	}
	if got := m.Stats().Shed; got != 1 {
		t.Errorf("shed count = %d; want 1", got)
	}
	close(release)
}

func TestMemoryBudgetAdmission(t *testing.T) {
	m := NewManager(Config{Workers: 1, QueueDepth: 8, MemoryBudgetBytes: 1000})
	defer m.Close()
	release := make(chan struct{})
	blocked := func(ctx context.Context, _ func(int)) (any, error) {
		select {
		case <-release:
		case <-ctx.Done():
		}
		return "ok", nil
	}
	if _, err := m.Submit(1, 600, blocked); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Submit(1, 600, blocked); !errors.Is(err, ErrOverBudget) {
		t.Fatalf("over-budget submit = %v; want ErrOverBudget", err)
	}
	if _, err := m.Submit(1, 2000, blocked); !errors.Is(err, ErrJobTooLarge) {
		t.Fatalf("oversized submit = %v; want ErrJobTooLarge", err)
	}
	st := m.Stats()
	if st.Shed != 1 || st.Rejected != 1 {
		t.Errorf("shed/rejected = %d/%d; want 1/1", st.Shed, st.Rejected)
	}
	if st.AdmittedBytes != 600 {
		t.Errorf("admitted = %d; want 600", st.AdmittedBytes)
	}
	close(release)
	// Budget is released once the job finishes, so a new job fits again.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if _, err := m.Submit(1, 600, func(ctx context.Context, _ func(int)) (any, error) { return nil, nil }); err == nil {
			break
		} else if !errors.Is(err, ErrOverBudget) {
			t.Fatal(err)
		}
		if time.Now().After(deadline) {
			t.Fatal("budget never released after job completion")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestCancelRunningJob(t *testing.T) {
	m := NewManager(Config{Workers: 1})
	defer m.Close()
	started := make(chan struct{})
	snap, err := m.Submit(1, 0, func(ctx context.Context, _ func(int)) (any, error) {
		close(started)
		<-ctx.Done()
		return nil, ctx.Err()
	})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	if _, ok := m.Cancel(snap.ID); !ok {
		t.Fatal("cancel: job not found")
	}
	final := waitStatus(t, m, snap.ID, StatusCancelled)
	if final.Status != StatusCancelled {
		t.Fatalf("status %s; want cancelled", final.Status)
	}
	if _, _, fs := m.FetchResult(snap.ID); fs != FetchGone {
		t.Errorf("FetchResult of cancelled job = %v; want FetchGone", fs)
	}
	if got := m.Stats().Cancelled; got != 1 {
		t.Errorf("cancelled count = %d; want 1", got)
	}
}

func TestCancelQueuedJob(t *testing.T) {
	m := NewManager(Config{Workers: 1, QueueDepth: 4})
	defer m.Close()
	release := make(chan struct{})
	defer close(release)
	first, err := m.Submit(1, 0, func(ctx context.Context, _ func(int)) (any, error) {
		select {
		case <-release:
		case <-ctx.Done():
		}
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	waitStatus(t, m, first.ID, StatusRunning)
	queued, err := m.Submit(1, 500, func(ctx context.Context, _ func(int)) (any, error) {
		t.Error("cancelled queued job must never run")
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	snap, ok := m.Cancel(queued.ID)
	if !ok || snap.Status != StatusCancelled {
		t.Fatalf("cancel queued = %+v, %v; want cancelled", snap, ok)
	}
	if got := m.Stats().AdmittedBytes; got != 0 {
		t.Errorf("admitted bytes after queue-cancel = %d; want 0", got)
	}
}

func TestFailedJob(t *testing.T) {
	m := NewManager(Config{Workers: 1})
	defer m.Close()
	snap, err := m.Submit(1, 0, func(ctx context.Context, _ func(int)) (any, error) {
		return nil, errors.New("boom")
	})
	if err != nil {
		t.Fatal(err)
	}
	final := waitStatus(t, m, snap.ID, StatusFailed)
	if final.Error != "boom" {
		t.Errorf("error = %q; want boom", final.Error)
	}
	if _, _, fs := m.FetchResult(snap.ID); fs != FetchGone {
		t.Errorf("FetchResult of failed job = %v; want FetchGone", fs)
	}
}

func TestResultTTLEviction(t *testing.T) {
	m := NewManager(Config{Workers: 1, ResultTTL: 30 * time.Millisecond})
	defer m.Close()
	snap, err := m.Submit(1, 0, func(ctx context.Context, _ func(int)) (any, error) { return "r", nil })
	if err != nil {
		t.Fatal(err)
	}
	waitStatus(t, m, snap.ID, StatusDone)
	deadline := time.Now().Add(10 * time.Second)
	for {
		if _, ok := m.Get(snap.ID); !ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job record never evicted after TTL")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if _, _, fs := m.FetchResult(snap.ID); fs != FetchNotFound {
		t.Errorf("FetchResult after TTL = %v; want FetchNotFound", fs)
	}
}

func TestFetchNotDone(t *testing.T) {
	m := NewManager(Config{Workers: 1})
	defer m.Close()
	release := make(chan struct{})
	defer close(release)
	snap, err := m.Submit(1, 0, func(ctx context.Context, _ func(int)) (any, error) {
		select {
		case <-release:
		case <-ctx.Done():
		}
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, fs := m.FetchResult(snap.ID); fs != FetchNotDone {
		t.Errorf("FetchResult of queued/running job = %v; want FetchNotDone", fs)
	}
}

// TestManagerCloseCancelsRunning: Close must propagate cancellation into
// running jobs and return once workers exit.
func TestManagerCloseCancelsRunning(t *testing.T) {
	m := NewManager(Config{Workers: 2})
	started := make(chan struct{})
	snap, err := m.Submit(1, 0, func(ctx context.Context, _ func(int)) (any, error) {
		close(started)
		<-ctx.Done()
		return nil, ctx.Err()
	})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	done := make(chan struct{})
	go func() { m.Close(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Close did not return")
	}
	if s, ok := m.Get(snap.ID); ok && s.Status != StatusCancelled {
		t.Errorf("running job after Close: %s; want cancelled", s.Status)
	}
	if _, err := m.Submit(1, 0, func(ctx context.Context, _ func(int)) (any, error) { return nil, nil }); !errors.Is(err, ErrClosed) {
		t.Errorf("submit after Close = %v; want ErrClosed", err)
	}
}

// TestJobPanicBecomesFailure: a panicking RunFunc must fail its own job,
// not kill the worker (or the process).
func TestJobPanicBecomesFailure(t *testing.T) {
	m := NewManager(Config{Workers: 1})
	defer m.Close()
	snap, err := m.Submit(1, 0, func(ctx context.Context, _ func(int)) (any, error) {
		panic("kaboom")
	})
	if err != nil {
		t.Fatal(err)
	}
	final := waitStatus(t, m, snap.ID, StatusFailed)
	if !strings.Contains(final.Error, "kaboom") {
		t.Errorf("error = %q; want the panic value", final.Error)
	}
	// The worker must survive the panic and keep draining the queue.
	again, err := m.Submit(1, 0, func(ctx context.Context, _ func(int)) (any, error) { return "ok", nil })
	if err != nil {
		t.Fatal(err)
	}
	waitStatus(t, m, again.ID, StatusDone)
}

// TestCloseFinalizesQueuedJobs: Close must cancel jobs still in the queue
// so their subscribers see the stream end instead of hanging forever.
func TestCloseFinalizesQueuedJobs(t *testing.T) {
	m := NewManager(Config{Workers: 1, QueueDepth: 4})
	started := make(chan struct{})
	if _, err := m.Submit(1, 0, func(ctx context.Context, _ func(int)) (any, error) {
		close(started)
		<-ctx.Done()
		return nil, ctx.Err()
	}); err != nil {
		t.Fatal(err)
	}
	<-started
	queued, err := m.Submit(1, 100, func(ctx context.Context, _ func(int)) (any, error) {
		t.Error("queued job must not run after Close")
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	_, ch, unsub, ok := m.Subscribe(queued.ID)
	if !ok {
		t.Fatal("subscribe failed")
	}
	defer unsub()
	m.Close()
	// The subscriber channel must close (via the terminal event) promptly.
	deadline := time.After(10 * time.Second)
	for {
		select {
		case ev, open := <-ch:
			if !open {
				goto drained
			}
			if ev.Type == string(StatusCancelled) && ev.Error == "" {
				t.Error("terminal event without reason")
			}
		case <-deadline:
			t.Fatal("subscriber channel never closed after Close")
		}
	}
drained:
	snap, ok := m.Get(queued.ID)
	if !ok || snap.Status != StatusCancelled {
		t.Fatalf("queued job after Close = %+v, %v; want cancelled", snap, ok)
	}
	if got := m.Stats().AdmittedBytes; got != 0 {
		t.Errorf("admitted bytes after Close = %d; want 0", got)
	}
}

// TestConcurrentSubmitters hammers admission control from many goroutines;
// run with -race. Every accepted job must complete exactly once.
func TestConcurrentSubmitters(t *testing.T) {
	m := NewManager(Config{Workers: 4, QueueDepth: 16, MemoryBudgetBytes: 1 << 20})
	defer m.Close()
	var mu sync.Mutex
	completed := map[string]bool{}
	var wg sync.WaitGroup
	var accepted, shed int64
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				snap, err := m.Submit(2, 1024, func(ctx context.Context, batchDone func(int)) (any, error) {
					batchDone(0)
					batchDone(1)
					return "ok", nil
				})
				mu.Lock()
				if err != nil {
					shed++
				} else {
					accepted++
					completed[snap.ID] = false
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	mu.Lock()
	ids := make([]string, 0, len(completed))
	for id := range completed {
		ids = append(ids, id)
	}
	mu.Unlock()
	for _, id := range ids {
		snap := waitStatus(t, m, id, StatusDone)
		if snap.BatchesDone != 2 {
			t.Errorf("job %s finished %d batches; want 2", id, snap.BatchesDone)
		}
	}
	st := m.Stats()
	if st.Completed != uint64(len(ids)) {
		t.Errorf("completed = %d; want %d", st.Completed, len(ids))
	}
	if st.AdmittedBytes != 0 {
		t.Errorf("admitted bytes after drain = %d; want 0", st.AdmittedBytes)
	}
	t.Logf("accepted %d, shed %d", accepted, shed)
}
