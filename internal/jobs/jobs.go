// Package jobs is evaserve's asynchronous execution subsystem: a bounded
// FIFO queue drained by a fixed worker pool, with admission control that
// sheds load when the estimated resident ciphertext footprint of all
// admitted work exceeds a configurable budget. Submitting returns
// immediately with a job id; progress (queued → running → per-batch done →
// terminal) is published as an ordered event stream that late subscribers
// replay from the start, and results are fetchable exactly once before a
// TTL evicts them.
//
// The package is deliberately generic: a job is a closure, the estimated
// footprint is computed by the caller (evaserve combines the uploaded
// ciphertexts' MemoryBytes with the analysis cost model's static peak
// estimate), and nothing here depends on the FHE stack — which keeps the
// queueing discipline independently testable.
package jobs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"log/slog"
	"sync"
	"time"

	"eva/internal/obs"
)

// Status is a job's lifecycle state.
type Status string

const (
	StatusQueued    Status = "queued"
	StatusRunning   Status = "running"
	StatusDone      Status = "done"
	StatusFailed    Status = "failed"
	StatusCancelled Status = "cancelled"
)

// Terminal reports whether a job in this status will never change again.
func (s Status) Terminal() bool {
	return s == StatusDone || s == StatusFailed || s == StatusCancelled
}

// Event is one entry of a job's ordered progress stream.
type Event struct {
	// Type is "queued", "running", "batch" (one batch finished), or the
	// terminal status ("done", "failed", "cancelled").
	Type string `json:"type"`
	Job  string `json:"job_id"`
	// Batch is the 1-based index of the batch that just finished (type "batch").
	Batch       int    `json:"batch,omitempty"`
	Batches     int    `json:"batches"`
	BatchesDone int    `json:"batches_done"`
	Error       string `json:"error,omitempty"`
	// ElapsedMillis is the time since the job was submitted.
	ElapsedMillis float64 `json:"elapsed_ms"`
}

// RunFunc executes one admitted job. ctx is cancelled when the job is
// cancelled or the manager shuts down; batchDone must be called once per
// finished batch with its 0-based index.
type RunFunc func(ctx context.Context, batchDone func(batch int)) (result any, err error)

// Config configures a Manager. Zero values select the documented defaults.
type Config struct {
	// Workers is the number of jobs executed concurrently (default 2). Each
	// job may itself parallelize internally, so this is intentionally far
	// smaller than GOMAXPROCS.
	Workers int
	// QueueDepth bounds how many admitted jobs may wait for a worker
	// (default 64); submissions beyond it fail with ErrQueueFull.
	QueueDepth int
	// MemoryBudgetBytes bounds the summed footprint estimate of every
	// queued or running job (default 8 GiB); submissions that would exceed
	// it fail with ErrOverBudget, and a single job estimated over the whole
	// budget fails with ErrJobTooLarge.
	MemoryBudgetBytes int64
	// ResultTTL is how long a finished job (and its result, if not yet
	// fetched) is retained before eviction (default 2 minutes).
	ResultTTL time.Duration
	// OnFinish, when non-nil, is called once per job as it reaches a
	// terminal status, with the job's final snapshot and — for StatusDone
	// only — its result. evaserve uses it to persist completed results to
	// the durable artifact store before the TTL evicts the in-memory copy;
	// a cluster tier can use it as a requeue/bookkeeping hook. It is called
	// synchronously with no manager locks held; for jobs that finish on a
	// worker the hook runs before the job's status turns terminal, so any
	// client that observes "done" can already rely on the hook's side
	// effects (a persisted result is durable before the result is visible).
	OnFinish func(snap Snapshot, result any)
	// Logger receives structured lifecycle records (admission sheds at
	// debug, job completion at debug, failures at warn). Nil discards.
	Logger *slog.Logger
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.MemoryBudgetBytes <= 0 {
		c.MemoryBudgetBytes = 8 << 30
	}
	if c.ResultTTL <= 0 {
		c.ResultTTL = 2 * time.Minute
	}
	if c.Logger == nil {
		c.Logger = obs.NopLogger()
	}
	return c
}

// Admission errors. Both ErrQueueFull and ErrOverBudget are transient — the
// client should retry after a backoff — while ErrJobTooLarge can never be
// admitted by this instance.
var (
	ErrQueueFull   = errors.New("jobs: queue is full")
	ErrOverBudget  = errors.New("jobs: admitted memory budget exhausted")
	ErrJobTooLarge = errors.New("jobs: job exceeds the whole memory budget")
	// ErrClosed rejects submissions during shutdown (HTTP 503, not a shed).
	ErrClosed = errors.New("jobs: manager is closed")
)

// job is the manager-internal record.
type job struct {
	id      string
	batches int
	est     int64
	run     RunFunc

	mu          sync.Mutex
	status      Status
	err         string
	batchesDone int
	events      []Event
	subs        map[chan Event]struct{}
	result      any
	fetched     bool
	cancelRun   context.CancelFunc // non-nil while running
	created     time.Time
	started     time.Time
	finished    time.Time
}

// Snapshot is a point-in-time public view of a job.
type Snapshot struct {
	ID          string
	Status      Status
	Batches     int
	BatchesDone int
	EstBytes    int64
	Error       string
	Created     time.Time
	Started     time.Time
	Finished    time.Time
}

// Stats is the manager's aggregate counters, exposed via evaserve /metrics.
type Stats struct {
	QueueDepth    int   `json:"queue_depth"`
	Running       int   `json:"running"`
	AdmittedBytes int64 `json:"admitted_bytes"`
	BudgetBytes   int64 `json:"budget_bytes"`
	Workers       int   `json:"workers"`
	// Shed counts submissions rejected by admission control (queue full or
	// over budget); Rejected counts jobs too large to ever admit.
	Shed      uint64 `json:"shed"`
	Rejected  uint64 `json:"rejected"`
	Submitted uint64 `json:"submitted"`
	Completed uint64 `json:"completed"`
	Failed    uint64 `json:"failed"`
	Cancelled uint64 `json:"cancelled"`
	// TotalWaitMillis sums every started job's queue wait; with Completed+
	// Failed+Cancelled it yields the mean wait.
	TotalWaitMillis float64 `json:"total_wait_ms"`
}

// Manager owns the queue, the worker pool, and the job table.
type Manager struct {
	cfg        Config
	root       context.Context
	rootCancel context.CancelFunc
	wg         sync.WaitGroup

	mu       sync.Mutex
	jobs     map[string]*job
	queue    chan *job
	queued   int
	running  int
	admitted int64
	stats    Stats
	closed   bool
	draining bool
}

// NewManager starts a manager and its worker pool.
func NewManager(cfg Config) *Manager {
	cfg = cfg.withDefaults()
	root, cancel := context.WithCancel(context.Background())
	m := &Manager{
		cfg:        cfg,
		root:       root,
		rootCancel: cancel,
		jobs:       map[string]*job{},
		queue:      make(chan *job, cfg.QueueDepth),
	}
	for i := 0; i < cfg.Workers; i++ {
		m.wg.Add(1)
		go m.worker()
	}
	return m
}

// Close cancels every running job, stops the workers, waits for them, and
// finalizes jobs still sitting in the queue as cancelled — otherwise a
// queued job would stay non-terminal forever and its event subscribers
// would never see the stream close.
func (m *Manager) Close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		m.wg.Wait()
		return
	}
	m.closed = true
	m.mu.Unlock()
	m.rootCancel()
	m.wg.Wait()
	for {
		select {
		case j := <-m.queue:
			m.cancelPopped(j, "manager closed while job was queued")
		default:
			return
		}
	}
}

// cancelPopped finalizes a job popped from the queue that must not run
// (shutdown, or cancelled while queued): it is moved to cancelled if still
// queued, and the queue-depth/admission accounting is settled either way.
func (m *Manager) cancelPopped(j *job, reason string) {
	j.mu.Lock()
	stillQueued := j.status == StatusQueued
	if stillQueued {
		j.finishLocked(StatusCancelled, reason)
	}
	j.mu.Unlock()
	m.mu.Lock()
	m.queued--
	m.mu.Unlock()
	if stillQueued {
		m.finalize(j, StatusCancelled, true)
		if m.cfg.OnFinish != nil {
			m.cfg.OnFinish(j.snapshot(), nil)
		}
	}
}

// Drain gracefully shuts the manager down: new submissions are rejected
// with ErrClosed immediately, and queued plus running jobs are given until
// ctx expires to finish naturally. Whatever is still unfinished when the
// deadline passes is cancelled by the final Close. Drain returns nil when
// everything completed in time and ctx.Err() when the deadline cut the
// remainder off; either way the manager is fully closed on return.
func (m *Manager) Drain(ctx context.Context) error {
	m.mu.Lock()
	m.draining = true
	m.mu.Unlock()
	var err error
poll:
	for {
		m.mu.Lock()
		idle := m.queued == 0 && m.running == 0
		m.mu.Unlock()
		if idle {
			break
		}
		select {
		case <-ctx.Done():
			err = ctx.Err()
			break poll
		case <-time.After(10 * time.Millisecond):
		}
	}
	m.Close()
	return err
}

// Config returns the effective (defaulted) configuration.
func (m *Manager) Config() Config { return m.cfg }

// Submit admits a job or rejects it with ErrQueueFull, ErrOverBudget, or
// ErrJobTooLarge. estBytes is the caller's footprint estimate; batches is the
// number of batchDone calls run will make.
func (m *Manager) Submit(batches int, estBytes int64, run RunFunc) (Snapshot, error) {
	id, err := NewID()
	if err != nil {
		return Snapshot{}, err
	}
	return m.SubmitWithID(id, batches, estBytes, run)
}

// SubmitWithID is Submit with a caller-minted id (see NewID). Submit makes
// the job visible to workers before it returns, so a caller that must bind
// the id to external state first — evaserve binds job ids to traces before
// the finish hook can fire — mints the id, binds it, then submits.
func (m *Manager) SubmitWithID(id string, batches int, estBytes int64, run RunFunc) (Snapshot, error) {
	if id == "" {
		return Snapshot{}, errors.New("jobs: empty job id")
	}
	if batches < 1 {
		batches = 1
	}
	if estBytes < 0 {
		estBytes = 0
	}
	j := &job{
		id:      id,
		batches: batches,
		est:     estBytes,
		run:     run,
		status:  StatusQueued,
		subs:    map[chan Event]struct{}{},
		created: time.Now(),
	}

	m.mu.Lock()
	if m.closed || m.draining {
		m.mu.Unlock()
		return Snapshot{}, ErrClosed
	}
	if _, dup := m.jobs[id]; dup {
		m.mu.Unlock()
		return Snapshot{}, fmt.Errorf("jobs: duplicate job id %q", id)
	}
	if estBytes > m.cfg.MemoryBudgetBytes {
		m.stats.Rejected++
		m.mu.Unlock()
		m.cfg.Logger.Debug("job rejected: too large", slog.String(obs.LogJobID, id), slog.Int64("est_bytes", estBytes))
		return Snapshot{}, fmt.Errorf("%w: estimated %d bytes, budget %d", ErrJobTooLarge, estBytes, m.cfg.MemoryBudgetBytes)
	}
	if m.admitted+estBytes > m.cfg.MemoryBudgetBytes {
		admitted := m.admitted
		m.stats.Shed++
		m.mu.Unlock()
		m.cfg.Logger.Debug("job shed: over budget", slog.String(obs.LogJobID, id), slog.Int64("est_bytes", estBytes), slog.Int64("admitted_bytes", admitted))
		return Snapshot{}, fmt.Errorf("%w: %d bytes admitted, job needs %d, budget %d", ErrOverBudget, admitted, estBytes, m.cfg.MemoryBudgetBytes)
	}
	// Record the queued event before the job becomes visible to a worker, so
	// the event order is strict even when a worker pops it immediately.
	j.emit("queued")
	select {
	case m.queue <- j:
	default:
		m.stats.Shed++
		m.mu.Unlock()
		m.cfg.Logger.Debug("job shed: queue full", slog.String(obs.LogJobID, id))
		return Snapshot{}, fmt.Errorf("%w: %d jobs queued", ErrQueueFull, m.cfg.QueueDepth)
	}
	m.admitted += estBytes
	m.queued++
	m.stats.Submitted++
	m.jobs[id] = j
	m.mu.Unlock()
	return j.snapshot(), nil
}

// Get returns a job's current state.
func (m *Manager) Get(id string) (Snapshot, bool) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	m.mu.Unlock()
	if !ok {
		return Snapshot{}, false
	}
	return j.snapshot(), true
}

// Cancel cancels a queued or running job. Cancelling a terminal job is a
// no-op that returns its snapshot.
func (m *Manager) Cancel(id string) (Snapshot, bool) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	m.mu.Unlock()
	if !ok {
		return Snapshot{}, false
	}
	j.mu.Lock()
	switch j.status {
	case StatusQueued:
		// The worker that eventually pops it observes the status and skips.
		j.finishLocked(StatusCancelled, "cancelled while queued")
		j.mu.Unlock()
		m.finalize(j, StatusCancelled, true)
		if m.cfg.OnFinish != nil {
			m.cfg.OnFinish(j.snapshot(), nil)
		}
	case StatusRunning:
		cancel := j.cancelRun
		j.mu.Unlock()
		if cancel != nil {
			cancel() // the worker finalizes with StatusCancelled
		}
	default:
		j.mu.Unlock()
	}
	return j.snapshot(), true
}

// FetchStatus is the outcome of FetchResult.
type FetchStatus int

const (
	// FetchOK: the result is returned and is now evicted (fetch-once).
	FetchOK FetchStatus = iota
	// FetchNotFound: unknown or already evicted job id.
	FetchNotFound
	// FetchNotDone: the job has not reached a terminal status yet.
	FetchNotDone
	// FetchGone: the job finished but its result was already fetched, the
	// job failed or was cancelled, or the TTL evicted the result.
	FetchGone
)

// FetchResult returns a finished job's result exactly once.
func (m *Manager) FetchResult(id string) (any, Snapshot, FetchStatus) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	m.mu.Unlock()
	if !ok {
		return nil, Snapshot{}, FetchNotFound
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	snap := j.snapshotLocked()
	if !j.status.Terminal() {
		return nil, snap, FetchNotDone
	}
	if j.status != StatusDone || j.fetched {
		return nil, snap, FetchGone
	}
	res := j.result
	j.result = nil
	j.fetched = true
	return res, snap, FetchOK
}

// Subscribe returns the job's event history so far plus a channel of future
// events. The channel is closed after the terminal event; closing is the
// only way it ends, so a subscriber to a finished job gets the full history
// and an already-closed channel. unsubscribe is idempotent and must be
// called when the subscriber stops reading early.
func (m *Manager) Subscribe(id string) (history []Event, ch <-chan Event, unsubscribe func(), ok bool) {
	m.mu.Lock()
	j, exists := m.jobs[id]
	m.mu.Unlock()
	if !exists {
		return nil, nil, nil, false
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	history = append([]Event(nil), j.events...)
	// Future events per job are bounded (batches + running + terminal), so a
	// channel with that capacity can never block the worker.
	c := make(chan Event, j.batches+4)
	if j.status.Terminal() {
		close(c)
		return history, c, func() {}, true
	}
	j.subs[c] = struct{}{}
	var once sync.Once
	unsubscribe = func() {
		once.Do(func() {
			j.mu.Lock()
			if _, live := j.subs[c]; live {
				delete(j.subs, c)
				close(c)
			}
			j.mu.Unlock()
		})
	}
	return history, c, unsubscribe, true
}

// Stats snapshots the aggregate counters.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := m.stats
	s.QueueDepth = m.queued
	s.Running = m.running
	s.AdmittedBytes = m.admitted
	s.BudgetBytes = m.cfg.MemoryBudgetBytes
	s.Workers = m.cfg.Workers
	return s
}

// worker drains the queue until the manager closes.
func (m *Manager) worker() {
	defer m.wg.Done()
	for {
		select {
		case <-m.root.Done():
			return
		case j := <-m.queue:
			m.runJob(j)
		}
	}
}

// runJob executes one popped job end to end.
func (m *Manager) runJob(j *job) {
	// The worker's select may pick a queued job over the closed root
	// context; a job popped after shutdown began must not start.
	if m.root.Err() != nil {
		m.cancelPopped(j, "manager closed while job was queued")
		return
	}
	j.mu.Lock()
	if j.status != StatusQueued {
		// Cancelled while queued; accounting was already released.
		j.mu.Unlock()
		m.mu.Lock()
		m.queued--
		m.mu.Unlock()
		return
	}
	jctx, cancel := context.WithCancel(m.root)
	defer cancel()
	j.status = StatusRunning
	j.started = time.Now()
	j.cancelRun = cancel
	wait := j.started.Sub(j.created)
	j.mu.Unlock()

	m.mu.Lock()
	m.queued--
	m.running++
	m.stats.TotalWaitMillis += float64(wait) / float64(time.Millisecond)
	m.mu.Unlock()
	j.emit("running")

	result, err := j.safeRun(jctx, func(batch int) {
		j.mu.Lock()
		j.batchesDone++
		j.mu.Unlock()
		j.emitBatch(batch + 1)
	})

	status := StatusDone
	msg := ""
	switch {
	case jctx.Err() != nil:
		status, msg = StatusCancelled, jctx.Err().Error()
	case err != nil:
		status, msg = StatusFailed, err.Error()
	}
	if status != StatusDone {
		result = nil
	}
	// Run the finish hook before the status turns terminal: a poller that
	// observes "done" (and immediately fetches the result) is then
	// guaranteed the hook's side effects — e.g. the durable copy of the
	// result — already happened. A fetch racing ahead of the transition
	// gets FetchNotDone and retries.
	if m.cfg.OnFinish != nil {
		snap := j.snapshot()
		snap.Status, snap.Error, snap.Finished = status, msg, time.Now()
		m.cfg.OnFinish(snap, result)
	}
	j.mu.Lock()
	j.cancelRun = nil
	j.result = result
	j.finishLocked(status, msg)
	run := j.finished.Sub(j.started)
	j.mu.Unlock()
	m.finalize(j, status, false)
	attrs := []any{
		slog.String(obs.LogJobID, j.id),
		slog.String("status", string(status)),
		slog.Duration("wait", wait),
		slog.Duration("run", run),
	}
	if status == StatusFailed {
		m.cfg.Logger.Warn("job failed", append(attrs, slog.String("error", msg))...)
	} else {
		m.cfg.Logger.Debug("job finished", attrs...)
	}
}

// safeRun invokes the job's RunFunc, converting a panic into an ordinary
// job failure: the worker goroutine has no net/http-style recovery above
// it, so an escaping panic would kill the whole process and drop every
// other queued and running job.
func (j *job) safeRun(ctx context.Context, batchDone func(int)) (result any, err error) {
	defer func() {
		if r := recover(); r != nil {
			result, err = nil, fmt.Errorf("jobs: job panicked: %v", r)
		}
	}()
	return j.run(ctx, batchDone)
}

// finalize releases a finished job's admission accounting, bumps the outcome
// counters, and schedules the TTL eviction of the whole record.
func (m *Manager) finalize(j *job, status Status, wasQueued bool) {
	m.mu.Lock()
	m.admitted -= j.est
	if wasQueued {
		// Queue-cancelled jobs leave m.queued to the worker that pops the
		// stale entry, so depth keeps matching the channel.
	} else {
		m.running--
	}
	switch status {
	case StatusDone:
		m.stats.Completed++
	case StatusFailed:
		m.stats.Failed++
	case StatusCancelled:
		m.stats.Cancelled++
	}
	m.mu.Unlock()
	time.AfterFunc(m.cfg.ResultTTL, func() {
		m.mu.Lock()
		delete(m.jobs, j.id)
		m.mu.Unlock()
	})
}

// finishLocked moves the job to a terminal status, emits the terminal event,
// and closes every subscriber. Caller holds j.mu.
func (j *job) finishLocked(status Status, errMsg string) {
	j.status = status
	j.err = errMsg
	j.run = nil // release everything the closure pinned (inputs, contexts)
	j.finished = time.Now()
	j.appendEventLocked(Event{Type: string(status), Error: errMsg})
	for c := range j.subs {
		delete(j.subs, c)
		close(c)
	}
}

func (j *job) emit(typ string) {
	j.mu.Lock()
	j.appendEventLocked(Event{Type: typ})
	j.mu.Unlock()
}

func (j *job) emitBatch(batch int) {
	j.mu.Lock()
	j.appendEventLocked(Event{Type: "batch", Batch: batch})
	j.mu.Unlock()
}

// appendEventLocked stamps the event, records it in the history, and fans it
// out to subscribers. Caller holds j.mu; subscriber channels are sized so the
// sends can never block.
func (j *job) appendEventLocked(e Event) {
	e.Job = j.id
	e.Batches = j.batches
	e.BatchesDone = j.batchesDone
	e.ElapsedMillis = float64(time.Since(j.created)) / float64(time.Millisecond)
	j.events = append(j.events, e)
	for c := range j.subs {
		select {
		case c <- e:
		default: // unreachable by construction; never block the worker
		}
	}
}

func (j *job) snapshot() Snapshot {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.snapshotLocked()
}

func (j *job) snapshotLocked() Snapshot {
	return Snapshot{
		ID:          j.id,
		Status:      j.status,
		Batches:     j.batches,
		BatchesDone: j.batchesDone,
		EstBytes:    j.est,
		Error:       j.err,
		Created:     j.created,
		Started:     j.started,
		Finished:    j.finished,
	}
}

// NewID mints a job id. Exported so callers that must know the id before
// the job becomes visible (see SubmitWithID) can pre-mint it.
func NewID() (string, error) {
	var b [12]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "", fmt.Errorf("jobs: generating id: %w", err)
	}
	return hex.EncodeToString(b[:]), nil
}
