// Package compile implements the EVA compiler driver (Algorithm 1 of the
// paper): it transforms an input program to satisfy every constraint of the
// target RNS-CKKS scheme, validates the result, selects encryption
// parameters, and selects the rotation steps for which Galois keys are
// needed. The output is everything required to generate keys and execute the
// program against the CKKS backend.
package compile

import (
	"fmt"
	"math"

	"eva/internal/analysis"
	"eva/internal/ckks"
	"eva/internal/core"
	"eva/internal/rewrite"
)

// Options configures a compilation.
type Options struct {
	// MaxRescaleLog is log2 of the maximum rescale value s_f (default 60,
	// SEAL's limit).
	MaxRescaleLog float64
	// WaterlineLog overrides the waterline s_w; zero means "maximum input
	// scale", the paper's default.
	WaterlineLog float64
	// Rescale and ModSwitch select the insertion strategies; the zero values
	// are the paper's defaults (waterline + eager).
	Rescale   rewrite.RescaleStrategy
	ModSwitch rewrite.ModSwitchStrategy
	// MinLogN lower-bounds the ring degree (defaults to what the program's
	// vector size requires).
	MinLogN int
	// AllowInsecure permits parameter sets below the 128-bit security level.
	// It exists for unit tests and scaled-down benchmarks only.
	AllowInsecure bool
	// Optimize enables the frontend optimizations (common-subexpression
	// elimination and plain-constant folding) before the FHE-specific passes.
	// They preserve reference semantics exactly and only reduce work.
	Optimize bool
	// ExtraLevels prepends this many waterline-sized primes to the modulus
	// chain beyond what the program itself consumes. Pipelined programs use
	// it to compile every stage against one shared chain: a downstream stage
	// compiled with headroom for its upstream stages' consumed levels accepts
	// their lower-level output ciphertexts directly, without bootstrapping or
	// re-encryption. The option is part of the program's registry identity,
	// so the same source compiled with different headroom caches separately.
	ExtraLevels int
}

// DefaultOptions returns the paper's default compilation pipeline.
func DefaultOptions() Options { return Options{MaxRescaleLog: 60} }

// Result is a compiled EVA program: the transformed program, the encryption
// parameter plan, the rotation steps, and the per-term analyses the executor
// relies on.
type Result struct {
	// Program is the transformed, validated program (the input is not mutated).
	Program *core.Program
	// Plan is the encryption-parameter selection result.
	Plan *analysis.ParameterPlan
	// RotationSteps lists the distinct rotation step counts needing Galois keys.
	RotationSteps []int
	// LogN is the selected ring degree exponent.
	LogN int
	// Scales maps every term of Program to its log2 fixed-point scale.
	Scales map[*core.Term]float64
	// Chains maps every Cipher term of Program to its conforming rescale chain.
	Chains map[*core.Term]analysis.Chain
	// Types maps every term of Program to its inferred value type.
	Types map[*core.Term]core.Type
	// Options echoes the options used.
	Options Options

	// SourceStats and CompiledStats summarize the input and output programs.
	SourceStats   core.Stats
	CompiledStats core.Stats
}

// Compile runs the EVA compiler on the input program. The input program must
// use only frontend instructions (Table 2, first group); it is cloned and
// never mutated.
func Compile(input *core.Program, opts Options) (*Result, error) {
	if input == nil {
		return nil, fmt.Errorf("compile: nil program")
	}
	if opts.MaxRescaleLog <= 0 {
		opts.MaxRescaleLog = 60
	}
	if err := input.ValidateStructure(true); err != nil {
		return nil, fmt.Errorf("compile: invalid input program: %w", err)
	}

	prog := input.Clone()
	if opts.Optimize {
		rewrite.Optimize(prog)
	}
	// Step 1: transformation.
	if err := rewrite.Transform(prog, rewrite.Options{
		MaxRescaleLog: opts.MaxRescaleLog,
		WaterlineLog:  opts.WaterlineLog,
		Rescale:       opts.Rescale,
		ModSwitch:     opts.ModSwitch,
	}); err != nil {
		return nil, fmt.Errorf("compile: transformation failed: %w", err)
	}
	// Step 2: validation. A failure here is a compiler bug surfaced at
	// compile time rather than an FHE-library exception at run time.
	chains, scales, err := analysis.Validate(prog, opts.MaxRescaleLog)
	if err != nil {
		return nil, fmt.Errorf("compile: validation failed: %w", err)
	}
	// Step 3: encryption parameter selection.
	plan, err := analysis.SelectParameters(prog, chains, scales, opts.MaxRescaleLog)
	if err != nil {
		return nil, fmt.Errorf("compile: parameter selection failed: %w", err)
	}
	// Step 4: rotation steps selection.
	steps := analysis.SelectRotationSteps(prog)

	// Level headroom for pipeline chaining: pad the front of the chain (the
	// positions consumed first) with waterline-sized primes, so inputs may
	// enter up to ExtraLevels below fresh and every rescale still finds a
	// prime of the size the scale analysis assumed.
	if opts.ExtraLevels > 0 {
		w := int(math.Ceil(rewrite.Waterline(prog)))
		if w < 20 {
			w = 20
		}
		pad := make([]int, opts.ExtraLevels, opts.ExtraLevels+len(plan.BitSizes))
		for i := range pad {
			pad[i] = w
		}
		plan.BitSizes = append(pad, plan.BitSizes...)
	}

	logN, err := selectLogN(input.VecSize, plan, opts)
	if err != nil {
		return nil, fmt.Errorf("compile: %w", err)
	}

	return &Result{
		Program:       prog,
		Plan:          plan,
		RotationSteps: steps,
		LogN:          logN,
		Scales:        scales,
		Chains:        chains,
		Types:         prog.InferTypes(),
		Options:       opts,
		SourceStats:   input.ComputeStats(),
		CompiledStats: prog.ComputeStats(),
	}, nil
}

// selectLogN picks the smallest ring degree that (a) offers at least VecSize
// slots and (b) keeps the selected modulus within the security bound, unless
// insecure parameters were explicitly allowed.
func selectLogN(vecSize int, plan *analysis.ParameterPlan, opts Options) (int, error) {
	minLogN := opts.MinLogN
	if minLogN < 10 {
		minLogN = 10
	}
	// N/2 slots must cover the program vector size.
	slotsLogN := int(math.Ceil(math.Log2(float64(vecSize)))) + 1
	if slotsLogN > minLogN {
		minLogN = slotsLogN
	}
	if opts.AllowInsecure {
		return minLogN, nil
	}
	logN, err := ckks.MinLogNFor(plan.LogQP(), minLogN)
	if err != nil {
		return 0, fmt.Errorf("selected modulus of %d bits does not fit any supported ring degree: %w", plan.LogQP(), err)
	}
	return logN, nil
}

// ParametersLiteral converts the compilation result into the CKKS parameter
// literal needed to instantiate the backend: the plan's bit sizes are listed
// in consumption order (first consumed first), while the backend's chain is
// ordered with the first-consumed prime last.
func (r *Result) ParametersLiteral() ckks.ParametersLiteral {
	bits := r.Plan.BitSizes
	logQi := make([]int, len(bits))
	for i, b := range bits {
		logQi[len(bits)-1-i] = b
	}
	return ckks.ParametersLiteral{
		LogN:          r.LogN,
		LogQi:         logQi,
		LogP:          r.Plan.SpecialBits,
		Scale:         math.Exp2(rewrite.Waterline(r.Program)),
		AllowInsecure: r.Options.AllowInsecure,
	}
}

// InputScales returns the log2 encoding scale of every program input by name.
func (r *Result) InputScales() map[string]float64 {
	out := map[string]float64{}
	for _, in := range r.Program.Inputs() {
		out[in.Name] = in.LogScale
	}
	return out
}

// Summary returns a human-readable report of the compilation, in the style of
// the paper's Table 6 rows.
func (r *Result) Summary() string {
	return fmt.Sprintf("program %q: log2(N)=%d, log2(Q)=%d, r=%d, rotations=%d, terms %d -> %d",
		r.Program.Name, r.LogN, r.Plan.LogQ(), r.Plan.NumPrimes(), len(r.RotationSteps),
		r.SourceStats.Terms, r.CompiledStats.Terms)
}
