package compile

import (
	"math"
	"testing"

	"eva/internal/core"
	"eva/internal/rewrite"
)

func buildExample(t *testing.T, vecSize int, xScale, yScale float64) *core.Program {
	t.Helper()
	p := core.MustNewProgram("example", vecSize)
	x, _ := p.NewInput("x", core.TypeCipher, vecSize, xScale)
	y, _ := p.NewInput("y", core.TypeCipher, vecSize, yScale)
	x2, _ := p.NewBinary(core.OpMultiply, x, x)
	y3a, _ := p.NewBinary(core.OpMultiply, y, y)
	y3, _ := p.NewBinary(core.OpMultiply, y3a, y)
	out, _ := p.NewBinary(core.OpMultiply, x2, y3)
	if err := p.AddOutput("out", out, 30); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestCompileProducesValidatedProgram(t *testing.T) {
	p := buildExample(t, 8, 60, 30)
	res, err := Compile(p, Options{MaxRescaleLog: 60, AllowInsecure: true})
	if err != nil {
		t.Fatal(err)
	}
	// The input program is not mutated.
	for _, term := range p.Terms() {
		if term.Op.IsCompilerOp() {
			t.Fatal("Compile mutated the input program")
		}
	}
	// The compiled program contains the FHE-specific instructions.
	if res.CompiledStats.Instructions["RELINEARIZE"] == 0 {
		t.Error("compiled program has no RELINEARIZE instructions")
	}
	if res.CompiledStats.Instructions["RESCALE"] == 0 {
		t.Error("compiled program has no RESCALE instructions")
	}
	if res.Plan == nil || len(res.Plan.BitSizes) == 0 {
		t.Fatal("missing parameter plan")
	}
	if len(res.Scales) == 0 || len(res.Chains) == 0 || len(res.Types) == 0 {
		t.Error("missing per-term analyses")
	}
	if res.Summary() == "" {
		t.Error("empty summary")
	}
}

func TestCompileRejectsBadInput(t *testing.T) {
	if _, err := Compile(nil, DefaultOptions()); err == nil {
		t.Error("expected error for nil program")
	}
	// Program without outputs.
	p := core.MustNewProgram("noout", 8)
	p.NewInput("x", core.TypeCipher, 8, 30)
	if _, err := Compile(p, DefaultOptions()); err == nil {
		t.Error("expected error for a program without outputs")
	}
	// Program already containing compiler-only instructions.
	q := core.MustNewProgram("hasrelin", 8)
	x, _ := q.NewInput("x", core.TypeCipher, 8, 30)
	r, _ := q.NewUnary(core.OpRelinearize, x)
	q.AddOutput("out", r, 30)
	if _, err := Compile(q, DefaultOptions()); err == nil {
		t.Error("expected error for compiler-only instructions in the input")
	}
}

func TestCompileSecureParameterSelection(t *testing.T) {
	// Depth-3 program with 60-bit scales needs roughly 4-5 chain primes; the
	// secure ring degree must respect the HE-standard bound.
	p := buildExample(t, 2048, 60, 30)
	res, err := Compile(p, Options{MaxRescaleLog: 60})
	if err != nil {
		t.Fatal(err)
	}
	if res.LogN < 13 {
		t.Errorf("secure logN = %d, expected at least 13 for a %d-bit modulus", res.LogN, res.Plan.LogQP())
	}
	// Slots must cover the vector size even for insecure compilations.
	ins, err := Compile(p, Options{MaxRescaleLog: 60, AllowInsecure: true})
	if err != nil {
		t.Fatal(err)
	}
	if 1<<(ins.LogN-1) < p.VecSize {
		t.Errorf("insecure logN = %d gives fewer slots than the vector size %d", ins.LogN, p.VecSize)
	}
	if ins.LogN > res.LogN {
		t.Errorf("insecure ring (%d) should not exceed the secure ring (%d)", ins.LogN, res.LogN)
	}
}

func TestCompileMinLogNOption(t *testing.T) {
	p := buildExample(t, 8, 40, 40)
	res, err := Compile(p, Options{MaxRescaleLog: 60, AllowInsecure: true, MinLogN: 12})
	if err != nil {
		t.Fatal(err)
	}
	if res.LogN != 12 {
		t.Errorf("logN = %d, want the requested floor 12", res.LogN)
	}
}

func TestParametersLiteralOrdering(t *testing.T) {
	p := buildExample(t, 8, 60, 30)
	res, err := Compile(p, Options{MaxRescaleLog: 60, AllowInsecure: true})
	if err != nil {
		t.Fatal(err)
	}
	lit := res.ParametersLiteral()
	if lit.LogN != res.LogN || lit.LogP != res.Plan.SpecialBits {
		t.Error("literal ring degree or special prime mismatch")
	}
	if len(lit.LogQi) != len(res.Plan.BitSizes) {
		t.Fatal("literal chain length mismatch")
	}
	// The first-consumed prime (BitSizes[0]) must be the backend chain's last
	// element, which is the prime RESCALE drops first.
	if lit.LogQi[len(lit.LogQi)-1] != res.Plan.BitSizes[0] {
		t.Error("chain ordering not reversed for the backend")
	}
	if lit.Scale <= 0 || math.IsInf(lit.Scale, 0) {
		t.Error("default scale not set")
	}
	if !lit.AllowInsecure {
		t.Error("AllowInsecure flag not propagated")
	}
}

func TestCompileStrategyOptions(t *testing.T) {
	// The fixed-max strategy assumes the CHET-style uniform 60-bit working
	// scale (smaller scales would be destroyed by the unconditional rescale,
	// and the validator rejects that — see TestCompileValidationCatchesBadStrategy).
	p := buildExample(t, 8, 60, 60)
	res, err := Compile(p, Options{
		MaxRescaleLog: 60,
		AllowInsecure: true,
		Rescale:       rewrite.RescaleFixedMax,
		ModSwitch:     rewrite.ModSwitchLazy,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Fixed-max rescaling rescales after every ciphertext multiply: 4 rescales.
	if got := res.CompiledStats.Instructions["RESCALE"]; got != 4 {
		t.Errorf("RESCALE count = %d, want 4 under the fixed-max strategy", got)
	}
	def, err := Compile(p, Options{MaxRescaleLog: 60, AllowInsecure: true})
	if err != nil {
		t.Fatal(err)
	}
	if def.Plan.NumPrimes() > res.Plan.NumPrimes() {
		t.Errorf("waterline strategy selected more primes (%d) than fixed-max (%d)",
			def.Plan.NumPrimes(), res.Plan.NumPrimes())
	}
}

func TestCompileValidationCatchesBadStrategy(t *testing.T) {
	// Unconditional 60-bit rescaling of a 30-bit-scale operand destroys the
	// message; the validation step must reject it at compile time (this is
	// the class of error SEAL would only surface as garbage output).
	p := buildExample(t, 8, 60, 30)
	_, err := Compile(p, Options{
		MaxRescaleLog: 60,
		AllowInsecure: true,
		Rescale:       rewrite.RescaleFixedMax,
		ModSwitch:     rewrite.ModSwitchLazy,
	})
	if err == nil {
		t.Fatal("expected validation to reject the vanishing-scale program")
	}
}

func TestCompileInputScales(t *testing.T) {
	p := buildExample(t, 8, 45, 25)
	res, err := Compile(p, Options{MaxRescaleLog: 60, AllowInsecure: true})
	if err != nil {
		t.Fatal(err)
	}
	scales := res.InputScales()
	if scales["x"] != 45 || scales["y"] != 25 {
		t.Errorf("input scales = %v", scales)
	}
}

func TestCompileWithFrontendOptimizations(t *testing.T) {
	// A program with duplicate subexpressions compiles to fewer instructions
	// when the optional optimizer is enabled, with identical parameters.
	p := core.MustNewProgram("dup", 8)
	x, _ := p.NewInput("x", core.TypeCipher, 8, 30)
	a, _ := p.NewBinary(core.OpMultiply, x, x)
	b, _ := p.NewBinary(core.OpMultiply, x, x)
	sum, _ := p.NewBinary(core.OpAdd, a, b)
	p.AddOutput("out", sum, 30)

	plain, err := Compile(p, Options{MaxRescaleLog: 60, AllowInsecure: true})
	if err != nil {
		t.Fatal(err)
	}
	opt, err := Compile(p, Options{MaxRescaleLog: 60, AllowInsecure: true, Optimize: true})
	if err != nil {
		t.Fatal(err)
	}
	if opt.CompiledStats.Terms >= plain.CompiledStats.Terms {
		t.Errorf("optimized program has %d terms, unoptimized %d", opt.CompiledStats.Terms, plain.CompiledStats.Terms)
	}
	if opt.Plan.NumPrimes() > plain.Plan.NumPrimes() {
		t.Error("optimization should never increase the modulus chain")
	}
}

func TestCompileHugeModulusFailsSecurely(t *testing.T) {
	// A very deep program with large scales cannot fit any supported secure
	// ring; compilation must fail rather than emit insecure parameters.
	p := core.MustNewProgram("deep", 8)
	x, _ := p.NewInput("x", core.TypeCipher, 8, 60)
	cur := x
	for i := 0; i < 70; i++ {
		cur2, _ := p.NewBinary(core.OpMultiply, cur, cur)
		cur = cur2
	}
	p.AddOutput("out", cur, 30)
	if _, err := Compile(p, Options{MaxRescaleLog: 60}); err == nil {
		t.Error("expected failure for a modulus exceeding every security bound")
	}
	// The same program compiles when insecure parameters are explicitly allowed.
	if _, err := Compile(p, Options{MaxRescaleLog: 60, AllowInsecure: true}); err != nil {
		t.Errorf("insecure compilation should succeed: %v", err)
	}
}
