package nn

import (
	"math"
	"math/rand"
	"testing"

	"eva/internal/chet"
	"eva/internal/ckks"
	"eva/internal/compile"
	"eva/internal/execute"
)

func TestNetworkDefinitionsMatchTable3(t *testing.T) {
	cfg := BenchConfig()
	nets := All(cfg)
	if len(nets) != 5 {
		t.Fatalf("expected 5 networks, got %d", len(nets))
	}
	for _, n := range nets {
		conv, fc, act := n.CountLayers()
		if conv != n.Paper.ConvLayers || fc != n.Paper.FCLayers || act != n.Paper.ActLayers {
			t.Errorf("%s: layer counts conv/fc/act = %d/%d/%d, want %d/%d/%d (Table 3)",
				n.Name, conv, fc, act, n.Paper.ConvLayers, n.Paper.FCLayers, n.Paper.ActLayers)
		}
		if n.Paper.EVALogQ >= n.Paper.CHETLogQ && n.Name != "" {
			// Sanity of the recorded paper numbers themselves.
			t.Errorf("%s: paper numbers look wrong (EVA logQ %d >= CHET logQ %d)", n.Name, n.Paper.EVALogQ, n.Paper.CHETLogQ)
		}
	}
}

func TestRandomWeightsShapes(t *testing.T) {
	cfg := BenchConfig()
	rng := rand.New(rand.NewSource(1))
	for _, n := range All(cfg) {
		w := RandomWeights(n, rng)
		for _, l := range n.Layers {
			switch l.Kind {
			case LayerConv:
				k := w.Conv[l.Name]
				if len(k) != l.OutChannels {
					t.Fatalf("%s/%s: %d output kernels, want %d", n.Name, l.Name, len(k), l.OutChannels)
				}
				if len(w.Bias[l.Name]) != l.OutChannels {
					t.Fatalf("%s/%s: bias length mismatch", n.Name, l.Name)
				}
			case LayerFC:
				if len(w.FC[l.Name]) != l.OutFeatures {
					t.Fatalf("%s/%s: %d FC rows, want %d", n.Name, l.Name, len(w.FC[l.Name]), l.OutFeatures)
				}
			}
		}
	}
}

func TestBuildProgramAllNetworks(t *testing.T) {
	cfg := BenchConfig()
	rng := rand.New(rand.NewSource(2))
	for _, n := range All(cfg) {
		w := RandomWeights(n, rng)
		prog, err := BuildProgram(n, w)
		if err != nil {
			t.Fatalf("%s: %v", n.Name, err)
		}
		if err := prog.ValidateStructure(true); err != nil {
			t.Fatalf("%s: invalid program: %v", n.Name, err)
		}
		in := RandomImage(n, rng)
		out, err := execute.RunReference(prog, in)
		if err != nil {
			t.Fatalf("%s: reference run: %v", n.Name, err)
		}
		scores := out["scores"]
		if len(scores) < n.NumClasses {
			t.Fatalf("%s: only %d score slots", n.Name, len(scores))
		}
		for i := 0; i < n.NumClasses; i++ {
			if math.IsNaN(scores[i]) || math.IsInf(scores[i], 0) {
				t.Fatalf("%s: score %d is not finite: %g", n.Name, i, scores[i])
			}
		}
	}
}

func TestCompileEVAAndCHETParameterComparison(t *testing.T) {
	// The headline Table 6 relationship must hold on our instantiation too:
	// CHET's local per-kernel insertion selects at least as many chain primes
	// and at least as large a total modulus as EVA's global analysis.
	cfg := BenchConfig()
	rng := rand.New(rand.NewSource(3))
	for _, n := range []*Network{LeNet5Small(cfg), Industrial(cfg)} {
		w := RandomWeights(n, rng)
		prog, err := BuildProgram(n, w)
		if err != nil {
			t.Fatal(err)
		}
		opts := compile.DefaultOptions()
		opts.AllowInsecure = true
		evaRes, err := compile.Compile(prog, opts)
		if err != nil {
			t.Fatalf("%s: EVA compile: %v", n.Name, err)
		}
		chetRes, err := chet.Compile(prog, opts)
		if err != nil {
			t.Fatalf("%s: CHET compile: %v", n.Name, err)
		}
		if chetRes.Plan.NumPrimes() < evaRes.Plan.NumPrimes() {
			t.Errorf("%s: CHET selected fewer primes (%d) than EVA (%d); expected the opposite",
				n.Name, chetRes.Plan.NumPrimes(), evaRes.Plan.NumPrimes())
		}
		if chetRes.Plan.LogQP() < evaRes.Plan.LogQP() {
			t.Errorf("%s: CHET modulus (%d bits) smaller than EVA's (%d bits); expected the opposite",
				n.Name, chetRes.Plan.LogQP(), evaRes.Plan.LogQP())
		}
	}
}

func TestEncryptedInferenceMatchesReference(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping encrypted DNN inference in -short mode")
	}
	// A small LeNet-style network end to end under both the EVA pipeline and
	// the CHET baseline; both must agree with the unencrypted reference.
	cfg := Config{InputSize: 8, ChannelDivisor: 8}
	n := LeNet5Small(cfg)
	rng := rand.New(rand.NewSource(4))
	w := RandomWeights(n, rng)
	prog, err := BuildProgram(n, w)
	if err != nil {
		t.Fatal(err)
	}
	in := RandomImage(n, rng)
	ref, err := execute.RunReference(prog, in)
	if err != nil {
		t.Fatal(err)
	}
	wantScores := ref["scores"][:n.NumClasses]

	opts := compile.DefaultOptions()
	opts.AllowInsecure = true
	prng := ckks.NewTestPRNG(5)

	type pipeline struct {
		name string
		res  *compile.Result
		ropt execute.RunOptions
	}
	evaRes, err := compile.Compile(prog, opts)
	if err != nil {
		t.Fatal(err)
	}
	chetRes, err := chet.Compile(prog, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, pl := range []pipeline{
		{"EVA", evaRes, execute.RunOptions{Scheduler: execute.SchedulerParallel}},
		{"CHET", chetRes, chet.RunOptions(0)},
	} {
		ctx, keys, err := execute.NewContext(pl.res, prng)
		if err != nil {
			t.Fatalf("%s: %v", pl.name, err)
		}
		enc, err := execute.EncryptInputs(ctx, pl.res, keys, in, prng)
		if err != nil {
			t.Fatalf("%s: %v", pl.name, err)
		}
		out, err := execute.Run(ctx, pl.res, enc, pl.ropt)
		if err != nil {
			t.Fatalf("%s: %v", pl.name, err)
		}
		dec, _ := execute.DecryptOutputs(ctx, pl.res, keys, out)
		scores := dec["scores"]
		for i := 0; i < n.NumClasses; i++ {
			if math.Abs(scores[i]-wantScores[i]) > 2e-2 {
				t.Errorf("%s: class %d score %g, want %g", pl.name, i, scores[i], wantScores[i])
			}
		}
		if Argmax(scores, n.NumClasses) != Argmax(wantScores, n.NumClasses) {
			t.Errorf("%s: encrypted classification disagrees with the reference", pl.name)
		}
	}
}

func TestArgmaxAndShapeHelpers(t *testing.T) {
	if Argmax([]float64{0.1, 3, 2}, 3) != 1 {
		t.Error("Argmax wrong")
	}
	if Argmax([]float64{5, 1}, 1) != 0 {
		t.Error("Argmax with limit wrong")
	}
	n := LeNet5Small(BenchConfig())
	c, s := n.shapeAt(len(n.Layers))
	if s != 1 || c != 10 {
		t.Errorf("final shape = %d channels, size %d; want 10, 1", c, s)
	}
	cfg := Config{}
	norm := cfg.normalize()
	if norm.InputSize != 8 || norm.ChannelDivisor != 1 {
		t.Errorf("normalize = %+v", norm)
	}
	full := FullConfig()
	if full.InputSize != 32 || full.ChannelDivisor != 1 {
		t.Errorf("FullConfig = %+v", full)
	}
}
