// Package nn defines the deep neural networks of the paper's evaluation
// (Table 3): the three LeNet-5 variants, the proprietary "Industrial"
// network, and SqueezeNet-CIFAR, together with the paper's reported numbers
// for Tables 3-7. Networks are described as layer lists and lowered onto the
// hetensor kernel library; weights are randomly generated (the paper itself
// uses random weights for the Industrial network, and the MNIST/CIFAR models
// are not available offline — see DESIGN.md for the substitution note).
package nn

import (
	"fmt"
	"math"
	"math/rand"

	"eva/internal/builder"
	"eva/internal/core"
	"eva/internal/execute"
	"eva/internal/hetensor"
)

// LayerKind enumerates the layer types used by the evaluation networks.
type LayerKind int

const (
	// LayerConv is a same-padded stride-1 convolution.
	LayerConv LayerKind = iota
	// LayerAct is a polynomial activation.
	LayerAct
	// LayerPool is 2x2 average pooling with stride 2.
	LayerPool
	// LayerFC is a fully-connected layer (flattening its input if needed).
	LayerFC
	// LayerGlobalPool is global average pooling producing one value per channel.
	LayerGlobalPool
)

// Layer is one entry of a network architecture.
type Layer struct {
	Kind        LayerKind
	Name        string
	OutChannels int       // convolution output channels
	Kernel      int       // convolution kernel size (odd)
	OutFeatures int       // fully-connected output size
	ActCoeffs   []float64 // activation polynomial coefficients (nil = x²)
}

// ScaleProfile carries the programmer-specified fixed-point scales of the
// paper's Table 4 (log2 values).
type ScaleProfile struct {
	Cipher, Vector, Scalar, Output float64
}

// PaperNumbers collects the values the paper reports for a network, used by
// the benchmark harness to print paper-vs-measured tables.
type PaperNumbers struct {
	// Table 3.
	ConvLayers, FCLayers, ActLayers int
	FPOperations                    int64
	UnencryptedAccuracy             float64
	// Table 4.
	CHETAccuracy, EVAAccuracy float64
	// Table 5 (seconds, 56 threads).
	CHETLatency, EVALatency float64
	// Table 6.
	CHETLogN, CHETLogQ, CHETPrimes int
	EVALogN, EVALogQ, EVAPrimes    int
	// Table 7 (seconds).
	CompileTime, ContextTime, EncryptTime, DecryptTime float64
}

// Network is an architecture plus its evaluation metadata.
type Network struct {
	Name          string
	InputChannels int
	InputSize     int // input images are InputSize x InputSize
	NumClasses    int
	Layers        []Layer
	Scales        ScaleProfile
	Paper         PaperNumbers
}

// squareAct is the default FHE-friendly activation.
var squareAct = []float64{0, 0.5, 0.25}

// Config controls how large the instantiated networks are. The paper-scale
// networks (28x28 MNIST, 32x32 CIFAR inputs and full channel counts) are
// expensive in a pure-Go CKKS backend, so the benchmarks default to a reduced
// configuration that preserves every layer and the relative comparisons.
type Config struct {
	// InputSize overrides the input image side (must be a power of two).
	InputSize int
	// ChannelDivisor divides every channel and feature count (minimum 1).
	ChannelDivisor int
}

// BenchConfig is the reduced configuration used by tests and default benchmarks.
func BenchConfig() Config { return Config{InputSize: 8, ChannelDivisor: 4} }

// FullConfig approximates the paper-scale configuration (inputs padded to the
// next power of two: MNIST 28x28 -> 32x32).
func FullConfig() Config { return Config{InputSize: 32, ChannelDivisor: 1} }

func (c Config) normalize() Config {
	if c.InputSize <= 0 {
		c.InputSize = 8
	}
	if c.ChannelDivisor < 1 {
		c.ChannelDivisor = 1
	}
	return c
}

func (c Config) ch(n int) int {
	v := n / c.ChannelDivisor
	if v < 1 {
		v = 1
	}
	return v
}

// LeNet5Small is the smallest MNIST network of Table 3.
func LeNet5Small(cfg Config) *Network {
	cfg = cfg.normalize()
	return &Network{
		Name: "LeNet-5-small", InputChannels: 1, InputSize: cfg.InputSize, NumClasses: 10,
		Layers: []Layer{
			{Kind: LayerConv, Name: "conv1", OutChannels: cfg.ch(8), Kernel: 5},
			{Kind: LayerAct, Name: "act1"},
			{Kind: LayerPool, Name: "pool1"},
			{Kind: LayerConv, Name: "conv2", OutChannels: cfg.ch(16), Kernel: 5},
			{Kind: LayerAct, Name: "act2"},
			{Kind: LayerPool, Name: "pool2"},
			{Kind: LayerFC, Name: "fc1", OutFeatures: cfg.ch(64)},
			{Kind: LayerAct, Name: "act3"},
			{Kind: LayerFC, Name: "fc2", OutFeatures: 10},
			{Kind: LayerAct, Name: "act4"},
		},
		Scales: ScaleProfile{Cipher: 25, Vector: 15, Scalar: 10, Output: 30},
		Paper: PaperNumbers{
			ConvLayers: 2, FCLayers: 2, ActLayers: 4, FPOperations: 159960, UnencryptedAccuracy: 98.45,
			CHETAccuracy: 98.42, EVAAccuracy: 98.45,
			CHETLatency: 3.7, EVALatency: 0.6,
			CHETLogN: 15, CHETLogQ: 480, CHETPrimes: 8, EVALogN: 14, EVALogQ: 360, EVAPrimes: 6,
			CompileTime: 0.14, ContextTime: 1.21, EncryptTime: 0.03, DecryptTime: 0.01,
		},
	}
}

// LeNet5Medium is the mid-size MNIST network of Table 3.
func LeNet5Medium(cfg Config) *Network {
	cfg = cfg.normalize()
	n := LeNet5Small(cfg)
	n.Name = "LeNet-5-medium"
	n.Layers[0].OutChannels = cfg.ch(32)
	n.Layers[3].OutChannels = cfg.ch(64)
	n.Layers[6].OutFeatures = cfg.ch(256)
	n.Paper = PaperNumbers{
		ConvLayers: 2, FCLayers: 2, ActLayers: 4, FPOperations: 5791168, UnencryptedAccuracy: 99.11,
		CHETAccuracy: 99.07, EVAAccuracy: 99.09,
		CHETLatency: 5.8, EVALatency: 1.2,
		CHETLogN: 15, CHETLogQ: 480, CHETPrimes: 8, EVALogN: 14, EVALogQ: 360, EVAPrimes: 6,
		CompileTime: 0.50, ContextTime: 1.26, EncryptTime: 0.03, DecryptTime: 0.01,
	}
	return n
}

// LeNet5Large is the largest MNIST network of Table 3 (matching the
// TensorFlow tutorial model).
func LeNet5Large(cfg Config) *Network {
	cfg = cfg.normalize()
	n := LeNet5Small(cfg)
	n.Name = "LeNet-5-large"
	n.Layers[0].OutChannels = cfg.ch(32)
	n.Layers[3].OutChannels = cfg.ch(64)
	n.Layers[6].OutFeatures = cfg.ch(512)
	n.Scales = ScaleProfile{Cipher: 25, Vector: 20, Scalar: 10, Output: 25}
	n.Paper = PaperNumbers{
		ConvLayers: 2, FCLayers: 2, ActLayers: 4, FPOperations: 21385674, UnencryptedAccuracy: 99.30,
		CHETAccuracy: 99.34, EVAAccuracy: 99.32,
		CHETLatency: 23.3, EVALatency: 5.6,
		CHETLogN: 15, CHETLogQ: 740, CHETPrimes: 13, EVALogN: 15, EVALogQ: 480, EVAPrimes: 8,
		CompileTime: 1.13, ContextTime: 7.24, EncryptTime: 0.08, DecryptTime: 0.02,
	}
	return n
}

// Industrial is the proprietary binary-classification network (5 conv, 2 FC,
// 6 activations); as in the paper, its weights are random.
func Industrial(cfg Config) *Network {
	cfg = cfg.normalize()
	return &Network{
		Name: "Industrial", InputChannels: 1, InputSize: cfg.InputSize, NumClasses: 2,
		Layers: []Layer{
			{Kind: LayerConv, Name: "conv1", OutChannels: cfg.ch(8), Kernel: 3},
			{Kind: LayerAct, Name: "act1"},
			{Kind: LayerConv, Name: "conv2", OutChannels: cfg.ch(8), Kernel: 3},
			{Kind: LayerAct, Name: "act2"},
			{Kind: LayerPool, Name: "pool1"},
			{Kind: LayerConv, Name: "conv3", OutChannels: cfg.ch(16), Kernel: 3},
			{Kind: LayerAct, Name: "act3"},
			{Kind: LayerConv, Name: "conv4", OutChannels: cfg.ch(16), Kernel: 3},
			{Kind: LayerAct, Name: "act4"},
			{Kind: LayerConv, Name: "conv5", OutChannels: cfg.ch(16), Kernel: 3},
			{Kind: LayerPool, Name: "pool2"},
			{Kind: LayerFC, Name: "fc1", OutFeatures: cfg.ch(32)},
			{Kind: LayerAct, Name: "act5"},
			{Kind: LayerFC, Name: "fc2", OutFeatures: 2},
			{Kind: LayerAct, Name: "act6"},
		},
		Scales: ScaleProfile{Cipher: 30, Vector: 15, Scalar: 10, Output: 30},
		Paper: PaperNumbers{
			ConvLayers: 5, FCLayers: 2, ActLayers: 6,
			CHETLatency: 70.4, EVALatency: 9.6,
			CHETLogN: 16, CHETLogQ: 1222, CHETPrimes: 21, EVALogN: 15, EVALogQ: 810, EVAPrimes: 14,
			CompileTime: 0.59, ContextTime: 15.70, EncryptTime: 0.12, DecryptTime: 0.03,
		},
	}
}

// SqueezeNetCIFAR is the CIFAR-10 network with four Fire modules (10
// convolution layers, 9 activations, no FC layer).
func SqueezeNetCIFAR(cfg Config) *Network {
	cfg = cfg.normalize()
	layers := []Layer{
		{Kind: LayerConv, Name: "conv1", OutChannels: cfg.ch(16), Kernel: 3},
		{Kind: LayerAct, Name: "act1"},
		{Kind: LayerPool, Name: "pool1"},
	}
	// Four Fire modules: squeeze 1x1 followed by expand 3x3 (the expand 1x1
	// branch is folded into the expand 3x3 kernel to stay at 10 convolutions).
	fireSqueeze := []int{8, 8, 16, 16}
	fireExpand := []int{16, 16, 32, 32}
	for i := 0; i < 4; i++ {
		layers = append(layers,
			Layer{Kind: LayerConv, Name: fmt.Sprintf("fire%d_squeeze", i+1), OutChannels: cfg.ch(fireSqueeze[i]), Kernel: 1},
			Layer{Kind: LayerAct, Name: fmt.Sprintf("fire%d_act_s", i+1)},
			Layer{Kind: LayerConv, Name: fmt.Sprintf("fire%d_expand", i+1), OutChannels: cfg.ch(fireExpand[i]), Kernel: 3},
			Layer{Kind: LayerAct, Name: fmt.Sprintf("fire%d_act_e", i+1)},
		)
	}
	layers = append(layers,
		Layer{Kind: LayerConv, Name: "conv10", OutChannels: 10, Kernel: 1},
		Layer{Kind: LayerGlobalPool, Name: "global_pool"},
	)
	return &Network{
		Name: "SqueezeNet-CIFAR", InputChannels: 3, InputSize: cfg.InputSize, NumClasses: 10,
		Layers: layers,
		Scales: ScaleProfile{Cipher: 25, Vector: 15, Scalar: 10, Output: 30},
		Paper: PaperNumbers{
			ConvLayers: 10, FCLayers: 0, ActLayers: 9, FPOperations: 37759754, UnencryptedAccuracy: 79.38,
			CHETAccuracy: 79.31, EVAAccuracy: 79.34,
			CHETLatency: 344.7, EVALatency: 72.7,
			CHETLogN: 16, CHETLogQ: 1740, CHETPrimes: 29, EVALogN: 16, EVALogQ: 1225, EVAPrimes: 21,
			CompileTime: 4.06, ContextTime: 160.82, EncryptTime: 0.42, DecryptTime: 0.26,
		},
	}
}

// All returns the five evaluation networks of Table 3 at the given configuration.
func All(cfg Config) []*Network {
	return []*Network{LeNet5Small(cfg), LeNet5Medium(cfg), LeNet5Large(cfg), Industrial(cfg), SqueezeNetCIFAR(cfg)}
}

// CountLayers returns the conv/fc/act layer counts of the instantiated
// architecture (for checking against Table 3).
func (n *Network) CountLayers() (conv, fc, act int) {
	for _, l := range n.Layers {
		switch l.Kind {
		case LayerConv:
			conv++
		case LayerFC:
			fc++
		case LayerAct:
			act++
		}
	}
	return conv, fc, act
}

// Weights holds randomly generated model parameters for a network.
type Weights struct {
	Conv map[string][][][][]float64
	Bias map[string][]float64
	FC   map[string][][]float64
}

// RandomWeights draws Xavier-style random weights so activations stay bounded
// through the network (important for fixed-point evaluation).
func RandomWeights(n *Network, rng *rand.Rand) *Weights {
	w := &Weights{Conv: map[string][][][][]float64{}, Bias: map[string][]float64{}, FC: map[string][][]float64{}}
	channels := n.InputChannels
	size := n.InputSize
	for _, l := range n.Layers {
		switch l.Kind {
		case LayerConv:
			fanIn := float64(channels * l.Kernel * l.Kernel)
			scale := 1.0 / math.Sqrt(fanIn)
			kernels := make([][][][]float64, l.OutChannels)
			for o := range kernels {
				kernels[o] = make([][][]float64, channels)
				for i := range kernels[o] {
					kernels[o][i] = make([][]float64, l.Kernel)
					for y := range kernels[o][i] {
						kernels[o][i][y] = make([]float64, l.Kernel)
						for x := range kernels[o][i][y] {
							kernels[o][i][y][x] = (rng.Float64()*2 - 1) * scale
						}
					}
				}
			}
			w.Conv[l.Name] = kernels
			bias := make([]float64, l.OutChannels)
			for i := range bias {
				bias[i] = (rng.Float64()*2 - 1) * 0.1
			}
			w.Bias[l.Name] = bias
			channels = l.OutChannels
		case LayerPool:
			size /= 2
		case LayerFC:
			fanIn := channels * size * size
			if fanIn == 0 {
				fanIn = channels
			}
			scale := 1.0 / math.Sqrt(float64(fanIn))
			rows := make([][]float64, l.OutFeatures)
			for j := range rows {
				rows[j] = make([]float64, fanIn)
				for i := range rows[j] {
					rows[j][i] = (rng.Float64()*2 - 1) * scale
				}
			}
			w.FC[l.Name] = rows
			bias := make([]float64, l.OutFeatures)
			for i := range bias {
				bias[i] = (rng.Float64()*2 - 1) * 0.1
			}
			w.Bias[l.Name] = bias
			// After the first FC the spatial extent collapses.
			channels = l.OutFeatures
			size = 1
		case LayerGlobalPool:
			size = 1
		}
	}
	return w
}

// fcInputLength tracks how the FC input length evolves (mirrors RandomWeights).
func (n *Network) shapeAt(layerIdx int) (channels, size int) {
	channels = n.InputChannels
	size = n.InputSize
	for i := 0; i < layerIdx; i++ {
		switch n.Layers[i].Kind {
		case LayerConv:
			channels = n.Layers[i].OutChannels
		case LayerPool:
			size /= 2
		case LayerFC:
			channels = n.Layers[i].OutFeatures
			size = 1
		case LayerGlobalPool:
			size = 1
		}
	}
	return channels, size
}

// BuildProgram lowers the network onto an EVA program using the hetensor
// kernels, with one kernel label per layer. The returned program has a single
// output "scores" holding the class scores in its first NumClasses slots.
func BuildProgram(n *Network, w *Weights) (*core.Program, error) {
	// The vector must fit both the packed image planes and the widest packed
	// fully-connected activation vector.
	vecSize := n.InputSize * n.InputSize
	for _, l := range n.Layers {
		if l.Kind == LayerFC {
			need := 1
			for need < l.OutFeatures {
				need <<= 1
			}
			if need > vecSize {
				vecSize = need
			}
		}
	}
	if vecSize < 4 {
		vecSize = 4
	}
	b := builder.New(n.Name, vecSize)
	tc := hetensor.NewCompiler(b, n.Scales.Vector, n.Scales.Scalar)
	image, err := tc.InputImage("image", n.InputChannels, n.InputSize, n.InputSize, n.Scales.Cipher)
	if err != nil {
		return nil, err
	}

	var tensor = image
	var vector *hetensor.Vector
	for _, l := range n.Layers {
		switch l.Kind {
		case LayerConv:
			tensor, err = tc.Conv2D(l.Name, tensor, w.Conv[l.Name], w.Bias[l.Name])
		case LayerAct:
			coeffs := l.ActCoeffs
			if coeffs == nil {
				coeffs = squareAct
			}
			if vector != nil {
				vector = &hetensor.Vector{Value: vector.Value.Polynomial(coeffs, n.Scales.Scalar), Length: vector.Length}
			} else {
				tensor = tc.PolyActivation(l.Name, tensor, coeffs)
			}
		case LayerPool:
			tensor, err = tc.AvgPool2(l.Name, tensor)
		case LayerGlobalPool:
			vector, err = tc.GlobalAvgPool(l.Name, tensor)
		case LayerFC:
			if vector == nil {
				vector, err = tc.FlattenFC(l.Name, tensor, w.FC[l.Name], w.Bias[l.Name])
			} else {
				vector, err = tc.FC(l.Name, vector, w.FC[l.Name], w.Bias[l.Name])
			}
		default:
			err = fmt.Errorf("nn: unsupported layer kind %d", l.Kind)
		}
		if err != nil {
			return nil, fmt.Errorf("nn: %s: layer %s: %w", n.Name, l.Name, err)
		}
	}
	if vector == nil {
		return nil, fmt.Errorf("nn: %s: network does not end in a vector output", n.Name)
	}
	tc.Output("scores", vector, n.Scales.Output)
	return b.Program()
}

// RandomImage generates a random input image assignment for the network's
// program (one vector per input channel).
func RandomImage(n *Network, rng *rand.Rand) execute.Inputs {
	in := execute.Inputs{}
	pixels := n.InputSize * n.InputSize
	for c := 0; c < n.InputChannels; c++ {
		v := make([]float64, pixels)
		for i := range v {
			v[i] = rng.Float64()*2 - 1
		}
		in[fmt.Sprintf("image_c%d", c)] = v
	}
	return in
}

// Argmax returns the index of the largest of the first n values.
func Argmax(values []float64, n int) int {
	best, bestIdx := math.Inf(-1), 0
	for i := 0; i < n && i < len(values); i++ {
		if values[i] > best {
			best, bestIdx = values[i], i
		}
	}
	return bestIdx
}
