// Package builder is the general-purpose frontend for EVA: a small expression
// DSL playing the role PyEVA plays in the paper. It lets applications build
// EVA input programs (Section 3, first group of Table 2) without manipulating
// the term graph directly, and carries optional kernel labels so higher-level
// frontends (the tensor compiler) can mark which high-level operation each
// instruction belongs to.
package builder

import (
	"fmt"
	"math"

	"eva/internal/core"
)

// Builder incrementally constructs an EVA input program. Errors encountered
// while building are sticky: they are reported by Program so call sites can
// chain expression operations without per-call error handling, mirroring the
// ergonomics of the Python frontend.
type Builder struct {
	prog   *core.Program
	kernel string
	err    error
}

// New creates a builder for a program whose vectors have the given
// power-of-two size.
func New(name string, vecSize int) *Builder {
	prog, err := core.NewProgram(name, vecSize)
	return &Builder{prog: prog, err: err}
}

// Expr is a handle to a value in the program being built.
type Expr struct {
	b *Builder
	t *core.Term
}

// Term exposes the underlying IR term (nil if the builder is in an error state).
func (e Expr) Term() *core.Term { return e.t }

// VecSize returns the program's vector size.
func (b *Builder) VecSize() int {
	if b.prog == nil {
		return 0
	}
	return b.prog.VecSize
}

// Err returns the first error encountered while building, if any.
func (b *Builder) Err() error { return b.err }

// SetKernel labels all terms created from now on with the given high-level
// kernel name (used by the CHET-style baseline for per-kernel scheduling).
func (b *Builder) SetKernel(name string) { b.kernel = name }

func (b *Builder) fail(err error) Expr {
	if b.err == nil {
		b.err = err
	}
	return Expr{b: b}
}

func (b *Builder) wrap(t *core.Term, err error) Expr {
	if err != nil {
		return b.fail(err)
	}
	t.Kernel = b.kernel
	return Expr{b: b, t: t}
}

// Input declares an encrypted (Cipher) input covering the whole vector.
func (b *Builder) Input(name string, logScale float64) Expr {
	return b.InputWithWidth(name, b.VecSize(), logScale)
}

// InputWithWidth declares an encrypted input of a smaller power-of-two width
// (EVA replicates it to the full vector size at encryption time).
func (b *Builder) InputWithWidth(name string, width int, logScale float64) Expr {
	if b.err != nil {
		return Expr{b: b}
	}
	return b.wrap(b.prog.NewInput(name, core.TypeCipher, width, logScale))
}

// PlainInput declares an unencrypted vector input.
func (b *Builder) PlainInput(name string, logScale float64) Expr {
	if b.err != nil {
		return Expr{b: b}
	}
	return b.wrap(b.prog.NewInput(name, core.TypeVector, b.VecSize(), logScale))
}

// Constant introduces a compile-time constant vector at the given scale.
func (b *Builder) Constant(values []float64, logScale float64) Expr {
	if b.err != nil {
		return Expr{b: b}
	}
	return b.wrap(b.prog.NewConstant(values, logScale))
}

// Scalar introduces a compile-time scalar constant at the given scale.
func (b *Builder) Scalar(v float64, logScale float64) Expr {
	if b.err != nil {
		return Expr{b: b}
	}
	return b.wrap(b.prog.NewScalarConstant(v, logScale))
}

// Output marks an expression as a program output with the desired scale.
func (b *Builder) Output(name string, e Expr, logScale float64) {
	if b.err != nil {
		return
	}
	if e.t == nil {
		b.fail(fmt.Errorf("builder: output %q refers to an invalid expression", name))
		return
	}
	if err := b.prog.AddOutput(name, e.t, logScale); err != nil {
		b.fail(err)
	}
}

// Program finalizes and returns the built program after structural validation.
func (b *Builder) Program() (*core.Program, error) {
	if b.err != nil {
		return nil, b.err
	}
	if err := b.prog.ValidateStructure(true); err != nil {
		return nil, err
	}
	return b.prog, nil
}

// MustProgram is Program but panics on error (for tests and fixed programs).
func (b *Builder) MustProgram() *core.Program {
	p, err := b.Program()
	if err != nil {
		panic(err)
	}
	return p
}

func (e Expr) binary(op core.OpCode, o Expr) Expr {
	b := e.b
	if b == nil {
		if o.b == nil {
			return Expr{}
		}
		return o.b.fail(fmt.Errorf("builder: operand built from a different builder"))
	}
	if b.err != nil {
		return Expr{b: b}
	}
	if o.b != b {
		return b.fail(fmt.Errorf("builder: mixing expressions from different builders"))
	}
	return b.wrap(b.prog.NewBinary(op, e.t, o.t))
}

// Add returns e + o element-wise.
func (e Expr) Add(o Expr) Expr { return e.binary(core.OpAdd, o) }

// Sub returns e - o element-wise.
func (e Expr) Sub(o Expr) Expr { return e.binary(core.OpSub, o) }

// Mul returns e * o element-wise.
func (e Expr) Mul(o Expr) Expr { return e.binary(core.OpMultiply, o) }

// Neg returns -e.
func (e Expr) Neg() Expr {
	if e.b == nil || e.b.err != nil {
		return e
	}
	return e.b.wrap(e.b.prog.NewUnary(core.OpNegate, e.t))
}

// RotateLeft returns e rotated left (toward lower indices) by k slots.
func (e Expr) RotateLeft(k int) Expr {
	if e.b == nil || e.b.err != nil {
		return e
	}
	return e.b.wrap(e.b.prog.NewRotation(core.OpRotateLeft, e.t, k))
}

// RotateRight returns e rotated right by k slots.
func (e Expr) RotateRight(k int) Expr {
	if e.b == nil || e.b.err != nil {
		return e
	}
	return e.b.wrap(e.b.prog.NewRotation(core.OpRotateRight, e.t, k))
}

// Square returns e * e.
func (e Expr) Square() Expr { return e.Mul(e) }

// MulScalar multiplies by a scalar constant encoded at the given scale.
func (e Expr) MulScalar(v float64, logScale float64) Expr {
	if e.b == nil || e.b.err != nil {
		return e
	}
	return e.Mul(e.b.Scalar(v, logScale))
}

// AddScalar adds a scalar constant encoded at the given scale.
func (e Expr) AddScalar(v float64, logScale float64) Expr {
	if e.b == nil || e.b.err != nil {
		return e
	}
	return e.Add(e.b.Scalar(v, logScale))
}

// SubScalar subtracts a scalar constant encoded at the given scale.
func (e Expr) SubScalar(v float64, logScale float64) Expr {
	if e.b == nil || e.b.err != nil {
		return e
	}
	return e.Sub(e.b.Scalar(v, logScale))
}

// MulVector multiplies by a constant vector (a plaintext mask) at the given scale.
func (e Expr) MulVector(values []float64, logScale float64) Expr {
	if e.b == nil || e.b.err != nil {
		return e
	}
	return e.Mul(e.b.Constant(values, logScale))
}

// Pow raises e to the n-th power (n >= 1) with a logarithmic-depth
// square-and-multiply chain.
func (e Expr) Pow(n int) Expr {
	if e.b == nil || e.b.err != nil {
		return e
	}
	if n < 1 {
		return e.b.fail(fmt.Errorf("builder: Pow exponent must be at least 1, got %d", n))
	}
	result := Expr{}
	base := e
	for n > 0 {
		if n&1 == 1 {
			if result.t == nil {
				result = base
			} else {
				result = result.Mul(base)
			}
		}
		n >>= 1
		if n > 0 {
			base = base.Square()
		}
	}
	return result
}

// Polynomial evaluates c0 + c1·e + c2·e² + ... with plaintext coefficients
// encoded at the given scale, using Horner's rule. Zero high-order
// coefficients are trimmed.
func (e Expr) Polynomial(coeffs []float64, logScale float64) Expr {
	if e.b == nil || e.b.err != nil {
		return e
	}
	n := len(coeffs)
	for n > 0 && coeffs[n-1] == 0 {
		n--
	}
	if n == 0 {
		return e.b.Scalar(0, logScale)
	}
	acc := e.b.Scalar(coeffs[n-1], logScale)
	first := true
	var result Expr
	for i := n - 2; i >= 0; i-- {
		if first {
			result = e.Mul(acc)
			first = false
		} else {
			result = e.Mul(result)
		}
		if coeffs[i] != 0 {
			result = result.AddScalar(coeffs[i], math.Min(logScale, 60))
		}
	}
	if first {
		return acc
	}
	return result
}

// SumSlots sums width adjacent slots into every slot using a logarithmic
// rotate-and-add reduction. width must be a power of two. After the call,
// slot i holds the sum of slots i, i+1, ..., i+width-1 (cyclically), so slot
// 0 holds the total of the first width slots.
func (e Expr) SumSlots(width int) Expr {
	if e.b == nil || e.b.err != nil {
		return e
	}
	if width <= 0 || width&(width-1) != 0 {
		return e.b.fail(fmt.Errorf("builder: SumSlots width %d is not a positive power of two", width))
	}
	acc := e
	for step := 1; step < width; step <<= 1 {
		acc = acc.Add(acc.RotateLeft(step))
	}
	return acc
}

// DotPlain computes the dot product of e with a plaintext vector of the given
// width: the result's slot 0 (and every width-th slot) holds the dot product.
func (e Expr) DotPlain(values []float64, logScale float64, width int) Expr {
	if e.b == nil || e.b.err != nil {
		return e
	}
	return e.MulVector(values, logScale).SumSlots(width)
}
