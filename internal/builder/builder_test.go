package builder

import (
	"math"
	"testing"

	"eva/internal/core"
	"eva/internal/execute"
)

// runPlain builds the program and evaluates it with the reference executor.
func runPlain(t *testing.T, b *Builder, in execute.Inputs) map[string][]float64 {
	t.Helper()
	p, err := b.Program()
	if err != nil {
		t.Fatal(err)
	}
	out, err := execute.RunReference(p, in)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestBuilderArithmetic(t *testing.T) {
	b := New("arith", 8)
	x := b.Input("x", 30)
	y := b.Input("y", 30)
	b.Output("sum", x.Add(y), 30)
	b.Output("diff", x.Sub(y), 30)
	b.Output("prod", x.Mul(y), 30)
	b.Output("neg", x.Neg(), 30)
	b.Output("sq", x.Square(), 30)
	b.Output("scaled", x.MulScalar(3, 20).AddScalar(1, 20).SubScalar(0.5, 20), 30)

	in := execute.Inputs{"x": {1, 2, 3, 4, 5, 6, 7, 8}, "y": {8, 7, 6, 5, 4, 3, 2, 1}}
	out := runPlain(t, b, in)
	checks := map[string]float64{"sum": 9, "diff": -7, "prod": 8, "neg": -1, "sq": 1, "scaled": 3.5}
	for name, want := range checks {
		if math.Abs(out[name][0]-want) > 1e-12 {
			t.Errorf("%s[0] = %g, want %g", name, out[name][0], want)
		}
	}
}

func TestBuilderRotationsAndReductions(t *testing.T) {
	b := New("rot", 8)
	x := b.Input("x", 30)
	b.Output("left", x.RotateLeft(2), 30)
	b.Output("right", x.RotateRight(1), 30)
	b.Output("sum4", x.SumSlots(4), 30)
	b.Output("dot", x.DotPlain([]float64{1, 0, 2, 0, 0, 0, 0, 0}, 20, 8), 30)

	in := execute.Inputs{"x": {1, 2, 3, 4, 5, 6, 7, 8}}
	out := runPlain(t, b, in)
	if out["left"][0] != 3 {
		t.Errorf("left[0] = %g, want 3", out["left"][0])
	}
	if out["right"][0] != 8 {
		t.Errorf("right[0] = %g, want 8", out["right"][0])
	}
	if out["sum4"][0] != 10 {
		t.Errorf("sum4[0] = %g, want 10", out["sum4"][0])
	}
	if out["dot"][0] != 7 {
		t.Errorf("dot[0] = %g, want 7", out["dot"][0])
	}
}

func TestBuilderPowAndPolynomial(t *testing.T) {
	b := New("poly", 8)
	x := b.Input("x", 30)
	b.Output("x5", x.Pow(5), 30)
	b.Output("x1", x.Pow(1), 30)
	b.Output("poly", x.Polynomial([]float64{1, -2, 0, 3}, 20), 30) // 1 - 2x + 3x^3
	b.Output("constpoly", x.Polynomial([]float64{4}, 20), 30)
	b.Output("zeropoly", x.Polynomial([]float64{0, 0}, 20), 30)

	in := execute.Inputs{"x": {2, 2, 2, 2, 2, 2, 2, 2}}
	out := runPlain(t, b, in)
	if out["x5"][0] != 32 {
		t.Errorf("x5 = %g, want 32", out["x5"][0])
	}
	if out["x1"][0] != 2 {
		t.Errorf("x1 = %g, want 2", out["x1"][0])
	}
	if want := 1.0 - 4 + 24; out["poly"][0] != want {
		t.Errorf("poly = %g, want %g", out["poly"][0], want)
	}
	if out["constpoly"][0] != 4 {
		t.Errorf("constpoly = %g, want 4", out["constpoly"][0])
	}
	if out["zeropoly"][0] != 0 {
		t.Errorf("zeropoly = %g, want 0", out["zeropoly"][0])
	}
}

func TestBuilderPlainInputsAndVectors(t *testing.T) {
	b := New("plain", 8)
	x := b.Input("x", 30)
	m := b.PlainInput("mask", 20)
	b.Output("masked", x.Mul(m), 30)
	b.Output("vec", x.MulVector([]float64{1, 2, 1, 2, 1, 2, 1, 2}, 20), 30)
	in := execute.Inputs{"x": {1, 1, 1, 1, 1, 1, 1, 1}, "mask": {0, 1, 0, 1, 0, 1, 0, 1}}
	out := runPlain(t, b, in)
	if out["masked"][0] != 0 || out["masked"][1] != 1 {
		t.Errorf("masked = %v", out["masked"][:2])
	}
	if out["vec"][1] != 2 {
		t.Errorf("vec[1] = %g, want 2", out["vec"][1])
	}
}

func TestBuilderKernelLabels(t *testing.T) {
	b := New("kernels", 8)
	x := b.Input("x", 30)
	b.SetKernel("conv1")
	y := x.Square()
	b.SetKernel("act1")
	z := y.AddScalar(1, 30)
	b.Output("out", z, 30)
	p, err := b.Program()
	if err != nil {
		t.Fatal(err)
	}
	found := map[string]bool{}
	for _, term := range p.Terms() {
		if term.Kernel != "" {
			found[term.Kernel] = true
		}
	}
	if !found["conv1"] || !found["act1"] {
		t.Errorf("kernel labels missing: %v", found)
	}
}

func TestBuilderInputWidth(t *testing.T) {
	b := New("width", 16)
	x := b.InputWithWidth("x", 4, 30)
	b.Output("out", x.Add(x), 30)
	p, err := b.Program()
	if err != nil {
		t.Fatal(err)
	}
	if p.InputByName("x").VecWidth != 4 {
		t.Errorf("input width = %d, want 4", p.InputByName("x").VecWidth)
	}
	out, err := execute.RunReference(p, execute.Inputs{"x": {1, 2, 3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	// Replication: slot 5 repeats slot 1.
	if out["out"][5] != 4 {
		t.Errorf("out[5] = %g, want 4", out["out"][5])
	}
}

func TestBuilderErrorHandling(t *testing.T) {
	if _, err := New("bad", 3).Program(); err == nil {
		t.Error("expected error for bad vector size")
	}

	// Program with no outputs fails validation.
	b := New("noout", 8)
	b.Input("x", 30)
	if _, err := b.Program(); err == nil {
		t.Error("expected error for missing outputs")
	}

	// Sticky errors: once a bad op happens, Program reports it and later
	// operations do not panic.
	b2 := New("sticky", 8)
	x := b2.Input("x", 30)
	bad := x.SumSlots(3) // not a power of two
	_ = bad.Add(x).Mul(x).Neg().RotateLeft(1).RotateRight(1).Square()
	b2.Output("out", x, 30)
	if _, err := b2.Program(); err == nil {
		t.Error("expected sticky error to surface")
	}
	if b2.Err() == nil {
		t.Error("Err() should report the sticky error")
	}

	// Pow with invalid exponent.
	b3 := New("pow", 8)
	y := b3.Input("y", 30)
	_ = y.Pow(0)
	if b3.Err() == nil {
		t.Error("expected error for Pow(0)")
	}

	// Mixing builders.
	b4, b5 := New("a", 8), New("b", 8)
	xa := b4.Input("x", 30)
	xb := b5.Input("x", 30)
	_ = xa.Add(xb)
	if b4.Err() == nil {
		t.Error("expected error when mixing expressions from different builders")
	}

	// Output of an invalid expression.
	b6 := New("badout", 8)
	b6.Output("o", Expr{}, 30)
	if b6.Err() == nil {
		t.Error("expected error for invalid output expression")
	}

	// MustProgram panics on error.
	defer func() {
		if recover() == nil {
			t.Error("MustProgram should panic on invalid program")
		}
	}()
	New("panic", 8).MustProgram()
}

func TestBuilderDuplicateNames(t *testing.T) {
	b := New("dup", 8)
	x := b.Input("x", 30)
	_ = b.Input("x", 30)
	b.Output("out", x, 30)
	if _, err := b.Program(); err == nil {
		t.Error("expected error for duplicate input name")
	}

	b2 := New("dupout", 8)
	y := b2.Input("y", 30)
	b2.Output("o", y, 30)
	b2.Output("o", y, 30)
	if _, err := b2.Program(); err == nil {
		t.Error("expected error for duplicate output name")
	}
}

func TestBuilderProducesValidInputProgram(t *testing.T) {
	b := New("valid", 8)
	x := b.Input("x", 30)
	b.Output("out", x.Square().Add(x), 30)
	p := b.MustProgram()
	if err := p.ValidateStructure(true); err != nil {
		t.Fatal(err)
	}
	for _, term := range p.Terms() {
		if term.Op.IsCompilerOp() {
			t.Errorf("builder emitted compiler-only op %s", term.Op)
		}
	}
	if p.NumTerms() == 0 || p.Terms()[0].Op != core.OpInput {
		t.Error("unexpected program shape")
	}
}
