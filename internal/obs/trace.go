// Package obs is the serving stack's observability layer: request tracing
// with cross-node propagation, latency histograms, a Prometheus text
// exposition writer, and log/slog construction helpers — all with zero
// external dependencies.
//
// A trace is minted at ingress (or adopted from the X-Eva-Trace header when
// a cluster peer forwarded the request) and accumulates spans for every
// phase the request crosses: route handling, compilation, admission, queue
// wait, coalesce wait, execution, store writes, and cluster proxying.
// Traces are reference counted so a trace can outlive the HTTP exchange
// that started it — an async job holds a reference until it turns terminal
// — and finished traces land in a bounded ring buffer served by
// GET /traces and GET /jobs/{id}/trace. Span durations are folded into
// per-phase histograms for the Prometheus exposition, and traces slower
// than a configurable threshold are logged with a structured breakdown.
package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"log/slog"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// TraceHeader carries a request's trace id. evaserve returns it on every
// response and adopts it from incoming requests, and the cluster tier
// propagates it alongside X-Eva-Forwarded on every hop, so one id follows a
// request across the whole cluster.
const TraceHeader = "X-Eva-Trace"

// Log attribute keys shared by every package that logs through obs, so one
// grep (or one structured query) follows an id across layers.
const (
	LogTraceID = "trace_id"
	LogNodeID  = "node"
	LogJobID   = "job_id"
)

// NewTraceID mints a 16-hex-digit trace id.
func NewTraceID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing means the process is in serious trouble; a
		// constant id keeps tracing degraded-but-harmless instead of fatal.
		return "0000000000000000"
	}
	return hex.EncodeToString(b[:])
}

// Span is one timed phase of a trace. All methods are nil-receiver safe, so
// instrumented code paths need no "is tracing on" guards.
type Span struct {
	t      *Trace
	id     int
	parent int // 0 = no parent (span ids start at 1)
	name   string
	start  time.Time
	end    time.Time
	attrs  map[string]string

	// progress is updated lock-free from the executor's per-instruction
	// callback and folded into the attrs when the span ends.
	progDone  atomic.Int64
	progTotal atomic.Int64
}

// SetAttr attaches a key/value to the span.
func (sp *Span) SetAttr(key, value string) {
	if sp == nil {
		return
	}
	sp.t.mu.Lock()
	if sp.attrs == nil {
		sp.attrs = map[string]string{}
	}
	sp.attrs[key] = value
	sp.t.mu.Unlock()
}

// Progress records instruction progress (an execute.RunOptions.Progress
// callback). It is cheap enough for per-instruction use.
func (sp *Span) Progress(done, total int) {
	if sp == nil {
		return
	}
	sp.progDone.Store(int64(done))
	sp.progTotal.Store(int64(total))
}

// End closes the span. Ending an already-ended span is a no-op.
func (sp *Span) End() {
	if sp == nil {
		return
	}
	sp.t.mu.Lock()
	if sp.end.IsZero() {
		sp.end = time.Now()
		sp.foldProgressLocked()
	}
	sp.t.mu.Unlock()
}

func (sp *Span) foldProgressLocked() {
	if total := sp.progTotal.Load(); total > 0 {
		if sp.attrs == nil {
			sp.attrs = map[string]string{}
		}
		sp.attrs["instructions_done"] = itoa64(sp.progDone.Load())
		sp.attrs["instructions_total"] = itoa64(total)
	}
}

// Trace is one request's (or job's) span collection. A trace stays active —
// queryable by id or job id, accepting new spans — until its reference
// count drops to zero; Start and Hold take references, Release drops one.
type Trace struct {
	tr    *Tracer
	id    string
	node  string
	start time.Time

	mu     sync.Mutex
	spans  []*Span
	nextID int
	jobID  string
	refs   int
	end    time.Time
	done   bool
}

// ID returns the trace id ("" on a nil trace).
func (t *Trace) ID() string {
	if t == nil {
		return ""
	}
	return t.id
}

// JobID returns the bound job id, if any.
func (t *Trace) JobID() string {
	if t == nil {
		return ""
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.jobID
}

// BindJob associates the trace with a job id so GET /jobs/{id}/trace can
// find it. Bind before the job becomes runnable to avoid racing its finish.
func (t *Trace) BindJob(jobID string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.jobID = jobID
	t.mu.Unlock()
}

// StartSpan opens a span under parent (nil = root). Spans may be started
// from any goroutine holding the trace.
func (t *Trace) StartSpan(name string, parent *Span) *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.done {
		return nil // the trace already finished; drop the span
	}
	t.nextID++
	sp := &Span{t: t, id: t.nextID, name: name, start: time.Now()}
	if parent != nil {
		sp.parent = parent.id
	}
	t.spans = append(t.spans, sp)
	return sp
}

// Hold takes an extra reference: the trace will not finish until a matching
// Release. An async job holds its trace from admission to terminal status.
func (t *Trace) Hold() {
	if t == nil {
		return
	}
	t.tr.mu.Lock()
	t.refs++
	t.tr.mu.Unlock()
}

// Release drops one reference; the last release finishes the trace: open
// spans are closed, per-phase durations feed the tracer's histograms, the
// trace moves from the active table to the finished ring, and a slow trace
// is logged with its phase breakdown.
func (t *Trace) Release() {
	if t == nil {
		return
	}
	t.tr.mu.Lock()
	t.refs--
	if t.refs > 0 {
		t.tr.mu.Unlock()
		return
	}
	delete(t.tr.active, t.id)
	t.tr.mu.Unlock()
	t.finish()
}

func (t *Trace) finish() {
	now := time.Now()
	t.mu.Lock()
	t.done = true
	t.end = now
	for _, sp := range t.spans {
		if sp.end.IsZero() {
			sp.end = now
			sp.foldProgressLocked()
		}
	}
	t.mu.Unlock()

	tr := t.tr
	dur := now.Sub(t.start)
	tr.mu.Lock()
	for _, sp := range t.spans {
		h := tr.phases[sp.name]
		if h == nil {
			h = NewHistogram(DurationBounds)
			tr.phases[sp.name] = h
		}
		h.Observe(sp.end.Sub(sp.start).Seconds())
	}
	tr.ring[tr.ringPos%len(tr.ring)] = t
	tr.ringPos++
	tr.mu.Unlock()

	if tr.cfg.SlowThreshold > 0 && dur >= tr.cfg.SlowThreshold && tr.log != nil {
		// The tracer's logger already carries the node attr (the server
		// constructs it with .With), so only the per-trace attrs go here.
		attrs := []any{
			slog.String(LogTraceID, t.id),
			slog.Duration("duration", dur),
		}
		if job := t.JobID(); job != "" {
			attrs = append(attrs, slog.String(LogJobID, job))
		}
		// The breakdown: one attr per span, longest first, so the slow phase
		// is readable straight off the log line.
		t.mu.Lock()
		spans := append([]*Span(nil), t.spans...)
		t.mu.Unlock()
		sort.Slice(spans, func(i, j int) bool {
			return spans[i].end.Sub(spans[i].start) > spans[j].end.Sub(spans[j].start)
		})
		for i, sp := range spans {
			if i == 8 {
				break // a screenful is enough; the full tree is in /traces
			}
			attrs = append(attrs, slog.Duration("phase."+sp.name, sp.end.Sub(sp.start)))
		}
		tr.log.Warn("slow trace", attrs...)
	}
}

// TracerConfig configures a Tracer. Zero values select the defaults.
type TracerConfig struct {
	// Node labels every trace with the owning node id.
	Node string
	// Capacity bounds the finished-trace ring buffer (default 256).
	Capacity int
	// SlowThreshold is the duration at or above which a finished trace is
	// logged with its phase breakdown (default 0 = disabled).
	SlowThreshold time.Duration
	// MaxActive bounds the active-trace table: beyond it, new traces are
	// still functional (spans record, ids propagate) but not registered for
	// lookup, so a reference leak cannot grow the table without bound
	// (default 4096).
	MaxActive int
	// Logger receives slow-trace records; nil disables them.
	Logger *slog.Logger
}

// defaultMaxActiveTraces is the default TracerConfig.MaxActive bound.
const defaultMaxActiveTraces = 4096

// Tracer owns a node's traces: the active table (reference-counted,
// in-flight) and the bounded ring of finished traces.
type Tracer struct {
	cfg TracerConfig
	log *slog.Logger

	mu      sync.Mutex
	active  map[string]*Trace
	ring    []*Trace
	ringPos int
	phases  map[string]*Histogram
}

// NewTracer builds a tracer.
func NewTracer(cfg TracerConfig) *Tracer {
	if cfg.Capacity <= 0 {
		cfg.Capacity = 256
	}
	if cfg.MaxActive <= 0 {
		cfg.MaxActive = defaultMaxActiveTraces
	}
	return &Tracer{
		cfg:    cfg,
		log:    cfg.Logger,
		active: map[string]*Trace{},
		ring:   make([]*Trace, cfg.Capacity),
		phases: map[string]*Histogram{},
	}
}

// Start returns the trace for id, taking a reference: the active trace with
// that id if one exists (a cluster self-call re-entering the same node), or
// a fresh trace adopting id (a forwarded hop), or — when id is empty — a
// fresh trace with a newly minted id (ingress). Pair every Start with a
// Release.
func (tr *Tracer) Start(id string) *Trace {
	if tr == nil {
		return nil
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	if id != "" {
		if t, ok := tr.active[id]; ok {
			t.refs++
			return t
		}
	} else {
		id = NewTraceID()
	}
	t := &Trace{tr: tr, id: id, node: tr.cfg.Node, start: time.Now(), refs: 1}
	if len(tr.active) < tr.cfg.MaxActive {
		tr.active[id] = t
	}
	return t
}

// Get returns the JSON form of a trace by id, searching active traces first
// and then the finished ring.
func (tr *Tracer) Get(id string) (TraceJSON, bool) {
	if tr == nil {
		return TraceJSON{}, false
	}
	tr.mu.Lock()
	t := tr.active[id]
	if t == nil {
		for _, fin := range tr.ring {
			if fin != nil && fin.id == id {
				t = fin
				break
			}
		}
	}
	tr.mu.Unlock()
	if t == nil {
		return TraceJSON{}, false
	}
	return t.JSON(), true
}

// ByJob returns the JSON form of the trace bound to a job id.
func (tr *Tracer) ByJob(jobID string) (TraceJSON, bool) {
	if tr == nil || jobID == "" {
		return TraceJSON{}, false
	}
	tr.mu.Lock()
	var t *Trace
	for _, a := range tr.active {
		if a.JobID() == jobID {
			t = a
			break
		}
	}
	if t == nil {
		for _, fin := range tr.ring {
			if fin != nil && fin.JobID() == jobID {
				t = fin
				break
			}
		}
	}
	tr.mu.Unlock()
	if t == nil {
		return TraceJSON{}, false
	}
	return t.JSON(), true
}

// TraceIDForJob returns the trace id bound to a job id, if any.
func (tr *Tracer) TraceIDForJob(jobID string) string {
	if t, ok := tr.ByJob(jobID); ok {
		return t.TraceID
	}
	return ""
}

// Recent returns finished traces, newest first, filtered to those at least
// minDur long and capped at limit (0 = the whole ring).
func (tr *Tracer) Recent(minDur time.Duration, limit int) []TraceJSON {
	if tr == nil {
		return nil
	}
	tr.mu.Lock()
	n := len(tr.ring)
	traces := make([]*Trace, 0, n)
	for i := 1; i <= n; i++ {
		t := tr.ring[(tr.ringPos-i%n+n)%n]
		if t == nil {
			continue
		}
		traces = append(traces, t)
	}
	tr.mu.Unlock()
	if limit <= 0 {
		limit = n
	}
	out := make([]TraceJSON, 0, limit)
	for _, t := range traces {
		t.mu.Lock()
		dur := t.end.Sub(t.start)
		t.mu.Unlock()
		if dur < minDur {
			continue
		}
		out = append(out, t.JSON())
		if len(out) == limit {
			break
		}
	}
	return out
}

// PhaseHistograms snapshots the per-phase (span name) duration histograms.
func (tr *Tracer) PhaseHistograms() map[string]HistogramSnapshot {
	if tr == nil {
		return nil
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	out := make(map[string]HistogramSnapshot, len(tr.phases))
	for name, h := range tr.phases {
		out[name] = h.Snapshot()
	}
	return out
}

// SpanJSON is the wire form of one span, with children nested.
type SpanJSON struct {
	Name       string            `json:"name"`
	StartMS    float64           `json:"start_ms"` // offset from the trace start
	DurationMS float64           `json:"duration_ms"`
	Attrs      map[string]string `json:"attrs,omitempty"`
	Children   []SpanJSON        `json:"children,omitempty"`
}

// TraceJSON is the wire form of a trace: the span tree served by
// GET /traces and GET /jobs/{id}/trace.
type TraceJSON struct {
	TraceID    string     `json:"trace_id"`
	Node       string     `json:"node,omitempty"`
	JobID      string     `json:"job_id,omitempty"`
	StartedAt  string     `json:"started_at"`
	DurationMS float64    `json:"duration_ms"`
	Finished   bool       `json:"finished"`
	Spans      []SpanJSON `json:"spans"`
}

// JSON snapshots the trace into its wire form. Safe on live traces.
func (t *Trace) JSON() TraceJSON {
	t.mu.Lock()
	defer t.mu.Unlock()
	end := t.end
	if end.IsZero() {
		end = time.Now()
	}
	out := TraceJSON{
		TraceID:    t.id,
		Node:       t.node,
		JobID:      t.jobID,
		StartedAt:  t.start.UTC().Format(time.RFC3339Nano),
		DurationMS: float64(end.Sub(t.start)) / float64(time.Millisecond),
		Finished:   t.done,
		Spans:      []SpanJSON{},
	}
	// Spans are stored in start order with children strictly after their
	// parents, so a recursive build preserves sibling order.
	byID := make(map[int]*Span, len(t.spans))
	children := make(map[int][]int, len(t.spans))
	var roots []int
	for _, sp := range t.spans {
		byID[sp.id] = sp
		if sp.parent == 0 {
			roots = append(roots, sp.id)
		} else {
			children[sp.parent] = append(children[sp.parent], sp.id)
		}
	}
	var build func(id int) SpanJSON
	build = func(id int) SpanJSON {
		sp := byID[id]
		spEnd := sp.end
		if spEnd.IsZero() {
			spEnd = end
		}
		js := SpanJSON{
			Name:       sp.name,
			StartMS:    float64(sp.start.Sub(t.start)) / float64(time.Millisecond),
			DurationMS: float64(spEnd.Sub(sp.start)) / float64(time.Millisecond),
		}
		if len(sp.attrs) > 0 {
			js.Attrs = make(map[string]string, len(sp.attrs))
			for k, v := range sp.attrs {
				js.Attrs[k] = v
			}
		}
		for _, cid := range children[id] {
			js.Children = append(js.Children, build(cid))
		}
		return js
	}
	for _, id := range roots {
		out.Spans = append(out.Spans, build(id))
	}
	return out
}

// --- context propagation ---

type traceCtxKey struct{}

// ContextWithTrace attaches a trace to a context.
func ContextWithTrace(ctx context.Context, t *Trace) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, traceCtxKey{}, t)
}

// TraceFromContext returns the context's trace, or nil.
func TraceFromContext(ctx context.Context) *Trace {
	if ctx == nil {
		return nil
	}
	t, _ := ctx.Value(traceCtxKey{}).(*Trace)
	return t
}

type spanCtxKey struct{}

// ContextWithSpan attaches the current span so downstream phases can parent
// their spans under it.
func ContextWithSpan(ctx context.Context, sp *Span) context.Context {
	if sp == nil {
		return ctx
	}
	return context.WithValue(ctx, spanCtxKey{}, sp)
}

// SpanFromContext returns the context's current span, or nil.
func SpanFromContext(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	sp, _ := ctx.Value(spanCtxKey{}).(*Span)
	return sp
}

func itoa64(v int64) string { return strconv.FormatInt(v, 10) }
