package obs

// Histogram is a fixed-bound latency histogram in seconds, shaped for
// Prometheus cumulative exposition. It is NOT internally synchronized: the
// owner (Tracer, serve.Metrics) guards it with its own mutex, which keeps
// the hot Observe path to a couple of adds under an already-held lock.
type Histogram struct {
	bounds []float64 // upper bounds, ascending; +Inf implied
	counts []uint64  // len(bounds)+1; last is overflow
	sum    float64
	total  uint64
}

// DurationBounds are the default request/phase latency bucket upper bounds
// (seconds): 1ms to 10s, roughly geometric.
var DurationBounds = []float64{0.001, 0.005, 0.025, 0.1, 0.5, 2.5, 10}

// NewHistogram builds a histogram over the given ascending upper bounds
// (seconds). The bounds slice is retained, not copied.
func NewHistogram(bounds []float64) *Histogram {
	return &Histogram{bounds: bounds, counts: make([]uint64, len(bounds)+1)}
}

// Observe records one value (seconds).
func (h *Histogram) Observe(v float64) {
	for i, b := range h.bounds {
		if v <= b {
			h.counts[i]++
			h.sum += v
			h.total++
			return
		}
	}
	h.counts[len(h.bounds)]++
	h.sum += v
	h.total++
}

// HistogramSnapshot is a point-in-time copy safe to render after the
// owner's lock is released.
type HistogramSnapshot struct {
	Bounds []float64 // upper bounds (seconds), ascending; +Inf implied
	Counts []uint64  // per-bucket (non-cumulative); len(Bounds)+1
	Sum    float64   // sum of observed values (seconds)
	Count  uint64    // total observations
}

// Snapshot copies the histogram. Call with the owner's lock held.
func (h *Histogram) Snapshot() HistogramSnapshot {
	return HistogramSnapshot{
		Bounds: h.bounds,
		Counts: append([]uint64(nil), h.counts...),
		Sum:    h.sum,
		Count:  h.total,
	}
}
