package obs

import (
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// ParseLevel maps a -log-level flag value to a slog.Level.
func ParseLevel(s string) (slog.Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return slog.LevelDebug, nil
	case "info", "":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("unknown log level %q (want debug, info, warn, or error)", s)
}

// NewLogger builds a slog.Logger writing to w in the given format ("text"
// or "json") at the given minimum level.
func NewLogger(w io.Writer, level slog.Level, format string) (*slog.Logger, error) {
	opts := &slog.HandlerOptions{Level: level}
	switch strings.ToLower(strings.TrimSpace(format)) {
	case "text", "":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	}
	return nil, fmt.Errorf("unknown log format %q (want text or json)", format)
}

// NopLogger returns a logger that discards everything — the default for
// library packages when the caller wires no logger, keeping tests quiet.
func NopLogger() *slog.Logger {
	return slog.New(slog.DiscardHandler)
}
