package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// PromWriter renders the Prometheus text exposition format (version 0.0.4)
// by hand — the repo takes no external dependencies. Errors are sticky:
// rendering continues silently and the first error is reported by Err.
type PromWriter struct {
	w   io.Writer
	err error
}

// NewPromWriter wraps w.
func NewPromWriter(w io.Writer) *PromWriter { return &PromWriter{w: w} }

// Err reports the first write error, if any.
func (p *PromWriter) Err() error { return p.err }

func (p *PromWriter) printf(format string, args ...any) {
	if p.err != nil {
		return
	}
	_, p.err = fmt.Fprintf(p.w, format, args...)
}

// Meta emits the # HELP and # TYPE lines for a metric family. typ is one of
// "counter", "gauge", or "histogram".
func (p *PromWriter) Meta(name, help, typ string) {
	esc := strings.NewReplacer(`\`, `\\`, "\n", `\n`).Replace(help)
	p.printf("# HELP %s %s\n", name, esc)
	p.printf("# TYPE %s %s\n", name, typ)
}

// Sample emits one sample line with optional labels.
func (p *PromWriter) Sample(name string, labels map[string]string, value float64) {
	p.printf("%s%s %s\n", name, renderLabels(labels), formatValue(value))
}

// Histogram emits the _bucket/_sum/_count triplet for one histogram series,
// converting the snapshot's per-bucket counts to Prometheus cumulative
// form and appending the +Inf bucket.
func (p *PromWriter) Histogram(name string, labels map[string]string, snap HistogramSnapshot) {
	var cum uint64
	for i, b := range snap.Bounds {
		cum += snap.Counts[i]
		p.printf("%s_bucket%s %d\n", name, renderLabels(withLE(labels, formatValue(b))), cum)
	}
	p.printf("%s_bucket%s %d\n", name, renderLabels(withLE(labels, "+Inf")), snap.Count)
	p.printf("%s_sum%s %s\n", name, renderLabels(labels), formatValue(snap.Sum))
	p.printf("%s_count%s %d\n", name, renderLabels(labels), snap.Count)
}

func withLE(labels map[string]string, le string) map[string]string {
	out := make(map[string]string, len(labels)+1)
	for k, v := range labels {
		out[k] = v
	}
	out["le"] = le
	return out
}

func renderLabels(labels map[string]string) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	esc := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	var sb strings.Builder
	sb.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(k)
		sb.WriteString(`="`)
		sb.WriteString(esc.Replace(labels[k]))
		sb.WriteByte('"')
	}
	sb.WriteByte('}')
	return sb.String()
}

func formatValue(v float64) string {
	switch {
	case math.IsInf(v, +1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// --- strict exposition parser (used by conformance tests and tooling) ---

// PromSample is one parsed sample line.
type PromSample struct {
	Name   string
	Labels map[string]string
	Value  float64
	Line   int
}

// PromFamily collects what the parser learned about one metric family.
type PromFamily struct {
	Name    string
	Help    string
	Type    string
	Samples []PromSample
}

// ParseExposition parses Prometheus text exposition strictly, rejecting
// anything a real scraper would: malformed names or labels, samples without
// a preceding # TYPE, duplicate HELP/TYPE lines, duplicate series,
// histograms with non-cumulative buckets or missing +Inf/_sum/_count. It
// returns the families keyed by base metric name (histogram _bucket/_sum/
// _count samples are grouped under their family).
func ParseExposition(data []byte) (map[string]*PromFamily, error) {
	families := map[string]*PromFamily{}
	seenSeries := map[string]int{}
	var lastMeta string // most recent family introduced by # TYPE

	lines := strings.Split(string(data), "\n")
	for i, line := range lines {
		ln := i + 1
		if line == "" {
			if i != len(lines)-1 {
				return nil, fmt.Errorf("line %d: blank line inside exposition", ln)
			}
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 3 || fields[0] != "#" || (fields[1] != "HELP" && fields[1] != "TYPE") {
				return nil, fmt.Errorf("line %d: malformed comment %q", ln, line)
			}
			name := fields[2]
			if !validMetricName(name) {
				return nil, fmt.Errorf("line %d: invalid metric name %q", ln, name)
			}
			fam := families[name]
			if fam == nil {
				fam = &PromFamily{Name: name}
				families[name] = fam
			}
			switch fields[1] {
			case "HELP":
				if fam.Help != "" {
					return nil, fmt.Errorf("line %d: duplicate HELP for %q", ln, name)
				}
				if len(fields) < 4 || fields[3] == "" {
					return nil, fmt.Errorf("line %d: empty HELP text for %q", ln, name)
				}
				fam.Help = fields[3]
			case "TYPE":
				if fam.Type != "" {
					return nil, fmt.Errorf("line %d: duplicate TYPE for %q", ln, name)
				}
				if len(fam.Samples) > 0 {
					return nil, fmt.Errorf("line %d: TYPE for %q after its samples", ln, name)
				}
				typ := fields[3]
				switch typ {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return nil, fmt.Errorf("line %d: invalid TYPE %q for %q", ln, typ, name)
				}
				fam.Type = typ
				lastMeta = name
			}
			continue
		}

		sample, err := parseSampleLine(line, ln)
		if err != nil {
			return nil, err
		}
		famName, ok := familyFor(families, sample.Name)
		if !ok {
			return nil, fmt.Errorf("line %d: sample %q has no preceding # TYPE", ln, sample.Name)
		}
		fam := families[famName]
		if famName != lastMeta {
			return nil, fmt.Errorf("line %d: sample %q interleaved outside its %q family block", ln, sample.Name, famName)
		}
		series := sample.Name + renderLabels(sample.Labels)
		if prev, dup := seenSeries[series]; dup {
			return nil, fmt.Errorf("line %d: duplicate series %s (first at line %d)", ln, series, prev)
		}
		seenSeries[series] = ln
		fam.Samples = append(fam.Samples, sample)
	}

	for _, fam := range families {
		if fam.Type == "" {
			return nil, fmt.Errorf("family %q has HELP but no TYPE", fam.Name)
		}
		if len(fam.Samples) == 0 {
			return nil, fmt.Errorf("family %q has no samples", fam.Name)
		}
		if fam.Type == "histogram" {
			if err := checkHistogramFamily(fam); err != nil {
				return nil, err
			}
		}
	}
	return families, nil
}

// familyFor maps a sample name to its family: exact for counters/gauges,
// stripped of _bucket/_sum/_count for histogram members.
func familyFor(families map[string]*PromFamily, sample string) (string, bool) {
	if fam, ok := families[sample]; ok && fam.Type != "" {
		return sample, true
	}
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(sample, suffix)
		if base == sample {
			continue
		}
		if fam, ok := families[base]; ok && fam.Type == "histogram" {
			return base, true
		}
	}
	return "", false
}

func checkHistogramFamily(fam *PromFamily) error {
	// Group by label set minus le, then check each series: cumulative
	// buckets, +Inf present and equal to _count, _sum and _count present.
	type series struct {
		buckets []PromSample
		sum     *PromSample
		count   *PromSample
	}
	groups := map[string]*series{}
	keyOf := func(s PromSample) string {
		labels := make(map[string]string, len(s.Labels))
		for k, v := range s.Labels {
			if k != "le" {
				labels[k] = v
			}
		}
		return renderLabels(labels)
	}
	for _, s := range fam.Samples {
		g := groups[keyOf(s)]
		if g == nil {
			g = &series{}
			groups[keyOf(s)] = g
		}
		sc := s
		switch {
		case strings.HasSuffix(s.Name, "_bucket"):
			if _, ok := s.Labels["le"]; !ok {
				return fmt.Errorf("line %d: %s without le label", s.Line, s.Name)
			}
			g.buckets = append(g.buckets, sc)
		case strings.HasSuffix(s.Name, "_sum"):
			g.sum = &sc
		case strings.HasSuffix(s.Name, "_count"):
			g.count = &sc
		default:
			return fmt.Errorf("line %d: unexpected sample %q in histogram family %q", s.Line, s.Name, fam.Name)
		}
	}
	for key, g := range groups {
		if len(g.buckets) == 0 || g.sum == nil || g.count == nil {
			return fmt.Errorf("histogram %s%s: missing _bucket, _sum, or _count", fam.Name, key)
		}
		prevBound := math.Inf(-1)
		prevCum := -1.0
		sawInf := false
		for _, b := range g.buckets {
			bound, err := parseLE(b.Labels["le"])
			if err != nil {
				return fmt.Errorf("line %d: bad le %q: %v", b.Line, b.Labels["le"], err)
			}
			if bound <= prevBound {
				return fmt.Errorf("line %d: histogram %s buckets not in ascending le order", b.Line, fam.Name)
			}
			if b.Value < prevCum {
				return fmt.Errorf("line %d: histogram %s bucket counts not cumulative", b.Line, fam.Name)
			}
			prevBound, prevCum = bound, b.Value
			if math.IsInf(bound, +1) {
				sawInf = true
				if b.Value != g.count.Value {
					return fmt.Errorf("line %d: histogram %s +Inf bucket (%g) != _count (%g)", b.Line, fam.Name, b.Value, g.count.Value)
				}
			}
		}
		if !sawInf {
			return fmt.Errorf("histogram %s%s: missing +Inf bucket", fam.Name, key)
		}
	}
	return nil
}

func parseLE(s string) (float64, error) {
	if s == "+Inf" {
		return math.Inf(+1), nil
	}
	return strconv.ParseFloat(s, 64)
}

func parseSampleLine(line string, ln int) (PromSample, error) {
	s := PromSample{Line: ln, Labels: map[string]string{}}
	rest := line
	// Metric name.
	end := 0
	for end < len(rest) && isNameChar(rest[end], end == 0) {
		end++
	}
	if end == 0 {
		return s, fmt.Errorf("line %d: missing metric name in %q", ln, line)
	}
	s.Name = rest[:end]
	rest = rest[end:]
	// Optional label block.
	if strings.HasPrefix(rest, "{") {
		rest = rest[1:]
		for {
			if strings.HasPrefix(rest, "}") {
				rest = rest[1:]
				break
			}
			le := 0
			for le < len(rest) && isLabelChar(rest[le], le == 0) {
				le++
			}
			if le == 0 || le >= len(rest) || rest[le] != '=' {
				return s, fmt.Errorf("line %d: malformed label in %q", ln, line)
			}
			key := rest[:le]
			rest = rest[le+1:]
			if !strings.HasPrefix(rest, `"`) {
				return s, fmt.Errorf("line %d: unquoted label value in %q", ln, line)
			}
			rest = rest[1:]
			var val strings.Builder
			closed := false
			for len(rest) > 0 {
				c := rest[0]
				if c == '\\' {
					if len(rest) < 2 {
						return s, fmt.Errorf("line %d: dangling escape in %q", ln, line)
					}
					switch rest[1] {
					case '\\':
						val.WriteByte('\\')
					case '"':
						val.WriteByte('"')
					case 'n':
						val.WriteByte('\n')
					default:
						return s, fmt.Errorf("line %d: invalid escape \\%c in %q", ln, rest[1], line)
					}
					rest = rest[2:]
					continue
				}
				if c == '"' {
					rest = rest[1:]
					closed = true
					break
				}
				val.WriteByte(c)
				rest = rest[1:]
			}
			if !closed {
				return s, fmt.Errorf("line %d: unterminated label value in %q", ln, line)
			}
			if _, dup := s.Labels[key]; dup {
				return s, fmt.Errorf("line %d: duplicate label %q in %q", ln, key, line)
			}
			s.Labels[key] = val.String()
			if strings.HasPrefix(rest, ",") {
				rest = rest[1:]
			} else if !strings.HasPrefix(rest, "}") {
				return s, fmt.Errorf("line %d: expected ',' or '}' in label block of %q", ln, line)
			}
		}
	}
	if !strings.HasPrefix(rest, " ") {
		return s, fmt.Errorf("line %d: expected space before value in %q", ln, line)
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return s, fmt.Errorf("line %d: expected value (and optional timestamp) in %q", ln, line)
	}
	v, err := parseLE(fields[0]) // accepts floats and +Inf
	if err != nil {
		if fields[0] == "-Inf" {
			v = math.Inf(-1)
		} else if fields[0] == "NaN" {
			v = math.NaN()
		} else {
			return s, fmt.Errorf("line %d: bad value %q: %v", ln, fields[0], err)
		}
	}
	s.Value = v
	if len(fields) == 2 {
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			return s, fmt.Errorf("line %d: bad timestamp %q", ln, fields[1])
		}
	}
	return s, nil
}

func isNameChar(c byte, first bool) bool {
	switch {
	case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		return true
	case c >= '0' && c <= '9':
		return !first
	}
	return false
}

func isLabelChar(c byte, first bool) bool {
	switch {
	case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
		return true
	case c >= '0' && c <= '9':
		return !first
	}
	return false
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		if !isNameChar(s[i], i == 0) {
			return false
		}
	}
	return true
}
