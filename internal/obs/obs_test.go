package obs

import (
	"bytes"
	"context"
	"fmt"
	"log/slog"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTraceLifecycle(t *testing.T) {
	tr := NewTracer(TracerConfig{Node: "n1", Capacity: 8})
	trace := tr.Start("")
	if trace.ID() == "" {
		t.Fatal("expected minted trace id")
	}
	root := trace.StartSpan("route:jobs_submit", nil)
	root.SetAttr("route", "jobs_submit")
	child := trace.StartSpan("queue_wait", root)
	child.Progress(3, 7)
	child.End()
	root.End()

	if _, ok := tr.Get(trace.ID()); !ok {
		t.Fatal("active trace should be queryable by id")
	}
	trace.BindJob("job-1")
	trace.Release()

	js, ok := tr.ByJob("job-1")
	if !ok {
		t.Fatal("finished trace should be queryable by job id")
	}
	if !js.Finished {
		t.Fatal("trace should be marked finished")
	}
	if len(js.Spans) != 1 || js.Spans[0].Name != "route:jobs_submit" {
		t.Fatalf("unexpected span tree: %+v", js.Spans)
	}
	if len(js.Spans[0].Children) != 1 || js.Spans[0].Children[0].Name != "queue_wait" {
		t.Fatalf("child span missing: %+v", js.Spans[0])
	}
	if got := js.Spans[0].Children[0].Attrs["instructions_done"]; got != "3" {
		t.Fatalf("progress not folded into attrs: %+v", js.Spans[0].Children[0].Attrs)
	}
	if got := js.Spans[0].Attrs["route"]; got != "jobs_submit" {
		t.Fatalf("attr missing: %+v", js.Spans[0].Attrs)
	}

	phases := tr.PhaseHistograms()
	if phases["queue_wait"].Count != 1 || phases["route:jobs_submit"].Count != 1 {
		t.Fatalf("phase histograms not fed: %+v", phases)
	}
}

func TestTraceRefcountMerge(t *testing.T) {
	tr := NewTracer(TracerConfig{Capacity: 4})
	a := tr.Start("deadbeefdeadbeef")
	b := tr.Start("deadbeefdeadbeef") // a cluster self-call re-entering the node
	if a != b {
		t.Fatal("same active id should return the same trace")
	}
	a.StartSpan("outer", nil).End()
	b.Release()
	if _, ok := tr.Get("deadbeefdeadbeef"); !ok {
		t.Fatal("trace must stay active while references remain")
	}
	js, _ := tr.Get("deadbeefdeadbeef")
	if js.Finished {
		t.Fatal("trace must not be finished with a live reference")
	}
	a.Release()
	js, ok := tr.Get("deadbeefdeadbeef")
	if !ok || !js.Finished {
		t.Fatalf("trace should be finished and in the ring: ok=%v finished=%v", ok, js.Finished)
	}
}

func TestTraceHoldOutlivesRequest(t *testing.T) {
	tr := NewTracer(TracerConfig{Capacity: 4})
	trace := tr.Start("")
	trace.Hold()    // async job takes a reference
	trace.Release() // HTTP exchange ends
	id := trace.ID()
	if js, _ := tr.Get(id); js.Finished {
		t.Fatal("held trace finished early")
	}
	trace.StartSpan("execute", nil).End()
	trace.Release() // job turns terminal
	js, ok := tr.Get(id)
	if !ok || !js.Finished || len(js.Spans) != 1 {
		t.Fatalf("unexpected final trace: ok=%v %+v", ok, js)
	}
}

func TestRecentFilters(t *testing.T) {
	tr := NewTracer(TracerConfig{Capacity: 4})
	for i := 0; i < 6; i++ {
		trace := tr.Start("")
		trace.StartSpan(fmt.Sprintf("s%d", i), nil).End()
		trace.Release()
	}
	recent := tr.Recent(0, 0)
	if len(recent) != 4 {
		t.Fatalf("ring should cap at 4, got %d", len(recent))
	}
	// Newest first: the last-finished trace holds span s5.
	if recent[0].Spans[0].Name != "s5" {
		t.Fatalf("expected newest first, got %q", recent[0].Spans[0].Name)
	}
	if got := tr.Recent(0, 2); len(got) != 2 {
		t.Fatalf("limit not applied: %d", len(got))
	}
	if got := tr.Recent(time.Hour, 0); len(got) != 0 {
		t.Fatalf("min-duration filter not applied: %d", len(got))
	}
}

func TestSlowTraceLogged(t *testing.T) {
	var buf bytes.Buffer
	log := slog.New(slog.NewTextHandler(&buf, nil))
	tr := NewTracer(TracerConfig{Capacity: 4, SlowThreshold: time.Nanosecond, Logger: log})
	trace := tr.Start("")
	sp := trace.StartSpan("execute", nil)
	time.Sleep(2 * time.Millisecond)
	sp.End()
	trace.BindJob("job-slow")
	trace.Release()
	out := buf.String()
	if !strings.Contains(out, "slow trace") || !strings.Contains(out, "phase.execute") {
		t.Fatalf("slow-trace breakdown missing: %q", out)
	}
	if !strings.Contains(out, "job_id=job-slow") {
		t.Fatalf("job id attr missing: %q", out)
	}
}

// TestMaxActiveBound: past the configured cap, Start still hands out a
// usable trace but stops tracking it, so a flood of concurrent requests
// cannot grow the active map without bound.
func TestMaxActiveBound(t *testing.T) {
	tr := NewTracer(TracerConfig{Capacity: 4, MaxActive: 2})
	t1 := tr.Start("trace-1")
	t2 := tr.Start("trace-2")
	t3 := tr.Start("trace-3")
	if _, ok := tr.Get("trace-1"); !ok {
		t.Fatal("first trace should be tracked")
	}
	if _, ok := tr.Get("trace-2"); !ok {
		t.Fatal("second trace should be tracked")
	}
	if _, ok := tr.Get("trace-3"); ok {
		t.Fatal("third trace should be shed by the MaxActive bound")
	}
	// The shed trace still works as a recorder.
	sp := t3.StartSpan("execute", nil)
	sp.End()
	t3.Release()
	t1.Release()
	t2.Release()
	if _, ok := tr.Get("trace-1"); !ok {
		t.Fatal("released trace should land in the finished ring")
	}
}

func TestNilSafety(t *testing.T) {
	var tr *Tracer
	trace := tr.Start("x")
	trace.Hold()
	trace.Release()
	trace.BindJob("j")
	sp := trace.StartSpan("s", nil)
	sp.SetAttr("k", "v")
	sp.Progress(1, 2)
	sp.End()
	if trace.ID() != "" || trace.JobID() != "" {
		t.Fatal("nil trace must behave as empty")
	}
	if TraceFromContext(ContextWithTrace(context.Background(), nil)) != nil {
		t.Fatal("nil trace must not be stored in context")
	}
}

func TestContextRoundTrip(t *testing.T) {
	tr := NewTracer(TracerConfig{})
	trace := tr.Start("")
	defer trace.Release()
	ctx := ContextWithTrace(context.Background(), trace)
	if TraceFromContext(ctx) != trace {
		t.Fatal("trace lost in context")
	}
}

func TestTracerConcurrency(t *testing.T) {
	tr := NewTracer(TracerConfig{Capacity: 16})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				trace := tr.Start("")
				trace.BindJob(fmt.Sprintf("job-%d-%d", g, i))
				sp := trace.StartSpan("work", nil)
				sp.Progress(i, 50)
				trace.StartSpan("inner", sp).End()
				sp.End()
				trace.Release()
				tr.Recent(0, 4)
				tr.PhaseHistograms()
			}
		}(g)
	}
	wg.Wait()
	if got := tr.PhaseHistograms()["work"].Count; got != 400 {
		t.Fatalf("expected 400 work spans, got %d", got)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram([]float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 4 || s.Counts[0] != 1 || s.Counts[1] != 1 || s.Counts[2] != 1 || s.Counts[3] != 1 {
		t.Fatalf("unexpected snapshot: %+v", s)
	}
	if s.Sum != 5.555 {
		t.Fatalf("unexpected sum: %v", s.Sum)
	}
}

func TestPromWriterRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	p := NewPromWriter(&buf)
	p.Meta("eva_requests_total", "Requests by route and status class.", "counter")
	p.Sample("eva_requests_total", map[string]string{"route": "execute", "code": "2xx"}, 41)
	p.Sample("eva_requests_total", map[string]string{"route": "execute", "code": "4xx"}, 1)
	p.Meta("eva_queue_depth", "Queued jobs.", "gauge")
	p.Sample("eva_queue_depth", nil, 3)
	h := NewHistogram([]float64{0.001, 0.1})
	h.Observe(0.0005)
	h.Observe(0.05)
	h.Observe(7)
	p.Meta("eva_request_duration_seconds", "Request latency.", "histogram")
	p.Histogram("eva_request_duration_seconds", map[string]string{"route": "execute"}, h.Snapshot())
	if err := p.Err(); err != nil {
		t.Fatal(err)
	}

	fams, err := ParseExposition(buf.Bytes())
	if err != nil {
		t.Fatalf("own output must parse strictly: %v\n%s", err, buf.String())
	}
	if len(fams) != 3 {
		t.Fatalf("expected 3 families, got %d", len(fams))
	}
	reqs := fams["eva_requests_total"]
	if reqs.Type != "counter" || len(reqs.Samples) != 2 {
		t.Fatalf("unexpected counter family: %+v", reqs)
	}
	hist := fams["eva_request_duration_seconds"]
	if hist.Type != "histogram" || len(hist.Samples) != 5 { // 3 buckets (incl +Inf) + sum + count
		t.Fatalf("unexpected histogram family: %+v", hist)
	}
}

func TestPromWriterEscaping(t *testing.T) {
	var buf bytes.Buffer
	p := NewPromWriter(&buf)
	p.Meta("eva_thing", `help with \ backslash`, "gauge")
	p.Sample("eva_thing", map[string]string{"path": `a"b\c` + "\n"}, 1)
	fams, err := ParseExposition(buf.Bytes())
	if err != nil {
		t.Fatalf("escaped output must parse: %v\n%s", err, buf.String())
	}
	got := fams["eva_thing"].Samples[0].Labels["path"]
	if got != `a"b\c`+"\n" {
		t.Fatalf("label round-trip mangled: %q", got)
	}
}

func TestParseExpositionRejects(t *testing.T) {
	cases := map[string]string{
		"no type":            "eva_x 1\n",
		"bad name":           "# TYPE 9bad counter\n9bad 1\n",
		"bad type":           "# TYPE eva_x countr\neva_x 1\n",
		"duplicate series":   "# TYPE eva_x counter\neva_x 1\neva_x 2\n",
		"bad value":          "# TYPE eva_x counter\neva_x one\n",
		"unterminated label": "# TYPE eva_x counter\neva_x{a=\"b 1\n",
		"non-cumulative": "# TYPE eva_h histogram\n" +
			"eva_h_bucket{le=\"0.1\"} 5\neva_h_bucket{le=\"+Inf\"} 3\neva_h_sum 1\neva_h_count 3\n",
		"missing +Inf": "# TYPE eva_h histogram\n" +
			"eva_h_bucket{le=\"0.1\"} 5\neva_h_sum 1\neva_h_count 5\n",
		"inf != count": "# TYPE eva_h histogram\n" +
			"eva_h_bucket{le=\"+Inf\"} 4\neva_h_sum 1\neva_h_count 5\n",
	}
	for name, in := range cases {
		if _, err := ParseExposition([]byte(in)); err == nil {
			t.Errorf("%s: expected parse error for %q", name, in)
		}
	}
}

func TestParseLevelAndNewLogger(t *testing.T) {
	if lvl, err := ParseLevel("warn"); err != nil || lvl != slog.LevelWarn {
		t.Fatalf("ParseLevel(warn) = %v, %v", lvl, err)
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Fatal("expected error for unknown level")
	}
	var buf bytes.Buffer
	log, err := NewLogger(&buf, slog.LevelInfo, "json")
	if err != nil {
		t.Fatal(err)
	}
	log.Info("hello", slog.String(LogTraceID, "abc"))
	if !strings.Contains(buf.String(), `"trace_id":"abc"`) {
		t.Fatalf("json log missing attr: %q", buf.String())
	}
	if _, err := NewLogger(&buf, slog.LevelInfo, "yaml"); err == nil {
		t.Fatal("expected error for unknown format")
	}
	NopLogger().Info("dropped")
}
