package cluster

import (
	"fmt"
	"testing"
)

func TestRingOwnerIsStable(t *testing.T) {
	r, err := newRing([]string{"n1", "n2", "n3"}, 64)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		key := fmt.Sprintf("ctx/%d", i)
		owner := r.owner(key)
		for j := 0; j < 5; j++ {
			if got := r.owner(key); got != owner {
				t.Fatalf("owner(%q) flapped: %s then %s", key, owner, got)
			}
		}
	}
}

func TestRingSuccessorsDistinctAndOwnerFirst(t *testing.T) {
	r, err := newRing([]string{"a", "b", "c", "d"}, 32)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("key-%d", i)
		succ := r.successors(key, 3)
		if len(succ) != 3 {
			t.Fatalf("successors(%q, 3) = %v", key, succ)
		}
		if succ[0] != r.owner(key) {
			t.Fatalf("successors(%q)[0] = %s, owner = %s", key, succ[0], r.owner(key))
		}
		seen := map[string]bool{}
		for _, n := range succ {
			if seen[n] {
				t.Fatalf("successors(%q) repeats %s: %v", key, n, succ)
			}
			seen[n] = true
		}
	}
	// n clamps to the membership.
	if succ := r.successors("x", 10); len(succ) != 4 {
		t.Fatalf("successors clamp: %v", succ)
	}
}

func TestRingBalance(t *testing.T) {
	nodes := []string{"n1", "n2", "n3", "n4", "n5"}
	r, err := newRing(nodes, 64)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	const keys = 10000
	for i := 0; i < keys; i++ {
		counts[r.owner(fmt.Sprintf("ctx/%d", i))]++
	}
	want := keys / len(nodes)
	for _, n := range nodes {
		if counts[n] < want/3 || counts[n] > want*3 {
			t.Errorf("node %s owns %d of %d keys (expected near %d): ring is badly imbalanced", n, counts[n], keys, want)
		}
	}
}

func TestRingConsistency(t *testing.T) {
	// Adding one member must reassign only a bounded fraction of keys.
	r3, _ := newRing([]string{"n1", "n2", "n3"}, 64)
	r4, _ := newRing([]string{"n1", "n2", "n3", "n4"}, 64)
	const keys = 5000
	moved := 0
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("ctx/%d", i)
		if r3.owner(key) != r4.owner(key) {
			moved++
		}
	}
	// Ideal is 1/4; flag anything beyond half as a broken hash.
	if moved > keys/2 {
		t.Errorf("%d of %d keys moved when adding one node; consistent hashing should move ~%d", moved, keys, keys/4)
	}
}

func TestRingRejectsBadMembership(t *testing.T) {
	if _, err := newRing(nil, 64); err == nil {
		t.Error("empty membership accepted")
	}
	if _, err := newRing([]string{"a", "a"}, 64); err == nil {
		t.Error("duplicate member accepted")
	}
	if _, err := newRing([]string{""}, 64); err == nil {
		t.Error("empty member id accepted")
	}
}

func TestSplitJobID(t *testing.T) {
	for _, tc := range []struct {
		id           string
		home, suffix string
		ok           bool
	}{
		{"n1~abc", "n1", "abc", true},
		{"abc", "", "", false},
		{"~abc", "", "", false},
		{"n1~", "", "", false},
	} {
		home, suffix, ok := splitJobID(tc.id)
		if ok != tc.ok || (ok && (home != tc.home || suffix != tc.suffix)) {
			t.Errorf("splitJobID(%q) = %q, %q, %v", tc.id, home, suffix, ok)
		}
	}
}
