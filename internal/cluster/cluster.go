package cluster

import (
	"bytes"
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"sync"
	"time"

	"eva/eva"
	"eva/internal/obs"
	"eva/internal/serve"
	"eva/internal/store"
)

// Forwarding headers. X-Eva-Forwarded carries the sender's node id and
// tells the receiving handler to serve locally instead of routing again;
// X-Eva-Hops bounds pathological forwarding chains if two nodes ever
// disagree about the membership.
const (
	headerForwarded = "X-Eva-Forwarded"
	headerHops      = "X-Eva-Hops"
	maxHops         = 3
)

// Config configures a node's cluster tier.
type Config struct {
	// Self is this node's id. Ids are path-safe tokens without "~" (which
	// separates the home node from the suffix in routed job ids).
	Self string
	// Peers maps every *other* member's id to its base URL
	// (e.g. "http://node2:8080").
	Peers map[string]string
	// Replicas is how many distinct nodes hold each context — the owner
	// plus Replicas-1 successors (default 2, clamped to the cluster size).
	Replicas int
	// VNodes is the virtual-node count per member (default 64).
	VNodes int
	// ProbeInterval is the background health-probe period (default 2s;
	// negative disables the prober — health is then driven only by forward
	// failures and explicit Probe calls).
	ProbeInterval time.Duration
	// ProbeTimeout bounds one health probe (default 1s).
	ProbeTimeout time.Duration
	// Store durably homes this node's routed-job records so requeue
	// decisions survive a router restart. Usually the same store the serve
	// layer uses; may be nil.
	Store store.Store
	// Logger receives structured cluster events (peer health transitions,
	// routed-job requeues). Nil discards them.
	Logger *slog.Logger
	// RoutedJobRetention bounds how long a routed-job record outlives its
	// admission (default 24h): the worker-side result is itself swept after
	// the serve layer's retention window, so a record this old can never
	// deliver again.
	RoutedJobRetention time.Duration
	// RetiredJobRetention bounds how long a delivered or cancelled record
	// lingers (default 10m) — it exists only so GET /jobs/{id}/trace can
	// still find the worker after the result is gone.
	RetiredJobRetention time.Duration
	// SweepInterval throttles the routed-job sweep piggybacked on the health
	// prober (default 1m).
	SweepInterval time.Duration
}

// Cluster is one node's view of the sharded tier: the ring, per-peer
// clients and health, and the routed-job table for jobs this node admitted
// as a router.
type Cluster struct {
	cfg     Config
	local   *serve.Server
	ring    *ring
	clients map[string]*eva.Client
	log     *slog.Logger

	mu    sync.Mutex
	peers map[string]*peerState
	cjobs map[string]*routedJob // key: id suffix (the part after "~")

	forwarded map[string]uint64 // route → forwards to a peer
	served    map[string]uint64 // route → handled locally
	requeues  uint64
	replErrs  uint64
	lastSweep time.Time

	stopProbe chan struct{}
	probeWG   sync.WaitGroup
	closeOnce sync.Once
}

type peerState struct {
	url       string
	healthy   bool
	lastProbe time.Time
	lastErr   string
}

// validNodeID rejects ids that would break routing syntax or store paths.
func validNodeID(id string) bool {
	if id == "" || len(id) > 64 || id[0] == '.' {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		case c == '-' || c == '_' || c == '.':
		default:
			return false
		}
	}
	return true
}

// New builds the cluster tier for a local server. The membership is static:
// Self plus every peer in cfg.Peers. Routed-job records found in the store
// (a router restart) are reloaded so their jobs remain reachable and
// requeueable.
func New(local *serve.Server, cfg Config) (*Cluster, error) {
	if local == nil {
		return nil, fmt.Errorf("cluster: nil local server")
	}
	if !validNodeID(cfg.Self) {
		return nil, fmt.Errorf("cluster: invalid node id %q", cfg.Self)
	}
	members := []string{cfg.Self}
	clients := map[string]*eva.Client{}
	peers := map[string]*peerState{}
	for id, url := range cfg.Peers {
		if !validNodeID(id) {
			return nil, fmt.Errorf("cluster: invalid peer id %q", id)
		}
		if id == cfg.Self {
			continue // tolerate a peer list that includes ourselves
		}
		if url == "" {
			return nil, fmt.Errorf("cluster: peer %q has no URL", id)
		}
		members = append(members, id)
		clients[id] = eva.NewClient(url)
		// Optimistically healthy: the first request finds out, and marking
		// down on a forward failure is immediate.
		peers[id] = &peerState{url: url, healthy: true}
	}
	r, err := newRing(members, cfg.VNodes)
	if err != nil {
		return nil, err
	}
	if cfg.Replicas <= 0 {
		cfg.Replicas = 2
	}
	if cfg.Replicas > len(members) {
		cfg.Replicas = len(members)
	}
	if cfg.ProbeInterval == 0 {
		cfg.ProbeInterval = 2 * time.Second
	}
	if cfg.ProbeTimeout <= 0 {
		cfg.ProbeTimeout = time.Second
	}
	if cfg.RoutedJobRetention <= 0 {
		cfg.RoutedJobRetention = 24 * time.Hour
	}
	if cfg.RetiredJobRetention <= 0 {
		cfg.RetiredJobRetention = 10 * time.Minute
	}
	if cfg.SweepInterval <= 0 {
		cfg.SweepInterval = time.Minute
	}
	logger := cfg.Logger
	if logger == nil {
		logger = obs.NopLogger()
	}
	c := &Cluster{
		cfg:       cfg,
		local:     local,
		ring:      r,
		clients:   clients,
		log:       logger.With(slog.String(obs.LogNodeID, cfg.Self)),
		peers:     peers,
		cjobs:     map[string]*routedJob{},
		forwarded: map[string]uint64{},
		served:    map[string]uint64{},
		stopProbe: make(chan struct{}),
	}
	c.loadRoutedJobs()
	// Execution-time handle resolution: a job routed here may reference a
	// handle stored on the node its uploader talked to. The serve layer
	// calls this when its local registry misses.
	local.SetHandleFetcher(c.fetchHandleFromPeers)
	if cfg.ProbeInterval > 0 && len(peers) > 0 {
		c.probeWG.Add(1)
		go c.probeLoop()
	}
	return c, nil
}

// Close stops the background prober. It does not touch the local server.
func (c *Cluster) Close() {
	c.closeOnce.Do(func() { close(c.stopProbe) })
	c.probeWG.Wait()
}

// Nodes returns the sorted member ids.
func (c *Cluster) Nodes() []string { return append([]string(nil), c.ring.nodes...) }

// ContextCandidates returns the nodes that should hold a context, owner
// first. Exported for tooling (evaload's kill-the-owner smoke targets it).
func (c *Cluster) ContextCandidates(contextID string) []string {
	return c.ring.successors("ctx/"+contextID, c.cfg.Replicas)
}

func (c *Cluster) programCandidates(programID string) []string {
	return c.ring.successors("prog/"+programID, c.cfg.Replicas)
}

func (c *Cluster) isSelf(node string) bool { return node == c.cfg.Self }

// healthy reports whether a node is believed alive. Self is always healthy.
func (c *Cluster) healthy(node string) bool {
	if c.isSelf(node) {
		return true
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	p, ok := c.peers[node]
	return ok && p.healthy
}

// firstHealthy picks the first healthy node from candidates, excluding any
// in skip. ok is false when every candidate is down.
func (c *Cluster) firstHealthy(candidates []string, skip ...string) (string, bool) {
next:
	for _, n := range candidates {
		for _, s := range skip {
			if n == s {
				continue next
			}
		}
		if c.healthy(n) {
			return n, true
		}
	}
	return "", false
}

func (c *Cluster) markDown(node string, err error) {
	if c.isSelf(node) {
		return
	}
	wentDown := false
	c.mu.Lock()
	if p, ok := c.peers[node]; ok {
		wentDown = p.healthy
		p.healthy = false
		p.lastProbe = time.Now()
		if err != nil {
			p.lastErr = err.Error()
		}
	}
	c.mu.Unlock()
	if wentDown {
		attrs := []any{slog.String("peer", node)}
		if err != nil {
			attrs = append(attrs, slog.String("error", err.Error()))
		}
		c.log.Warn("peer marked down", attrs...)
	}
}

func (c *Cluster) markUp(node string) {
	if c.isSelf(node) {
		return
	}
	recovered := false
	c.mu.Lock()
	if p, ok := c.peers[node]; ok {
		recovered = !p.healthy
		p.healthy = true
		p.lastProbe = time.Now()
		p.lastErr = ""
	}
	c.mu.Unlock()
	if recovered {
		c.log.Info("peer recovered", slog.String("peer", node))
	}
}

// probeLoop drives periodic health probes until Close.
func (c *Cluster) probeLoop() {
	defer c.probeWG.Done()
	ticker := time.NewTicker(c.cfg.ProbeInterval)
	defer ticker.Stop()
	for {
		select {
		case <-c.stopProbe:
			return
		case <-ticker.C:
			c.Probe(context.Background())
		}
	}
}

// Probe health-checks every peer once and requeues routed jobs assigned to
// peers that turned out dead. Exported so tests (and a deliberate operator
// action) can force a probe cycle instead of waiting for the ticker.
func (c *Cluster) Probe(ctx context.Context) {
	c.mu.Lock()
	ids := make([]string, 0, len(c.peers))
	for id := range c.peers {
		ids = append(ids, id)
	}
	c.mu.Unlock()
	var wentDown []string
	for _, id := range ids {
		pctx, cancel := context.WithTimeout(ctx, c.cfg.ProbeTimeout)
		_, err := c.clients[id].Health(pctx)
		cancel()
		if err != nil {
			wasHealthy := c.healthy(id)
			c.markDown(id, err)
			if wasHealthy {
				wentDown = append(wentDown, id)
			}
		} else {
			c.markUp(id)
		}
	}
	// Owner-down failover: move this router's jobs off freshly dead nodes
	// without waiting for a client poll to notice.
	for _, id := range wentDown {
		c.requeueJobsOn(id)
	}
	c.sweepRoutedJobs()
}

// sweepRoutedJobs drops records for jobs abandoned past the configured
// retention windows, bounding the router table and its store kind. Runs at
// most once per Config.SweepInterval (piggybacked on the health prober).
func (c *Cluster) sweepRoutedJobs() {
	c.mu.Lock()
	if time.Since(c.lastSweep) < c.cfg.SweepInterval {
		c.mu.Unlock()
		return
	}
	c.lastSweep = time.Now()
	cutoff := time.Now().Add(-c.cfg.RoutedJobRetention)
	retiredCutoff := time.Now().Add(-c.cfg.RetiredJobRetention)
	var expired []*routedJob
	for _, rec := range c.cjobs {
		switch {
		case rec.Delivered || rec.Cancelled:
			at := rec.RetiredAt
			if at.IsZero() {
				at = rec.CreatedAt
			}
			if at.Before(retiredCutoff) {
				expired = append(expired, rec)
			}
		case rec.CreatedAt.Before(cutoff):
			expired = append(expired, rec)
		}
	}
	c.mu.Unlock()
	for _, rec := range expired {
		c.dropRoutedJob(rec)
	}
}

// roundTrip performs one node-to-node (or node-to-self) API call and
// captures the full response. Self-calls short-circuit through the local
// handler; peer calls go through the peer's eva.Client and mark the peer
// down on transport failure.
func (c *Cluster) roundTrip(ctx context.Context, node, method, path string, body []byte) (int, []byte, error) {
	// Node-to-node calls carry the originating trace id (when the caller's
	// context has one) so the receiving serve layer adopts it instead of
	// minting a fresh trace.
	traceID := ""
	if t := obs.TraceFromContext(ctx); t != nil {
		traceID = t.ID()
	}
	if c.isSelf(node) {
		rec := httptest.NewRecorder()
		var rd io.Reader
		if body != nil {
			rd = bytes.NewReader(body)
		}
		req, err := http.NewRequestWithContext(ctx, method, path, rd)
		if err != nil {
			return 0, nil, err
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set(headerForwarded, c.cfg.Self)
		if traceID != "" {
			req.Header.Set(obs.TraceHeader, traceID)
		}
		c.local.Handler().ServeHTTP(rec, req)
		return rec.Code, rec.Body.Bytes(), nil
	}
	client, ok := c.clients[node]
	if !ok {
		return 0, nil, fmt.Errorf("cluster: unknown node %q", node)
	}
	header := http.Header{}
	header.Set("Content-Type", "application/json")
	header.Set(headerForwarded, c.cfg.Self)
	if traceID != "" {
		header.Set(obs.TraceHeader, traceID)
	}
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	resp, err := client.DoRaw(ctx, method, path, header, rd)
	if err != nil {
		c.markDown(node, err)
		return 0, nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		c.markDown(node, err)
		return 0, nil, err
	}
	return resp.StatusCode, data, nil
}

// newSuffix mints the random half of a routed-job or context id.
func newSuffix() (string, error) {
	var b [12]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "", fmt.Errorf("cluster: generating id: %w", err)
	}
	return hex.EncodeToString(b[:]), nil
}

// splitJobID splits a routed job id "<home>~<suffix>"; ok is false for
// plain single-node job ids.
func splitJobID(id string) (home, suffix string, ok bool) {
	home, suffix, ok = strings.Cut(id, "~")
	return home, suffix, ok && home != "" && suffix != ""
}

// PeerStatus is one row of the cluster metrics section.
type PeerStatus struct {
	ID        string `json:"id"`
	URL       string `json:"url,omitempty"`
	Healthy   bool   `json:"healthy"`
	LastProbe string `json:"last_probe,omitempty"`
	LastError string `json:"last_error,omitempty"`
}

// Stats is the "cluster" section of GET /metrics.
type Stats struct {
	Self     string       `json:"self"`
	Nodes    int          `json:"nodes"`
	Replicas int          `json:"replicas"`
	Peers    []PeerStatus `json:"peers"`
	// Forwarded and Served count requests per route that this node proxied
	// to a peer versus handled locally.
	Forwarded map[string]uint64 `json:"forwarded"`
	Served    map[string]uint64 `json:"served_locally"`
	// RoutedJobs is the number of live routed-job records this node homes;
	// Requeues counts owner-down failovers; ReplicationErrors counts
	// best-effort context/program replications that failed.
	RoutedJobs        int    `json:"routed_jobs"`
	Requeues          uint64 `json:"requeues"`
	ReplicationErrors uint64 `json:"replication_errors"`
}

// Stats snapshots the cluster counters.
func (c *Cluster) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := Stats{
		Self:      c.cfg.Self,
		Nodes:     len(c.ring.nodes),
		Replicas:  c.cfg.Replicas,
		Forwarded: map[string]uint64{},
		Served:    map[string]uint64{},
		RoutedJobs: func() int {
			n := 0
			for _, rec := range c.cjobs {
				if !rec.Delivered && !rec.Cancelled {
					n++
				}
			}
			return n
		}(),
		Requeues:          c.requeues,
		ReplicationErrors: c.replErrs,
	}
	for k, v := range c.forwarded {
		st.Forwarded[k] = v
	}
	for k, v := range c.served {
		st.Served[k] = v
	}
	ids := make([]string, 0, len(c.peers))
	for id := range c.peers {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		p := c.peers[id]
		ps := PeerStatus{ID: id, URL: p.url, Healthy: p.healthy, LastError: p.lastErr}
		if !p.lastProbe.IsZero() {
			ps.LastProbe = p.lastProbe.UTC().Format(time.RFC3339)
		}
		st.Peers = append(st.Peers, ps)
	}
	return st
}

func (c *Cluster) countForwarded(route string) {
	c.mu.Lock()
	c.forwarded[route]++
	c.mu.Unlock()
}

func (c *Cluster) countServed(route string) {
	c.mu.Lock()
	c.served[route]++
	c.mu.Unlock()
}

func (c *Cluster) countReplErr() {
	c.mu.Lock()
	c.replErrs++
	c.mu.Unlock()
}

// writeJSON mirrors the serve layer's error body shape so clients see one
// uniform API regardless of which layer answered.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}
