package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"

	"eva/internal/obs"
	"eva/internal/profile"
	"eva/internal/serve"
)

// maxRoutedBody caps the request bytes a router buffers before forwarding;
// it matches the serve layer's default body limit.
const maxRoutedBody = 256 << 20

// Handler returns the node's public HTTP handler: the cluster routing layer
// wrapped around the local serve handler. Requests already forwarded by a
// peer (X-Eva-Forwarded) are served locally; everything else is routed to
// the owner of the program or context it names, with failover to the next
// healthy replica.
func (c *Cluster) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /compile", c.routed("compile", c.handleCompile))
	mux.HandleFunc("POST /contexts", c.routed("contexts", c.handleContexts))
	mux.HandleFunc("POST /execute/{id}", c.routed("execute", c.handleExecute))
	mux.HandleFunc("POST /jobs", c.routed("jobs_submit", c.handleJobSubmit))
	mux.HandleFunc("GET /jobs/{id}", c.handleJobGet("jobs_status", c.jobStatus))
	mux.HandleFunc("GET /jobs/{id}/result", c.handleJobGet("jobs_result", c.jobResult))
	mux.HandleFunc("GET /jobs/{id}/trace", c.handleJobGet("jobs_trace", c.jobTrace))
	mux.HandleFunc("DELETE /jobs/{id}", c.handleJobGet("jobs_cancel", c.jobCancel))
	mux.HandleFunc("GET /jobs/{id}/events", c.handleJobEvents)
	mux.HandleFunc("PUT /handles", c.routed("handles_put", c.handleHandlePut))
	mux.HandleFunc("GET /handles/{id}", c.handleHandleGet)
	mux.HandleFunc("DELETE /handles/{id}", c.handleHandleDelete)
	mux.HandleFunc("POST /pipelines", c.routed("pipelines", c.handlePipelineSubmit))
	mux.HandleFunc("GET /programs", c.handleProgramsScatter)
	mux.HandleFunc("GET /metrics", c.handleMetrics)
	mux.HandleFunc("GET /profile", c.handleProfile)
	// Everything else — /healthz, /programs/{id}, bundles, plain job ids —
	// is local.
	mux.Handle("/", c.local.Handler())
	return mux
}

// routed wraps a routing handler: forwarded requests bypass routing and go
// straight to the local server, and the body is buffered so it can be
// re-sent to a peer (or replayed locally). This is the cluster's ingress:
// the trace is minted here (or adopted from the client's X-Eva-Trace) and
// travels with every hop the request takes, so the owner node's spans land
// in the same trace the ingress node answers with.
func (c *Cluster) routed(route string, h func(w http.ResponseWriter, r *http.Request, body []byte)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Header.Get(headerForwarded) != "" {
			c.countServed(route)
			c.local.Handler().ServeHTTP(w, r)
			return
		}
		t := c.local.Tracer().Start(r.Header.Get(obs.TraceHeader))
		defer t.Release()
		w.Header().Set(obs.TraceHeader, t.ID())
		sp := t.StartSpan("cluster:"+route, nil)
		defer sp.End()
		r = r.WithContext(obs.ContextWithSpan(obs.ContextWithTrace(r.Context(), t), sp))
		body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxRoutedBody))
		if err != nil {
			writeError(w, http.StatusRequestEntityTooLarge, "reading request: %v", err)
			return
		}
		h(w, r, body)
	}
}

// serveLocal replays a buffered request into the local handler. The ingress
// trace id rides along as a header, so the serve layer joins the routing
// trace instead of minting its own.
func (c *Cluster) serveLocal(route string, w http.ResponseWriter, r *http.Request, body []byte) {
	c.countServed(route)
	r2 := r.Clone(r.Context())
	r2.Body = io.NopCloser(bytes.NewReader(body))
	r2.ContentLength = int64(len(body))
	if t := obs.TraceFromContext(r.Context()); t != nil {
		r2.Header.Set(obs.TraceHeader, t.ID())
	}
	c.local.Handler().ServeHTTP(w, r2)
}

// forward proxies a buffered request to a peer and copies the response
// back. Transport failure marks the peer down and reports false so the
// caller can fail over.
func (c *Cluster) forward(route string, w http.ResponseWriter, r *http.Request, node string, body []byte) bool {
	hops, _ := strconv.Atoi(r.Header.Get(headerHops))
	if hops >= maxHops {
		writeError(w, http.StatusBadGateway, "cluster: forwarding loop detected (%d hops)", hops)
		return true // the response is written; do not fail over
	}
	client := c.clients[node]
	if client == nil {
		return false
	}
	header := http.Header{}
	if ct := r.Header.Get("Content-Type"); ct != "" {
		header.Set("Content-Type", ct)
	}
	header.Set(headerForwarded, c.cfg.Self)
	header.Set(headerHops, strconv.Itoa(hops+1))
	if t := obs.TraceFromContext(r.Context()); t != nil {
		header.Set(obs.TraceHeader, t.ID())
	} else if tid := r.Header.Get(obs.TraceHeader); tid != "" {
		header.Set(obs.TraceHeader, tid)
	}
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	fsp := obs.TraceFromContext(r.Context()).StartSpan("forward", obs.SpanFromContext(r.Context()))
	fsp.SetAttr("to", node)
	fsp.SetAttr("route", route)
	defer fsp.End()
	resp, err := client.DoRaw(r.Context(), r.Method, r.URL.RequestURI(), header, rd)
	if err != nil {
		fsp.SetAttr("error", err.Error())
		if r.Context().Err() != nil {
			// The client went away; nothing to fail over for.
			return true
		}
		c.markDown(node, err)
		return false
	}
	defer resp.Body.Close()
	c.countForwarded(route)
	copyResponse(w, resp)
	return true
}

// copyResponse relays a proxied response. Headers the routing layer already
// set (X-Eva-Trace at ingress) win over the worker's copy — both name the
// same trace, and clients must not see the value twice.
func copyResponse(w http.ResponseWriter, resp *http.Response) {
	for k, vs := range resp.Header {
		if len(w.Header().Values(k)) > 0 {
			continue
		}
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body)
}

// --- /compile ---

// handleCompile routes a compile to the program's owner node (any node
// *can* compile anything — compilation is deterministic — but giving each
// program a home makes its artifact durable on a predictable shard). The
// remaining candidate nodes are warmed in the background.
func (c *Cluster) handleCompile(w http.ResponseWriter, r *http.Request, body []byte) {
	var req serve.CompileRequest
	if err := json.Unmarshal(body, &req); err != nil {
		writeError(w, http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	id, err := serve.CanonicalCompile(req)
	if err != nil {
		// Hand the malformed request to the local server so the client gets
		// the full structured diagnostics (source_errors etc.).
		c.serveLocal("compile", w, r, body)
		return
	}
	candidates := c.programCandidates(id)
	primary, ok := c.firstHealthy(candidates)
	if !ok {
		writeError(w, http.StatusServiceUnavailable, "cluster: no healthy node for program %s", id)
		return
	}
	// Warm the other candidates in the background: program replication is
	// an availability optimization, not a correctness requirement (context
	// placement re-ships programs on demand).
	defer c.replicateProgramAsync(id, candidates, primary)
	for _, node := range candidates {
		if !c.healthy(node) || node == "" {
			continue
		}
		if c.isSelf(node) {
			c.serveLocal("compile", w, r, body)
			return
		}
		if c.forward("compile", w, r, node, body) {
			return
		}
	}
	// Every remote candidate died mid-request: compile locally rather than
	// fail — the artifact lands on its home shard when it recovers.
	c.serveLocal("compile", w, r, body)
}

func (c *Cluster) replicateProgramAsync(id string, candidates []string, primary string) {
	go func() {
		for _, node := range candidates {
			if node == primary || !c.healthy(node) {
				continue
			}
			if err := c.ensureProgram(node, id); err != nil {
				c.countReplErr()
			}
		}
	}()
}

// ensureProgram makes a node hold a compiled program, shipping the
// canonical source and exact options from wherever they are available.
func (c *Cluster) ensureProgram(node, programID string) error {
	source, opts, ok := c.local.ProgramSource(programID)
	if !ok {
		// Ask the program's candidate nodes, then every peer.
		tried := map[string]bool{}
		for _, q := range append(c.programCandidates(programID), c.ring.nodes...) {
			if tried[q] || c.isSelf(q) || !c.healthy(q) {
				continue
			}
			tried[q] = true
			status, data, err := c.roundTrip(nodeCtx(), q, http.MethodGet, "/programs/"+programID+"/source", nil)
			if err != nil || status != http.StatusOK {
				continue
			}
			var src serve.ProgramSourceResponse
			if json.Unmarshal(data, &src) == nil {
				source, opts, ok = src.Program, src.Options, true
				break
			}
		}
	}
	if !ok {
		return fmt.Errorf("cluster: program %s not found on any node", programID)
	}
	if c.isSelf(node) {
		id, err := c.local.InstallProgram(source, opts)
		if err != nil {
			return err
		}
		if id != programID {
			return fmt.Errorf("cluster: program %s rebuilt with unexpected id %s", programID, id)
		}
		return nil
	}
	optsJSON := serve.OptionsJSON(opts)
	reqBody, err := json.Marshal(serve.CompileRequest{Program: source, Options: &optsJSON})
	if err != nil {
		return err
	}
	status, data, err := c.roundTrip(nodeCtx(), node, http.MethodPost, "/compile", reqBody)
	if err != nil {
		return err
	}
	if status != http.StatusOK {
		return fmt.Errorf("cluster: shipping program %s to %s: HTTP %d: %s", programID, node, status, truncate(data))
	}
	var comp serve.CompileResponse
	if err := json.Unmarshal(data, &comp); err != nil {
		return err
	}
	if comp.ID != programID {
		return fmt.Errorf("cluster: program %s compiled on %s with unexpected id %s", programID, node, comp.ID)
	}
	return nil
}

// --- /contexts ---

// handleContexts assigns the new context an id, places it on the ring, and
// creates it on the owner; the key bundle is then replicated synchronously
// to the remaining candidate nodes so owner-down failover has somewhere to
// requeue.
func (c *Cluster) handleContexts(w http.ResponseWriter, r *http.Request, body []byte) {
	var req serve.ContextRequest
	if err := json.Unmarshal(body, &req); err != nil {
		writeError(w, http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	if req.ProgramID == "" && req.Bundle != nil {
		req.ProgramID = req.Bundle.ProgramID
	}
	if req.ContextID == "" {
		suffix, err := newSuffix()
		if err != nil {
			writeError(w, http.StatusInternalServerError, "%v", err)
			return
		}
		req.ContextID = suffix
	}
	candidates := c.ContextCandidates(req.ContextID)
	primary, ok := c.firstHealthy(candidates)
	if !ok {
		writeError(w, http.StatusServiceUnavailable, "cluster: no healthy node for context %s", req.ContextID)
		return
	}
	if err := c.ensureProgram(primary, req.ProgramID); err != nil {
		writeError(w, http.StatusNotFound, "unknown program %q; POST /compile first (%v)", req.ProgramID, err)
		return
	}
	routedBody, err := json.Marshal(req)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	status, data, err := c.roundTrip(r.Context(), primary, http.MethodPost, "/contexts", routedBody)
	if err != nil {
		writeError(w, http.StatusServiceUnavailable, "cluster: context owner %s unreachable: %v", primary, err)
		return
	}
	if c.isSelf(primary) {
		c.countServed("contexts")
	} else {
		c.countForwarded("contexts")
	}
	if status == http.StatusOK {
		// Replicate the bundle to the remaining candidates before answering:
		// failover only works if the replica already holds the keys. Errors
		// are counted but not fatal — the context works on its owner.
		c.replicateContext(req.ContextID, req.ProgramID, primary, candidates)
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(data)
}

func (c *Cluster) replicateContext(contextID, programID, primary string, candidates []string) {
	var bundle *serve.ContextBundle
	for _, node := range candidates {
		if node == primary || !c.healthy(node) {
			continue
		}
		if bundle == nil {
			status, data, err := c.roundTrip(nodeCtx(), primary, http.MethodGet, "/contexts/"+contextID+"/bundle", nil)
			if err != nil || status != http.StatusOK {
				c.countReplErr()
				return
			}
			bundle = &serve.ContextBundle{}
			if err := json.Unmarshal(data, bundle); err != nil {
				c.countReplErr()
				return
			}
		}
		if err := c.installContextOn(node, contextID, programID, bundle); err != nil {
			c.countReplErr()
		}
	}
}

func (c *Cluster) installContextOn(node, contextID, programID string, bundle *serve.ContextBundle) error {
	if err := c.ensureProgram(node, programID); err != nil {
		return err
	}
	body, err := json.Marshal(serve.ContextRequest{
		ProgramID: programID,
		ContextID: contextID,
		Bundle:    bundle,
	})
	if err != nil {
		return err
	}
	status, data, err := c.roundTrip(nodeCtx(), node, http.MethodPost, "/contexts", body)
	if err != nil {
		return err
	}
	if status != http.StatusOK {
		return fmt.Errorf("cluster: replicating context %s to %s: HTTP %d: %s", contextID, node, status, truncate(data))
	}
	return nil
}

// --- /execute ---

// handleExecute routes a synchronous execution to the context's owner,
// failing over to the next replica when the owner is down or no longer
// knows the context.
func (c *Cluster) handleExecute(w http.ResponseWriter, r *http.Request, body []byte) {
	var req struct {
		ContextID string `json:"context_id"`
	}
	if err := json.Unmarshal(body, &req); err != nil || req.ContextID == "" {
		// Let the local server produce its ordinary validation error.
		c.serveLocal("execute", w, r, body)
		return
	}
	candidates := c.ContextCandidates(req.ContextID)
	for _, node := range candidates {
		if !c.healthy(node) {
			continue
		}
		if c.isSelf(node) {
			c.serveLocal("execute", w, r, body)
			return
		}
		if c.forward("execute", w, r, node, body) {
			return
		}
	}
	writeError(w, http.StatusServiceUnavailable, "cluster: no healthy node holds context %q", req.ContextID)
}

// --- scatter-gather ---

// handleProgramsScatter merges GET /programs across every healthy node, so
// an operator sees the whole cluster's registry regardless of which node
// they asked.
func (c *Cluster) handleProgramsScatter(w http.ResponseWriter, r *http.Request) {
	if r.Header.Get(headerForwarded) != "" {
		c.local.Handler().ServeHTTP(w, r)
		return
	}
	type nodePrograms struct {
		Node     string              `json:"node"`
		Error    string              `json:"error,omitempty"`
		Programs []serve.ProgramInfo `json:"programs"`
	}
	out := make([]nodePrograms, 0, len(c.ring.nodes))
	for _, node := range c.ring.nodes {
		np := nodePrograms{Node: node}
		if !c.healthy(node) {
			np.Error = "node is down"
			out = append(out, np)
			continue
		}
		status, data, err := c.roundTrip(r.Context(), node, http.MethodGet, "/programs", nil)
		switch {
		case err != nil:
			np.Error = err.Error()
		case status != http.StatusOK:
			np.Error = fmt.Sprintf("HTTP %d", status)
		default:
			if err := json.Unmarshal(data, &np.Programs); err != nil {
				np.Error = err.Error()
			}
		}
		out = append(out, np)
	}
	writeJSON(w, http.StatusOK, out)
}

// handleMetrics serves the local metrics report with the cluster section
// grafted on; ?scope=cluster scatter-gathers every node's full report.
// ?format=prometheus renders the local exposition with the eva_cluster_*
// families appended (Prometheus scrapes each node; it does not scatter).
func (c *Cluster) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("format") == "prometheus" {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := c.local.WritePrometheus(w); err != nil {
			return
		}
		c.writePrometheus(w)
		return
	}
	type clusterReport struct {
		serve.MetricsReport
		Cluster Stats `json:"cluster"`
	}
	local := clusterReport{MetricsReport: c.local.MetricsReport(), Cluster: c.Stats()}
	if r.Header.Get(headerForwarded) != "" || r.URL.Query().Get("scope") != "cluster" {
		writeJSON(w, http.StatusOK, local)
		return
	}
	nodes := map[string]json.RawMessage{}
	for _, node := range c.ring.nodes {
		if c.isSelf(node) {
			data, _ := json.Marshal(local)
			nodes[node] = data
			continue
		}
		if !c.healthy(node) {
			nodes[node] = json.RawMessage(`{"error":"node is down"}`)
			continue
		}
		status, data, err := c.roundTrip(r.Context(), node, http.MethodGet, "/metrics", nil)
		if err != nil || status != http.StatusOK {
			msg, _ := json.Marshal(map[string]string{"error": fmt.Sprintf("unreachable: %v (HTTP %d)", err, status)})
			nodes[node] = msg
			continue
		}
		nodes[node] = data
	}
	writeJSON(w, http.StatusOK, map[string]any{"scope": "cluster", "nodes": nodes})
}

// handleProfile serves the local instruction-profiler report; ?scope=cluster
// scatter-gathers every node's report and folds them into one cluster-wide
// view ("merged") alongside the raw per-node reports. Each instruction is
// sampled by exactly one node, so summing bucket counters across nodes never
// double-counts.
func (c *Cluster) handleProfile(w http.ResponseWriter, r *http.Request) {
	if r.Header.Get(headerForwarded) != "" || r.URL.Query().Get("scope") != "cluster" {
		c.local.Handler().ServeHTTP(w, r)
		return
	}
	nodes := map[string]json.RawMessage{}
	reports := make([]profile.Report, 0, len(c.ring.nodes))
	for _, node := range c.ring.nodes {
		if c.isSelf(node) {
			rep := c.local.Profiles().Report()
			reports = append(reports, rep)
			data, _ := json.Marshal(rep)
			nodes[node] = data
			continue
		}
		if !c.healthy(node) {
			nodes[node] = json.RawMessage(`{"error":"node is down"}`)
			continue
		}
		status, data, err := c.roundTrip(r.Context(), node, http.MethodGet, "/profile", nil)
		if err != nil || status != http.StatusOK {
			msg, _ := json.Marshal(map[string]string{"error": fmt.Sprintf("unreachable: %v (HTTP %d)", err, status)})
			nodes[node] = msg
			continue
		}
		var rep profile.Report
		if err := json.Unmarshal(data, &rep); err != nil {
			msg, _ := json.Marshal(map[string]string{"error": err.Error()})
			nodes[node] = msg
			continue
		}
		reports = append(reports, rep)
		nodes[node] = data
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"scope":  "cluster",
		"nodes":  nodes,
		"merged": profile.MergeReports(c.cfg.Self, reports),
	})
}

// writePrometheus appends the cluster tier's families to an exposition the
// serve layer already wrote.
func (c *Cluster) writePrometheus(w io.Writer) error {
	st := c.Stats()
	p := obs.NewPromWriter(w)
	p.Meta("eva_cluster_nodes", "Cluster members (including this node).", "gauge")
	p.Sample("eva_cluster_nodes", nil, float64(st.Nodes))
	healthy := 0
	for _, peer := range st.Peers {
		if peer.Healthy {
			healthy++
		}
	}
	p.Meta("eva_cluster_peers_healthy", "Peers currently believed alive.", "gauge")
	p.Sample("eva_cluster_peers_healthy", nil, float64(healthy))
	p.Meta("eva_cluster_routed_jobs", "Live routed-job records homed on this node.", "gauge")
	p.Sample("eva_cluster_routed_jobs", nil, float64(st.RoutedJobs))
	p.Meta("eva_cluster_requeues_total", "Routed jobs moved off a failed node.", "counter")
	p.Sample("eva_cluster_requeues_total", nil, float64(st.Requeues))
	p.Meta("eva_cluster_replication_errors_total", "Best-effort replications that failed.", "counter")
	p.Sample("eva_cluster_replication_errors_total", nil, float64(st.ReplicationErrors))
	if len(st.Forwarded) > 0 {
		routes := make([]string, 0, len(st.Forwarded))
		for route := range st.Forwarded {
			routes = append(routes, route)
		}
		sort.Strings(routes)
		p.Meta("eva_cluster_forwarded_total", "Requests proxied to a peer, by route.", "counter")
		for _, route := range routes {
			p.Sample("eva_cluster_forwarded_total", map[string]string{"route": route}, float64(st.Forwarded[route]))
		}
	}
	if len(st.Served) > 0 {
		routes := make([]string, 0, len(st.Served))
		for route := range st.Served {
			routes = append(routes, route)
		}
		sort.Strings(routes)
		p.Meta("eva_cluster_served_total", "Requests handled locally, by route.", "counter")
		for _, route := range routes {
			p.Sample("eva_cluster_served_total", map[string]string{"route": route}, float64(st.Served[route]))
		}
	}
	return p.Err()
}

func truncate(data []byte) string {
	const n = 200
	if len(data) > n {
		return string(data[:n]) + "..."
	}
	return string(data)
}
