package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"eva/eva"
	"eva/internal/handle"
	"eva/internal/serve"
	"eva/internal/store"
)

// clusterProgram matches the opcode mix of the serve e2e program: square
// (relinearize+rescale), rotate (Galois key), cipher-plain arithmetic.
const clusterProgram = `program clustere2e vec=8;
input x @30;
input y @30;
s = x * x + y;
r = rotl(s, 1);
out = (s + r) * 0.5@30;
output out @30;`

var clusterBatch = serve.ExecuteBatch{Values: map[string][]float64{
	"x": {1, 2, 3, 4, 5, 6, 7, 8},
	"y": {8, 7, 6, 5, 4, 3, 2, 1},
}}

// testNode is one in-process cluster member with a real TCP listener.
type testNode struct {
	id      string
	url     string
	store   store.Store
	srv     *serve.Server
	cluster *Cluster
	httpSrv *http.Server
	client  *eva.Client
	killed  bool
}

// kill simulates a crash: the listener closes and every in-flight job dies.
func (n *testNode) kill() {
	n.killed = true
	n.httpSrv.Close()
	n.srv.Close()
	n.cluster.Close()
}

// startTestCluster boots n nodes with static membership. dirs[i], when
// non-empty, backs node i with a filesystem store (otherwise memory).
func startTestCluster(t *testing.T, n int, jobWorkers int) []*testNode {
	t.Helper()
	listeners := make([]net.Listener, n)
	urls := make([]string, n)
	for i := range listeners {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners[i] = ln
		urls[i] = "http://" + ln.Addr().String()
	}
	nodes := make([]*testNode, n)
	for i := range nodes {
		id := fmt.Sprintf("n%d", i+1)
		st := store.NewMemory()
		srv := serve.NewServer(serve.Config{
			Store:                st,
			NodeID:               id,
			AllowServerKeygen:    true,
			AllowContextTransfer: true,
			JobWorkers:           jobWorkers,
			// Sample every instruction so the profiler scatter tests see
			// deterministic counts.
			ProfileSampleRate: 1,
		})
		peers := map[string]string{}
		for j := range nodes {
			if j != i {
				peers[fmt.Sprintf("n%d", j+1)] = urls[j]
			}
		}
		cl, err := New(srv, Config{
			Self:  id,
			Peers: peers,
			Store: st,
			// Tests drive probes explicitly for determinism.
			ProbeInterval: -1,
		})
		if err != nil {
			t.Fatal(err)
		}
		httpSrv := &http.Server{Handler: cl.Handler()}
		go httpSrv.Serve(listeners[i])
		nodes[i] = &testNode{
			id: id, url: urls[i], store: st, srv: srv,
			cluster: cl, httpSrv: httpSrv, client: eva.NewClient(urls[i]),
		}
	}
	t.Cleanup(func() {
		for _, node := range nodes {
			if !node.killed {
				node.kill()
			}
		}
	})
	return nodes
}

func nodeByID(nodes []*testNode, id string) *testNode {
	for _, n := range nodes {
		if n.id == id {
			return n
		}
	}
	return nil
}

// compileAndContext compiles the shared program and installs a demo
// context through the given router node.
func compileAndContext(t *testing.T, ctx context.Context, router *testNode) (programID, contextID string) {
	t.Helper()
	comp, err := router.client.Compile(ctx, eva.CompileRequest{
		Source:  clusterProgram,
		Options: &serve.CompileOptionsJSON{AllowInsecure: true},
	})
	if err != nil {
		t.Fatalf("compile via %s: %v", router.id, err)
	}
	ectx, err := router.client.NewKeygenContext(ctx, comp.ID, 42)
	if err != nil {
		t.Fatalf("context via %s: %v", router.id, err)
	}
	return comp.ID, ectx.ContextID
}

// TestClusterRoutingAndScatter: any node serves compile/execute for any
// context (forwarding to the owner), /programs and /metrics aggregate the
// membership, and the forwarded/local counters move.
func TestClusterRoutingAndScatter(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	nodes := startTestCluster(t, 3, 0)
	programID, contextID := compileAndContext(t, ctx, nodes[0])

	// Execute through every node: owners serve locally, the rest forward.
	var want []float64
	for _, node := range nodes {
		res, err := node.client.Execute(ctx, programID, eva.ExecuteRequest{
			ContextID: contextID,
			Batches:   []serve.ExecuteBatch{clusterBatch},
		})
		if err != nil {
			t.Fatalf("execute via %s: %v", node.id, err)
		}
		if res.Results[0].Error != "" {
			t.Fatalf("execute via %s: %s", node.id, res.Results[0].Error)
		}
		out := res.Results[0].Values["out"]
		if len(out) == 0 {
			t.Fatalf("execute via %s returned no output", node.id)
		}
		if want == nil {
			want = out
		}
		for i := range out {
			if math.Abs(out[i]-want[i]) > 1e-3 {
				t.Fatalf("node %s diverged at [%d]: %v vs %v", node.id, i, out[i], want[i])
			}
		}
	}

	// The context must live on exactly its candidate nodes' stores.
	candidates := nodes[0].cluster.ContextCandidates(contextID)
	if len(candidates) != 2 {
		t.Fatalf("context candidates = %v, want 2 nodes", candidates)
	}
	for _, cand := range candidates {
		node := nodeByID(nodes, cand)
		if _, err := node.store.Get("context", contextID); err != nil {
			t.Errorf("candidate %s does not hold context %s: %v", cand, contextID, err)
		}
	}

	// Scatter-gather /programs: every node's listing appears.
	resp, err := http.Get(nodes[2].url + "/programs")
	if err != nil {
		t.Fatal(err)
	}
	var perNode []struct {
		Node     string              `json:"node"`
		Programs []serve.ProgramInfo `json:"programs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&perNode); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(perNode) != 3 {
		t.Fatalf("scatter /programs covered %d nodes, want 3", len(perNode))
	}
	holders := 0
	for _, np := range perNode {
		for _, p := range np.Programs {
			if p.ID == programID {
				holders++
			}
		}
	}
	if holders == 0 {
		t.Error("no node reports the compiled program")
	}

	// /metrics carries the cluster section; scope=cluster aggregates.
	resp, err = http.Get(nodes[1].url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var metrics struct {
		Cluster Stats        `json:"cluster"`
		Store   *store.Stats `json:"store"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&metrics); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if metrics.Cluster.Self != "n2" || metrics.Cluster.Nodes != 3 {
		t.Errorf("cluster metrics section: %+v", metrics.Cluster)
	}
	if metrics.Store == nil {
		t.Error("metrics store section missing")
	}
	total := uint64(0)
	for _, nodeSide := range nodes {
		st := nodeSide.cluster.Stats()
		for _, v := range st.Forwarded {
			total += v
		}
	}
	if total == 0 {
		t.Error("no requests were forwarded anywhere in a 3-node cluster")
	}

	resp, err = http.Get(nodes[0].url + "/metrics?scope=cluster")
	if err != nil {
		t.Fatal(err)
	}
	var scoped struct {
		Scope string                     `json:"scope"`
		Nodes map[string]json.RawMessage `json:"nodes"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&scoped); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if scoped.Scope != "cluster" || len(scoped.Nodes) != 3 {
		t.Errorf("scoped metrics: scope=%q nodes=%d", scoped.Scope, len(scoped.Nodes))
	}
}

// TestClusterOwnerKilledMidJob is the acceptance e2e: jobs are admitted
// through a router, their owner node is killed while they are queued or
// running, and every job must still complete on a surviving replica with
// its result delivered — zero lost results.
func TestClusterOwnerKilledMidJob(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()
	// One job worker per node serializes the owner's queue so most jobs are
	// still pending when the owner dies.
	nodes := startTestCluster(t, 3, 1)
	programID, contextID := compileAndContext(t, ctx, nodes[0])

	candidates := nodes[0].cluster.ContextCandidates(contextID)
	owner := nodeByID(nodes, candidates[0])
	var router *testNode
	for _, n := range nodes {
		if n.id != owner.id {
			router = n
			break
		}
	}
	t.Logf("context %s: owner %s, replicas %v, router %s", contextID, owner.id, candidates[1:], router.id)

	const jobCount = 6
	req := eva.JobRequest{ProgramID: programID, ContextID: contextID}
	for b := 0; b < 4; b++ {
		req.Batches = append(req.Batches, clusterBatch)
	}
	jobIDs := make([]string, jobCount)
	for i := range jobIDs {
		st, err := router.client.SubmitJob(ctx, req)
		if err != nil {
			t.Fatalf("submit %d via %s: %v", i, router.id, err)
		}
		if !strings.Contains(st.JobID, "~") {
			t.Fatalf("job id %q is not cluster-routed", st.JobID)
		}
		jobIDs[i] = st.JobID
	}

	// Kill the owner while the queue drains.
	owner.kill()

	for i, id := range jobIDs {
		final, err := router.client.WaitJob(ctx, id)
		if err != nil {
			t.Fatalf("wait job %d (%s): %v", i, id, err)
		}
		if final.Status != "done" {
			t.Fatalf("job %d (%s): terminal status %q: %s", i, id, final.Status, final.Error)
		}
		var res eva.JobResult
		// A fetch can race a requeue (409); poll until delivered.
		for {
			res, err = router.client.FetchJobResult(ctx, id)
			if err == nil {
				break
			}
			if apiErr, ok := err.(*eva.APIError); ok && apiErr.Status == http.StatusConflict {
				if _, werr := router.client.WaitJob(ctx, id); werr != nil {
					t.Fatalf("re-wait job %d: %v", i, werr)
				}
				continue
			}
			t.Fatalf("fetch job %d (%s): %v", i, id, err)
		}
		if len(res.Results) != len(req.Batches) {
			t.Fatalf("job %d: %d results, want %d", i, len(res.Results), len(req.Batches))
		}
		for bi, br := range res.Results {
			if br.Error != "" {
				t.Fatalf("job %d batch %d: %s", i, bi, br.Error)
			}
			if out := br.Values["out"]; len(out) == 0 || math.IsNaN(out[0]) {
				t.Fatalf("job %d batch %d: missing output", i, bi)
			}
		}
	}

	if st := router.cluster.Stats(); st.Requeues == 0 {
		t.Error("owner died mid-run but the router never requeued a job")
	}
	if !router.cluster.healthy(owner.id) {
		t.Logf("owner %s correctly marked down", owner.id)
	} else {
		t.Error("dead owner still marked healthy on the router")
	}
}

// TestClusterHandlePlacementAndPipeline is the handle-tier e2e: ciphertext
// handles stored through arbitrary nodes are routed to their context's ring
// candidates, fetched by scatter from nodes that do not hold them, deleted
// everywhere by broadcast, and — the acceptance scenario — a handle that
// physically lives on a node outside the executing context's candidate set
// is still resolved when a job referencing it is submitted via a third
// node. A routed two-stage pipeline closes the loop.
func TestClusterHandlePlacementAndPipeline(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()
	nodes := startTestCluster(t, 3, 1)

	// The two stage programs compile with identical options, so they share
	// one parameter chain (same fingerprint) and — with the same keygen
	// seed — identical demo keys; ExtraLevels gives stage 2 the headroom to
	// accept stage 1's rescaled output.
	opts := &serve.CompileOptionsJSON{AllowInsecure: true, MaxRescaleLog: 30, ExtraLevels: 1}
	compile := func(src string) string {
		comp, err := nodes[0].client.Compile(ctx, eva.CompileRequest{Source: src, Options: opts})
		if err != nil {
			t.Fatalf("compile: %v", err)
		}
		return comp.ID
	}
	p1 := compile(`program cstage1 vec=8;
input x @30;
input y @30;
out = x * y;
output out @30;`)
	p2 := compile(`program cstage2 vec=8;
input z @30;
out2 = z * 0.5@30;
output out2 @30;`)
	mkctx := func(programID string, via *testNode) string {
		ec, err := via.client.NewKeygenContext(ctx, programID, 7)
		if err != nil {
			t.Fatalf("context for %s via %s: %v", programID, via.id, err)
		}
		return ec.ContextID
	}
	c1 := mkctx(p1, nodes[1])
	c2 := mkctx(p2, nodes[2])

	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	ys := []float64{8, 7, 6, 5, 4, 3, 2, 1}
	want := make([]float64, 8)
	for i := range want {
		want[i] = xs[i] * ys[i] * 0.5
	}

	nonCandidate := func(contextID string) *testNode {
		cands := nodes[0].cluster.ContextCandidates(contextID)
		for _, n := range nodes {
			member := false
			for _, c := range cands {
				if n.id == c {
					member = true
				}
			}
			if !member {
				return n
			}
		}
		t.Fatalf("every node is a candidate of %s", contextID)
		return nil
	}

	// Stage 1 as a routed job with handle output, submitted via a node that
	// does not own c1.
	owner1 := nodes[0].cluster.ContextCandidates(c1)[0]
	var router *testNode
	for _, n := range nodes {
		if n.id != owner1 {
			router = n
			break
		}
	}
	st, err := router.client.SubmitJob(ctx, eva.JobRequest{
		ProgramID: p1, ContextID: c1, Output: "handle",
		Batches: []serve.ExecuteBatch{{Values: map[string][]float64{"x": xs, "y": ys}}},
	})
	if err != nil {
		t.Fatalf("submit stage-1 job via %s: %v", router.id, err)
	}
	if fin, err := router.client.WaitJob(ctx, st.JobID); err != nil || fin.Status != "done" {
		t.Fatalf("wait stage-1 job: err=%v status=%q error=%q", err, fin.Status, fin.Error)
	}
	res, err := router.client.FetchJobResult(ctx, st.JobID)
	if err != nil {
		t.Fatalf("fetch stage-1 result: %v", err)
	}
	handleID := res.Results[0].Handles["out"]
	if handleID == "" {
		t.Fatalf("stage-1 job returned no output handle: %+v", res.Results[0])
	}

	// Scatter fetch: a node outside c1's candidate set does not hold the
	// handle and must find it on a peer.
	outsider1 := nonCandidate(c1)
	rec, err := outsider1.client.FetchHandle(ctx, handleID)
	if err != nil {
		t.Fatalf("scatter fetch via %s: %v", outsider1.id, err)
	}
	if rec.Meta.ContextID != c1 || len(rec.Cipher) == 0 {
		t.Fatalf("fetched record: context %q, %d cipher bytes", rec.Meta.ContextID, len(rec.Cipher))
	}

	// Routed store: PUT through the non-owner routes to c1's owner and
	// dedups to the same content address.
	meta, err := outsider1.client.StoreCiphertext(ctx, c1, rec.Cipher)
	if err != nil {
		t.Fatalf("routed store via %s: %v", outsider1.id, err)
	}
	if meta.ID != handleID {
		t.Fatalf("routed store addressed %s, want %s", meta.ID, handleID)
	}

	// Broadcast delete removes every copy; the scatter then misses.
	if err := nodes[2].client.DeleteHandle(ctx, handleID); err != nil {
		t.Fatalf("broadcast delete: %v", err)
	}
	if _, err := nodes[0].client.FetchHandle(ctx, handleID); err == nil {
		t.Fatal("handle still resolvable after broadcast delete")
	}

	// Acceptance scenario: plant the record only on a node outside c2's
	// candidate set, then submit a stage-2 job via a different node. The
	// job routes to c2's owner, whose local registry misses; the serve
	// layer's cluster fetcher must pull the handle from the outsider peer.
	outsider2 := nonCandidate(c2)
	if _, err := outsider2.srv.Handles().Install(&handle.Record{Meta: rec.Meta, Data: rec.Cipher}); err != nil {
		t.Fatalf("planting handle on %s: %v", outsider2.id, err)
	}
	var via *testNode
	for _, n := range nodes {
		if n.id != outsider2.id {
			via = n
			break
		}
	}
	st2, err := via.client.SubmitJob(ctx, eva.JobRequest{
		ProgramID: p2, ContextID: c2, Output: "values",
		Batches: []serve.ExecuteBatch{{Handles: map[string]string{"z": handleID}}},
	})
	if err != nil {
		t.Fatalf("submit handle-input job via %s: %v", via.id, err)
	}
	if _, err := via.client.WaitJob(ctx, st2.JobID); err != nil {
		t.Fatalf("wait handle-input job: %v", err)
	}
	res2, err := via.client.FetchJobResult(ctx, st2.JobID)
	if err != nil {
		t.Fatalf("fetch handle-input result: %v", err)
	}
	if res2.Results[0].Error != "" {
		t.Fatalf("handle-input batch failed: %s", res2.Results[0].Error)
	}
	out := res2.Results[0].Values["out2"]
	if len(out) == 0 {
		t.Fatal("handle-chained job returned no decrypted values")
	}
	for i := range want {
		if math.Abs(out[i]-want[i]) > 1e-2 {
			t.Fatalf("handle-chained output[%d] = %v, want %v", i, out[i], want[i])
		}
	}

	// Routed pipeline: both stages in one submit via a node of the client's
	// choosing; the cluster ships every stage's program and context to the
	// executing node and the job id routes like any cluster job.
	pst, err := nodes[2].client.SubmitPipeline(ctx, eva.PipelineRequest{
		Stages: []eva.PipelineStage{
			{ProgramID: p1, ContextID: c1, Inputs: map[string]eva.PipelineInput{
				"x": {Values: xs}, "y": {Values: ys},
			}},
			{ProgramID: p2, ContextID: c2, Inputs: map[string]eva.PipelineInput{
				"z": {Stage: intPtr(0), Output: "out"},
			}, Output: "values"},
		},
	})
	if err != nil {
		t.Fatalf("submit pipeline via %s: %v", nodes[2].id, err)
	}
	if !strings.Contains(pst.JobID, "~") {
		t.Fatalf("pipeline job id %q is not cluster-routed", pst.JobID)
	}
	pres, err := nodes[0].client.WaitPipeline(ctx, pst.JobID)
	if err != nil {
		t.Fatalf("wait pipeline via %s: %v", nodes[0].id, err)
	}
	if len(pres.Results) != 2 {
		t.Fatalf("pipeline returned %d stage results, want 2", len(pres.Results))
	}
	final := pres.Results[1].Values["out2"]
	for i := range want {
		if math.Abs(final[i]-want[i]) > 1e-2 {
			t.Fatalf("pipeline output[%d] = %v, want %v", i, final[i], want[i])
		}
	}
}

func intPtr(v int) *int { return &v }

// TestRoutedJobSweepConfig: the retention and sweep knobs hoisted into
// Config drive sweepRoutedJobs — no production clocks in tests.
func TestRoutedJobSweepConfig(t *testing.T) {
	srv := serve.NewServer(serve.Config{AllowServerKeygen: true})
	defer srv.Close()
	c, err := New(srv, Config{
		Self:                "solo",
		ProbeInterval:       -1,
		RoutedJobRetention:  time.Hour,
		RetiredJobRetention: time.Minute,
		SweepInterval:       time.Nanosecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	now := time.Now()
	recs := map[string]*routedJob{
		"live-old":      {Suffix: "live-old", CreatedAt: now.Add(-2 * time.Hour)},
		"live-fresh":    {Suffix: "live-fresh", CreatedAt: now},
		"retired-old":   {Suffix: "retired-old", Delivered: true, CreatedAt: now.Add(-2 * time.Hour), RetiredAt: now.Add(-2 * time.Minute)},
		"retired-fresh": {Suffix: "retired-fresh", Delivered: true, CreatedAt: now, RetiredAt: now},
	}
	c.mu.Lock()
	for k, v := range recs {
		c.cjobs[k] = v
	}
	c.mu.Unlock()

	c.sweepRoutedJobs()

	c.mu.Lock()
	defer c.mu.Unlock()
	for _, gone := range []string{"live-old", "retired-old"} {
		if _, ok := c.cjobs[gone]; ok {
			t.Errorf("record %q survived the sweep", gone)
		}
	}
	for _, kept := range []string{"live-fresh", "retired-fresh"} {
		if _, ok := c.cjobs[kept]; !ok {
			t.Errorf("record %q was swept before its retention expired", kept)
		}
	}

	// Zero-valued knobs fall back to the documented defaults.
	d, err := New(srv, Config{Self: "solo2", ProbeInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if d.cfg.RoutedJobRetention != 24*time.Hour || d.cfg.RetiredJobRetention != 10*time.Minute || d.cfg.SweepInterval != time.Minute {
		t.Errorf("defaults = %v/%v/%v, want 24h/10m/1m",
			d.cfg.RoutedJobRetention, d.cfg.RetiredJobRetention, d.cfg.SweepInterval)
	}
}

// TestClusterProbeRequeuesProactively: the health prober, not a client
// poll, notices a dead owner and moves its jobs.
func TestClusterProbeRequeuesProactively(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	nodes := startTestCluster(t, 3, 1)
	programID, contextID := compileAndContext(t, ctx, nodes[0])
	candidates := nodes[0].cluster.ContextCandidates(contextID)
	owner := nodeByID(nodes, candidates[0])
	var router *testNode
	for _, n := range nodes {
		if n.id != owner.id {
			router = n
			break
		}
	}

	req := eva.JobRequest{ProgramID: programID, ContextID: contextID,
		Batches: []serve.ExecuteBatch{clusterBatch, clusterBatch, clusterBatch, clusterBatch}}
	var ids []string
	for i := 0; i < 3; i++ {
		st, err := router.client.SubmitJob(ctx, req)
		if err != nil {
			t.Fatalf("submit: %v", err)
		}
		ids = append(ids, st.JobID)
	}
	owner.kill()

	// One probe cycle must detect the death and requeue without any client
	// touching the jobs.
	router.cluster.Probe(ctx)
	if st := router.cluster.Stats(); st.Requeues == 0 {
		t.Fatal("probe cycle did not requeue jobs off the dead owner")
	}
	for _, id := range ids {
		final, err := router.client.WaitJob(ctx, id)
		if err != nil || final.Status != "done" {
			t.Fatalf("job %s after proactive requeue: %v %s %s", id, err, final.Status, final.Error)
		}
	}
}
