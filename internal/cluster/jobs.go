package cluster

import (
	"context"
	"encoding/json"
	"log/slog"
	"net/http"
	"time"

	"eva/internal/obs"
	"eva/internal/serve"
)

// Routed jobs. When a node admits an async job as a router, the job itself
// runs on the context's owner node, but the router keeps a durable
// routed-job record: the original request body, the context id (which
// determines the candidate nodes), and the current assignment. The job id
// handed to the client is "<router>~<suffix>", so any node can route
// subsequent status/result calls back to the router that homes the record;
// the router proxies them to the current worker and — when the worker is
// dead or has forgotten the job — resubmits the recorded request to the
// next healthy replica. Re-execution is safe: an EVA job is a pure,
// deterministic encrypted computation, so failover gives at-least-once
// execution with exactly-once result delivery (fetch-once is enforced
// wherever the result lands).

// kindRoutedJob is the artifact-store kind for routed-job records.
const kindRoutedJob = "cjob"

// routedJob is one record. Fields are exported for JSON persistence.
type routedJob struct {
	Suffix    string          `json:"suffix"` // id = home + "~" + suffix
	ContextID string          `json:"context_id"`
	Body      json.RawMessage `json:"body"`           // the original JobRequest (or PipelineRequest)
	Path      string          `json:"path,omitempty"` // submit path; "" means /jobs
	Node      string          `json:"node"`           // current assignment
	LocalID   string          `json:"local_id"`
	Attempts  int             `json:"attempts"`
	Delivered bool            `json:"delivered"`
	Cancelled bool            `json:"cancelled"`
	Failed    string          `json:"failed,omitempty"` // terminal routing failure
	CreatedAt time.Time       `json:"created_at"`
	RetiredAt time.Time       `json:"retired_at,omitempty"` // when Delivered/Cancelled was set

	requeueing bool `json:"-"` // guards concurrent requeue attempts
}

// nodeCtx bounds node-to-node maintenance calls (replication, requeue,
// program shipping) independently of any client request.
func nodeCtx() context.Context {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	// The deadline owns cleanup; callers treat the context as fire-and-forget.
	_ = cancel
	return ctx
}

// loadRoutedJobs reloads this router's records after a restart.
func (c *Cluster) loadRoutedJobs() {
	if c.cfg.Store == nil {
		return
	}
	ids, err := c.cfg.Store.List(kindRoutedJob)
	if err != nil {
		return
	}
	for _, id := range ids {
		data, err := c.cfg.Store.Get(kindRoutedJob, id)
		if err != nil {
			continue
		}
		var rec routedJob
		if json.Unmarshal(data, &rec) != nil || rec.Suffix == "" {
			continue
		}
		c.cjobs[rec.Suffix] = &rec
	}
}

func (c *Cluster) persistRoutedJob(rec *routedJob) {
	if c.cfg.Store == nil {
		return
	}
	data, err := json.Marshal(rec)
	if err != nil {
		return
	}
	c.cfg.Store.Put(kindRoutedJob, rec.Suffix, data)
}

func (c *Cluster) dropRoutedJob(rec *routedJob) {
	c.mu.Lock()
	delete(c.cjobs, rec.Suffix)
	c.mu.Unlock()
	if c.cfg.Store != nil {
		c.cfg.Store.Delete(kindRoutedJob, rec.Suffix)
	}
}

// handleJobSubmit admits an async job as a router: pick the context's
// owner (or next healthy replica), submit there, and answer with the
// cluster job id backed by a durable record.
func (c *Cluster) handleJobSubmit(w http.ResponseWriter, r *http.Request, body []byte) {
	var req serve.JobRequest
	if err := json.Unmarshal(body, &req); err != nil {
		writeError(w, http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	if req.ContextID == "" {
		c.serveLocal("jobs_submit", w, r, body)
		return
	}
	suffix, err := newSuffix()
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	candidates := c.ContextCandidates(req.ContextID)
	var lastStatus int
	var lastBody []byte
	for _, node := range candidates {
		if !c.healthy(node) {
			continue
		}
		status, data, err := c.roundTrip(r.Context(), node, http.MethodPost, "/jobs", body)
		if err != nil {
			if r.Context().Err() != nil {
				return
			}
			continue // marked down; try the next replica
		}
		if c.isSelf(node) {
			c.countServed("jobs_submit")
		} else {
			c.countForwarded("jobs_submit")
		}
		if status != http.StatusAccepted {
			// Shed (429), bad request, unknown context... pass the worker's
			// verdict through — unless a later replica might hold a context
			// this one is missing.
			lastStatus, lastBody = status, data
			if status == http.StatusNotFound {
				continue
			}
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(status)
			w.Write(data)
			return
		}
		var st serve.JobStatus
		if err := json.Unmarshal(data, &st); err != nil {
			writeError(w, http.StatusBadGateway, "cluster: node %s returned an unreadable job status: %v", node, err)
			return
		}
		rec := &routedJob{
			Suffix:    suffix,
			ContextID: req.ContextID,
			Body:      json.RawMessage(body),
			Node:      node,
			LocalID:   st.JobID,
			Attempts:  1,
			CreatedAt: time.Now(),
		}
		c.mu.Lock()
		c.cjobs[suffix] = rec
		c.mu.Unlock()
		c.persistRoutedJob(rec)

		st.JobID = c.cfg.Self + "~" + suffix
		w.Header().Set("Location", "/jobs/"+st.JobID)
		writeJSON(w, http.StatusAccepted, st)
		return
	}
	if lastStatus != 0 {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(lastStatus)
		w.Write(lastBody)
		return
	}
	w.Header().Set("Retry-After", "1")
	writeError(w, http.StatusServiceUnavailable, "cluster: no healthy node holds context %q", req.ContextID)
}

// handleJobGet wraps the status/result/cancel handlers with routed-id
// resolution: plain ids stay local, ids homed elsewhere are forwarded to
// their router, and ids homed here go through the record table.
func (c *Cluster) handleJobGet(route string, h func(w http.ResponseWriter, r *http.Request, rec *routedJob)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		home, suffix, isRouted := splitJobID(id)
		if !isRouted {
			c.countServed(route)
			c.local.Handler().ServeHTTP(w, r)
			return
		}
		if home != c.cfg.Self {
			if !c.healthy(home) {
				w.Header().Set("Retry-After", "1")
				writeError(w, http.StatusBadGateway, "cluster: job router %q is down", home)
				return
			}
			if !c.forward(route, w, r, home, nil) {
				w.Header().Set("Retry-After", "1")
				writeError(w, http.StatusBadGateway, "cluster: job router %q is unreachable", home)
			}
			return
		}
		c.mu.Lock()
		rec := c.cjobs[suffix]
		c.mu.Unlock()
		if rec == nil {
			writeError(w, http.StatusNotFound, "unknown job %q", id)
			return
		}
		c.countServed(route)
		h(w, r, rec)
	}
}

func (c *Cluster) clusterJobID(rec *routedJob) string { return c.cfg.Self + "~" + rec.Suffix }

// jobStatus proxies a status poll to the job's current worker, requeueing
// on a dead or amnesiac worker.
func (c *Cluster) jobStatus(w http.ResponseWriter, r *http.Request, rec *routedJob) {
	c.mu.Lock()
	node, localID := rec.Node, rec.LocalID
	failed, cancelled, delivered := rec.Failed, rec.Cancelled, rec.Delivered
	c.mu.Unlock()
	if failed != "" {
		writeJSON(w, http.StatusOK, serve.JobStatus{JobID: c.clusterJobID(rec), Status: "failed", Error: failed})
		return
	}
	status, data, err := c.roundTrip(r.Context(), node, http.MethodGet, "/jobs/"+localID, nil)
	if err == nil && status == http.StatusOK {
		var st serve.JobStatus
		if json.Unmarshal(data, &st) == nil {
			st.JobID = c.clusterJobID(rec)
			if st.Status == "failed" || st.Status == "cancelled" {
				// A genuine terminal failure (not a dead node): the job will
				// never deliver a result, so retire the record.
				c.dropRoutedJob(rec)
			}
			writeJSON(w, http.StatusOK, st)
			return
		}
	}
	if cancelled {
		writeJSON(w, http.StatusOK, serve.JobStatus{JobID: c.clusterJobID(rec), Status: "cancelled"})
		return
	}
	if delivered {
		// Delivered records linger only so the trace stays reachable; a
		// worker that forgot the job is not a failover trigger.
		writeJSON(w, http.StatusOK, serve.JobStatus{JobID: c.clusterJobID(rec), Status: "done"})
		return
	}
	if err == nil && status != http.StatusOK && status != http.StatusNotFound {
		// The worker answered with something meaningful (e.g. 500): relay it.
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(status)
		w.Write(data)
		return
	}
	// Dead node or a worker that no longer knows the job: fail over.
	if c.requeue(rec, node) {
		writeJSON(w, http.StatusOK, serve.JobStatus{JobID: c.clusterJobID(rec), Status: "queued"})
		return
	}
	c.mu.Lock()
	failed = rec.Failed
	c.mu.Unlock()
	writeJSON(w, http.StatusOK, serve.JobStatus{
		JobID: c.clusterJobID(rec), Status: "failed",
		Error: failed,
	})
}

// jobResult proxies the fetch-once result; a dead worker triggers a
// requeue and tells the client to keep polling.
func (c *Cluster) jobResult(w http.ResponseWriter, r *http.Request, rec *routedJob) {
	c.mu.Lock()
	node, localID := rec.Node, rec.LocalID
	c.mu.Unlock()
	status, data, err := c.roundTrip(r.Context(), node, http.MethodGet, "/jobs/"+localID+"/result", nil)
	if err == nil {
		switch status {
		case http.StatusOK:
			var jr serve.JobResult
			if uerr := json.Unmarshal(data, &jr); uerr == nil {
				jr.JobID = c.clusterJobID(rec)
				// Mark delivered but keep the record for a retirement
				// window: GET /jobs/{id}/trace still needs to find the
				// worker after the result is gone. The sweep drops it.
				c.mu.Lock()
				rec.Delivered = true
				rec.RetiredAt = time.Now()
				c.mu.Unlock()
				c.persistRoutedJob(rec)
				writeJSON(w, http.StatusOK, jr)
				return
			}
			writeError(w, http.StatusBadGateway, "cluster: node %s returned an unreadable result", node)
			return
		case http.StatusGone:
			c.dropRoutedJob(rec)
			fallthrough
		case http.StatusConflict:
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(status)
			w.Write(data)
			return
		case http.StatusNotFound:
			// Fall through to requeue: the worker lost the job.
		default:
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(status)
			w.Write(data)
			return
		}
	}
	if r.Context().Err() != nil {
		return
	}
	c.mu.Lock()
	delivered := rec.Delivered
	c.mu.Unlock()
	if delivered {
		// The worker already forgot the job and the result is long gone;
		// there is nothing to requeue.
		c.dropRoutedJob(rec)
		writeError(w, http.StatusGone, "job %q: the result was already delivered", c.clusterJobID(rec))
		return
	}
	if c.requeue(rec, node) {
		writeError(w, http.StatusConflict, "job %q was requeued after its node failed; poll GET /jobs/%s until it is done",
			c.clusterJobID(rec), c.clusterJobID(rec))
		return
	}
	c.mu.Lock()
	failed := rec.Failed
	c.mu.Unlock()
	writeError(w, http.StatusGone, "job %q is failed: %s", c.clusterJobID(rec), failed)
}

// jobTrace proxies GET /jobs/{id}/trace to the job's current worker — the
// node whose tracer holds the span tree — rewriting the job id back to the
// cluster-visible one. No requeue here: a missing trace is a 404, not a
// reason to re-execute the job.
func (c *Cluster) jobTrace(w http.ResponseWriter, r *http.Request, rec *routedJob) {
	c.mu.Lock()
	node, localID := rec.Node, rec.LocalID
	c.mu.Unlock()
	status, data, err := c.roundTrip(r.Context(), node, http.MethodGet, "/jobs/"+localID+"/trace", nil)
	if err != nil {
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusBadGateway, "cluster: job worker %q is unreachable: %v", node, err)
		return
	}
	if status == http.StatusOK {
		var tj obs.TraceJSON
		if json.Unmarshal(data, &tj) == nil {
			tj.JobID = c.clusterJobID(rec)
			writeJSON(w, http.StatusOK, tj)
			return
		}
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(data)
}

// jobCancel cancels the job wherever it currently runs and retires the
// record.
func (c *Cluster) jobCancel(w http.ResponseWriter, r *http.Request, rec *routedJob) {
	c.mu.Lock()
	node, localID := rec.Node, rec.LocalID
	rec.Cancelled = true
	rec.RetiredAt = time.Now()
	c.mu.Unlock()
	c.persistRoutedJob(rec)
	status, data, err := c.roundTrip(r.Context(), node, http.MethodDelete, "/jobs/"+localID, nil)
	if err == nil && status == http.StatusOK {
		var st serve.JobStatus
		if json.Unmarshal(data, &st) == nil {
			st.JobID = c.clusterJobID(rec)
			writeJSON(w, http.StatusOK, st)
			return
		}
	}
	writeJSON(w, http.StatusOK, serve.JobStatus{JobID: c.clusterJobID(rec), Status: "cancelled"})
}

// handleJobEvents proxies the SSE stream from the job's current worker. A
// stream cut by a worker death simply ends; eva.Client.WaitJob falls back
// to polling, which triggers the requeue.
func (c *Cluster) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	home, suffix, isRouted := splitJobID(id)
	if !isRouted {
		c.local.Handler().ServeHTTP(w, r)
		return
	}
	if home != c.cfg.Self {
		if !c.healthy(home) || !c.forwardStream(w, r, home, "/jobs/"+id+"/events") {
			writeError(w, http.StatusBadGateway, "cluster: job router %q is unreachable", home)
		}
		return
	}
	c.mu.Lock()
	rec := c.cjobs[suffix]
	c.mu.Unlock()
	if rec == nil {
		writeError(w, http.StatusNotFound, "unknown job %q", id)
		return
	}
	c.mu.Lock()
	node, localID := rec.Node, rec.LocalID
	c.mu.Unlock()
	if c.isSelf(node) {
		r2 := r.Clone(r.Context())
		r2.URL.Path = "/jobs/" + localID + "/events"
		r2.SetPathValue("id", localID)
		c.local.Handler().ServeHTTP(w, r2)
		return
	}
	if !c.forwardStream(w, r, node, "/jobs/"+localID+"/events") {
		writeError(w, http.StatusBadGateway, "cluster: job worker %q is unreachable", node)
	}
}

// forwardStream proxies a response body chunk by chunk (SSE), flushing as
// data arrives.
func (c *Cluster) forwardStream(w http.ResponseWriter, r *http.Request, node, path string) bool {
	client := c.clients[node]
	if client == nil {
		return false
	}
	header := http.Header{}
	header.Set(headerForwarded, c.cfg.Self)
	resp, err := client.DoRaw(r.Context(), http.MethodGet, path, header, nil)
	if err != nil {
		c.markDown(node, err)
		return false
	}
	defer resp.Body.Close()
	for k, vs := range resp.Header {
		if len(w.Header().Values(k)) > 0 {
			continue
		}
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	flusher, canFlush := w.(http.Flusher)
	buf := make([]byte, 4096)
	for {
		n, err := resp.Body.Read(buf)
		if n > 0 {
			if _, werr := w.Write(buf[:n]); werr != nil {
				return true
			}
			if canFlush {
				flusher.Flush()
			}
		}
		if err != nil {
			return true // EOF or a cut stream; the client falls back to polling
		}
	}
}

// requeue moves a routed job off a failed node onto the next healthy
// candidate for its context. It reports whether the job is running (or
// queued) somewhere; false means no candidate could take it and the record
// is marked failed. Concurrent callers (a client poll racing the health
// prober) coordinate through the requeueing flag.
func (c *Cluster) requeue(rec *routedJob, failedNode string) bool {
	c.mu.Lock()
	if rec.Cancelled || rec.Delivered {
		c.mu.Unlock()
		return false
	}
	if rec.Node != failedNode {
		// Someone else already moved it.
		c.mu.Unlock()
		return true
	}
	if rec.requeueing {
		// A concurrent requeue is in flight; report optimistically — the
		// caller polls again.
		c.mu.Unlock()
		return true
	}
	rec.requeueing = true
	c.mu.Unlock()
	defer func() {
		c.mu.Lock()
		rec.requeueing = false
		c.mu.Unlock()
	}()

	path := rec.Path
	if path == "" {
		path = "/jobs"
	}
	for _, node := range c.ContextCandidates(rec.ContextID) {
		if node == failedNode || !c.healthy(node) {
			continue
		}
		status, data, err := c.roundTrip(nodeCtx(), node, http.MethodPost, path, rec.Body)
		if err != nil || status != http.StatusAccepted {
			continue
		}
		var st serve.JobStatus
		if err := json.Unmarshal(data, &st); err != nil {
			continue
		}
		c.mu.Lock()
		rec.Node, rec.LocalID = node, st.JobID
		rec.Attempts++
		attempts := rec.Attempts
		c.requeues++
		c.mu.Unlock()
		c.persistRoutedJob(rec)
		c.log.Info("routed job requeued",
			slog.String(obs.LogJobID, c.clusterJobID(rec)),
			slog.String("from", failedNode),
			slog.String("to", node),
			slog.Int("attempts", attempts))
		return true
	}
	c.mu.Lock()
	rec.Failed = "no healthy replica could take the job after node " + failedNode + " failed"
	c.mu.Unlock()
	c.persistRoutedJob(rec)
	c.log.Warn("routed job failed: no healthy replica",
		slog.String(obs.LogJobID, c.clusterJobID(rec)),
		slog.String("from", failedNode))
	return false
}

// requeueJobsOn fails over every live routed job assigned to a node that
// was just observed dead (called from the health prober).
func (c *Cluster) requeueJobsOn(node string) {
	c.mu.Lock()
	var victims []*routedJob
	for _, rec := range c.cjobs {
		if rec.Node == node && !rec.Delivered && !rec.Cancelled && rec.Failed == "" {
			victims = append(victims, rec)
		}
	}
	c.mu.Unlock()
	for _, rec := range victims {
		c.requeue(rec, node)
	}
}
