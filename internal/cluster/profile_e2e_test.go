package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"testing"

	"eva/internal/profile"
	"eva/internal/serve"
)

// doLocal sends a request straight to one node's local serve layer by
// setting the forwarded header, bypassing cluster routing — the way a peer's
// forwarded request arrives. It lets the test place executions (and so
// profiler samples) on a specific node regardless of ring ownership.
func doLocal[T any](t *testing.T, node *testNode, method, path string, body any) T {
	t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatal(err)
		}
	}
	req, err := http.NewRequest(method, node.url+path, &buf)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(headerForwarded, "test")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("%s %s on %s: status %d: %s", method, path, node.id, resp.StatusCode, data)
	}
	var out T
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatalf("%s %s on %s: %v in %s", method, path, node.id, err, data)
	}
	return out
}

// TestClusterProfileScatter: every node records its own samples; GET
// /profile?scope=cluster from any node returns the per-node reports plus a
// merged view whose counters are exactly the sum — each instruction sampled
// by one node, never double-counted.
func TestClusterProfileScatter(t *testing.T) {
	nodes := startTestCluster(t, 3, 0)

	// Run one batch locally on EVERY node (forwarded header bypasses
	// routing), so all three collectors hold samples.
	var programID string
	for i, node := range nodes {
		comp := doLocal[serve.CompileResponse](t, node, http.MethodPost, "/compile", serve.CompileRequest{
			Source:  clusterProgram,
			Options: &serve.CompileOptionsJSON{AllowInsecure: true},
		})
		programID = comp.ID
		ectx := doLocal[serve.ContextResponse](t, node, http.MethodPost, "/contexts", serve.ContextRequest{
			ProgramID: comp.ID,
			Keygen:    &serve.KeygenJSON{Seed: uint64(100 + i)},
		})
		exec := doLocal[serve.ExecuteResponse](t, node, http.MethodPost, "/execute/"+comp.ID, serve.ExecuteRequest{
			ContextID: ectx.ContextID,
			Batches:   []serve.ExecuteBatch{clusterBatch},
		})
		if exec.Results[0].Error != "" {
			t.Fatalf("execute on %s: %s", node.id, exec.Results[0].Error)
		}
	}

	// Per-node ground truth via each node's plain /profile.
	var wantSamples, wantExecs, wantMultiply uint64
	perNode := map[string]profile.Report{}
	for _, node := range nodes {
		rep := doLocal[profile.Report](t, node, http.MethodGet, "/profile", nil)
		if rep.Samples == 0 {
			t.Fatalf("node %s recorded no samples", node.id)
		}
		if rep.Node != node.id {
			t.Errorf("node %s reports node id %q", node.id, rep.Node)
		}
		perNode[node.id] = rep
		wantSamples += rep.Samples
		wantExecs += rep.Executions
		for _, b := range rep.Buckets {
			if b.Op == "MULTIPLY" {
				wantMultiply += b.Count
			}
		}
	}

	// Scatter-gather through the first node, no forwarded header.
	resp, err := http.Get(nodes[0].url + "/profile?scope=cluster")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("scatter: status %d", resp.StatusCode)
	}
	var scatter struct {
		Scope  string                    `json:"scope"`
		Nodes  map[string]profile.Report `json:"nodes"`
		Merged profile.Report            `json:"merged"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&scatter); err != nil {
		t.Fatal(err)
	}
	if scatter.Scope != "cluster" {
		t.Fatalf("scope %q; want cluster", scatter.Scope)
	}
	if len(scatter.Nodes) != 3 {
		t.Fatalf("scatter covered %d nodes; want 3", len(scatter.Nodes))
	}
	for id, want := range perNode {
		if got := scatter.Nodes[id].Samples; got != want.Samples {
			t.Errorf("node %s scatter samples %d != local %d", id, got, want.Samples)
		}
	}

	m := scatter.Merged
	if m.Samples != wantSamples || m.Executions != wantExecs {
		t.Errorf("merged samples=%d execs=%d; want %d/%d", m.Samples, m.Executions, wantSamples, wantExecs)
	}
	var gotMultiply uint64
	for _, b := range m.Buckets {
		if b.Op == "MULTIPLY" {
			gotMultiply += b.Count
		}
	}
	if gotMultiply != wantMultiply {
		t.Errorf("merged MULTIPLY count %d; want sum %d", gotMultiply, wantMultiply)
	}
	// The shared program appears once in the merged per-program roll-up,
	// carrying all three nodes' executions.
	var progExecs uint64
	matches := 0
	for _, ps := range m.Programs {
		if ps.ProgramID == programID {
			matches++
			progExecs = ps.Executions
		}
	}
	if matches != 1 {
		t.Fatalf("program appears %d times in merged roll-up; want once", matches)
	}
	if progExecs != wantExecs {
		t.Errorf("merged program executions %d; want %d", progExecs, wantExecs)
	}

	// A downed node degrades to an error entry without failing the scatter.
	nodes[2].kill()
	nodes[0].cluster.markDown(nodes[2].id, fmt.Errorf("killed by test"))
	resp2, err := http.Get(nodes[0].url + "/profile?scope=cluster")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var degraded struct {
		Nodes  map[string]json.RawMessage `json:"nodes"`
		Merged profile.Report             `json:"merged"`
	}
	if err := json.NewDecoder(resp2.Body).Decode(&degraded); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(degraded.Nodes[nodes[2].id], []byte("error")) {
		t.Errorf("downed node entry carries no error: %s", degraded.Nodes[nodes[2].id])
	}
	if m2 := degraded.Merged; m2.Samples != wantSamples-perNode[nodes[2].id].Samples {
		t.Errorf("degraded merge samples %d; want %d", m2.Samples, wantSamples-perNode[nodes[2].id].Samples)
	}
}
