package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"time"

	"eva/internal/handle"
	"eva/internal/serve"
)

// Ciphertext handles on the ring. A handle's content address does not
// reveal which node stores it, but every handle is created under a context,
// and contexts have ring placement — so PUT /handles routes to the owning
// candidates of its context_id (primary stores synchronously, the remaining
// candidates replicate in the background), while GET/DELETE by bare id fall
// back to local-then-scatter. The serve layer's execution-time resolver is
// wired to the same scatter (SetHandleFetcher in New), so a job routed to a
// context's owner can consume a handle that physically lives elsewhere.

// handleHandlePut routes a ciphertext store to the owner of its context,
// failing over down the candidate list, then replicates the stored record
// to the remaining candidates best-effort (content addressing makes the
// replica PUT idempotent).
func (c *Cluster) handleHandlePut(w http.ResponseWriter, r *http.Request, body []byte) {
	var req serve.HandlePutRequest
	if err := json.Unmarshal(body, &req); err != nil || req.ContextID == "" {
		// Let the local server produce its ordinary validation error.
		c.serveLocal("handles_put", w, r, body)
		return
	}
	candidates := c.ContextCandidates(req.ContextID)
	var lastStatus int
	var lastBody []byte
	for _, node := range candidates {
		if !c.healthy(node) {
			continue
		}
		status, data, err := c.roundTrip(r.Context(), node, http.MethodPut, "/handles", body)
		if err != nil {
			if r.Context().Err() != nil {
				return
			}
			continue // marked down; try the next replica
		}
		if c.isSelf(node) {
			c.countServed("handles_put")
		} else {
			c.countForwarded("handles_put")
		}
		if status == http.StatusNotFound {
			// This replica does not hold the context (yet); a later one may.
			lastStatus, lastBody = status, data
			continue
		}
		if status == http.StatusOK {
			c.replicateHandleAsync(body, candidates, node)
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(status)
		w.Write(data)
		return
	}
	if lastStatus != 0 {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(lastStatus)
		w.Write(lastBody)
		return
	}
	writeError(w, http.StatusServiceUnavailable, "cluster: no healthy node holds context %q", req.ContextID)
}

// replicateHandleAsync re-sends a stored PUT /handles body to the remaining
// candidate nodes. Failures are counted, not surfaced: the scatter fetch
// still finds the primary copy.
func (c *Cluster) replicateHandleAsync(body []byte, candidates []string, primary string) {
	go func() {
		for _, node := range candidates {
			if node == primary || !c.healthy(node) {
				continue
			}
			status, _, err := c.roundTrip(nodeCtx(), node, http.MethodPut, "/handles", body)
			if err != nil || status != http.StatusOK {
				c.countReplErr()
			}
		}
	}()
}

// handleHandleGet serves GET /handles/{id}: the local registry first, then
// a scatter across healthy peers — the content address does not say which
// node stores the handle, and the uploader may have failed over.
func (c *Cluster) handleHandleGet(w http.ResponseWriter, r *http.Request) {
	if r.Header.Get(headerForwarded) != "" {
		c.countServed("handles_get")
		c.local.Handler().ServeHTTP(w, r)
		return
	}
	id := r.PathValue("id")
	meta, data, err := c.local.Handles().Get(id)
	if err == nil {
		c.countServed("handles_get")
		writeJSON(w, http.StatusOK, serve.HandleRecordJSON{Meta: meta, Cipher: data})
		return
	}
	if !errors.Is(err, handle.ErrNotFound) {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	for _, node := range c.ring.nodes {
		if c.isSelf(node) || !c.healthy(node) {
			continue
		}
		status, body, rerr := c.roundTrip(r.Context(), node, http.MethodGet, "/handles/"+id, nil)
		if rerr != nil || status != http.StatusOK {
			continue
		}
		c.countForwarded("handles_get")
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		w.Write(body)
		return
	}
	writeError(w, http.StatusNotFound, "unknown handle %q", id)
}

// handleHandleDelete broadcasts DELETE /handles/{id} to every healthy node:
// replication means any subset may hold a copy, and deletion must reach all
// of them or the scatter fetch resurrects the handle.
func (c *Cluster) handleHandleDelete(w http.ResponseWriter, r *http.Request) {
	if r.Header.Get(headerForwarded) != "" {
		c.countServed("handles_delete")
		c.local.Handler().ServeHTTP(w, r)
		return
	}
	id := r.PathValue("id")
	deleted := false
	for _, node := range c.ring.nodes {
		if c.isSelf(node) {
			if c.local.Handles().Delete(id) == nil {
				deleted = true
			}
			continue
		}
		if !c.healthy(node) {
			continue
		}
		status, _, err := c.roundTrip(r.Context(), node, http.MethodDelete, "/handles/"+id, nil)
		if err == nil && status == http.StatusOK {
			deleted = true
		}
	}
	c.countServed("handles_delete")
	if !deleted {
		writeError(w, http.StatusNotFound, "unknown handle %q", id)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"deleted": id})
}

// fetchHandleFromPeers is the serve layer's remote-resolution hook: when a
// job or pipeline running here references a handle this node does not hold,
// scatter GET /handles/{id} across the peers and install the first hit. The
// registry re-verifies the record against its content address.
func (c *Cluster) fetchHandleFromPeers(ctx context.Context, id string) (*handle.Record, error) {
	if ctx == nil || ctx.Err() != nil {
		ctx = nodeCtx()
	}
	for _, node := range c.ring.nodes {
		if c.isSelf(node) || !c.healthy(node) {
			continue
		}
		status, body, err := c.roundTrip(ctx, node, http.MethodGet, "/handles/"+id, nil)
		if err != nil || status != http.StatusOK {
			continue
		}
		var rec serve.HandleRecordJSON
		if json.Unmarshal(body, &rec) != nil || rec.Meta.ID != id {
			continue
		}
		return &handle.Record{Meta: rec.Meta, Data: rec.Cipher}, nil
	}
	return nil, handle.ErrNotFound
}

// --- /pipelines ---

// handlePipelineSubmit routes a pipeline to the owner of its first stage's
// context, shipping every stage's program and context there first (stages
// may name contexts homed on other nodes; the executing node needs them
// all). The admission is recorded as a routed job so status/result/trace
// calls route like any cluster job.
func (c *Cluster) handlePipelineSubmit(w http.ResponseWriter, r *http.Request, body []byte) {
	var req struct {
		Stages []struct {
			ProgramID string `json:"program_id"`
			ContextID string `json:"context_id"`
		} `json:"stages"`
	}
	if err := json.Unmarshal(body, &req); err != nil || len(req.Stages) == 0 || req.Stages[0].ContextID == "" {
		c.serveLocal("pipelines", w, r, body)
		return
	}
	suffix, err := newSuffix()
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	candidates := c.ContextCandidates(req.Stages[0].ContextID)
	primary, ok := c.firstHealthy(candidates)
	if !ok {
		writeError(w, http.StatusServiceUnavailable, "cluster: no healthy node holds context %q", req.Stages[0].ContextID)
		return
	}
	for _, st := range req.Stages {
		if st.ProgramID == "" || st.ContextID == "" {
			c.serveLocal("pipelines", w, r, body)
			return
		}
		if err := c.ensureProgram(primary, st.ProgramID); err != nil {
			writeError(w, http.StatusNotFound, "unknown program %q; POST /compile first (%v)", st.ProgramID, err)
			return
		}
		if err := c.ensureContext(primary, st.ContextID, st.ProgramID); err != nil {
			writeError(w, http.StatusNotFound, "cluster: staging context %q on %s: %v", st.ContextID, primary, err)
			return
		}
	}
	status, data, err := c.roundTrip(r.Context(), primary, http.MethodPost, "/pipelines", body)
	if err != nil {
		writeError(w, http.StatusServiceUnavailable, "cluster: pipeline owner %s unreachable: %v", primary, err)
		return
	}
	if c.isSelf(primary) {
		c.countServed("pipelines")
	} else {
		c.countForwarded("pipelines")
	}
	if status != http.StatusAccepted {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(status)
		w.Write(data)
		return
	}
	var st serve.JobStatus
	if err := json.Unmarshal(data, &st); err != nil {
		writeError(w, http.StatusBadGateway, "cluster: node %s returned an unreadable job status: %v", primary, err)
		return
	}
	rec := &routedJob{
		Suffix:    suffix,
		ContextID: req.Stages[0].ContextID,
		Body:      json.RawMessage(body),
		Path:      "/pipelines",
		Node:      primary,
		LocalID:   st.JobID,
		Attempts:  1,
		CreatedAt: time.Now(),
	}
	c.mu.Lock()
	c.cjobs[suffix] = rec
	c.mu.Unlock()
	c.persistRoutedJob(rec)
	st.JobID = c.cfg.Self + "~" + suffix
	w.Header().Set("Location", "/jobs/"+st.JobID)
	writeJSON(w, http.StatusAccepted, st)
}

// ensureContext makes a node hold a context, shipping the key bundle from
// the context's owner when the node does not have it yet.
func (c *Cluster) ensureContext(node, contextID, programID string) error {
	status, _, err := c.roundTrip(nodeCtx(), node, http.MethodGet, "/contexts/"+contextID+"/bundle", nil)
	if err == nil && status == http.StatusOK {
		return nil
	}
	var bundle *serve.ContextBundle
	for _, src := range c.ContextCandidates(contextID) {
		if src == node || !c.healthy(src) {
			continue
		}
		status, data, err := c.roundTrip(nodeCtx(), src, http.MethodGet, "/contexts/"+contextID+"/bundle", nil)
		if err != nil || status != http.StatusOK {
			continue
		}
		b := &serve.ContextBundle{}
		if json.Unmarshal(data, b) == nil {
			bundle = b
			break
		}
	}
	if bundle == nil {
		return errors.New("no candidate node holds the context bundle")
	}
	return c.installContextOn(node, contextID, programID, bundle)
}
