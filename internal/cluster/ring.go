// Package cluster is evaserve's sharded multi-node execution tier. A static
// membership of nodes shares one consistent-hash ring; every execution
// context (and therefore every job against it) is owned by the node its id
// hashes to, with the next distinct nodes on the ring acting as replicas.
// Any node can act as a router: requests that belong elsewhere are
// forwarded to the owner over the ordinary evaserve HTTP API via
// eva.Client, peer health is probed in the background, and jobs whose
// owner dies are requeued onto the next replica from a durable routed-job
// record kept by the router that admitted them. /programs and /metrics are
// scatter-gathered across the membership.
//
// The paper's deployment model makes this tier natural: programs,
// parameters, keys, and ciphertexts are all serialized artifacts, so
// nothing about an EVA workload pins it to one process — a context's key
// bundle installs anywhere its program compiles (compilation is
// deterministic), which is exactly what replication and failover exploit.
package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
)

// ring is a consistent-hash ring over the static membership. Each member
// projects vnodes points onto the 64-bit circle; a key is owned by the
// member of the first point clockwise of the key's hash. Virtual nodes keep
// the shards balanced (with 64 points per member the expected imbalance is
// a few percent) and consistent hashing keeps reassignment minimal if the
// membership ever changes between deployments.
type ring struct {
	points []ringPoint // sorted by hash
	nodes  []string    // sorted member ids
}

type ringPoint struct {
	hash uint64
	node string
}

func hash64(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(sum[:8])
}

// newRing builds a ring over the member ids with vnodes points per member.
func newRing(nodes []string, vnodes int) (*ring, error) {
	if len(nodes) == 0 {
		return nil, fmt.Errorf("cluster: empty membership")
	}
	if vnodes <= 0 {
		vnodes = 64
	}
	seen := map[string]bool{}
	r := &ring{}
	for _, n := range nodes {
		if n == "" {
			return nil, fmt.Errorf("cluster: empty node id")
		}
		if seen[n] {
			return nil, fmt.Errorf("cluster: duplicate node id %q", n)
		}
		seen[n] = true
		r.nodes = append(r.nodes, n)
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{hash: hash64(fmt.Sprintf("%s#%d", n, v)), node: n})
		}
	}
	sort.Strings(r.nodes)
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].node < r.points[j].node
	})
	return r, nil
}

// successors returns the first n distinct members clockwise of the key's
// hash, owner first. n is clamped to the membership size.
func (r *ring) successors(key string, n int) []string {
	if n > len(r.nodes) {
		n = len(r.nodes)
	}
	if n <= 0 {
		return nil
	}
	h := hash64(key)
	idx := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]string, 0, n)
	seen := map[string]bool{}
	for i := 0; len(out) < n && i < len(r.points); i++ {
		p := r.points[(idx+i)%len(r.points)]
		if !seen[p.node] {
			seen[p.node] = true
			out = append(out, p.node)
		}
	}
	return out
}

// owner returns the member that owns the key.
func (r *ring) owner(key string) string { return r.successors(key, 1)[0] }
