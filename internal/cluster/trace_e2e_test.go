package cluster

import (
	"context"
	"net/http"
	"sync"
	"testing"
	"time"

	"eva/eva"
	"eva/internal/obs"
)

// TestClusterTracePropagation: a job submitted through a node that does NOT
// own its context answers with the ingress trace id, and the owner's span
// tree — fetched through the cluster's GET /jobs/{id}/trace proxy — carries
// that same trace id, the forwarded-from marker, and the queue/execute
// phases. Several jobs run concurrently so -race exercises the tracer under
// contention.
func TestClusterTracePropagation(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	nodes := startTestCluster(t, 3, 1)
	programID, contextID := compileAndContext(t, ctx, nodes[0])

	candidates := nodes[0].cluster.ContextCandidates(contextID)
	ownerID := candidates[0]
	owner := nodeByID(nodes, ownerID)
	var router *testNode
	for _, n := range nodes {
		if n.id != ownerID {
			router = n
			break
		}
	}
	if owner == nil || router == nil {
		t.Fatalf("no router distinct from owner %s", ownerID)
	}

	req := eva.JobRequest{ProgramID: programID, ContextID: contextID, Batches: []eva.ExecuteBatch{clusterBatch}}

	const jobs = 4
	var wg sync.WaitGroup
	for i := 0; i < jobs; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			st, err := router.client.SubmitJob(ctx, req)
			if err != nil {
				t.Errorf("submit via %s: %v", router.id, err)
				return
			}
			if st.TraceID == "" {
				t.Errorf("job %s: no trace id in the submit response", st.JobID)
				return
			}
			final, err := router.client.WaitJob(ctx, st.JobID)
			if err != nil || final.Status != "done" {
				t.Errorf("job %s: wait: %v (status %+v)", st.JobID, err, final)
				return
			}
			if _, err := router.client.FetchJobResult(ctx, st.JobID); err != nil {
				t.Errorf("job %s: fetch: %v", st.JobID, err)
				return
			}

			// The trace proxy must resolve the routed id to the worker and
			// hand back the ingress trace.
			tr, err := router.client.FetchJobTrace(ctx, st.JobID)
			if err != nil {
				t.Errorf("job %s: trace: %v", st.JobID, err)
				return
			}
			if tr.TraceID != st.TraceID {
				t.Errorf("job %s: owner trace id %q; want ingress id %q", st.JobID, tr.TraceID, st.TraceID)
			}
			if tr.JobID != st.JobID {
				t.Errorf("trace names job %q; want the cluster id %q", tr.JobID, st.JobID)
			}
			if tr.Node != ownerID {
				t.Errorf("trace recorded on node %q; want owner %q", tr.Node, ownerID)
			}

			names := map[string]int{}
			forwardedFrom := ""
			var walk func(spans []obs.SpanJSON)
			walk = func(spans []obs.SpanJSON) {
				for _, sp := range spans {
					names[sp.Name]++
					if sp.Name == "route:jobs_submit" && sp.Attrs["forwarded_from"] != "" {
						forwardedFrom = sp.Attrs["forwarded_from"]
					}
					walk(sp.Children)
				}
			}
			walk(tr.Spans)
			for _, want := range []string{"route:jobs_submit", "queue_wait", "execute", "store_write"} {
				if names[want] == 0 {
					t.Errorf("job %s: span %q missing from the owner's tree (have %v)", st.JobID, want, names)
				}
			}
			if forwardedFrom != router.id {
				t.Errorf("job %s: forwarded_from = %q; want router %q", st.JobID, forwardedFrom, router.id)
			}
		}()
	}
	wg.Wait()

	// The router's own ring also finished an ingress trace per submission.
	recent := router.srv.Tracer().Recent(0, 32)
	if len(recent) == 0 {
		t.Error("router finished no ingress traces")
	}

	// A plain (non-routed) trace request still works through the cluster
	// handler's fallthrough, and unknown ids 404.
	resp, err := http.Get(router.url + "/jobs/" + router.id + "~doesnotexist/trace")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("trace of unknown routed job: status %d; want 404", resp.StatusCode)
	}
}
