// Package numth provides the number-theoretic building blocks used by the
// RNS-CKKS substrate: 64-bit modular arithmetic, Miller–Rabin primality
// testing, generation of NTT-friendly primes, and primitive roots of unity.
//
// All moduli handled by this package are at most 61 bits so that modular
// multiplication can be carried out with a single 128-bit product
// (math/bits.Mul64 / Div64) without overflow anywhere in the pipeline.
package numth

import (
	"errors"
	"fmt"
	"math/bits"
)

// MaxModulusBits is the largest bit size allowed for a coefficient modulus
// prime. SEAL uses 60-bit primes at most; we allow 61 to leave headroom for
// intermediate sums while still fitting comfortably in uint64 arithmetic.
const MaxModulusBits = 61

// AddMod returns (a + b) mod m. It requires a, b < m.
func AddMod(a, b, m uint64) uint64 {
	s := a + b
	if s >= m || s < a {
		s -= m
	}
	return s
}

// SubMod returns (a - b) mod m. It requires a, b < m.
func SubMod(a, b, m uint64) uint64 {
	if a >= b {
		return a - b
	}
	return a + m - b
}

// NegMod returns (-a) mod m. It requires a < m.
func NegMod(a, m uint64) uint64 {
	if a == 0 {
		return 0
	}
	return m - a
}

// MulMod returns (a * b) mod m using a full 128-bit intermediate product.
func MulMod(a, b, m uint64) uint64 {
	hi, lo := bits.Mul64(a, b)
	_, rem := bits.Div64(hi%m, lo, m)
	return rem
}

// PowMod returns a^e mod m by square-and-multiply.
func PowMod(a, e, m uint64) uint64 {
	if m == 1 {
		return 0
	}
	result := uint64(1)
	base := a % m
	for e > 0 {
		if e&1 == 1 {
			result = MulMod(result, base, m)
		}
		base = MulMod(base, base, m)
		e >>= 1
	}
	return result
}

// InvMod returns the multiplicative inverse of a modulo m (m prime), or an
// error if a is zero modulo m.
func InvMod(a, m uint64) (uint64, error) {
	if a%m == 0 {
		return 0, fmt.Errorf("numth: %d has no inverse modulo %d", a, m)
	}
	// Fermat's little theorem: a^(m-2) mod m for prime m.
	return PowMod(a, m-2, m), nil
}

// MustInvMod is InvMod but panics on error. It is intended for internal use
// where the caller guarantees invertibility (e.g. inverting chain primes).
func MustInvMod(a, m uint64) uint64 {
	inv, err := InvMod(a, m)
	if err != nil {
		panic(err)
	}
	return inv
}

// IsPrime reports whether n is prime using a deterministic Miller–Rabin test
// with a witness set that is exact for all 64-bit integers.
func IsPrime(n uint64) bool {
	if n < 2 {
		return false
	}
	for _, p := range []uint64{2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37} {
		if n == p {
			return true
		}
		if n%p == 0 {
			return false
		}
	}
	// Write n-1 as d * 2^r.
	d := n - 1
	r := 0
	for d&1 == 0 {
		d >>= 1
		r++
	}
	// These witnesses are sufficient for all n < 2^64.
	for _, a := range []uint64{2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37} {
		x := PowMod(a, d, n)
		if x == 1 || x == n-1 {
			continue
		}
		composite := true
		for i := 0; i < r-1; i++ {
			x = MulMod(x, x, n)
			if x == n-1 {
				composite = false
				break
			}
		}
		if composite {
			return false
		}
	}
	return true
}

// GenerateNTTPrimes returns count distinct primes p with the requested bit
// size satisfying p ≡ 1 (mod 2N), which is the condition for the negacyclic
// NTT of length N to exist modulo p. Primes are returned in decreasing order
// starting just below 2^bitSize. The skip set excludes primes already in use
// (e.g. by another part of the modulus chain).
func GenerateNTTPrimes(bitSize, logN, count int, skip map[uint64]bool) ([]uint64, error) {
	if bitSize < 20 || bitSize > MaxModulusBits {
		return nil, fmt.Errorf("numth: prime bit size %d out of range [20,%d]", bitSize, MaxModulusBits)
	}
	if logN < 1 || logN > 17 {
		return nil, fmt.Errorf("numth: logN %d out of range [1,17]", logN)
	}
	if count <= 0 {
		return nil, errors.New("numth: prime count must be positive")
	}
	m := uint64(2) << uint(logN) // 2N
	upper := uint64(1) << uint(bitSize)
	// Start at the largest multiple of 2N below 2^bitSize, plus 1.
	candidate := (upper-1)/m*m + 1
	primes := make([]uint64, 0, count)
	lower := uint64(1) << uint(bitSize-1)
	for candidate > lower {
		if candidate < upper && IsPrime(candidate) && !skip[candidate] {
			primes = append(primes, candidate)
			if len(primes) == count {
				return primes, nil
			}
		}
		if candidate < m {
			break
		}
		candidate -= m
	}
	return nil, fmt.Errorf("numth: could not find %d NTT primes of %d bits for logN=%d", count, bitSize, logN)
}

// PrimitiveRoot returns a generator of the multiplicative group modulo the
// prime p. It factorizes p-1 by trial division (p-1 is highly smooth for the
// NTT primes we generate, so this is fast).
func PrimitiveRoot(p uint64) (uint64, error) {
	if !IsPrime(p) {
		return 0, fmt.Errorf("numth: %d is not prime", p)
	}
	phi := p - 1
	factors := distinctFactors(phi)
	for g := uint64(2); g < p; g++ {
		ok := true
		for _, f := range factors {
			if PowMod(g, phi/f, p) == 1 {
				ok = false
				break
			}
		}
		if ok {
			return g, nil
		}
	}
	return 0, fmt.Errorf("numth: no primitive root found modulo %d", p)
}

// MinimalPrimitiveNthRoot returns a primitive n-th root of unity modulo the
// prime p. n must divide p-1 and be a power of two.
func MinimalPrimitiveNthRoot(n, p uint64) (uint64, error) {
	if n == 0 || (p-1)%n != 0 {
		return 0, fmt.Errorf("numth: %d does not divide %d-1", n, p)
	}
	g, err := PrimitiveRoot(p)
	if err != nil {
		return 0, err
	}
	root := PowMod(g, (p-1)/n, p)
	// root is a primitive n-th root; verify.
	if PowMod(root, n/2, p) == 1 {
		return 0, fmt.Errorf("numth: derived root of order %d is not primitive modulo %d", n, p)
	}
	return root, nil
}

// distinctFactors returns the distinct prime factors of n by trial division.
func distinctFactors(n uint64) []uint64 {
	var factors []uint64
	for _, p := range []uint64{2, 3, 5} {
		if n%p == 0 {
			factors = append(factors, p)
			for n%p == 0 {
				n /= p
			}
		}
	}
	for f := uint64(7); f*f <= n; f += 2 {
		if n%f == 0 {
			factors = append(factors, f)
			for n%f == 0 {
				n /= f
			}
		}
	}
	if n > 1 {
		factors = append(factors, n)
	}
	return factors
}

// BitReverse returns the bit-reversal of x within width bits.
func BitReverse(x, width uint64) uint64 {
	return uint64(bits.Reverse64(x) >> (64 - width))
}

// CenteredRem maps a residue x modulo q to its centered representative in
// (-q/2, q/2], returned as a signed integer.
func CenteredRem(x, q uint64) int64 {
	if x > q/2 {
		return int64(x) - int64(q)
	}
	return int64(x)
}
