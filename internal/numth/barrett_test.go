package numth

import (
	"math/bits"
	"math/rand"
	"testing"
)

// testModuli returns a spread of NTT-prime-shaped odd moduli, from the
// smallest supported sizes up to the 61-bit ceiling, plus adversarial odd
// values (not prime, near powers of two) that the reductions must still
// handle: Barrett and Shoup only require oddness, not primality.
func testModuli(t testing.TB) []uint64 {
	t.Helper()
	var qs []uint64
	for _, bitsize := range []int{20, 30, 45, 55, 61} {
		ps, err := GenerateNTTPrimes(bitsize, 12, 2, nil)
		if err != nil {
			t.Fatal(err)
		}
		qs = append(qs, ps...)
	}
	qs = append(qs, 3, 5, (1<<61)-1, (1<<20)+1, (1<<45)+5)
	return qs
}

func TestBarrettMatchesReferenceMulMod(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, q := range testModuli(t) {
		br := NewBarrett(q)
		edge := []uint64{0, 1, 2, q - 1, q, q + 1, 2*q - 1, 2 * q, 4*q - 1, ^uint64(0)}
		for i := 0; i < 2000; i++ {
			var x, y uint64
			if i < len(edge)*len(edge) {
				x, y = edge[i%len(edge)], edge[i/len(edge)]
			} else {
				x, y = rng.Uint64(), rng.Uint64()
			}
			want := MulMod(x%q, y%q, q)
			if got := br.MulMod(x%q, y%q); got != want {
				t.Fatalf("q=%d: Barrett MulMod(%d,%d)=%d, reference %d", q, x%q, y%q, got, want)
			}
			// Barrett also accepts unreduced operands.
			hi, lo := bits.Mul64(x, y)
			_, wantFull := bits.Div64(hi%q, lo, q)
			if got := br.MulMod(x, y); got != wantFull {
				t.Fatalf("q=%d: Barrett MulMod(%d,%d)=%d, reference %d", q, x, y, got, wantFull)
			}
		}
	}
}

func TestBarrettReduceWord(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, q := range testModuli(t) {
		br := NewBarrett(q)
		for _, x := range []uint64{0, 1, q - 1, q, q + 1, 2 * q, 4*q - 1, ^uint64(0)} {
			if got := br.ReduceWord(x); got != x%q {
				t.Fatalf("q=%d: ReduceWord(%d)=%d, want %d", q, x, got, x%q)
			}
		}
		for i := 0; i < 2000; i++ {
			x := rng.Uint64()
			if got := br.ReduceWord(x); got != x%q {
				t.Fatalf("q=%d: ReduceWord(%d)=%d, want %d", q, x, got, x%q)
			}
		}
	}
}

func TestBarrettReduce128(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, q := range testModuli(t) {
		br := NewBarrett(q)
		for i := 0; i < 2000; i++ {
			hi, lo := rng.Uint64(), rng.Uint64()
			_, want := bits.Div64(hi%q, lo, q)
			// The reference drops hi mod q first, which is exact because
			// 2^64 mod q is absorbed: (hi·2^64+lo) ≡ ((hi mod q)·2^64+lo).
			if got := br.Reduce(hi, lo); got != want {
				t.Fatalf("q=%d: Reduce(%d,%d)=%d, want %d", q, hi, lo, got, want)
			}
		}
	}
}

func TestNewBarrettRejectsBadModuli(t *testing.T) {
	for _, q := range []uint64{0, 1, 2, 4, 1 << 40} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewBarrett(%d) did not panic", q)
				}
			}()
			NewBarrett(q)
		}()
	}
}

func TestMulModShoupMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, q := range testModuli(t) {
		for i := 0; i < 500; i++ {
			s := rng.Uint64() % q
			w := ShoupPrecomp(s, q)
			for _, x := range []uint64{0, 1, q - 1, q, 2*q - 1, 4*q - 1, rng.Uint64(), rng.Uint64()} {
				want := MulMod(x%q, s, q)
				if got := MulModShoup(x%q, s, w, q); got != want {
					t.Fatalf("q=%d s=%d: MulModShoup(%d)=%d, want %d", q, s, x%q, got, want)
				}
				// Arbitrary (lazy-range) x: strict result must match x mod q times s.
				wantLazyBase := MulMod(x%q, s, q)
				if got := MulModShoup(x, s, w, q); got != wantLazyBase {
					t.Fatalf("q=%d s=%d: MulModShoup lazy-x(%d)=%d, want %d", q, s, x, got, wantLazyBase)
				}
			}
		}
	}
}

func TestMulModShoupLazyRange(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, q := range testModuli(t) {
		for i := 0; i < 500; i++ {
			s := rng.Uint64() % q
			w := ShoupPrecomp(s, q)
			x := rng.Uint64()
			r := MulModShoupLazy(x, s, w, q)
			if r >= 2*q {
				t.Fatalf("q=%d s=%d x=%d: lazy result %d outside [0,2q)", q, s, x, r)
			}
			if r%q != MulMod(x%q, s, q) {
				t.Fatalf("q=%d s=%d x=%d: lazy result %d incongruent to reference", q, s, x, r)
			}
		}
	}
}

func TestShoupPrecompRejectsUnreduced(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("ShoupPrecomp with s >= q did not panic")
		}
	}()
	ShoupPrecomp(17, 17)
}

// benchSink defeats dead-code elimination of the benchmark loops.
var benchSink uint64

func benchPrimeAndOperands(b *testing.B) (uint64, []uint64) {
	b.Helper()
	ps, err := GenerateNTTPrimes(55, 12, 1, nil)
	if err != nil {
		b.Fatal(err)
	}
	q := ps[0]
	rng := rand.New(rand.NewSource(6))
	xs := make([]uint64, 1024)
	for i := range xs {
		xs[i] = rng.Uint64() % q
	}
	return q, xs
}

func BenchmarkMulModReference(b *testing.B) {
	q, xs := benchPrimeAndOperands(b)
	y := q - 54321
	b.ResetTimer()
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += MulMod(xs[i&1023], y, q)
	}
	benchSink = sink
}

func BenchmarkMulModBarrett(b *testing.B) {
	q, xs := benchPrimeAndOperands(b)
	br := NewBarrett(q)
	y := q - 54321
	b.ResetTimer()
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += br.MulMod(xs[i&1023], y)
	}
	benchSink = sink
}

func BenchmarkMulModShoup(b *testing.B) {
	q, xs := benchPrimeAndOperands(b)
	s := q - 54321
	w := ShoupPrecomp(s, q)
	b.ResetTimer()
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += MulModShoup(xs[i&1023], s, w, q)
	}
	benchSink = sink
}
