package numth

import (
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAddSubNegMod(t *testing.T) {
	const m = uint64(1<<61 - 1)
	cases := []struct{ a, b uint64 }{
		{0, 0}, {1, 1}, {m - 1, m - 1}, {m - 1, 1}, {m / 2, m / 2}, {12345, 67890},
	}
	for _, c := range cases {
		want := new(big.Int).Mod(new(big.Int).Add(big.NewInt(int64(c.a)), big.NewInt(int64(c.b))), big.NewInt(int64(m))).Uint64()
		if got := AddMod(c.a, c.b, m); got != want {
			t.Errorf("AddMod(%d,%d) = %d, want %d", c.a, c.b, got, want)
		}
		if got := SubMod(AddMod(c.a, c.b, m), c.b, m); got != c.a {
			t.Errorf("SubMod(AddMod(a,b),b) = %d, want %d", got, c.a)
		}
		if got := AddMod(c.a, NegMod(c.a, m), m); got != 0 {
			t.Errorf("a + (-a) = %d, want 0", got)
		}
	}
}

func TestMulModMatchesBigInt(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	mods := []uint64{(1 << 61) - 1, 1152921504606584833, 65537, 2147483647}
	for _, m := range mods {
		bm := new(big.Int).SetUint64(m)
		for i := 0; i < 200; i++ {
			a := rng.Uint64() % m
			b := rng.Uint64() % m
			want := new(big.Int).Mul(new(big.Int).SetUint64(a), new(big.Int).SetUint64(b))
			want.Mod(want, bm)
			if got := MulMod(a, b, m); got != want.Uint64() {
				t.Fatalf("MulMod(%d,%d,%d) = %d, want %d", a, b, m, got, want.Uint64())
			}
		}
	}
}

func TestPowModProperties(t *testing.T) {
	const m = uint64(1152921504606584833) // 60-bit NTT prime-like value (prime)
	if !IsPrime(m) {
		t.Fatalf("expected %d to be prime", m)
	}
	f := func(a uint64, e uint8) bool {
		a %= m
		// a^(e1+e2) == a^e1 * a^e2
		e1 := uint64(e) / 2
		e2 := uint64(e) - e1
		lhs := PowMod(a, uint64(e), m)
		rhs := MulMod(PowMod(a, e1, m), PowMod(a, e2, m), m)
		return lhs == rhs
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestInvMod(t *testing.T) {
	const m = uint64(1152921504606584833)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 100; i++ {
		a := rng.Uint64()%(m-1) + 1
		inv, err := InvMod(a, m)
		if err != nil {
			t.Fatalf("InvMod(%d): %v", a, err)
		}
		if got := MulMod(a, inv, m); got != 1 {
			t.Fatalf("a * a^-1 = %d, want 1", got)
		}
	}
	if _, err := InvMod(0, m); err == nil {
		t.Error("expected error inverting 0")
	}
}

func TestIsPrimeKnownValues(t *testing.T) {
	primes := []uint64{2, 3, 5, 7, 61, 65537, 2147483647, (1 << 61) - 1}
	composites := []uint64{0, 1, 4, 6, 561, 1105, 65536, 2147483649, (1 << 61) + 1}
	for _, p := range primes {
		if !IsPrime(p) {
			t.Errorf("IsPrime(%d) = false, want true", p)
		}
	}
	for _, c := range composites {
		if IsPrime(c) {
			t.Errorf("IsPrime(%d) = true, want false", c)
		}
	}
}

func TestGenerateNTTPrimes(t *testing.T) {
	for _, logN := range []int{11, 12, 13, 14} {
		for _, bitSize := range []int{30, 40, 50, 60} {
			primes, err := GenerateNTTPrimes(bitSize, logN, 4, nil)
			if err != nil {
				t.Fatalf("GenerateNTTPrimes(%d, %d): %v", bitSize, logN, err)
			}
			if len(primes) != 4 {
				t.Fatalf("got %d primes, want 4", len(primes))
			}
			m := uint64(2) << uint(logN)
			seen := map[uint64]bool{}
			for _, p := range primes {
				if !IsPrime(p) {
					t.Errorf("%d is not prime", p)
				}
				if p%m != 1 {
					t.Errorf("%d is not 1 mod 2N", p)
				}
				if bits := bitLen(p); bits != bitSize {
					t.Errorf("prime %d has %d bits, want %d", p, bits, bitSize)
				}
				if seen[p] {
					t.Errorf("duplicate prime %d", p)
				}
				seen[p] = true
			}
		}
	}
}

func TestGenerateNTTPrimesSkip(t *testing.T) {
	first, err := GenerateNTTPrimes(40, 12, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	skip := map[uint64]bool{first[0]: true, first[1]: true}
	second, err := GenerateNTTPrimes(40, 12, 2, skip)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range second {
		if skip[p] {
			t.Errorf("prime %d should have been skipped", p)
		}
	}
}

func TestGenerateNTTPrimesErrors(t *testing.T) {
	if _, err := GenerateNTTPrimes(10, 12, 1, nil); err == nil {
		t.Error("expected error for tiny bit size")
	}
	if _, err := GenerateNTTPrimes(62, 12, 1, nil); err == nil {
		t.Error("expected error for oversized bit size")
	}
	if _, err := GenerateNTTPrimes(30, 0, 1, nil); err == nil {
		t.Error("expected error for logN=0")
	}
	if _, err := GenerateNTTPrimes(30, 12, 0, nil); err == nil {
		t.Error("expected error for count=0")
	}
}

func TestPrimitiveNthRoot(t *testing.T) {
	primes, err := GenerateNTTPrimes(45, 13, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	n := uint64(1) << 14 // 2N for logN=13
	for _, p := range primes {
		root, err := MinimalPrimitiveNthRoot(n, p)
		if err != nil {
			t.Fatalf("MinimalPrimitiveNthRoot(%d, %d): %v", n, p, err)
		}
		if PowMod(root, n, p) != 1 {
			t.Errorf("root^n != 1 mod %d", p)
		}
		if PowMod(root, n/2, p) == 1 {
			t.Errorf("root is not a primitive %d-th root mod %d", n, p)
		}
	}
}

func TestPrimitiveRootErrors(t *testing.T) {
	if _, err := PrimitiveRoot(100); err == nil {
		t.Error("expected error for composite modulus")
	}
	if _, err := MinimalPrimitiveNthRoot(7, 65537); err == nil {
		t.Error("expected error when n does not divide p-1")
	}
}

func TestCenteredRem(t *testing.T) {
	const q = uint64(17)
	cases := map[uint64]int64{0: 0, 1: 1, 8: 8, 9: -8, 16: -1}
	for x, want := range cases {
		if got := CenteredRem(x, q); got != want {
			t.Errorf("CenteredRem(%d, %d) = %d, want %d", x, q, got, want)
		}
	}
}

func TestBitReverse(t *testing.T) {
	if got := BitReverse(1, 3); got != 4 {
		t.Errorf("BitReverse(1,3) = %d, want 4", got)
	}
	if got := BitReverse(3, 4); got != 12 {
		t.Errorf("BitReverse(3,4) = %d, want 12", got)
	}
	// Involution property.
	f := func(x uint16) bool {
		v := uint64(x)
		return BitReverse(BitReverse(v, 16), 16) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func bitLen(x uint64) int {
	n := 0
	for x > 0 {
		n++
		x >>= 1
	}
	return n
}
