package numth

import "math/bits"

// This file holds the fast modular-reduction primitives used on the backend
// hot paths: Barrett reduction (for products of two variable operands) and
// Shoup multiplication (for products against a fixed operand with a
// precomputed quotient, e.g. NTT twiddle factors). The Div64-based MulMod in
// numth.go is retained unchanged as the reference oracle; the property tests
// in barrett_test.go pin every function here against it.

// Barrett holds the precomputed constant floor(2^128 / Q) used to reduce
// 128-bit values modulo Q without a hardware division. Q must be odd (all
// NTT-friendly primes are), so that floor((2^128-1)/Q) == floor(2^128/Q).
type Barrett struct {
	Q  uint64
	hi uint64 // floor(2^128/Q) >> 64
	lo uint64 // floor(2^128/Q) & (2^64-1)
}

// NewBarrett precomputes the Barrett constant for the odd modulus q.
func NewBarrett(q uint64) Barrett {
	if q < 3 || q&1 == 0 {
		panic("numth: Barrett modulus must be odd and > 2")
	}
	// floor((2^128-1)/q) by schoolbook long division; equals floor(2^128/q)
	// because odd q never divides 2^128.
	allOnes := ^uint64(0)
	hi := allOnes / q
	rem := allOnes % q
	lo, _ := bits.Div64(rem, allOnes, q)
	return Barrett{Q: q, hi: hi, lo: lo}
}

// Reduce returns (xhi·2^64 + xlo) mod Q for an arbitrary 128-bit value.
// The quotient estimate floor(x·u/2^128) with u = floor(2^128/Q) undershoots
// the true quotient by at most 2, so two conditional subtractions suffice.
func (b Barrett) Reduce(xhi, xlo uint64) uint64 {
	ahi, _ := bits.Mul64(xlo, b.lo)
	bhi, blo := bits.Mul64(xlo, b.hi)
	chi, clo := bits.Mul64(xhi, b.lo)
	mid, c1 := bits.Add64(blo, clo, 0)
	_, c2 := bits.Add64(mid, ahi, 0)
	qhat := xhi*b.hi + bhi + chi + c1 + c2
	r := xlo - qhat*b.Q
	if r >= b.Q {
		r -= b.Q
	}
	if r >= b.Q {
		r -= b.Q
	}
	return r
}

// ReduceWord returns x mod Q for a single 64-bit value without dividing.
func (b Barrett) ReduceWord(x uint64) uint64 {
	ahi, _ := bits.Mul64(x, b.lo)
	bhi, blo := bits.Mul64(x, b.hi)
	_, carry := bits.Add64(blo, ahi, 0)
	qhat := bhi + carry
	r := x - qhat*b.Q
	if r >= b.Q {
		r -= b.Q
	}
	if r >= b.Q {
		r -= b.Q
	}
	return r
}

// MulMod returns (x·y) mod Q via Barrett reduction of the 128-bit product.
// It accepts arbitrary uint64 operands, like the reference MulMod.
func (b Barrett) MulMod(x, y uint64) uint64 {
	hi, lo := bits.Mul64(x, y)
	return b.Reduce(hi, lo)
}

// ShoupPrecomp returns floor(s·2^64 / q), the precomputed Shoup quotient for
// repeatedly multiplying by the fixed operand s. Requires s < q.
func ShoupPrecomp(s, q uint64) uint64 {
	if s >= q {
		panic("numth: Shoup operand must be reduced modulo q")
	}
	hi, _ := bits.Div64(s, 0, q)
	return hi
}

// MulModShoupLazy returns x·s mod q in the lazy range [0, 2q), where
// sShoup = ShoupPrecomp(s, q). x may be any uint64 (in particular a value in
// a lazy range [0, 4q)), which is what makes the lazy-reduction NTT work.
func MulModShoupLazy(x, s, sShoup, q uint64) uint64 {
	hi, _ := bits.Mul64(x, sShoup)
	return x*s - hi*q
}

// MulModShoup returns x·s mod q in [0, q), where sShoup = ShoupPrecomp(s, q).
func MulModShoup(x, s, sShoup, q uint64) uint64 {
	r := MulModShoupLazy(x, s, sShoup, q)
	if r >= q {
		r -= q
	}
	return r
}
