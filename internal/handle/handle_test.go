package handle

import (
	"errors"
	"strings"
	"testing"
	"time"

	"eva/internal/store"
)

func newTestRegistry(t *testing.T, cfg Config) *Registry {
	t.Helper()
	if cfg.Store == nil {
		cfg.Store = store.NewMemory()
	}
	return NewRegistry(cfg)
}

func TestIDDeterministicAndContextBound(t *testing.T) {
	data := []byte("ciphertext-bytes")
	if ID("ctx1", data) != ID("ctx1", data) {
		t.Fatal("id is not deterministic")
	}
	if ID("ctx1", data) == ID("ctx2", data) {
		t.Fatal("id ignores the context id")
	}
	if ID("ctx1", data) == ID("ctx1", []byte("other")) {
		t.Fatal("id ignores the ciphertext bytes")
	}
	// The id must be a well-formed store name (hex SHA-256).
	if id := ID("ctx1", data); len(id) != 64 {
		t.Fatalf("id %q is not a sha-256 hex digest", id)
	}
}

func TestPutGetRoundTrip(t *testing.T) {
	r := newTestRegistry(t, Config{})
	meta, err := r.Put(Meta{ContextID: "c1", ParamsID: "p1", Level: 2, LogScale: 30, Width: 8}, []byte("ct"))
	if err != nil {
		t.Fatal(err)
	}
	if meta.ID == "" || meta.Bytes != 2 || meta.CreatedAt.IsZero() {
		t.Fatalf("put did not fill derived fields: %+v", meta)
	}
	got, data, err := r.Get(meta.ID)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "ct" || got.Level != 2 || got.Width != 8 || got.ParamsID != "p1" {
		t.Fatalf("round trip mismatch: %+v %q", got, data)
	}
	if _, _, err := r.Get("deadbeef"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("unknown id: %v, want ErrNotFound", err)
	}
}

func TestPutDeduplicates(t *testing.T) {
	r := newTestRegistry(t, Config{})
	first, err := r.Put(Meta{ContextID: "c1", Level: 3}, []byte("same"))
	if err != nil {
		t.Fatal(err)
	}
	second, err := r.Put(Meta{ContextID: "c1", Level: 3}, []byte("same"))
	if err != nil {
		t.Fatal(err)
	}
	if first.ID != second.ID {
		t.Fatalf("ids differ: %s vs %s", first.ID, second.ID)
	}
	st := r.Stats()
	if st.Entries != 1 || st.Puts != 1 || st.Dedups != 1 {
		t.Fatalf("stats = %+v, want 1 entry, 1 put, 1 dedup", st)
	}
}

func TestQuota(t *testing.T) {
	r := newTestRegistry(t, Config{QuotaBytes: 1024})
	if _, err := r.Put(Meta{ContextID: "c"}, make([]byte, 64)); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Put(Meta{ContextID: "c"}, make([]byte, 4096)); !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("oversized put: %v, want ErrQuotaExceeded", err)
	}
	if st := r.Stats(); st.QuotaRejected != 1 {
		t.Fatalf("quota_rejected = %d, want 1", st.QuotaRejected)
	}
}

func TestDeleteAndList(t *testing.T) {
	r := newTestRegistry(t, Config{})
	m1, _ := r.Put(Meta{ContextID: "c"}, []byte("a"))
	m2, _ := r.Put(Meta{ContextID: "c"}, []byte("b"))
	metas, err := r.List()
	if err != nil || len(metas) != 2 {
		t.Fatalf("list = %d metas, err %v; want 2", len(metas), err)
	}
	if err := r.Delete(m1.ID); err != nil {
		t.Fatal(err)
	}
	if err := r.Delete(m1.ID); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double delete: %v, want ErrNotFound", err)
	}
	if _, err := r.Stat(m2.ID); err != nil {
		t.Fatalf("surviving handle lost: %v", err)
	}
}

func TestSweepHonorsRetention(t *testing.T) {
	r := newTestRegistry(t, Config{Retention: time.Minute})
	old, _ := r.Put(Meta{ContextID: "c", CreatedAt: time.Now().Add(-time.Hour)}, []byte("old"))
	fresh, _ := r.Put(Meta{ContextID: "c"}, []byte("fresh"))
	if n := r.Sweep(); n != 1 {
		t.Fatalf("swept %d, want 1", n)
	}
	if _, err := r.Stat(old.ID); !errors.Is(err, ErrNotFound) {
		t.Fatalf("expired handle survived: %v", err)
	}
	if _, err := r.Stat(fresh.ID); err != nil {
		t.Fatalf("fresh handle swept: %v", err)
	}

	keep := newTestRegistry(t, Config{Retention: -1})
	keep.Put(Meta{ContextID: "c", CreatedAt: time.Now().Add(-1000 * time.Hour)}, []byte("ancient"))
	if n := keep.Sweep(); n != 0 {
		t.Fatalf("negative retention swept %d handles", n)
	}
}

func TestInstallVerifiesContentAddress(t *testing.T) {
	r := newTestRegistry(t, Config{})
	good := Record{Meta: Meta{ContextID: "c"}, Data: []byte("x")}
	good.Meta.ID = ID("c", good.Data)
	if _, err := r.Install(&good); err != nil {
		t.Fatal(err)
	}
	bad := Record{Meta: Meta{ID: "0000", ContextID: "c"}, Data: []byte("tampered")}
	if _, err := r.Install(&bad); err == nil || !strings.Contains(err.Error(), "content verification") {
		t.Fatalf("tampered record accepted: %v", err)
	}
}

func TestCheck(t *testing.T) {
	m := Meta{ID: "h", ParamsID: "p", Level: 2, LogScale: 30.1, Width: 8}
	want := Want{MinLevel: 1, LogScale: 30, Width: 8, ParamsID: "p"}
	if err := m.Check(want); err != nil {
		t.Fatalf("compatible handle rejected: %v", err)
	}
	cases := []struct {
		name  string
		w     Want
		field string
	}{
		{"params", Want{MinLevel: 1, LogScale: 30, Width: 8, ParamsID: "other"}, "params"},
		{"width", Want{MinLevel: 1, LogScale: 30, Width: 16, ParamsID: "p"}, "width"},
		{"level", Want{MinLevel: 3, LogScale: 30, Width: 8, ParamsID: "p"}, "level"},
		{"scale", Want{MinLevel: 1, LogScale: 40, Width: 8, ParamsID: "p"}, "scale"},
	}
	for _, tc := range cases {
		err := m.Check(tc.w)
		var mm *Mismatch
		if !errors.As(err, &mm) || mm.Field != tc.field {
			t.Errorf("%s: err = %v, want mismatch on %q", tc.name, err, tc.field)
		}
	}
	// Params and width checks are skipped when either side is unknown.
	if err := (Meta{Level: 5}).Check(Want{Width: 8}); err == nil {
		t.Error("zero-width handle matched a sized consumer")
	}
	if err := (Meta{Level: 5, Width: 8}).Check(Want{Width: 8}); err != nil {
		t.Errorf("fingerprint-less sides should not mismatch on params: %v", err)
	}
}
