// Package handle implements content-addressed ciphertext handles: durable,
// immutable references to encrypted values stored server-side, so the output
// of one encrypted program can feed the input of the next without a client
// round-trip (the stateful dataflow layer under POST /pipelines).
//
// A handle's id is the SHA-256 of the serialized ciphertext bound to the
// context id it was stored under, so identical ciphertexts deduplicate and a
// handle can never silently refer to different bytes on different nodes.
// Alongside the ciphertext the registry records the metadata the pipeline
// checker needs to reject incompatible chaining at submit time: the context,
// a fingerprint of the encryption parameters, the remaining level, the log2
// scale, and the slot width.
package handle

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"eva/internal/store"
)

// Kind is the artifact-store kind ciphertext handles are stored under.
const Kind = "ct"

// ScaleTolerance is the maximum |log2| scale drift accepted when chaining a
// handle into an input: rescaling divides by the actual chain prime rather
// than the nominal power of two, so a produced ciphertext's scale wanders a
// fraction of a bit away from the consumer's compiled input scale.
const ScaleTolerance = 0.5

// Meta is the metadata stored with (and returned for) every handle.
type Meta struct {
	ID        string `json:"id"`
	ContextID string `json:"context_id"`
	// ParamsID fingerprints the encryption parameters the ciphertext lives
	// under (ring degree + modulus chain). Two contexts chain only when
	// their fingerprints match: a ciphertext is raw residue data and means
	// nothing under a different modulus chain.
	ParamsID string `json:"params_id,omitempty"`
	// Level is the ciphertext's remaining position in the modulus chain; a
	// consumer needs at least its input's rescale depth left.
	Level int `json:"level"`
	// LogScale is the log2 of the ciphertext's actual scale.
	LogScale float64 `json:"log_scale"`
	// Width is the slot width (the producing program's vector size).
	Width int `json:"width"`
	// Bytes is the serialized ciphertext size.
	Bytes     int       `json:"bytes"`
	CreatedAt time.Time `json:"created_at"`
}

// Record is the stored envelope: the metadata plus the ciphertext wire bytes
// (base64 on the wire via encoding/json).
type Record struct {
	Meta Meta   `json:"meta"`
	Data []byte `json:"data"`
}

// ID derives a handle's content address: SHA-256 over the context id and the
// serialized ciphertext.
func ID(contextID string, ct []byte) string {
	h := sha256.New()
	h.Write([]byte(contextID))
	h.Write([]byte{0})
	h.Write(ct)
	return hex.EncodeToString(h.Sum(nil))
}

// Want is what a consumer requires of a chained ciphertext, derived from the
// consuming program's compile result.
type Want struct {
	// MinLevel is the rescale depth below the input: the ciphertext must
	// have at least this many levels left.
	MinLevel int
	// LogScale is the input's compiled encoding scale (log2).
	LogScale float64
	// Width is the consuming program's vector size.
	Width int
	// ParamsID is the consumer context's parameter fingerprint.
	ParamsID string
}

// Mismatch is a structured chaining rejection: which property of the handle
// is incompatible with the consumer, with both sides rendered for the 422
// body. It implements error.
type Mismatch struct {
	HandleID string `json:"handle_id,omitempty"`
	Field    string `json:"field"`
	Want     string `json:"want"`
	Got      string `json:"got"`
}

func (m *Mismatch) Error() string {
	return fmt.Sprintf("handle %s: incompatible %s: want %s, got %s", m.HandleID, m.Field, m.Want, m.Got)
}

// Check validates the handle's metadata against a consumer's requirements,
// returning a *Mismatch describing the first violated property.
func (m Meta) Check(w Want) error {
	if w.ParamsID != "" && m.ParamsID != "" && m.ParamsID != w.ParamsID {
		return &Mismatch{HandleID: m.ID, Field: "params",
			Want: w.ParamsID, Got: m.ParamsID}
	}
	if w.Width > 0 && m.Width != w.Width {
		return &Mismatch{HandleID: m.ID, Field: "width",
			Want: fmt.Sprintf("%d", w.Width), Got: fmt.Sprintf("%d", m.Width)}
	}
	if m.Level < w.MinLevel {
		return &Mismatch{HandleID: m.ID, Field: "level",
			Want: fmt.Sprintf(">=%d", w.MinLevel), Got: fmt.Sprintf("%d", m.Level)}
	}
	if math.Abs(m.LogScale-w.LogScale) > ScaleTolerance {
		return &Mismatch{HandleID: m.ID, Field: "scale",
			Want: fmt.Sprintf("2^%.2f (±%.1f)", w.LogScale, ScaleTolerance),
			Got:  fmt.Sprintf("2^%.2f", m.LogScale)}
	}
	return nil
}

// ErrNotFound reports an unknown handle id.
var ErrNotFound = errors.New("handle: not found")

// ErrQuotaExceeded reports that storing a handle would exceed the registry's
// byte quota.
var ErrQuotaExceeded = errors.New("handle: quota exceeded")

// Config configures a Registry.
type Config struct {
	// Store is the backing artifact store (required).
	Store store.Store
	// QuotaBytes bounds the resident handle bytes (0 = 4 GiB; negative =
	// unbounded). Puts beyond the quota fail with ErrQuotaExceeded.
	QuotaBytes int64
	// Retention bounds a handle's lifetime for Sweep (0 = 24h; negative =
	// keep forever).
	Retention time.Duration
}

// Stats is a snapshot of a registry's contents and traffic.
type Stats struct {
	Entries    int   `json:"entries"`
	Bytes      int64 `json:"bytes"`
	QuotaBytes int64 `json:"quota_bytes"`
	// Puts counts stored handles, Dedups the puts that hit an existing
	// content address.
	Puts   uint64 `json:"puts"`
	Dedups uint64 `json:"dedups"`
	// Resolves counts handle reads (input resolution and fetches), Misses
	// the reads of unknown ids.
	Resolves uint64 `json:"resolves"`
	Misses   uint64 `json:"misses"`
	Deletes  uint64 `json:"deletes"`
	// Swept counts handles reclaimed by retention sweeps, QuotaRejected the
	// puts refused by the byte quota.
	Swept         uint64 `json:"swept"`
	QuotaRejected uint64 `json:"quota_rejected"`
}

// Registry stores ciphertext handles in an artifact store under Kind,
// enforcing a byte quota on writes and a retention window on sweeps.
type Registry struct {
	cfg Config

	mu       sync.Mutex
	puts     uint64
	dedups   uint64
	resolves uint64
	misses   uint64
	deletes  uint64
	swept    uint64
	rejected uint64
}

// NewRegistry builds a handle registry over a store.
func NewRegistry(cfg Config) *Registry {
	if cfg.QuotaBytes == 0 {
		cfg.QuotaBytes = 4 << 30
	}
	if cfg.Retention == 0 {
		cfg.Retention = 24 * time.Hour
	}
	return &Registry{cfg: cfg}
}

// Retention returns the configured sweep window (negative = keep forever).
func (r *Registry) Retention() time.Duration { return r.cfg.Retention }

func (r *Registry) usedBytes() int64 {
	st := r.cfg.Store.Stats()
	if ks, ok := st.PerKind[Kind]; ok {
		return ks.Bytes
	}
	return 0
}

// Put stores a ciphertext under its content address, filling the meta's ID,
// Bytes, and CreatedAt. Storing bytes that already exist is a cheap dedup
// (content addressing guarantees the stored record is identical).
func (r *Registry) Put(meta Meta, data []byte) (Meta, error) {
	meta.ID = ID(meta.ContextID, data)
	meta.Bytes = len(data)
	if meta.CreatedAt.IsZero() {
		meta.CreatedAt = time.Now().UTC()
	}
	if existing, err := r.Stat(meta.ID); err == nil {
		r.count(func() { r.dedups++ })
		return existing, nil
	}
	rec, err := json.Marshal(Record{Meta: meta, Data: data})
	if err != nil {
		return Meta{}, fmt.Errorf("handle: encoding record: %w", err)
	}
	if r.cfg.QuotaBytes > 0 && r.usedBytes()+int64(len(rec)) > r.cfg.QuotaBytes {
		r.count(func() { r.rejected++ })
		return Meta{}, fmt.Errorf("%w: %d handle bytes resident, quota %d",
			ErrQuotaExceeded, r.usedBytes(), r.cfg.QuotaBytes)
	}
	if err := r.cfg.Store.Put(Kind, meta.ID, rec); err != nil {
		return Meta{}, fmt.Errorf("handle: persisting %s: %w", meta.ID, err)
	}
	r.count(func() { r.puts++ })
	return meta, nil
}

// Get returns a handle's metadata and ciphertext bytes.
func (r *Registry) Get(id string) (Meta, []byte, error) {
	rec, err := r.load(id)
	if err != nil {
		return Meta{}, nil, err
	}
	r.count(func() { r.resolves++ })
	return rec.Meta, rec.Data, nil
}

// Stat returns a handle's metadata without counting a resolve.
func (r *Registry) Stat(id string) (Meta, error) {
	rec, err := r.load(id)
	if err != nil {
		return Meta{}, err
	}
	return rec.Meta, nil
}

func (r *Registry) load(id string) (*Record, error) {
	data, err := r.cfg.Store.Get(Kind, id)
	if err != nil {
		if errors.Is(err, store.ErrNotFound) {
			r.count(func() { r.misses++ })
			return nil, fmt.Errorf("%w: %s", ErrNotFound, id)
		}
		return nil, fmt.Errorf("handle: loading %s: %w", id, err)
	}
	var rec Record
	if err := json.Unmarshal(data, &rec); err != nil {
		return nil, fmt.Errorf("handle: decoding %s: %w", id, err)
	}
	return &rec, nil
}

// Install stores a record fetched from elsewhere (a peer node) verbatim,
// verifying that its bytes really match its content address.
func (r *Registry) Install(rec *Record) (Meta, error) {
	if got := ID(rec.Meta.ContextID, rec.Data); got != rec.Meta.ID {
		return Meta{}, fmt.Errorf("handle: record %s fails content verification (hashes to %s)", rec.Meta.ID, got)
	}
	return r.Put(rec.Meta, rec.Data)
}

// Delete removes a handle. Deleting an unknown id returns ErrNotFound.
func (r *Registry) Delete(id string) error {
	if _, err := r.Stat(id); err != nil {
		return err
	}
	if err := r.cfg.Store.Delete(Kind, id); err != nil {
		return fmt.Errorf("handle: deleting %s: %w", id, err)
	}
	r.count(func() { r.deletes++ })
	return nil
}

// List returns every handle's metadata, ordered by the store's listing.
func (r *Registry) List() ([]Meta, error) {
	ids, err := r.cfg.Store.List(Kind)
	if err != nil {
		return nil, fmt.Errorf("handle: listing: %w", err)
	}
	metas := make([]Meta, 0, len(ids))
	for _, id := range ids {
		rec, err := r.load(id)
		if err != nil {
			continue // deleted concurrently
		}
		metas = append(metas, rec.Meta)
	}
	return metas, nil
}

// Sweep deletes handles older than the retention window and returns how many
// it reclaimed. A negative retention keeps everything.
func (r *Registry) Sweep() int {
	if r.cfg.Retention < 0 {
		return 0
	}
	ids, err := r.cfg.Store.List(Kind)
	if err != nil {
		return 0
	}
	cutoff := time.Now().Add(-r.cfg.Retention)
	swept := 0
	for _, id := range ids {
		rec, err := r.load(id)
		if err != nil {
			continue
		}
		if rec.Meta.CreatedAt.Before(cutoff) {
			if r.cfg.Store.Delete(Kind, id) == nil {
				swept++
			}
		}
	}
	if swept > 0 {
		r.count(func() { r.swept += uint64(swept) })
	}
	return swept
}

// Stats snapshots the registry counters and the store's handle-kind usage.
func (r *Registry) Stats() Stats {
	st := r.cfg.Store.Stats()
	var entries int
	var bytes int64
	if ks, ok := st.PerKind[Kind]; ok {
		entries, bytes = ks.Entries, ks.Bytes
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return Stats{
		Entries:       entries,
		Bytes:         bytes,
		QuotaBytes:    r.cfg.QuotaBytes,
		Puts:          r.puts,
		Dedups:        r.dedups,
		Resolves:      r.resolves,
		Misses:        r.misses,
		Deletes:       r.deletes,
		Swept:         r.swept,
		QuotaRejected: r.rejected,
	}
}

func (r *Registry) count(f func()) {
	r.mu.Lock()
	f()
	r.mu.Unlock()
}
