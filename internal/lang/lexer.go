package lang

import (
	"fmt"
	"strings"
)

type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokString
	tokPunct // one of ; = @ ( ) [ ] , + - * :
)

func (k tokenKind) String() string {
	switch k {
	case tokEOF:
		return "end of source"
	case tokIdent:
		return "identifier"
	case tokNumber:
		return "number"
	case tokString:
		return "string"
	default:
		return "punctuation"
	}
}

type token struct {
	kind tokenKind
	lit  string // the literal text; for tokString, still quoted
	pos  Position
}

func (t token) describe() string {
	if t.kind == tokEOF {
		return "end of source"
	}
	return fmt.Sprintf("%q", t.lit)
}

// lexer scans EVA source into tokens. It never fails hard: invalid input
// produces diagnostics and scanning continues, so the parser can report
// several problems in one pass.
type lexer struct {
	src   string
	lines []string
	off   int
	line  int // 1-based
	col   int // 1-based byte column
	errs  ErrorList
}

func newLexer(src string) *lexer {
	return &lexer{src: src, lines: strings.Split(src, "\n"), line: 1, col: 1}
}

func (l *lexer) pos() Position { return Position{Line: l.line, Col: l.col} }

func (l *lexer) snippet(line int) string {
	if line < 1 || line > len(l.lines) {
		return ""
	}
	return strings.TrimSuffix(l.lines[line-1], "\r")
}

func (l *lexer) errorf(pos Position, format string, args ...any) {
	if len(l.errs) < maxErrors {
		l.errs = append(l.errs, &Error{Pos: pos, Msg: fmt.Sprintf(format, args...), Snippet: l.snippet(pos.Line)})
	}
}

func (l *lexer) advance() byte {
	c := l.src[l.off]
	l.off++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *lexer) peek() byte {
	if l.off >= len(l.src) {
		return 0
	}
	return l.src[l.off]
}

func (l *lexer) peekAt(k int) byte {
	if l.off+k >= len(l.src) {
		return 0
	}
	return l.src[l.off+k]
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentPart(c byte) bool { return isIdentStart(c) || isDigit(c) }

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

// tokens scans the whole source. The returned slice always ends with a
// tokEOF token.
func (l *lexer) tokens() []token {
	var out []token
	for l.off < len(l.src) {
		c := l.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '/' && l.peekAt(1) == '/', c == '#':
			for l.off < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		case isIdentStart(c):
			pos := l.pos()
			start := l.off
			for l.off < len(l.src) && isIdentPart(l.peek()) {
				l.advance()
			}
			out = append(out, token{kind: tokIdent, lit: l.src[start:l.off], pos: pos})
		case isDigit(c) || (c == '.' && isDigit(l.peekAt(1))):
			out = append(out, l.scanNumber())
		case c == '"':
			out = append(out, l.scanString())
		case strings.IndexByte(";=@()[],+-*:", c) >= 0:
			pos := l.pos()
			l.advance()
			out = append(out, token{kind: tokPunct, lit: string(c), pos: pos})
		default:
			l.errorf(l.pos(), "unexpected character %q", string(rune(c)))
			l.advance()
		}
	}
	out = append(out, token{kind: tokEOF, pos: l.pos()})
	return out
}

// scanNumber scans an unsigned float literal: digits, optional fraction,
// optional exponent. Signs are operators handled by the parser.
func (l *lexer) scanNumber() token {
	pos := l.pos()
	start := l.off
	for l.off < len(l.src) && isDigit(l.peek()) {
		l.advance()
	}
	if l.peek() == '.' && isDigit(l.peekAt(1)) {
		l.advance()
		for l.off < len(l.src) && isDigit(l.peek()) {
			l.advance()
		}
	}
	if c := l.peek(); c == 'e' || c == 'E' {
		next := l.peekAt(1)
		if isDigit(next) || ((next == '+' || next == '-') && isDigit(l.peekAt(2))) {
			l.advance() // e
			l.advance() // sign or first digit
			for l.off < len(l.src) && isDigit(l.peek()) {
				l.advance()
			}
		}
	}
	return token{kind: tokNumber, lit: l.src[start:l.off], pos: pos}
}

// scanString scans a double-quoted string literal (Go escape rules; decoded
// by the parser with strconv.Unquote).
func (l *lexer) scanString() token {
	pos := l.pos()
	start := l.off
	l.advance() // opening quote
	for l.off < len(l.src) {
		c := l.peek()
		if c == '\n' {
			break
		}
		l.advance()
		if c == '\\' && l.off < len(l.src) && l.peek() != '\n' {
			l.advance() // the escaped character, so \" does not close
			continue
		}
		if c == '"' {
			return token{kind: tokString, lit: l.src[start:l.off], pos: pos}
		}
	}
	l.errorf(pos, "string literal not terminated")
	return token{kind: tokString, lit: l.src[start:l.off], pos: pos}
}
