package lang_test

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"eva/internal/apps"
	"eva/internal/bench"
	"eva/internal/builder"
	"eva/internal/compile"
	"eva/internal/core"
	"eva/internal/lang"
	"eva/internal/nn"
)

// roundTrip asserts Lower(Parse(Print(p))) == p.
func roundTrip(t *testing.T, p *core.Program) {
	t.Helper()
	src, err := lang.Print(p)
	if err != nil {
		t.Fatalf("Print: %v", err)
	}
	back, err := lang.ParseProgram(src)
	if err != nil {
		t.Fatalf("re-parsing printed source: %v\nsource:\n%s", err, src)
	}
	if err := core.Equal(p, back); err != nil {
		t.Fatalf("round trip changed the program: %v\nsource:\n%s", err, src)
	}
}

func TestPrintCanonicalForm(t *testing.T) {
	b := builder.New("quickstart", 8)
	x := b.Input("x", 30)
	y := b.Input("y", 30)
	b.Output("result", x.Square().Add(y).MulScalar(0.5, 30), 30)
	p, err := b.Program()
	if err != nil {
		t.Fatal(err)
	}
	src, err := lang.Print(p)
	if err != nil {
		t.Fatal(err)
	}
	want := `program quickstart vec=8;
input x @30;
input y @30;
result = (x * x + y) * 0.5@30;
output result @30;
`
	if src != want {
		t.Errorf("canonical source mismatch:\ngot:\n%s\nwant:\n%s", src, want)
	}
	roundTrip(t, p)
}

// TestPrintPreservesSharing: a multi-use term must print as a named binding
// so the re-parsed DAG has the same shape.
func TestPrintPreservesSharing(t *testing.T) {
	b := builder.New("shared", 8)
	x := b.Input("x", 30)
	sq := x.Square()
	b.Output("out", sq.Add(sq).Mul(sq), 30)
	p := b.MustProgram()
	src, err := lang.Print(p)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(src, "= x * x;") {
		t.Errorf("shared term not bound to a name:\n%s", src)
	}
	roundTrip(t, p)
}

// TestPrintOutputNameCollision: an output named like an input but referring
// to a different term must not capture the input's binding.
func TestPrintNameEdgeCases(t *testing.T) {
	p := core.MustNewProgram("edge", 8)
	x, _ := p.NewInput("x", core.TypeCipher, 8, 30)
	sq, _ := p.NewBinary(core.OpMultiply, x, x)
	// Output "x" refers to sq, not to the input x.
	if err := p.AddOutput("x", sq, 30); err != nil {
		t.Fatal(err)
	}
	// A second output for the same term, and one aliasing the input directly.
	if err := p.AddOutput("alias", sq, 31); err != nil {
		t.Fatal(err)
	}
	if err := p.AddOutput("direct", x, 30); err != nil {
		t.Fatal(err)
	}
	roundTrip(t, p)
}

func TestPrintNegativeAndVectorConstants(t *testing.T) {
	b := builder.New("consts", 8)
	x := b.Input("x", 30)
	v := x.MulVector([]float64{-1, 0.5, 3e-9, 1e20, -0, 7, 8, 9}, 25)
	b.Output("out", v.AddScalar(-2.25, 30), 30)
	roundTrip(t, b.MustProgram())
}

func TestPrintCompilerOps(t *testing.T) {
	p := core.MustNewProgram("compiled", 8)
	x, _ := p.NewInput("x", core.TypeCipher, 8, 60)
	sq, _ := p.NewBinary(core.OpMultiply, x, x)
	rl, _ := p.NewUnary(core.OpRelinearize, sq)
	rs, _ := p.NewRescale(rl, 30)
	ms, _ := p.NewUnary(core.OpModSwitch, rs)
	ng, _ := p.NewUnary(core.OpNegate, ms)
	_ = p.AddOutput("out", ng, 30)
	src, err := lang.Print(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"relin(", "rescale(", "modswitch(", "neg("} {
		if !strings.Contains(src, want) {
			t.Errorf("printed source missing %s:\n%s", want, src)
		}
	}
	roundTrip(t, p)
}

func TestPrintRejectsUnprintable(t *testing.T) {
	bad := core.MustNewProgram("bad", 8)
	if _, err := bad.NewInput("not an ident", core.TypeCipher, 8, 30); err != nil {
		t.Fatal(err)
	}
	in := bad.InputByName("not an ident")
	_ = bad.AddOutput("out", in, 30)
	if _, err := lang.Print(bad); err == nil {
		t.Error("Print accepted a non-identifier input name")
	}

	reserved := core.MustNewProgram("bad2", 8)
	rin, _ := reserved.NewInput("rescale", core.TypeCipher, 8, 30)
	_ = reserved.AddOutput("out", rin, 30)
	if _, err := lang.Print(reserved); err == nil {
		t.Error("Print accepted a reserved word as an input name")
	}
}

// TestPrintedProgramNameQuoting: non-identifier program names survive via
// string literals.
func TestPrintedProgramNameQuoting(t *testing.T) {
	p := core.MustNewProgram("LeNet-5 (small)", 4)
	x, _ := p.NewInput("x", core.TypeCipher, 4, 30)
	_ = p.AddOutput("out", x, 30)
	src, err := lang.Print(p)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(src, `program "LeNet-5 (small)" vec=4;`) {
		t.Errorf("program name not quoted:\n%s", src)
	}
	roundTrip(t, p)
}

// TestPrintIsCreationOrderIndependent: structurally equal programs print to
// byte-identical source, no matter how or in what order their terms were
// created — names and binding order come from the structural DFS order, not
// from in-memory term ids.
func TestPrintIsCreationOrderIndependent(t *testing.T) {
	build := func(rotFirst int) *core.Program {
		p := core.MustNewProgram("p", 8)
		x, _ := p.NewInput("x", core.TypeCipher, 8, 30)
		var r1, r2 *core.Term
		if rotFirst == 1 {
			r1, _ = p.NewRotation(core.OpRotateLeft, x, 1)
			r2, _ = p.NewRotation(core.OpRotateLeft, x, 2)
		} else {
			r2, _ = p.NewRotation(core.OpRotateLeft, x, 2)
			r1, _ = p.NewRotation(core.OpRotateLeft, x, 1)
		}
		s1, _ := p.NewBinary(core.OpAdd, r1, r2)
		sum, _ := p.NewBinary(core.OpAdd, s1, r1) // r1 shared -> named binding
		_ = p.AddOutput("out", sum, 30)
		return p
	}
	a, err := lang.Print(build(1))
	if err != nil {
		t.Fatal(err)
	}
	b, err := lang.Print(build(2))
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("creation order leaked into printed source:\n%s\nvs:\n%s", a, b)
	}

	// A serialize/deserialize round trip (which renumbers terms) must also
	// print identically.
	p := build(1)
	data, err := p.SerializeBytes()
	if err != nil {
		t.Fatal(err)
	}
	rt, err := core.DeserializeBytes(data)
	if err != nil {
		t.Fatal(err)
	}
	c, err := lang.Print(rt)
	if err != nil {
		t.Fatal(err)
	}
	if a != c {
		t.Errorf("deserialized clone prints differently:\n%s\nvs:\n%s", a, c)
	}
}

// TestCanonicalityAcrossRepositoryPrograms is the printer-canonicality
// sweep: every program the bench harness and the examples build — and its
// compiled form, which exercises the relin/modswitch/rescale syntax — must
// survive Lower(Parse(Print(p))) unchanged.
func TestCanonicalityAcrossRepositoryPrograms(t *testing.T) {
	var programs []*core.Program

	programs = append(programs, bench.FigureDemoProgram())

	suite, err := apps.Suite(16, 8) // the Table 8 applications (examples/*)
	if err != nil {
		t.Fatal(err)
	}
	for _, app := range suite {
		programs = append(programs, app.Program)
	}

	cfg := nn.Config{InputSize: 4, ChannelDivisor: 64}
	for _, net := range nn.All(cfg) {
		rng := rand.New(rand.NewSource(7))
		prog, err := nn.BuildProgram(net, nn.RandomWeights(net, rng))
		if err != nil {
			t.Fatalf("building %s: %v", net.Name, err)
		}
		programs = append(programs, prog)
	}

	opts := compile.DefaultOptions()
	opts.AllowInsecure = true
	// range captures the original length, so the compiled copies appended
	// here are not themselves re-compiled.
	for _, p := range programs {
		compiled, err := compile.Compile(p, opts)
		if err != nil {
			t.Fatalf("compiling %s: %v", p.Name, err)
		}
		programs = append(programs, compiled.Program)
	}

	for i, p := range programs {
		t.Run(fmt.Sprintf("%02d-%s", i, p.Name), func(t *testing.T) {
			roundTrip(t, p)
		})
	}
}
