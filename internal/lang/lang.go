// Package lang implements the textual EVA source language: a small DSL for
// writing encrypted-vector-arithmetic programs as .eva files instead of
// through the Go builder API or the serialized JSON program format.
//
// The pipeline is lexer → parser → semantic checker → lowering, producing
// the same core.Program term graphs the builder frontend produces, plus a
// pretty-printer that renders any core.Program back to canonical source.
// Parse ∘ Print is the identity on the IR (checked by core.Equal), so source
// text, builder calls, and the JSON wire format are interchangeable program
// representations.
//
// The grammar (EBNF; // and # start line comments, ";" terminates
// statements, whitespace is insignificant):
//
//	Program   = "program" (ident | string) "vec" "=" int ";" { Stmt } .
//	Stmt      = Input | Let | Output .
//	Input     = "input" ident [ ":" Type ] [ "width" "=" int ] Scale ";" .
//	Type      = "cipher" | "vector" | "scalar" .
//	Let       = ident "=" Expr ";" .
//	Output    = "output" ident [ "=" Expr ] Scale ";" .
//	Expr      = Term { ("+" | "-") Term } .
//	Term      = Unary { "*" Unary } .
//	Unary     = "-" Unary | Primary .
//	Primary   = Call | Const | ident | "(" Expr ")" .
//	Call      = ("neg" | "relin" | "modswitch") "(" Expr ")"
//	          | ("rotl" | "rotr") "(" Expr "," int ")"
//	          | "rescale" "(" Expr "," number ")" .
//	Const     = (number | Vector) Scale .
//	Vector    = "[" number { "," number } "]" .
//	Scale     = "@" number .
//
// Inputs default to encrypted ("cipher") full-width vectors; widths and
// log2-scales follow the core IR semantics. Constants always carry their
// encoding scale (`0.5@30`, `[1, 2, 3, 4]@30`). The relin/modswitch/rescale
// forms exist so compiled programs can round-trip through source; input
// programs normally use only the arithmetic and rotation forms.
//
// A typical program:
//
//	program quickstart vec=8;
//	input x @30;
//	input y @30;
//	result = (x * x + y) * 0.5@30;
//	output result @30;
package lang

import "eva/internal/core"

// ParseProgram parses, checks, and lowers EVA source text into a
// core.Program in one call — the entry point used by cmd/evac and the
// evaserve /compile endpoint. The returned error, when non-nil, is an
// ErrorList of positioned diagnostics (line, column, snippet).
func ParseProgram(src string) (*core.Program, error) {
	f, errs := ParseFile(src)
	if len(errs) > 0 {
		return nil, errs
	}
	prog, errs := Lower(f)
	if len(errs) > 0 {
		return nil, errs
	}
	return prog, nil
}
