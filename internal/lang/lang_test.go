package lang

import (
	"strings"
	"testing"

	"eva/internal/builder"
	"eva/internal/core"
)

const quickstartSrc = `
program quickstart vec=8;
input x @30;
input y @30;
result = (x * x + y) * 0.5@30;
output result @30;
`

func TestParseProgramMatchesBuilder(t *testing.T) {
	prog, err := ParseProgram(quickstartSrc)
	if err != nil {
		t.Fatal(err)
	}
	b := builder.New("quickstart", 8)
	x := b.Input("x", 30)
	y := b.Input("y", 30)
	b.Output("result", x.Square().Add(y).MulScalar(0.5, 30), 30)
	want, err := b.Program()
	if err != nil {
		t.Fatal(err)
	}
	if err := core.Equal(want, prog); err != nil {
		t.Fatalf("lowered program differs from builder program: %v", err)
	}
}

func TestParseForms(t *testing.T) {
	src := `
program "forms test" vec=16;
input x @30;                      // cipher, full width
input narrow width=4 @30;         # cipher, narrower
input m: vector @20;
input s: scalar @10;
v = [1, -2.5, 3e2, 0.125]@25;
r = rotl(x, 2) + rotr(x, -1);
n = neg(x) - -2@30;
mixed = (x + m) * s * v;
deep = rescale(modswitch(relin(x * x)), 30);
output r @30;
output n @30;
output mixed @30;
output final = deep + r @30;
`
	prog, err := ParseProgram(src)
	if err != nil {
		t.Fatal(err)
	}
	if prog.Name != "forms test" || prog.VecSize != 16 {
		t.Fatalf("header mismatch: %q vec %d", prog.Name, prog.VecSize)
	}
	if got := len(prog.Inputs()); got != 4 {
		t.Fatalf("got %d inputs, want 4", got)
	}
	if got := len(prog.Outputs()); got != 4 {
		t.Fatalf("got %d outputs, want 4", got)
	}
	ops := map[string]int{}
	for _, term := range prog.Terms() {
		ops[term.Op.String()]++
	}
	for op, want := range map[string]int{
		"ROTATE_LEFT": 1, "ROTATE_RIGHT": 1, "NEGATE": 1,
		"RELINEARIZE": 1, "MOD_SWITCH": 1, "RESCALE": 1,
		"SUB": 1, "ADD": 3, "MULTIPLY": 3,
	} {
		if ops[op] != want {
			t.Errorf("%s count = %d, want %d (all: %v)", op, ops[op], want, ops)
		}
	}
	// -2@30 must fold into a constant, not become NEGATE(2@30).
	if ops["CONSTANT"] != 2 { // the vector v and the folded -2
		t.Errorf("CONSTANT count = %d, want 2", ops["CONSTANT"])
	}
	narrow := prog.InputByName("narrow")
	if narrow == nil || narrow.VecWidth != 4 {
		t.Errorf("narrow input width not honored: %+v", narrow)
	}
	if s := prog.InputByName("s"); s == nil || s.InType != core.TypeScalar || s.VecWidth != 1 {
		t.Errorf("scalar input wrong: %+v", s)
	}
	if m := prog.InputByName("m"); m == nil || m.InType != core.TypeVector || m.VecWidth != 16 {
		t.Errorf("vector input wrong: %+v", m)
	}
}

// TestPrecedenceShapesTree checks that * binds tighter than +/- and that
// parentheses control the tree shape.
func TestPrecedenceShapesTree(t *testing.T) {
	flat, err := ParseProgram("program p vec=4; input a @30; input b @30; input c @30; output o = a - b + c @30;")
	if err != nil {
		t.Fatal(err)
	}
	grouped, err := ParseProgram("program p vec=4; input a @30; input b @30; input c @30; output o = a - (b + c) @30;")
	if err != nil {
		t.Fatal(err)
	}
	if err := core.Equal(flat, grouped); err == nil {
		t.Fatal("a - b + c parsed the same as a - (b + c)")
	}
	// (a - b) + c explicitly must equal the flat form.
	explicit, err := ParseProgram("program p vec=4; input a @30; input b @30; input c @30; output o = (a - b) + c @30;")
	if err != nil {
		t.Fatal(err)
	}
	if err := core.Equal(flat, explicit); err != nil {
		t.Fatalf("left associativity broken: %v", err)
	}

	mul, err := ParseProgram("program p vec=4; input a @30; input b @30; input c @30; output o = a + b * c @30;")
	if err != nil {
		t.Fatal(err)
	}
	root := mul.Outputs()[0].Term
	if root.Op != core.OpAdd || root.Parm(1).Op != core.OpMultiply {
		t.Fatalf("precedence broken: root %s, right %s", root.Op, root.Parm(1).Op)
	}
}

// TestSharingVsInline: referencing a binding twice shares one term;
// spelling the expression twice creates two terms.
func TestSharingVsInline(t *testing.T) {
	shared, err := ParseProgram("program p vec=4; input x @30; sq = x * x; output o = sq + sq @30;")
	if err != nil {
		t.Fatal(err)
	}
	inline, err := ParseProgram("program p vec=4; input x @30; output o = x * x + x * x @30;")
	if err != nil {
		t.Fatal(err)
	}
	if shared.NumTerms() != 3 { // x, sq, add
		t.Errorf("shared form has %d terms, want 3", shared.NumTerms())
	}
	if inline.NumTerms() != 4 { // x, two muls, add
		t.Errorf("inline form has %d terms, want 4", inline.NumTerms())
	}
	if err := core.Equal(shared, inline); err == nil {
		t.Error("shared and inline forms compared equal; sharing must be part of the IR")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want string // substring of the first diagnostic
		line int
		col  int
	}{
		{"missing-header", "input x @30;", "program header", 1, 1},
		{"bad-vec-size", "program p vec=7;\ninput x @30;\noutput x @30;", "power of two", 1, 15},
		{"lex-bad-char", "program p vec=4;\ninput x @30;\noutput o = x ? x @30;", "unexpected character", 3, 14},
		{"syntax-missing-semi", "program p vec=4;\ninput x @30\noutput x @30;", "expected \";\"", 3, 1},
		{"undefined-name", "program p vec=4;\ninput x @30;\noutput o = x + z @30;", "undefined name \"z\"", 3, 16},
		{"use-before-def", "program p vec=4;\ninput x @30;\ny = z * x;\nz = x + x;\noutput y @30;", "undefined name \"z\"", 3, 5},
		{"duplicate-name", "program p vec=4;\ninput x @30;\nx = x + x;\noutput x @30;", "duplicate name \"x\"", 3, 1},
		{"duplicate-output", "program p vec=4;\ninput x @30;\noutput x @30;\noutput x @31;", "duplicate output", 4, 8},
		{"reserved-name", "program p vec=4;\ninput rescale @30;\noutput rescale @30;", "reserved word", 2, 7},
		{"bad-width", "program p vec=4;\ninput x width=3 @30;\noutput x @30;", "power of two", 2, 15},
		{"width-too-large", "program p vec=4;\ninput x width=8 @30;\noutput x @30;", "exceeds the program vector size", 2, 15},
		{"missing-scale", "program p vec=4;\ninput x @30;\noutput o = x * 0.5 + x @30;", "scale", 3, 20},
		{"empty-vector", "program p vec=4;\ninput x @30;\noutput o = x * []@30 @30;", "empty", 3, 17},
		{"vector-too-wide", "program p vec=2;\ninput x @30;\noutput o = x * [1,2,3,4]@30 @30;", "exceeding the program vector size", 3, 16},
		{"bad-rescale", "program p vec=4;\ninput x @30;\noutput o = rescale(x, 0) @30;", "rescale divisor", 3, 23},
		{"no-outputs", "program p vec=4;\ninput x @30;", "no outputs", 1, 1},
		{"unknown-function", "program p vec=4;\ninput x @30;\noutput o = rot(x, 1) @30;", "unknown function", 3, 12},
		{"unterminated-string", "program \"p vec=4;", "not terminated", 1, 9},
		{"huge-number", "program p vec=4;\ninput x @30;\noutput o = x * 1e999@30 @30;", "finite", 3, 16},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseProgram(tc.src)
			if err == nil {
				t.Fatalf("source parsed without error:\n%s", tc.src)
			}
			errs, ok := AsErrorList(err)
			if !ok || len(errs) == 0 {
				t.Fatalf("error is not an ErrorList: %v", err)
			}
			first := errs[0]
			if !strings.Contains(first.Msg, tc.want) {
				t.Errorf("first diagnostic %q does not contain %q", first.Msg, tc.want)
			}
			if first.Pos.Line != tc.line || first.Pos.Col != tc.col {
				t.Errorf("diagnostic at %s, want %d:%d (msg: %s)", first.Pos, tc.line, tc.col, first.Msg)
			}
		})
	}
}

// TestMultipleDiagnostics: independent problems are all reported in one pass.
func TestMultipleDiagnostics(t *testing.T) {
	src := "program p vec=4;\ninput x @30\ninput y @\noutput o = x + q @30;"
	_, err := ParseProgram(src)
	errs, ok := AsErrorList(err)
	if !ok {
		t.Fatalf("expected an ErrorList, got %v", err)
	}
	if len(errs) < 2 {
		t.Fatalf("expected at least 2 diagnostics, got %d: %v", len(errs), err)
	}
}

func TestErrorRenderingIncludesSnippetAndCaret(t *testing.T) {
	_, err := ParseProgram("program p vec=4;\ninput x @30;\noutput o = x + zz @30;")
	if err == nil {
		t.Fatal("expected an error")
	}
	msg := err.Error()
	if !strings.Contains(msg, "output o = x + zz @30;") {
		t.Errorf("error output missing source snippet:\n%s", msg)
	}
	if !strings.Contains(msg, "^") {
		t.Errorf("error output missing caret:\n%s", msg)
	}
	if !strings.Contains(msg, "3:16") {
		t.Errorf("error output missing position:\n%s", msg)
	}
}

// TestDeepNestingFailsGracefully: pathological nesting must produce a
// diagnostic, not a stack overflow.
func TestDeepNestingFailsGracefully(t *testing.T) {
	var b strings.Builder
	b.WriteString("program p vec=4; input x @30; output o = ")
	b.WriteString(strings.Repeat("(", 20000))
	b.WriteString("x")
	b.WriteString(strings.Repeat(")", 20000))
	b.WriteString(" @30;")
	_, err := ParseProgram(b.String())
	if err == nil {
		t.Fatal("deeply nested source parsed without error")
	}
	if !strings.Contains(err.Error(), "nested too deeply") {
		t.Errorf("unexpected error for deep nesting: %v", err)
	}
}

// TestFlatChainsAreDepthLimited: a long flat operator chain builds a
// left-leaning AST whose depth is the chain length, so it must hit the same
// guard — the recursive checker and lowerer would otherwise overflow the
// stack on a multi-megabyte hostile /compile body. Chains of a realistic
// size (the tensor frontend emits reductions of a few thousand operators)
// must still parse.
func TestFlatChainsAreDepthLimited(t *testing.T) {
	chain := func(ops int) string {
		var b strings.Builder
		b.WriteString("program p vec=4; input x @30; output o = x")
		for i := 0; i < ops; i++ {
			b.WriteString(" + x")
		}
		b.WriteString(" @30;")
		return b.String()
	}
	if _, err := ParseProgram(chain(50000)); err == nil {
		t.Fatal("50000-operator chain parsed without error")
	} else if !strings.Contains(err.Error(), "nested too deeply") {
		t.Errorf("unexpected error for a flat chain: %v", err)
	}
	prog, err := ParseProgram(chain(2000))
	if err != nil {
		t.Fatalf("2000-operator chain rejected: %v", err)
	}
	if prog.NumTerms() != 2001 { // x plus 2000 adds
		t.Errorf("chain lowered to %d terms, want 2001", prog.NumTerms())
	}
	// Multiplicative chains hit the same guard.
	mul := strings.Replace(chain(50000), "+", "*", -1)
	if _, err := ParseProgram(mul); err == nil {
		t.Fatal("50000-operator multiply chain parsed without error")
	}
}

func TestOutputInlineAndReferenceForms(t *testing.T) {
	ref, err := ParseProgram("program p vec=4; input x @30; y = x * x; output y @30;")
	if err != nil {
		t.Fatal(err)
	}
	inline, err := ParseProgram("program p vec=4; input x @30; output y = x * x @30;")
	if err != nil {
		t.Fatal(err)
	}
	if err := core.Equal(ref, inline); err != nil {
		t.Fatalf("sugar and inline output forms differ: %v", err)
	}
	// Output can also reference an input directly.
	direct, err := ParseProgram("program p vec=4; input x @30; output out = x @30;")
	if err != nil {
		t.Fatal(err)
	}
	if direct.Outputs()[0].Term != direct.InputByName("x") {
		t.Error("output does not share the input term")
	}
}
