package lang

import (
	"fmt"
	"math"
	"strconv"

	"eva/internal/core"
)

// Reserved words of the language. They cannot be used as input, binding, or
// output names.
var keywords = map[string]bool{
	"program": true, "vec": true, "input": true, "output": true, "width": true,
	"cipher": true, "vector": true, "scalar": true,
	"neg": true, "rotl": true, "rotr": true,
	"relin": true, "modswitch": true, "rescale": true,
}

// builtins maps the instruction-call keywords to their opcodes.
var builtins = map[string]core.OpCode{
	"neg":       core.OpNegate,
	"rotl":      core.OpRotateLeft,
	"rotr":      core.OpRotateRight,
	"relin":     core.OpRelinearize,
	"modswitch": core.OpModSwitch,
	"rescale":   core.OpRescale,
}

// IsReserved reports whether name is a keyword of the language and therefore
// unusable as an input, binding, or output name.
func IsReserved(name string) bool { return keywords[name] }

// IsIdent reports whether name is a valid (non-reserved) identifier.
func IsIdent(name string) bool {
	if name == "" || IsReserved(name) {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		if i == 0 && !isIdentStart(c) {
			return false
		}
		if !isIdentPart(c) {
			return false
		}
	}
	return true
}

// maxExprDepth bounds the depth of a single expression's AST so pathological
// inputs (fuzzing, a hostile /compile body) fail with a diagnostic instead
// of exhausting the stack in the recursive checker, lowerer, or printer.
// Flat operator chains count too — `x + x + x + ...` builds a left-leaning
// tree whose depth is the chain length — so the binary-operator loops charge
// one level per operator, not just per nesting level. The limit is far above
// anything the tensor frontend generates (a full conv reduction is a few
// thousand operators) while keeping the worst-case recursion a few
// megabytes of stack.
const maxExprDepth = 10000

type parser struct {
	lex   *lexer
	toks  []token
	i     int
	errs  ErrorList
	depth int
}

// ParseFile parses EVA source into an AST. The returned ErrorList is nil on
// success. The AST is returned even when there are errors (it holds whatever
// parsed cleanly), but only an error-free AST is safe to lower.
func ParseFile(src string) (*File, ErrorList) {
	lex := newLexer(src)
	p := &parser{lex: lex, toks: lex.tokens(), errs: lex.errs}
	f := p.parseFile()
	f.lines = lex.lines
	return f, p.errs
}

func (p *parser) cur() token  { return p.toks[p.i] }
func (p *parser) next() token { t := p.toks[p.i]; p.bump(); return t }

func (p *parser) bump() {
	if p.i < len(p.toks)-1 {
		p.i++
	}
}

func (p *parser) at(lit string) bool {
	t := p.cur()
	return (t.kind == tokPunct || t.kind == tokIdent) && t.lit == lit
}

func (p *parser) accept(lit string) bool {
	if p.at(lit) {
		p.bump()
		return true
	}
	return false
}

func (p *parser) errorf(pos Position, format string, args ...any) {
	if len(p.errs) < maxErrors {
		p.errs = append(p.errs, &Error{Pos: pos, Msg: fmt.Sprintf(format, args...), Snippet: p.lex.snippet(pos.Line)})
	}
}

func (p *parser) bailedOut() bool { return len(p.errs) >= maxErrors }

// expect consumes a token with the given literal or reports an error.
func (p *parser) expect(lit, context string) bool {
	if p.accept(lit) {
		return true
	}
	p.errorf(p.cur().pos, "expected %q %s, found %s", lit, context, p.cur().describe())
	return false
}

// sync skips to just past the next ';' (or to EOF) after a statement-level
// error, so one bad statement yields one diagnostic rather than a cascade.
func (p *parser) sync() {
	for p.cur().kind != tokEOF {
		if p.cur().kind == tokPunct && p.cur().lit == ";" {
			p.bump()
			return
		}
		p.bump()
	}
}

func (p *parser) parseFile() *File {
	f := &File{}
	// Header: program <name> vec=<N>;
	if !p.accept("program") {
		p.errorf(p.cur().pos, "source must start with a program header: program <name> vec=<size>;")
		p.sync()
	} else {
		f.NamePos = p.cur().pos
		switch t := p.cur(); t.kind {
		case tokIdent:
			if IsReserved(t.lit) {
				p.errorf(t.pos, "%q is a reserved word; quote it to use it as a program name", t.lit)
			}
			f.Name = t.lit
			p.bump()
		case tokString:
			name, err := strconv.Unquote(t.lit)
			if err != nil {
				p.errorf(t.pos, "invalid program name literal %s", t.lit)
			}
			f.Name = name
			p.bump()
		default:
			p.errorf(t.pos, "expected a program name, found %s", t.describe())
		}
		p.expect("vec", "in program header")
		p.expect("=", "after vec")
		f.VecPos = p.cur().pos
		f.VecSize, _ = p.parseInt("vector size")
		p.expect(";", "after program header")
	}

	for p.cur().kind != tokEOF && !p.bailedOut() {
		if stmt := p.parseStmt(); stmt != nil {
			f.Stmts = append(f.Stmts, stmt)
		}
	}
	return f
}

func (p *parser) parseStmt() Stmt {
	t := p.cur()
	switch {
	case p.at("input"):
		return p.parseInput()
	case p.at("output"):
		return p.parseOutput()
	case t.kind == tokIdent && !IsReserved(t.lit):
		return p.parseLet()
	default:
		p.errorf(t.pos, "expected a statement (input, output, or a binding), found %s", t.describe())
		p.sync()
		return nil
	}
}

// parseName consumes a non-reserved identifier used as a binding name.
func (p *parser) parseName(context string) (string, Position, bool) {
	t := p.cur()
	if t.kind != tokIdent {
		p.errorf(t.pos, "expected a name %s, found %s", context, t.describe())
		return "", t.pos, false
	}
	if IsReserved(t.lit) {
		p.errorf(t.pos, "%q is a reserved word and cannot be used as a name", t.lit)
		p.bump()
		return "", t.pos, false
	}
	p.bump()
	return t.lit, t.pos, true
}

func (p *parser) parseInput() Stmt {
	s := &InputStmt{Pos: p.cur().pos, Type: core.TypeCipher}
	p.bump() // input
	var ok bool
	if s.Name, s.NamePos, ok = p.parseName("after input"); !ok {
		p.sync()
		return nil
	}
	if p.accept(":") {
		t := p.cur()
		switch t.lit {
		case "cipher":
			s.Type = core.TypeCipher
		case "vector":
			s.Type = core.TypeVector
		case "scalar":
			s.Type = core.TypeScalar
		default:
			p.errorf(t.pos, "expected an input type (cipher, vector, or scalar), found %s", t.describe())
			p.sync()
			return nil
		}
		p.bump()
	}
	if p.at("width") {
		p.bump()
		if !p.expect("=", "after width") {
			p.sync()
			return nil
		}
		s.WidthPos = p.cur().pos
		if s.Width, ok = p.parseInt("input width"); !ok {
			p.sync()
			return nil
		}
	}
	if s.Scale, s.ScalePos, ok = p.parseScale(); !ok {
		p.sync()
		return nil
	}
	p.expect(";", "after input declaration")
	return s
}

func (p *parser) parseOutput() Stmt {
	s := &OutputStmt{Pos: p.cur().pos}
	p.bump() // output
	var ok bool
	if s.Name, s.NamePos, ok = p.parseName("after output"); !ok {
		p.sync()
		return nil
	}
	if p.accept("=") {
		if s.Expr = p.parseExpr(); s.Expr == nil {
			p.sync()
			return nil
		}
	}
	if s.Scale, s.ScalePos, ok = p.parseScale(); !ok {
		p.sync()
		return nil
	}
	p.expect(";", "after output declaration")
	return s
}

func (p *parser) parseLet() Stmt {
	s := &LetStmt{}
	var ok bool
	if s.Name, s.NamePos, ok = p.parseName("on the left of ="); !ok {
		p.sync()
		return nil
	}
	if !p.expect("=", "in binding") {
		p.sync()
		return nil
	}
	if s.Expr = p.parseExpr(); s.Expr == nil {
		p.sync()
		return nil
	}
	p.expect(";", "after binding")
	return s
}

// parseScale consumes `@ <number>` (optionally negative).
func (p *parser) parseScale() (float64, Position, bool) {
	if !p.expect("@", "before the scale (scales are written @30)") {
		return 0, p.cur().pos, false
	}
	pos := p.cur().pos
	v, ok := p.parseSignedNumber("scale")
	return v, pos, ok
}

func (p *parser) parseSignedNumber(what string) (float64, bool) {
	neg := p.accept("-")
	t := p.cur()
	if t.kind != tokNumber {
		p.errorf(t.pos, "expected a %s, found %s", what, t.describe())
		return 0, false
	}
	p.bump()
	v, err := strconv.ParseFloat(t.lit, 64)
	if err != nil || math.IsInf(v, 0) || math.IsNaN(v) {
		p.errorf(t.pos, "%s %q is not a finite number", what, t.lit)
		return 0, false
	}
	if neg {
		v = -v
	}
	return v, true
}

func (p *parser) parseInt(what string) (int, bool) {
	pos := p.cur().pos
	v, ok := p.parseSignedNumber(what)
	if !ok {
		return 0, false
	}
	if v != math.Trunc(v) || math.Abs(v) > 1<<53 {
		p.errorf(pos, "%s must be an integer, got %g", what, v)
		return 0, false
	}
	return int(v), true
}

// --- Expressions ---

// enter charges one level of expression depth; callers must pair it with
// leave. It reports false (with a diagnostic) once the limit is reached.
func (p *parser) enter(pos Position) bool {
	if p.depth >= maxExprDepth {
		p.errorf(pos, "expression nested too deeply (more than %d levels)", maxExprDepth)
		return false
	}
	p.depth++
	return true
}

func (p *parser) leave(levels int) { p.depth -= levels }

func (p *parser) parseExpr() Expr {
	if !p.enter(p.cur().pos) {
		return nil
	}
	levels := 1
	defer func() { p.leave(levels) }()

	x := p.parseTerm()
	if x == nil {
		return nil
	}
	for {
		t := p.cur()
		var op core.OpCode
		switch {
		case p.at("+"):
			op = core.OpAdd
		case p.at("-"):
			op = core.OpSub
		default:
			return x
		}
		p.bump()
		// Each chained operator deepens the left-leaning tree by one.
		if !p.enter(t.pos) {
			return nil
		}
		levels++
		y := p.parseTerm()
		if y == nil {
			return nil
		}
		x = &Binary{OpPos: t.pos, Op: op, X: x, Y: y}
	}
}

func (p *parser) parseTerm() Expr {
	x := p.parseUnary()
	if x == nil {
		return nil
	}
	levels := 0
	defer func() { p.leave(levels) }()
	for p.at("*") {
		pos := p.cur().pos
		p.bump()
		if !p.enter(pos) {
			return nil
		}
		levels++
		y := p.parseUnary()
		if y == nil {
			return nil
		}
		x = &Binary{OpPos: pos, Op: core.OpMultiply, X: x, Y: y}
	}
	return x
}

func (p *parser) parseUnary() Expr {
	if !p.at("-") {
		return p.parsePrimary()
	}
	pos := p.cur().pos
	p.bump()
	if !p.enter(pos) {
		return nil
	}
	x := p.parseUnary()
	p.leave(1)
	if x == nil {
		return nil
	}
	// A minus in front of a constant literal folds into the constant, so
	// `-2@30` is a single negative constant, not a NEGATE instruction.
	if c, ok := x.(*Const); ok {
		neg := &Const{Pos: pos, Values: make([]float64, len(c.Values)), IsVector: c.IsVector, Scale: c.Scale, ScalePos: c.ScalePos}
		for i, v := range c.Values {
			neg.Values[i] = -v
		}
		return neg
	}
	return &Call{Pos: pos, Op: core.OpNegate, X: x}
}

func (p *parser) parsePrimary() Expr {
	t := p.cur()
	switch {
	case t.kind == tokNumber:
		p.bump()
		v, err := strconv.ParseFloat(t.lit, 64)
		if err != nil || math.IsInf(v, 0) || math.IsNaN(v) {
			p.errorf(t.pos, "constant %q is not a finite number", t.lit)
			return nil
		}
		c := &Const{Pos: t.pos, Values: []float64{v}}
		var ok bool
		if c.Scale, c.ScalePos, ok = p.parseScale(); !ok {
			return nil
		}
		return c
	case p.at("["):
		return p.parseVectorConst()
	case p.at("("):
		p.bump()
		x := p.parseExpr()
		if x == nil {
			return nil
		}
		if !p.expect(")", "to close the parenthesized expression") {
			return nil
		}
		return x
	case t.kind == tokIdent:
		if op, isBuiltin := builtins[t.lit]; isBuiltin {
			return p.parseCall(t, op)
		}
		if IsReserved(t.lit) {
			p.errorf(t.pos, "unexpected keyword %q in expression", t.lit)
			return nil
		}
		p.bump()
		if p.at("(") {
			p.errorf(t.pos, "unknown function %q (available: neg, rotl, rotr, relin, modswitch, rescale)", t.lit)
			return nil
		}
		return &Ident{Pos: t.pos, Name: t.lit}
	default:
		p.errorf(t.pos, "expected an expression, found %s", t.describe())
		return nil
	}
}

func (p *parser) parseVectorConst() Expr {
	c := &Const{Pos: p.cur().pos, IsVector: true}
	p.bump() // [
	if p.at("]") {
		p.errorf(p.cur().pos, "vector literal cannot be empty")
		return nil
	}
	for {
		v, ok := p.parseSignedNumber("vector element")
		if !ok {
			return nil
		}
		c.Values = append(c.Values, v)
		if p.accept(",") {
			continue
		}
		break
	}
	if !p.expect("]", "to close the vector literal") {
		return nil
	}
	var ok bool
	if c.Scale, c.ScalePos, ok = p.parseScale(); !ok {
		return nil
	}
	return c
}

func (p *parser) parseCall(name token, op core.OpCode) Expr {
	p.bump() // the builtin name
	call := &Call{Pos: name.pos, Op: op}
	if !p.expect("(", fmt.Sprintf("after %s", name.lit)) {
		return nil
	}
	if call.X = p.parseExpr(); call.X == nil {
		return nil
	}
	switch op {
	case core.OpRotateLeft, core.OpRotateRight:
		if !p.expect(",", "before the rotation step") {
			return nil
		}
		var ok bool
		if call.By, ok = p.parseInt("rotation step"); !ok {
			return nil
		}
	case core.OpRescale:
		if !p.expect(",", "before the rescale divisor") {
			return nil
		}
		call.ScalePos = p.cur().pos
		var ok bool
		if call.Scale, ok = p.parseSignedNumber("rescale divisor (log2)"); !ok {
			return nil
		}
	}
	if !p.expect(")", fmt.Sprintf("to close the %s call", name.lit)) {
		return nil
	}
	return call
}
