package lang

import (
	"fmt"
	"math"

	"eva/internal/core"
)

// checker performs the semantic pass over a parsed file: name resolution
// (definition before use, no duplicates), vector-width validation, and scale
// validation. It collects every problem it finds rather than stopping at the
// first one.
type checker struct {
	file *File
	errs ErrorList

	defined map[string]Position // input and let bindings
	outputs map[string]Position
}

// Check runs the semantic checker over a parsed file. The returned ErrorList
// is nil when the program is well-formed and safe to lower.
func Check(f *File) ErrorList {
	c := &checker{file: f, defined: map[string]Position{}, outputs: map[string]Position{}}
	c.run()
	return c.errs
}

func (c *checker) errorf(pos Position, format string, args ...any) {
	if len(c.errs) < maxErrors {
		c.errs = append(c.errs, &Error{Pos: pos, Msg: fmt.Sprintf(format, args...), Snippet: c.file.snippet(pos.Line)})
	}
}

func isPowerOfTwo(n int) bool { return n > 0 && n&(n-1) == 0 }

func (c *checker) run() {
	f := c.file
	if !isPowerOfTwo(f.VecSize) {
		c.errorf(f.VecPos, "vector size %d is not a positive power of two", f.VecSize)
	}
	outputs := 0
	for _, stmt := range f.Stmts {
		switch s := stmt.(type) {
		case *InputStmt:
			c.checkInput(s)
		case *LetStmt:
			c.checkLet(s)
		case *OutputStmt:
			c.checkOutput(s)
			outputs++
		}
	}
	if outputs == 0 && len(c.errs) == 0 {
		pos := Position{Line: 1, Col: 1}
		c.errorf(pos, "program has no outputs; declare at least one with output <name> @<scale>;")
	}
}

func (c *checker) declare(name string, pos Position) {
	if prev, dup := c.defined[name]; dup {
		c.errorf(pos, "duplicate name %q (first defined at %s)", name, prev)
		return
	}
	c.defined[name] = pos
}

func (c *checker) checkInput(s *InputStmt) {
	c.declare(s.Name, s.NamePos)
	vecSize := c.file.VecSize
	width := s.Width
	if width == 0 {
		return // defaulted widths are valid by construction
	}
	if s.Type == core.TypeScalar {
		if width != 1 {
			c.errorf(s.WidthPos, "scalar input %q must have width 1, got %d", s.Name, width)
		}
		return
	}
	if !isPowerOfTwo(width) {
		c.errorf(s.WidthPos, "input %q width %d is not a positive power of two", s.Name, width)
	} else if isPowerOfTwo(vecSize) && width > vecSize {
		c.errorf(s.WidthPos, "input %q width %d exceeds the program vector size %d", s.Name, width, vecSize)
	}
}

func (c *checker) checkLet(s *LetStmt) {
	c.checkExpr(s.Expr)
	c.declare(s.Name, s.NamePos)
}

func (c *checker) checkOutput(s *OutputStmt) {
	if prev, dup := c.outputs[s.Name]; dup {
		c.errorf(s.NamePos, "duplicate output %q (first declared at %s)", s.Name, prev)
	} else {
		c.outputs[s.Name] = s.NamePos
	}
	if s.Expr == nil {
		if _, ok := c.defined[s.Name]; !ok {
			c.errorf(s.NamePos, "output %q does not refer to a defined name; bind it first or use output %s = <expr> @...;", s.Name, s.Name)
		}
		return
	}
	c.checkExpr(s.Expr)
}

func (c *checker) checkExpr(e Expr) {
	switch x := e.(type) {
	case *Ident:
		if _, ok := c.defined[x.Name]; !ok {
			c.errorf(x.Pos, "undefined name %q (names must be defined before use)", x.Name)
		}
	case *Const:
		c.checkConst(x)
	case *Binary:
		c.checkExpr(x.X)
		c.checkExpr(x.Y)
	case *Call:
		c.checkExpr(x.X)
		if x.Op == core.OpRescale && (x.Scale <= 0 || math.IsNaN(x.Scale)) {
			c.errorf(x.ScalePos, "rescale divisor 2^%g is not greater than one", x.Scale)
		}
	}
}

func (c *checker) checkConst(x *Const) {
	width := len(x.Values)
	if width > 1 {
		if !isPowerOfTwo(width) {
			c.errorf(x.Pos, "vector constant has %d elements; the width must be a power of two", width)
		} else if isPowerOfTwo(c.file.VecSize) && width > c.file.VecSize {
			c.errorf(x.Pos, "vector constant has %d elements, exceeding the program vector size %d", width, c.file.VecSize)
		}
	}
}
