package lang

import (
	"testing"

	"eva/internal/core"
)

func rt(t *testing.T, src string) {
	t.Helper()
	p1, err := ParseProgram(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	out, err := Print(p1)
	if err != nil {
		t.Fatalf("print: %v", err)
	}
	p2, err := ParseProgram(out)
	if err != nil {
		t.Fatalf("reparse: %v\nprinted:\n%s", err, out)
	}
	if err := core.Equal(p1, p2); err != nil {
		t.Fatalf("not equal: %v\nprinted:\n%s", err, out)
	}
	out2, err := Print(p2)
	if err != nil {
		t.Fatalf("print2: %v", err)
	}
	if out != out2 {
		t.Fatalf("not canonical:\n%s\nvs\n%s", out, out2)
	}
}

func TestRTExtra(t *testing.T) {
	rt(t, "program p vec=4; input x @30; output y = x - (x - x) @30;")
	rt(t, "program p vec=4; input x @30; output y = x - (x + x) @30;")
	rt(t, "program p vec=4; input x @30; output y = x * (x + x) * x @30;")
	rt(t, "program p vec=4; input x @30; a = x*x; output y = a + a @30; output z = a @25;")
	rt(t, "program p vec=4; input x @30; output x @30;")
	rt(t, "program p vec=4; input x @30; t1 = x + 1@30; s = t1 * t1; q = s - s; output y = q * q @30;")
	rt(t, "program p vec=4; input x @30; output y = -x @30;")
	rt(t, "program p vec=4; input x @30; output y = x * -2@30 @30;")
	rt(t, "program p vec=4; input x @30; output y = [1, -2.5, 3e2, 0.25]@30 + x @30;")
	rt(t, "program p vec=4; input s: scalar @30; input v: vector width=2 @30; input x width=2 @20; output y = x * s + v @30;")
	rt(t, "program p vec=4; input x @30; output y = rescale(relin(x * x), 30) + modswitch(x) + rotl(x, 1) - rotr(x, 2) + neg(x) @30;")
	rt(t, "program \"odd name\" vec=4; input x @30; output y = x @30;")
	rt(t, "program p vec=4; input x @30; output y = (x + x) - x @30;")
	rt(t, "program p vec=4; input x @30; output y = x - x - x @30;")
	rt(t, "program p vec=4; input x @30; shared = x + x; output a = shared * shared @30; output b = shared @30;")
}
