package lang

import (
	"fmt"

	"eva/internal/core"
)

// Lower translates a checked AST into a core.Program term graph. It runs the
// semantic checker first; a file that fails the checker is never lowered.
//
// Name references share terms (referencing a binding twice yields one term
// with two uses), while inline expressions create fresh terms per occurrence
// — exactly the DAG the equivalent builder calls would construct.
func Lower(f *File) (*core.Program, ErrorList) {
	if errs := Check(f); len(errs) > 0 {
		return nil, errs
	}
	lw := &lowerer{file: f, env: map[string]*core.Term{}}
	prog, err := core.NewProgram(f.Name, f.VecSize)
	if err != nil {
		return nil, ErrorList{&Error{Pos: f.VecPos, Msg: err.Error(), Snippet: f.snippet(f.VecPos.Line)}}
	}
	lw.prog = prog
	for _, stmt := range f.Stmts {
		if !lw.stmt(stmt) {
			return nil, lw.errs
		}
	}
	// The checker guarantees frontend-visible structure; ValidateStructure
	// additionally covers invariants of compiler-inserted instructions
	// (rescale divisors and the like) for sources that spell them out.
	if err := prog.ValidateStructure(false); err != nil {
		return nil, ErrorList{&Error{Pos: Position{Line: 1, Col: 1}, Msg: err.Error()}}
	}
	return prog, nil
}

type lowerer struct {
	file *File
	prog *core.Program
	env  map[string]*core.Term
	errs ErrorList
}

func (lw *lowerer) errorf(pos Position, format string, args ...any) {
	lw.errs = append(lw.errs, &Error{Pos: pos, Msg: fmt.Sprintf(format, args...), Snippet: lw.file.snippet(pos.Line)})
}

func (lw *lowerer) stmt(stmt Stmt) bool {
	switch s := stmt.(type) {
	case *InputStmt:
		width := s.Width
		if width == 0 {
			if s.Type == core.TypeScalar {
				width = 1
			} else {
				width = lw.file.VecSize
			}
		}
		t, err := lw.prog.NewInput(s.Name, s.Type, width, s.Scale)
		if err != nil {
			lw.errorf(s.NamePos, "%v", err)
			return false
		}
		lw.env[s.Name] = t
	case *LetStmt:
		t := lw.expr(s.Expr)
		if t == nil {
			return false
		}
		lw.env[s.Name] = t
	case *OutputStmt:
		var t *core.Term
		if s.Expr == nil {
			t = lw.env[s.Name]
		} else {
			t = lw.expr(s.Expr)
		}
		if t == nil {
			return false
		}
		if err := lw.prog.AddOutput(s.Name, t, s.Scale); err != nil {
			lw.errorf(s.NamePos, "%v", err)
			return false
		}
	}
	return true
}

func (lw *lowerer) expr(e Expr) *core.Term {
	switch x := e.(type) {
	case *Ident:
		return lw.env[x.Name] // the checker proved it is defined
	case *Const:
		t, err := lw.prog.NewConstant(x.Values, x.Scale)
		if err != nil {
			lw.errorf(x.Pos, "%v", err)
			return nil
		}
		return t
	case *Binary:
		a := lw.expr(x.X)
		if a == nil {
			return nil
		}
		b := lw.expr(x.Y)
		if b == nil {
			return nil
		}
		t, err := lw.prog.NewBinary(x.Op, a, b)
		if err != nil {
			lw.errorf(x.OpPos, "%v", err)
			return nil
		}
		return t
	case *Call:
		a := lw.expr(x.X)
		if a == nil {
			return nil
		}
		var t *core.Term
		var err error
		switch x.Op {
		case core.OpRotateLeft, core.OpRotateRight:
			t, err = lw.prog.NewRotation(x.Op, a, x.By)
		case core.OpRescale:
			t, err = lw.prog.NewRescale(a, x.Scale)
		default:
			t, err = lw.prog.NewUnary(x.Op, a)
		}
		if err != nil {
			lw.errorf(x.Pos, "%v", err)
			return nil
		}
		return t
	}
	return nil
}
