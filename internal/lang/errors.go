package lang

import (
	"fmt"
	"strings"
)

// Position locates a token in EVA source text. Lines are 1-based; columns are
// 1-based byte offsets within the line.
type Position struct {
	Line int
	Col  int
}

func (p Position) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Error is one positioned diagnostic: where it happened, what went wrong, and
// the offending source line so callers (the evac CLI, the evaserve API) can
// show a caret snippet without re-reading the source.
type Error struct {
	Pos     Position
	Msg     string
	Snippet string // the source line Pos points into, without its newline
}

func (e *Error) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %s", e.Pos, e.Msg)
	if e.Snippet != "" {
		fmt.Fprintf(&b, "\n  %s\n  %s^", e.Snippet, strings.Repeat(" ", caretOffset(e.Snippet, e.Pos.Col)))
	}
	return b.String()
}

// caretOffset turns the 1-based byte column into a rune offset so the caret
// lines up under the snippet even when it contains multi-byte runes.
func caretOffset(line string, col int) int {
	if col < 1 {
		return 0
	}
	byteOff := col - 1
	if byteOff > len(line) {
		byteOff = len(line)
	}
	return len([]rune(line[:byteOff]))
}

// ErrorList is an ordered collection of diagnostics; it implements error.
type ErrorList []*Error

func (l ErrorList) Error() string {
	switch len(l) {
	case 0:
		return "no errors"
	case 1:
		return l[0].Error()
	}
	parts := make([]string, len(l))
	for i, e := range l {
		parts[i] = e.Error()
	}
	return fmt.Sprintf("%d errors:\n%s", len(l), strings.Join(parts, "\n"))
}

// Err returns the list as an error, or nil when it is empty.
func (l ErrorList) Err() error {
	if len(l) == 0 {
		return nil
	}
	return l
}

// AsErrorList extracts the positioned diagnostics from an error returned by
// this package, if any.
func AsErrorList(err error) (ErrorList, bool) {
	if err == nil {
		return nil, false
	}
	if l, ok := err.(ErrorList); ok {
		return l, true
	}
	if e, ok := err.(*Error); ok {
		return ErrorList{e}, true
	}
	return nil, false
}

// maxErrors caps how many diagnostics are collected before parsing or
// checking bails out; beyond this, later errors are usually cascades.
const maxErrors = 50
