package lang_test

import (
	"testing"

	"eva/internal/core"
	"eva/internal/lang"
)

// fuzzSeeds exercise every statement form, expression form, and a sample of
// malformed inputs so the fuzzers start from interesting corners.
var fuzzSeeds = []string{
	"",
	"program quickstart vec=8;\ninput x @30;\ninput y @30;\nresult = (x * x + y) * 0.5@30;\noutput result @30;",
	"program \"a b\" vec=4; input x: vector width=2 @30; input s: scalar @1.5; output o = x * s @30;",
	"program p vec=16; input x @30; output o = rescale(modswitch(relin(neg(x * x))), 30) @30;",
	"program p vec=8; input x @30; v = [1, -2.5, 3e2, 0.125]@25; output o = rotl(x, 2) + rotr(v * x, -3) @30;",
	"program p vec=8; input x @30; output o = -x - -2@30 @30;",
	"program p vec=7; input x @30; output o = x @30;",
	"program p vec=8; input x @30; output o = x + z @30;",
	"program p vec=8; input x @30; output o = ((((x)))) @30;",
	"program p vec=8; # comment\n// comment\ninput x @30; output o = x @30;",
	"program p vec=8; input x @30; output o = x * 1e999@30 @30;",
	"program p vec=8 input x @30",
	"@@@;;;[[]]\"unterminated",
}

// FuzzParse asserts the frontend never panics: arbitrary bytes either parse
// and lower into a structurally valid program or produce an ErrorList.
// evaserve feeds untrusted request bodies straight into this path.
func FuzzParse(f *testing.F) {
	for _, seed := range fuzzSeeds {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := lang.ParseProgram(src)
		if err != nil {
			if prog != nil {
				t.Fatal("ParseProgram returned both a program and an error")
			}
			if _, ok := lang.AsErrorList(err); !ok {
				t.Fatalf("error is not positioned diagnostics: %v", err)
			}
			return
		}
		if err := prog.ValidateStructure(false); err != nil {
			t.Fatalf("lowered program is structurally invalid: %v", err)
		}
	})
}

// FuzzRoundTrip asserts the printer is canonical: any source that parses
// must print to source that re-parses to the identical IR.
func FuzzRoundTrip(f *testing.F) {
	for _, seed := range fuzzSeeds {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := lang.ParseProgram(src)
		if err != nil {
			t.Skip()
		}
		printed, err := lang.Print(prog)
		if err != nil {
			t.Fatalf("Print failed on a parsed program: %v\nsource:\n%s", err, src)
		}
		back, err := lang.ParseProgram(printed)
		if err != nil {
			t.Fatalf("printed source does not re-parse: %v\nprinted:\n%s", err, printed)
		}
		if err := core.Equal(prog, back); err != nil {
			t.Fatalf("round trip changed the program: %v\noriginal source:\n%s\nprinted:\n%s", err, src, printed)
		}
	})
}
