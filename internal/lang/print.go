package lang

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"eva/internal/core"
)

// Print renders a program as canonical EVA source: header, inputs in
// declaration order, one let binding per named term, outputs in declaration
// order. A term gets a name when it is an input, is referenced more than
// once (so DAG sharing survives the round trip), or is an output; everything
// else is inlined into its single use. Lowering the printed source
// reproduces the program exactly (checked by core.Equal), modulo dead
// non-input terms, which have no source representation.
//
// The output is canonical in the strong sense: bindings are emitted in a
// deterministic structural order (a post-order depth-first walk from the
// outputs, mirroring core.Serialize) and generated names are sequential
// along it, so two structurally equal programs print to identical text no
// matter how or in what order their terms were built.
//
// Print fails when the program cannot be expressed: a non-identifier input
// or output name, or a non-finite constant or scale.
func Print(p *core.Program) (string, error) {
	pr := &printer{prog: p, names: map[*core.Term]string{}, taken: map[string]bool{}}
	return pr.print()
}

type printer struct {
	prog  *core.Program
	names map[*core.Term]string
	taken map[string]bool
	buf   strings.Builder
}

func (pr *printer) print() (string, error) {
	p := pr.prog
	if p.VecSize <= 0 {
		return "", fmt.Errorf("lang: program %q has invalid vector size %d", p.Name, p.VecSize)
	}
	live := p.CanonicalOrder()

	// Count uses within the live graph so shared terms get a binding.
	uses := map[*core.Term]int{}
	for _, t := range live {
		for _, parm := range t.Parms() {
			uses[parm]++
		}
	}
	for _, o := range p.Outputs() {
		uses[o.Term]++
	}

	// Naming: inputs keep their names; output terms take the output's name
	// when it is free; remaining shared terms get fresh t<ID> names.
	for _, in := range p.Inputs() {
		if !IsIdent(in.Name) {
			return "", fmt.Errorf("lang: input name %q is not a valid identifier", in.Name)
		}
		if pr.taken[in.Name] {
			return "", fmt.Errorf("lang: duplicate input name %q", in.Name)
		}
		pr.names[in], pr.taken[in.Name] = in.Name, true
	}
	for _, o := range p.Outputs() {
		if !IsIdent(o.Name) {
			return "", fmt.Errorf("lang: output name %q is not a valid identifier", o.Name)
		}
		if pr.taken[o.Name] {
			continue // shares a name with an input or an earlier output
		}
		// Reserve the name even when the term is already bound elsewhere, so
		// generated names can never shadow an output.
		pr.taken[o.Name] = true
		if _, named := pr.names[o.Term]; !named {
			pr.names[o.Term] = o.Name
		}
	}
	fresh := 0
	for _, t := range live {
		if _, named := pr.names[t]; named || uses[t] < 2 || t.Op == core.OpInput {
			continue
		}
		// Sequential names along the structural order keep the text
		// identical across structurally equal programs.
		fresh++
		name := fmt.Sprintf("t%d", fresh)
		for pr.taken[name] {
			name += "_"
		}
		pr.names[t] = name
		pr.taken[name] = true
	}

	// Emit.
	fmt.Fprintf(&pr.buf, "program %s vec=%d;\n", formatProgramName(p.Name), p.VecSize)
	for _, in := range p.Inputs() {
		if err := pr.inputStmt(in); err != nil {
			return "", err
		}
	}
	for _, t := range live {
		if t.Op == core.OpInput {
			continue
		}
		if _, named := pr.names[t]; !named {
			continue
		}
		expr, err := pr.render(t, 0, true)
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&pr.buf, "%s = %s;\n", pr.names[t], expr)
	}
	for _, o := range p.Outputs() {
		scale, err := formatFloat(o.LogScale, "output scale")
		if err != nil {
			return "", err
		}
		if pr.names[o.Term] == o.Name {
			fmt.Fprintf(&pr.buf, "output %s @%s;\n", o.Name, scale)
			continue
		}
		expr, err := pr.render(o.Term, 0, false)
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&pr.buf, "output %s = %s @%s;\n", o.Name, expr, scale)
	}
	return pr.buf.String(), nil
}

func formatProgramName(name string) string {
	if IsIdent(name) {
		return name
	}
	return strconv.Quote(name)
}

func formatFloat(v float64, what string) (string, error) {
	if math.IsInf(v, 0) || math.IsNaN(v) {
		return "", fmt.Errorf("lang: %s %g cannot be written as source", what, v)
	}
	return strconv.FormatFloat(v, 'g', -1, 64), nil
}

func (pr *printer) inputStmt(in *core.Term) error {
	scale, err := formatFloat(in.LogScale, fmt.Sprintf("input %q scale", in.Name))
	if err != nil {
		return err
	}
	fmt.Fprintf(&pr.buf, "input %s", in.Name)
	defaultWidth := pr.prog.VecSize
	switch in.InType {
	case core.TypeCipher:
	case core.TypeVector:
		pr.buf.WriteString(": vector")
	case core.TypeScalar:
		pr.buf.WriteString(": scalar")
		defaultWidth = 1
	default:
		return fmt.Errorf("lang: input %q has invalid type", in.Name)
	}
	if in.VecWidth != defaultWidth {
		fmt.Fprintf(&pr.buf, " width=%d", in.VecWidth)
	}
	fmt.Fprintf(&pr.buf, " @%s;\n", scale)
	return nil
}

// Operator precedence levels used when rendering: additive 1, multiplicative
// 2, atoms 3. Equal-precedence right operands are parenthesized so the tree
// shape survives re-parsing ((a+b)+c prints without parens, a+(b+c) keeps
// them).
func opPrec(op core.OpCode) int {
	switch op {
	case core.OpAdd, core.OpSub:
		return 1
	case core.OpMultiply:
		return 2
	default:
		return 3
	}
}

// render produces the expression for t. minPrec is the lowest precedence
// that may appear unparenthesized in this position; defining is true when
// rendering the right-hand side of t's own binding (so t's name must not be
// used).
func (pr *printer) render(t *core.Term, minPrec int, defining bool) (string, error) {
	if !defining {
		if name, ok := pr.names[t]; ok {
			return name, nil
		}
	}
	switch t.Op {
	case core.OpInput:
		return t.Name, nil // inputs are always named; only reachable via defining=false
	case core.OpConstant:
		return pr.renderConstant(t)
	case core.OpAdd, core.OpSub, core.OpMultiply:
		prec := opPrec(t.Op)
		left, err := pr.render(t.Parm(0), prec, false)
		if err != nil {
			return "", err
		}
		right, err := pr.render(t.Parm(1), prec+1, false)
		if err != nil {
			return "", err
		}
		var op string
		switch t.Op {
		case core.OpAdd:
			op = "+"
		case core.OpSub:
			op = "-"
		default:
			op = "*"
		}
		expr := fmt.Sprintf("%s %s %s", left, op, right)
		if prec < minPrec {
			return "(" + expr + ")", nil
		}
		return expr, nil
	case core.OpNegate:
		return pr.renderCall("neg", t, "")
	case core.OpRelinearize:
		return pr.renderCall("relin", t, "")
	case core.OpModSwitch:
		return pr.renderCall("modswitch", t, "")
	case core.OpRotateLeft:
		return pr.renderCall("rotl", t, strconv.Itoa(t.RotateBy))
	case core.OpRotateRight:
		return pr.renderCall("rotr", t, strconv.Itoa(t.RotateBy))
	case core.OpRescale:
		scale, err := formatFloat(t.LogScale, "rescale divisor")
		if err != nil {
			return "", err
		}
		return pr.renderCall("rescale", t, scale)
	default:
		return "", fmt.Errorf("lang: cannot print term %s", t)
	}
}

func (pr *printer) renderCall(name string, t *core.Term, extra string) (string, error) {
	arg, err := pr.render(t.Parm(0), 0, false)
	if err != nil {
		return "", err
	}
	if extra == "" {
		return fmt.Sprintf("%s(%s)", name, arg), nil
	}
	return fmt.Sprintf("%s(%s, %s)", name, arg, extra), nil
}

func (pr *printer) renderConstant(t *core.Term) (string, error) {
	scale, err := formatFloat(t.LogScale, "constant scale")
	if err != nil {
		return "", err
	}
	if len(t.Value) == 1 {
		v, err := formatFloat(t.Value[0], "constant value")
		if err != nil {
			return "", err
		}
		return v + "@" + scale, nil
	}
	parts := make([]string, len(t.Value))
	for i, val := range t.Value {
		if parts[i], err = formatFloat(val, "constant value"); err != nil {
			return "", err
		}
	}
	return "[" + strings.Join(parts, ", ") + "]@" + scale, nil
}
