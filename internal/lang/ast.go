package lang

import (
	"strings"

	"eva/internal/core"
)

// The AST mirrors the surface grammar (see the package documentation in
// lang.go for the EBNF). Every node carries the position of its first token
// so the checker and lowerer can report positioned diagnostics.

// File is one parsed .eva source file.
type File struct {
	NamePos Position
	Name    string // program name (identifier or string literal)
	VecPos  Position
	VecSize int
	Stmts   []Stmt

	lines []string // source lines, for error snippets (set by ParseFile)
}

// snippet returns the source line (1-based) for error messages, or "" when
// the file was built without source text.
func (f *File) snippet(line int) string {
	if line < 1 || line > len(f.lines) {
		return ""
	}
	return strings.TrimSuffix(f.lines[line-1], "\r")
}

// Stmt is one program statement: an input declaration, a let binding, or an
// output declaration.
type Stmt interface{ stmtNode() }

// InputStmt declares a run-time input: `input x: cipher width=4 @30;`.
// The type defaults to cipher, the width to the program vector size (1 for
// scalars).
type InputStmt struct {
	Pos      Position // of the `input` keyword
	NamePos  Position
	Name     string
	Type     core.Type // TypeCipher when not spelled out
	Width    int       // 0 = default
	WidthPos Position
	Scale    float64
	ScalePos Position
}

// LetStmt binds a name to an expression: `y = x * x + rotl(x, 2);`.
type LetStmt struct {
	NamePos Position
	Name    string
	Expr    Expr
}

// OutputStmt declares a program output: `output y @30;` (referring to a
// bound name) or `output y = x * x @30;` (binding inline).
type OutputStmt struct {
	Pos      Position // of the `output` keyword
	NamePos  Position
	Name     string
	Expr     Expr // nil for the bare-reference form
	Scale    float64
	ScalePos Position
}

func (*InputStmt) stmtNode()  {}
func (*LetStmt) stmtNode()    {}
func (*OutputStmt) stmtNode() {}

// Expr is an expression node.
type Expr interface{ exprPos() Position }

// Ident references a bound name.
type Ident struct {
	Pos  Position
	Name string
}

// Const is a constant literal with its encoding scale: `0.5@30` (scalar) or
// `[1, 2, 3, 4]@30` (vector).
type Const struct {
	Pos      Position
	Values   []float64
	IsVector bool // spelled with brackets (length may still be 1)
	Scale    float64
	ScalePos Position
}

// Binary is `x + y`, `x - y`, or `x * y`.
type Binary struct {
	OpPos Position
	Op    core.OpCode // OpAdd, OpSub, OpMultiply
	X, Y  Expr
}

// Call is one of the built-in instruction forms: neg(x), rotl(x, k),
// rotr(x, k), relin(x), modswitch(x), rescale(x, s).
type Call struct {
	Pos      Position
	Op       core.OpCode
	X        Expr
	By       int     // rotation step (rotl/rotr)
	Scale    float64 // rescale divisor (log2)
	ScalePos Position
}

func (e *Ident) exprPos() Position  { return e.Pos }
func (e *Const) exprPos() Position  { return e.Pos }
func (e *Binary) exprPos() Position { return e.X.exprPos() }
func (e *Call) exprPos() Position   { return e.Pos }
