// Package store is evaserve's durable artifact layer. The EVA deployment
// model (paper §3) treats programs, encryption parameters, evaluation keys,
// and ciphertext results as serialized artifacts that flow between a client
// and an untrusted compute provider; this package gives those artifacts a
// home that survives process restarts, so a served node restarts warm
// instead of forgetting every compiled program, installed context, and
// unfetched job result.
//
// A Store is a flat keyspace of (kind, id) → bytes. Kinds partition the
// artifact classes ("program", "context", "result", "cjob"); ids are
// caller-chosen — compiled programs use the canonical-serialize SHA-256
// content hash, so the program namespace is content-addressed. Two backends
// implement the interface: FS, a stdlib-only filesystem store whose writes
// are atomic (temp file + rename, fsync'd) and whose records carry a
// SHA-256 checksum so torn or corrupted entries are detected and dropped
// when the store reopens; and Memory, for tests and for nodes that opt out
// of durability.
package store

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
)

// ErrNotFound reports that no record exists under the requested (kind, id).
var ErrNotFound = errors.New("store: not found")

// Store is a durable keyed blob store. Implementations must be safe for
// concurrent use.
type Store interface {
	// Put durably writes data under (kind, id), replacing any previous value.
	// The write is atomic: a concurrent crash leaves either the old record,
	// the new record, or a stray temp file that reopening cleans up — never a
	// torn record that Get would return.
	Put(kind, id string, data []byte) error
	// Get returns the record under (kind, id), or ErrNotFound.
	Get(kind, id string) ([]byte, error)
	// Delete removes the record under (kind, id). Deleting a missing record
	// is not an error.
	Delete(kind, id string) error
	// List returns the ids of every record of a kind, sorted.
	List(kind string) ([]string, error)
	// Stats snapshots entry/byte counts and hit/miss counters.
	Stats() Stats
	// Close flushes and releases the store. A closed store rejects all
	// further operations.
	Close() error
}

// KindStats counts one kind's records.
type KindStats struct {
	Entries int   `json:"entries"`
	Bytes   int64 `json:"bytes"`
}

// Stats is a snapshot of a store's contents and traffic.
type Stats struct {
	// Backend names the implementation ("fs" or "memory").
	Backend string `json:"backend"`
	// Path is the filesystem root (fs backend only).
	Path string `json:"path,omitempty"`
	// Entries and Bytes total the live records across every kind.
	Entries int   `json:"entries"`
	Bytes   int64 `json:"bytes"`
	// PerKind breaks the totals down by artifact kind.
	PerKind map[string]KindStats `json:"per_kind,omitempty"`
	// Gets/Hits/Misses count Get outcomes; Puts and Deletes count writes.
	Gets    uint64 `json:"gets"`
	Hits    uint64 `json:"hits"`
	Misses  uint64 `json:"misses"`
	Puts    uint64 `json:"puts"`
	Deletes uint64 `json:"deletes"`
	// Dropped counts records discarded as torn or corrupt (fs backend: at
	// reopen or on a failed checksum during Get).
	Dropped uint64 `json:"dropped,omitempty"`
}

// validName reports whether a kind or id is safe as a single path component:
// non-empty, no separators, no leading dot, and not ending in the temp-file
// suffix — a record named "*.tmp" would be deleted as crash residue by the
// next reopen, so such ids must never be accepted in the first place.
func validName(s string) bool {
	if s == "" || len(s) > 128 || s[0] == '.' || strings.HasSuffix(s, tmpSuffix) {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		case c == '-' || c == '_' || c == '.' || c == '~':
		default:
			return false
		}
	}
	return true
}

func checkNames(kind, id string) error {
	if !validName(kind) {
		return fmt.Errorf("store: invalid kind %q", kind)
	}
	if !validName(id) {
		return fmt.Errorf("store: invalid id %q", id)
	}
	return nil
}

// counters is the shared traffic bookkeeping of both backends.
type counters struct {
	mu      sync.Mutex
	gets    uint64
	hits    uint64
	misses  uint64
	puts    uint64
	deletes uint64
	dropped uint64
}

func (c *counters) get(hit bool) {
	c.mu.Lock()
	c.gets++
	if hit {
		c.hits++
	} else {
		c.misses++
	}
	c.mu.Unlock()
}

func (c *counters) put()  { c.mu.Lock(); c.puts++; c.mu.Unlock() }
func (c *counters) del()  { c.mu.Lock(); c.deletes++; c.mu.Unlock() }
func (c *counters) drop() { c.mu.Lock(); c.dropped++; c.mu.Unlock() }

func (c *counters) fill(s *Stats) {
	c.mu.Lock()
	s.Gets, s.Hits, s.Misses = c.gets, c.hits, c.misses
	s.Puts, s.Deletes, s.Dropped = c.puts, c.deletes, c.dropped
	c.mu.Unlock()
}

func sortedIDs(m map[string]int64) []string {
	ids := make([]string, 0, len(m))
	for id := range m {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}
