package store

import (
	"bytes"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
)

// The on-disk record format: a fixed header followed by the payload. The
// header carries the payload length and a SHA-256 checksum, so a record
// truncated by a crash (or corrupted at rest) is detected rather than
// returned: the length guards against truncation, the checksum against
// bit rot and torn sector writes.
//
//	offset  size  field
//	0       8     magic "EVASTOR1"
//	8       8     payload length (uint64 little-endian)
//	16      32    SHA-256(payload)
//	48      n     payload
var fsMagic = [8]byte{'E', 'V', 'A', 'S', 'T', 'O', 'R', '1'}

const fsHeaderSize = 8 + 8 + 32

// tmpSuffix marks in-progress writes. Writes land in "<id>.<rand>.tmp" next
// to their record and are renamed into place; any *.tmp file seen at open is
// the residue of a crash mid-write and is deleted during the index rebuild.
const tmpSuffix = ".tmp"

// FS is the filesystem-backed store: one directory per kind, one file per
// record, atomic replace-on-write, and an in-memory index rebuilt by
// scanning the tree at open.
type FS struct {
	root string

	mu     sync.Mutex
	index  map[string]map[string]int64 // kind → id → payload bytes
	closed bool

	counters counters
}

// OpenFS opens (creating if needed) a filesystem store rooted at dir and
// rebuilds its index by walking the tree: stray temp files from interrupted
// writes are deleted, and records whose header or length is implausible are
// dropped, so a crash mid-write can never resurface as a torn or phantom
// entry.
func OpenFS(dir string) (*FS, error) {
	if dir == "" {
		return nil, fmt.Errorf("store: empty directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: creating %s: %w", dir, err)
	}
	s := &FS{root: dir, index: map[string]map[string]int64{}}
	if err := s.rebuild(); err != nil {
		return nil, err
	}
	return s, nil
}

// rebuild scans the tree into the index, removing write residue and torn
// records as it goes.
func (s *FS) rebuild() error {
	kinds, err := os.ReadDir(s.root)
	if err != nil {
		return fmt.Errorf("store: scanning %s: %w", s.root, err)
	}
	for _, kd := range kinds {
		if !kd.IsDir() || !validName(kd.Name()) {
			continue
		}
		kind := kd.Name()
		entries, err := os.ReadDir(filepath.Join(s.root, kind))
		if err != nil {
			return fmt.Errorf("store: scanning kind %s: %w", kind, err)
		}
		for _, e := range entries {
			if e.IsDir() {
				continue
			}
			name := e.Name()
			path := filepath.Join(s.root, kind, name)
			if strings.HasSuffix(name, tmpSuffix) {
				// Residue of a write interrupted before its rename: the
				// record it was replacing (if any) is still intact.
				os.Remove(path)
				s.counters.drop()
				continue
			}
			if !validName(name) {
				continue
			}
			n, ok := s.verifyHeader(path)
			if !ok {
				// Torn record: the header is incomplete or the payload is
				// shorter than the header promises. It can never be read
				// back, so drop it rather than index a phantom.
				os.Remove(path)
				s.counters.drop()
				continue
			}
			if s.index[kind] == nil {
				s.index[kind] = map[string]int64{}
			}
			s.index[kind][name] = n
		}
	}
	return nil
}

// verifyHeader checks a record's magic and that the file holds the full
// payload the header promises, returning the payload length. It reads only
// the header, so reopening a large store stays cheap; full checksum
// verification happens on Get.
func (s *FS) verifyHeader(path string) (int64, bool) {
	f, err := os.Open(path)
	if err != nil {
		return 0, false
	}
	defer f.Close()
	var hdr [fsHeaderSize]byte
	if _, err := f.Read(hdr[:]); err != nil {
		return 0, false
	}
	if !bytes.Equal(hdr[:8], fsMagic[:]) {
		return 0, false
	}
	n := binary.LittleEndian.Uint64(hdr[8:16])
	fi, err := f.Stat()
	if err != nil || n > (1<<40) || fi.Size() != int64(n)+fsHeaderSize {
		return 0, false
	}
	return int64(n), true
}

func (s *FS) path(kind, id string) string { return filepath.Join(s.root, kind, id) }

// Put implements Store. The record is written to a temp file in the kind's
// directory, fsync'd, renamed over the final name, and the directory is
// fsync'd — the standard atomic-replace recipe, so a crash at any point
// leaves either the old record or the new one.
func (s *FS) Put(kind, id string, data []byte) error {
	if err := checkNames(kind, id); err != nil {
		return err
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return fmt.Errorf("store: closed")
	}
	s.mu.Unlock()

	dir := filepath.Join(s.root, kind)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("store: creating %s: %w", dir, err)
	}
	var hdr [fsHeaderSize]byte
	copy(hdr[:8], fsMagic[:])
	binary.LittleEndian.PutUint64(hdr[8:16], uint64(len(data)))
	sum := sha256.Sum256(data)
	copy(hdr[16:48], sum[:])

	var nonce [6]byte
	if _, err := rand.Read(nonce[:]); err != nil {
		return fmt.Errorf("store: temp name: %w", err)
	}
	tmp := filepath.Join(dir, id+"."+hex.EncodeToString(nonce[:])+tmpSuffix)
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("store: creating temp file: %w", err)
	}
	if _, err := f.Write(hdr[:]); err == nil {
		_, err = f.Write(data)
	}
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: writing %s/%s: %w", kind, id, err)
	}
	if err := os.Rename(tmp, s.path(kind, id)); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: installing %s/%s: %w", kind, id, err)
	}
	syncDir(dir)

	s.mu.Lock()
	if s.index[kind] == nil {
		s.index[kind] = map[string]int64{}
	}
	s.index[kind][id] = int64(len(data))
	s.mu.Unlock()
	s.counters.put()
	return nil
}

// Get implements Store, verifying the record's checksum before returning it.
// A record that fails verification is dropped (and counted), so corruption
// surfaces as ErrNotFound rather than as garbage artifacts.
func (s *FS) Get(kind, id string) ([]byte, error) {
	if err := checkNames(kind, id); err != nil {
		return nil, err
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, fmt.Errorf("store: closed")
	}
	_, ok := s.index[kind][id]
	s.mu.Unlock()
	if !ok {
		s.counters.get(false)
		return nil, ErrNotFound
	}
	raw, err := os.ReadFile(s.path(kind, id))
	if err != nil {
		s.counters.get(false)
		if os.IsNotExist(err) {
			return nil, ErrNotFound
		}
		return nil, fmt.Errorf("store: reading %s/%s: %w", kind, id, err)
	}
	data, err := decodeRecord(raw)
	if err != nil {
		// Corrupt at rest: drop it so the failure is permanent and visible
		// in the stats, not a flaky read.
		s.dropRecord(kind, id)
		s.counters.get(false)
		return nil, fmt.Errorf("store: %s/%s: %w", kind, id, err)
	}
	s.counters.get(true)
	return data, nil
}

func decodeRecord(raw []byte) ([]byte, error) {
	if len(raw) < fsHeaderSize || !bytes.Equal(raw[:8], fsMagic[:]) {
		return nil, fmt.Errorf("%w (truncated or foreign record)", ErrNotFound)
	}
	n := binary.LittleEndian.Uint64(raw[8:16])
	if uint64(len(raw)-fsHeaderSize) != n {
		return nil, fmt.Errorf("%w (torn record)", ErrNotFound)
	}
	payload := raw[fsHeaderSize:]
	sum := sha256.Sum256(payload)
	if !bytes.Equal(sum[:], raw[16:48]) {
		return nil, fmt.Errorf("%w (checksum mismatch)", ErrNotFound)
	}
	return payload, nil
}

func (s *FS) dropRecord(kind, id string) {
	os.Remove(s.path(kind, id))
	s.mu.Lock()
	delete(s.index[kind], id)
	s.mu.Unlock()
	s.counters.drop()
}

// Delete implements Store.
func (s *FS) Delete(kind, id string) error {
	if err := checkNames(kind, id); err != nil {
		return err
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return fmt.Errorf("store: closed")
	}
	_, existed := s.index[kind][id]
	delete(s.index[kind], id)
	s.mu.Unlock()
	if existed {
		if err := os.Remove(s.path(kind, id)); err != nil && !os.IsNotExist(err) {
			return fmt.Errorf("store: deleting %s/%s: %w", kind, id, err)
		}
		syncDir(filepath.Join(s.root, kind))
	}
	s.counters.del()
	return nil
}

// List implements Store.
func (s *FS) List(kind string) ([]string, error) {
	if !validName(kind) {
		return nil, fmt.Errorf("store: invalid kind %q", kind)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, fmt.Errorf("store: closed")
	}
	return sortedIDs(s.index[kind]), nil
}

// Stats implements Store.
func (s *FS) Stats() Stats {
	st := Stats{Backend: "fs", Path: s.root, PerKind: map[string]KindStats{}}
	s.mu.Lock()
	for kind, ids := range s.index {
		ks := KindStats{Entries: len(ids)}
		for _, n := range ids {
			ks.Bytes += n
		}
		if ks.Entries > 0 {
			st.PerKind[kind] = ks
			st.Entries += ks.Entries
			st.Bytes += ks.Bytes
		}
	}
	s.mu.Unlock()
	s.counters.fill(&st)
	return st
}

// Close implements Store. Writes are already fsync'd individually, so Close
// only marks the store unusable.
func (s *FS) Close() error {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	return nil
}

// syncDir fsyncs a directory so a just-renamed record survives power loss.
// Errors are ignored: some filesystems reject directory fsync, and the
// rename itself already ordered the data writes.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
}
