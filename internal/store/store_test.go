package store

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
)

// backends returns one fresh store per implementation, plus a reopen
// function (nil for backends without durability).
func backends(t *testing.T) map[string]func(t *testing.T) (Store, func() Store) {
	return map[string]func(t *testing.T) (Store, func() Store){
		"memory": func(t *testing.T) (Store, func() Store) {
			return NewMemory(), nil
		},
		"fs": func(t *testing.T) (Store, func() Store) {
			dir := t.TempDir()
			s, err := OpenFS(dir)
			if err != nil {
				t.Fatal(err)
			}
			return s, func() Store {
				s2, err := OpenFS(dir)
				if err != nil {
					t.Fatal(err)
				}
				return s2
			}
		},
	}
}

func TestRoundTrip(t *testing.T) {
	for name, mk := range backends(t) {
		t.Run(name, func(t *testing.T) {
			s, reopen := mk(t)
			defer s.Close()

			if _, err := s.Get("program", "nope"); !errors.Is(err, ErrNotFound) {
				t.Fatalf("missing record: got %v, want ErrNotFound", err)
			}
			data := []byte("compiled program artifact")
			if err := s.Put("program", "abc123", data); err != nil {
				t.Fatal(err)
			}
			got, err := s.Get("program", "abc123")
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, data) {
				t.Fatalf("got %q, want %q", got, data)
			}
			// Overwrite.
			if err := s.Put("program", "abc123", []byte("v2")); err != nil {
				t.Fatal(err)
			}
			if got, _ := s.Get("program", "abc123"); string(got) != "v2" {
				t.Fatalf("after overwrite: got %q", got)
			}
			// Second kind, same id: independent namespaces.
			if err := s.Put("result", "abc123", []byte("r")); err != nil {
				t.Fatal(err)
			}
			ids, err := s.List("program")
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(ids, []string{"abc123"}) {
				t.Fatalf("List(program) = %v", ids)
			}
			st := s.Stats()
			if st.Entries != 2 || st.PerKind["program"].Entries != 1 || st.PerKind["result"].Entries != 1 {
				t.Fatalf("stats: %+v", st)
			}
			if err := s.Delete("program", "abc123"); err != nil {
				t.Fatal(err)
			}
			if _, err := s.Get("program", "abc123"); !errors.Is(err, ErrNotFound) {
				t.Fatalf("after delete: got %v, want ErrNotFound", err)
			}
			if err := s.Delete("program", "abc123"); err != nil {
				t.Fatalf("double delete must be a no-op: %v", err)
			}

			if reopen != nil {
				s.Close()
				s2 := reopen()
				defer s2.Close()
				got, err := s2.Get("result", "abc123")
				if err != nil || string(got) != "r" {
					t.Fatalf("after reopen: %q, %v", got, err)
				}
				if _, err := s2.Get("program", "abc123"); !errors.Is(err, ErrNotFound) {
					t.Fatalf("deleted record resurfaced after reopen: %v", err)
				}
			}
		})
	}
}

func TestInvalidNames(t *testing.T) {
	for name, mk := range backends(t) {
		t.Run(name, func(t *testing.T) {
			s, _ := mk(t)
			defer s.Close()
			// "backup.tmp" would be swept as crash residue at the next
			// reopen, so it must be rejected up front.
			for _, bad := range []string{"", ".", "..", "a/b", "a\\b", ".hidden", "a b", "x\x00y", "backup.tmp"} {
				if err := s.Put(bad, "id", nil); err == nil {
					t.Errorf("Put accepted kind %q", bad)
				}
				if err := s.Put("kind", bad, nil); err == nil {
					t.Errorf("Put accepted id %q", bad)
				}
			}
		})
	}
}

func TestClosedStoreRejects(t *testing.T) {
	for name, mk := range backends(t) {
		t.Run(name, func(t *testing.T) {
			s, _ := mk(t)
			s.Close()
			if err := s.Put("k", "id", []byte("x")); err == nil {
				t.Error("Put on closed store succeeded")
			}
			if _, err := s.Get("k", "id"); err == nil {
				t.Error("Get on closed store succeeded")
			}
		})
	}
}

func TestConcurrentAccess(t *testing.T) {
	for name, mk := range backends(t) {
		t.Run(name, func(t *testing.T) {
			s, _ := mk(t)
			defer s.Close()
			var wg sync.WaitGroup
			for g := 0; g < 8; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					for i := 0; i < 20; i++ {
						id := fmt.Sprintf("id-%d-%d", g, i)
						if err := s.Put("k", id, []byte(id)); err != nil {
							t.Error(err)
							return
						}
						if got, err := s.Get("k", id); err != nil || string(got) != id {
							t.Errorf("Get(%s): %q, %v", id, got, err)
							return
						}
					}
				}(g)
			}
			wg.Wait()
			ids, err := s.List("k")
			if err != nil || len(ids) != 160 {
				t.Fatalf("List: %d ids, %v", len(ids), err)
			}
		})
	}
}

// TestCrashConsistency simulates a process killed mid-write: stray temp
// files and torn (truncated) records are left on disk, and reopening must
// rebuild an index with no torn or phantom entries while keeping every
// intact record readable.
func TestCrashConsistency(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenFS(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("program", "intact", []byte("survives")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("program", "torn", bytes.Repeat([]byte("x"), 4096)); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("result", "job1", []byte("result-bytes")); err != nil {
		t.Fatal(err)
	}
	s.Close()

	// Crash residue 1: an in-progress temp write that never got renamed.
	tmp := filepath.Join(dir, "program", "victim.a1b2c3.tmp")
	if err := os.WriteFile(tmp, []byte("half a record"), 0o644); err != nil {
		t.Fatal(err)
	}
	// Crash residue 2: a record truncated below the header size.
	short := filepath.Join(dir, "result", "shorty")
	if err := os.WriteFile(short, []byte("EVA"), 0o644); err != nil {
		t.Fatal(err)
	}
	// Crash residue 3: a record whose payload is shorter than its header
	// promises (torn tail).
	raw, err := os.ReadFile(filepath.Join(dir, "program", "torn"))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "program", "torn"), raw[:len(raw)-1000], 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := OpenFS(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()

	// The intact records survive.
	if got, err := s2.Get("program", "intact"); err != nil || string(got) != "survives" {
		t.Fatalf("intact record: %q, %v", got, err)
	}
	if got, err := s2.Get("result", "job1"); err != nil || string(got) != "result-bytes" {
		t.Fatalf("result record: %q, %v", got, err)
	}
	// The torn and phantom records are gone from the index and from disk.
	for _, probe := range []struct{ kind, id string }{
		{"program", "torn"}, {"result", "shorty"}, {"program", "victim"},
	} {
		if _, err := s2.Get(probe.kind, probe.id); !errors.Is(err, ErrNotFound) {
			t.Errorf("%s/%s: got %v, want ErrNotFound", probe.kind, probe.id, err)
		}
	}
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Error("stray temp file survived the reopen")
	}
	ids, err := s2.List("program")
	if err != nil || !reflect.DeepEqual(ids, []string{"intact"}) {
		t.Fatalf("List(program) after crash = %v, %v", ids, err)
	}
	if st := s2.Stats(); st.Dropped == 0 {
		t.Error("dropped counter did not record the cleanup")
	}
}

// TestCorruptionDetectedOnGet flips payload bytes in place: the checksum
// must catch it, the record must be dropped, and the failure must be
// permanent (ErrNotFound afterwards), not a flaky read.
func TestCorruptionDetectedOnGet(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenFS(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Put("context", "ctx1", bytes.Repeat([]byte("k"), 1024)); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "context", "ctx1")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[fsHeaderSize+10] ^= 0xFF
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get("context", "ctx1"); err == nil {
		t.Fatal("corrupted record returned without error")
	}
	if _, err := s.Get("context", "ctx1"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("second read: got %v, want ErrNotFound", err)
	}
	if st := s.Stats(); st.Dropped != 1 {
		t.Errorf("Dropped = %d, want 1", st.Dropped)
	}
}

// TestAtomicOverwrite: a Put over an existing record either fully replaces
// it or leaves the old value — the temp+rename dance means a reader can
// never observe a mix. Exercised by hammering overwrites against readers.
func TestAtomicOverwrite(t *testing.T) {
	s, err := OpenFS(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	vals := [][]byte{bytes.Repeat([]byte("A"), 2048), bytes.Repeat([]byte("B"), 2048)}
	if err := s.Put("k", "id", vals[0]); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			if err := s.Put("k", "id", vals[i%2]); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	for i := 0; i < 200; i++ {
		got, err := s.Get("k", "id")
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, vals[0]) && !bytes.Equal(got, vals[1]) {
			t.Fatal("observed a torn record during concurrent overwrite")
		}
	}
	<-done
}
