package store

import (
	"fmt"
	"sync"
)

// Memory is the in-memory Store: the same semantics as FS minus durability.
// It backs tests and nodes that run without a -data-dir.
type Memory struct {
	mu     sync.Mutex
	kinds  map[string]map[string][]byte
	closed bool

	counters counters
}

// NewMemory returns an empty in-memory store.
func NewMemory() *Memory {
	return &Memory{kinds: map[string]map[string][]byte{}}
}

// Put implements Store.
func (s *Memory) Put(kind, id string, data []byte) error {
	if err := checkNames(kind, id); err != nil {
		return err
	}
	cp := append([]byte(nil), data...)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("store: closed")
	}
	if s.kinds[kind] == nil {
		s.kinds[kind] = map[string][]byte{}
	}
	s.kinds[kind][id] = cp
	s.counters.put()
	return nil
}

// Get implements Store.
func (s *Memory) Get(kind, id string) ([]byte, error) {
	if err := checkNames(kind, id); err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, fmt.Errorf("store: closed")
	}
	data, ok := s.kinds[kind][id]
	s.counters.get(ok)
	if !ok {
		return nil, ErrNotFound
	}
	return append([]byte(nil), data...), nil
}

// Delete implements Store.
func (s *Memory) Delete(kind, id string) error {
	if err := checkNames(kind, id); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("store: closed")
	}
	delete(s.kinds[kind], id)
	s.counters.del()
	return nil
}

// List implements Store.
func (s *Memory) List(kind string) ([]string, error) {
	if !validName(kind) {
		return nil, fmt.Errorf("store: invalid kind %q", kind)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, fmt.Errorf("store: closed")
	}
	sizes := make(map[string]int64, len(s.kinds[kind]))
	for id := range s.kinds[kind] {
		sizes[id] = 0
	}
	return sortedIDs(sizes), nil
}

// Stats implements Store.
func (s *Memory) Stats() Stats {
	st := Stats{Backend: "memory", PerKind: map[string]KindStats{}}
	s.mu.Lock()
	for kind, ids := range s.kinds {
		ks := KindStats{Entries: len(ids)}
		for _, data := range ids {
			ks.Bytes += int64(len(data))
		}
		if ks.Entries > 0 {
			st.PerKind[kind] = ks
			st.Entries += ks.Entries
			st.Bytes += ks.Bytes
		}
	}
	s.mu.Unlock()
	s.counters.fill(&st)
	return st
}

// Close implements Store.
func (s *Memory) Close() error {
	s.mu.Lock()
	s.closed = true
	s.kinds = map[string]map[string][]byte{}
	s.mu.Unlock()
	return nil
}
