package coalesce

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"eva/internal/execute"
)

// instance is one randomly generated packing problem: a vector size, a
// stride, and per-caller input vectors of random lengths in 1..stride.
type instance struct {
	VecSize int
	Stride  int
	Inputs  [][]float64
}

// Generate implements quick.Generator: power-of-two geometry with
// 1..capacity callers, so every generated instance is admissible.
func (instance) Generate(r *rand.Rand, _ int) reflect.Value {
	vecSize := 1 << (2 + r.Intn(11)) // 4..8192
	stride := 1 << r.Intn(log2(vecSize))
	n := 1 + r.Intn(vecSize/stride)
	inputs := make([][]float64, n)
	for j := range inputs {
		v := make([]float64, 1+r.Intn(stride))
		for i := range v {
			v[i] = r.NormFloat64()
		}
		inputs[j] = v
	}
	return reflect.ValueOf(instance{VecSize: vecSize, Stride: stride, Inputs: inputs})
}

func log2(v int) int {
	n := 0
	for v > 1 {
		v >>= 1
		n++
	}
	return n
}

// TestLayoutProperties: for random admissible instances, PlanLayout's ranges
// are disjoint, width-aligned, in order, and within the vector.
func TestLayoutProperties(t *testing.T) {
	prop := func(in instance) bool {
		l, err := PlanLayout(in.VecSize, in.Stride, len(in.Inputs))
		if err != nil {
			t.Errorf("PlanLayout(%d,%d,%d): %v", in.VecSize, in.Stride, len(in.Inputs), err)
			return false
		}
		if len(l.Ranges) != len(in.Inputs) {
			return false
		}
		prevEnd := 0
		for _, r := range l.Ranges {
			if r.Width != in.Stride {
				t.Errorf("range width %d != stride %d", r.Width, in.Stride)
				return false
			}
			if r.Start%r.Width != 0 {
				t.Errorf("range start %d not aligned to width %d", r.Start, r.Width)
				return false
			}
			if r.Start < prevEnd {
				t.Errorf("range [%d,%d) overlaps previous end %d", r.Start, r.End(), prevEnd)
				return false
			}
			if r.End() > in.VecSize {
				t.Errorf("range end %d exceeds vec size %d", r.End(), in.VecSize)
				return false
			}
			prevEnd = r.End()
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestPackDemuxRoundTrip: pack → demux returns every caller's replicated
// plaintext exactly (pure float copying, no tolerance), and slots owned by
// no caller stay zero.
func TestPackDemuxRoundTrip(t *testing.T) {
	prop := func(in instance) bool {
		l, err := PlanLayout(in.VecSize, in.Stride, len(in.Inputs))
		if err != nil {
			t.Errorf("PlanLayout: %v", err)
			return false
		}
		packed, err := Pack(l, in.Inputs)
		if err != nil {
			t.Errorf("Pack: %v", err)
			return false
		}
		if len(packed) != in.VecSize {
			return false
		}
		for i := len(in.Inputs) * in.Stride; i < in.VecSize; i++ {
			if packed[i] != 0 {
				t.Errorf("unowned slot %d = %v; want 0", i, packed[i])
				return false
			}
		}
		out, err := Demux(l, packed)
		if err != nil {
			t.Errorf("Demux: %v", err)
			return false
		}
		for j, v := range in.Inputs {
			want := execute.Replicate(v, in.Stride)
			got := out[j]
			if len(got) != len(want) {
				t.Errorf("caller %d: %d slots; want %d", j, len(got), len(want))
				return false
			}
			for i := range want {
				if got[i] != want[i] { // exact: packing is copying
					t.Errorf("caller %d slot %d: got %v, want %v", j, i, got[i], want[i])
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestDemuxNeverAliases: mutating one caller's demuxed slice must not leak
// into another caller's slice or the shared vector.
func TestDemuxNeverAliases(t *testing.T) {
	l, err := PlanLayout(16, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	vec := make([]float64, 16)
	for i := range vec {
		vec[i] = float64(i)
	}
	out, err := Demux(l, vec)
	if err != nil {
		t.Fatal(err)
	}
	for i := range out[0] {
		out[0][i] = -1
	}
	if vec[0] != 0 {
		t.Error("mutating a demuxed slice wrote through to the shared vector")
	}
	for j := 1; j < len(out); j++ {
		for i, v := range out[j] {
			if v != float64(l.Ranges[j].Start+i) {
				t.Fatalf("caller %d slot %d changed to %v after mutating caller 0", j, i, v)
			}
		}
	}
}

// TestPlanLayoutErrors: geometry violations are rejected, never mis-planned.
func TestPlanLayoutErrors(t *testing.T) {
	cases := []struct {
		name               string
		vecSize, stride, n int
	}{
		{"zero vec", 0, 1, 1},
		{"non-pow2 vec", 12, 4, 1},
		{"zero stride", 16, 0, 1},
		{"non-pow2 stride", 16, 3, 1},
		{"stride over vec", 8, 16, 1},
		{"zero callers", 16, 4, 0},
		{"over capacity", 16, 4, 5},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := PlanLayout(tc.vecSize, tc.stride, tc.n); err == nil {
				t.Errorf("PlanLayout(%d,%d,%d) succeeded; want error", tc.vecSize, tc.stride, tc.n)
			}
		})
	}
}

func TestPackErrors(t *testing.T) {
	l, err := PlanLayout(16, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Pack(l, [][]float64{{1}}); err == nil {
		t.Error("Pack with wrong caller count succeeded")
	}
	if _, err := Pack(l, [][]float64{{1}, {}}); err == nil {
		t.Error("Pack with empty input succeeded")
	}
	if _, err := Pack(l, [][]float64{{1}, {1, 2, 3, 4, 5}}); err == nil {
		t.Error("Pack with over-wide input succeeded")
	}
}

func TestCapacity(t *testing.T) {
	cases := []struct {
		vecSize, stride, maxBatch, want int
	}{
		{4096, 4, 0, 1024},
		{4096, 4, 64, 64},
		{16, 8, 0, 2},
		{16, 16, 0, 1},
		{16, 32, 0, 0},
		{16, 0, 8, 0},
	}
	for _, tc := range cases {
		if got := Capacity(tc.vecSize, tc.stride, tc.maxBatch); got != tc.want {
			t.Errorf("Capacity(%d,%d,%d) = %d; want %d", tc.vecSize, tc.stride, tc.maxBatch, got, tc.want)
		}
	}
}
