// Package coalesce implements cross-request SIMD batching for evaserve: it
// groups compatible submissions — same compiled program, same execution
// context — into one shared homomorphic execution, packing each caller's
// inputs into a disjoint slot range of the program's vector and
// demultiplexing per-caller result slices afterwards. EVA's whole premise is
// vector semantics over thousands of CKKS slots, yet one narrow request
// would otherwise occupy an entire ciphertext: a width-4 job wastes 4092 of
// 4096 slots. Packing k callers into one run amortizes every homomorphic
// operation k ways.
//
// The package has two layers. This file is the pure slot arithmetic —
// layouts, packing, demultiplexing — with no concurrency and no FHE
// dependencies, so it can be property-tested and fuzzed exhaustively; a
// packing bug here silently hands one tenant another tenant's slots, which
// is why the test layer is as load-bearing as the code. coalesce.go adds the
// runtime: a bounded batch per (program, context) key with a max-wait timer
// and a per-caller response channel.
//
// Slot semantics. An unbatched width-w caller has its inputs replicated
// across the full vector (full[i] = v[i mod len(v)]), so for a program with
// no rotations slot i of every result depends only on slot i of the inputs.
// Packing therefore writes caller j's tiled inputs into slots
// [j·w, (j+1)·w) and reads its results back from the same range; the
// cleartext in those slots is identical to the first w slots of the caller's
// own unbatched run. Rotations break this (they move data across range
// boundaries), which is why compat.go rejects programs that rotate.
package coalesce

import (
	"fmt"

	"eva/internal/execute"
)

// Range is one caller's slot range within a shared vector.
type Range struct {
	Start int `json:"start"`
	Width int `json:"width"`
}

// End returns the exclusive upper slot bound.
func (r Range) End() int { return r.Start + r.Width }

// Layout assigns disjoint, width-aligned slot ranges of a shared vector to
// the callers of one sealed batch, in submission order.
type Layout struct {
	VecSize int
	Stride  int
	Ranges  []Range
}

// Occupancy is the fraction of the vector's slots carrying caller data.
func (l Layout) Occupancy() float64 {
	if l.VecSize == 0 {
		return 0
	}
	used := 0
	for _, r := range l.Ranges {
		used += r.Width
	}
	return float64(used) / float64(l.VecSize)
}

// PlanLayout lays out n callers of width stride over a vecSize-slot vector:
// caller j gets slots [j·stride, (j+1)·stride). Both sizes must be powers of
// two (CKKS slot counts and EVA vector widths always are) with
// n·stride ≤ vecSize, so every range is stride-aligned and the ranges
// exactly tile a prefix of the vector.
func PlanLayout(vecSize, stride, n int) (Layout, error) {
	if vecSize <= 0 || vecSize&(vecSize-1) != 0 {
		return Layout{}, fmt.Errorf("coalesce: vector size %d is not a positive power of two", vecSize)
	}
	if stride <= 0 || stride&(stride-1) != 0 {
		return Layout{}, fmt.Errorf("coalesce: stride %d is not a positive power of two", stride)
	}
	if stride > vecSize {
		return Layout{}, fmt.Errorf("coalesce: stride %d exceeds vector size %d", stride, vecSize)
	}
	if n < 1 {
		return Layout{}, fmt.Errorf("coalesce: a layout needs at least one caller, got %d", n)
	}
	if n*stride > vecSize {
		return Layout{}, fmt.Errorf("coalesce: %d callers of width %d exceed the %d slots available", n, stride, vecSize)
	}
	l := Layout{VecSize: vecSize, Stride: stride, Ranges: make([]Range, n)}
	for j := range l.Ranges {
		l.Ranges[j] = Range{Start: j * stride, Width: stride}
	}
	return l, nil
}

// Capacity returns how many width-stride callers fit into a vecSize-slot
// vector, additionally bounded by maxBatch when maxBatch > 0.
func Capacity(vecSize, stride, maxBatch int) int {
	if stride <= 0 || vecSize < stride {
		return 0
	}
	c := vecSize / stride
	if maxBatch > 0 && c > maxBatch {
		c = maxBatch
	}
	return c
}

// Pack tiles each caller's input vector into its slot range of a fresh
// shared vector using execute.Replicate — the executor's own input-widening
// rule — so the cleartext a caller's slots carry is identical to its
// unbatched run: packed[range_j.Start+i] = inputs[j][i mod len(inputs[j])].
// Slots owned by no caller (a partially filled batch) are zero. Every input
// must have between 1 and stride values.
func Pack(l Layout, inputs [][]float64) ([]float64, error) {
	if len(inputs) != len(l.Ranges) {
		return nil, fmt.Errorf("coalesce: %d inputs for a layout of %d callers", len(inputs), len(l.Ranges))
	}
	packed := make([]float64, l.VecSize)
	for j, v := range inputs {
		if len(v) == 0 || len(v) > l.Stride {
			return nil, fmt.Errorf("coalesce: caller %d has %d values; want 1..%d", j, len(v), l.Stride)
		}
		r := l.Ranges[j]
		copy(packed[r.Start:r.End()], execute.Replicate(v, r.Width))
	}
	return packed, nil
}

// Demux slices one shared result vector back into per-caller copies:
// out[j][i] = vec[range_j.Start+i]. Every returned slice is a fresh copy —
// never an alias of vec or of another caller's slice — so handing a caller
// its result cannot leak co-batched tenants' slots, and the shared vector
// can be recycled. vec must cover every range of the layout.
func Demux(l Layout, vec []float64) ([][]float64, error) {
	for j, r := range l.Ranges {
		if r.Start < 0 || r.Width <= 0 || r.End() > len(vec) {
			return nil, fmt.Errorf("coalesce: caller %d range [%d,%d) is outside the %d-slot result", j, r.Start, r.End(), len(vec))
		}
	}
	out := make([][]float64, len(l.Ranges))
	for j, r := range l.Ranges {
		s := make([]float64, r.Width)
		copy(s, vec[r.Start:r.End()])
		out[j] = s
	}
	return out, nil
}
