package coalesce

import (
	"fmt"

	"eva/internal/compile"
	"eva/internal/core"
)

// Compatible decides whether a compiled program can host coalesced
// execution, and at what stride. The rules:
//
//   - The program must not rotate. A rotation moves data across slot-range
//     boundaries, so caller j's slots would read caller j±1's data; the
//     unbatched replicated encoding is immune (rotating a w-periodic vector
//     is a per-period rotation) but a packed one is not. Both compiler-era
//     and source rotations count — a rotation on an all-plain operand needs
//     no Galois key yet still crosses ranges.
//
//   - The stride is the widest leaf of the program (inputs and constants;
//     widths are powers of two, so the max is also the least common
//     multiple). Constants narrower than the stride tile identically into
//     every stride-aligned range, which keeps packed slots equal to the
//     unbatched cleartext.
//
//   - At least two callers must fit (stride·2 ≤ VecSize); a full-width
//     program has nothing to amortize.
func Compatible(res *compile.Result) (stride int, err error) {
	prog := res.Program
	for _, t := range prog.Terms() {
		if t.Op.IsRotation() {
			return 0, fmt.Errorf("coalesce: program %q rotates (op %s); rotations cross slot-range boundaries", prog.Name, t.Op)
		}
		if t.IsLeaf() && t.VecWidth > stride {
			stride = t.VecWidth
		}
	}
	if stride <= 0 {
		stride = 1
	}
	if stride*2 > prog.VecSize {
		return 0, fmt.Errorf("coalesce: program %q has width %d of %d slots; nothing to coalesce", prog.Name, stride, prog.VecSize)
	}
	return stride, nil
}

// CipherInputs returns the names of the program's encrypted inputs — the
// inputs a coalesced caller must supply as plaintext values (the server
// packs and encrypts them), since client-encrypted ciphertexts cannot be
// packed without one masking multiply per caller.
func CipherInputs(prog *core.Program) []string {
	var names []string
	for _, in := range prog.Inputs() {
		if in.InType == core.TypeCipher {
			names = append(names, in.Name)
		}
	}
	return names
}
