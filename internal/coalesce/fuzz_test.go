package coalesce

import (
	"encoding/binary"
	"math"
	"testing"
)

// FuzzDemux throws adversarial batch layouts and result vectors at Demux.
// The ranges are decoded raw from fuzz data — arbitrary starts and widths,
// including negative, zero, overlapping, and out-of-range — because Demux is
// the boundary where a corrupt layout would hand one tenant another
// tenant's slots. Invariants, for every input whatsoever:
//
//   - Demux never panics;
//   - on success, every returned slice has exactly its range's width, its
//     values are exactly the shared vector's slots for that range (no slot
//     from outside the range ever appears), and no slice aliases the shared
//     vector or another caller's slice;
//   - a layout with any out-of-range rule violation is rejected with an
//     error, never partially demuxed.
func FuzzDemux(f *testing.F) {
	// Seeds: a valid 2-caller layout, an overlapping one, a negative start,
	// a width past the vector, and an empty everything.
	f.Add(16, 4, 2, []byte{0, 4, 4, 4}, 16)
	f.Add(16, 4, 2, []byte{0, 8, 4, 8}, 16)
	f.Add(16, 4, 1, []byte{255, 4}, 16)
	f.Add(16, 4, 1, []byte{12, 8}, 16)
	f.Add(0, 0, 0, []byte{}, 0)

	f.Fuzz(func(t *testing.T, vecSize, stride, n int, rangeData []byte, vecLen int) {
		if vecLen < 0 || vecLen > 1<<14 {
			return
		}
		if n < 0 || n > 1<<10 {
			return
		}
		vec := make([]float64, vecLen)
		for i := range vec {
			vec[i] = math.Sqrt(float64(i + 1)) // distinct per slot, so leaks are visible
		}

		// Decode n ranges from the raw bytes: two signed values each, byte
		// pairs little-endian-ish, sign-extended via int16 so negatives occur.
		l := Layout{VecSize: vecSize, Stride: stride, Ranges: make([]Range, n)}
		for j := range l.Ranges {
			var s, w int16
			if len(rangeData) >= 4*(j+1) {
				s = int16(binary.LittleEndian.Uint16(rangeData[4*j:]))
				w = int16(binary.LittleEndian.Uint16(rangeData[4*j+2:]))
			}
			l.Ranges[j] = Range{Start: int(s), Width: int(w)}
		}

		out, err := Demux(l, vec) // must not panic, whatever the layout
		if err != nil {
			if out != nil {
				t.Fatalf("Demux returned both slices and error %v", err)
			}
			return
		}
		if len(out) != n {
			t.Fatalf("Demux returned %d slices for %d ranges", len(out), n)
		}
		for j, s := range out {
			r := l.Ranges[j]
			// Success implies every range was in bounds.
			if r.Start < 0 || r.Width <= 0 || r.End() > len(vec) {
				t.Fatalf("Demux accepted out-of-range rule %d: [%d,%d) over %d slots", j, r.Start, r.End(), len(vec))
			}
			if len(s) != r.Width {
				t.Fatalf("caller %d: %d slots for a width-%d range", j, len(s), r.Width)
			}
			for i := range s {
				if s[i] != vec[r.Start+i] {
					t.Fatalf("caller %d slot %d: got %v, want slot %d = %v — slots leaked across ranges", j, i, s[i], r.Start+i, vec[r.Start+i])
				}
			}
		}
		// No aliasing: scribble over every slice; the shared vector and the
		// other slices must keep their per-slot-unique values.
		for _, s := range out {
			for i := range s {
				s[i] = -1
			}
		}
		for i := range vec {
			if vec[i] != math.Sqrt(float64(i+1)) {
				t.Fatalf("demuxed slice aliases the shared vector at slot %d", i)
			}
		}
	})
}
