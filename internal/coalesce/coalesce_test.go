package coalesce

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// echoRunner delivers every caller its own packed inputs back, labelling the
// batch, so tests can see exactly which batch a caller rode and with whom.
func echoRunner(batchSeq *atomic.Int64) func(*Batch) {
	return func(b *Batch) {
		id := fmt.Sprintf("batch-%d", batchSeq.Add(1))
		b.SetID(id)
		start := time.Now()
		for j := range b.Requests() {
			b.Deliver(j, j, nil)
		}
		b.Done(time.Since(start))
	}
}

func testRequest(key Key) *Request {
	return &Request{Key: key, VecSize: 16, Stride: 4, Inputs: map[string][]float64{"x": {1}}}
}

// TestSealAtCapacity: capacity callers seal and run a batch immediately,
// without waiting for the timer, and everyone shares one batch id.
func TestSealAtCapacity(t *testing.T) {
	var seq atomic.Int64
	c := New(Config{MaxBatch: 4, MaxWait: time.Hour, Run: echoRunner(&seq)})
	defer c.Close()
	key := Key{Program: "p", Context: "c"}

	var wg sync.WaitGroup
	deliveries := make([]Delivery, 4)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			d, err := c.Submit(context.Background(), testRequest(key))
			if err != nil {
				t.Errorf("caller %d: %v", i, err)
				return
			}
			deliveries[i] = d
		}(i)
	}
	wg.Wait()

	slots := map[int]bool{}
	for i, d := range deliveries {
		if d.BatchID != "batch-1" {
			t.Errorf("caller %d rode %q; want batch-1", i, d.BatchID)
		}
		if d.BatchSize != 4 {
			t.Errorf("caller %d batch size %d; want 4", i, d.BatchSize)
		}
		if d.Slot.Width != 4 || d.Slot.Start%4 != 0 || slots[d.Slot.Start] {
			t.Errorf("caller %d got slot %+v (dup=%v)", i, d.Slot, slots[d.Slot.Start])
		}
		slots[d.Slot.Start] = true
	}
	s := c.Stats()
	if s.Batches != 1 || s.Requests != 4 {
		t.Errorf("stats = %+v; want 1 batch, 4 requests", s)
	}
	if s.Occupancy != 1.0 {
		t.Errorf("occupancy = %v; want 1.0 (4 callers × stride 4 / 16 slots)", s.Occupancy)
	}
}

// TestSealOnTimer: a lone caller's batch runs after MaxWait even though the
// batch never fills.
func TestSealOnTimer(t *testing.T) {
	var seq atomic.Int64
	c := New(Config{MaxBatch: 8, MaxWait: 10 * time.Millisecond, Run: echoRunner(&seq)})
	defer c.Close()
	d, err := c.Submit(context.Background(), testRequest(Key{Program: "p", Context: "c"}))
	if err != nil {
		t.Fatal(err)
	}
	if d.BatchSize != 1 {
		t.Errorf("batch size %d; want 1", d.BatchSize)
	}
	if got := c.Stats().LastBatchOccupancy; got != 0.25 {
		t.Errorf("last occupancy %v; want 0.25 (1 caller × stride 4 / 16 slots)", got)
	}
}

// TestKeysDoNotMix: different (program, context) keys never share a batch.
func TestKeysDoNotMix(t *testing.T) {
	var seq atomic.Int64
	c := New(Config{MaxBatch: 8, MaxWait: 10 * time.Millisecond, Run: echoRunner(&seq)})
	defer c.Close()
	var wg sync.WaitGroup
	ids := make([]string, 2)
	for i, key := range []Key{{Program: "p1", Context: "c"}, {Program: "p2", Context: "c"}} {
		wg.Add(1)
		go func(i int, key Key) {
			defer wg.Done()
			d, err := c.Submit(context.Background(), testRequest(key))
			if err != nil {
				t.Errorf("caller %d: %v", i, err)
				return
			}
			ids[i] = d.BatchID
		}(i, key)
	}
	wg.Wait()
	if ids[0] == ids[1] {
		t.Errorf("different programs coalesced into one batch %q", ids[0])
	}
}

// TestPreSealEviction: a caller cancelling before the seal leaves the batch;
// the survivors run without it and the evicted caller gets its ctx error.
func TestPreSealEviction(t *testing.T) {
	var seq atomic.Int64
	c := New(Config{MaxBatch: 8, MaxWait: 50 * time.Millisecond, Run: echoRunner(&seq)})
	defer c.Close()
	key := Key{Program: "p", Context: "c"}

	ctx, cancel := context.WithCancel(context.Background())
	evicted := make(chan error, 1)
	go func() {
		_, err := c.Submit(ctx, testRequest(key))
		evicted <- err
	}()
	// Wait until the first caller is parked, then cancel it.
	deadline := time.Now().Add(5 * time.Second)
	for c.Stats().OpenWaiters == 0 {
		if time.Now().After(deadline) {
			t.Fatal("first caller never parked")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-evicted; !errors.Is(err, context.Canceled) {
		t.Fatalf("evicted caller got %v; want context.Canceled", err)
	}

	d, err := c.Submit(context.Background(), testRequest(key))
	if err != nil {
		t.Fatal(err)
	}
	if d.BatchSize != 1 {
		t.Errorf("survivor's batch size %d; want 1 (evicted caller still aboard)", d.BatchSize)
	}
	if s := c.Stats(); s.Evicted != 1 {
		t.Errorf("evicted = %d; want 1", s.Evicted)
	}
}

// TestEvictionEmptiesBatch: when the only waiter cancels pre-seal, the batch
// is discarded — the timer firing later must not dispatch an empty batch.
func TestEvictionEmptiesBatch(t *testing.T) {
	var ran atomic.Int64
	c := New(Config{MaxBatch: 8, MaxWait: 20 * time.Millisecond, Run: func(b *Batch) {
		ran.Add(1)
		b.FailAll(errors.New("should not run"))
	}})
	defer c.Close()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := c.Submit(ctx, testRequest(Key{Program: "p", Context: "c"}))
		done <- err
	}()
	deadline := time.Now().Add(5 * time.Second)
	for c.Stats().OpenWaiters == 0 {
		if time.Now().After(deadline) {
			t.Fatal("caller never parked")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	<-done
	time.Sleep(60 * time.Millisecond) // let the max-wait timer fire
	if n := ran.Load(); n != 0 {
		t.Errorf("empty batch dispatched %d times", n)
	}
}

// TestPostSealAbandonment: callers cancelling after the seal don't disturb
// co-batched peers; when ALL of them abandon, the runner's cancel hook fires.
func TestPostSealAbandonment(t *testing.T) {
	release := make(chan struct{})
	cancelled := make(chan struct{}, 1)
	c := New(Config{MaxBatch: 2, MaxWait: time.Hour, Run: func(b *Batch) {
		b.SetID("held")
		b.SetCancel(func() { cancelled <- struct{}{} })
		<-release // hold the batch "running" until the test releases it
		for j := range b.Requests() {
			b.Deliver(j, j, nil)
		}
	}})
	defer c.Close()
	key := Key{Program: "p", Context: "c"}

	ctx1, cancel1 := context.WithCancel(context.Background())
	ctx2, cancel2 := context.WithCancel(context.Background())
	errs := make(chan error, 2)
	go func() { _, err := c.Submit(ctx1, testRequest(key)); errs <- err }()
	go func() { _, err := c.Submit(ctx2, testRequest(key)); errs <- err }()

	// Both callers seal the batch (capacity 2); the runner is now holding it.
	deadline := time.Now().Add(5 * time.Second)
	for c.Stats().Batches == 0 {
		if time.Now().After(deadline) {
			t.Fatal("batch never sealed")
		}
		time.Sleep(time.Millisecond)
	}
	cancel1()
	if err := <-errs; !errors.Is(err, context.Canceled) {
		t.Fatalf("first abandoner got %v", err)
	}
	select {
	case <-cancelled:
		t.Fatal("batch cancel hook fired with a live caller still aboard")
	case <-time.After(20 * time.Millisecond):
	}
	cancel2()
	if err := <-errs; !errors.Is(err, context.Canceled) {
		t.Fatalf("second abandoner got %v", err)
	}
	select {
	case <-cancelled: // all callers gone → the whole batch is cancelled
	case <-time.After(5 * time.Second):
		t.Fatal("cancel hook never fired after every caller abandoned")
	}
	close(release)
	if s := c.Stats(); s.Abandoned != 2 || s.CancelledBatches != 1 {
		t.Errorf("stats = %+v; want 2 abandoned, 1 cancelled batch", s)
	}
}

// TestGeometryMismatch: a request whose geometry disagrees with the open
// batch for the same key is rejected (defense in depth; the serve layer
// derives both from the same compiled program).
func TestGeometryMismatch(t *testing.T) {
	var seq atomic.Int64
	c := New(Config{MaxBatch: 8, MaxWait: 50 * time.Millisecond, Run: echoRunner(&seq)})
	defer c.Close()
	key := Key{Program: "p", Context: "c"}
	go c.Submit(context.Background(), testRequest(key))
	deadline := time.Now().Add(5 * time.Second)
	for c.Stats().OpenWaiters == 0 {
		if time.Now().After(deadline) {
			t.Fatal("caller never parked")
		}
		time.Sleep(time.Millisecond)
	}
	bad := &Request{Key: key, VecSize: 32, Stride: 4, Inputs: map[string][]float64{"x": {1}}}
	if _, err := c.Submit(context.Background(), bad); err == nil {
		t.Fatal("mismatched geometry was accepted into the batch")
	}
}

// TestCloseFailsWaiters: Close fails parked callers with ErrClosed and
// rejects later submissions.
func TestCloseFailsWaiters(t *testing.T) {
	c := New(Config{MaxBatch: 8, MaxWait: time.Hour, Run: func(b *Batch) {}})
	errs := make(chan error, 1)
	go func() {
		_, err := c.Submit(context.Background(), testRequest(Key{Program: "p", Context: "c"}))
		errs <- err
	}()
	deadline := time.Now().Add(5 * time.Second)
	for c.Stats().OpenWaiters == 0 {
		if time.Now().After(deadline) {
			t.Fatal("caller never parked")
		}
		time.Sleep(time.Millisecond)
	}
	c.Close()
	if err := <-errs; !errors.Is(err, ErrClosed) {
		t.Fatalf("parked caller got %v; want ErrClosed", err)
	}
	if _, err := c.Submit(context.Background(), testRequest(Key{Program: "p", Context: "c"})); !errors.Is(err, ErrClosed) {
		t.Fatalf("post-close submit got %v; want ErrClosed", err)
	}
}

// TestRunFailureFansOut: a runner failure reaches every co-batched caller.
func TestRunFailureFansOut(t *testing.T) {
	boom := errors.New("boom")
	c := New(Config{MaxBatch: 2, MaxWait: time.Hour, Run: func(b *Batch) { b.FailAll(boom) }})
	defer c.Close()
	key := Key{Program: "p", Context: "c"}
	errs := make(chan error, 2)
	for i := 0; i < 2; i++ {
		go func() {
			_, err := c.Submit(context.Background(), testRequest(key))
			errs <- err
		}()
	}
	for i := 0; i < 2; i++ {
		if err := <-errs; !errors.Is(err, boom) {
			t.Errorf("caller got %v; want boom", err)
		}
	}
}
