package coalesce

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"sync"
	"time"

	"eva/internal/obs"
)

// This file is the coalescer runtime: one bounded batch per (program,
// context) key, sealed either when it reaches capacity or when a max-wait
// timer expires, whichever comes first. Every caller blocks on its own
// response channel; cancelling a caller before its batch seals evicts just
// that caller (the batch keeps filling), cancelling after the seal abandons
// the delivery without disturbing co-batched requests, and a batch whose
// callers have all abandoned it is cancelled as a whole through a hook the
// runner installs.

// ErrClosed rejects submissions after Close.
var ErrClosed = errors.New("coalesce: coalescer is closed")

// Key identifies a coalescing group: only requests against the same
// compiled program and the same execution context may share a ciphertext.
type Key struct {
	Program string
	Context string
}

// Request is one caller's submission. Inputs maps every program input name
// to this caller's vector (1..Stride values; the runner packs encrypted and
// plain inputs alike). VecSize and Stride are properties of the compiled
// program and must agree across all requests for a key.
type Request struct {
	Key     Key
	VecSize int
	Stride  int
	Inputs  map[string][]float64
}

// Delivery is what a successful Submit returns: the caller's demuxed
// payload (typed by the runner) plus the placement facts a client may want
// to report — which batch it rode, where its slots were, how full the
// ciphertext was, and how long it waited for the batch to seal.
type Delivery struct {
	BatchID   string
	BatchSize int
	Slot      Range
	Occupancy float64
	WaitMS    float64
	Payload   any
}

type outcome struct {
	d   Delivery
	err error
}

// waiter is one enqueued caller.
type waiter struct {
	req      *Request
	ch       chan outcome // buffered(1): delivery never blocks on an abandoned caller
	enqueued time.Time
}

// Batch is a group of callers sealed into one shared execution. The runner
// receives it after the seal, when the waiter list is frozen.
type Batch struct {
	Key     Key
	VecSize int
	Stride  int

	c        *Coalescer
	mu       sync.Mutex
	waiters  []*waiter
	sealed   bool
	layout   Layout
	timer    *time.Timer
	id       string
	live     int // waiters that have not abandoned the sealed batch
	cancel   func()
	allGone  bool
	opened   time.Time
	sealedAt time.Time
}

// Size returns the number of callers sealed into the batch.
func (b *Batch) Size() int { return len(b.waiters) }

// Layout returns the slot layout frozen at seal time.
func (b *Batch) Layout() Layout { return b.layout }

// Requests returns the sealed callers' requests in slot order: request j
// owns b.Layout().Ranges[j].
func (b *Batch) Requests() []*Request {
	reqs := make([]*Request, len(b.waiters))
	for i, w := range b.waiters {
		reqs[i] = w.req
	}
	return reqs
}

// SetID labels the batch (the runner uses the underlying job id); it is
// echoed in every Delivery.
func (b *Batch) SetID(id string) {
	b.mu.Lock()
	b.id = id
	b.mu.Unlock()
}

// SetCancel installs the runner's whole-batch cancellation hook, invoked
// once if every caller abandons the sealed batch before delivery. If that
// already happened, the hook runs immediately.
func (b *Batch) SetCancel(fn func()) {
	b.mu.Lock()
	b.cancel = fn
	gone := b.allGone
	b.mu.Unlock()
	if gone && fn != nil {
		fn()
	}
}

// Deliver completes caller j (slot order) with its demuxed payload. It never
// blocks: abandoned callers' channels are buffered and garbage-collected.
func (b *Batch) Deliver(j int, payload any, err error) {
	b.mu.Lock()
	w := b.waiters[j]
	d := Delivery{
		BatchID:   b.id,
		BatchSize: len(b.waiters),
		Slot:      b.layout.Ranges[j],
		Occupancy: b.layout.Occupancy(),
		WaitMS:    float64(b.sealedAt.Sub(w.enqueued)) / float64(time.Millisecond),
		Payload:   payload,
	}
	b.mu.Unlock()
	w.ch <- outcome{d: d, err: err}
}

// FailAll completes every caller with the same error (admission shed,
// packing failure, execution failure).
func (b *Batch) FailAll(err error) {
	for j := range b.waiters {
		b.Deliver(j, nil, err)
	}
}

// Done records the sealed batch's execution wall time into the coalescer's
// aggregate statistics; the runner calls it once per batch.
func (b *Batch) Done(wall time.Duration) {
	c := b.c
	c.mu.Lock()
	c.stats.BatchWallMSTotal += float64(wall) / float64(time.Millisecond)
	c.mu.Unlock()
}

// Config configures a Coalescer.
type Config struct {
	// MaxBatch caps callers per batch (0 = 64); each batch is additionally
	// bounded by its program's slot capacity VecSize/Stride.
	MaxBatch int
	// MaxWait bounds how long the first caller of a batch waits for
	// co-batched company before the batch is sealed anyway (0 = 25ms).
	MaxWait time.Duration
	// Run executes one sealed batch on its own goroutine: pack the callers'
	// inputs per Layout, run the shared execution, Deliver each caller's
	// slice (or FailAll), and record Done. Required.
	Run func(b *Batch)
	// Logger receives structured batch-seal records at debug level. Nil
	// discards.
	Logger *slog.Logger
}

func (c Config) withDefaults() Config {
	if c.MaxBatch <= 0 {
		c.MaxBatch = 64
	}
	if c.MaxWait <= 0 {
		c.MaxWait = 25 * time.Millisecond
	}
	if c.Logger == nil {
		c.Logger = obs.NopLogger()
	}
	return c
}

// Stats is the coalescer's aggregate view, exposed via evaserve /metrics.
type Stats struct {
	// OpenWaiters is the current number of callers waiting in unsealed
	// batches.
	OpenWaiters int    `json:"open_waiters"`
	Batches     uint64 `json:"batches"`
	// Requests counts callers sealed into dispatched batches.
	Requests uint64 `json:"coalesced_requests"`
	// Evicted counts callers cancelled before their batch sealed; Abandoned
	// counts callers cancelled after the seal (their batch kept running).
	Evicted   uint64 `json:"evicted_waiters"`
	Abandoned uint64 `json:"abandoned_waiters"`
	// CancelledBatches counts batches whose callers all abandoned them.
	CancelledBatches uint64 `json:"cancelled_batches"`
	// SlotsUsed / SlotsTotal accumulate per-batch slot occupancy:
	// caller-owned slots versus the full ciphertext capacity dispatched.
	SlotsUsed  uint64 `json:"slots_used"`
	SlotsTotal uint64 `json:"slots_total"`
	// Occupancy is SlotsUsed/SlotsTotal; MeanBatchSize is Requests/Batches.
	Occupancy     float64 `json:"occupancy"`
	MeanBatchSize float64 `json:"mean_batch_size"`
	// LastBatchSize / LastBatchOccupancy describe the most recently sealed
	// batch.
	LastBatchSize      int     `json:"last_batch_size"`
	LastBatchOccupancy float64 `json:"last_batch_occupancy"`
	// BatchWallMSTotal sums every batch's execution wall time; divided by
	// Requests it yields AmortizedRequestMS — the per-request cost of the
	// shared runs, the number batching exists to shrink.
	BatchWallMSTotal   float64 `json:"batch_wall_ms_total"`
	AmortizedRequestMS float64 `json:"amortized_request_ms"`
}

// Coalescer groups compatible requests into shared batches.
type Coalescer struct {
	cfg Config

	mu     sync.Mutex
	open   map[Key]*Batch
	closed bool
	stats  Stats
}

// New returns a running coalescer.
func New(cfg Config) *Coalescer {
	if cfg.Run == nil {
		panic("coalesce: Config.Run is required")
	}
	return &Coalescer{cfg: cfg.withDefaults(), open: map[Key]*Batch{}}
}

// Config returns the effective (defaulted) configuration.
func (c *Coalescer) Config() Config { return c.cfg }

// Submit enqueues one caller and blocks until its batch delivers, the
// caller's ctx is cancelled, or the coalescer closes. Input validation is
// the caller's job — a malformed request rejected here would already have
// joined a batch.
func (c *Coalescer) Submit(ctx context.Context, req *Request) (Delivery, error) {
	if err := ctx.Err(); err != nil {
		return Delivery{}, err
	}
	w := &waiter{req: req, ch: make(chan outcome, 1), enqueued: time.Now()}

	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return Delivery{}, ErrClosed
	}
	b := c.open[req.Key]
	if b == nil {
		b = &Batch{Key: req.Key, VecSize: req.VecSize, Stride: req.Stride, c: c, opened: time.Now()}
		b.timer = time.AfterFunc(c.cfg.MaxWait, func() { c.sealExpired(b) })
		c.open[req.Key] = b
	}
	if b.VecSize != req.VecSize || b.Stride != req.Stride {
		c.mu.Unlock()
		return Delivery{}, fmt.Errorf("coalesce: request geometry %d/%d does not match open batch %d/%d for the same program",
			req.VecSize, req.Stride, b.VecSize, b.Stride)
	}
	b.mu.Lock()
	b.waiters = append(b.waiters, w)
	full := len(b.waiters) >= Capacity(b.VecSize, b.Stride, c.cfg.MaxBatch)
	b.mu.Unlock()
	if full {
		c.sealLocked(b)
	}
	c.mu.Unlock()

	select {
	case out := <-w.ch:
		return out.d, out.err
	case <-ctx.Done():
		c.evict(b, w)
		return Delivery{}, ctx.Err()
	}
}

// sealExpired is the max-wait timer's path: seal whatever the batch holds.
// The batch may already have sealed at capacity (and a new batch may even
// have opened under the same key), so it seals only if b is still the open
// batch for its key.
func (c *Coalescer) sealExpired(b *Batch) {
	c.mu.Lock()
	if c.open[b.Key] == b && !c.closed {
		c.sealLocked(b)
	}
	c.mu.Unlock()
}

// sealLocked freezes the batch, removes it from the open table, records the
// dispatch statistics, and hands it to the runner. Caller holds c.mu.
func (c *Coalescer) sealLocked(b *Batch) {
	delete(c.open, b.Key)
	b.timer.Stop()
	b.mu.Lock()
	if b.sealed || len(b.waiters) == 0 {
		// Already dispatched, or every caller evicted before the timer fired.
		b.mu.Unlock()
		return
	}
	layout, err := PlanLayout(b.VecSize, b.Stride, len(b.waiters))
	if err != nil {
		// Unreachable when the serve layer validates geometry, but a sealed
		// batch must never dispatch with a broken layout.
		b.mu.Unlock()
		b.FailAll(err)
		return
	}
	b.sealed = true
	b.layout = layout
	b.live = len(b.waiters)
	b.sealedAt = time.Now()
	n := len(b.waiters)
	b.mu.Unlock()

	c.stats.Batches++
	c.stats.Requests += uint64(n)
	c.stats.SlotsUsed += uint64(n * b.Stride)
	c.stats.SlotsTotal += uint64(b.VecSize)
	c.stats.LastBatchSize = n
	c.stats.LastBatchOccupancy = layout.Occupancy()
	c.cfg.Logger.Debug("batch sealed",
		slog.String("program", b.Key.Program),
		slog.String("context", b.Key.Context),
		slog.Int("callers", n),
		slog.Float64("occupancy", layout.Occupancy()),
		slog.Duration("open_for", time.Since(b.opened)))
	go c.cfg.Run(b)
}

// evict handles a caller's cancellation. Before the seal the caller is
// removed outright — the batch keeps filling, and an emptied batch is
// discarded. After the seal its slots are already part of the in-flight
// execution, so the caller is only marked abandoned; when the last live
// caller abandons, the runner's cancel hook stops the now-pointless batch.
func (c *Coalescer) evict(b *Batch, w *waiter) {
	c.mu.Lock()
	b.mu.Lock()
	if !b.sealed {
		for i, other := range b.waiters {
			if other == w {
				b.waiters = append(b.waiters[:i], b.waiters[i+1:]...)
				break
			}
		}
		empty := len(b.waiters) == 0
		b.mu.Unlock()
		if empty && c.open[b.Key] == b {
			delete(c.open, b.Key)
			b.timer.Stop()
		}
		c.stats.Evicted++
		c.mu.Unlock()
		return
	}
	b.live--
	var cancel func()
	if b.live == 0 && !b.allGone {
		b.allGone = true
		cancel = b.cancel
		c.stats.CancelledBatches++
	}
	b.mu.Unlock()
	c.stats.Abandoned++
	c.mu.Unlock()
	if cancel != nil {
		cancel()
	}
}

// Stats snapshots the aggregate counters.
func (c *Coalescer) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	for _, b := range c.open {
		b.mu.Lock()
		s.OpenWaiters += len(b.waiters)
		b.mu.Unlock()
	}
	if s.SlotsTotal > 0 {
		s.Occupancy = float64(s.SlotsUsed) / float64(s.SlotsTotal)
	}
	if s.Batches > 0 {
		s.MeanBatchSize = float64(s.Requests) / float64(s.Batches)
	}
	if s.Requests > 0 {
		s.AmortizedRequestMS = s.BatchWallMSTotal / float64(s.Requests)
	}
	return s
}

// Close rejects future submissions and fails every caller still waiting in
// an unsealed batch with ErrClosed. Batches already dispatched run to
// completion under the runner's own lifecycle (evaserve ties them to the
// jobs manager, whose Close cancels them).
func (c *Coalescer) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	batches := make([]*Batch, 0, len(c.open))
	for k, b := range c.open {
		delete(c.open, k)
		batches = append(batches, b)
	}
	c.mu.Unlock()
	for _, b := range batches {
		b.timer.Stop()
		b.mu.Lock()
		waiters := append([]*waiter(nil), b.waiters...)
		b.mu.Unlock()
		for _, w := range waiters {
			w.ch <- outcome{err: ErrClosed}
		}
	}
}
