// Package rewrite implements the graph-rewriting framework and the
// transformation passes of the EVA compiler (Section 5 of the paper): rescale
// insertion (waterline and always variants), modulus-switch insertion (eager
// and lazy variants), scale matching, and relinearization insertion.
//
// Each pass is exposed individually so the benchmarks can ablate the design
// choices; Transform applies the paper's default pipeline
// (WATERLINE-RESCALE, EAGER-MODSWITCH, MATCH-SCALE, RELINEARIZE).
package rewrite

import (
	"fmt"

	"eva/internal/core"
)

// RescaleStrategy selects how RESCALE instructions are inserted.
type RescaleStrategy int

const (
	// RescaleWaterline is the paper's strategy: always divide by the maximum
	// allowed rescale value, and only when the result stays above the
	// waterline (the maximum input scale).
	RescaleWaterline RescaleStrategy = iota
	// RescaleAlways inserts a rescale after every multiplication, dividing by
	// the smaller operand scale (Figure 4, ALWAYS-RESCALE). It is provided
	// for the paper's illustrative comparison and for the CHET-style baseline.
	RescaleAlways
	// RescaleNone disables rescale insertion.
	RescaleNone
	// RescaleFixedMax inserts a rescale by the maximum allowed value after
	// every multiplication involving a ciphertext. It models the per-kernel
	// discipline of expert-written kernel libraries (the CHET baseline).
	RescaleFixedMax
)

// String returns the strategy's command-line/API name.
func (s RescaleStrategy) String() string {
	switch s {
	case RescaleWaterline:
		return "waterline"
	case RescaleAlways:
		return "always"
	case RescaleNone:
		return "none"
	case RescaleFixedMax:
		return "fixed"
	}
	return fmt.Sprintf("RescaleStrategy(%d)", int(s))
}

// ParseRescaleStrategy parses the command-line/API name of a rescale
// strategy: "waterline", "always", "fixed", or "none".
func ParseRescaleStrategy(s string) (RescaleStrategy, error) {
	switch s {
	case "waterline":
		return RescaleWaterline, nil
	case "always":
		return RescaleAlways, nil
	case "fixed":
		return RescaleFixedMax, nil
	case "none":
		return RescaleNone, nil
	}
	return 0, fmt.Errorf("rewrite: unknown rescale strategy %q (want waterline, always, fixed, or none)", s)
}

// ModSwitchStrategy selects how MOD_SWITCH instructions are inserted.
type ModSwitchStrategy int

const (
	// ModSwitchEager inserts modulus switches at the earliest feasible edge
	// (Figure 4, EAGER-MODSWITCH), the paper's default.
	ModSwitchEager ModSwitchStrategy = iota
	// ModSwitchLazy inserts modulus switches immediately before the
	// instruction whose operands disagree (Figure 4, LAZY-MODSWITCH).
	ModSwitchLazy
	// ModSwitchNone disables modulus-switch insertion.
	ModSwitchNone
)

// String returns the strategy's command-line/API name.
func (s ModSwitchStrategy) String() string {
	switch s {
	case ModSwitchEager:
		return "eager"
	case ModSwitchLazy:
		return "lazy"
	case ModSwitchNone:
		return "none"
	}
	return fmt.Sprintf("ModSwitchStrategy(%d)", int(s))
}

// ParseModSwitchStrategy parses the command-line/API name of a
// modulus-switch strategy: "eager", "lazy", or "none".
func ParseModSwitchStrategy(s string) (ModSwitchStrategy, error) {
	switch s {
	case "eager":
		return ModSwitchEager, nil
	case "lazy":
		return ModSwitchLazy, nil
	case "none":
		return ModSwitchNone, nil
	}
	return 0, fmt.Errorf("rewrite: unknown modswitch strategy %q (want eager, lazy, or none)", s)
}

// Options configures the transformation pipeline.
type Options struct {
	// MaxRescaleLog is log2 of the maximum allowed rescale value s_f
	// (Constraint 4). SEAL permits 60.
	MaxRescaleLog float64
	// WaterlineLog is log2 of the waterline s_w. Zero means "use the maximum
	// scale over all inputs and constants", the paper's choice.
	WaterlineLog float64
	Rescale      RescaleStrategy
	ModSwitch    ModSwitchStrategy
	// SkipMatchScale disables the MATCH-SCALE pass (for ablation only).
	SkipMatchScale bool
	// SkipRelinearize disables the RELINEARIZE pass (for ablation only).
	SkipRelinearize bool
}

// DefaultOptions returns the paper's default pipeline configuration.
func DefaultOptions() Options {
	return Options{MaxRescaleLog: 60, Rescale: RescaleWaterline, ModSwitch: ModSwitchEager}
}

// Transform applies the configured transformation passes to the program in
// place, in the order required by the rewrite rules of Figure 4.
func Transform(p *core.Program, opts Options) error {
	if opts.MaxRescaleLog <= 0 {
		opts.MaxRescaleLog = 60
	}
	switch opts.Rescale {
	case RescaleWaterline:
		if err := InsertRescaleWaterline(p, opts.MaxRescaleLog, opts.WaterlineLog); err != nil {
			return err
		}
	case RescaleAlways:
		if err := InsertRescaleAlways(p, opts.MaxRescaleLog); err != nil {
			return err
		}
	case RescaleFixedMax:
		if err := InsertRescaleFixed(p, opts.MaxRescaleLog); err != nil {
			return err
		}
	case RescaleNone:
	default:
		return fmt.Errorf("rewrite: unknown rescale strategy %d", opts.Rescale)
	}
	switch opts.ModSwitch {
	case ModSwitchEager:
		InsertModSwitchEager(p)
	case ModSwitchLazy:
		InsertModSwitchLazy(p)
	case ModSwitchNone:
	default:
		return fmt.Errorf("rewrite: unknown modswitch strategy %d", opts.ModSwitch)
	}
	if !opts.SkipMatchScale {
		if err := MatchScales(p); err != nil {
			return err
		}
	}
	if !opts.SkipRelinearize {
		InsertRelinearize(p)
	}
	return nil
}

// Waterline returns the waterline scale s_w for the program: the maximum
// log2 scale over all inputs and constants, as the paper prescribes.
func Waterline(p *core.Program) float64 {
	sw := 0.0
	for _, t := range p.TopoSort() {
		if t.IsLeaf() && t.LogScale > sw {
			sw = t.LogScale
		}
	}
	return sw
}

// ComputeLogScales propagates fixed-point scales (as log2 values) through the
// live graph: products add scales, rescales subtract their divisor, and all
// other instructions preserve the maximum operand scale.
func ComputeLogScales(p *core.Program) map[*core.Term]float64 {
	scales := make(map[*core.Term]float64, p.NumTerms())
	for _, t := range p.TopoSort() {
		scales[t] = scaleOf(t, scales)
	}
	return scales
}

// scaleOf computes the scale of t given the scales of its parameters.
func scaleOf(t *core.Term, scales map[*core.Term]float64) float64 {
	switch t.Op {
	case core.OpInput, core.OpConstant:
		return t.LogScale
	case core.OpMultiply:
		return scales[t.Parm(0)] + scales[t.Parm(1)]
	case core.OpRescale:
		return scales[t.Parm(0)] - t.LogScale
	case core.OpAdd, core.OpSub:
		a, b := scales[t.Parm(0)], scales[t.Parm(1)]
		if a > b {
			return a
		}
		return b
	default: // NEGATE, rotations, RELINEARIZE, MOD_SWITCH
		return scales[t.Parm(0)]
	}
}

// InsertRescaleWaterline applies the WATERLINE-RESCALE rule: after a
// multiplication whose result scale s_n satisfies s_n / s_f >= s_w, insert a
// RESCALE by s_f (repeatedly, until the condition no longer holds). If
// waterlineLog is zero the waterline is computed from the program's inputs.
func InsertRescaleWaterline(p *core.Program, maxRescaleLog, waterlineLog float64) error {
	if maxRescaleLog <= 0 {
		return fmt.Errorf("rewrite: maximum rescale value must be positive")
	}
	sw := waterlineLog
	if sw == 0 {
		sw = Waterline(p)
	}
	scales := make(map[*core.Term]float64, p.NumTerms())
	for _, t := range p.TopoSort() {
		scales[t] = scaleOf(t, scales)
		if t.Op != core.OpMultiply {
			continue
		}
		cur := t
		for scales[cur]-maxRescaleLog >= sw {
			rs := p.InsertUnaryAfter(cur, core.OpRescale, nil)
			rs.LogScale = maxRescaleLog
			p.RedirectOutputs(cur, rs)
			scales[rs] = scales[cur] - maxRescaleLog
			cur = rs
		}
	}
	return nil
}

// InsertRescaleAlways applies the ALWAYS-RESCALE rule: after every
// multiplication, insert a RESCALE dividing by the smaller operand scale
// (clamped to the maximum allowed rescale value). Divisors below 20 bits are
// skipped because no valid chain prime exists for them.
func InsertRescaleAlways(p *core.Program, maxRescaleLog float64) error {
	if maxRescaleLog <= 0 {
		return fmt.Errorf("rewrite: maximum rescale value must be positive")
	}
	const minPrimeLog = 20
	scales := make(map[*core.Term]float64, p.NumTerms())
	for _, t := range p.TopoSort() {
		scales[t] = scaleOf(t, scales)
		if t.Op != core.OpMultiply {
			continue
		}
		div := scales[t.Parm(0)]
		if s := scales[t.Parm(1)]; s < div {
			div = s
		}
		if div > maxRescaleLog {
			div = maxRescaleLog
		}
		if div < minPrimeLog {
			continue
		}
		rs := p.InsertUnaryAfter(t, core.OpRescale, nil)
		rs.LogScale = div
		p.RedirectOutputs(t, rs)
		scales[rs] = scales[t] - div
	}
	return nil
}

// InsertRescaleFixed inserts a RESCALE by a fixed divisor after every
// multiplication that involves at least one Cipher operand. This models the
// per-kernel discipline of expert-written kernel libraries (the CHET
// baseline): every kernel unconditionally rescales its result by the maximum
// prime, because a kernel compiled in isolation cannot know the scales of the
// values other kernels produce.
func InsertRescaleFixed(p *core.Program, divisorLog float64) error {
	if divisorLog <= 0 {
		return fmt.Errorf("rewrite: rescale divisor must be positive")
	}
	types := p.InferTypes()
	for _, t := range p.TopoSort() {
		if t.Op != core.OpMultiply {
			continue
		}
		if types[t.Parm(0)] != core.TypeCipher && types[t.Parm(1)] != core.TypeCipher {
			continue
		}
		rs := p.InsertUnaryAfter(t, core.OpRescale, nil)
		rs.LogScale = divisorLog
		types[rs] = core.TypeCipher
		p.RedirectOutputs(t, rs)
	}
	return nil
}

// MatchScales applies the MATCH-SCALE rule: when the operands of an ADD or
// SUB have different scales, the smaller operand is multiplied by the
// constant 1 encoded at the ratio of the scales, so that Constraint 2 holds
// without inserting additional RESCALE or MOD_SWITCH instructions.
func MatchScales(p *core.Program) error {
	scales := make(map[*core.Term]float64, p.NumTerms())
	for _, t := range p.TopoSort() {
		scales[t] = scaleOf(t, scales)
		if t.Op != core.OpAdd && t.Op != core.OpSub {
			continue
		}
		a, b := scales[t.Parm(0)], scales[t.Parm(1)]
		if a == b {
			continue
		}
		big, small := 0, 1
		if b > a {
			big, small = 1, 0
		}
		ratio := scales[t.Parm(big)] - scales[t.Parm(small)]
		one, err := p.NewScalarConstant(1, ratio)
		if err != nil {
			return err
		}
		scales[one] = ratio
		mul, err := p.NewBinary(core.OpMultiply, t.Parm(small), one)
		if err != nil {
			return err
		}
		scales[mul] = scales[t.Parm(small)] + ratio
		p.SetParm(t, small, mul)
		scales[t] = scales[t.Parm(big)]
	}
	return nil
}

// InsertRelinearize applies the RELINEARIZE rule: after every multiplication
// of two Cipher operands, insert a RELINEARIZE so that every downstream
// instruction sees ciphertexts of two polynomials (Constraint 3).
func InsertRelinearize(p *core.Program) {
	types := p.InferTypes()
	for _, t := range p.TopoSort() {
		if t.Op != core.OpMultiply {
			continue
		}
		if types[t.Parm(0)] != core.TypeCipher || types[t.Parm(1)] != core.TypeCipher {
			continue
		}
		relin := p.InsertUnaryAfter(t, core.OpRelinearize, nil)
		types[relin] = core.TypeCipher
		p.RedirectOutputs(t, relin)
	}
}
