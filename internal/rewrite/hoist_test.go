package rewrite

import (
	"testing"

	"eva/internal/core"
)

// TestRotationSets builds a program with two cipher sources rotated several
// times, a plain-vector rotation, and a lone rotation, and checks that only
// the genuinely shareable groups come back, in deterministic order.
func TestRotationSets(t *testing.T) {
	p, err := core.NewProgram("rotsets", 8)
	if err != nil {
		t.Fatal(err)
	}
	x, err := p.NewInput("x", core.TypeCipher, 8, 30)
	if err != nil {
		t.Fatal(err)
	}
	y, err := p.NewInput("y", core.TypeCipher, 8, 30)
	if err != nil {
		t.Fatal(err)
	}
	v, err := p.NewInput("v", core.TypeVector, 8, 30)
	if err != nil {
		t.Fatal(err)
	}

	// Group 1: three rotations of x, one of them a ROTATE_RIGHT, plus a
	// duplicate step that must be kept as a member but deduplicated in the
	// step list.
	x1, _ := p.NewRotation(core.OpRotateLeft, x, 1)
	x2, _ := p.NewRotation(core.OpRotateLeft, x, 2)
	xr, _ := p.NewRotation(core.OpRotateRight, x, 3)
	xdup, _ := p.NewRotation(core.OpRotateLeft, x, 2)

	// Group 2: two rotations of x1 (a rotation result is itself a source).
	n1, _ := p.NewRotation(core.OpRotateLeft, x1, 1)
	n2, _ := p.NewRotation(core.OpRotateLeft, x1, 4)

	// Not groups: a lone rotation of y, and rotations of a plain vector.
	lone, _ := p.NewRotation(core.OpRotateLeft, y, 1)
	v1, _ := p.NewRotation(core.OpRotateLeft, v, 1)
	v2, _ := p.NewRotation(core.OpRotateLeft, v, 2)

	sum := x2
	for _, term := range []*core.Term{xr, xdup, n1, n2, lone, v1, v2} {
		s, err := p.NewBinary(core.OpAdd, sum, term)
		if err != nil {
			t.Fatal(err)
		}
		sum = s
	}
	if err := p.AddOutput("out", sum, 30); err != nil {
		t.Fatal(err)
	}

	sets := RotationSets(p)
	if len(sets) != 2 {
		t.Fatalf("RotationSets returned %d sets, want 2", len(sets))
	}
	wantMembers := [][]*core.Term{{x1, x2, xr, xdup}, {n1, n2}}
	for i, want := range wantMembers {
		if len(sets[i]) != len(want) {
			t.Fatalf("set %d has %d members, want %d", i, len(sets[i]), len(want))
		}
		for j, m := range want {
			if sets[i][j] != m {
				t.Errorf("set %d member %d = %s, want %s", i, j, sets[i][j], m)
			}
		}
	}

	steps := RotationSetSteps(sets[0])
	if len(steps) != 3 || steps[0] != -3 || steps[1] != 1 || steps[2] != 2 {
		t.Errorf("RotationSetSteps = %v, want [-3 1 2]", steps)
	}
	if got := EffectiveRotation(xr); got != -3 {
		t.Errorf("EffectiveRotation(rotate-right 3) = %d, want -3", got)
	}
}
