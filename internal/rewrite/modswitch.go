package rewrite

import (
	"sort"

	"eva/internal/core"
)

// Levels computes, for every live term, its rescale-chain length: the number
// of RESCALE and MOD_SWITCH instructions on a path from a root to the term
// (counting the term itself). The map is only meaningful once the chains are
// conforming; before modulus-switch insertion it returns the maximum over
// paths, which is exactly what LAZY-MODSWITCH needs.
func Levels(p *core.Program) map[*core.Term]int {
	levels := make(map[*core.Term]int, p.NumTerms())
	for _, t := range p.TopoSort() {
		l := 0
		for _, parm := range t.Parms() {
			if levels[parm] > l {
				l = levels[parm]
			}
		}
		if t.Op.IsModulusChanging() {
			l++
		}
		levels[t] = l
	}
	return levels
}

// ReverseLevels computes rlevel for every live term: the number of RESCALE
// and MOD_SWITCH instructions on a path from the term down to an output
// (counting the term itself), maximized over paths. Program outputs count as
// uses at rlevel zero.
func ReverseLevels(p *core.Program) map[*core.Term]int {
	rlevels := make(map[*core.Term]int, p.NumTerms())
	order := p.TopoSort()
	for i := len(order) - 1; i >= 0; i-- {
		t := order[i]
		r := 0
		for _, u := range t.Uses() {
			if rlevels[u] > r {
				r = rlevels[u]
			}
		}
		if t.Op.IsModulusChanging() {
			r++
		}
		rlevels[t] = r
	}
	return rlevels
}

// InsertModSwitchLazy applies the LAZY-MODSWITCH rule: walking forward, when
// the operands of an ADD, SUB or MULTIPLY are at different levels, insert the
// appropriate number of MOD_SWITCH instructions directly before the
// instruction, on the edge of the higher-modulus (lower-level) operand.
func InsertModSwitchLazy(p *core.Program) {
	levels := make(map[*core.Term]int, p.NumTerms())
	for _, t := range p.TopoSort() {
		// Compute this term's level from its (possibly rewritten) operands.
		l := 0
		for _, parm := range t.Parms() {
			if levels[parm] > l {
				l = levels[parm]
			}
		}
		if t.Op.IsModulusChanging() {
			l++
		}
		levels[t] = l

		if !t.Op.IsBinary() {
			continue
		}
		la, lb := levels[t.Parm(0)], levels[t.Parm(1)]
		if la == lb {
			continue
		}
		lowSlot := 0
		diff := lb - la
		if la > lb {
			lowSlot = 1
			diff = la - lb
		}
		cur := t.Parm(lowSlot)
		for i := 0; i < diff; i++ {
			ms, err := p.NewUnary(core.OpModSwitch, cur)
			if err != nil {
				panic(err) // cannot happen: MOD_SWITCH is a valid unary op
			}
			levels[ms] = levels[cur] + 1
			cur = ms
		}
		p.SetParm(t, lowSlot, cur)
	}
}

// InsertModSwitchEager applies the EAGER-MODSWITCH rule: walking backward,
// whenever the uses of a term require different rescale-chain lengths below
// it, a shared chain of MOD_SWITCH instructions is inserted immediately after
// the term and the lower-requirement uses are attached to it, so that every
// use of every term sees the same chain length. Finally, Cipher roots whose
// chains are shorter than the longest root chain are padded right below the
// root (the paper's omitted root rule).
func InsertModSwitchEager(p *core.Program) {
	rlevels := make(map[*core.Term]int, p.NumTerms())
	order := p.TopoSort()
	types := p.InferTypes()

	outputLevel := func(t *core.Term) (int, bool) {
		isOut := false
		for _, o := range p.Outputs() {
			if o.Term == t {
				isOut = true
			}
		}
		return 0, isOut
	}

	for i := len(order) - 1; i >= 0; i-- {
		t := order[i]
		equalizeUses(p, t, rlevels, outputLevel)
		r := 0
		for _, u := range t.Uses() {
			if rlevels[u] > r {
				r = rlevels[u]
			}
		}
		if t.Op.IsModulusChanging() {
			r++
		}
		rlevels[t] = r
	}

	// Root rule: all Cipher inputs are freshly encrypted under the same
	// modulus, so their chains must have equal length; pad the shorter ones
	// immediately below the root.
	rmax := 0
	for _, in := range p.Inputs() {
		if types[in] == core.TypeCipher && rlevels[in] > rmax {
			rmax = rlevels[in]
		}
	}
	for _, in := range p.Inputs() {
		if types[in] != core.TypeCipher || rlevels[in] >= rmax {
			continue
		}
		needed := rmax - rlevels[in]
		cur := in
		for i := 0; i < needed; i++ {
			ms := p.InsertUnaryAfter(cur, core.OpModSwitch, nil)
			p.RedirectOutputs(cur, ms)
			rlevels[ms] = rlevels[cur]
			cur = ms
		}
		rlevels[in] = rmax
	}
}

// equalizeUses groups the uses of t by the rescale-chain length they require
// below t and, when they disagree, inserts a shared chain of MOD_SWITCH nodes
// after t so that lower-requirement uses are fed through additional drops.
func equalizeUses(p *core.Program, t *core.Term, rlevels map[*core.Term]int, outputLevel func(*core.Term) (int, bool)) {
	edges := t.UseEdges()
	_, isOutput := outputLevel(t)
	if len(edges) == 0 && !isOutput {
		return
	}
	// Distinct required levels among uses (outputs require level 0).
	levelSet := map[int]bool{}
	for _, e := range edges {
		levelSet[rlevels[e.Child]] = true
	}
	if isOutput {
		levelSet[0] = true
	}
	if len(levelSet) <= 1 {
		return
	}
	levels := make([]int, 0, len(levelSet))
	for l := range levelSet {
		levels = append(levels, l)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(levels)))

	rmax := levels[0]
	cur := t
	curLevel := rmax
	for _, lv := range levels[1:] {
		// Extend the shared chain down to level lv.
		for curLevel > lv {
			ms, err := p.NewUnary(core.OpModSwitch, cur)
			if err != nil {
				panic(err)
			}
			rlevels[ms] = curLevel // a drop node at requirement curLevel has rlevel curLevel
			cur = ms
			curLevel--
		}
		// Attach every use requiring exactly lv to the end of the chain.
		for _, e := range edges {
			if rlevels[e.Child] == lv && e.Child.Parm(e.Slot) == t {
				p.SetParm(e.Child, e.Slot, cur)
			}
		}
		if isOutput && lv == 0 {
			p.RedirectOutputs(t, cur)
		}
	}
}
