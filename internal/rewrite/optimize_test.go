package rewrite_test

import (
	"math"
	"testing"

	"eva/internal/core"
	"eva/internal/execute"
	"eva/internal/rewrite"
)

func TestEliminateCommonSubexpressions(t *testing.T) {
	p := core.MustNewProgram("cse", 8)
	x, _ := p.NewInput("x", core.TypeCipher, 8, 30)
	// Two structurally identical squarings and two identical constants.
	a, _ := p.NewBinary(core.OpMultiply, x, x)
	b, _ := p.NewBinary(core.OpMultiply, x, x)
	c1, _ := p.NewScalarConstant(2, 20)
	c2, _ := p.NewScalarConstant(2, 20)
	s1, _ := p.NewBinary(core.OpMultiply, a, c1)
	s2, _ := p.NewBinary(core.OpMultiply, b, c2)
	sum, _ := p.NewBinary(core.OpAdd, s1, s2)
	p.AddOutput("out", sum, 30)

	before := len(p.TopoSort())
	removed := rewrite.EliminateCommonSubexpressions(p)
	after := len(p.TopoSort())
	if removed == 0 || after >= before {
		t.Fatalf("CSE removed %d terms (live %d -> %d)", removed, before, after)
	}
	// The two products merged, so the ADD now has identical operands.
	if sum.Parm(0) != sum.Parm(1) {
		t.Error("identical subexpressions were not merged")
	}
	out, err := execute.RunReference(p, execute.Inputs{"x": {3}})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(out["out"][0]-36) > 1e-12 {
		t.Errorf("out = %g, want 36", out["out"][0])
	}
}

func TestCSEDoesNotMergeInputsOrDifferentAttributes(t *testing.T) {
	p := core.MustNewProgram("cse2", 8)
	x, _ := p.NewInput("x", core.TypeCipher, 8, 30)
	y, _ := p.NewInput("y", core.TypeCipher, 8, 30)
	r1, _ := p.NewRotation(core.OpRotateLeft, x, 1)
	r2, _ := p.NewRotation(core.OpRotateLeft, x, 2)
	sum, _ := p.NewBinary(core.OpAdd, r1, r2)
	sum2, _ := p.NewBinary(core.OpAdd, sum, y)
	p.AddOutput("out", sum2, 30)
	if removed := rewrite.EliminateCommonSubexpressions(p); removed != 0 {
		t.Errorf("CSE merged %d terms that are not equivalent", removed)
	}
}

func TestFoldPlainConstants(t *testing.T) {
	p := core.MustNewProgram("fold", 8)
	x, _ := p.NewInput("x", core.TypeCipher, 8, 30)
	a, _ := p.NewConstant([]float64{1, 2, 3, 4, 5, 6, 7, 8}, 20)
	b, _ := p.NewScalarConstant(0.5, 20)
	ab, _ := p.NewBinary(core.OpMultiply, a, b) // foldable
	neg, _ := p.NewUnary(core.OpNegate, ab)     // foldable after the first
	rot, _ := p.NewRotation(core.OpRotateLeft, neg, 1)
	diff, _ := p.NewBinary(core.OpSub, rot, b) // foldable
	final, _ := p.NewBinary(core.OpMultiply, x, diff)
	p.AddOutput("out", final, 30)

	want, err := execute.RunReference(p, execute.Inputs{"x": {1, 1, 1, 1, 1, 1, 1, 1}})
	if err != nil {
		t.Fatal(err)
	}
	folded := rewrite.Optimize(p)
	if folded == 0 {
		t.Fatal("expected constant folding to fire")
	}
	// Only the input, one folded constant and the final multiply should remain live.
	live := p.TopoSort()
	if len(live) > 3 {
		t.Errorf("expected at most 3 live terms after folding, got %d", len(live))
	}
	got, err := execute.RunReference(p, execute.Inputs{"x": {1, 1, 1, 1, 1, 1, 1, 1}})
	if err != nil {
		t.Fatal(err)
	}
	for i := range want["out"] {
		if math.Abs(got["out"][i]-want["out"][i]) > 1e-12 {
			t.Fatalf("slot %d: folded %g, want %g", i, got["out"][i], want["out"][i])
		}
	}
}

func TestOptimizeReducesTensorProgramSize(t *testing.T) {
	// A program with repeated rotations of the same input (as tensor kernels
	// produce) should shrink under CSE.
	p := core.MustNewProgram("tensorish", 64)
	x, _ := p.NewInput("x", core.TypeCipher, 64, 30)
	var acc *core.Term
	for rep := 0; rep < 3; rep++ {
		for k := 0; k < 4; k++ {
			rot, _ := p.NewRotation(core.OpRotateLeft, x, k)
			c, _ := p.NewScalarConstant(float64(k+1), 15)
			term, _ := p.NewBinary(core.OpMultiply, rot, c)
			if acc == nil {
				acc = term
			} else {
				s, _ := p.NewBinary(core.OpAdd, acc, term)
				acc = s
			}
		}
	}
	p.AddOutput("out", acc, 30)
	before := len(p.TopoSort())
	removed := rewrite.Optimize(p)
	after := len(p.TopoSort())
	if removed == 0 || after >= before {
		t.Errorf("Optimize removed %d (live %d -> %d)", removed, before, after)
	}
}
