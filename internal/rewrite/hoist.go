package rewrite

import (
	"sort"

	"eva/internal/core"
)

// RotationSets returns the hoistable rotation groups of a program: maximal
// sets of two or more rotation instructions (ROTATE_LEFT / ROTATE_RIGHT) that
// rotate the same Cipher term. Rotations in one set can share a single RNS
// digit decomposition of their common operand (Halevi–Shoup hoisting), so the
// executor dispatches each set as one hoisted batch instead of N independent
// key switches.
//
// Grouping is by the direct parameter term, which is exactly the sharing the
// backend can exploit: if the compiler interposed a MOD_SWITCH or RESCALE
// between two rotations of what was originally one value, their operands are
// different ciphertexts and they land in different sets. Rotations of plain
// (Vector/Scalar) values never reach the key-switching backend and are
// excluded. Duplicate steps within a set are kept — the batch computes the
// step once and every duplicate reuses the result.
//
// Sets are returned in program (topological) order of their source terms, and
// members within a set in topological order, so callers get deterministic
// output for a given program.
func RotationSets(p *core.Program) [][]*core.Term {
	types := p.InferTypes()
	groups := make(map[*core.Term][]*core.Term)
	var sources []*core.Term
	for _, t := range p.TopoSort() {
		if !t.Op.IsRotation() {
			continue
		}
		src := t.Parm(0)
		if types[src] != core.TypeCipher {
			continue
		}
		if len(groups[src]) == 0 {
			sources = append(sources, src)
		}
		groups[src] = append(groups[src], t)
	}
	var sets [][]*core.Term
	for _, src := range sources {
		if members := groups[src]; len(members) >= 2 {
			sets = append(sets, members)
		}
	}
	return sets
}

// RotationSetSteps returns the distinct effective left-rotation steps of one
// rotation set, sorted ascending: ROTATE_RIGHT by k contributes -k. This is
// the step list a hoisted batch evaluates.
func RotationSetSteps(set []*core.Term) []int {
	seen := make(map[int]bool, len(set))
	var steps []int
	for _, t := range set {
		k := EffectiveRotation(t)
		if !seen[k] {
			seen[k] = true
			steps = append(steps, k)
		}
	}
	sort.Ints(steps)
	return steps
}

// EffectiveRotation returns the left-rotation step a rotation instruction
// performs: RotateBy for ROTATE_LEFT, -RotateBy for ROTATE_RIGHT.
func EffectiveRotation(t *core.Term) int {
	if t.Op == core.OpRotateRight {
		return -t.RotateBy
	}
	return t.RotateBy
}
