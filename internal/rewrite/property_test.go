package rewrite_test

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"eva/internal/analysis"
	"eva/internal/core"
	"eva/internal/execute"
	"eva/internal/rewrite"
)

// randomProgram generates a random EVA input program: a DAG of adds,
// subtractions, multiplications, rotations, negations and plaintext constants
// over a couple of Cipher inputs, with bounded multiplicative depth so the
// scales stay meaningful.
func randomProgram(rng *rand.Rand) *core.Program {
	const vecSize = 8
	p := core.MustNewProgram("random", vecSize)
	x, _ := p.NewInput("x", core.TypeCipher, vecSize, 30)
	y, _ := p.NewInput("y", core.TypeCipher, vecSize, 25)
	v, _ := p.NewInput("v", core.TypeVector, vecSize, 20)
	pool := []*core.Term{x, y, v}
	depth := map[*core.Term]int{x: 0, y: 0, v: 0}

	nodes := 3 + rng.Intn(18)
	for i := 0; i < nodes; i++ {
		a := pool[rng.Intn(len(pool))]
		var t *core.Term
		switch rng.Intn(7) {
		case 0, 1:
			b := pool[rng.Intn(len(pool))]
			t, _ = p.NewBinary(core.OpAdd, a, b)
			depth[t] = maxInt(depth[a], depth[b])
		case 2:
			b := pool[rng.Intn(len(pool))]
			t, _ = p.NewBinary(core.OpSub, a, b)
			depth[t] = maxInt(depth[a], depth[b])
		case 3:
			b := pool[rng.Intn(len(pool))]
			// Bound the multiplicative depth to keep scaled values sane.
			if depth[a]+depth[b] > 3 {
				t, _ = p.NewBinary(core.OpAdd, a, b)
				depth[t] = maxInt(depth[a], depth[b])
			} else {
				t, _ = p.NewBinary(core.OpMultiply, a, b)
				depth[t] = depth[a] + depth[b] + 1
			}
		case 4:
			c, _ := p.NewScalarConstant(float64(rng.Intn(5))-2, 15)
			t, _ = p.NewBinary(core.OpMultiply, a, c)
			depth[t] = depth[a]
		case 5:
			t, _ = p.NewRotation(core.OpRotateLeft, a, rng.Intn(vecSize))
			depth[t] = depth[a]
		default:
			t, _ = p.NewUnary(core.OpNegate, a)
			depth[t] = depth[a]
		}
		pool = append(pool, t)
	}
	_ = p.AddOutput("out", pool[len(pool)-1], 30)
	_ = p.AddOutput("aux", pool[rng.Intn(len(pool))], 30)
	return p
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func randomInputsFor(p *core.Program, rng *rand.Rand) execute.Inputs {
	in := execute.Inputs{}
	for _, t := range p.Inputs() {
		v := make([]float64, t.VecWidth)
		for i := range v {
			v[i] = rng.Float64()*2 - 1
		}
		in[t.Name] = v
	}
	return in
}

// TestTransformPreservesReferenceSemantics is the compiler's core invariant:
// the inserted RESCALE, MOD_SWITCH, MATCH-SCALE and RELINEARIZE instructions
// must not change the program's reference semantics (they only manage scheme
// bookkeeping), and the transformed program must pass every validation pass.
func TestTransformPreservesReferenceSemantics(t *testing.T) {
	property := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		prog := randomProgram(rng)
		in := randomInputsFor(prog, rng)
		before, err := execute.RunReference(prog, in)
		if err != nil {
			t.Logf("seed %d: reference failed: %v", seed, err)
			return false
		}
		transformed := prog.Clone()
		if err := rewrite.Transform(transformed, rewrite.DefaultOptions()); err != nil {
			t.Logf("seed %d: transform failed: %v", seed, err)
			return false
		}
		if _, _, err := analysis.Validate(transformed, 60); err != nil {
			t.Logf("seed %d: validation failed: %v", seed, err)
			return false
		}
		after, err := execute.RunReference(transformed, in)
		if err != nil {
			t.Logf("seed %d: transformed reference failed: %v", seed, err)
			return false
		}
		for name, want := range before {
			got := after[name]
			for i := range want {
				if math.Abs(got[i]-want[i]) > 1e-9 {
					t.Logf("seed %d: output %q slot %d changed from %g to %g", seed, name, i, want[i], got[i])
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestTransformIdempotentChains checks that on random programs the compiled
// chains are conforming regardless of the modulus-switching strategy.
func TestTransformChainsConformingBothStrategies(t *testing.T) {
	property := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		for _, strategy := range []rewrite.ModSwitchStrategy{rewrite.ModSwitchEager, rewrite.ModSwitchLazy} {
			prog := randomProgram(rng)
			opts := rewrite.DefaultOptions()
			opts.ModSwitch = strategy
			if err := rewrite.Transform(prog, opts); err != nil {
				t.Logf("seed %d: transform failed: %v", seed, err)
				return false
			}
			if _, err := analysis.ComputeChains(prog); err != nil {
				t.Logf("seed %d strategy %d: chains not conforming: %v", seed, strategy, err)
				return false
			}
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestSerializationRoundTripPreservesSemantics: serializing and reloading a
// transformed program must not change its reference behaviour.
func TestSerializationRoundTripPreservesSemantics(t *testing.T) {
	property := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		prog := randomProgram(rng)
		if err := rewrite.Transform(prog, rewrite.DefaultOptions()); err != nil {
			return false
		}
		in := randomInputsFor(prog, rng)
		want, err := execute.RunReference(prog, in)
		if err != nil {
			return false
		}
		var buf bytes.Buffer
		if err := prog.Serialize(&buf); err != nil {
			t.Logf("seed %d: serialize: %v", seed, err)
			return false
		}
		back, err := core.Deserialize(&buf)
		if err != nil {
			t.Logf("seed %d: deserialize: %v", seed, err)
			return false
		}
		got, err := execute.RunReference(back, in)
		if err != nil {
			t.Logf("seed %d: reloaded reference: %v", seed, err)
			return false
		}
		for name, w := range want {
			g := got[name]
			for i := range w {
				if math.Abs(g[i]-w[i]) > 1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
