package rewrite

import (
	"testing"

	"eva/internal/core"
)

// buildX2Y3 reproduces the input graph of Figure 2(a): x²y³ with
// x.scale = 2^60 and y.scale = 2^30.
func buildX2Y3(t *testing.T) *core.Program {
	t.Helper()
	p := core.MustNewProgram("x2y3", 8)
	x, _ := p.NewInput("x", core.TypeCipher, 8, 60)
	y, _ := p.NewInput("y", core.TypeCipher, 8, 30)
	x2, _ := p.NewBinary(core.OpMultiply, x, x)
	y2, _ := p.NewBinary(core.OpMultiply, y, y)
	y3, _ := p.NewBinary(core.OpMultiply, y2, y)
	out, _ := p.NewBinary(core.OpMultiply, x2, y3)
	if err := p.AddOutput("out", out, 30); err != nil {
		t.Fatal(err)
	}
	return p
}

// buildX2PlusX reproduces Figure 3(a): x² + x with x.scale = 2^30.
func buildX2PlusX(t *testing.T) *core.Program {
	t.Helper()
	p := core.MustNewProgram("x2+x", 8)
	x, _ := p.NewInput("x", core.TypeCipher, 8, 30)
	x2, _ := p.NewBinary(core.OpMultiply, x, x)
	sum, _ := p.NewBinary(core.OpAdd, x2, x)
	if err := p.AddOutput("out", sum, 30); err != nil {
		t.Fatal(err)
	}
	return p
}

// buildX2PlusXPlusX reproduces Figure 5: x² + x + x with x.scale = 2^60.
func buildX2PlusXPlusX(t *testing.T) *core.Program {
	t.Helper()
	p := core.MustNewProgram("x2+x+x", 8)
	x, _ := p.NewInput("x", core.TypeCipher, 8, 60)
	x2, _ := p.NewBinary(core.OpMultiply, x, x)
	a1, _ := p.NewBinary(core.OpAdd, x2, x)
	a2, _ := p.NewBinary(core.OpAdd, a1, x)
	if err := p.AddOutput("out", a2, 60); err != nil {
		t.Fatal(err)
	}
	return p
}

func countOps(p *core.Program) map[core.OpCode]int {
	counts := map[core.OpCode]int{}
	for _, t := range p.TopoSort() {
		counts[t.Op]++
	}
	return counts
}

// TestFigure2WaterlineRescale checks that WATERLINE-RESCALE with the paper's
// example waterline (2^30) reproduces Figure 2(d): rescales (by the maximum
// value 2^60) after x², y³ and the final multiply, and no rescale after y².
func TestFigure2WaterlineRescale(t *testing.T) {
	p := buildX2Y3(t)
	if err := InsertRescaleWaterline(p, 60, 30); err != nil {
		t.Fatal(err)
	}
	counts := countOps(p)
	if counts[core.OpRescale] != 3 {
		t.Fatalf("rescale count = %d, want 3 (after x², y³ and the output multiply)", counts[core.OpRescale])
	}
	scales := ComputeLogScales(p)
	// All rescales divide by the maximum value s_f = 2^60.
	for _, term := range p.TopoSort() {
		if term.Op == core.OpRescale && term.LogScale != 60 {
			t.Errorf("rescale divisor 2^%g, want 2^60", term.LogScale)
		}
	}
	// The two operands of the bottom multiply end up at the same chain length,
	// so Constraint 1 holds without MOD_SWITCH (as the paper notes).
	levels := Levels(p)
	var bottom *core.Term
	for _, term := range p.TopoSort() {
		if term.Op == core.OpMultiply && levels[term] > 0 {
			bottom = term
		}
	}
	if bottom == nil {
		t.Fatal("could not locate bottom multiply")
	}
	if levels[bottom.Parm(0)] != levels[bottom.Parm(1)] {
		t.Errorf("bottom multiply operand levels differ: %d vs %d", levels[bottom.Parm(0)], levels[bottom.Parm(1)])
	}
	// Output scale after the final rescale is 2^(90-60) = 2^30.
	out := p.Outputs()[0].Term
	if out.Op != core.OpRescale {
		t.Fatalf("output should be the final rescale, got %s", out.Op)
	}
	if scales[out] != 30 {
		t.Errorf("output scale 2^%g, want 2^30", scales[out])
	}
}

// TestFigure2DefaultWaterlineNeedsModSwitch checks the default waterline
// (max root scale = 2^60): only two rescales are inserted and the y-branch
// then needs a MOD_SWITCH, which EAGER-MODSWITCH places directly below y.
func TestFigure2DefaultWaterlineNeedsModSwitch(t *testing.T) {
	p := buildX2Y3(t)
	if err := InsertRescaleWaterline(p, 60, 0); err != nil {
		t.Fatal(err)
	}
	if got := countOps(p)[core.OpRescale]; got != 2 {
		t.Fatalf("rescale count = %d, want 2 for waterline 2^60", got)
	}
	InsertModSwitchEager(p)
	counts := countOps(p)
	if counts[core.OpModSwitch] == 0 {
		t.Fatal("expected at least one MOD_SWITCH")
	}
	// After insertion, every binary instruction has level-matched operands.
	levels := Levels(p)
	for _, term := range p.TopoSort() {
		if term.Op.IsBinary() {
			if levels[term.Parm(0)] != levels[term.Parm(1)] {
				t.Errorf("%s operand levels differ: %d vs %d", term, levels[term.Parm(0)], levels[term.Parm(1)])
			}
		}
	}
}

// TestFigure2AlwaysRescale reproduces Figure 2(b): ALWAYS-RESCALE inserts a
// rescale after every multiplication, dividing by the smaller operand scale.
func TestFigure2AlwaysRescale(t *testing.T) {
	p := buildX2Y3(t)
	if err := InsertRescaleAlways(p, 60); err != nil {
		t.Fatal(err)
	}
	if got := countOps(p)[core.OpRescale]; got != 4 {
		t.Fatalf("rescale count = %d, want 4 (one per multiply)", got)
	}
	divisors := map[float64]int{}
	for _, term := range p.TopoSort() {
		if term.Op == core.OpRescale {
			divisors[term.LogScale]++
		}
	}
	// x² rescales by 2^60; y², y³ and the bottom multiply rescale by 2^30.
	if divisors[60] != 1 || divisors[30] != 3 {
		t.Errorf("divisor histogram = %v, want map[60:1 30:3]", divisors)
	}
}

// TestFigure3MatchScale reproduces Figure 3(c): for x² + x the compiler
// multiplies x by the constant 1 at scale 2^30 instead of rescaling, so no
// RESCALE or MOD_SWITCH is introduced and the modulus chain stays short.
func TestFigure3MatchScale(t *testing.T) {
	p := buildX2PlusX(t)
	if err := Transform(p, DefaultOptions()); err != nil {
		t.Fatal(err)
	}
	counts := countOps(p)
	if counts[core.OpRescale] != 0 || counts[core.OpModSwitch] != 0 {
		t.Errorf("got %d rescales and %d modswitches, want none", counts[core.OpRescale], counts[core.OpModSwitch])
	}
	if counts[core.OpConstant] != 1 {
		t.Fatalf("constant count = %d, want 1 (the scale-matching 1)", counts[core.OpConstant])
	}
	var one *core.Term
	for _, term := range p.TopoSort() {
		if term.Op == core.OpConstant {
			one = term
		}
	}
	if one.Value[0] != 1 || one.LogScale != 30 {
		t.Errorf("scale-matching constant = %v at 2^%g, want 1 at 2^30", one.Value, one.LogScale)
	}
	// The ADD operands now have equal scales.
	scales := ComputeLogScales(p)
	for _, term := range p.TopoSort() {
		if term.Op == core.OpAdd {
			if scales[term.Parm(0)] != scales[term.Parm(1)] {
				t.Errorf("ADD operand scales differ: %g vs %g", scales[term.Parm(0)], scales[term.Parm(1)])
			}
		}
	}
}

// TestFigure5LazyVsEagerModSwitch reproduces Figure 5: lazy insertion places
// one MOD_SWITCH before each ADD (two total), while eager insertion places a
// single shared MOD_SWITCH directly below the input x.
func TestFigure5LazyVsEagerModSwitch(t *testing.T) {
	lazy := buildX2PlusXPlusX(t)
	if err := InsertRescaleWaterline(lazy, 60, 0); err != nil {
		t.Fatal(err)
	}
	InsertModSwitchLazy(lazy)
	if got := countOps(lazy)[core.OpModSwitch]; got != 2 {
		t.Fatalf("lazy MOD_SWITCH count = %d, want 2", got)
	}

	eager := buildX2PlusXPlusX(t)
	if err := InsertRescaleWaterline(eager, 60, 0); err != nil {
		t.Fatal(err)
	}
	InsertModSwitchEager(eager)
	if got := countOps(eager)[core.OpModSwitch]; got != 1 {
		t.Fatalf("eager MOD_SWITCH count = %d, want 1", got)
	}
	// The single MOD_SWITCH hangs directly below the input x and feeds both ADDs.
	var ms *core.Term
	for _, term := range eager.TopoSort() {
		if term.Op == core.OpModSwitch {
			ms = term
		}
	}
	if ms.Parm(0).Op != core.OpInput {
		t.Errorf("eager MOD_SWITCH parent is %s, want the input", ms.Parm(0).Op)
	}
	addUses := 0
	for _, u := range ms.Uses() {
		if u.Op == core.OpAdd {
			addUses++
		}
	}
	if addUses != 2 {
		t.Errorf("eager MOD_SWITCH feeds %d ADDs, want 2", addUses)
	}
	// Both strategies must level-match all binary operands.
	for name, prog := range map[string]*core.Program{"lazy": lazy, "eager": eager} {
		levels := Levels(prog)
		for _, term := range prog.TopoSort() {
			if term.Op.IsBinary() && levels[term.Parm(0)] != levels[term.Parm(1)] {
				t.Errorf("%s: %s operand levels differ", name, term)
			}
		}
	}
}

// TestFigure2Relinearize reproduces Figure 2(e): RELINEARIZE is inserted
// after every ciphertext-ciphertext multiplication.
func TestFigure2Relinearize(t *testing.T) {
	p := buildX2Y3(t)
	if err := InsertRescaleWaterline(p, 60, 30); err != nil {
		t.Fatal(err)
	}
	InsertRelinearize(p)
	counts := countOps(p)
	if counts[core.OpRelinearize] != 4 {
		t.Fatalf("relinearize count = %d, want 4 (one per ct-ct multiply)", counts[core.OpRelinearize])
	}
	// Every multiply of two Cipher operands is immediately followed by a
	// RELINEARIZE before any other use.
	types := p.InferTypes()
	for _, term := range p.TopoSort() {
		if term.Op != core.OpMultiply {
			continue
		}
		if types[term.Parm(0)] != core.TypeCipher || types[term.Parm(1)] != core.TypeCipher {
			continue
		}
		for _, u := range term.Uses() {
			if u.Op != core.OpRelinearize {
				t.Errorf("ct-ct multiply %s is used by %s before relinearization", term, u)
			}
		}
	}
}

func TestRelinearizeSkipsPlainMultiplies(t *testing.T) {
	p := core.MustNewProgram("plain-mult", 8)
	x, _ := p.NewInput("x", core.TypeCipher, 8, 30)
	c, _ := p.NewScalarConstant(0.5, 15)
	xc, _ := p.NewBinary(core.OpMultiply, x, c)
	p.AddOutput("out", xc, 30)
	InsertRelinearize(p)
	if got := countOps(p)[core.OpRelinearize]; got != 0 {
		t.Errorf("relinearize count = %d, want 0 for cipher-plain multiply", got)
	}
}

func TestInsertRescaleFixed(t *testing.T) {
	p := buildX2Y3(t)
	if err := InsertRescaleFixed(p, 60); err != nil {
		t.Fatal(err)
	}
	if got := countOps(p)[core.OpRescale]; got != 4 {
		t.Fatalf("fixed rescale count = %d, want 4", got)
	}
	for _, term := range p.TopoSort() {
		if term.Op == core.OpRescale && term.LogScale != 60 {
			t.Errorf("fixed rescale divisor 2^%g, want 2^60", term.LogScale)
		}
	}
	if err := InsertRescaleFixed(p, 0); err == nil {
		t.Error("expected error for non-positive divisor")
	}
}

func TestTransformOutputRedirection(t *testing.T) {
	// When the output term itself is rescaled/relinearized, the program
	// output must point at the newly inserted term.
	p := buildX2Y3(t)
	if err := Transform(p, DefaultOptions()); err != nil {
		t.Fatal(err)
	}
	out := p.Outputs()[0].Term
	if out.Op == core.OpMultiply {
		t.Errorf("output still points at the raw multiply; expected the inserted wrapper, got %s", out.Op)
	}
}

func TestTransformStrategyValidation(t *testing.T) {
	p := buildX2PlusX(t)
	if err := Transform(p, Options{MaxRescaleLog: 60, Rescale: RescaleStrategy(99)}); err == nil {
		t.Error("expected error for unknown rescale strategy")
	}
	if err := Transform(p, Options{MaxRescaleLog: 60, ModSwitch: ModSwitchStrategy(99)}); err == nil {
		t.Error("expected error for unknown modswitch strategy")
	}
	// Disabled passes leave the program untouched.
	q := buildX2PlusX(t)
	before := q.NumTerms()
	if err := Transform(q, Options{MaxRescaleLog: 60, Rescale: RescaleNone, ModSwitch: ModSwitchNone, SkipMatchScale: true, SkipRelinearize: true}); err != nil {
		t.Fatal(err)
	}
	if q.NumTerms() != before {
		t.Error("disabled pipeline modified the program")
	}
}

func TestWaterlineComputation(t *testing.T) {
	p := core.MustNewProgram("w", 8)
	x, _ := p.NewInput("x", core.TypeCipher, 8, 25)
	c, _ := p.NewScalarConstant(2, 40)
	m, _ := p.NewBinary(core.OpMultiply, x, c)
	p.AddOutput("o", m, 25)
	if got := Waterline(p); got != 40 {
		t.Errorf("Waterline = %g, want 40", got)
	}
}

func TestComputeLogScales(t *testing.T) {
	p := core.MustNewProgram("scales", 8)
	x, _ := p.NewInput("x", core.TypeCipher, 8, 30)
	y, _ := p.NewInput("y", core.TypeCipher, 8, 20)
	m, _ := p.NewBinary(core.OpMultiply, x, y) // 50
	r, _ := p.NewRescale(m, 25)                // 25
	n, _ := p.NewUnary(core.OpNegate, r)       // 25
	a, _ := p.NewBinary(core.OpAdd, n, x)      // max(25,30) = 30
	rot, _ := p.NewRotation(core.OpRotateLeft, a, 2)
	p.AddOutput("o", rot, 30)
	scales := ComputeLogScales(p)
	want := map[*core.Term]float64{x: 30, y: 20, m: 50, r: 25, n: 25, a: 30, rot: 30}
	for term, w := range want {
		if scales[term] != w {
			t.Errorf("scale of %s = %g, want %g", term, scales[term], w)
		}
	}
}

func TestReverseLevels(t *testing.T) {
	p := buildX2PlusXPlusX(t)
	if err := InsertRescaleWaterline(p, 60, 0); err != nil {
		t.Fatal(err)
	}
	rlevels := ReverseLevels(p)
	x := p.InputByName("x")
	if rlevels[x] != 1 {
		t.Errorf("rlevel(x) = %d, want 1", rlevels[x])
	}
	out := p.Outputs()[0].Term
	if rlevels[out] != 0 {
		t.Errorf("rlevel(output) = %d, want 0", rlevels[out])
	}
}

func TestEagerModSwitchEqualizesRoots(t *testing.T) {
	// Two Cipher inputs at different depths: the shallower root must be
	// padded with MOD_SWITCH directly below it (the paper's root rule).
	p := core.MustNewProgram("roots", 8)
	x, _ := p.NewInput("x", core.TypeCipher, 8, 60)
	y, _ := p.NewInput("y", core.TypeCipher, 8, 60)
	x2, _ := p.NewBinary(core.OpMultiply, x, x)
	x4, _ := p.NewBinary(core.OpMultiply, x2, x2)
	p.AddOutput("deep", x4, 60)
	p.AddOutput("shallow", y, 60)
	if err := InsertRescaleWaterline(p, 60, 0); err != nil {
		t.Fatal(err)
	}
	InsertModSwitchEager(p)
	rlevels := ReverseLevels(p)
	if rlevels[x] != rlevels[y] {
		t.Errorf("root rlevels differ after eager insertion: %d vs %d", rlevels[x], rlevels[y])
	}
	// y's drops were inserted directly below y.
	if len(y.Uses()) != 1 || y.Uses()[0].Op != core.OpModSwitch {
		t.Error("shallow root should feed a MOD_SWITCH chain")
	}
	// The shallow output follows the chain.
	for _, o := range p.Outputs() {
		if o.Name == "shallow" && o.Term == y {
			t.Error("shallow output should have been redirected to the padded chain")
		}
	}
}

func TestLevelsComputation(t *testing.T) {
	p := buildX2Y3(t)
	if err := InsertRescaleWaterline(p, 60, 30); err != nil {
		t.Fatal(err)
	}
	levels := Levels(p)
	out := p.Outputs()[0].Term
	if levels[out] != 2 {
		t.Errorf("output level = %d, want 2", levels[out])
	}
	for _, in := range p.Inputs() {
		if levels[in] != 0 {
			t.Errorf("input level = %d, want 0", levels[in])
		}
	}
}
