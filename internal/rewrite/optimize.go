package rewrite

import (
	"fmt"
	"strings"

	"eva/internal/core"
)

// This file contains frontend-level optimizations that are not required for
// correctness but reduce the number of homomorphic operations the executor
// must perform: common-subexpression elimination and folding of plain
// constant arithmetic. They operate on input programs (before the
// FHE-specific passes) and preserve the reference semantics exactly.

// EliminateCommonSubexpressions merges structurally identical terms: two
// instructions with the same opcode, the same attributes and the same
// parameters compute the same value, so all uses of the duplicate are
// redirected to a single representative. Identical constants are merged too.
// It returns the number of terms eliminated.
func EliminateCommonSubexpressions(p *core.Program) int {
	canonical := map[string]*core.Term{}
	rewritten := map[*core.Term]*core.Term{}
	removed := 0

	resolve := func(t *core.Term) *core.Term {
		if r, ok := rewritten[t]; ok {
			return r
		}
		return t
	}

	for _, t := range p.TopoSort() {
		// Rewire parameters to their representatives first.
		for slot, parm := range t.Parms() {
			if rep := resolve(parm); rep != parm {
				p.SetParm(t, slot, rep)
			}
		}
		key := cseKey(t)
		if key == "" {
			continue // inputs are never merged
		}
		if rep, ok := canonical[key]; ok {
			rewritten[t] = rep
			// Redirect every use and output of the duplicate to the representative.
			for _, e := range t.UseEdges() {
				p.SetParm(e.Child, e.Slot, rep)
			}
			p.RedirectOutputs(t, rep)
			removed++
			continue
		}
		canonical[key] = t
	}
	return removed
}

// cseKey returns a structural identity key for a term, or "" if the term must
// never be merged (run-time inputs).
func cseKey(t *core.Term) string {
	switch t.Op {
	case core.OpInput:
		return ""
	case core.OpConstant:
		var sb strings.Builder
		fmt.Fprintf(&sb, "const/%g/%d:", t.LogScale, t.VecWidth)
		for _, v := range t.Value {
			fmt.Fprintf(&sb, "%g,", v)
		}
		return sb.String()
	default:
		var sb strings.Builder
		fmt.Fprintf(&sb, "%d/%d/%g:", int(t.Op), t.RotateBy, t.LogScale)
		for _, parm := range t.Parms() {
			fmt.Fprintf(&sb, "t%d,", parm.ID)
		}
		return sb.String()
	}
}

// FoldPlainConstants evaluates instructions whose operands are all
// compile-time constants and replaces them with a single constant term,
// removing work that would otherwise be executed (as plaintext vector
// arithmetic) at run time. It returns the number of folded instructions.
func FoldPlainConstants(p *core.Program) int {
	folded := 0
	for _, t := range p.TopoSort() {
		if t.IsLeaf() || t.Op.IsCompilerOp() {
			continue
		}
		allConst := true
		for _, parm := range t.Parms() {
			if parm.Op != core.OpConstant {
				allConst = false
				break
			}
		}
		if !allConst {
			continue
		}
		values, logScale, ok := foldTerm(t)
		if !ok {
			continue
		}
		c, err := p.NewConstant(values, logScale)
		if err != nil {
			continue
		}
		for _, e := range t.UseEdges() {
			p.SetParm(e.Child, e.Slot, c)
		}
		p.RedirectOutputs(t, c)
		folded++
	}
	return folded
}

// foldTerm computes the constant value of an instruction over constant
// operands, with the scale the scale analysis would assign.
func foldTerm(t *core.Term) ([]float64, float64, bool) {
	width := 1
	for _, parm := range t.Parms() {
		if parm.VecWidth > width {
			width = parm.VecWidth
		}
	}
	at := func(parm *core.Term, i int) float64 { return parm.Value[i%len(parm.Value)] }
	out := make([]float64, width)
	var logScale float64
	switch t.Op {
	case core.OpNegate:
		for i := range out {
			out[i] = -at(t.Parm(0), i)
		}
		logScale = t.Parm(0).LogScale
	case core.OpAdd, core.OpSub:
		sign := 1.0
		if t.Op == core.OpSub {
			sign = -1
		}
		for i := range out {
			out[i] = at(t.Parm(0), i) + sign*at(t.Parm(1), i)
		}
		logScale = maxFloat(t.Parm(0).LogScale, t.Parm(1).LogScale)
	case core.OpMultiply:
		for i := range out {
			out[i] = at(t.Parm(0), i) * at(t.Parm(1), i)
		}
		logScale = t.Parm(0).LogScale + t.Parm(1).LogScale
	case core.OpRotateLeft, core.OpRotateRight:
		k := t.RotateBy
		if t.Op == core.OpRotateRight {
			k = -k
		}
		for i := range out {
			out[i] = at(t.Parm(0), ((i+k)%width+width)%width)
		}
		logScale = t.Parm(0).LogScale
	default:
		return nil, 0, false
	}
	return out, logScale, true
}

func maxFloat(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// Optimize applies the frontend optimizations until they reach a fixed point
// and returns the total number of terms removed or folded.
func Optimize(p *core.Program) int {
	total := 0
	for {
		changed := FoldPlainConstants(p) + EliminateCommonSubexpressions(p)
		total += changed
		if changed == 0 {
			return total
		}
	}
}
