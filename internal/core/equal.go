package core

import (
	"fmt"
	"math"
)

// Equal reports whether two programs are structurally identical: same name,
// vector size, input signature (declaration order, names, types, widths,
// scales), output list (order, names, scales), and — for every output — an
// isomorphic term DAG, where sharing is preserved exactly (a term reused in
// one program must correspond to a single reused term in the other, never to
// two duplicated ones). Terms that cannot reach an output are not compared;
// they are dead code with no observable behavior. Kernel labels are
// scheduling metadata, not program semantics, and are ignored.
//
// A nil error means the programs are equal; otherwise the error describes the
// first difference found.
func Equal(a, b *Program) error {
	if a == nil || b == nil {
		if a == b {
			return nil
		}
		return fmt.Errorf("core: comparing a nil program")
	}
	if a.Name != b.Name {
		return fmt.Errorf("core: program names differ: %q vs %q", a.Name, b.Name)
	}
	if a.VecSize != b.VecSize {
		return fmt.Errorf("core: vector sizes differ: %d vs %d", a.VecSize, b.VecSize)
	}
	if len(a.inputs) != len(b.inputs) {
		return fmt.Errorf("core: input counts differ: %d vs %d", len(a.inputs), len(b.inputs))
	}
	eq := &equalizer{aToB: map[*Term]*Term{}, bToA: map[*Term]*Term{}}
	for i, ain := range a.inputs {
		bin := b.inputs[i]
		if err := eq.terms(ain, bin); err != nil {
			return fmt.Errorf("core: input %d (%q): %w", i, ain.Name, err)
		}
	}
	if len(a.outputs) != len(b.outputs) {
		return fmt.Errorf("core: output counts differ: %d vs %d", len(a.outputs), len(b.outputs))
	}
	for i, ao := range a.outputs {
		bo := b.outputs[i]
		if ao.Name != bo.Name {
			return fmt.Errorf("core: output %d names differ: %q vs %q", i, ao.Name, bo.Name)
		}
		if !floatEqual(ao.LogScale, bo.LogScale) {
			return fmt.Errorf("core: output %q scales differ: 2^%g vs 2^%g", ao.Name, ao.LogScale, bo.LogScale)
		}
		if err := eq.terms(ao.Term, bo.Term); err != nil {
			return fmt.Errorf("core: output %q: %w", ao.Name, err)
		}
	}
	return nil
}

// equalizer performs the pairwise DAG walk, maintaining a bijection between
// the two programs' terms so DAG sharing must match exactly.
type equalizer struct {
	aToB map[*Term]*Term
	bToA map[*Term]*Term
}

func (eq *equalizer) terms(x, y *Term) error {
	if mapped, ok := eq.aToB[x]; ok {
		if mapped != y {
			return fmt.Errorf("shared term %s corresponds to two distinct terms", x)
		}
		return nil // already compared
	}
	if _, ok := eq.bToA[y]; ok {
		return fmt.Errorf("term %s maps a second time (sharing differs)", y)
	}
	eq.aToB[x] = y
	eq.bToA[y] = x

	if x.Op != y.Op {
		return fmt.Errorf("ops differ: %s vs %s", x, y)
	}
	switch x.Op {
	case OpInput:
		if x.Name != y.Name {
			return fmt.Errorf("input names differ: %q vs %q", x.Name, y.Name)
		}
		if x.InType != y.InType {
			return fmt.Errorf("input %q types differ: %s vs %s", x.Name, x.InType, y.InType)
		}
		if x.VecWidth != y.VecWidth {
			return fmt.Errorf("input %q widths differ: %d vs %d", x.Name, x.VecWidth, y.VecWidth)
		}
		if !floatEqual(x.LogScale, y.LogScale) {
			return fmt.Errorf("input %q scales differ: 2^%g vs 2^%g", x.Name, x.LogScale, y.LogScale)
		}
	case OpConstant:
		if x.InType != y.InType {
			return fmt.Errorf("constant types differ: %s vs %s", x.InType, y.InType)
		}
		if len(x.Value) != len(y.Value) || x.VecWidth != y.VecWidth {
			return fmt.Errorf("constant widths differ: %d vs %d", x.VecWidth, y.VecWidth)
		}
		for i := range x.Value {
			if !floatEqual(x.Value[i], y.Value[i]) {
				return fmt.Errorf("constant values differ at slot %d: %v vs %v", i, x.Value[i], y.Value[i])
			}
		}
		if !floatEqual(x.LogScale, y.LogScale) {
			return fmt.Errorf("constant scales differ: 2^%g vs 2^%g", x.LogScale, y.LogScale)
		}
	case OpRotateLeft, OpRotateRight:
		if x.RotateBy != y.RotateBy {
			return fmt.Errorf("rotation steps differ: %d vs %d", x.RotateBy, y.RotateBy)
		}
	case OpRescale:
		if !floatEqual(x.LogScale, y.LogScale) {
			return fmt.Errorf("rescale divisors differ: 2^%g vs 2^%g", x.LogScale, y.LogScale)
		}
	}
	if len(x.parms) != len(y.parms) {
		return fmt.Errorf("%s parameter counts differ: %d vs %d", x.Op, len(x.parms), len(y.parms))
	}
	for i := range x.parms {
		if err := eq.terms(x.parms[i], y.parms[i]); err != nil {
			return fmt.Errorf("%s parameter %d: %w", x.Op, i, err)
		}
	}
	return nil
}

// floatEqual compares attribute floats. NaN is considered equal to itself so
// a program compares equal to its own clone even with poisoned attributes.
func floatEqual(a, b float64) bool {
	return a == b || (math.IsNaN(a) && math.IsNaN(b))
}
