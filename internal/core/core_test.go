package core

import (
	"bytes"
	"strings"
	"testing"
)

// buildX2Y3 constructs the x²y³ example of Figure 2(a).
func buildX2Y3(t *testing.T) (*Program, *Term, *Term) {
	t.Helper()
	p := MustNewProgram("x2y3", 8)
	x, err := p.NewInput("x", TypeCipher, 8, 60)
	if err != nil {
		t.Fatal(err)
	}
	y, err := p.NewInput("y", TypeCipher, 8, 30)
	if err != nil {
		t.Fatal(err)
	}
	x2, _ := p.NewBinary(OpMultiply, x, x)
	y2, _ := p.NewBinary(OpMultiply, y, y)
	y3, _ := p.NewBinary(OpMultiply, y2, y)
	out, _ := p.NewBinary(OpMultiply, x2, y3)
	if err := p.AddOutput("out", out, 30); err != nil {
		t.Fatal(err)
	}
	return p, x, y
}

func TestNewProgramValidation(t *testing.T) {
	if _, err := NewProgram("bad", 3); err == nil {
		t.Error("expected error for non power-of-two vector size")
	}
	if _, err := NewProgram("bad", 0); err == nil {
		t.Error("expected error for zero vector size")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustNewProgram should panic on invalid size")
		}
	}()
	MustNewProgram("bad", 7)
}

func TestProgramConstruction(t *testing.T) {
	p, x, y := buildX2Y3(t)
	if p.NumTerms() != 6 {
		t.Errorf("NumTerms = %d, want 6", p.NumTerms())
	}
	if len(p.Inputs()) != 2 || len(p.Outputs()) != 1 {
		t.Errorf("inputs/outputs = %d/%d", len(p.Inputs()), len(p.Outputs()))
	}
	if p.InputByName("x") != x || p.InputByName("y") != y {
		t.Error("InputByName lookup failed")
	}
	if p.InputByName("missing") != nil {
		t.Error("lookup of missing input should be nil")
	}
	if d := p.MultiplicativeDepth(); d != 3 {
		t.Errorf("multiplicative depth = %d, want 3", d)
	}
	if err := p.ValidateStructure(true); err != nil {
		t.Errorf("ValidateStructure: %v", err)
	}
	stats := p.ComputeStats()
	if stats.Instructions["MULTIPLY"] != 4 {
		t.Errorf("MULTIPLY count = %d, want 4", stats.Instructions["MULTIPLY"])
	}
	if stats.MultDepth != 3 || stats.Inputs != 2 || stats.Outputs != 1 {
		t.Errorf("unexpected stats %+v", stats)
	}
}

func TestProgramInputErrors(t *testing.T) {
	p := MustNewProgram("p", 8)
	if _, err := p.NewInput("a", TypeInvalid, 8, 30); err == nil {
		t.Error("expected error for invalid type")
	}
	if _, err := p.NewInput("a", TypeCipher, 3, 30); err == nil {
		t.Error("expected error for non power-of-two width")
	}
	if _, err := p.NewInput("a", TypeCipher, 16, 30); err == nil {
		t.Error("expected error for width exceeding vector size")
	}
	if _, err := p.NewInput("a", TypeCipher, 8, 30); err != nil {
		t.Fatal(err)
	}
	if _, err := p.NewInput("a", TypeCipher, 8, 30); err == nil {
		t.Error("expected error for duplicate input name")
	}
	if _, err := p.NewConstant([]float64{1, 2, 3}, 30); err == nil {
		t.Error("expected error for non power-of-two constant")
	}
	if _, err := p.NewConstant(nil, 30); err == nil {
		t.Error("expected error for empty constant")
	}
	if _, err := p.NewScalarConstant(1.5, 30); err != nil {
		t.Errorf("scalar constant: %v", err)
	}
}

func TestInstructionConstructorErrors(t *testing.T) {
	p := MustNewProgram("p", 8)
	x, _ := p.NewInput("x", TypeCipher, 8, 30)
	if _, err := p.NewBinary(OpNegate, x, x); err == nil {
		t.Error("expected error using NEGATE as binary")
	}
	if _, err := p.NewBinary(OpAdd, x, nil); err == nil {
		t.Error("expected error for nil operand")
	}
	if _, err := p.NewUnary(OpAdd, x); err == nil {
		t.Error("expected error using ADD as unary")
	}
	if _, err := p.NewUnary(OpRotateLeft, x); err == nil {
		t.Error("expected error using rotation as plain unary")
	}
	if _, err := p.NewUnary(OpNegate, nil); err == nil {
		t.Error("expected error for nil unary operand")
	}
	if _, err := p.NewRotation(OpAdd, x, 1); err == nil {
		t.Error("expected error using ADD as rotation")
	}
	if _, err := p.NewRotation(OpRotateLeft, nil, 1); err == nil {
		t.Error("expected error for nil rotation operand")
	}
	if _, err := p.NewRescale(nil, 30); err == nil {
		t.Error("expected error for nil rescale operand")
	}
	if _, err := p.NewRescale(x, 0); err == nil {
		t.Error("expected error for non-positive rescale divisor")
	}
	if err := p.AddOutput("o", nil, 30); err == nil {
		t.Error("expected error for nil output term")
	}
	if err := p.AddOutput("o", x, 30); err != nil {
		t.Fatal(err)
	}
	if err := p.AddOutput("o", x, 30); err == nil {
		t.Error("expected error for duplicate output name")
	}
}

func TestTopoSortAndLiveness(t *testing.T) {
	p, x, _ := buildX2Y3(t)
	// Add a dead term: it should not appear in TopoSort.
	dead, _ := p.NewUnary(OpNegate, x)
	_ = dead
	order := p.TopoSort()
	pos := map[*Term]int{}
	for i, t2 := range order {
		if t2 == dead {
			t.Error("dead term included in TopoSort")
		}
		pos[t2] = i
	}
	for _, t2 := range order {
		for _, parm := range t2.Parms() {
			if pos[parm] >= pos[t2] {
				t.Fatalf("parameter %s not before %s", parm, t2)
			}
		}
	}
}

func TestInferTypes(t *testing.T) {
	p := MustNewProgram("types", 8)
	x, _ := p.NewInput("x", TypeCipher, 8, 30)
	v, _ := p.NewInput("v", TypeVector, 8, 30)
	c, _ := p.NewScalarConstant(2, 30)
	xc, _ := p.NewBinary(OpMultiply, x, c)
	vc, _ := p.NewBinary(OpMultiply, v, c)
	p.AddOutput("xc", xc, 30)
	p.AddOutput("vc", vc, 30)
	types := p.InferTypes()
	if types[x] != TypeCipher || types[xc] != TypeCipher {
		t.Error("cipher type not propagated")
	}
	if types[v] != TypeVector || types[vc] != TypeVector {
		t.Error("vector type not propagated")
	}
	if types[c] != TypeScalar {
		t.Error("scalar constant type wrong")
	}
}

func TestRotationSteps(t *testing.T) {
	p := MustNewProgram("rot", 8)
	x, _ := p.NewInput("x", TypeCipher, 8, 30)
	r1, _ := p.NewRotation(OpRotateLeft, x, 1)
	r2, _ := p.NewRotation(OpRotateRight, x, 2)
	r0, _ := p.NewRotation(OpRotateLeft, x, 0)
	s, _ := p.NewBinary(OpAdd, r1, r2)
	s2, _ := p.NewBinary(OpAdd, s, r0)
	p.AddOutput("o", s2, 30)
	steps := p.RotationSteps()
	if len(steps) != 2 || steps[0] != -2 || steps[1] != 1 {
		t.Errorf("RotationSteps = %v, want [-2 1]", steps)
	}
}

func TestSetParmAndInsertUnaryAfter(t *testing.T) {
	p := MustNewProgram("edit", 8)
	x, _ := p.NewInput("x", TypeCipher, 8, 30)
	y, _ := p.NewInput("y", TypeCipher, 8, 30)
	sum, _ := p.NewBinary(OpAdd, x, x)
	p.AddOutput("o", sum, 30)

	// Redirect the second slot to y.
	p.SetParm(sum, 1, y)
	if sum.Parm(0) != x || sum.Parm(1) != y {
		t.Fatal("SetParm did not rewire the slot")
	}
	if x.NumUses() != 1 || y.NumUses() != 1 {
		t.Fatalf("use counts wrong: x=%d y=%d", x.NumUses(), y.NumUses())
	}
	// Redirecting to the same parm is a no-op.
	p.SetParm(sum, 1, y)
	if y.NumUses() != 1 {
		t.Error("SetParm to the same term changed use counts")
	}

	// Insert a RELINEARIZE between x and its children.
	relin := p.InsertUnaryAfter(x, OpRelinearize, nil)
	if sum.Parm(0) != relin || relin.Parm(0) != x {
		t.Error("InsertUnaryAfter did not splice the node")
	}
	if x.NumUses() != 1 {
		t.Errorf("x should only be used by the inserted node, has %d uses", x.NumUses())
	}

	// Selective insertion: only slot 1 of sum.
	ms := p.InsertUnaryAfter(y, OpModSwitch, func(child *Term, slot int) bool { return child == sum && slot == 1 })
	if sum.Parm(1) != ms {
		t.Error("selective InsertUnaryAfter did not rewire the requested slot")
	}
}

func TestRedirectOutputs(t *testing.T) {
	p := MustNewProgram("out", 8)
	x, _ := p.NewInput("x", TypeCipher, 8, 30)
	y, _ := p.NewUnary(OpNegate, x)
	p.AddOutput("o", x, 30)
	p.RedirectOutputs(x, y)
	if p.Outputs()[0].Term != y {
		t.Error("RedirectOutputs did not update the output term")
	}
}

func TestValidateStructure(t *testing.T) {
	p := MustNewProgram("v", 8)
	x, _ := p.NewInput("x", TypeCipher, 8, 30)
	if err := p.ValidateStructure(true); err == nil {
		t.Error("expected error for program without outputs")
	}
	relin, _ := p.NewUnary(OpRelinearize, x)
	p.AddOutput("o", relin, 30)
	if err := p.ValidateStructure(true); err == nil {
		t.Error("expected error for compiler-only op in input program")
	}
	if err := p.ValidateStructure(false); err != nil {
		t.Errorf("ValidateStructure(false): %v", err)
	}
}

func TestCloneIsIndependent(t *testing.T) {
	p, x, _ := buildX2Y3(t)
	cp := p.Clone()
	if cp.NumTerms() != p.NumTerms() || len(cp.Outputs()) != len(p.Outputs()) {
		t.Fatal("clone shape differs")
	}
	// Mutating the clone must not affect the original.
	cx := cp.InputByName("x")
	if cx == x {
		t.Fatal("clone shares term pointers with the original")
	}
	cp.InsertUnaryAfter(cx, OpRelinearize, nil)
	for _, u := range x.Uses() {
		if u.Op == OpRelinearize {
			t.Fatal("mutating clone affected original")
		}
	}
	if err := cp.ValidateStructure(false); err != nil {
		t.Errorf("clone validation: %v", err)
	}
}

func TestSerializeRoundTrip(t *testing.T) {
	p, _, _ := buildX2Y3(t)
	c, _ := p.NewScalarConstant(0.5, 30)
	rot, _ := p.NewRotation(OpRotateLeft, p.Outputs()[0].Term, 3)
	scaled, _ := p.NewBinary(OpMultiply, rot, c)
	p.AddOutput("scaled", scaled, 30)

	var buf bytes.Buffer
	if err := p.Serialize(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Deserialize(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != p.Name || back.VecSize != p.VecSize {
		t.Error("program metadata lost")
	}
	if back.NumTerms() != p.NumTerms() {
		t.Errorf("terms = %d, want %d", back.NumTerms(), p.NumTerms())
	}
	if len(back.Outputs()) != 2 {
		t.Fatalf("outputs = %d, want 2", len(back.Outputs()))
	}
	wantStats := p.ComputeStats()
	gotStats := back.ComputeStats()
	if gotStats.MultDepth != wantStats.MultDepth {
		t.Errorf("depth = %d, want %d", gotStats.MultDepth, wantStats.MultDepth)
	}
	for op, n := range wantStats.Instructions {
		if gotStats.Instructions[op] != n {
			t.Errorf("instruction count for %s = %d, want %d", op, gotStats.Instructions[op], n)
		}
	}
	if err := back.ValidateStructure(true); err != nil {
		t.Errorf("round-tripped program invalid: %v", err)
	}
}

func TestDeserializeErrors(t *testing.T) {
	cases := []string{
		`not json`,
		`{"name":"p","vec_size":3}`,
		`{"name":"p","vec_size":8,"insts":[{"output":5,"op_code":"BOGUS","args":[1]}]}`,
		`{"name":"p","vec_size":8,"insts":[{"output":5,"op_code":"ADD","args":[1,2]}]}`,
		`{"name":"p","vec_size":8,"inputs":[{"obj":1,"name":"x","type":"NOPE","width":8}]}`,
		`{"name":"p","vec_size":8,"outputs":[{"obj":9,"name":"o"}]}`,
	}
	for i, c := range cases {
		if _, err := Deserialize(strings.NewReader(c)); err == nil {
			t.Errorf("case %d: expected deserialization error", i)
		}
	}
}

func TestOpCodeHelpers(t *testing.T) {
	if OpAdd.String() != "ADD" || OpRescale.String() != "RESCALE" {
		t.Error("opcode names wrong")
	}
	if OpCode(99).String() == "" {
		t.Error("unknown opcode should still format")
	}
	if op, err := ParseOpCode("MULTIPLY"); err != nil || op != OpMultiply {
		t.Error("ParseOpCode failed")
	}
	if _, err := ParseOpCode("NOPE"); err == nil {
		t.Error("expected error for unknown opcode")
	}
	if !OpInput.IsLeaf() || OpAdd.IsLeaf() {
		t.Error("IsLeaf wrong")
	}
	if !OpAdd.IsFrontendOp() || OpRescale.IsFrontendOp() {
		t.Error("IsFrontendOp wrong")
	}
	if !OpModSwitch.IsCompilerOp() || OpAdd.IsCompilerOp() {
		t.Error("IsCompilerOp wrong")
	}
	if !OpRotateLeft.IsRotation() || OpAdd.IsRotation() {
		t.Error("IsRotation wrong")
	}
	if !OpRescale.IsModulusChanging() || !OpModSwitch.IsModulusChanging() || OpAdd.IsModulusChanging() {
		t.Error("IsModulusChanging wrong")
	}
	if OpAdd.Arity() != 2 || OpNegate.Arity() != 1 || OpInput.Arity() != 0 {
		t.Error("Arity wrong")
	}
	if TypeCipher.String() != "CIPHER" || TypeVector.String() != "VECTOR" || TypeScalar.String() != "SCALAR" || TypeInvalid.String() != "INVALID" {
		t.Error("type names wrong")
	}
	if typ, err := ParseType("CIPHER"); err != nil || typ != TypeCipher {
		t.Error("ParseType failed")
	}
	if _, err := ParseType("NOPE"); err == nil {
		t.Error("expected error for unknown type")
	}
	if !TypeVector.IsPlain() || TypeCipher.IsPlain() {
		t.Error("IsPlain wrong")
	}
}

func TestTermString(t *testing.T) {
	p := MustNewProgram("s", 8)
	x, _ := p.NewInput("x", TypeCipher, 8, 30)
	c, _ := p.NewScalarConstant(1, 30)
	r, _ := p.NewRotation(OpRotateLeft, x, 2)
	rs, _ := p.NewRescale(x, 30)
	a, _ := p.NewBinary(OpAdd, r, rs)
	_ = c
	for _, term := range []*Term{x, c, r, rs, a} {
		if term.String() == "" {
			t.Error("empty Term.String()")
		}
	}
}

// TestDeserializeRejectsWrongArity checks that malformed instruction arg
// counts are rejected with an error rather than an index-out-of-range panic
// (programs arrive from untrusted clients via evaserve's /compile).
func TestDeserializeRejectsWrongArity(t *testing.T) {
	cases := map[string]string{
		"binary no args": `{"name":"m","vec_size":4,
			"inputs":[{"obj":1,"name":"x","type":"CIPHER","width":4,"log_scale":30}],
			"outputs":[{"obj":2,"name":"o","log_scale":30}],
			"insts":[{"output":2,"op_code":"ADD","args":[]}]}`,
		"unary no args": `{"name":"m","vec_size":4,
			"inputs":[{"obj":1,"name":"x","type":"CIPHER","width":4,"log_scale":30}],
			"outputs":[{"obj":2,"name":"o","log_scale":30}],
			"insts":[{"output":2,"op_code":"NEGATE","args":[]}]}`,
		"rotation no args": `{"name":"m","vec_size":4,
			"inputs":[{"obj":1,"name":"x","type":"CIPHER","width":4,"log_scale":30}],
			"outputs":[{"obj":2,"name":"o","log_scale":30}],
			"insts":[{"output":2,"op_code":"ROTATE_LEFT","args":[],"rotate_by":1}]}`,
		"binary too many": `{"name":"m","vec_size":4,
			"inputs":[{"obj":1,"name":"x","type":"CIPHER","width":4,"log_scale":30}],
			"outputs":[{"obj":2,"name":"o","log_scale":30}],
			"insts":[{"output":2,"op_code":"ADD","args":[1,1,1]}]}`,
	}
	for name, src := range cases {
		if _, err := DeserializeBytes([]byte(src)); err == nil {
			t.Errorf("%s: expected an error, got none", name)
		}
	}
}
