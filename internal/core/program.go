package core

import (
	"fmt"
	"sort"
)

// Output names a term whose value the program returns, together with the
// desired fixed-point scale (log2) of the result.
type Output struct {
	Name     string
	Term     *Term
	LogScale float64
}

// Program is an EVA program: a DAG of terms over fixed-width vectors,
// together with its named inputs and outputs. The zero value is not usable;
// construct programs with NewProgram.
type Program struct {
	Name    string
	VecSize int // the fixed power-of-two width of every Cipher/Vector value

	nextID  uint64
	terms   []*Term
	inputs  []*Term
	outputs []*Output
	byName  map[string]*Term
}

// NewProgram creates an empty program whose vectors have the given
// power-of-two size.
func NewProgram(name string, vecSize int) (*Program, error) {
	if vecSize <= 0 || vecSize&(vecSize-1) != 0 {
		return nil, fmt.Errorf("core: vector size %d is not a positive power of two", vecSize)
	}
	return &Program{Name: name, VecSize: vecSize, byName: map[string]*Term{}}, nil
}

// MustNewProgram is NewProgram but panics on error; intended for tests and
// statically-known sizes.
func MustNewProgram(name string, vecSize int) *Program {
	p, err := NewProgram(name, vecSize)
	if err != nil {
		panic(err)
	}
	return p
}

// Terms returns all terms in creation order. Creation order is a topological
// order for programs built through the public API, but transformation passes
// should use TopoSort, which is robust to rewrites.
func (p *Program) Terms() []*Term { return p.terms }

// Inputs returns the input terms in declaration order.
func (p *Program) Inputs() []*Term { return p.inputs }

// Outputs returns the program outputs in declaration order.
func (p *Program) Outputs() []*Output { return p.outputs }

// InputByName returns the input term with the given name, or nil.
func (p *Program) InputByName(name string) *Term { return p.byName[name] }

// NumTerms returns the number of terms in the program.
func (p *Program) NumTerms() int { return len(p.terms) }

func (p *Program) newTerm(op OpCode, parms ...*Term) *Term {
	p.nextID++
	t := &Term{ID: p.nextID, Op: op, parms: append([]*Term(nil), parms...)}
	for slot, parm := range parms {
		parm.uses = append(parm.uses, use{child: t, slot: slot})
	}
	p.terms = append(p.terms, t)
	return t
}

// NewInput declares a named run-time input of the given type and vector
// width, encoded at the given log2 scale.
func (p *Program) NewInput(name string, typ Type, width int, logScale float64) (*Term, error) {
	if typ == TypeInvalid {
		return nil, fmt.Errorf("core: input %q has invalid type", name)
	}
	if _, dup := p.byName[name]; dup {
		return nil, fmt.Errorf("core: duplicate input name %q", name)
	}
	if err := p.checkWidth(typ, width); err != nil {
		return nil, fmt.Errorf("core: input %q: %w", name, err)
	}
	t := p.newTerm(OpInput)
	t.Name = name
	t.InType = typ
	t.VecWidth = width
	t.LogScale = logScale
	p.inputs = append(p.inputs, t)
	p.byName[name] = t
	return t, nil
}

// NewConstant declares a compile-time constant vector encoded at the given
// log2 scale. Constants can never be Cipher.
func (p *Program) NewConstant(values []float64, logScale float64) (*Term, error) {
	width := len(values)
	typ := TypeVector
	if width == 1 {
		typ = TypeScalar
	}
	if err := p.checkWidth(typ, width); err != nil {
		return nil, fmt.Errorf("core: constant: %w", err)
	}
	t := p.newTerm(OpConstant)
	t.InType = typ
	t.Value = append([]float64(nil), values...)
	t.VecWidth = width
	t.LogScale = logScale
	return t, nil
}

// NewScalarConstant declares a constant holding a single value replicated
// across all slots.
func (p *Program) NewScalarConstant(value float64, logScale float64) (*Term, error) {
	return p.NewConstant([]float64{value}, logScale)
}

func (p *Program) checkWidth(typ Type, width int) error {
	if typ == TypeScalar {
		if width != 1 {
			return fmt.Errorf("scalar values must have width 1, got %d", width)
		}
		return nil
	}
	if width <= 0 || width&(width-1) != 0 {
		return fmt.Errorf("vector width %d is not a positive power of two", width)
	}
	if width > p.VecSize {
		return fmt.Errorf("vector width %d exceeds program vector size %d", width, p.VecSize)
	}
	return nil
}

// NewUnary appends a unary instruction (NEGATE, RELINEARIZE, MOD_SWITCH).
func (p *Program) NewUnary(op OpCode, a *Term) (*Term, error) {
	if op.Arity() != 1 || op.IsRotation() || op == OpRescale {
		return nil, fmt.Errorf("core: %s is not a plain unary instruction", op)
	}
	if a == nil {
		return nil, fmt.Errorf("core: nil operand for %s", op)
	}
	return p.newTerm(op, a), nil
}

// NewBinary appends a binary instruction (ADD, SUB, MULTIPLY).
func (p *Program) NewBinary(op OpCode, a, b *Term) (*Term, error) {
	if !op.IsBinary() {
		return nil, fmt.Errorf("core: %s is not a binary instruction", op)
	}
	if a == nil || b == nil {
		return nil, fmt.Errorf("core: nil operand for %s", op)
	}
	return p.newTerm(op, a, b), nil
}

// NewRotation appends a rotation instruction by the given step count.
func (p *Program) NewRotation(op OpCode, a *Term, by int) (*Term, error) {
	if !op.IsRotation() {
		return nil, fmt.Errorf("core: %s is not a rotation", op)
	}
	if a == nil {
		return nil, fmt.Errorf("core: nil operand for %s", op)
	}
	t := p.newTerm(op, a)
	t.RotateBy = by
	return t, nil
}

// NewRescale appends a RESCALE instruction dividing the scale by 2^logScale.
func (p *Program) NewRescale(a *Term, logScale float64) (*Term, error) {
	if a == nil {
		return nil, fmt.Errorf("core: nil operand for RESCALE")
	}
	if logScale <= 0 {
		return nil, fmt.Errorf("core: rescale divisor 2^%g is not greater than one", logScale)
	}
	t := p.newTerm(OpRescale, a)
	t.LogScale = logScale
	return t, nil
}

// AddOutput marks a term as a program output with the desired log2 scale.
func (p *Program) AddOutput(name string, t *Term, logScale float64) error {
	if t == nil {
		return fmt.Errorf("core: nil output term")
	}
	for _, o := range p.outputs {
		if o.Name == name {
			return fmt.Errorf("core: duplicate output name %q", name)
		}
	}
	p.outputs = append(p.outputs, &Output{Name: name, Term: t, LogScale: logScale})
	return nil
}

// --- Graph editing used by the rewriting framework ---

// SetParm rewires parameter slot `slot` of child to point at newParm,
// maintaining the use lists of both the old and the new parameter.
func (p *Program) SetParm(child *Term, slot int, newParm *Term) {
	old := child.parms[slot]
	if old == newParm {
		return
	}
	// Remove the (child, slot) use from the old parameter.
	for i, u := range old.uses {
		if u.child == child && u.slot == slot {
			old.uses = append(old.uses[:i], old.uses[i+1:]...)
			break
		}
	}
	child.parms[slot] = newParm
	newParm.uses = append(newParm.uses, use{child: child, slot: slot})
}

// InsertUnaryAfter creates a new instruction op(t) and redirects every use of
// t selected by keep (nil means all uses, excluding the new node itself) to
// the new instruction. It returns the inserted term. This implements the
// common "insert node between n and its children" step of the rewrite rules.
func (p *Program) InsertUnaryAfter(t *Term, op OpCode, keep func(child *Term, slot int) bool) *Term {
	// Snapshot uses before adding the new node (which itself becomes a use).
	existing := append([]use(nil), t.uses...)
	n := p.newTerm(op, t)
	for _, u := range existing {
		if keep == nil || keep(u.child, u.slot) {
			p.SetParm(u.child, u.slot, n)
		}
	}
	return n
}

// RedirectOutputs makes every output currently referring to old refer to new
// instead. Rewrite passes call this together with use rewiring when the
// rewritten term is itself an output.
func (p *Program) RedirectOutputs(old, new *Term) {
	for _, o := range p.outputs {
		if o.Term == old {
			o.Term = new
		}
	}
}

// --- Traversal helpers ---

// TopoSort returns the live terms of the program in topological order
// (parameters before uses). Terms that can no longer reach an output are
// omitted. Ready terms are emitted in creation order, which keeps pass
// output deterministic.
func (p *Program) TopoSort() []*Term {
	live := p.liveTerms()
	indeg := make(map[*Term]int, len(live))
	var queue []*Term
	for _, t := range p.terms {
		if !live[t] {
			continue
		}
		n := 0
		for _, parm := range t.parms {
			if live[parm] {
				n++
			}
		}
		indeg[t] = n
		if n == 0 {
			queue = append(queue, t)
		}
	}
	out := make([]*Term, 0, len(live))
	for len(queue) > 0 {
		t := queue[0]
		queue = queue[1:]
		out = append(out, t)
		seen := map[*Term]bool{}
		for _, u := range t.uses {
			c := u.child
			if !live[c] || seen[c] {
				continue
			}
			seen[c] = true
			// Decrement once per distinct parameter edge from t to c.
			for _, parm := range c.parms {
				if parm == t {
					indeg[c]--
				}
			}
			if indeg[c] == 0 {
				queue = append(queue, c)
			}
		}
	}
	if len(out) != len(live) {
		panic("core: cycle detected in program graph")
	}
	return out
}

// liveTerms returns the set of terms reachable from the outputs (or all
// terms, if the program has no outputs yet).
func (p *Program) liveTerms() map[*Term]bool {
	live := make(map[*Term]bool, len(p.terms))
	if len(p.outputs) == 0 {
		for _, t := range p.terms {
			live[t] = true
		}
		return live
	}
	var visit func(t *Term)
	visit = func(t *Term) {
		if live[t] {
			return
		}
		live[t] = true
		for _, parm := range t.parms {
			visit(parm)
		}
	}
	for _, o := range p.outputs {
		visit(o.Term)
	}
	return live
}

// InferTypes computes the value type of every live term: a term is Cipher if
// any of its parameters is Cipher, otherwise it keeps the plain vector type.
func (p *Program) InferTypes() map[*Term]Type {
	types := make(map[*Term]Type, len(p.terms))
	for _, t := range p.TopoSort() {
		if t.IsLeaf() {
			types[t] = t.InType
			continue
		}
		typ := TypeScalar
		for _, parm := range t.parms {
			switch types[parm] {
			case TypeCipher:
				typ = TypeCipher
			case TypeVector:
				if typ != TypeCipher {
					typ = TypeVector
				}
			}
		}
		types[t] = typ
	}
	return types
}

// MultiplicativeDepth returns the maximum number of MULTIPLY instructions on
// any input-to-output path of the live graph.
func (p *Program) MultiplicativeDepth() int {
	depth := map[*Term]int{}
	maxDepth := 0
	for _, t := range p.TopoSort() {
		d := 0
		for _, parm := range t.parms {
			if depth[parm] > d {
				d = depth[parm]
			}
		}
		if t.Op == OpMultiply {
			d++
		}
		depth[t] = d
		if d > maxDepth {
			maxDepth = d
		}
	}
	return maxDepth
}

// RotationSteps returns the sorted set of distinct rotation step counts used
// by the live graph, normalized to left-rotation steps (a right rotation by k
// is a left rotation by -k).
func (p *Program) RotationSteps() []int {
	set := map[int]bool{}
	for _, t := range p.TopoSort() {
		switch t.Op {
		case OpRotateLeft:
			if t.RotateBy != 0 {
				set[t.RotateBy] = true
			}
		case OpRotateRight:
			if t.RotateBy != 0 {
				set[-t.RotateBy] = true
			}
		}
	}
	steps := make([]int, 0, len(set))
	for s := range set {
		steps = append(steps, s)
	}
	sort.Ints(steps)
	return steps
}

// ValidateStructure checks the structural well-formedness of the program:
// arities, leaf attributes, output presence, and (for input programs) the
// absence of compiler-only instructions.
func (p *Program) ValidateStructure(asInput bool) error {
	if len(p.outputs) == 0 {
		return fmt.Errorf("core: program %q has no outputs", p.Name)
	}
	types := p.InferTypes()
	for _, t := range p.TopoSort() {
		if len(t.parms) != t.Op.Arity() {
			return fmt.Errorf("core: %s has %d parameters, want %d", t, len(t.parms), t.Op.Arity())
		}
		if asInput && t.Op.IsCompilerOp() {
			return fmt.Errorf("core: input programs may not contain %s instructions", t.Op)
		}
		switch t.Op {
		case OpInput:
			if t.Name == "" {
				return fmt.Errorf("core: input term t%d has no name", t.ID)
			}
		case OpConstant:
			if t.InType == TypeCipher {
				return fmt.Errorf("core: constant t%d cannot have Cipher type", t.ID)
			}
			if len(t.Value) != t.VecWidth {
				return fmt.Errorf("core: constant t%d has %d values for width %d", t.ID, len(t.Value), t.VecWidth)
			}
		case OpAdd, OpSub, OpMultiply:
			if types[t.parms[0]].IsPlain() && types[t.parms[1]].IsPlain() {
				// Plain-plain arithmetic is allowed (it folds at run time),
				// but at least the signature of Table 2 expects Cipher
				// somewhere in encrypted programs; nothing to check here.
				continue
			}
		case OpRescale:
			if t.LogScale <= 0 {
				return fmt.Errorf("core: %s has non-positive divisor", t)
			}
		}
	}
	for _, o := range p.outputs {
		if o.Term == nil {
			return fmt.Errorf("core: output %q has no term", o.Name)
		}
	}
	return nil
}

// Clone returns a deep copy of the program. Compilation operates on a clone
// so the caller's input program is never mutated.
func (p *Program) Clone() *Program {
	cp := &Program{
		Name:    p.Name,
		VecSize: p.VecSize,
		nextID:  p.nextID,
		byName:  map[string]*Term{},
	}
	mapping := make(map[*Term]*Term, len(p.terms))
	for _, t := range p.terms {
		nt := &Term{
			ID:       t.ID,
			Op:       t.Op,
			Name:     t.Name,
			Value:    append([]float64(nil), t.Value...),
			InType:   t.InType,
			VecWidth: t.VecWidth,
			LogScale: t.LogScale,
			RotateBy: t.RotateBy,
			Kernel:   t.Kernel,
		}
		mapping[t] = nt
		cp.terms = append(cp.terms, nt)
	}
	for _, t := range p.terms {
		nt := mapping[t]
		nt.parms = make([]*Term, len(t.parms))
		for i, parm := range t.parms {
			nt.parms[i] = mapping[parm]
		}
		nt.uses = make([]use, len(t.uses))
		for i, u := range t.uses {
			nt.uses[i] = use{child: mapping[u.child], slot: u.slot}
		}
	}
	for _, in := range p.inputs {
		cp.inputs = append(cp.inputs, mapping[in])
		cp.byName[in.Name] = mapping[in]
	}
	for _, o := range p.outputs {
		cp.outputs = append(cp.outputs, &Output{Name: o.Name, Term: mapping[o.Term], LogScale: o.LogScale})
	}
	return cp
}

// Stats summarizes a program for reporting.
type Stats struct {
	Terms         int
	Instructions  map[string]int
	Inputs        int
	Outputs       int
	MultDepth     int
	RotationSteps int
}

// ComputeStats gathers instruction counts and depth information.
func (p *Program) ComputeStats() Stats {
	s := Stats{Instructions: map[string]int{}, Inputs: len(p.inputs), Outputs: len(p.outputs)}
	for _, t := range p.TopoSort() {
		s.Terms++
		if !t.IsLeaf() {
			s.Instructions[t.Op.String()]++
		}
	}
	s.MultDepth = p.MultiplicativeDepth()
	s.RotationSteps = len(p.RotationSteps())
	return s
}
