package core

import "fmt"

// Term is a node of the program graph. Terms with parameters are
// instructions; terms without parameters are inputs or constants. The graph
// is an abstract semantic graph: every term can reach both its parameters
// (parents) and its uses (children), which is what the rewriting framework
// requires.
type Term struct {
	ID uint64
	Op OpCode

	parms []*Term // ordered parameters (parents)
	uses  []use   // children together with the parameter slot they use this term in

	// Attributes of leaf terms.
	Name     string    // input name (OpInput)
	Value    []float64 // constant value (OpConstant); length 1 for scalars
	InType   Type      // declared type of an OpInput / OpConstant leaf
	VecWidth int       // original vector width of the leaf (power of two, ≤ program vector size)

	// LogScale is the log2 fixed-point scale. For OpInput and OpConstant it
	// is the encoding scale; for OpRescale it is the log2 of the divisor.
	LogScale float64

	// RotateBy is the step count of rotation instructions.
	RotateBy int

	// Kernel optionally labels the high-level kernel (e.g. a tensor
	// operation) that generated this term. The CHET baseline uses it for
	// per-kernel scheduling and instruction insertion.
	Kernel string
}

// use records that `child` refers to the term through parameter slot `slot`.
type use struct {
	child *Term
	slot  int
}

// Parms returns the ordered parameter list (do not mutate; use Program edit
// methods instead).
func (t *Term) Parms() []*Term { return t.parms }

// Parm returns the i-th parameter.
func (t *Term) Parm(i int) *Term { return t.parms[i] }

// NumUses returns the number of (child, slot) references to this term.
func (t *Term) NumUses() int { return len(t.uses) }

// Uses returns the children referring to this term. The same child appears
// once per parameter slot through which it uses the term.
func (t *Term) Uses() []*Term {
	out := make([]*Term, len(t.uses))
	for i, u := range t.uses {
		out[i] = u.child
	}
	return out
}

// UseEdge identifies one reference to a term: the child instruction and the
// parameter slot through which it uses the term.
type UseEdge struct {
	Child *Term
	Slot  int
}

// UseEdges returns all (child, slot) references to this term. The slice is a
// copy and safe to retain across graph edits.
func (t *Term) UseEdges() []UseEdge {
	out := make([]UseEdge, len(t.uses))
	for i, u := range t.uses {
		out[i] = UseEdge{Child: u.child, Slot: u.slot}
	}
	return out
}

// IsLeaf reports whether the term has no parameters.
func (t *Term) IsLeaf() bool { return t.Op.IsLeaf() }

func (t *Term) String() string {
	switch t.Op {
	case OpInput:
		return fmt.Sprintf("t%d:%s(%q,%s)", t.ID, t.Op, t.Name, t.InType)
	case OpConstant:
		return fmt.Sprintf("t%d:%s(width=%d)", t.ID, t.Op, t.VecWidth)
	case OpRotateLeft, OpRotateRight:
		return fmt.Sprintf("t%d:%s(by=%d)", t.ID, t.Op, t.RotateBy)
	case OpRescale:
		return fmt.Sprintf("t%d:%s(2^%g)", t.ID, t.Op, t.LogScale)
	default:
		return fmt.Sprintf("t%d:%s", t.ID, t.Op)
	}
}
