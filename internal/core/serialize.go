package core

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
)

// The serialized program format mirrors the Protocol Buffers schema of
// Figure 1 in the paper (Program{vec_size, constants, inputs, outputs,
// insts}), rendered as JSON since this implementation is standard-library
// only. Scales are serialized as log2 values, matching how the compiler
// reasons about them.

type serialInstruction struct {
	Output   uint64   `json:"output"`
	OpCode   string   `json:"op_code"`
	Args     []uint64 `json:"args"`
	RotateBy int      `json:"rotate_by,omitempty"`
	LogScale float64  `json:"log_scale,omitempty"`
	Kernel   string   `json:"kernel,omitempty"`
}

type serialInput struct {
	Obj      uint64  `json:"obj"`
	Name     string  `json:"name"`
	Type     string  `json:"type"`
	Width    int     `json:"width"`
	LogScale float64 `json:"log_scale"`
}

type serialConstant struct {
	Obj      uint64    `json:"obj"`
	Type     string    `json:"type"`
	Width    int       `json:"width"`
	LogScale float64   `json:"log_scale"`
	Values   []float64 `json:"values"`
}

type serialOutput struct {
	Obj      uint64  `json:"obj"`
	Name     string  `json:"name"`
	LogScale float64 `json:"log_scale"`
}

type serialProgram struct {
	Name      string              `json:"name"`
	VecSize   int                 `json:"vec_size"`
	Constants []serialConstant    `json:"constants"`
	Inputs    []serialInput       `json:"inputs"`
	Outputs   []serialOutput      `json:"outputs"`
	Insts     []serialInstruction `json:"insts"`
}

// Serialize writes the program to w in the JSON program format. Terms are
// written in a canonical order — inputs in declaration order, then a
// post-order depth-first walk from the outputs in declaration order — and
// renumbered sequentially along it. That order is fully determined by the
// program's structure (the same structure Equal compares, plus kernel
// labels), never by the order terms happened to be created in, so a program
// built through the builder, lowered from source, or deserialized from JSON
// serializes to the same bytes — the content-hash property evaserve's
// registry relies on to compile each distinct program once per format mix.
func (p *Program) Serialize(w io.Writer) error {
	sp := serialProgram{Name: p.Name, VecSize: p.VecSize}
	order := p.CanonicalOrder()
	renum := make(map[*Term]uint64, len(order))
	for _, t := range order {
		renum[t] = uint64(len(renum) + 1)
	}
	for _, t := range order {
		switch t.Op {
		case OpInput:
			sp.Inputs = append(sp.Inputs, serialInput{
				Obj: renum[t], Name: t.Name, Type: t.InType.String(), Width: t.VecWidth, LogScale: t.LogScale,
			})
		case OpConstant:
			sp.Constants = append(sp.Constants, serialConstant{
				Obj: renum[t], Type: t.InType.String(), Width: t.VecWidth, LogScale: t.LogScale, Values: t.Value,
			})
		default:
			inst := serialInstruction{
				Output: renum[t], OpCode: t.Op.String(), RotateBy: t.RotateBy, LogScale: t.LogScale, Kernel: t.Kernel,
			}
			for _, parm := range t.Parms() {
				inst.Args = append(inst.Args, renum[parm])
			}
			sp.Insts = append(sp.Insts, inst)
		}
	}
	for _, o := range p.Outputs() {
		sp.Outputs = append(sp.Outputs, serialOutput{Obj: renum[o.Term], Name: o.Name, LogScale: o.LogScale})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(sp)
}

// CanonicalOrder returns the program's terms in a topological order that
// depends only on program structure: all inputs first, in declaration order
// (they are the program's signature, even when unused), then every remaining
// output-reachable term in post-order of a depth-first walk that visits
// outputs in declaration order and parameters left to right. Post-order
// emits parameters before their uses, so a single forward pass resolves all
// references on deserialization. A program with no outputs (never valid, but
// serializable mid-construction) falls back to TopoSort.
//
// Serialize and the lang pretty-printer both emit terms in this order; that
// shared order is what makes both representations canonical.
func (p *Program) CanonicalOrder() []*Term {
	if len(p.outputs) == 0 {
		return p.TopoSort()
	}
	seen := make(map[*Term]bool, len(p.terms))
	order := make([]*Term, 0, len(p.terms))
	var visit func(t *Term)
	visit = func(t *Term) {
		if seen[t] {
			return
		}
		seen[t] = true
		for _, parm := range t.parms {
			visit(parm)
		}
		order = append(order, t)
	}
	for _, in := range p.inputs {
		seen[in] = true
		order = append(order, in)
	}
	for _, o := range p.outputs {
		visit(o.Term)
	}
	return order
}

// SerializeBytes returns the program in the JSON program format as a byte
// slice. Because terms are written in topological order, the encoding is
// deterministic for a given program, which makes it usable as a content-hash
// preimage (the evaserve program registry relies on this).
func (p *Program) SerializeBytes() ([]byte, error) {
	var buf bytes.Buffer
	if err := p.Serialize(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// DeserializeBytes reads a program in the JSON program format from a byte
// slice.
func DeserializeBytes(data []byte) (*Program, error) {
	return Deserialize(bytes.NewReader(data))
}

// Deserialize reads a program in the JSON program format.
func Deserialize(r io.Reader) (*Program, error) {
	var sp serialProgram
	if err := json.NewDecoder(r).Decode(&sp); err != nil {
		return nil, fmt.Errorf("core: decoding program: %w", err)
	}
	p, err := NewProgram(sp.Name, sp.VecSize)
	if err != nil {
		return nil, err
	}
	byID := map[uint64]*Term{}

	// Leaves first (they carry their own IDs which we remap).
	for _, in := range sp.Inputs {
		typ, err := ParseType(in.Type)
		if err != nil {
			return nil, err
		}
		t, err := p.NewInput(in.Name, typ, in.Width, in.LogScale)
		if err != nil {
			return nil, err
		}
		byID[in.Obj] = t
	}
	for _, c := range sp.Constants {
		t, err := p.NewConstant(c.Values, c.LogScale)
		if err != nil {
			return nil, err
		}
		byID[c.Obj] = t
	}
	// Instructions are serialized in topological order (note: not necessarily
	// in ID order, since transformation passes create terms that earlier
	// instructions are rewired to), so a single pass in serialized order
	// resolves all arguments.
	for _, inst := range sp.Insts {
		op, err := ParseOpCode(inst.OpCode)
		if err != nil {
			return nil, err
		}
		parms := make([]*Term, len(inst.Args))
		for i, id := range inst.Args {
			pt, ok := byID[id]
			if !ok {
				return nil, fmt.Errorf("core: instruction %d references unknown term %d", inst.Output, id)
			}
			parms[i] = pt
		}
		want := 1
		if op.IsBinary() {
			want = 2
		}
		if len(parms) != want {
			return nil, fmt.Errorf("core: instruction %d (%s) has %d arguments; want %d", inst.Output, op, len(parms), want)
		}
		var t *Term
		switch {
		case op.IsBinary():
			t, err = p.NewBinary(op, parms[0], parms[1])
		case op.IsRotation():
			t, err = p.NewRotation(op, parms[0], inst.RotateBy)
		case op == OpRescale:
			t, err = p.NewRescale(parms[0], inst.LogScale)
		default:
			t, err = p.NewUnary(op, parms[0])
		}
		if err != nil {
			return nil, err
		}
		t.Kernel = inst.Kernel
		byID[inst.Output] = t
	}
	for _, o := range sp.Outputs {
		t, ok := byID[o.Obj]
		if !ok {
			return nil, fmt.Errorf("core: output %q references unknown term %d", o.Name, o.Obj)
		}
		if err := p.AddOutput(o.Name, t, o.LogScale); err != nil {
			return nil, err
		}
	}
	return p, nil
}
