package core

import (
	"strings"
	"testing"
)

// equalTestProgram builds a small program exercising sharing, rotations and
// constants: out = (x*x + rotl(x,2)) * c, with x*x used twice.
func equalTestProgram(t *testing.T) *Program {
	t.Helper()
	p := MustNewProgram("eq", 8)
	x, err := p.NewInput("x", TypeCipher, 8, 30)
	if err != nil {
		t.Fatal(err)
	}
	x2, _ := p.NewBinary(OpMultiply, x, x)
	r, _ := p.NewRotation(OpRotateLeft, x, 2)
	sum, _ := p.NewBinary(OpAdd, x2, r)
	c, _ := p.NewScalarConstant(0.5, 30)
	prod, _ := p.NewBinary(OpMultiply, sum, c)
	reuse, _ := p.NewBinary(OpAdd, prod, x2) // x2 shared
	if err := p.AddOutput("out", reuse, 30); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestEqualCloneAndSerializeRoundTrip(t *testing.T) {
	p := equalTestProgram(t)
	if err := Equal(p, p); err != nil {
		t.Fatalf("program not equal to itself: %v", err)
	}
	if err := Equal(p, p.Clone()); err != nil {
		t.Fatalf("program not equal to its clone: %v", err)
	}
	data, err := p.SerializeBytes()
	if err != nil {
		t.Fatal(err)
	}
	rt, err := DeserializeBytes(data)
	if err != nil {
		t.Fatal(err)
	}
	if err := Equal(p, rt); err != nil {
		t.Fatalf("program not equal to its serialized round trip: %v", err)
	}
}

func TestEqualDetectsDifferences(t *testing.T) {
	base := func() *Program { return equalTestProgram(t) }

	cases := []struct {
		name   string
		mutate func(p *Program)
		want   string
	}{
		{"name", func(p *Program) { p.Name = "other" }, "names differ"},
		{"output-scale", func(p *Program) { p.Outputs()[0].LogScale = 31 }, "scales differ"},
		{"rotation", func(p *Program) {
			for _, t := range p.Terms() {
				if t.Op == OpRotateLeft {
					t.RotateBy = 3
				}
			}
		}, "rotation steps differ"},
		{"constant", func(p *Program) {
			for _, t := range p.Terms() {
				if t.Op == OpConstant {
					t.Value[0] = 0.25
				}
			}
		}, "values differ"},
		{"input-scale", func(p *Program) { p.Inputs()[0].LogScale = 20 }, "scales differ"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			a, b := base(), base()
			tc.mutate(b)
			err := Equal(a, b)
			if err == nil {
				t.Fatal("mutated program compared equal")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestEqualSharingMatters checks that a shared term is not considered equal
// to two structurally identical but duplicated terms: the DAG shape is part
// of the IR (it determines instruction count and cost).
func TestEqualSharingMatters(t *testing.T) {
	shared := MustNewProgram("p", 8)
	x, _ := shared.NewInput("x", TypeCipher, 8, 30)
	sq, _ := shared.NewBinary(OpMultiply, x, x)
	sum, _ := shared.NewBinary(OpAdd, sq, sq) // one x*x, used twice
	_ = shared.AddOutput("out", sum, 30)

	dup := MustNewProgram("p", 8)
	dx, _ := dup.NewInput("x", TypeCipher, 8, 30)
	sq1, _ := dup.NewBinary(OpMultiply, dx, dx)
	sq2, _ := dup.NewBinary(OpMultiply, dx, dx) // two separate x*x terms
	dsum, _ := dup.NewBinary(OpAdd, sq1, sq2)
	_ = dup.AddOutput("out", dsum, 30)

	if err := Equal(shared, dup); err == nil {
		t.Fatal("shared and duplicated DAGs compared equal")
	}
	if err := Equal(dup, shared); err == nil {
		t.Fatal("duplicated and shared DAGs compared equal (reversed)")
	}
}

// TestSerializeIsConstructionOrderIndependent: two structurally identical
// programs whose terms were created in different orders serialize to the
// same bytes. The evaserve registry hashes the serialized form, so programs
// submitted via the builder, the JSON wire format, or .eva source must all
// map to one cache entry.
func TestSerializeIsConstructionOrderIndependent(t *testing.T) {
	early := MustNewProgram("p", 8)
	ex, _ := early.NewInput("x", TypeCipher, 8, 30)
	ec, _ := early.NewScalarConstant(0.5, 30) // constant created before the arithmetic
	esq, _ := early.NewBinary(OpMultiply, ex, ex)
	eout, _ := early.NewBinary(OpMultiply, esq, ec)
	_ = early.AddOutput("out", eout, 30)

	late := MustNewProgram("p", 8)
	lx, _ := late.NewInput("x", TypeCipher, 8, 30)
	lsq, _ := late.NewBinary(OpMultiply, lx, lx)
	lc, _ := late.NewScalarConstant(0.5, 30) // constant created after
	lout, _ := late.NewBinary(OpMultiply, lsq, lc)
	_ = late.AddOutput("out", lout, 30)

	a, err := early.SerializeBytes()
	if err != nil {
		t.Fatal(err)
	}
	b, err := late.SerializeBytes()
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Errorf("serialized forms differ:\n%s\nvs:\n%s", a, b)
	}

	// Independent sibling instructions created in opposite orders must also
	// serialize identically (creation order is not structure).
	sib1 := MustNewProgram("s", 8)
	sx, _ := sib1.NewInput("x", TypeCipher, 8, 30)
	sr1, _ := sib1.NewRotation(OpRotateLeft, sx, 1)
	sr2, _ := sib1.NewRotation(OpRotateLeft, sx, 2)
	ssum, _ := sib1.NewBinary(OpAdd, sr1, sr2)
	_ = sib1.AddOutput("out", ssum, 30)

	sib2 := MustNewProgram("s", 8)
	tx, _ := sib2.NewInput("x", TypeCipher, 8, 30)
	tr2, _ := sib2.NewRotation(OpRotateLeft, tx, 2) // created first this time
	tr1, _ := sib2.NewRotation(OpRotateLeft, tx, 1)
	tsum, _ := sib2.NewBinary(OpAdd, tr1, tr2)
	_ = sib2.AddOutput("out", tsum, 30)

	s1, err := sib1.SerializeBytes()
	if err != nil {
		t.Fatal(err)
	}
	s2, err := sib2.SerializeBytes()
	if err != nil {
		t.Fatal(err)
	}
	if string(s1) != string(s2) {
		t.Errorf("sibling creation order leaked into the serialization:\n%s\nvs:\n%s", s1, s2)
	}
	// And a deserialization round trip is also byte-stable.
	rt, err := DeserializeBytes(a)
	if err != nil {
		t.Fatal(err)
	}
	c, err := rt.SerializeBytes()
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(c) {
		t.Errorf("serialization not stable across a deserialize round trip:\n%s\nvs:\n%s", a, c)
	}
}

// TestEqualIgnoresDeadCodeAndKernels: terms unreachable from any output and
// kernel labels do not affect equality.
func TestEqualIgnoresDeadCodeAndKernels(t *testing.T) {
	a := equalTestProgram(t)
	b := equalTestProgram(t)
	// Dead term in b only.
	dead, _ := b.NewBinary(OpAdd, b.Inputs()[0], b.Inputs()[0])
	_ = dead
	// Kernel labels in b only.
	for _, t := range b.Terms() {
		t.Kernel = "conv1"
	}
	if err := Equal(a, b); err != nil {
		t.Fatalf("dead code or kernel labels broke equality: %v", err)
	}
}
