// Package core defines the EVA language: the term-graph intermediate
// representation described in Section 3 of the paper (types, opcodes,
// programs as DAGs of instructions over Cipher/Vector/Scalar values), basic
// structural validation, and (de)serialization of programs.
//
// A Program is used in three roles, exactly as in the paper: as the input
// format produced by frontends, as the intermediate representation rewritten
// by the compiler passes (package rewrite), and as the executable format
// consumed by the executor (package execute).
package core

import "fmt"

// OpCode enumerates the instructions of the EVA language (Table 2 of the
// paper plus the Input/Constant leaf kinds of the serialized format).
type OpCode int

const (
	// OpInvalid is the zero value and never appears in valid programs.
	OpInvalid OpCode = iota

	// Leaf nodes.
	OpInput    // a value provided at run time (Cipher, Vector or Scalar)
	OpConstant // a compile-time constant (Vector or Scalar; never Cipher)

	// Instructions that frontends may generate.
	OpNegate
	OpAdd
	OpSub
	OpMultiply
	OpRotateLeft
	OpRotateRight

	// FHE-specific instructions inserted by the compiler only.
	OpRelinearize
	OpModSwitch
	OpRescale
)

var opNames = map[OpCode]string{
	OpInvalid:     "INVALID",
	OpInput:       "INPUT",
	OpConstant:    "CONSTANT",
	OpNegate:      "NEGATE",
	OpAdd:         "ADD",
	OpSub:         "SUB",
	OpMultiply:    "MULTIPLY",
	OpRotateLeft:  "ROTATE_LEFT",
	OpRotateRight: "ROTATE_RIGHT",
	OpRelinearize: "RELINEARIZE",
	OpModSwitch:   "MOD_SWITCH",
	OpRescale:     "RESCALE",
}

var opByName = func() map[string]OpCode {
	m := make(map[string]OpCode, len(opNames))
	for op, name := range opNames {
		m[name] = op
	}
	return m
}()

// String returns the canonical instruction mnemonic.
func (op OpCode) String() string {
	if s, ok := opNames[op]; ok {
		return s
	}
	return fmt.Sprintf("OpCode(%d)", int(op))
}

// ParseOpCode converts a mnemonic back to its OpCode.
func ParseOpCode(s string) (OpCode, error) {
	if op, ok := opByName[s]; ok && op != OpInvalid {
		return op, nil
	}
	return OpInvalid, fmt.Errorf("core: unknown opcode %q", s)
}

// IsLeaf reports whether the opcode denotes a node without parameters.
func (op OpCode) IsLeaf() bool { return op == OpInput || op == OpConstant }

// IsFrontendOp reports whether the opcode is allowed in input programs (the
// first group of Table 2).
func (op OpCode) IsFrontendOp() bool {
	switch op {
	case OpInput, OpConstant, OpNegate, OpAdd, OpSub, OpMultiply, OpRotateLeft, OpRotateRight:
		return true
	}
	return false
}

// IsCompilerOp reports whether the opcode may only be inserted by the
// compiler (RELINEARIZE, MOD_SWITCH, RESCALE).
func (op OpCode) IsCompilerOp() bool {
	return op == OpRelinearize || op == OpModSwitch || op == OpRescale
}

// IsBinary reports whether the instruction takes two value parameters.
func (op OpCode) IsBinary() bool { return op == OpAdd || op == OpSub || op == OpMultiply }

// IsRotation reports whether the instruction is a rotation.
func (op OpCode) IsRotation() bool { return op == OpRotateLeft || op == OpRotateRight }

// IsModulusChanging reports whether the instruction consumes an element of
// the coefficient modulus chain (RESCALE and MOD_SWITCH).
func (op OpCode) IsModulusChanging() bool { return op == OpRescale || op == OpModSwitch }

// Arity returns the number of term parameters the instruction takes.
func (op OpCode) Arity() int {
	switch {
	case op.IsLeaf():
		return 0
	case op.IsBinary():
		return 2
	default:
		return 1
	}
}

// Type classifies the values flowing through a program (Table 1 of the paper).
type Type int

const (
	// TypeInvalid is the zero value.
	TypeInvalid Type = iota
	// TypeCipher is an encrypted vector of fixed-point values.
	TypeCipher
	// TypeVector is an unencrypted vector of 64-bit floats.
	TypeVector
	// TypeScalar is a single 64-bit float (encoded as a width-1 vector).
	TypeScalar
)

// String returns the type name used by the serialized format.
func (t Type) String() string {
	switch t {
	case TypeCipher:
		return "CIPHER"
	case TypeVector:
		return "VECTOR"
	case TypeScalar:
		return "SCALAR"
	default:
		return "INVALID"
	}
}

// ParseType converts a type name back to its Type.
func ParseType(s string) (Type, error) {
	switch s {
	case "CIPHER":
		return TypeCipher, nil
	case "VECTOR":
		return TypeVector, nil
	case "SCALAR":
		return TypeScalar, nil
	}
	return TypeInvalid, fmt.Errorf("core: unknown type %q", s)
}

// IsPlain reports whether the type is unencrypted.
func (t Type) IsPlain() bool { return t == TypeVector || t == TypeScalar }
