package analysis

import (
	"math"
	"sort"

	"eva/internal/core"
	"eva/internal/rewrite"
)

// CostModel estimates the execution cost of a compiled program under a simple
// RNS-CKKS cost model: the dominant cost of every homomorphic operation is a
// number of "limb passes" — length-N NTT or coefficient-wise passes over each
// remaining RNS limb — so the cost of an instruction is proportional to
// N·log(N) for transform-bound operations and to N for element-wise ones,
// times the number of limbs alive at the instruction's level. Key-switching
// operations (relinearization and rotation) additionally pay one pass per
// (digit, limb) pair. This is the quantity EVA's parameter-minimizing
// passes reduce, and it explains the Table 5/6 relationship: fewer chain
// primes means both fewer and cheaper operations.
type CostModel struct {
	// LogN is the ring-degree exponent used for the estimate.
	LogN int
	// TotalLevels is the length of the modulus chain (without the special prime).
	TotalLevels int
}

// InstructionCost is the estimated cost of one instruction in abstract
// "limb-element operations".
type InstructionCost struct {
	Term *core.Term
	Cost float64
}

// CostEstimate summarizes a program's estimated execution cost.
type CostEstimate struct {
	Total    float64
	ByOp     map[string]float64
	Heaviest []InstructionCost
	// CriticalPath is the estimated cost along the most expensive
	// dependence chain: a lower bound on parallel execution time.
	CriticalPath float64
}

// OpUnits returns the model's cost of one instruction in abstract
// "limb-element operations", given its opcode, its chain position (as
// computed by rewrite.Levels; deeper positions operate on fewer limbs), and —
// for multiplies — whether both operands are ciphertexts. Leaves and plain
// terms cost 0 by definition and are the caller's responsibility to exclude.
// The per-op shape here is what calibration (internal/profile) fits measured
// wall-clock coefficients against.
func (m CostModel) OpUnits(op core.OpCode, chainPos int, ctct bool) float64 {
	n := math.Exp2(float64(m.LogN))
	logN := float64(m.LogN)
	limbs := float64(m.TotalLevels - chainPos)
	if limbs < 1 {
		limbs = 1
	}
	switch {
	case op == core.OpAdd || op == core.OpSub || op == core.OpNegate || op == core.OpModSwitch:
		return n * limbs
	case op == core.OpMultiply:
		// Element-wise limb products; ct-pt and ct-ct differ by a small factor.
		factor := 2.0
		if ctct {
			factor = 4
		}
		return factor * n * limbs
	case op == core.OpRescale:
		return n * logN * limbs
	case op == core.OpRelinearize || op.IsRotation():
		// Key switching: one NTT pass per digit per limb.
		return n * logN * limbs * limbs
	default:
		return n * limbs
	}
}

// EstimateCost walks the compiled program and estimates its cost under the
// model. levels must map every Cipher term to its chain position (as computed
// by rewrite.Levels); terms at deeper levels operate on fewer limbs.
func (m CostModel) EstimateCost(p *core.Program) CostEstimate {
	levels := rewrite.Levels(p)
	types := p.InferTypes()

	est := CostEstimate{ByOp: map[string]float64{}}
	pathCost := map[*core.Term]float64{}
	var all []InstructionCost

	for _, t := range p.TopoSort() {
		var cost float64
		if !t.IsLeaf() && types[t] == core.TypeCipher {
			ctct := t.Op == core.OpMultiply &&
				types[t.Parm(0)] == core.TypeCipher && types[t.Parm(1)] == core.TypeCipher
			cost = m.OpUnits(t.Op, levels[t], ctct)
		}
		est.Total += cost
		est.ByOp[t.Op.String()] += cost

		longest := 0.0
		for _, parm := range t.Parms() {
			if pathCost[parm] > longest {
				longest = pathCost[parm]
			}
		}
		pathCost[t] = longest + cost
		if pathCost[t] > est.CriticalPath {
			est.CriticalPath = pathCost[t]
		}
		if cost > 0 {
			all = append(all, InstructionCost{Term: t, Cost: cost})
		}
	}
	sort.Slice(all, func(i, j int) bool { return all[i].Cost > all[j].Cost })
	if len(all) > 10 {
		all = all[:10]
	}
	est.Heaviest = all
	return est
}

// ParallelSpeedupBound returns the cost model's upper bound on the speedup an
// ideal parallel schedule can achieve over sequential execution (total work
// divided by critical-path work) — the quantity that limits Figure 7 scaling.
func (e CostEstimate) ParallelSpeedupBound() float64 {
	if e.CriticalPath <= 0 {
		return 1
	}
	return e.Total / e.CriticalPath
}
