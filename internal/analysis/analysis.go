// Package analysis implements the graph-traversal analyses of the EVA
// compiler (Section 6 of the paper): the validation passes that guarantee the
// transformed program satisfies every constraint of the target RNS-CKKS
// scheme (and therefore can never trigger a runtime exception in the FHE
// library), the encryption-parameter selection pass, and the rotation-key
// selection pass.
package analysis

import (
	"fmt"
	"math"

	"eva/internal/core"
	"eva/internal/rewrite"
)

// ModSwitchMark is the chain entry standing for a MOD_SWITCH (the paper's ∞):
// it consumes a modulus-chain prime without constraining its value.
var ModSwitchMark = math.Inf(1)

// Chain is a rescale chain: the sequence of log2 divisors consumed on the way
// from a freshly-encrypted root to a term, with ModSwitchMark for entries
// consumed by MOD_SWITCH instead of RESCALE.
type Chain []float64

// Equal implements the paper's chain equality: equal lengths and, position by
// position, equal values unless either side is the ∞ wildcard.
func (c Chain) Equal(o Chain) bool {
	if len(c) != len(o) {
		return false
	}
	for i := range c {
		if math.IsInf(c[i], 1) || math.IsInf(o[i], 1) {
			continue
		}
		if c[i] != o[i] {
			return false
		}
	}
	return true
}

// merge combines two equal chains, preferring concrete entries over ∞.
func (c Chain) merge(o Chain) Chain {
	out := make(Chain, len(c))
	for i := range c {
		switch {
		case !math.IsInf(c[i], 1):
			out[i] = c[i]
		default:
			out[i] = o[i]
		}
	}
	return out
}

func (c Chain) clone() Chain { return append(Chain(nil), c...) }

// ConstraintError describes a violated scheme constraint, identifying the
// term at which validation failed. The compiler surfaces these at compile
// time so the FHE library never throws at run time.
type ConstraintError struct {
	Term       *core.Term
	Constraint int
	Detail     string
}

func (e *ConstraintError) Error() string {
	return fmt.Sprintf("analysis: constraint %d violated at %s: %s", e.Constraint, e.Term, e.Detail)
}

// ComputeChains performs the first validation pass: it computes the rescale
// chain of every Cipher term, asserting that chains are conforming and that
// the chains of the Cipher operands of ADD, SUB and MULTIPLY match
// (Constraint 1). Plain terms are not tracked (they carry no coefficient
// modulus of their own; the executor encodes them at the level of the Cipher
// operand they meet).
func ComputeChains(p *core.Program) (map[*core.Term]Chain, error) {
	types := p.InferTypes()
	chains := make(map[*core.Term]Chain, p.NumTerms())
	for _, t := range p.TopoSort() {
		if types[t] != core.TypeCipher {
			continue
		}
		var merged Chain
		var have bool
		for _, parm := range t.Parms() {
			if types[parm] != core.TypeCipher {
				continue
			}
			pc := chains[parm]
			if !have {
				merged, have = pc.clone(), true
				continue
			}
			if !merged.Equal(pc) {
				return nil, &ConstraintError{Term: t, Constraint: 1,
					Detail: fmt.Sprintf("operand coefficient moduli differ: chains %v vs %v", merged, pc)}
			}
			merged = merged.merge(pc)
		}
		switch t.Op {
		case core.OpRescale:
			merged = append(merged, t.LogScale)
		case core.OpModSwitch:
			merged = append(merged, ModSwitchMark)
		}
		chains[t] = merged
	}
	return chains, nil
}

// ValidateScales performs the second validation pass: it recomputes the
// fixed-point scale of every term and asserts that ADD and SUB operands have
// matching scales (Constraint 2), that every RESCALE divides by at most the
// maximum allowed rescale value (Constraint 4), and that no scale drops to or
// below zero (which would destroy the message).
func ValidateScales(p *core.Program, maxRescaleLog float64) (map[*core.Term]float64, error) {
	const tolerance = 1e-9
	scales := rewrite.ComputeLogScales(p)
	for _, t := range p.TopoSort() {
		switch t.Op {
		case core.OpAdd, core.OpSub:
			a, b := scales[t.Parm(0)], scales[t.Parm(1)]
			if math.Abs(a-b) > tolerance {
				return nil, &ConstraintError{Term: t, Constraint: 2,
					Detail: fmt.Sprintf("operand scales differ: 2^%g vs 2^%g", a, b)}
			}
		case core.OpRescale:
			if t.LogScale > maxRescaleLog {
				return nil, &ConstraintError{Term: t, Constraint: 4,
					Detail: fmt.Sprintf("rescale divisor 2^%g exceeds the maximum 2^%g", t.LogScale, maxRescaleLog)}
			}
		}
		if scales[t] <= 0 {
			return nil, &ConstraintError{Term: t, Constraint: 2,
				Detail: fmt.Sprintf("scale dropped to 2^%g; the message would be lost", scales[t])}
		}
	}
	return scales, nil
}

// ValidatePolynomialCounts performs the third validation pass: it tracks the
// number of polynomials of every Cipher term and asserts that the operands of
// every MULTIPLY (and rotation) consist of exactly two polynomials
// (Constraint 3), which guarantees a single relinearization key suffices.
func ValidatePolynomialCounts(p *core.Program) error {
	types := p.InferTypes()
	polys := make(map[*core.Term]int, p.NumTerms())
	for _, t := range p.TopoSort() {
		if types[t] != core.TypeCipher {
			continue
		}
		switch t.Op {
		case core.OpInput:
			polys[t] = 2
		case core.OpMultiply:
			a, b := t.Parm(0), t.Parm(1)
			if types[a] == core.TypeCipher && types[b] == core.TypeCipher {
				if polys[a] != 2 || polys[b] != 2 {
					return &ConstraintError{Term: t, Constraint: 3,
						Detail: fmt.Sprintf("multiplication operands have %d and %d polynomials; relinearization missing", polys[a], polys[b])}
				}
				polys[t] = 3
			} else {
				polys[t] = maxCipherPolys(t, types, polys)
			}
		case core.OpRelinearize:
			polys[t] = 2
		case core.OpRotateLeft, core.OpRotateRight:
			if polys[t.Parm(0)] != 2 {
				return &ConstraintError{Term: t, Constraint: 3,
					Detail: "rotation of a ciphertext with more than two polynomials; relinearization missing"}
			}
			polys[t] = 2
		default:
			polys[t] = maxCipherPolys(t, types, polys)
		}
	}
	return nil
}

func maxCipherPolys(t *core.Term, types map[*core.Term]core.Type, polys map[*core.Term]int) int {
	n := 2
	for _, parm := range t.Parms() {
		if types[parm] == core.TypeCipher && polys[parm] > n {
			n = polys[parm]
		}
	}
	return n
}

// Validate runs all validation passes and returns the computed chains and
// scales for use by parameter selection.
func Validate(p *core.Program, maxRescaleLog float64) (map[*core.Term]Chain, map[*core.Term]float64, error) {
	chains, err := ComputeChains(p)
	if err != nil {
		return nil, nil, err
	}
	scales, err := ValidateScales(p, maxRescaleLog)
	if err != nil {
		return nil, nil, err
	}
	if err := ValidatePolynomialCounts(p); err != nil {
		return nil, nil, err
	}
	return chains, scales, nil
}
