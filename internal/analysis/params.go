package analysis

import (
	"fmt"
	"math"

	"eva/internal/core"
	"eva/internal/rewrite"
)

// minPrimeLog is the smallest chain prime the backend can generate.
const minPrimeLog = 20

// SpecialPrimeLog is the bit size of the key-switching special prime, fixed
// to the maximum rescale value as in the paper.
const SpecialPrimeLog = 60

// ParameterPlan is the output of the encryption-parameter selection pass: the
// vector of prime bit sizes that must be used to generate the encryption
// parameters, plus bookkeeping used to report Table 6-style statistics.
type ParameterPlan struct {
	// BitSizes lists the chain prime bit sizes in consumption order:
	// BitSizes[0] is consumed by the first RESCALE/MOD_SWITCH after
	// encryption and the last entries hold the output value. The special
	// prime is not included.
	BitSizes []int
	// SpecialBits is the bit size of the key-switching special prime.
	SpecialBits int
	// MaxChainLength is the longest conforming rescale chain over all outputs.
	MaxChainLength int
	// CriticalOutput is the name of the output that determined the plan.
	CriticalOutput string
}

// LogQ returns the total bit count of the chain primes (without the special prime).
func (pl *ParameterPlan) LogQ() int {
	total := 0
	for _, b := range pl.BitSizes {
		total += b
	}
	return total
}

// LogQP returns the total modulus bit count including the special prime.
func (pl *ParameterPlan) LogQP() int { return pl.LogQ() + pl.SpecialBits }

// NumPrimes returns the number of coefficient-modulus primes r (including the
// special prime), the quantity the paper's Table 6 reports.
func (pl *ParameterPlan) NumPrimes() int { return len(pl.BitSizes) + 1 }

// SelectParameters implements the encryption-parameter selection pass of
// Section 6.2: it computes the conforming rescale chain and scale of every
// output, determines the output with the longest requirement, and produces
// the vector of prime bit sizes for the modulus chain.
func SelectParameters(p *core.Program, chains map[*core.Term]Chain, scales map[*core.Term]float64, maxRescaleLog float64) (*ParameterPlan, error) {
	if len(p.Outputs()) == 0 {
		return nil, fmt.Errorf("analysis: program has no outputs")
	}
	if maxRescaleLog <= 0 {
		maxRescaleLog = SpecialPrimeLog
	}
	waterline := rewrite.Waterline(p)
	if waterline < minPrimeLog {
		waterline = minPrimeLog
	}

	best := -1
	var bestChain Chain
	var bestTail []int
	var bestName string
	maxChain := 0
	for _, o := range p.Outputs() {
		chain := chains[o.Term]
		if len(chain) > maxChain {
			maxChain = len(chain)
		}
		// s'_o = o.scale * desired output scale, factorized into primes of at
		// most the maximum rescale size.
		tail := factorizeScale(scales[o.Term]+o.LogScale, maxRescaleLog)
		if score := len(chain) + len(tail); score > best {
			best = score
			bestChain = chain
			bestTail = tail
			bestName = o.Name
		}
	}

	plan := &ParameterPlan{SpecialBits: SpecialPrimeLog, MaxChainLength: maxChain, CriticalOutput: bestName}
	for _, c := range bestChain {
		if math.IsInf(c, 1) {
			// A position consumed only by MOD_SWITCH constrains nothing; use
			// the waterline so the prime stays as small as possible.
			plan.BitSizes = append(plan.BitSizes, int(math.Ceil(waterline)))
			continue
		}
		plan.BitSizes = append(plan.BitSizes, clampPrimeBits(int(math.Ceil(c))))
	}
	plan.BitSizes = append(plan.BitSizes, bestTail...)
	return plan, nil
}

// factorizeScale splits a log2 scale requirement into prime bit sizes of at
// most maxRescaleLog bits each (all but the last equal to the maximum), as
// prescribed by the parameter selection pass.
func factorizeScale(logScale, maxRescaleLog float64) []int {
	if logScale <= 0 {
		return []int{minPrimeLog}
	}
	var out []int
	remaining := logScale
	for remaining > maxRescaleLog {
		out = append(out, int(maxRescaleLog))
		remaining -= maxRescaleLog
	}
	out = append(out, clampPrimeBits(int(math.Ceil(remaining))))
	return out
}

func clampPrimeBits(bits int) int {
	if bits < minPrimeLog {
		return minPrimeLog
	}
	if bits > SpecialPrimeLog {
		return SpecialPrimeLog
	}
	return bits
}

// SelectRotationSteps implements the rotation-key selection pass: the set of
// distinct rotation step counts used by the program, for which Galois keys
// must be generated.
func SelectRotationSteps(p *core.Program) []int { return p.RotationSteps() }
