package analysis

import (
	"math"
	"strings"
	"testing"

	"eva/internal/core"
	"eva/internal/rewrite"
)

// buildX2Y3 builds the Figure 2 example and runs the default transformation
// pipeline so the analyses have something realistic to chew on.
func buildCompiledX2Y3(t *testing.T) *core.Program {
	t.Helper()
	p := core.MustNewProgram("x2y3", 8)
	x, _ := p.NewInput("x", core.TypeCipher, 8, 60)
	y, _ := p.NewInput("y", core.TypeCipher, 8, 30)
	x2, _ := p.NewBinary(core.OpMultiply, x, x)
	y2, _ := p.NewBinary(core.OpMultiply, y, y)
	y3, _ := p.NewBinary(core.OpMultiply, y2, y)
	out, _ := p.NewBinary(core.OpMultiply, x2, y3)
	if err := p.AddOutput("out", out, 30); err != nil {
		t.Fatal(err)
	}
	if err := rewrite.Transform(p, rewrite.DefaultOptions()); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestChainEquality(t *testing.T) {
	inf := ModSwitchMark
	cases := []struct {
		a, b Chain
		want bool
	}{
		{Chain{60, 60}, Chain{60, 60}, true},
		{Chain{60, inf}, Chain{60, 30}, true},
		{Chain{inf, inf}, Chain{60, 30}, true},
		{Chain{60, 30}, Chain{60, 60}, false},
		{Chain{60}, Chain{60, 60}, false},
		{Chain{}, Chain{}, true},
	}
	for i, c := range cases {
		if got := c.a.Equal(c.b); got != c.want {
			t.Errorf("case %d: Equal(%v, %v) = %v, want %v", i, c.a, c.b, got, c.want)
		}
	}
	merged := Chain{60, inf, inf}.merge(Chain{60, 30, inf})
	if merged[0] != 60 || merged[1] != 30 || !math.IsInf(merged[2], 1) {
		t.Errorf("merge result %v", merged)
	}
}

func TestComputeChainsOnCompiledProgram(t *testing.T) {
	p := buildCompiledX2Y3(t)
	chains, err := ComputeChains(p)
	if err != nil {
		t.Fatal(err)
	}
	out := p.Outputs()[0].Term
	if len(chains[out]) != 2 {
		t.Errorf("output chain %v, want length 2", chains[out])
	}
	for _, in := range p.Inputs() {
		if len(chains[in]) != 0 {
			t.Errorf("input chain should be empty, got %v", chains[in])
		}
	}
}

func TestComputeChainsDetectsConstraint1Violation(t *testing.T) {
	// x*x rescaled on one branch but not the other, then added: the operand
	// coefficient moduli differ, which is exactly Constraint 1.
	p := core.MustNewProgram("bad", 8)
	x, _ := p.NewInput("x", core.TypeCipher, 8, 30)
	x2, _ := p.NewBinary(core.OpMultiply, x, x)
	rs, _ := p.NewRescale(x2, 30)
	sum, _ := p.NewBinary(core.OpAdd, rs, x)
	p.AddOutput("out", sum, 30)
	_, err := ComputeChains(p)
	if err == nil {
		t.Fatal("expected a constraint-1 violation")
	}
	var cerr *ConstraintError
	if !asConstraintError(err, &cerr) || cerr.Constraint != 1 {
		t.Fatalf("expected ConstraintError{1}, got %v", err)
	}
	if !strings.Contains(err.Error(), "constraint 1") {
		t.Errorf("error message should mention the constraint: %v", err)
	}
}

func TestValidateScalesDetectsViolations(t *testing.T) {
	// Constraint 2: ADD operands with different scales.
	p := core.MustNewProgram("scales", 8)
	x, _ := p.NewInput("x", core.TypeCipher, 8, 30)
	y, _ := p.NewInput("y", core.TypeCipher, 8, 20)
	sum, _ := p.NewBinary(core.OpAdd, x, y)
	p.AddOutput("out", sum, 30)
	if _, err := ValidateScales(p, 60); err == nil {
		t.Error("expected constraint-2 violation for mismatched ADD scales")
	}

	// Constraint 4: rescale divisor larger than the maximum.
	q := core.MustNewProgram("divisor", 8)
	a, _ := q.NewInput("a", core.TypeCipher, 8, 50)
	a2, _ := q.NewBinary(core.OpMultiply, a, a)
	rs, _ := q.NewRescale(a2, 70)
	q.AddOutput("out", rs, 30)
	if _, err := ValidateScales(q, 60); err == nil {
		t.Error("expected constraint-4 violation for oversized rescale")
	}

	// Scale dropping to zero or below destroys the message.
	r := core.MustNewProgram("zero", 8)
	b, _ := r.NewInput("b", core.TypeCipher, 8, 30)
	b2, _ := r.NewBinary(core.OpMultiply, b, b)
	rs2, _ := r.NewRescale(b2, 60)
	r.AddOutput("out", rs2, 30)
	if _, err := ValidateScales(r, 60); err == nil {
		t.Error("expected violation for vanishing scale")
	}

	// A valid program passes and returns the scales.
	ok := buildCompiledX2Y3(t)
	scales, err := ValidateScales(ok, 60)
	if err != nil {
		t.Fatal(err)
	}
	if len(scales) == 0 {
		t.Error("expected scales for every term")
	}
}

func TestValidatePolynomialCounts(t *testing.T) {
	// Multiplying an unrelinearized product violates Constraint 3.
	p := core.MustNewProgram("polys", 8)
	x, _ := p.NewInput("x", core.TypeCipher, 8, 30)
	x2, _ := p.NewBinary(core.OpMultiply, x, x)
	x3, _ := p.NewBinary(core.OpMultiply, x2, x)
	p.AddOutput("out", x3, 30)
	if err := ValidatePolynomialCounts(p); err == nil {
		t.Error("expected constraint-3 violation for missing relinearization")
	}

	// Rotating an unrelinearized product is also rejected.
	q := core.MustNewProgram("rot", 8)
	y, _ := q.NewInput("y", core.TypeCipher, 8, 30)
	y2, _ := q.NewBinary(core.OpMultiply, y, y)
	rot, _ := q.NewRotation(core.OpRotateLeft, y2, 1)
	q.AddOutput("out", rot, 30)
	if err := ValidatePolynomialCounts(q); err == nil {
		t.Error("expected constraint-3 violation for rotating a degree-2 ciphertext")
	}

	// With RELINEARIZE inserted, validation passes.
	r := buildCompiledX2Y3(t)
	if err := ValidatePolynomialCounts(r); err != nil {
		t.Errorf("valid program rejected: %v", err)
	}
}

func TestValidateRunsAllPasses(t *testing.T) {
	p := buildCompiledX2Y3(t)
	chains, scales, err := Validate(p, 60)
	if err != nil {
		t.Fatal(err)
	}
	if len(chains) == 0 || len(scales) == 0 {
		t.Error("Validate should return chains and scales")
	}
}

func TestSelectParameters(t *testing.T) {
	p := buildCompiledX2Y3(t)
	chains, scales, err := Validate(p, 60)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := SelectParameters(p, chains, scales, 60)
	if err != nil {
		t.Fatal(err)
	}
	if plan.SpecialBits != 60 {
		t.Errorf("special prime bits = %d, want 60", plan.SpecialBits)
	}
	// Chain of length 2 (two rescales by 2^60) plus the output requirement
	// (scale 2^30 times desired 2^30 = 2^60 -> one more 60-bit prime).
	if plan.MaxChainLength != 2 {
		t.Errorf("max chain length = %d, want 2", plan.MaxChainLength)
	}
	if len(plan.BitSizes) < 3 {
		t.Errorf("bit sizes %v, want at least 3 primes", plan.BitSizes)
	}
	for _, b := range plan.BitSizes {
		if b < 20 || b > 60 {
			t.Errorf("prime bit size %d out of the valid range", b)
		}
	}
	if plan.LogQ() <= 0 || plan.LogQP() != plan.LogQ()+60 {
		t.Error("LogQ/LogQP inconsistent")
	}
	if plan.NumPrimes() != len(plan.BitSizes)+1 {
		t.Error("NumPrimes should count the special prime")
	}
	if plan.CriticalOutput != "out" {
		t.Errorf("critical output %q, want %q", plan.CriticalOutput, "out")
	}
}

func TestSelectParametersErrors(t *testing.T) {
	p := core.MustNewProgram("empty", 8)
	if _, err := SelectParameters(p, nil, nil, 60); err == nil {
		t.Error("expected error for a program without outputs")
	}
}

func TestFactorizeScale(t *testing.T) {
	cases := []struct {
		logScale float64
		want     []int
	}{
		{0, []int{20}},
		{-5, []int{20}},
		{30, []int{30}},
		{60, []int{60}},
		{61, []int{60, 20}}, // the 1-bit remainder is clamped to a valid prime size
		{90, []int{60, 30}},
		{150, []int{60, 60, 30}},
	}
	for _, c := range cases {
		got := factorizeScale(c.logScale, 60)
		if len(got) != len(c.want) {
			t.Errorf("factorizeScale(%g) = %v, want %v", c.logScale, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("factorizeScale(%g) = %v, want %v", c.logScale, got, c.want)
				break
			}
		}
	}
}

func TestSelectRotationSteps(t *testing.T) {
	p := core.MustNewProgram("rot", 8)
	x, _ := p.NewInput("x", core.TypeCipher, 8, 30)
	r1, _ := p.NewRotation(core.OpRotateLeft, x, 3)
	r2, _ := p.NewRotation(core.OpRotateRight, x, 1)
	sum, _ := p.NewBinary(core.OpAdd, r1, r2)
	p.AddOutput("out", sum, 30)
	steps := SelectRotationSteps(p)
	if len(steps) != 2 || steps[0] != -1 || steps[1] != 3 {
		t.Errorf("rotation steps = %v, want [-1 3]", steps)
	}
}

func asConstraintError(err error, target **ConstraintError) bool {
	ce, ok := err.(*ConstraintError)
	if ok {
		*target = ce
	}
	return ok
}
