package analysis

import (
	"eva/internal/core"
	"eva/internal/rewrite"
)

// EstimatePeakMemoryBytes statically estimates the peak resident bytes of one
// execution of a compiled program: it replays the executor's liveness
// discipline (a value dies when its last use is evaluated) over the
// topological order and charges each live value its RNS-CKKS size — a
// ciphertext at chain position l holds its polynomials as
// (TotalLevels - l) limbs of N = 2^LogN 64-bit coefficients, with three
// polynomials for an unrelinearized ciphertext-ciphertext product and two
// otherwise, while plain values are one float64 vector of length N.
//
// The executor frees values as refcounts hit zero but evaluates in whatever
// order the scheduler picks, so the true peak can exceed this sequential
// estimate when many instructions are in flight; callers using it for
// admission control should treat it as a per-execution budget unit, not an
// exact bound.
func (m CostModel) EstimatePeakMemoryBytes(p *core.Program) int64 {
	levels := rewrite.Levels(p)
	types := p.InferTypes()
	n := int64(1) << uint(m.LogN)

	bytesOf := func(t *core.Term) int64 {
		if types[t] != core.TypeCipher {
			return 8 * n // one plain float64 vector
		}
		limbs := int64(m.TotalLevels - levels[t])
		if limbs < 1 {
			limbs = 1
		}
		polys := int64(2)
		if t.Op == core.OpMultiply &&
			types[t.Parm(0)] == core.TypeCipher && types[t.Parm(1)] == core.TypeCipher {
			polys = 3 // degree-2 product until the next RELINEARIZE
		}
		return 8 * n * limbs * polys
	}

	order := p.TopoSort()
	outputRefs := map[*core.Term]int{}
	for _, o := range p.Outputs() {
		outputRefs[o.Term]++
	}
	refcounts := make(map[*core.Term]int, len(order))
	for _, t := range order {
		refcounts[t] = t.NumUses() + outputRefs[t]
	}

	var live, peak int64
	alive := make(map[*core.Term]int64, len(order))
	for _, t := range order {
		b := bytesOf(t)
		alive[t] = b
		live += b
		if live > peak {
			peak = live
		}
		for _, parm := range t.Parms() {
			refcounts[parm]--
			if refcounts[parm] == 0 {
				live -= alive[parm]
				delete(alive, parm)
			}
		}
	}
	return peak
}
