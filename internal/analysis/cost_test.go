package analysis

import (
	"testing"

	"eva/internal/core"
	"eva/internal/rewrite"
)

func TestCostModelBasicProperties(t *testing.T) {
	p := buildCompiledX2Y3(t)
	chains, _, err := Validate(p, 60)
	if err != nil {
		t.Fatal(err)
	}
	maxChain := 0
	for _, c := range chains {
		if len(c) > maxChain {
			maxChain = len(c)
		}
	}
	model := CostModel{LogN: 13, TotalLevels: maxChain + 2}
	est := model.EstimateCost(p)
	if est.Total <= 0 || est.CriticalPath <= 0 {
		t.Fatal("cost estimate should be positive")
	}
	if est.CriticalPath > est.Total {
		t.Error("critical path cannot exceed total work")
	}
	if est.ParallelSpeedupBound() < 1 {
		t.Error("parallel speedup bound below 1")
	}
	if len(est.Heaviest) == 0 || est.Heaviest[0].Cost < est.Heaviest[len(est.Heaviest)-1].Cost {
		t.Error("heaviest instructions not sorted")
	}
	// Key switching must dominate this multiplication-heavy program.
	if est.ByOp["RELINEARIZE"] <= est.ByOp["ADD"] {
		t.Errorf("expected relinearization to dominate: %v", est.ByOp)
	}
}

// TestCostModelRewardsShorterChains checks the model captures the paper's
// core performance argument: the same program compiled with a longer modulus
// chain (the CHET-style fixed rescaling) costs more than with the waterline
// pipeline.
func TestCostModelRewardsShorterChains(t *testing.T) {
	// Scales of 2^30 make waterline rescaling skip every other level, which is
	// exactly where EVA saves chain primes over the per-multiply discipline.
	build := func() *core.Program {
		p := core.MustNewProgram("chain", 8)
		x, _ := p.NewInput("x", core.TypeCipher, 8, 30)
		y, _ := p.NewInput("y", core.TypeCipher, 8, 30)
		cur, _ := p.NewBinary(core.OpMultiply, x, y)
		for i := 0; i < 3; i++ {
			sq, _ := p.NewBinary(core.OpMultiply, cur, cur)
			cur = sq
		}
		p.AddOutput("out", cur, 30)
		return p
	}

	waterline := build()
	if err := rewrite.Transform(waterline, rewrite.DefaultOptions()); err != nil {
		t.Fatal(err)
	}
	fixed := build()
	opts := rewrite.DefaultOptions()
	opts.Rescale = rewrite.RescaleFixedMax
	opts.ModSwitch = rewrite.ModSwitchLazy
	if err := rewrite.Transform(fixed, opts); err != nil {
		t.Fatal(err)
	}

	chainLen := func(p *core.Program) int {
		chains, err := ComputeChains(p)
		if err != nil {
			t.Fatal(err)
		}
		max := 0
		for _, c := range chains {
			if len(c) > max {
				max = len(c)
			}
		}
		return max
	}
	wlLevels, fxLevels := chainLen(waterline)+2, chainLen(fixed)+2

	wlCost := CostModel{LogN: 14, TotalLevels: wlLevels}.EstimateCost(waterline)
	fxCost := CostModel{LogN: 14, TotalLevels: fxLevels}.EstimateCost(fixed)
	if wlCost.Total >= fxCost.Total {
		t.Errorf("waterline cost %.3g should be below fixed-rescale cost %.3g", wlCost.Total, fxCost.Total)
	}
}

func TestParallelSpeedupBoundDegenerate(t *testing.T) {
	var e CostEstimate
	if e.ParallelSpeedupBound() != 1 {
		t.Error("degenerate estimate should report a bound of 1")
	}
}
