package analysis

import (
	"testing"

	"eva/internal/core"
)

func memProgram(t *testing.T, chain int) *core.Program {
	t.Helper()
	p := core.MustNewProgram("mem", 8)
	x, _ := p.NewInput("x", core.TypeCipher, 8, 30)
	acc := x
	for i := 0; i < chain; i++ {
		acc, _ = p.NewBinary(core.OpMultiply, acc, x)
	}
	if err := p.AddOutput("out", acc, 30); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestEstimatePeakMemoryBytes(t *testing.T) {
	m := CostModel{LogN: 12, TotalLevels: 4}
	small := m.EstimatePeakMemoryBytes(memProgram(t, 1))
	large := m.EstimatePeakMemoryBytes(memProgram(t, 3))
	if small <= 0 {
		t.Fatalf("estimate not positive: %d", small)
	}
	// A fresh input ciphertext is 2 polys x 4 limbs x 4096 coeffs x 8 bytes.
	if minInput := int64(2 * 4 * 4096 * 8); small < minInput {
		t.Errorf("estimate %d smaller than one input ciphertext (%d)", small, minInput)
	}
	if large <= small {
		t.Errorf("deeper program estimated at %d bytes, shallow one at %d; want growth", large, small)
	}
}

func TestEstimatePeakMemoryPlainProgram(t *testing.T) {
	p := core.MustNewProgram("plain", 8)
	x, _ := p.NewInput("x", core.TypeVector, 8, 30)
	y, _ := p.NewBinary(core.OpAdd, x, x)
	if err := p.AddOutput("out", y, 30); err != nil {
		t.Fatal(err)
	}
	m := CostModel{LogN: 12, TotalLevels: 4}
	est := m.EstimatePeakMemoryBytes(p)
	// Two live plain vectors of 2^12 float64s.
	if want := int64(2 * 8 * 4096); est != want {
		t.Errorf("plain-only estimate = %d; want %d", est, want)
	}
}

// TestEstimatePeakAccountsDegree3Products: an unrelinearized cipher-cipher
// product is charged three polynomials.
func TestEstimatePeakAccountsDegree3Products(t *testing.T) {
	p := memProgram(t, 1)
	m := CostModel{LogN: 12, TotalLevels: 1}
	est := m.EstimatePeakMemoryBytes(p)
	// Live set peaks with the input (2 polys) plus the product (3 polys),
	// all at 1 limb of 4096 coefficients.
	if want := int64((2 + 3) * 1 * 4096 * 8); est != want {
		t.Errorf("estimate = %d; want %d", est, want)
	}
}
