package bench

import (
	"bytes"
	"strings"
	"testing"

	"eva/internal/apps"
	"eva/internal/compile"
	"eva/internal/nn"
)

// tinyOptions keeps the harness tests fast: the smallest network
// configuration and a single trial.
func tinyOptions() Options {
	o := DefaultOptions()
	o.Config = nn.Config{InputSize: 4, ChannelDivisor: 64}
	o.Workers = 2
	return o
}

func TestRunNetworkProducesConsistentMeasurements(t *testing.T) {
	net := nn.LeNet5Small(tinyOptions().Config)
	res, err := RunNetwork(net, tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, pr := range []*PipelineResult{res.EVA, res.CHET} {
		if pr.CompileTime <= 0 || pr.ContextTime <= 0 || pr.RunTime <= 0 {
			t.Errorf("%s: missing timings %+v", pr.Name, pr)
		}
		if pr.Primes < 2 || pr.LogQP <= 0 || pr.LogN < 10 {
			t.Errorf("%s: implausible parameters %+v", pr.Name, pr)
		}
		if len(pr.Scores) != net.NumClasses {
			t.Errorf("%s: %d scores, want %d", pr.Name, len(pr.Scores), net.NumClasses)
		}
		if !pr.AgreesRef {
			t.Errorf("%s: encrypted classification disagrees with the reference (max err %g)", pr.Name, pr.MaxError)
		}
	}
	// The Table 6 relationship.
	if res.CHET.Primes < res.EVA.Primes {
		t.Errorf("CHET primes %d < EVA primes %d", res.CHET.Primes, res.EVA.Primes)
	}
	if res.Speedup() <= 0 {
		t.Error("speedup should be positive")
	}
}

func TestRunApplicationAndScaling(t *testing.T) {
	app, err := apps.LinearRegression(16)
	if err != nil {
		t.Fatal(err)
	}
	ares, err := RunApplication(app, tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	if ares.RunTime <= 0 || ares.MaxError > 1e-2 {
		t.Errorf("implausible application result %+v", ares)
	}

	net := nn.LeNet5Small(tinyOptions().Config)
	points, err := RunScaling(net, []int{1, 2}, tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 4 { // 2 pipelines x 2 thread counts
		t.Fatalf("expected 4 scaling points, got %d", len(points))
	}
	for _, p := range points {
		if p.Latency <= 0 {
			t.Errorf("non-positive latency for %+v", p)
		}
	}
}

func TestTablePrinters(t *testing.T) {
	net := nn.LeNet5Small(tinyOptions().Config)
	res, err := RunNetwork(net, tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	results := []*NetworkResult{res}

	var buf bytes.Buffer
	PrintTable3(&buf, tinyOptions().Config)
	PrintTable4(&buf, results)
	PrintTable5(&buf, results, 2)
	PrintTable6(&buf, results)
	PrintTable7(&buf, results)
	out := buf.String()
	for _, want := range []string{"Table 3", "Table 4", "Table 5", "Table 6", "Table 7", "LeNet-5-small", "Speedup"} {
		if !strings.Contains(out, want) {
			t.Errorf("table output missing %q", want)
		}
	}

	app, err := apps.LinearRegression(16)
	if err != nil {
		t.Fatal(err)
	}
	ares, err := RunApplication(app, tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	PrintTable8(&buf, []*AppResult{ares})
	if !strings.Contains(buf.String(), "Linear Regression") {
		t.Error("Table 8 output missing the application name")
	}

	points, err := RunScaling(net, []int{1, 2}, tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	PrintFigure7(&buf, points)
	if !strings.Contains(buf.String(), "Figure 7") || !strings.Contains(buf.String(), "EVA") {
		t.Error("Figure 7 output incomplete")
	}
}

func TestFigureDemoAndDescribe(t *testing.T) {
	p := FigureDemoProgram()
	if p.NumTerms() != 6 || len(p.Outputs()) != 1 {
		t.Fatalf("unexpected demo program shape: %d terms", p.NumTerms())
	}
	var buf bytes.Buffer
	DescribeProgram(&buf, p)
	out := buf.String()
	for _, want := range []string{"INPUT", "MULTIPLY", "output \"out\""} {
		if !strings.Contains(out, want) {
			t.Errorf("program description missing %q", want)
		}
	}
}

func TestRunFrontend(t *testing.T) {
	app, err := apps.SobelFilter(8)
	if err != nil {
		t.Fatal(err)
	}
	opts := compile.DefaultOptions()
	opts.AllowInsecure = true
	r, err := RunFrontend(app.Program, opts)
	if err != nil {
		t.Fatal(err)
	}
	if r.SourceBytes == 0 || r.Terms != app.Program.NumTerms() {
		t.Errorf("implausible frontend result %+v", r)
	}
	if r.PrintTime <= 0 || r.ParseTime <= 0 || r.CompileTime <= 0 {
		t.Errorf("missing timings %+v", r)
	}
	if s := r.FrontendShare(); s <= 0 || s >= 1 {
		t.Errorf("frontend share %v out of range", s)
	}
}

func TestOptionsNormalize(t *testing.T) {
	var o Options
	n := o.normalize()
	if n.Workers <= 0 || n.Trials != 1 || n.Config.InputSize == 0 {
		t.Errorf("normalize produced %+v", n)
	}
}
