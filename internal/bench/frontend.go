package bench

import (
	"fmt"
	"time"

	"eva/internal/compile"
	"eva/internal/core"
	"eva/internal/lang"
)

// FrontendResult measures the textual frontend on one program: rendering it
// to .eva source, parsing + checking + lowering that source back to the IR,
// and the backend compilation of the same program for comparison — so the
// benchmark output tracks frontend cost alongside backend cost. evaserve's
// /compile accepts source directly, which makes parse latency part of the
// request path.
type FrontendResult struct {
	Program     string
	Terms       int
	SourceBytes int
	PrintTime   time.Duration // core.Program -> source text
	ParseTime   time.Duration // source text -> core.Program (lex+parse+check+lower)
	CompileTime time.Duration // core.Program -> compiled program + parameters
}

// FrontendShare returns parse time as a fraction of parse + compile: the
// share of a source-submission compile request spent in the frontend.
func (r *FrontendResult) FrontendShare() float64 {
	total := r.ParseTime + r.CompileTime
	if total <= 0 {
		return 0
	}
	return float64(r.ParseTime) / float64(total)
}

// RunFrontend measures the textual frontend round trip and the backend
// compile for one program. The lowered program is verified equal to the
// original, so the numbers can never come from a frontend that silently
// diverged.
func RunFrontend(p *core.Program, opts compile.Options) (*FrontendResult, error) {
	r := &FrontendResult{Program: p.Name, Terms: p.NumTerms()}

	start := time.Now()
	src, err := lang.Print(p)
	if err != nil {
		return nil, fmt.Errorf("bench: printing %s: %w", p.Name, err)
	}
	r.PrintTime = time.Since(start)
	r.SourceBytes = len(src)

	start = time.Now()
	parsed, err := lang.ParseProgram(src)
	if err != nil {
		return nil, fmt.Errorf("bench: re-parsing %s: %w", p.Name, err)
	}
	r.ParseTime = time.Since(start)
	if err := core.Equal(p, parsed); err != nil {
		return nil, fmt.Errorf("bench: frontend round trip diverged for %s: %w", p.Name, err)
	}

	start = time.Now()
	if _, err := compile.Compile(parsed, opts); err != nil {
		return nil, fmt.Errorf("bench: compiling %s: %w", p.Name, err)
	}
	r.CompileTime = time.Since(start)
	return r, nil
}
