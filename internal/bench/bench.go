// Package bench is the experiment harness that regenerates every table and
// figure of the paper's evaluation (Section 8). It is used both by the
// cmd/evabench command-line tool and by the repository's Go benchmarks, so
// that `go test -bench` and the CLI print the same rows the paper reports.
package bench

import (
	"fmt"
	"io"
	"math"
	"math/rand"
	"runtime"
	"sort"
	"text/tabwriter"
	"time"

	"eva/internal/apps"
	"eva/internal/chet"
	"eva/internal/ckks"
	"eva/internal/compile"
	"eva/internal/core"
	"eva/internal/execute"
	"eva/internal/nn"
)

// Options configures the experiment harness.
type Options struct {
	// Config selects the network instantiation size (nn.BenchConfig by default).
	Config nn.Config
	// Workers is the number of executor threads (0 = GOMAXPROCS), the
	// "56 threads" column of Table 5.
	Workers int
	// Secure selects 128-bit-secure parameters (the paper's setting); when
	// false, scaled-down insecure parameters are allowed so the experiments
	// run quickly on small rings.
	Secure bool
	// Seed drives all randomness (weights, inputs, keys) for reproducibility.
	Seed int64
	// Trials is the number of inference runs averaged for latency numbers.
	Trials int
}

// DefaultOptions returns the scaled-down configuration used by `go test -bench`.
func DefaultOptions() Options {
	return Options{Config: nn.BenchConfig(), Workers: 0, Secure: false, Seed: 1, Trials: 1}
}

func (o Options) normalize() Options {
	if o.Config.InputSize == 0 {
		o.Config = nn.BenchConfig()
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.Trials <= 0 {
		o.Trials = 1
	}
	return o
}

// PipelineResult holds the measurements of one compiler pipeline (EVA or the
// CHET baseline) on one network.
type PipelineResult struct {
	Name        string
	CompileTime time.Duration
	ContextTime time.Duration
	EncryptTime time.Duration
	RunTime     time.Duration
	DecryptTime time.Duration

	LogN, LogQ, LogQP, Primes int
	RotationKeys              int
	Instructions              int

	Scores    []float64
	MaxError  float64
	AgreesRef bool
	Stats     execute.RunStats
}

// NetworkResult bundles the EVA and CHET measurements for one network.
type NetworkResult struct {
	Network   *nn.Network
	Reference []float64
	EVA       *PipelineResult
	CHET      *PipelineResult
}

// Speedup returns CHET latency divided by EVA latency (the Table 5 column).
func (r *NetworkResult) Speedup() float64 {
	if r.EVA.RunTime <= 0 {
		return 0
	}
	return float64(r.CHET.RunTime) / float64(r.EVA.RunTime)
}

// RunNetwork builds, compiles (with both pipelines), and executes one network
// on a random model and image, measuring everything Tables 4-7 need.
func RunNetwork(net *nn.Network, opts Options) (*NetworkResult, error) {
	opts = opts.normalize()
	rng := rand.New(rand.NewSource(opts.Seed))
	weights := nn.RandomWeights(net, rng)
	prog, err := nn.BuildProgram(net, weights)
	if err != nil {
		return nil, fmt.Errorf("bench: building %s: %w", net.Name, err)
	}
	image := nn.RandomImage(net, rng)
	ref, err := execute.RunReference(prog, image)
	if err != nil {
		return nil, fmt.Errorf("bench: reference inference for %s: %w", net.Name, err)
	}
	refScores := ref["scores"][:net.NumClasses]

	result := &NetworkResult{Network: net, Reference: refScores}

	copts := compile.DefaultOptions()
	copts.AllowInsecure = !opts.Secure

	evaCompile := func() (*compile.Result, error) { return compile.Compile(prog, copts) }
	chetCompile := func() (*compile.Result, error) { return chet.Compile(prog, copts) }

	result.EVA, err = runPipeline("EVA", evaCompile, execute.RunOptions{Workers: opts.Workers, Scheduler: execute.SchedulerParallel}, image, refScores, net.NumClasses, opts)
	if err != nil {
		return nil, fmt.Errorf("bench: EVA pipeline for %s: %w", net.Name, err)
	}
	result.CHET, err = runPipeline("CHET", chetCompile, chet.RunOptions(opts.Workers), image, refScores, net.NumClasses, opts)
	if err != nil {
		return nil, fmt.Errorf("bench: CHET pipeline for %s: %w", net.Name, err)
	}
	return result, nil
}

func runPipeline(name string, compileFn func() (*compile.Result, error), ropts execute.RunOptions,
	image execute.Inputs, refScores []float64, numClasses int, opts Options) (*PipelineResult, error) {

	pr := &PipelineResult{Name: name}
	start := time.Now()
	res, err := compileFn()
	if err != nil {
		return nil, err
	}
	pr.CompileTime = time.Since(start)
	pr.LogN = res.LogN
	pr.LogQ = res.Plan.LogQ()
	pr.LogQP = res.Plan.LogQP()
	pr.Primes = res.Plan.NumPrimes()
	pr.RotationKeys = len(res.RotationSteps)
	pr.Instructions = res.CompiledStats.Terms

	prng := ckks.NewTestPRNG(uint64(opts.Seed) + 1000)
	ctx, keys, err := execute.NewContext(res, prng)
	if err != nil {
		return nil, err
	}
	pr.ContextTime = ctx.KeyGenTime

	enc, err := execute.EncryptInputs(ctx, res, keys, image, prng)
	if err != nil {
		return nil, err
	}
	pr.EncryptTime = enc.EncryptTime

	var out *execute.Outputs
	var total time.Duration
	for trial := 0; trial < opts.Trials; trial++ {
		start = time.Now()
		out, err = execute.Run(ctx, res, enc, ropts)
		if err != nil {
			return nil, err
		}
		total += time.Since(start)
	}
	pr.RunTime = total / time.Duration(opts.Trials)
	pr.Stats = out.Stats

	dec, decTime := execute.DecryptOutputs(ctx, res, keys, out)
	pr.DecryptTime = decTime
	pr.Scores = dec["scores"][:numClasses]
	for i := range refScores {
		if e := math.Abs(pr.Scores[i] - refScores[i]); e > pr.MaxError {
			pr.MaxError = e
		}
	}
	pr.AgreesRef = nn.Argmax(pr.Scores, numClasses) == nn.Argmax(refScores, numClasses)
	return pr, nil
}

// AppResult holds one row of Table 8.
type AppResult struct {
	App         *apps.App
	CompileTime time.Duration
	RunTime     time.Duration
	MaxError    float64
	VectorSize  int
	LogN, LogQ  int
	Primes      int
}

// RunApplication measures one application of Table 8 on a single thread, as
// in the paper.
func RunApplication(app *apps.App, opts Options) (*AppResult, error) {
	opts = opts.normalize()
	rng := rand.New(rand.NewSource(opts.Seed))
	in := app.MakeInputs(rng)
	want := app.Plain(in)

	copts := compile.DefaultOptions()
	copts.AllowInsecure = !opts.Secure
	start := time.Now()
	res, err := compile.Compile(app.Program, copts)
	if err != nil {
		return nil, fmt.Errorf("bench: compiling %s: %w", app.Name, err)
	}
	r := &AppResult{
		App: app, CompileTime: time.Since(start), VectorSize: app.Program.VecSize,
		LogN: res.LogN, LogQ: res.Plan.LogQ(), Primes: res.Plan.NumPrimes(),
	}
	prng := ckks.NewTestPRNG(uint64(opts.Seed) + 2000)
	ctx, keys, err := execute.NewContext(res, prng)
	if err != nil {
		return nil, err
	}
	enc, err := execute.EncryptInputs(ctx, res, keys, in, prng)
	if err != nil {
		return nil, err
	}
	var out *execute.Outputs
	var total time.Duration
	for trial := 0; trial < opts.Trials; trial++ {
		start = time.Now()
		out, err = execute.Run(ctx, res, enc, execute.RunOptions{Workers: 1, Scheduler: execute.SchedulerSequential})
		if err != nil {
			return nil, err
		}
		total += time.Since(start)
	}
	r.RunTime = total / time.Duration(opts.Trials)
	dec, _ := execute.DecryptOutputs(ctx, res, keys, out)
	for name, w := range want {
		g := dec[name]
		for i := range w {
			if e := math.Abs(g[i] - w[i]); e > r.MaxError {
				r.MaxError = e
			}
		}
	}
	return r, nil
}

// ScalingPoint is one measurement of Figure 7: a network, a compiler, a
// thread count, and the resulting latency.
type ScalingPoint struct {
	Network  string
	Pipeline string
	Threads  int
	Latency  time.Duration
}

// RunScaling measures strong scaling (Figure 7) for a network over the given
// thread counts, reusing the compiled program and keys across points.
func RunScaling(net *nn.Network, threads []int, opts Options) ([]ScalingPoint, error) {
	opts = opts.normalize()
	rng := rand.New(rand.NewSource(opts.Seed))
	weights := nn.RandomWeights(net, rng)
	prog, err := nn.BuildProgram(net, weights)
	if err != nil {
		return nil, err
	}
	image := nn.RandomImage(net, rng)
	copts := compile.DefaultOptions()
	copts.AllowInsecure = !opts.Secure

	type pipeline struct {
		name  string
		res   *compile.Result
		sched execute.Scheduler
	}
	evaRes, err := compile.Compile(prog, copts)
	if err != nil {
		return nil, err
	}
	chetRes, err := chet.Compile(prog, copts)
	if err != nil {
		return nil, err
	}
	var points []ScalingPoint
	for _, pl := range []pipeline{
		{"EVA", evaRes, execute.SchedulerParallel},
		{"CHET", chetRes, execute.SchedulerBulkSynchronous},
	} {
		prng := ckks.NewTestPRNG(uint64(opts.Seed) + 3000)
		ctx, keys, err := execute.NewContext(pl.res, prng)
		if err != nil {
			return nil, err
		}
		enc, err := execute.EncryptInputs(ctx, pl.res, keys, image, prng)
		if err != nil {
			return nil, err
		}
		for _, th := range threads {
			start := time.Now()
			if _, err := execute.Run(ctx, pl.res, enc, execute.RunOptions{Workers: th, Scheduler: pl.sched}); err != nil {
				return nil, err
			}
			points = append(points, ScalingPoint{Network: net.Name, Pipeline: pl.name, Threads: th, Latency: time.Since(start)})
		}
	}
	return points, nil
}

// --- Table printers ---

func newTable(w io.Writer) *tabwriter.Writer {
	return tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
}

// PrintTable3 prints the network inventory (Table 3) for the instantiated
// configuration next to the paper's layer counts.
func PrintTable3(w io.Writer, cfg nn.Config) {
	tw := newTable(w)
	fmt.Fprintln(w, "Table 3: Deep Neural Networks used in the evaluation")
	fmt.Fprintln(tw, "Network\tConv\tFC\tAct\tPaper FP ops\tPaper accuracy (%)")
	for _, n := range nn.All(cfg) {
		conv, fc, act := n.CountLayers()
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%d\t%.2f\n", n.Name, conv, fc, act, n.Paper.FPOperations, n.Paper.UnencryptedAccuracy)
	}
	tw.Flush()
}

// PrintTable4 prints the scale profile and encrypted-vs-reference agreement
// (the offline analogue of Table 4's accuracy columns).
func PrintTable4(w io.Writer, results []*NetworkResult) {
	tw := newTable(w)
	fmt.Fprintln(w, "Table 4: input/output scales and encrypted-inference fidelity")
	fmt.Fprintln(tw, "Network\tCipher\tVector\tScalar\tOutput\tCHET max err\tEVA max err\tCHET agree\tEVA agree\tPaper CHET acc\tPaper EVA acc")
	for _, r := range results {
		s := r.Network.Scales
		fmt.Fprintf(tw, "%s\t%.0f\t%.0f\t%.0f\t%.0f\t%.2e\t%.2e\t%v\t%v\t%.2f\t%.2f\n",
			r.Network.Name, s.Cipher, s.Vector, s.Scalar, s.Output,
			r.CHET.MaxError, r.EVA.MaxError, r.CHET.AgreesRef, r.EVA.AgreesRef,
			r.Network.Paper.CHETAccuracy, r.Network.Paper.EVAAccuracy)
	}
	tw.Flush()
}

// PrintTable5 prints average latencies and the EVA speedup next to the
// paper's numbers.
func PrintTable5(w io.Writer, results []*NetworkResult, workers int) {
	tw := newTable(w)
	fmt.Fprintf(w, "Table 5: average latency on %d threads (measured, this backend) vs paper (56 threads)\n", workers)
	fmt.Fprintln(tw, "Network\tCHET (s)\tEVA (s)\tSpeedup\tPaper CHET (s)\tPaper EVA (s)\tPaper speedup")
	for _, r := range results {
		paperSpeedup := 0.0
		if r.Network.Paper.EVALatency > 0 {
			paperSpeedup = r.Network.Paper.CHETLatency / r.Network.Paper.EVALatency
		}
		fmt.Fprintf(tw, "%s\t%.3f\t%.3f\t%.2fx\t%.1f\t%.1f\t%.1fx\n",
			r.Network.Name, r.CHET.RunTime.Seconds(), r.EVA.RunTime.Seconds(), r.Speedup(),
			r.Network.Paper.CHETLatency, r.Network.Paper.EVALatency, paperSpeedup)
	}
	tw.Flush()
}

// PrintTable6 prints the selected encryption parameters next to the paper's.
func PrintTable6(w io.Writer, results []*NetworkResult) {
	tw := newTable(w)
	fmt.Fprintln(w, "Table 6: encryption parameters selected by CHET and EVA")
	fmt.Fprintln(tw, "Network\tCHET logN\tCHET logQ\tCHET r\tEVA logN\tEVA logQ\tEVA r\tPaper CHET (logN,logQ,r)\tPaper EVA (logN,logQ,r)")
	for _, r := range results {
		p := r.Network.Paper
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%d\t%d\t%d\t(%d,%d,%d)\t(%d,%d,%d)\n",
			r.Network.Name, r.CHET.LogN, r.CHET.LogQP, r.CHET.Primes, r.EVA.LogN, r.EVA.LogQP, r.EVA.Primes,
			p.CHETLogN, p.CHETLogQ, p.CHETPrimes, p.EVALogN, p.EVALogQ, p.EVAPrimes)
	}
	tw.Flush()
}

// PrintTable7 prints compilation, context, encryption, and decryption times
// for the EVA pipeline next to the paper's numbers.
func PrintTable7(w io.Writer, results []*NetworkResult) {
	tw := newTable(w)
	fmt.Fprintln(w, "Table 7: compilation, encryption context, encryption, and decryption time (EVA)")
	fmt.Fprintln(tw, "Network\tCompile (s)\tContext (s)\tEncrypt (s)\tDecrypt (s)\tPaper (compile/context/enc/dec)")
	for _, r := range results {
		p := r.Network.Paper
		fmt.Fprintf(tw, "%s\t%.3f\t%.3f\t%.3f\t%.3f\t%.2f/%.2f/%.2f/%.2f\n",
			r.Network.Name, r.EVA.CompileTime.Seconds(), r.EVA.ContextTime.Seconds(),
			r.EVA.EncryptTime.Seconds(), r.EVA.DecryptTime.Seconds(),
			p.CompileTime, p.ContextTime, p.EncryptTime, p.DecryptTime)
	}
	tw.Flush()
}

// PrintTable8 prints the application results next to the paper's Table 8.
func PrintTable8(w io.Writer, results []*AppResult) {
	tw := newTable(w)
	fmt.Fprintln(w, "Table 8: arithmetic, statistical ML and image processing applications (1 thread)")
	fmt.Fprintln(tw, "Application\tVector size\tLoC\tTime (s)\tMax err\tPaper vector size\tPaper LoC\tPaper time (s)")
	for _, r := range results {
		fmt.Fprintf(tw, "%s\t%d\t%d\t%.3f\t%.2e\t%d\t%d\t%.3f\n",
			r.App.Name, r.VectorSize, r.App.LinesOfCode, r.RunTime.Seconds(), r.MaxError,
			r.App.Paper.VectorSize, r.App.Paper.LinesOfCode, r.App.Paper.TimeSeconds)
	}
	tw.Flush()
}

// PrintFigure7 prints the strong-scaling series of Figure 7.
func PrintFigure7(w io.Writer, points []ScalingPoint) {
	fmt.Fprintln(w, "Figure 7: strong scaling of CHET and EVA (average latency in seconds)")
	byNet := map[string]map[string]map[int]time.Duration{}
	threadSet := map[int]bool{}
	for _, p := range points {
		if byNet[p.Network] == nil {
			byNet[p.Network] = map[string]map[int]time.Duration{}
		}
		if byNet[p.Network][p.Pipeline] == nil {
			byNet[p.Network][p.Pipeline] = map[int]time.Duration{}
		}
		byNet[p.Network][p.Pipeline][p.Threads] = p.Latency
		threadSet[p.Threads] = true
	}
	threads := make([]int, 0, len(threadSet))
	for t := range threadSet {
		threads = append(threads, t)
	}
	sort.Ints(threads)
	tw := newTable(w)
	header := "Network\tPipeline"
	for _, t := range threads {
		header += fmt.Sprintf("\t%d thr", t)
	}
	header += "\tSpeedup(max/1)"
	fmt.Fprintln(tw, header)
	nets := make([]string, 0, len(byNet))
	for n := range byNet {
		nets = append(nets, n)
	}
	sort.Strings(nets)
	for _, n := range nets {
		for _, pl := range []string{"CHET", "EVA"} {
			row := fmt.Sprintf("%s\t%s", n, pl)
			series := byNet[n][pl]
			for _, t := range threads {
				row += fmt.Sprintf("\t%.3f", series[t].Seconds())
			}
			if len(threads) > 1 && series[threads[len(threads)-1]] > 0 {
				row += fmt.Sprintf("\t%.2fx", float64(series[threads[0]])/float64(series[threads[len(threads)-1]]))
			} else {
				row += "\t-"
			}
			fmt.Fprintln(tw, row)
		}
	}
	tw.Flush()
}

// FigureDemoProgram builds the x²y³ running example (Figure 2) so command-line
// tools can show the effect of each transformation pass.
func FigureDemoProgram() *core.Program {
	p := core.MustNewProgram("x2y3", 8)
	x, _ := p.NewInput("x", core.TypeCipher, 8, 60)
	y, _ := p.NewInput("y", core.TypeCipher, 8, 30)
	x2, _ := p.NewBinary(core.OpMultiply, x, x)
	y2, _ := p.NewBinary(core.OpMultiply, y, y)
	y3, _ := p.NewBinary(core.OpMultiply, y2, y)
	out, _ := p.NewBinary(core.OpMultiply, x2, y3)
	_ = p.AddOutput("out", out, 30)
	return p
}

// DescribeProgram renders a program's instructions in topological order,
// one per line, for the command-line tools.
func DescribeProgram(w io.Writer, p *core.Program) {
	types := p.InferTypes()
	for _, t := range p.TopoSort() {
		line := fmt.Sprintf("  t%-4d %-12s", t.ID, t.Op)
		for _, parm := range t.Parms() {
			line += fmt.Sprintf(" t%d", parm.ID)
		}
		switch t.Op {
		case core.OpInput:
			line += fmt.Sprintf("  name=%q type=%s scale=2^%g", t.Name, t.InType, t.LogScale)
		case core.OpConstant:
			line += fmt.Sprintf("  width=%d scale=2^%g", t.VecWidth, t.LogScale)
		case core.OpRotateLeft, core.OpRotateRight:
			line += fmt.Sprintf("  by=%d", t.RotateBy)
		case core.OpRescale:
			line += fmt.Sprintf("  divisor=2^%g", t.LogScale)
		}
		line += fmt.Sprintf("  [%s]", types[t])
		fmt.Fprintln(w, line)
	}
	for _, o := range p.Outputs() {
		fmt.Fprintf(w, "  output %q = t%d (desired scale 2^%g)\n", o.Name, o.Term.ID, o.LogScale)
	}
}
