package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"runtime"
	"time"

	"eva/internal/analysis"
	"eva/internal/ckks"
	"eva/internal/compile"
	"eva/internal/core"
	"eva/internal/execute"
	"eva/internal/handle"
	"eva/internal/jobs"
	"eva/internal/obs"
)

// The jobs API fronts long-running encrypted computations with a queue:
// POST /jobs enqueues an execute request and returns a job id immediately, a
// bounded worker pool drains the FIFO queue, GET /jobs/{id} polls status,
// GET /jobs/{id}/events streams progress over SSE, GET /jobs/{id}/result
// returns the results exactly once, and DELETE /jobs/{id} cancels. Admission
// control sheds load with 429 + Retry-After when the queue is full or the
// estimated resident ciphertext footprint of all admitted jobs would exceed
// the configured budget.

// JobRequest is the body of POST /jobs — the asynchronous counterpart of
// ExecuteRequest, plus the program id (which /execute carries in the path).
// Output "handle" persists encrypted outputs as content-addressed handles
// and returns their ids in the job result instead of ciphertext payloads.
type JobRequest struct {
	ProgramID string         `json:"program_id"`
	ContextID string         `json:"context_id"`
	Workers   int            `json:"workers,omitempty"`
	Scheduler string         `json:"scheduler,omitempty"`
	Output    string         `json:"output,omitempty"`
	Batches   []ExecuteBatch `json:"batches"`
}

// JobStatus is the wire form of a job's state (POST /jobs and GET /jobs/{id}).
type JobStatus struct {
	JobID       string  `json:"job_id"`
	Status      string  `json:"status"`
	Batches     int     `json:"batches"`
	BatchesDone int     `json:"batches_done"`
	EstBytes    int64   `json:"est_bytes"`
	Error       string  `json:"error,omitempty"`
	CreatedAt   string  `json:"created_at"`
	WaitMillis  float64 `json:"wait_ms,omitempty"`
	RunMillis   float64 `json:"run_ms,omitempty"`
	// TraceID is the request trace the job is bound to; GET
	// /jobs/{id}/trace serves its span tree.
	TraceID string `json:"trace_id,omitempty"`
}

// JobResult is the body of GET /jobs/{id}/result: the same per-batch results
// /execute returns synchronously. The result is delivered exactly once; a
// second fetch (or a fetch after the TTL) gets 410 Gone.
type JobResult struct {
	JobID   string        `json:"job_id"`
	Status  string        `json:"status"`
	Results []BatchResult `json:"results"`
}

func jobStatusJSON(s jobs.Snapshot) JobStatus {
	js := JobStatus{
		JobID:       s.ID,
		Status:      string(s.Status),
		Batches:     s.Batches,
		BatchesDone: s.BatchesDone,
		EstBytes:    s.EstBytes,
		Error:       s.Error,
		CreatedAt:   s.Created.UTC().Format(time.RFC3339Nano),
	}
	if !s.Started.IsZero() {
		js.WaitMillis = float64(s.Started.Sub(s.Created)) / float64(time.Millisecond)
		end := s.Finished
		if end.IsZero() {
			end = time.Now()
		}
		js.RunMillis = float64(end.Sub(s.Started)) / float64(time.Millisecond)
	}
	return js
}

// estimateJobBytes predicts the resident footprint of one admitted job: the
// decoded input ciphertexts it pins while queued (their real MemoryBytes),
// fresh-ciphertext-sized placeholders for demo-mode plaintext values that the
// worker will encrypt, and the cost model's static peak for the intermediate
// values of one running batch (batches run sequentially within a job). A
// ciphertext shared between batches — a resolved handle referenced by many
// inputs — pins one allocation and is counted once.
func estimateJobBytes(entry *Entry, batches []*execute.EncryptedInputs, pendingValues int) int64 {
	res := entry.Result
	var est int64
	seen := map[*ckks.Ciphertext]bool{}
	for _, in := range batches {
		if in == nil {
			continue
		}
		for _, ct := range in.Cipher {
			if seen[ct] {
				continue
			}
			seen[ct] = true
			est += int64(ct.MemoryBytes())
		}
		for _, pv := range in.Plain {
			est += int64(8 * len(pv))
		}
	}
	n := int64(1) << uint(res.LogN)
	freshCt := 2 * int64(len(res.Plan.BitSizes)) * n * 8
	est += int64(pendingValues) * freshCt
	model := analysis.CostModel{LogN: res.LogN, TotalLevels: len(res.Plan.BitSizes)}
	est += model.EstimatePeakMemoryBytes(res.Program)
	return est
}

// pendingCipherValues counts the Cipher inputs a partially resolved batch
// still owes the worker (demo-mode plaintext values encrypted at run time),
// for the fresh-ciphertext placeholders in the admission estimate.
func pendingCipherValues(res *compile.Result, enc *execute.EncryptedInputs) int {
	n := 0
	for _, in := range res.Program.Inputs() {
		if in.InType != core.TypeCipher {
			continue
		}
		if _, ok := enc.Cipher[in.Name]; !ok {
			n++
		}
	}
	return n
}

func (s *Server) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	var req JobRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	if coalesceRequested(r) {
		s.handleCoalescedSubmit(w, r, &req)
		return
	}
	ce, entry, status, err := s.resolveExecution(req.ProgramID, req.ContextID)
	if err != nil {
		writeError(w, status, "%v", err)
		return
	}
	if len(req.Batches) == 0 {
		writeError(w, http.StatusBadRequest, "no batches")
		return
	}
	if len(req.Batches) > maxBatchesPerRequest {
		writeError(w, http.StatusRequestEntityTooLarge, "%d batches exceeds the per-request limit of %d", len(req.Batches), maxBatchesPerRequest)
		return
	}
	ropts, err := s.runOptions(req.Workers, req.Scheduler)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if err := validOutputMode(req.Output); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}

	// Resolve and validate every batch now: submissions fail fast (400 for
	// malformed inputs, structured 422 for incompatible handle chaining, 404
	// for unknown handles), and the resolved ciphertexts are what admission
	// control accounts for. Demo-mode plaintext values are only counted here;
	// the worker encrypts them when the batch runs. The handle cache is
	// shared across batches and kept for the workers, so a handle referenced
	// by many batches is resolved once and counted once.
	res := entry.Result
	cache := newHandleCache()
	decoded := make([]*execute.EncryptedInputs, len(req.Batches))
	pendingValues := 0
	for i := range req.Batches {
		batch := &req.Batches[i]
		enc, err := s.buildBatchInputs(r.Context(), ce, res, batch, nil, cache, true)
		if err != nil {
			var cerr *compatError
			if errors.As(err, &cerr) {
				inc := cerr.incompat()
				writeJSON(w, http.StatusUnprocessableEntity, apiError{
					Error:             fmt.Sprintf("batch %d: %v", i, err),
					Incompatibilities: []Incompat{inc},
				})
				return
			}
			if errors.Is(err, handle.ErrNotFound) {
				writeError(w, http.StatusNotFound, "batch %d: %v", i, err)
				return
			}
			writeError(w, http.StatusBadRequest, "batch %d: %v", i, err)
			return
		}
		pendingValues += pendingCipherValues(res, enc)
		decoded[i] = enc
	}

	est := estimateJobBytes(entry, decoded, pendingValues)
	batches := req.Batches

	// Pre-mint the job id and bind the trace to it before submission: the
	// manager makes a job visible — and finishable — before Submit returns,
	// so binding afterwards would race the finish hook.
	id, err := jobs.NewID()
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	t := obs.TraceFromContext(r.Context())
	routeSpan := obs.SpanFromContext(r.Context())
	s.bindJobTrace(id, t)
	admit := t.StartSpan("admission", routeSpan)
	queueSpan := t.StartSpan("queue_wait", routeSpan)
	snap, err := s.jobs.SubmitWithID(id, len(batches), est, func(jctx context.Context, batchDone func(int)) (any, error) {
		queueSpan.End()
		jctx = obs.ContextWithSpan(obs.ContextWithTrace(jctx, t), routeSpan)
		results := make([]BatchResult, len(batches))
		for i := range batches {
			if err := jctx.Err(); err != nil {
				return nil, err
			}
			results[i] = s.runBatch(jctx, entry, ce, &batches[i], decoded[i], ropts, req.Output, cache)
			decoded[i] = nil // release the pinned inputs as batches complete
			batchDone(i)
		}
		return results, nil
	})
	admit.End()
	if err != nil {
		queueSpan.End()
		// The job never became visible; the finish hook will not fire, so
		// drop the binding and its reference here.
		if bound := s.takeJobTrace(id); bound != nil {
			bound.Release()
		}
		s.writeAdmissionError(w, err)
		return
	}
	s.log.Debug("job submitted",
		slog.String(obs.LogJobID, id),
		slog.String(obs.LogTraceID, t.ID()),
		slog.Int("batches", len(batches)),
		slog.Int64("est_bytes", est))
	w.Header().Set("Location", "/jobs/"+snap.ID)
	st := jobStatusJSON(snap)
	st.TraceID = t.ID()
	writeJSON(w, http.StatusAccepted, st)
}

func (s *Server) writeAdmissionError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, jobs.ErrQueueFull), errors.Is(err, jobs.ErrOverBudget):
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, "%v", err)
	case errors.Is(err, jobs.ErrJobTooLarge):
		writeError(w, http.StatusRequestEntityTooLarge, "%v", err)
	case errors.Is(err, jobs.ErrClosed):
		writeError(w, http.StatusServiceUnavailable, "%v", err)
	default:
		writeError(w, http.StatusInternalServerError, "%v", err)
	}
}

func (s *Server) handleJobStatus(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	snap, ok := s.jobs.Get(id)
	if !ok {
		// The in-memory record is gone (restart, or TTL eviction) but the
		// job may have completed with its result persisted: report it done
		// so clients — and the cluster's requeue logic — don't mistake a
		// finished job for a lost one.
		if rec, ok := s.storedResultExists(id); ok {
			writeJSON(w, http.StatusOK, JobStatus{
				JobID:   id,
				Status:  rec.Status,
				Batches: len(rec.Results), BatchesDone: len(rec.Results),
				CreatedAt: rec.FinishedAt.UTC().Format(time.RFC3339Nano),
			})
			return
		}
		writeError(w, http.StatusNotFound, "unknown job %q", id)
		return
	}
	st := jobStatusJSON(snap)
	st.TraceID = s.tracer.TraceIDForJob(id)
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	snap, ok := s.jobs.Cancel(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, jobStatusJSON(snap))
}

func (s *Server) handleJobResult(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	result, snap, fs := s.jobs.FetchResult(id)
	switch fs {
	case jobs.FetchNotFound:
		// The in-memory record was lost to a restart or the TTL, but the
		// persisted copy still honors fetch-once: it is returned and
		// deleted in one step.
		if rec, ok := s.fetchStoredResult(id); ok {
			writeJSON(w, http.StatusOK, JobResult{JobID: id, Status: rec.Status, Results: rec.Results})
			return
		}
		writeError(w, http.StatusNotFound, "unknown job %q (results are evicted %s after completion)", id, s.jobs.Config().ResultTTL)
	case jobs.FetchNotDone:
		writeError(w, http.StatusConflict, "job %q is %s; poll GET /jobs/%s until it is done", id, snap.Status, id)
	case jobs.FetchGone:
		if snap.Status == jobs.StatusDone {
			writeError(w, http.StatusGone, "job %q result was already fetched (results are delivered exactly once)", id)
		} else {
			writeError(w, http.StatusGone, "job %q is %s: %s", id, snap.Status, snap.Error)
		}
	default:
		results, ok := result.([]BatchResult)
		if !ok {
			writeError(w, http.StatusInternalServerError, "job %q carries an unexpected result type", id)
			return
		}
		// Drop the persisted copy so the just-delivered result cannot be
		// fetched a second time through the store after a restart.
		s.dropStoredResult(id)
		writeJSON(w, http.StatusOK, JobResult{JobID: id, Status: string(snap.Status), Results: results})
	}
}

// handleJobEvents streams a job's progress as server-sent events: the full
// history first (late subscribers replay from the start), then live events
// until the terminal one. Each event is `event: <type>` + `data: <JSON>`.
func (s *Server) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	history, ch, unsubscribe, ok := s.jobs.Subscribe(id)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", id)
		return
	}
	defer unsubscribe()
	flusher, canFlush := w.(http.Flusher)
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	write := func(e jobs.Event) {
		data, _ := json.Marshal(e)
		fmt.Fprintf(w, "event: %s\ndata: %s\n\n", e.Type, data)
		if canFlush {
			flusher.Flush()
		}
	}
	for _, e := range history {
		write(e)
	}
	for {
		select {
		case <-r.Context().Done():
			return
		case e, open := <-ch:
			if !open {
				return
			}
			write(e)
		}
	}
}

// resolveExecution looks up the execution context and its pinned program for
// an execute or job request, refreshing LRU recency. A context missing from
// the in-memory table (restart, LRU eviction) is restored from the durable
// store, so execution against a context id survives both.
func (s *Server) resolveExecution(programID, contextID string) (*contextEntry, *Entry, int, error) {
	ce, ok := s.lookupContext(contextID)
	if !ok {
		return nil, nil, http.StatusNotFound, fmt.Errorf("unknown context %q; POST /contexts first", contextID)
	}
	if ce.Entry.ID != programID {
		return nil, nil, http.StatusConflict, fmt.Errorf("context %q belongs to program %q, not %q", contextID, ce.Entry.ID, programID)
	}
	s.registry.Get(programID) // refresh recency if still cached
	return ce, ce.Entry, http.StatusOK, nil
}

// runOptions resolves the per-request scheduler/worker knobs against the
// server's defaults and DoS clamps.
func (s *Server) runOptions(workers int, scheduler string) (execute.RunOptions, error) {
	sched, err := parseScheduler(scheduler)
	if err != nil {
		return execute.RunOptions{}, err
	}
	ropts := execute.RunOptions{Workers: workers, Scheduler: sched, DisableHoisting: s.cfg.DisableHoisting}
	if ropts.Workers <= 0 {
		ropts.Workers = s.cfg.DefaultWorkers
	}
	// Clamp the client-supplied knob: goroutines beyond the machine's
	// parallelism only cost memory, and an unbounded value is a DoS vector.
	if maxWorkers := 4 * runtime.GOMAXPROCS(0); ropts.Workers > maxWorkers {
		ropts.Workers = maxWorkers
	}
	return ropts, nil
}
