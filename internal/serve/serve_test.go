package serve

import (
	"bytes"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"eva/internal/builder"
	"eva/internal/ckks"
	"eva/internal/core"
	"eva/internal/execute"
)

// e2eProgram exercises every interesting opcode class: a ciphertext square
// (forcing RELINEARIZE + RESCALE), a rotation (forcing a Galois key), and a
// cipher-plain sum.
func e2eProgram(t testing.TB) *core.Program {
	t.Helper()
	b := builder.New("e2e", 8)
	x := b.Input("x", 30)
	y := b.Input("y", 30)
	b.Output("out", x.Square().RotateLeft(1).Add(y).MulScalar(0.5, 30), 30)
	prog, err := b.Program()
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

func programJSON(t testing.TB, p *core.Program) json.RawMessage {
	t.Helper()
	data, err := p.SerializeBytes()
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func postJSON[T any](t testing.TB, client *http.Client, url string, body any) (T, *http.Response) {
	t.Helper()
	payload, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Post(url, "application/json", bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out T
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decoding %s response: %v", url, err)
	}
	return out, resp
}

func getJSON[T any](t testing.TB, client *http.Client, url string) T {
	t.Helper()
	resp, err := client.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	var out T
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decoding %s response: %v", url, err)
	}
	return out
}

func newTestServer(t testing.TB, cfg Config) (*httptest.Server, *Server) {
	t.Helper()
	s := NewServer(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(s.Close)
	return ts, s
}

func compileRequest(t testing.TB, p *core.Program) CompileRequest {
	return CompileRequest{
		Program: programJSON(t, p),
		Options: &CompileOptionsJSON{AllowInsecure: true},
	}
}

// TestEndToEndClientKeys walks the paper's deployment model entirely over
// HTTP: compile on the server, generate keys on the client, upload only the
// public evaluation keys, submit a batch of client-encrypted input sets, and
// decrypt the returned ciphertexts locally. The decrypted results must match
// the unencrypted reference execution within the program's output precision.
func TestEndToEndClientKeys(t *testing.T) {
	ts, _ := newTestServer(t, Config{})
	client := ts.Client()
	prog := e2eProgram(t)

	// Compile twice: the second submission must be a cache hit.
	comp, resp := postJSON[CompileResponse](t, client, ts.URL+"/compile", compileRequest(t, prog))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("compile: status %d", resp.StatusCode)
	}
	if comp.Cached {
		t.Error("first compile reported as cached")
	}
	comp2, _ := postJSON[CompileResponse](t, client, ts.URL+"/compile", compileRequest(t, prog))
	if !comp2.Cached || comp2.ID != comp.ID {
		t.Errorf("second compile not served from cache (cached=%v id=%s vs %s)", comp2.Cached, comp2.ID, comp.ID)
	}

	// Client side: rebuild the parameters and generate all key material.
	params, err := ckks.NewParameters(comp.Params.Literal())
	if err != nil {
		t.Fatal(err)
	}
	prng := ckks.NewTestPRNG(11)
	kg := ckks.NewKeyGenerator(params, prng)
	sk := kg.GenSecretKey()
	pk := kg.GenPublicKey(sk)
	rlk, err := kg.GenRelinearizationKey(sk)
	if err != nil {
		t.Fatal(err)
	}
	if len(comp.RotationSteps) == 0 {
		t.Fatal("expected rotation steps for the e2e program")
	}
	rtk, err := kg.GenRotationKeys(comp.RotationSteps, sk)
	if err != nil {
		t.Fatal(err)
	}

	// Ship only the public evaluation keys.
	rlkData, err := rlk.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	rotations := map[string]string{}
	for galEl, swk := range rtk.Keys {
		data, err := swk.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		rotations[fmt.Sprint(galEl)] = base64.StdEncoding.EncodeToString(data)
	}
	ctxResp, resp := postJSON[ContextResponse](t, client, ts.URL+"/contexts", ContextRequest{
		ProgramID: comp.ID,
		Keys: &EvalKeysJSON{
			Relin:     base64.StdEncoding.EncodeToString(rlkData),
			Rotations: rotations,
		},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("contexts: status %d", resp.StatusCode)
	}

	// An incomplete rotation key upload must fail at context creation, not
	// at execution time.
	_, resp = postJSON[apiError](t, client, ts.URL+"/contexts", ContextRequest{
		ProgramID: comp.ID,
		Keys:      &EvalKeysJSON{Relin: base64.StdEncoding.EncodeToString(rlkData)},
	})
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Errorf("context without rotation keys: status %d, want 422", resp.StatusCode)
	}

	// The whole-set rotation encoding must be accepted too.
	rtkData, err := rtk.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	_, resp = postJSON[ContextResponse](t, client, ts.URL+"/contexts", ContextRequest{
		ProgramID: comp.ID,
		Keys: &EvalKeysJSON{
			Relin:       base64.StdEncoding.EncodeToString(rlkData),
			RotationSet: base64.StdEncoding.EncodeToString(rtkData),
		},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("contexts with rotation_set: status %d", resp.StatusCode)
	}

	// Encrypt two input sets locally and submit them as one batched request.
	inputSets := []execute.Inputs{
		{"x": {1, 2, 3, 4, 5, 6, 7, 8}, "y": {8, 7, 6, 5, 4, 3, 2, 1}},
		{"x": {0.5, -1, 2, -2, 3, -3, 4, -4}, "y": {1, 1, 2, 2, 3, 3, 4, 4}},
	}
	encoder := ckks.NewEncoder(params)
	encryptor := ckks.NewEncryptor(params, pk, prng)
	batches := make([]ExecuteBatch, len(inputSets))
	for i, in := range inputSets {
		batches[i].Cipher = map[string]string{}
		for name, v := range in {
			pt, err := encoder.Encode(v, math.Exp2(comp.InputScales[name]), params.MaxLevel())
			if err != nil {
				t.Fatal(err)
			}
			ct, err := encryptor.Encrypt(pt)
			if err != nil {
				t.Fatal(err)
			}
			data, err := ct.MarshalBinary()
			if err != nil {
				t.Fatal(err)
			}
			batches[i].Cipher[name] = base64.StdEncoding.EncodeToString(data)
		}
	}
	execResp, resp := postJSON[ExecuteResponse](t, client, ts.URL+"/execute/"+comp.ID, ExecuteRequest{
		ContextID: ctxResp.ContextID,
		Workers:   2,
		Batches:   batches,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("execute: status %d", resp.StatusCode)
	}
	if len(execResp.Results) != len(inputSets) {
		t.Fatalf("got %d results, want %d", len(execResp.Results), len(inputSets))
	}

	// Decrypt locally and compare against the reference executor.
	decryptor := ckks.NewDecryptor(params, sk)
	for i, result := range execResp.Results {
		if result.Error != "" {
			t.Fatalf("batch %d: %s", i, result.Error)
		}
		ref, err := execute.RunReference(prog, inputSets[i])
		if err != nil {
			t.Fatal(err)
		}
		b64, ok := result.Cipher["out"]
		if !ok {
			t.Fatalf("batch %d: no ciphertext for output \"out\"", i)
		}
		data, err := base64.StdEncoding.DecodeString(b64)
		if err != nil {
			t.Fatal(err)
		}
		ct := &ckks.Ciphertext{}
		if err := ct.UnmarshalBinary(data); err != nil {
			t.Fatal(err)
		}
		got := encoder.Decode(decryptor.Decrypt(ct))
		for j, want := range ref["out"] {
			if math.Abs(got[j]-want) > 1e-2 {
				t.Errorf("batch %d slot %d: got %v, want %v", i, j, got[j], want)
			}
		}
		if result.Stats.Instructions == 0 || result.Stats.Workers != 2 {
			t.Errorf("batch %d: implausible stats %+v", i, result.Stats)
		}
	}

	// Malformed ciphertext uploads must be rejected per batch, not crash the
	// server: garbage bytes, and a structurally wrong (non-NTT) ciphertext.
	badCT := ckks.NewCiphertext(params, 2, params.MaxLevel(), math.Exp2(30))
	badCT.Value[0].IsNTT = false
	badData, err := badCT.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	for name, payload := range map[string]string{
		"garbage": base64.StdEncoding.EncodeToString([]byte("\xC1not a ciphertext")),
		"non-NTT": base64.StdEncoding.EncodeToString(badData),
	} {
		bad := ExecuteBatch{Cipher: map[string]string{"x": payload, "y": batches[0].Cipher["y"]}}
		r, resp := postJSON[ExecuteResponse](t, client, ts.URL+"/execute/"+comp.ID, ExecuteRequest{
			ContextID: ctxResp.ContextID,
			Batches:   []ExecuteBatch{bad},
		})
		if resp.StatusCode != http.StatusOK || len(r.Results) != 1 || r.Results[0].Error == "" {
			t.Errorf("%s ciphertext: want per-batch error, got status %d results %+v", name, resp.StatusCode, r.Results)
		}
	}

	// The registry metrics must show the second compile as a cache hit.
	metrics := getJSON[MetricsReport](t, client, ts.URL+"/metrics")
	if metrics.Cache.Misses != 1 || metrics.Cache.Hits+metrics.Cache.Joins != 1 {
		t.Errorf("cache stats %+v, want 1 miss and 1 hit", metrics.Cache)
	}
	if metrics.CacheHitRate != 0.5 {
		t.Errorf("cache hit rate %v, want 0.5", metrics.CacheHitRate)
	}
	if metrics.Executions != uint64(len(inputSets)) {
		t.Errorf("executions %d, want %d", metrics.Executions, len(inputSets))
	}
	mul, ok := metrics.PerOp["MULTIPLY"]
	if !ok || mul.Count == 0 {
		t.Errorf("per-op metrics missing MULTIPLY latencies: %+v", metrics.PerOp)
	}
	if mul.PredictedShare <= 0 {
		t.Errorf("MULTIPLY predicted cost share is %v, want > 0", mul.PredictedShare)
	}
}

// TestConcurrentCompileOverHTTP races two /compile requests for the same
// program and checks the registry compiled it exactly once.
func TestConcurrentCompileOverHTTP(t *testing.T) {
	ts, _ := newTestServer(t, Config{})
	client := ts.Client()
	req := compileRequest(t, e2eProgram(t))

	const n = 8
	var wg sync.WaitGroup
	ids := make([]string, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			comp, _ := postJSON[CompileResponse](t, client, ts.URL+"/compile", req)
			ids[i] = comp.ID
		}(i)
	}
	wg.Wait()
	for i := 1; i < n; i++ {
		if ids[i] != ids[0] {
			t.Fatalf("request %d got id %s, want %s", i, ids[i], ids[0])
		}
	}
	metrics := getJSON[MetricsReport](t, client, ts.URL+"/metrics")
	if metrics.Cache.Misses != 1 {
		t.Errorf("%d compilations for %d identical requests (stats %+v)", metrics.Cache.Misses, n, metrics.Cache)
	}
	if metrics.Requests["compile"] != n {
		t.Errorf("request counter %d, want %d", metrics.Requests["compile"], n)
	}
}

// TestDemoModeRoundTrip exercises the trusted demo mode: the server
// generates keys, accepts plaintext values, and returns decrypted outputs.
func TestDemoModeRoundTrip(t *testing.T) {
	ts, _ := newTestServer(t, Config{AllowServerKeygen: true})
	client := ts.Client()
	prog := e2eProgram(t)

	comp, _ := postJSON[CompileResponse](t, client, ts.URL+"/compile", compileRequest(t, prog))
	ctxResp, resp := postJSON[ContextResponse](t, client, ts.URL+"/contexts", ContextRequest{
		ProgramID: comp.ID,
		Keygen:    &KeygenJSON{Seed: 3},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("contexts: status %d", resp.StatusCode)
	}

	inputs := execute.Inputs{"x": {1, 2, 3, 4, 5, 6, 7, 8}, "y": {8, 7, 6, 5, 4, 3, 2, 1}}
	execResp, _ := postJSON[ExecuteResponse](t, client, ts.URL+"/execute/"+comp.ID, ExecuteRequest{
		ContextID: ctxResp.ContextID,
		Batches:   []ExecuteBatch{{Values: inputs}},
	})
	if len(execResp.Results) != 1 || execResp.Results[0].Error != "" {
		t.Fatalf("unexpected results: %+v", execResp.Results)
	}
	ref, err := execute.RunReference(prog, inputs)
	if err != nil {
		t.Fatal(err)
	}
	got := execResp.Results[0].Values["out"]
	for j, want := range ref["out"] {
		if math.Abs(got[j]-want) > 1e-2 {
			t.Errorf("slot %d: got %v, want %v", j, got[j], want)
		}
	}
}

// TestServerKeygenDisabled checks that keygen contexts are rejected unless
// demo mode is explicitly enabled.
func TestServerKeygenDisabled(t *testing.T) {
	ts, _ := newTestServer(t, Config{})
	client := ts.Client()
	comp, _ := postJSON[CompileResponse](t, client, ts.URL+"/compile", compileRequest(t, e2eProgram(t)))
	_, resp := postJSON[apiError](t, client, ts.URL+"/contexts", ContextRequest{
		ProgramID: comp.ID,
		Keygen:    &KeygenJSON{},
	})
	if resp.StatusCode != http.StatusForbidden {
		t.Errorf("keygen on a non-demo server: status %d, want 403", resp.StatusCode)
	}
}

// TestProgramsAndHealth checks the registry listing and liveness endpoints.
func TestProgramsAndHealth(t *testing.T) {
	ts, _ := newTestServer(t, Config{})
	client := ts.Client()
	comp, _ := postJSON[CompileResponse](t, client, ts.URL+"/compile", compileRequest(t, e2eProgram(t)))

	programs := getJSON[[]ProgramInfo](t, client, ts.URL+"/programs")
	if len(programs) != 1 || programs[0].ID != comp.ID || programs[0].Name != "e2e" {
		t.Errorf("unexpected program listing: %+v", programs)
	}
	health := getJSON[HealthResponse](t, client, ts.URL+"/healthz")
	if health.Status != "ok" || health.Programs != 1 {
		t.Errorf("unexpected health: %+v", health)
	}

	resp, err := client.Get(ts.URL + "/programs/" + comp.ID)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("GET /programs/{id}: status %d", resp.StatusCode)
	}
}

// TestContextSurvivesEviction checks that a live execution context keeps
// working after its compiled program is evicted from the LRU registry: the
// context pins the compiled result.
func TestContextSurvivesEviction(t *testing.T) {
	ts, _ := newTestServer(t, Config{CacheCapacity: 1, AllowServerKeygen: true})
	client := ts.Client()
	progA := e2eProgram(t)
	compA, _ := postJSON[CompileResponse](t, client, ts.URL+"/compile", compileRequest(t, progA))
	ctxResp, _ := postJSON[ContextResponse](t, client, ts.URL+"/contexts", ContextRequest{
		ProgramID: compA.ID,
		Keygen:    &KeygenJSON{Seed: 9},
	})

	// Compile a different program; capacity 1 evicts program A.
	b := builder.New("other", 8)
	b.Output("o", b.Input("x", 30).Square(), 30)
	progB, err := b.Program()
	if err != nil {
		t.Fatal(err)
	}
	compB, _ := postJSON[CompileResponse](t, client, ts.URL+"/compile", compileRequest(t, progB))
	if compB.ID == compA.ID {
		t.Fatal("programs unexpectedly hashed alike")
	}
	programs := getJSON[[]ProgramInfo](t, client, ts.URL+"/programs")
	if len(programs) != 1 || programs[0].ID != compB.ID {
		t.Fatalf("expected only program B cached, got %+v", programs)
	}

	inputs := execute.Inputs{"x": {1, 2, 3, 4, 5, 6, 7, 8}, "y": {8, 7, 6, 5, 4, 3, 2, 1}}
	execResp, resp := postJSON[ExecuteResponse](t, client, ts.URL+"/execute/"+compA.ID, ExecuteRequest{
		ContextID: ctxResp.ContextID,
		Batches:   []ExecuteBatch{{Values: inputs}},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("execute after eviction: status %d", resp.StatusCode)
	}
	if len(execResp.Results) != 1 || execResp.Results[0].Error != "" {
		t.Fatalf("execute after eviction failed: %+v", execResp.Results)
	}
	ref, err := execute.RunReference(progA, inputs)
	if err != nil {
		t.Fatal(err)
	}
	got := execResp.Results[0].Values["out"]
	for j, want := range ref["out"] {
		if math.Abs(got[j]-want) > 1e-2 {
			t.Errorf("slot %d: got %v, want %v", j, got[j], want)
		}
	}
}

// TestContextLRUBound checks that the context store is bounded and drops the
// least recently used context.
func TestContextLRUBound(t *testing.T) {
	ts, _ := newTestServer(t, Config{MaxContexts: 2, AllowServerKeygen: true})
	client := ts.Client()
	comp, _ := postJSON[CompileResponse](t, client, ts.URL+"/compile", compileRequest(t, e2eProgram(t)))

	var ids []string
	for i := uint64(1); i <= 3; i++ {
		ctxResp, _ := postJSON[ContextResponse](t, client, ts.URL+"/contexts", ContextRequest{
			ProgramID: comp.ID,
			Keygen:    &KeygenJSON{Seed: i},
		})
		ids = append(ids, ctxResp.ContextID)
	}
	_, resp := postJSON[apiError](t, client, ts.URL+"/execute/"+comp.ID, ExecuteRequest{
		ContextID: ids[0],
		Batches:   []ExecuteBatch{{}},
	})
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("evicted context: status %d, want 404", resp.StatusCode)
	}
	health := getJSON[HealthResponse](t, client, ts.URL+"/healthz")
	if health.Contexts != 2 {
		t.Errorf("health reports %d contexts, want 2", health.Contexts)
	}
}

// TestExecuteErrors checks the failure modes of /execute.
func TestExecuteErrors(t *testing.T) {
	ts, _ := newTestServer(t, Config{AllowServerKeygen: true})
	client := ts.Client()
	comp, _ := postJSON[CompileResponse](t, client, ts.URL+"/compile", compileRequest(t, e2eProgram(t)))

	_, resp := postJSON[apiError](t, client, ts.URL+"/execute/nosuch", ExecuteRequest{ContextID: "x"})
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown program: status %d, want 404", resp.StatusCode)
	}
	_, resp = postJSON[apiError](t, client, ts.URL+"/execute/"+comp.ID, ExecuteRequest{ContextID: "nosuch", Batches: []ExecuteBatch{{}}})
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown context: status %d, want 404", resp.StatusCode)
	}

	ctxResp, _ := postJSON[ContextResponse](t, client, ts.URL+"/contexts", ContextRequest{ProgramID: comp.ID, Keygen: &KeygenJSON{Seed: 5}})
	execResp, _ := postJSON[ExecuteResponse](t, client, ts.URL+"/execute/"+comp.ID, ExecuteRequest{
		ContextID: ctxResp.ContextID,
		Batches:   []ExecuteBatch{{Values: execute.Inputs{"x": {1}}}}, // missing input y
	})
	if len(execResp.Results) != 1 || execResp.Results[0].Error == "" {
		t.Errorf("missing input should fail the batch: %+v", execResp.Results)
	}
}
