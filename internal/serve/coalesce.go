package serve

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"eva/internal/coalesce"
	"eva/internal/core"
	"eva/internal/execute"
	"eva/internal/jobs"
	"eva/internal/obs"
)

// Request coalescing (POST /jobs?coalesce=1) packs many compatible narrow
// requests into one shared homomorphic execution: same program, same
// context, width·k ≤ VecSize, no rotations. The handler validates each
// caller up front (a bad request is rejected with 400 and never joins a
// batch), blocks in the coalescer until its batch runs, and returns that
// caller's demuxed slice synchronously. The batch itself is one ordinary
// job through the manager — admission control charges the shared
// ciphertexts once, not once per caller, and GET /jobs/{batch_job_id}
// reports the batch (stats only; per-caller values are delivered to the
// callers and never retained).
//
// Trust model: co-batched callers share a ciphertext, so coalescing is
// limited to server-keygen (demo/shared-key) contexts — the server packs
// plaintext values and encrypts once. Client-encrypted ciphertexts cannot
// be packed without a masking multiply per caller. Programs whose inputs
// are all plain need no keys and coalesce on any context.

// CoalesceResponse is the body returned to one caller of a coalesced
// submission: its own demuxed result plus where it rode — the underlying
// batch job, how many callers shared it, the caller's slot range, and the
// slot occupancy of the packed ciphertext. Stats inside Result are the
// whole batch's (the amortized per-caller cost is WallMillis/BatchSize).
type CoalesceResponse struct {
	ProgramID  string         `json:"program_id"`
	ContextID  string         `json:"context_id"`
	BatchJobID string         `json:"batch_job_id"`
	BatchSize  int            `json:"batch_size"`
	Slot       coalesce.Range `json:"slot"`
	Occupancy  float64        `json:"occupancy"`
	WaitMillis float64        `json:"wait_ms"`
	Result     BatchResult    `json:"result"`
}

// coalesceRequested reports whether a /jobs submission opted into
// cross-request batching.
func coalesceRequested(r *http.Request) bool {
	switch r.URL.Query().Get("coalesce") {
	case "1", "true", "yes":
		return true
	}
	return false
}

// handleCoalescedSubmit validates one caller's submission and parks it in
// the coalescer. Everything that can be wrong with a request is rejected
// here, before it joins a batch, so one malformed caller can never poison
// co-batched peers.
func (s *Server) handleCoalescedSubmit(w http.ResponseWriter, r *http.Request, req *JobRequest) {
	ce, entry, status, err := s.resolveExecution(req.ProgramID, req.ContextID)
	if err != nil {
		writeError(w, status, "%v", err)
		return
	}
	if len(req.Batches) != 1 {
		writeError(w, http.StatusBadRequest, "a coalesced submission carries exactly one batch, got %d", len(req.Batches))
		return
	}
	if err := validOutputMode(req.Output); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	batch := &req.Batches[0]
	if len(batch.Cipher) > 0 || len(batch.Handles) > 0 {
		// Ciphertext-carrying submissions (uploads or stored handles) occupy
		// the full slot vector, so they cannot share a packed execution with
		// other callers; run them as a batch of one so the coalesce surface
		// still accepts every input form.
		s.runUncoalesced(w, r, req, entry, ce)
		return
	}
	if req.Output == outputHandle {
		writeError(w, http.StatusBadRequest, "coalesced callers receive their demuxed slices; \"output\": \"handle\" would store the shared ciphertext — POST /jobs without coalesce=1 instead")
		return
	}
	stride, err := coalesce.Compatible(entry.Result)
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	prog := entry.Result.Program
	inputs := make(map[string][]float64, len(prog.Inputs()))
	for _, in := range prog.Inputs() {
		var v []float64
		var ok bool
		if in.InType == core.TypeCipher {
			if ce.Keys == nil {
				writeError(w, http.StatusBadRequest, "coalescing encrypted input %q needs a server-keygen (demo) context; this context has no keys", in.Name)
				return
			}
			v, ok = batch.Values[in.Name]
		} else {
			v, ok = batch.Plain[in.Name]
		}
		if !ok {
			writeError(w, http.StatusBadRequest, "missing value for input %q", in.Name)
			return
		}
		if len(v) == 0 || len(v) > stride {
			writeError(w, http.StatusBadRequest, "input %q has %d values; a coalesced caller supplies 1..%d (the program's slot stride)", in.Name, len(v), stride)
			return
		}
		inputs[in.Name] = v
	}

	// The caller blocks here for its whole coalesced ride: waiting for the
	// batch to fill, the shared execution, and the demux. The span's attrs
	// record where it rode once the delivery arrives.
	waitSpan := obs.TraceFromContext(r.Context()).StartSpan("coalesce_wait", obs.SpanFromContext(r.Context()))
	d, err := s.coalescer.Submit(r.Context(), &coalesce.Request{
		Key:     coalesce.Key{Program: entry.ID, Context: ce.ID},
		VecSize: prog.VecSize,
		Stride:  stride,
		Inputs:  inputs,
	})
	if err == nil {
		waitSpan.SetAttr("batch_job_id", d.BatchID)
		waitSpan.SetAttr("batch_size", strconv.Itoa(d.BatchSize))
	}
	waitSpan.End()
	if err != nil {
		switch {
		case r.Context().Err() != nil:
			// The caller is gone; there is no one to answer.
		case errors.Is(err, coalesce.ErrClosed):
			writeError(w, http.StatusServiceUnavailable, "%v", err)
		default:
			// Admission errors surface with their usual status codes
			// (429/413/503); anything else failed inside the shared run.
			s.writeAdmissionError(w, err)
		}
		return
	}
	result, ok := d.Payload.(BatchResult)
	if !ok {
		writeError(w, http.StatusInternalServerError, "coalesced batch carries an unexpected result type")
		return
	}
	writeJSON(w, http.StatusOK, CoalesceResponse{
		ProgramID:  entry.ID,
		ContextID:  ce.ID,
		BatchJobID: d.BatchID,
		BatchSize:  d.BatchSize,
		Slot:       d.Slot,
		Occupancy:  d.Occupancy,
		WaitMillis: d.WaitMS,
		Result:     result,
	})
}

// runUncoalesced serves a coalesce=1 submission that cannot be packed (it
// carries a full-width ciphertext: an upload or a handle reference) as a
// synchronous batch of one. Input resolution failures keep their structured
// statuses (422 chaining, 404 unknown handle); the run itself reports errors
// in the result body like /execute does.
func (s *Server) runUncoalesced(w http.ResponseWriter, r *http.Request, req *JobRequest, entry *Entry, ce *contextEntry) {
	ropts, err := s.runOptions(req.Workers, req.Scheduler)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	batch := &req.Batches[0]
	cache := newHandleCache()
	enc, err := s.buildBatchInputs(r.Context(), ce, entry.Result, batch, nil, cache, false)
	if err != nil {
		s.writeInputError(w, err)
		return
	}
	start := time.Now()
	result := s.runBatch(r.Context(), entry, ce, batch, enc, ropts, req.Output, cache)
	writeJSON(w, http.StatusOK, CoalesceResponse{
		ProgramID:  entry.ID,
		ContextID:  ce.ID,
		BatchSize:  1,
		Slot:       coalesce.Range{Start: 0, Width: entry.Result.Program.VecSize},
		Occupancy:  1,
		WaitMillis: float64(time.Since(start)) / float64(time.Millisecond),
		Result:     result,
	})
}

// runCoalescedBatch executes one sealed batch: pack every caller's inputs
// into shared full-width vectors, run them as ONE job through the manager
// (admission control sees the batch once), demux each output back into
// per-caller slices, and deliver. It is the coalescer's Config.Run hook.
func (s *Server) runCoalescedBatch(b *coalesce.Batch) {
	// The shared execution gets its own trace (each caller's request trace
	// records only that caller's wait); the batch trace is bound to the
	// batch's job id, so GET /jobs/{batch_job_id}/trace shows the shared
	// pack → queue → execute → demux pipeline.
	bt := s.tracer.Start("")
	defer bt.Release()

	// Re-resolve: the context may have been LRU-evicted (and store-restored)
	// between submission and seal.
	ce, entry, _, err := s.resolveExecution(b.Key.Program, b.Key.Context)
	if err != nil {
		b.FailAll(err)
		return
	}
	layout := b.Layout()
	reqs := b.Requests()
	prog := entry.Result.Program

	packSpan := bt.StartSpan("coalesce_pack", nil)
	packSpan.SetAttr("callers", strconv.Itoa(len(reqs)))
	packed := &ExecuteBatch{Values: map[string][]float64{}, Plain: map[string][]float64{}}
	pendingValues := 0
	for _, in := range prog.Inputs() {
		per := make([][]float64, len(reqs))
		for j, req := range reqs {
			per[j] = req.Inputs[in.Name]
		}
		vec, err := coalesce.Pack(layout, per)
		if err != nil {
			b.FailAll(err)
			return
		}
		if in.InType == core.TypeCipher {
			packed.Values[in.Name] = vec
			pendingValues++
		} else {
			packed.Plain[in.Name] = vec
		}
	}
	packSpan.End()

	// One admission charge for the whole batch: the packed plain vectors by
	// their real size, one fresh ciphertext per encrypted input (not per
	// caller), and the cost model's peak once.
	est := estimateJobBytes(entry, []*execute.EncryptedInputs{{Plain: packed.Plain}}, pendingValues)
	ropts, _ := s.runOptions(0, "") // shared runs use the server's defaults
	id, err := jobs.NewID()
	if err != nil {
		b.FailAll(err)
		return
	}
	s.bindJobTrace(id, bt)
	queueSpan := bt.StartSpan("queue_wait", nil)
	snap, err := s.jobs.SubmitWithID(id, 1, est, func(jctx context.Context, batchDone func(int)) (any, error) {
		queueSpan.End()
		jctx = obs.ContextWithTrace(jctx, bt)
		start := time.Now()
		result := s.runBatch(jctx, entry, ce, packed, nil, ropts, "", nil)
		b.Done(time.Since(start))
		batchDone(0)
		if result.Error != "" {
			err := fmt.Errorf("coalesced execution: %s", result.Error)
			b.FailAll(err)
			return nil, err
		}
		demuxSpan := bt.StartSpan("coalesce_demux", nil)
		defer demuxSpan.End()
		perCaller := make([]BatchResult, len(reqs))
		for j := range perCaller {
			perCaller[j] = BatchResult{Values: map[string][]float64{}, Stats: result.Stats}
		}
		for name, vec := range result.Values {
			parts, err := coalesce.Demux(layout, vec)
			if err != nil {
				err = fmt.Errorf("demultiplexing output %q: %w", name, err)
				b.FailAll(err)
				return nil, err
			}
			for j := range parts {
				perCaller[j].Values[name] = parts[j]
			}
		}
		for j := range perCaller {
			b.Deliver(j, perCaller[j], nil)
		}
		// The job's retained result is the batch's stats only: per-caller
		// values were just delivered and are never stored where another
		// tenant could fetch them.
		return []BatchResult{{Stats: result.Stats}}, nil
	})
	if err != nil {
		// The job never became visible, so the finish hook will not fire;
		// drop the binding and its reference.
		if bound := s.takeJobTrace(id); bound != nil {
			bound.Release()
		}
		b.FailAll(err)
		return
	}
	b.SetID(snap.ID)
	// If every caller abandons the sealed batch, cancel the shared job too.
	b.SetCancel(func() { s.jobs.Cancel(snap.ID) })
}
