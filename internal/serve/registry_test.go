package serve

import (
	"fmt"
	"sync"
	"testing"

	"eva/internal/builder"
	"eva/internal/compile"
	"eva/internal/core"
)

// testProgram builds a small compilable program; the salt value makes
// structurally distinct programs for cache-eviction tests.
func testProgram(t testing.TB, name string, salt float64) *core.Program {
	t.Helper()
	b := builder.New(name, 8)
	x := b.Input("x", 30)
	y := b.Input("y", 30)
	b.Output("out", x.Square().Add(y).MulScalar(salt, 30), 30)
	prog, err := b.Program()
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

func insecureOptions() compile.Options {
	opts := compile.DefaultOptions()
	opts.AllowInsecure = true
	return opts
}

// TestRegistryConcurrentDedup checks the singleflight property: N goroutines
// racing to compile the same program trigger exactly one compilation.
func TestRegistryConcurrentDedup(t *testing.T) {
	reg := NewRegistry(8)
	prog := testProgram(t, "dedup", 0.5)
	opts := insecureOptions()

	const n = 16
	var wg sync.WaitGroup
	entries := make([]*Entry, n)
	errs := make([]error, n)
	start := make(chan struct{})
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			entries[i], _, errs[i] = reg.GetOrCompile(prog, opts)
		}(i)
	}
	close(start)
	wg.Wait()

	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("goroutine %d: %v", i, errs[i])
		}
		if entries[i] != entries[0] {
			t.Fatalf("goroutine %d got a different entry", i)
		}
	}
	stats := reg.Stats()
	if stats.Misses != 1 {
		t.Errorf("got %d compilations, want exactly 1 (stats %+v)", stats.Misses, stats)
	}
	if stats.Hits+stats.Joins != n-1 {
		t.Errorf("got %d deduplicated lookups, want %d (stats %+v)", stats.Hits+stats.Joins, n-1, stats)
	}
	if stats.Size != 1 {
		t.Errorf("cache holds %d entries, want 1", stats.Size)
	}
}

// TestRegistrySequentialHit checks that re-submitting a program is answered
// from the cache and recorded as a hit.
func TestRegistrySequentialHit(t *testing.T) {
	reg := NewRegistry(8)
	prog := testProgram(t, "hit", 0.5)
	opts := insecureOptions()

	e1, cached, err := reg.GetOrCompile(prog, opts)
	if err != nil {
		t.Fatal(err)
	}
	if cached {
		t.Error("first compilation reported as cached")
	}
	e2, cached, err := reg.GetOrCompile(prog, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !cached || e2 != e1 {
		t.Errorf("second submission not served from cache (cached=%v, same=%v)", cached, e2 == e1)
	}
	if e2.Hits() != 1 {
		t.Errorf("entry hits = %d, want 1", e2.Hits())
	}

	// Different options are a different entry.
	opts2 := opts
	opts2.Optimize = true
	e3, cached, err := reg.GetOrCompile(prog, opts2)
	if err != nil {
		t.Fatal(err)
	}
	if cached || e3 == e1 {
		t.Error("different options reused the same cache entry")
	}
}

// TestRegistryEviction checks least-recently-used eviction at capacity.
func TestRegistryEviction(t *testing.T) {
	reg := NewRegistry(2)
	opts := insecureOptions()

	var ids []string
	for i := 0; i < 3; i++ {
		prog := testProgram(t, fmt.Sprintf("evict-%d", i), float64(i+1))
		e, _, err := reg.GetOrCompile(prog, opts)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, e.ID)
	}

	stats := reg.Stats()
	if stats.Size != 2 || stats.Evictions != 1 {
		t.Errorf("size=%d evictions=%d, want 2 and 1", stats.Size, stats.Evictions)
	}
	if _, ok := reg.Get(ids[0]); ok {
		t.Error("oldest entry survived eviction")
	}
	for _, id := range ids[1:] {
		if _, ok := reg.Get(id); !ok {
			t.Errorf("entry %s missing after eviction", id)
		}
	}

	// Recompiling the evicted program is a miss, not a hit.
	_, cached, err := reg.GetOrCompile(testProgram(t, "evict-0", 1), opts)
	if err != nil {
		t.Fatal(err)
	}
	if cached {
		t.Error("evicted program reported as cached")
	}
}

// TestRegistryLRUTouch checks that Get refreshes recency so the least
// recently used entry is the one evicted.
func TestRegistryLRUTouch(t *testing.T) {
	reg := NewRegistry(2)
	opts := insecureOptions()
	a, _, err := reg.GetOrCompile(testProgram(t, "a", 1), opts)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := reg.GetOrCompile(testProgram(t, "b", 2), opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := reg.Get(a.ID); !ok { // touch a: b becomes LRU
		t.Fatal("entry a missing")
	}
	if _, _, err := reg.GetOrCompile(testProgram(t, "c", 3), opts); err != nil {
		t.Fatal(err)
	}
	if _, ok := reg.Get(b.ID); ok {
		t.Error("expected b (least recently used) to be evicted")
	}
	if _, ok := reg.Get(a.ID); !ok {
		t.Error("expected a (recently touched) to survive")
	}
}

// TestProgramIDCanonical checks that the registry key ignores JSON formatting
// and depends only on program structure and options.
func TestProgramIDCanonical(t *testing.T) {
	p1 := testProgram(t, "canon", 0.5)
	p2 := testProgram(t, "canon", 0.5)
	opts := insecureOptions()
	s1, err := p1.SerializeBytes()
	if err != nil {
		t.Fatal(err)
	}
	s2, err := p2.SerializeBytes()
	if err != nil {
		t.Fatal(err)
	}
	id1, err := ProgramID(s1, opts)
	if err != nil {
		t.Fatal(err)
	}
	id2, err := ProgramID(s2, opts)
	if err != nil {
		t.Fatal(err)
	}
	if id1 != id2 {
		t.Errorf("identical programs hash differently: %s vs %s", id1, id2)
	}
	p3 := testProgram(t, "canon", 0.25)
	s3, _ := p3.SerializeBytes()
	id3, _ := ProgramID(s3, opts)
	if id3 == id1 {
		t.Error("distinct programs hash alike")
	}
}

// TestRegistryCapacityClamped is the regression test for the
// capacity-below-one footgun: a registry built with capacity <= 0 must never
// evict the entry GetOrCompile just inserted (which would hand /compile
// clients a program id that immediately 404s).
func TestRegistryCapacityClamped(t *testing.T) {
	for _, capacity := range []int{0, -1, -128} {
		reg := NewRegistry(capacity)
		if reg.capacity < 1 {
			t.Fatalf("NewRegistry(%d) kept capacity %d, want >= 1", capacity, reg.capacity)
		}
		prog := testProgram(t, "clamp", 0.25)
		entry, _, err := reg.GetOrCompile(prog, insecureOptions())
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := reg.Get(entry.ID); !ok {
			t.Fatalf("capacity %d: entry %s evicted immediately after insertion", capacity, entry.ID)
		}
	}
}

// TestRegistryCapacityOneConcurrent inserts distinct programs concurrently
// into a capacity-1 registry: every GetOrCompile must still return an entry
// that was retrievable at the moment it was handed out, the final cache size
// must respect the capacity, and the most recently inserted entry survives.
func TestRegistryCapacityOneConcurrent(t *testing.T) {
	reg := NewRegistry(1)
	const n = 8
	var wg sync.WaitGroup
	entries := make([]*Entry, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			prog := testProgram(t, fmt.Sprintf("cap1-%d", i), float64(i+1))
			entries[i], _, errs[i] = reg.GetOrCompile(prog, insecureOptions())
		}(i)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("goroutine %d: %v", i, errs[i])
		}
		if entries[i] == nil || entries[i].Result == nil {
			t.Fatalf("goroutine %d: GetOrCompile returned no usable entry", i)
		}
	}
	stats := reg.Stats()
	if stats.Size != 1 {
		t.Fatalf("capacity-1 registry holds %d entries", stats.Size)
	}
	// Whichever entry is cached must be one of the handed-out entries.
	cached := reg.List()
	if len(cached) != 1 {
		t.Fatalf("List returned %d entries, want 1", len(cached))
	}
	found := false
	for _, e := range entries {
		if e.ID == cached[0].ID {
			found = true
		}
	}
	if !found {
		t.Fatal("cached entry is not one of the entries handed out")
	}
}

// TestRegistryNeverEvictsJustInserted drives the defensive branch directly:
// even with the capacity invariant broken (simulating a future constructor
// bypass), the eviction loop must not remove the entry it just pushed.
func TestRegistryNeverEvictsJustInserted(t *testing.T) {
	reg := NewRegistry(1)
	reg.capacity = 0 // simulate a broken invariant
	prog := testProgram(t, "bypass", 0.75)
	entry, _, err := reg.GetOrCompile(prog, insecureOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := reg.Get(entry.ID); !ok {
		t.Fatal("entry evicted by its own insertion")
	}
}
