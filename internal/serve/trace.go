package serve

import (
	"log/slog"
	"net/http"
	"strconv"
	"time"

	"eva/internal/jobs"
	"eva/internal/obs"
)

// This file is the serve side of the tracing surface: the job-id → trace
// binding that lets async jobs outlive their HTTP exchange, and the two
// read endpoints (GET /traces, GET /jobs/{id}/trace).

// bindJobTrace takes a reference on t and binds it to a job id, so the
// finish hook can close the trace from whichever goroutine ends the job.
// Bind BEFORE submitting: the manager makes a job visible (and finishable)
// before Submit returns.
func (s *Server) bindJobTrace(jobID string, t *obs.Trace) {
	if t == nil {
		return
	}
	t.BindJob(jobID)
	t.Hold()
	s.traceMu.Lock()
	s.jobTraces[jobID] = t
	s.traceMu.Unlock()
}

// takeJobTrace removes and returns the trace bound to a job id, if any.
func (s *Server) takeJobTrace(jobID string) *obs.Trace {
	s.traceMu.Lock()
	t := s.jobTraces[jobID]
	delete(s.jobTraces, jobID)
	s.traceMu.Unlock()
	return t
}

// onJobFinish is the job manager's finish hook: persist the result to the
// durable store (timed as a store_write span on the job's trace), log the
// outcome, and release the trace reference the submission took.
func (s *Server) onJobFinish(snap jobs.Snapshot, result any) {
	t := s.takeJobTrace(snap.ID)
	var sp *obs.Span
	if s.cfg.Store != nil && snap.Status == jobs.StatusDone {
		sp = t.StartSpan("store_write", nil)
	}
	s.persistJobResult(snap, result)
	sp.End()
	if t == nil {
		return
	}
	attrs := []any{
		slog.String(obs.LogJobID, snap.ID),
		slog.String(obs.LogTraceID, t.ID()),
		slog.String("status", string(snap.Status)),
	}
	if !snap.Started.IsZero() {
		attrs = append(attrs,
			slog.Duration("wait", snap.Started.Sub(snap.Created)),
			slog.Duration("run", snap.Finished.Sub(snap.Started)))
	}
	if snap.Error != "" {
		attrs = append(attrs, slog.String("error", snap.Error))
	}
	s.log.Info("job finished", attrs...)
	t.Release()
}

// TracesResponse is the body of GET /traces.
type TracesResponse struct {
	Node   string          `json:"node,omitempty"`
	Count  int             `json:"count"`
	Traces []obs.TraceJSON `json:"traces"`
}

// handleTraces serves recent finished traces, newest first. ?min_ms filters
// to traces at least that long; ?limit caps the count (default 50).
func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	limit := 50
	if v := r.URL.Query().Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			writeError(w, http.StatusBadRequest, "invalid limit %q", v)
			return
		}
		limit = n
	}
	var minDur time.Duration
	if v := r.URL.Query().Get("min_ms"); v != "" {
		ms, err := strconv.ParseFloat(v, 64)
		if err != nil || ms < 0 {
			writeError(w, http.StatusBadRequest, "invalid min_ms %q", v)
			return
		}
		minDur = time.Duration(ms * float64(time.Millisecond))
	}
	traces := s.tracer.Recent(minDur, limit)
	if traces == nil {
		traces = []obs.TraceJSON{}
	}
	writeJSON(w, http.StatusOK, TracesResponse{Node: s.cfg.NodeID, Count: len(traces), Traces: traces})
}

// handleJobTrace serves the span tree of one job's trace, live or finished.
func (s *Server) handleJobTrace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	t, ok := s.tracer.ByJob(id)
	if !ok {
		writeError(w, http.StatusNotFound, "no trace for job %q (traces are kept in a bounded ring; this one may have been evicted)", id)
		return
	}
	writeJSON(w, http.StatusOK, t)
}
