package serve

import (
	"context"
	"net/http"
	"sync"
	"testing"
	"time"
)

// BenchmarkCoalescedExecute measures the amortized cost of the coalesced
// submission path: each iteration fans 8 concurrent callers into
// POST /jobs?coalesce=1, where the coalescer packs them into one shared
// encrypted execution (the program's slot capacity is exactly 8, so every
// batch seals at capacity without waiting out the timer). ns/op is therefore
// the cost of one batched execution serving 8 requests; divide by 8 for the
// amortized per-request figure. Tracked by the CI bench-regression gate.
func BenchmarkCoalescedExecute(b *testing.B) {
	f := newCoalesceFixture(b, Config{
		JobWorkers:       2,
		CoalesceMaxBatch: 8,
		CoalesceMaxWait:  time.Second,
	})
	const callers = 8
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var wg sync.WaitGroup
		for j := 0; j < callers; j++ {
			wg.Add(1)
			go func(j int) {
				defer wg.Done()
				resp, status, err := f.postCoalesced(context.Background(), j)
				if err != nil || status != http.StatusOK {
					b.Errorf("caller %d: status %d, err %v", j, status, err)
					return
				}
				if resp.Result.Error != "" {
					b.Errorf("caller %d: %s", j, resp.Result.Error)
				}
			}(j)
		}
		wg.Wait()
	}
	b.ReportMetric(float64(b.N*callers)/b.Elapsed().Seconds(), "req/s")
}
