package serve

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"eva/internal/compile"
	"eva/internal/core"
)

// Registry is a concurrent, LRU-bounded cache of compiled programs keyed by
// content hash. Compilation of a distinct (program, options) pair happens at
// most once even under concurrent load: the first request compiles while
// later requests for the same key wait for that result (singleflight-style
// deduplication). Entries are evicted least-recently-used once the capacity
// is exceeded; eviction only removes an entry from the cache, never
// invalidates it — execution contexts holding the compiled result keep it
// alive.
type Registry struct {
	capacity int

	mu       sync.Mutex
	byID     map[string]*list.Element // values are *Entry
	lru      *list.List               // front = most recently used
	inflight map[string]*flight

	hits      uint64 // lookups answered from the cache
	joins     uint64 // lookups that waited on an in-flight compilation
	misses    uint64 // lookups that triggered a compilation
	evictions uint64
}

// flight is one in-progress compilation that concurrent requests join.
type flight struct {
	done  chan struct{}
	entry *Entry
	err   error
}

// Entry is one compiled program in the registry.
type Entry struct {
	// ID is the content hash of the canonical serialized program plus the
	// compile options, so identical submissions map to the same entry.
	ID string
	// Source is the canonical serialized form of the input program.
	Source []byte
	// Options are the compile options the entry was built with.
	Options compile.Options
	// Result is the compiled program.
	Result *compile.Result
	// CompileTime is how long the (single) compilation took.
	CompileTime time.Duration
	// CreatedAt is when the compilation finished.
	CreatedAt time.Time

	mu   sync.Mutex
	hits uint64
}

// Hits returns how many registry lookups this entry has served.
func (e *Entry) Hits() uint64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.hits
}

func (e *Entry) recordHit() {
	e.mu.Lock()
	e.hits++
	e.mu.Unlock()
}

// NewRegistry returns a registry holding at most capacity compiled programs.
// The capacity is clamped to at least 1: capacity <= 0 means the default of
// 128, so a zero-value Config can never produce a cache that evicts entries
// the moment they are inserted.
func NewRegistry(capacity int) *Registry {
	if capacity <= 0 {
		capacity = 128
	}
	return &Registry{
		capacity: capacity,
		byID:     map[string]*list.Element{},
		lru:      list.New(),
		inflight: map[string]*flight{},
	}
}

// ProgramID returns the registry key for a program and options: a truncated
// SHA-256 over the canonical serialized program and the options. The
// program's serialized form is deterministic (terms are written in
// topological order), so structurally identical submissions hash alike
// regardless of JSON formatting.
func ProgramID(source []byte, opts compile.Options) (string, error) {
	optJSON, err := json.Marshal(opts)
	if err != nil {
		return "", fmt.Errorf("serve: hashing options: %w", err)
	}
	h := sha256.New()
	h.Write(source)
	h.Write([]byte{0})
	h.Write(optJSON)
	return hex.EncodeToString(h.Sum(nil))[:24], nil
}

// GetOrCompile returns the registry entry for the program, compiling it if —
// and only if — no equivalent program is cached or already being compiled.
// The second return value reports whether the call was served without a new
// compilation (a cache hit or a join on an in-flight one).
func (r *Registry) GetOrCompile(p *core.Program, opts compile.Options) (*Entry, bool, error) {
	source, err := p.SerializeBytes()
	if err != nil {
		return nil, false, fmt.Errorf("serve: canonicalizing program: %w", err)
	}
	id, err := ProgramID(source, opts)
	if err != nil {
		return nil, false, err
	}

	r.mu.Lock()
	if elem, ok := r.byID[id]; ok {
		r.lru.MoveToFront(elem)
		r.hits++
		r.mu.Unlock()
		e := elem.Value.(*Entry)
		e.recordHit()
		return e, true, nil
	}
	if f, ok := r.inflight[id]; ok {
		r.joins++
		r.mu.Unlock()
		<-f.done
		if f.err != nil {
			return nil, false, f.err
		}
		f.entry.recordHit()
		return f.entry, true, nil
	}
	f := &flight{done: make(chan struct{})}
	r.inflight[id] = f
	r.misses++
	r.mu.Unlock()

	start := time.Now()
	res, err := compile.Compile(p, opts)
	if err == nil {
		f.entry = &Entry{
			ID:          id,
			Source:      source,
			Options:     opts,
			Result:      res,
			CompileTime: time.Since(start),
			CreatedAt:   time.Now(),
		}
	} else {
		f.err = fmt.Errorf("serve: compiling %s: %w", id, err)
	}

	r.mu.Lock()
	delete(r.inflight, id)
	if f.err == nil {
		elem := r.lru.PushFront(f.entry)
		r.byID[id] = elem
		for r.lru.Len() > r.capacity {
			oldest := r.lru.Back()
			if oldest == elem {
				// Never evict the entry this call is about to hand out: a
				// /compile response whose program id immediately 404s on
				// /execute is worse than briefly exceeding the capacity.
				// (Unreachable while NewRegistry clamps capacity >= 1, but
				// cheap insurance against a future constructor bypass.)
				break
			}
			r.lru.Remove(oldest)
			delete(r.byID, oldest.Value.(*Entry).ID)
			r.evictions++
		}
	}
	r.mu.Unlock()
	close(f.done)
	return f.entry, false, f.err
}

// Get returns a cached entry by id, refreshing its LRU position and
// counting the lookup against the entry's hit counter.
func (r *Registry) Get(id string) (*Entry, bool) {
	r.mu.Lock()
	elem, ok := r.byID[id]
	if ok {
		r.lru.MoveToFront(elem)
	}
	r.mu.Unlock()
	if !ok {
		return nil, false
	}
	e := elem.Value.(*Entry)
	e.recordHit()
	return e, true
}

// List returns every cached entry, most recently used first.
func (r *Registry) List() []*Entry {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*Entry, 0, r.lru.Len())
	for elem := r.lru.Front(); elem != nil; elem = elem.Next() {
		out = append(out, elem.Value.(*Entry))
	}
	return out
}

// CacheStats is a snapshot of the registry's cache counters.
type CacheStats struct {
	Size      int    `json:"size"`
	Capacity  int    `json:"capacity"`
	Hits      uint64 `json:"hits"`
	Joins     uint64 `json:"joins"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
}

// HitRate returns the fraction of lookups served without a fresh compilation.
func (s CacheStats) HitRate() float64 {
	total := s.Hits + s.Joins + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits+s.Joins) / float64(total)
}

// Stats returns a snapshot of the cache counters.
func (r *Registry) Stats() CacheStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return CacheStats{
		Size:      r.lru.Len(),
		Capacity:  r.capacity,
		Hits:      r.hits,
		Joins:     r.joins,
		Misses:    r.misses,
		Evictions: r.evictions,
	}
}
