package serve

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"time"

	"eva/internal/compile"
	"eva/internal/core"
	"eva/internal/store"
)

// Registry is a concurrent, LRU-bounded cache of compiled programs keyed by
// content hash. Compilation of a distinct (program, options) pair happens at
// most once even under concurrent load: the first request compiles while
// later requests for the same key wait for that result (singleflight-style
// deduplication). Entries are evicted least-recently-used once the capacity
// is exceeded; eviction only removes an entry from the cache, never
// invalidates it — execution contexts holding the compiled result keep it
// alive.
//
// With a durable artifact store attached the registry is a cache in front
// of the store rather than the source of truth: every fresh compilation
// writes the program's canonical source and options through to the store,
// and a lookup that misses the cache reloads the artifact and recompiles it
// (compilation is deterministic, so the rebuilt entry is identical). A
// server restarted onto the same store therefore serves every previously
// compiled program id without clients re-submitting anything.
type Registry struct {
	capacity int
	store    store.Store // nil = cache only, no durability

	mu       sync.Mutex
	byID     map[string]*list.Element // values are *Entry
	lru      *list.List               // front = most recently used
	inflight map[string]*flight

	hits        uint64 // lookups answered from the cache
	joins       uint64 // lookups that waited on an in-flight compilation
	misses      uint64 // lookups that triggered a compilation
	evictions   uint64
	storeLoads  uint64 // cache misses answered by recompiling a stored artifact
	storeMisses uint64 // lookups absent from both the cache and the store
}

// kindProgram is the artifact-store kind under which compiled programs are
// persisted: the canonical serialized source plus the exact compile options,
// keyed by the content-hash program id.
const kindProgram = "program"

// programRecord is the stored form of one compiled program.
type programRecord struct {
	// Source is the canonical serialized program (deterministic JSON).
	Source json.RawMessage `json:"source"`
	// Options is the exact compile.Options the id was derived from.
	Options compile.Options `json:"options"`
	// CreatedAt is when the program was first compiled.
	CreatedAt time.Time `json:"created_at"`
}

// flight is one in-progress compilation that concurrent requests join.
type flight struct {
	done  chan struct{}
	entry *Entry
	err   error
}

// Entry is one compiled program in the registry.
type Entry struct {
	// ID is the content hash of the canonical serialized program plus the
	// compile options, so identical submissions map to the same entry.
	ID string
	// Source is the canonical serialized form of the input program.
	Source []byte
	// Options are the compile options the entry was built with.
	Options compile.Options
	// Result is the compiled program.
	Result *compile.Result
	// CompileTime is how long the (single) compilation took.
	CompileTime time.Duration
	// CreatedAt is when the compilation finished.
	CreatedAt time.Time

	mu   sync.Mutex
	hits uint64
}

// Hits returns how many registry lookups this entry has served.
func (e *Entry) Hits() uint64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.hits
}

func (e *Entry) recordHit() {
	e.mu.Lock()
	e.hits++
	e.mu.Unlock()
}

// NewRegistry returns a registry holding at most capacity compiled programs.
// The capacity is clamped to at least 1: capacity <= 0 means the default of
// 128, so a zero-value Config can never produce a cache that evicts entries
// the moment they are inserted.
func NewRegistry(capacity int) *Registry {
	return NewRegistryWithStore(capacity, nil)
}

// NewRegistryWithStore returns a registry backed by a durable artifact
// store: compilations write through to it and cache misses fall back to it.
// st may be nil for a cache-only registry.
func NewRegistryWithStore(capacity int, st store.Store) *Registry {
	if capacity <= 0 {
		capacity = 128
	}
	return &Registry{
		capacity: capacity,
		store:    st,
		byID:     map[string]*list.Element{},
		lru:      list.New(),
		inflight: map[string]*flight{},
	}
}

// ProgramID returns the registry key for a program and options: a truncated
// SHA-256 over the canonical serialized program and the options. The
// program's serialized form is deterministic (terms are written in
// topological order), so structurally identical submissions hash alike
// regardless of JSON formatting.
func ProgramID(source []byte, opts compile.Options) (string, error) {
	optJSON, err := json.Marshal(opts)
	if err != nil {
		return "", fmt.Errorf("serve: hashing options: %w", err)
	}
	h := sha256.New()
	h.Write(source)
	h.Write([]byte{0})
	h.Write(optJSON)
	return hex.EncodeToString(h.Sum(nil))[:24], nil
}

// GetOrCompile returns the registry entry for the program, compiling it if —
// and only if — no equivalent program is cached or already being compiled.
// The second return value reports whether the call was served without a new
// compilation (a cache hit or a join on an in-flight one).
func (r *Registry) GetOrCompile(p *core.Program, opts compile.Options) (*Entry, bool, error) {
	source, err := p.SerializeBytes()
	if err != nil {
		return nil, false, fmt.Errorf("serve: canonicalizing program: %w", err)
	}
	id, err := ProgramID(source, opts)
	if err != nil {
		return nil, false, err
	}

	r.mu.Lock()
	if elem, ok := r.byID[id]; ok {
		r.lru.MoveToFront(elem)
		r.hits++
		r.mu.Unlock()
		e := elem.Value.(*Entry)
		e.recordHit()
		return e, true, nil
	}
	if f, ok := r.inflight[id]; ok {
		r.joins++
		r.mu.Unlock()
		<-f.done
		if f.err != nil {
			return nil, false, f.err
		}
		f.entry.recordHit()
		return f.entry, true, nil
	}
	f := &flight{done: make(chan struct{})}
	r.inflight[id] = f
	r.misses++
	r.mu.Unlock()

	start := time.Now()
	res, err := compile.Compile(p, opts)
	if err == nil {
		f.entry = &Entry{
			ID:          id,
			Source:      source,
			Options:     opts,
			Result:      res,
			CompileTime: time.Since(start),
			CreatedAt:   time.Now(),
		}
		// Write the artifact through to the durable store before the entry
		// becomes visible: once a client holds the program id, a restart
		// must be able to serve it. Persistence failure fails the compile —
		// handing out an id that would not survive is worse than a 422.
		if perr := r.persist(f.entry); perr != nil {
			f.entry, f.err = nil, perr
		}
	} else {
		f.err = fmt.Errorf("serve: compiling %s: %w", id, err)
	}

	r.mu.Lock()
	delete(r.inflight, id)
	if f.err == nil {
		r.insertLocked(f.entry)
	}
	r.mu.Unlock()
	close(f.done)
	return f.entry, false, f.err
}

// insertLocked adds a compiled entry at the front of the LRU, evicting
// beyond capacity. Caller holds r.mu.
func (r *Registry) insertLocked(e *Entry) {
	if old, ok := r.byID[e.ID]; ok {
		// A concurrent path (store load vs. compile) already inserted the
		// id; keep the existing entry object so contexts pinning it and
		// this call's caller agree, and just refresh recency.
		r.lru.MoveToFront(old)
		return
	}
	elem := r.lru.PushFront(e)
	r.byID[e.ID] = elem
	for r.lru.Len() > r.capacity {
		oldest := r.lru.Back()
		if oldest == elem {
			// Never evict the entry this call is about to hand out: a
			// /compile response whose program id immediately 404s on
			// /execute is worse than briefly exceeding the capacity.
			// (Unreachable while NewRegistry clamps capacity >= 1, but
			// cheap insurance against a future constructor bypass.)
			break
		}
		r.lru.Remove(oldest)
		delete(r.byID, oldest.Value.(*Entry).ID)
		r.evictions++
	}
}

// persist writes a compiled program's source artifact to the store.
func (r *Registry) persist(e *Entry) error {
	if r.store == nil {
		return nil
	}
	rec, err := json.Marshal(programRecord{
		Source:    json.RawMessage(e.Source),
		Options:   e.Options,
		CreatedAt: e.CreatedAt,
	})
	if err != nil {
		return fmt.Errorf("serve: encoding program record %s: %w", e.ID, err)
	}
	if err := r.store.Put(kindProgram, e.ID, rec); err != nil {
		return fmt.Errorf("serve: persisting program %s: %w", e.ID, err)
	}
	return nil
}

// loadFromStore rebuilds a registry entry from the persisted artifact:
// deserialize the canonical source and recompile it with the stored
// options. Compilation is deterministic, so the rebuilt entry matches the
// one the id was originally handed out for.
func (r *Registry) loadFromStore(id string) (*Entry, error) {
	data, err := r.store.Get(kindProgram, id)
	if err != nil {
		return nil, err
	}
	var rec programRecord
	if err := json.Unmarshal(data, &rec); err != nil {
		return nil, fmt.Errorf("serve: decoding program record %s: %w", id, err)
	}
	prog, err := core.DeserializeBytes(rec.Source)
	if err != nil {
		return nil, fmt.Errorf("serve: stored program %s: %w", id, err)
	}
	start := time.Now()
	res, err := compile.Compile(prog, rec.Options)
	if err != nil {
		return nil, fmt.Errorf("serve: recompiling stored program %s: %w", id, err)
	}
	created := rec.CreatedAt
	if created.IsZero() {
		created = time.Now()
	}
	return &Entry{
		ID:          id,
		Source:      []byte(rec.Source),
		Options:     rec.Options,
		Result:      res,
		CompileTime: time.Since(start),
		CreatedAt:   created,
	}, nil
}

// Get returns a cached entry by id, refreshing its LRU position and
// counting the lookup against the entry's hit counter. When the id misses
// the cache but its artifact is in the durable store, the entry is rebuilt
// (recompiled) from the store — concurrent lookups of the same id join the
// one in-flight rebuild.
func (r *Registry) Get(id string) (*Entry, bool) {
	r.mu.Lock()
	if elem, ok := r.byID[id]; ok {
		r.lru.MoveToFront(elem)
		r.mu.Unlock()
		e := elem.Value.(*Entry)
		e.recordHit()
		return e, true
	}
	if r.store == nil {
		r.mu.Unlock()
		return nil, false
	}
	if f, ok := r.inflight[id]; ok {
		r.joins++
		r.mu.Unlock()
		<-f.done
		if f.err != nil {
			return nil, false
		}
		f.entry.recordHit()
		return f.entry, true
	}
	f := &flight{done: make(chan struct{})}
	r.inflight[id] = f
	r.mu.Unlock()

	entry, err := r.loadFromStore(id)
	r.mu.Lock()
	delete(r.inflight, id)
	if err == nil {
		f.entry = entry
		r.storeLoads++
		r.insertLocked(entry)
	} else {
		f.err = err
		if errors.Is(err, store.ErrNotFound) {
			r.storeMisses++
		}
	}
	r.mu.Unlock()
	close(f.done)
	if f.err != nil {
		return nil, false
	}
	f.entry.recordHit()
	return f.entry, true
}

// Source returns the canonical serialized source and compile options for a
// program id, consulting the cache first and falling back to the stored
// artifact without forcing a recompilation. The cluster tier uses it to
// ship programs between nodes.
func (r *Registry) Source(id string) (json.RawMessage, compile.Options, bool) {
	r.mu.Lock()
	if elem, ok := r.byID[id]; ok {
		e := elem.Value.(*Entry)
		r.mu.Unlock()
		return json.RawMessage(e.Source), e.Options, true
	}
	r.mu.Unlock()
	if r.store == nil {
		return nil, compile.Options{}, false
	}
	data, err := r.store.Get(kindProgram, id)
	if err != nil {
		return nil, compile.Options{}, false
	}
	var rec programRecord
	if err := json.Unmarshal(data, &rec); err != nil {
		return nil, compile.Options{}, false
	}
	return rec.Source, rec.Options, true
}

// List returns every cached entry, most recently used first.
func (r *Registry) List() []*Entry {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*Entry, 0, r.lru.Len())
	for elem := r.lru.Front(); elem != nil; elem = elem.Next() {
		out = append(out, elem.Value.(*Entry))
	}
	return out
}

// CacheStats is a snapshot of the registry's cache counters.
type CacheStats struct {
	Size      int    `json:"size"`
	Capacity  int    `json:"capacity"`
	Hits      uint64 `json:"hits"`
	Joins     uint64 `json:"joins"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
	// StoreLoads counts cache misses answered by recompiling a stored
	// artifact; StoreMisses counts ids absent from both cache and store.
	StoreLoads  uint64 `json:"store_loads,omitempty"`
	StoreMisses uint64 `json:"store_misses,omitempty"`
}

// HitRate returns the fraction of lookups served without a fresh compilation.
func (s CacheStats) HitRate() float64 {
	total := s.Hits + s.Joins + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits+s.Joins) / float64(total)
}

// Stats returns a snapshot of the cache counters.
func (r *Registry) Stats() CacheStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return CacheStats{
		Size:        r.lru.Len(),
		Capacity:    r.capacity,
		Hits:        r.hits,
		Joins:       r.joins,
		Misses:      r.misses,
		Evictions:   r.evictions,
		StoreLoads:  r.storeLoads,
		StoreMisses: r.storeMisses,
	}
}
