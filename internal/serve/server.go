// Package serve implements evaserve, an HTTP JSON service exposing the full
// EVA pipeline: POST /compile turns an EVA program — either the serialized
// JSON program format or .eva source text — into a compiled program plus
// encryption parameters (cached in a concurrent LRU registry keyed by
// content hash, with singleflight deduplication so a distinct program
// compiles exactly once under concurrent load; both submission formats of
// the same program share one cache entry), POST /contexts
// installs evaluation keys — either client-generated, the paper's deployment
// model, or server-generated for the trusted demo mode — and POST
// /execute/{id} runs batches of encrypted input sets through the parallel
// executor, fanning the batches out across the runner's worker pool.
// GET /programs, GET /healthz and GET /metrics expose the registry contents,
// liveness, and request/cache/per-opcode-latency metrics.
//
// Long-running work goes through the asynchronous jobs API (jobs.go): POST
// /jobs enqueues an execution behind a bounded worker pool with
// memory-budget admission control, GET /jobs/{id} polls, GET
// /jobs/{id}/events streams progress over SSE, GET /jobs/{id}/result
// delivers results exactly once with TTL eviction, and DELETE /jobs/{id}
// cancels.
package serve

import (
	"container/list"
	"context"
	"crypto/rand"
	"encoding/base64"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"time"

	"eva/internal/analysis"
	"eva/internal/ckks"
	"eva/internal/coalesce"
	"eva/internal/compile"
	"eva/internal/core"
	"eva/internal/execute"
	"eva/internal/handle"
	"eva/internal/jobs"
	"eva/internal/lang"
	"eva/internal/obs"
	"eva/internal/profile"
	"eva/internal/rewrite"
	"eva/internal/ring"
	"eva/internal/store"
)

// Config configures a Server.
type Config struct {
	// CacheCapacity bounds the compiled-program registry (0 = 128).
	CacheCapacity int
	// DefaultWorkers is the executor worker count when a request does not set
	// one (0 = GOMAXPROCS).
	DefaultWorkers int
	// MaxConcurrentBatches bounds how many batches of one /execute request
	// run simultaneously (0 = GOMAXPROCS). Each batch additionally
	// parallelizes internally across the executor's workers.
	MaxConcurrentBatches int
	// MaxBodyBytes caps the size of any request body (0 = 256 MiB — key
	// material for large rings runs to tens of megabytes, so the default is
	// generous). Oversized requests are rejected mid-read.
	MaxBodyBytes int64
	// MaxContexts bounds how many execution contexts (evaluation-key sets)
	// the server retains; the least recently used context is dropped when
	// the bound is exceeded (0 = 256). Contexts hold key material, which is
	// far heavier than compiled programs.
	MaxContexts int
	// AllowServerKeygen enables the trusted demo mode: POST /contexts with a
	// "keygen" clause makes the server generate and hold all key material,
	// including the secret key, so clients can submit plaintext values and
	// read back decrypted results. This breaks the paper's threat model (the
	// server can decrypt) and exists for demos and load tests only.
	AllowServerKeygen bool
	// RingWorkers sizes the process-wide RNS-limb worker pool that the ring
	// layer uses to parallelize NTTs and key-switching inner products
	// (0 = GOMAXPROCS). It is process-wide — the last server configured wins —
	// because the pool bounds total ring-level parallelism, not per-request
	// parallelism.
	RingWorkers int
	// DisableHoisting turns off hoisted rotation batching for every execution
	// this server runs: shared-source rotation groups then evaluate as
	// independent rotations, each paying its own decomposition. A debugging
	// and benchmarking escape hatch; hoisting is bit-exact, so there is no
	// accuracy reason to disable it.
	DisableHoisting bool

	// JobWorkers is how many async jobs run concurrently (0 = 2); each job
	// additionally parallelizes internally across the executor's workers.
	JobWorkers int
	// JobQueueDepth bounds the async job queue (0 = 64); submissions beyond
	// it are shed with 429.
	JobQueueDepth int
	// JobMemoryBudgetBytes bounds the estimated resident ciphertext
	// footprint of all queued and running jobs (0 = 8 GiB); submissions that
	// would exceed it are shed with 429.
	JobMemoryBudgetBytes int64
	// JobResultTTL is how long finished jobs and unfetched results are
	// retained (0 = 2 minutes).
	JobResultTTL time.Duration

	// CoalesceMaxBatch caps how many callers POST /jobs?coalesce=1 packs
	// into one shared execution (0 = 64); each batch is additionally bounded
	// by its program's slot capacity VecSize/width.
	CoalesceMaxBatch int
	// CoalesceMaxWait bounds how long the first coalescing caller waits for
	// co-batched company before its batch runs anyway (0 = 25ms).
	CoalesceMaxWait time.Duration

	// Store is the durable artifact store. When set, compiled programs,
	// installed contexts (their evaluation-key bundles in the ckks wire
	// format), finished job results, and ciphertext handles are persisted
	// through it, the LRU registry and context table become caches in front
	// of it, and a server restarted onto the same store serves every
	// previously issued program, context, unfetched result id, and handle.
	// Nil disables durability (the pre-store, in-memory-only behavior);
	// ciphertext handles then live in a process-local memory store.
	Store store.Store
	// ResultRetention bounds how long a persisted, unfetched job result is
	// kept in the store before a background sweep reclaims it (0 = 24h;
	// negative = keep forever). This is deliberately much longer than
	// JobResultTTL — the in-memory TTL bounds the job table, the store
	// retention bounds the disk — but still finite, so abandoned results
	// cannot grow the store without bound.
	ResultRetention time.Duration
	// NodeID labels this server in /healthz, /programs, and /metrics so
	// responses are attributable in a cluster. Empty outside clusters.
	NodeID string
	// HandleQuotaBytes bounds the resident bytes of stored ciphertext
	// handles (0 = 4 GiB; negative = unbounded). PUT /handles and jobs with
	// "output": "handle" fail with 507 when the quota is reached.
	HandleQuotaBytes int64
	// HandleRetention bounds how long a stored ciphertext handle is kept
	// before the background sweep reclaims it (0 = 24h; negative = keep
	// forever).
	HandleRetention time.Duration
	// AllowContextTransfer enables the context replication surface used by
	// the cluster tier: GET /contexts/{id}/bundle exports an installed
	// context's key bundle and POST /contexts accepts a "bundle" clause
	// that installs one verbatim. Bundles of demo-mode contexts include the
	// secret key, so this must stay off unless every client of this server
	// is a trusted peer node.
	AllowContextTransfer bool

	// Logger receives structured records (job lifecycle, slow traces) with
	// trace-id/node/job-id attributes. Nil discards.
	Logger *slog.Logger
	// TraceCapacity bounds the finished-trace ring buffer behind GET
	// /traces and GET /jobs/{id}/trace (0 = 256).
	TraceCapacity int
	// SlowTraceThreshold is the end-to-end duration at or above which a
	// finished trace is logged with its per-phase breakdown (0 = disabled).
	SlowTraceThreshold time.Duration
	// MaxActiveTraces bounds the tracer's active-trace table (0 = 4096).
	MaxActiveTraces int

	// ProfileSampleRate is the instruction profiler's sampling stride: every
	// execution records one in ProfileSampleRate instructions into the
	// flight recorder behind GET /profile and the eva_profile_* families
	// (0 = every 16th, 1 = every instruction, < 0 = profiling off). Sampled
	// records are compared against the cost model and the compiler's
	// scale/level expectations; divergence surfaces as drift events. With a
	// Store, per-program profiles persist under kind "profile" and a fitted
	// calibration (kind "calibration") is loaded at startup.
	ProfileSampleRate int
}

// Server is the evaserve HTTP service. Create one with NewServer and mount
// Handler on an http.Server.
type Server struct {
	cfg       Config
	registry  *Registry
	metrics   *Metrics
	jobs      *jobs.Manager
	coalescer *coalesce.Coalescer
	mux       *http.ServeMux
	start     time.Time
	tracer    *obs.Tracer
	profiles  *profile.Collector
	log       *slog.Logger

	// traceMu guards jobTraces, the job-id → held trace binding that lets
	// the finish hook close a job's trace on whichever goroutine ends it.
	traceMu   sync.Mutex
	jobTraces map[string]*obs.Trace

	ctxMu    sync.Mutex
	contexts map[string]*list.Element // values are *contextEntry
	ctxLRU   *list.List               // front = most recently used

	// resultMu serializes the store-fallback result fetch (get+delete must
	// be atomic to honor fetch-once); the in-memory path is atomic inside
	// the jobs manager.
	resultMu sync.Mutex

	// handles is the content-addressed ciphertext handle registry (backed
	// by cfg.Store, or a process-local memory store without durability).
	// handleFetch, when set (by the cluster tier), resolves handle ids that
	// are not stored locally from peer nodes.
	handles     *handle.Registry
	handleFetch func(ctx context.Context, id string) (*handle.Record, error)

	janitorStop chan struct{}
	janitorWG   sync.WaitGroup
	closeOnce   sync.Once
}

// contextEntry is one installed execution context: the CKKS runtime objects
// for a compiled program plus, in demo mode only, the full key material. It
// pins the registry entry it was created against, so a context keeps working
// even after the compiled program is evicted from the LRU cache.
type contextEntry struct {
	ID        string
	Entry     *Entry
	Ctx       *execute.Context
	Keys      *execute.KeyMaterial // nil unless created by server-side keygen
	CreatedAt time.Time
	// Bundle is the portable key bundle, retained only when the server
	// allows context transfer (the cluster replication surface).
	Bundle *ContextBundle
}

// NewServer builds an evaserve service.
func NewServer(cfg Config) *Server {
	if cfg.NodeID == "" {
		// Populate the node label even outside clusters, so /healthz,
		// /metrics, and traces are attributable in single-node mode too.
		if host, err := os.Hostname(); err == nil && host != "" {
			cfg.NodeID = host
		} else {
			cfg.NodeID = "standalone"
		}
	}
	if cfg.Logger == nil {
		cfg.Logger = obs.NopLogger()
	}
	if cfg.RingWorkers > 0 {
		ring.SetWorkers(cfg.RingWorkers)
	}
	s := &Server{
		cfg:       cfg,
		registry:  NewRegistryWithStore(cfg.CacheCapacity, cfg.Store),
		metrics:   NewMetrics(),
		mux:       http.NewServeMux(),
		start:     time.Now(),
		contexts:  map[string]*list.Element{},
		ctxLRU:    list.New(),
		log:       cfg.Logger.With(slog.String(obs.LogNodeID, cfg.NodeID)),
		jobTraces: map[string]*obs.Trace{},
	}
	s.tracer = obs.NewTracer(obs.TracerConfig{
		Node:          cfg.NodeID,
		Capacity:      cfg.TraceCapacity,
		SlowThreshold: cfg.SlowTraceThreshold,
		MaxActive:     cfg.MaxActiveTraces,
		Logger:        s.log,
	})
	s.profiles = profile.NewCollector(profile.Config{
		SampleRate: cfg.ProfileSampleRate,
		Store:      cfg.Store,
		Node:       cfg.NodeID,
		Logger:     s.log,
	})
	if cfg.Store != nil {
		// A previously fitted calibration makes drift checks and /compile
		// predictions run on measured numbers from the first request.
		if cal, err := profile.LoadCalibration(cfg.Store); err != nil {
			s.log.Warn("loading calibration", slog.String("error", err.Error()))
		} else if cal != nil {
			s.profiles.SetCalibration(cal)
		}
	}
	s.jobs = jobs.NewManager(jobs.Config{
		Workers:           cfg.JobWorkers,
		QueueDepth:        cfg.JobQueueDepth,
		MemoryBudgetBytes: cfg.JobMemoryBudgetBytes,
		ResultTTL:         cfg.JobResultTTL,
		// Persist finished results before they become visible (a client that
		// observes "done" can rely on the result surviving a restart, and
		// the fetch-once contract is served from the store after the TTL
		// evicts the in-memory copy), then close the job's trace.
		OnFinish: s.onJobFinish,
		Logger:   s.log,
	})
	s.coalescer = coalesce.New(coalesce.Config{
		MaxBatch: cfg.CoalesceMaxBatch,
		MaxWait:  cfg.CoalesceMaxWait,
		Run:      s.runCoalescedBatch,
		Logger:   s.log,
	})
	handleStore := cfg.Store
	if handleStore == nil {
		// Handles still work without durability; they just die with the
		// process, like everything else on a store-less server.
		handleStore = store.NewMemory()
	}
	s.handles = handle.NewRegistry(handle.Config{
		Store:      handleStore,
		QuotaBytes: cfg.HandleQuotaBytes,
		Retention:  cfg.HandleRetention,
	})
	s.mux.HandleFunc("POST /compile", s.route("compile", s.handleCompile))
	s.mux.HandleFunc("GET /programs", s.route("programs", s.handlePrograms))
	s.mux.HandleFunc("GET /programs/{id}", s.route("program", s.handleProgram))
	s.mux.HandleFunc("GET /programs/{id}/source", s.route("program_source", s.handleProgramSource))
	s.mux.HandleFunc("POST /contexts", s.route("contexts", s.handleContexts))
	s.mux.HandleFunc("GET /contexts/{id}/bundle", s.route("context_bundle", s.handleContextBundle))
	s.mux.HandleFunc("POST /execute/{id}", s.route("execute", s.handleExecute))
	s.mux.HandleFunc("POST /jobs", s.route("jobs_submit", s.handleJobSubmit))
	s.mux.HandleFunc("GET /jobs/{id}", s.route("jobs_status", s.handleJobStatus))
	s.mux.HandleFunc("GET /jobs/{id}/events", s.route("jobs_events", s.handleJobEvents))
	s.mux.HandleFunc("GET /jobs/{id}/result", s.route("jobs_result", s.handleJobResult))
	s.mux.HandleFunc("DELETE /jobs/{id}", s.route("jobs_cancel", s.handleJobCancel))
	s.mux.HandleFunc("GET /jobs/{id}/trace", s.route("jobs_trace", s.handleJobTrace))
	s.mux.HandleFunc("GET /traces", s.route("traces", s.handleTraces))
	s.mux.HandleFunc("PUT /handles", s.route("handles_put", s.handleHandlePut))
	s.mux.HandleFunc("GET /handles", s.route("handles_list", s.handleHandleList))
	s.mux.HandleFunc("GET /handles/{id}", s.route("handles_get", s.handleHandleGet))
	s.mux.HandleFunc("DELETE /handles/{id}", s.route("handles_delete", s.handleHandleDelete))
	s.mux.HandleFunc("POST /pipelines", s.route("pipelines", s.handlePipelineSubmit))
	s.mux.HandleFunc("GET /healthz", s.route("healthz", s.handleHealthz))
	s.mux.HandleFunc("GET /metrics", s.route("metrics", s.handleMetrics))
	s.mux.HandleFunc("GET /profile", s.route("profile", s.handleProfile))
	if (cfg.Store != nil && cfg.ResultRetention >= 0) || s.handles.Retention() >= 0 {
		s.janitorStop = make(chan struct{})
		s.janitorWG.Add(1)
		go s.resultJanitor()
	}
	return s
}

// Handles exposes the ciphertext handle registry (for tests and tooling).
func (s *Server) Handles() *handle.Registry { return s.handles }

// SetHandleFetcher installs the remote-resolution hook the cluster tier uses:
// when a handle id is not stored locally, the fetcher retrieves its record
// from a peer node and the server caches it locally. Must be set before the
// server starts taking traffic.
func (s *Server) SetHandleFetcher(f func(ctx context.Context, id string) (*handle.Record, error)) {
	s.handleFetch = f
}

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Jobs exposes the async job manager (for tests and tooling).
func (s *Server) Jobs() *jobs.Manager { return s.jobs }

// Coalescer exposes the request coalescer (for tests and tooling).
func (s *Server) Coalescer() *coalesce.Coalescer { return s.coalescer }

// Close stops the async job subsystem: running jobs are cancelled and the
// worker pool drains. The HTTP handlers remain usable for synchronous
// requests, but further job submissions fail.
func (s *Server) Close() {
	s.closeOnce.Do(func() {
		if s.janitorStop != nil {
			close(s.janitorStop)
		}
	})
	s.coalescer.Close()
	s.jobs.Close()
	s.janitorWG.Wait()
	// Flush after the job subsystem stops so every finished run's samples
	// are in the persisted profiles.
	s.profiles.Flush()
}

// Drain gracefully stops the async job subsystem: new submissions are
// rejected immediately while queued and running jobs get until ctx expires
// to finish (their results are persisted on the way out when a store is
// configured); the remainder is then cancelled. The HTTP handlers remain
// usable for synchronous requests.
func (s *Server) Drain(ctx context.Context) error { return s.jobs.Drain(ctx) }

// Registry exposes the program registry (for tests and tooling).
func (s *Server) Registry() *Registry { return s.registry }

// Store exposes the durable artifact store (nil when durability is off).
func (s *Server) Store() store.Store { return s.cfg.Store }

// NodeID returns the node label (defaulted to the hostname when not
// configured, so reports are attributable even in single-node mode).
func (s *Server) NodeID() string { return s.cfg.NodeID }

// Tracer exposes the request tracer (the cluster tier records its routing
// spans through it; tests inspect finished traces).
func (s *Server) Tracer() *obs.Tracer { return s.tracer }

// ProgramSource returns the canonical serialized source and exact compile
// options for a program id, from the cache or the durable store. The
// cluster tier uses it to ship programs to peer nodes.
func (s *Server) ProgramSource(id string) (json.RawMessage, compile.Options, bool) {
	return s.registry.Source(id)
}

// InstallProgram compiles (or looks up) a program from its canonical
// serialized source and exact options, returning the program id. It is the
// programmatic twin of POST /compile for node-to-node transfer.
func (s *Server) InstallProgram(source json.RawMessage, opts compile.Options) (string, error) {
	prog, err := core.DeserializeBytes(source)
	if err != nil {
		return "", fmt.Errorf("serve: installing program: %w", err)
	}
	entry, _, err := s.registry.GetOrCompile(prog, opts)
	if err != nil {
		return "", err
	}
	return entry.ID, nil
}

// route wraps every handler: it adopts the request's trace (or mints one at
// ingress), echoes the id on the response, records a root span for the
// route, and folds the response's status class and latency into the
// per-route metrics.
func (s *Server) route(name string, h http.HandlerFunc) http.HandlerFunc {
	maxBody := s.cfg.MaxBodyBytes
	if maxBody <= 0 {
		maxBody = 256 << 20
	}
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		t := s.tracer.Start(r.Header.Get(obs.TraceHeader))
		defer t.Release()
		w.Header().Set(obs.TraceHeader, t.ID())
		sp := t.StartSpan("route:"+name, nil)
		if from := r.Header.Get("X-Eva-Forwarded"); from != "" {
			sp.SetAttr("forwarded_from", from)
		}
		defer sp.End()
		r = r.WithContext(obs.ContextWithSpan(obs.ContextWithTrace(r.Context(), t), sp))
		if r.Body != nil {
			r.Body = http.MaxBytesReader(w, r.Body, maxBody)
		}
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		h(sw, r)
		s.metrics.RecordRequest(name, sw.status, time.Since(start))
	}
}

// statusWriter captures the response status for per-route metrics. It
// forwards Flush so SSE streaming (GET /jobs/{id}/events) keeps working
// through the wrapper.
type statusWriter struct {
	http.ResponseWriter
	status int
	wrote  bool
}

func (sw *statusWriter) WriteHeader(status int) {
	if !sw.wrote {
		sw.status = status
		sw.wrote = true
	}
	sw.ResponseWriter.WriteHeader(status)
}

func (sw *statusWriter) Write(b []byte) (int, error) {
	sw.wrote = true
	return sw.ResponseWriter.Write(b)
}

func (sw *statusWriter) Flush() {
	if f, ok := sw.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// maxBatchesPerRequest caps how many input sets one /execute request may
// carry; each batch gets a goroutine parked on the fan-out semaphore, so the
// count must be bounded.
const maxBatchesPerRequest = 4096

// SourceError is one positioned diagnostic from compiling the "source" form
// of a program: where in the source text the problem is, what went wrong,
// and the offending line.
type SourceError struct {
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Message string `json:"message"`
	Snippet string `json:"snippet,omitempty"`
}

// apiError is the uniform error body. SourceErrors is populated only when a
// "source" program fails to parse or check; Incompatibilities only when a
// pipeline or handle-input submission fails the level/scale/width checker.
type apiError struct {
	Error             string        `json:"error"`
	SourceErrors      []SourceError `json:"source_errors,omitempty"`
	Incompatibilities []Incompat    `json:"incompatibilities,omitempty"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, apiError{Error: fmt.Sprintf(format, args...)})
}

// writeSourceError renders a lang diagnostic list as a structured error so
// clients can point at the offending line and column.
func writeSourceError(w http.ResponseWriter, err error) {
	body := apiError{Error: fmt.Sprintf("invalid source: %v", err)}
	if list, ok := lang.AsErrorList(err); ok {
		body.Error = fmt.Sprintf("invalid source: %d error(s)", len(list))
		for _, e := range list {
			body.SourceErrors = append(body.SourceErrors, SourceError{
				Line: e.Pos.Line, Col: e.Pos.Col, Message: e.Msg, Snippet: e.Snippet,
			})
		}
	}
	writeJSON(w, http.StatusBadRequest, body)
}

// --- /compile ---

// CompileOptionsJSON is the wire form of compile.Options. Zero values mean
// the paper's defaults; Rescale and ModSwitch take the strategy names also
// accepted by the evac command line.
type CompileOptionsJSON struct {
	MaxRescaleLog float64 `json:"max_rescale_log,omitempty"`
	WaterlineLog  float64 `json:"waterline_log,omitempty"`
	Rescale       string  `json:"rescale,omitempty"`
	ModSwitch     string  `json:"mod_switch,omitempty"`
	MinLogN       int     `json:"min_log_n,omitempty"`
	AllowInsecure bool    `json:"allow_insecure,omitempty"`
	Optimize      bool    `json:"optimize,omitempty"`
	// ExtraLevels adds level headroom for pipeline chaining; see
	// compile.Options.ExtraLevels.
	ExtraLevels int `json:"extra_levels,omitempty"`
}

func (o *CompileOptionsJSON) toOptions() (compile.Options, error) {
	opts := compile.DefaultOptions()
	if o == nil {
		return opts, nil
	}
	if o.MaxRescaleLog > 0 {
		opts.MaxRescaleLog = o.MaxRescaleLog
	}
	opts.WaterlineLog = o.WaterlineLog
	opts.MinLogN = o.MinLogN
	opts.AllowInsecure = o.AllowInsecure
	opts.Optimize = o.Optimize
	opts.ExtraLevels = o.ExtraLevels
	var err error
	if o.Rescale != "" {
		if opts.Rescale, err = rewrite.ParseRescaleStrategy(o.Rescale); err != nil {
			return opts, err
		}
	}
	if o.ModSwitch != "" {
		if opts.ModSwitch, err = rewrite.ParseModSwitchStrategy(o.ModSwitch); err != nil {
			return opts, err
		}
	}
	return opts, nil
}

// OptionsJSON converts resolved compile options back to their wire form,
// such that round-tripping through CompileOptionsJSON.toOptions yields the
// identical options struct (and therefore the identical program id). The
// cluster tier relies on this to re-submit a program to a peer node through
// the ordinary /compile endpoint.
func OptionsJSON(opts compile.Options) CompileOptionsJSON {
	return CompileOptionsJSON{
		MaxRescaleLog: opts.MaxRescaleLog,
		WaterlineLog:  opts.WaterlineLog,
		Rescale:       opts.Rescale.String(),
		ModSwitch:     opts.ModSwitch.String(),
		MinLogN:       opts.MinLogN,
		AllowInsecure: opts.AllowInsecure,
		Optimize:      opts.Optimize,
		ExtraLevels:   opts.ExtraLevels,
	}
}

// CompileRequest is the body of POST /compile: a program in exactly one of
// two forms — Program, the JSON program format (the paper's Figure 1
// schema), or Source, textual .eva source — plus optional compile options.
// Both forms lower to the same IR and are cached under the same content
// hash, so submitting a program as source and then as JSON (or vice versa)
// compiles it once.
type CompileRequest struct {
	Program json.RawMessage     `json:"program,omitempty"`
	Source  string              `json:"source,omitempty"`
	Options *CompileOptionsJSON `json:"options,omitempty"`
}

// ParamsJSON is the wire form of the selected encryption parameters — enough
// for a client to reconstruct ckks.ParametersLiteral and generate matching
// keys locally.
type ParamsJSON struct {
	LogN          int     `json:"log_n"`
	LogQi         []int   `json:"log_qi"`
	LogP          int     `json:"log_p"`
	Scale         float64 `json:"scale"`
	AllowInsecure bool    `json:"allow_insecure,omitempty"`
}

// Literal converts the wire form back to a parameters literal.
func (p ParamsJSON) Literal() ckks.ParametersLiteral {
	return ckks.ParametersLiteral{
		LogN:          p.LogN,
		LogQi:         p.LogQi,
		LogP:          p.LogP,
		Scale:         p.Scale,
		AllowInsecure: p.AllowInsecure,
	}
}

// CompileResponse is the body returned by POST /compile.
type CompileResponse struct {
	ID            string             `json:"id"`
	Cached        bool               `json:"cached"`
	CompileMillis float64            `json:"compile_ms"`
	Summary       string             `json:"summary"`
	Params        ParamsJSON         `json:"params"`
	InputScales   map[string]float64 `json:"input_scales"`
	RotationSteps []int              `json:"rotation_steps"`
	Instructions  int                `json:"instructions"`
	// PredictedMillis is the calibrated sequential-execution estimate for one
	// batch (cost-model units priced by the fitted per-opcode coefficients).
	// Present only when the server has a calibration installed.
	PredictedMillis float64 `json:"predicted_ms,omitempty"`
}

// CanonicalCompile resolves a compile request — either submission form — to
// the registry id it would compile under, without compiling: the program is
// parsed, canonically serialized, and hashed together with the resolved
// options. The cluster router uses it to place a program on the hash ring
// before deciding which node should compile it.
func CanonicalCompile(req CompileRequest) (string, error) {
	if (len(req.Program) == 0) == (req.Source == "") {
		return "", fmt.Errorf("exactly one of \"program\" or \"source\" is required")
	}
	var prog *core.Program
	var err error
	if req.Source != "" {
		if prog, err = lang.ParseProgram(req.Source); err != nil {
			return "", err
		}
	} else if prog, err = core.DeserializeBytes(req.Program); err != nil {
		return "", fmt.Errorf("invalid program: %w", err)
	}
	opts, err := req.Options.toOptions()
	if err != nil {
		return "", fmt.Errorf("invalid options: %w", err)
	}
	source, err := prog.SerializeBytes()
	if err != nil {
		return "", err
	}
	return ProgramID(source, opts)
}

func (s *Server) handleCompile(w http.ResponseWriter, r *http.Request) {
	var req CompileRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	if (len(req.Program) == 0) == (req.Source == "") {
		writeError(w, http.StatusBadRequest, "exactly one of \"program\" or \"source\" is required")
		return
	}
	var prog *core.Program
	var err error
	if req.Source != "" {
		if prog, err = lang.ParseProgram(req.Source); err != nil {
			writeSourceError(w, err)
			return
		}
	} else if prog, err = core.DeserializeBytes(req.Program); err != nil {
		writeError(w, http.StatusBadRequest, "invalid program: %v", err)
		return
	}
	opts, err := req.Options.toOptions()
	if err != nil {
		writeError(w, http.StatusBadRequest, "invalid options: %v", err)
		return
	}
	entry, cached, err := s.registry.GetOrCompile(prog, opts)
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	if !cached {
		model := analysis.CostModel{LogN: entry.Result.LogN, TotalLevels: len(entry.Result.Plan.BitSizes)}
		s.metrics.RecordPredictedCost(model.EstimateCost(entry.Result.Program).ByOp)
	}
	writeJSON(w, http.StatusOK, s.compileResponse(entry, cached))
}

func (s *Server) compileResponse(entry *Entry, cached bool) CompileResponse {
	res := entry.Result
	lit := res.ParametersLiteral()
	var predictedMs float64
	if cal := s.profiles.Calibration(); cal != nil {
		model := analysis.CostModel{LogN: res.LogN, TotalLevels: len(res.Plan.BitSizes)}
		var ns float64
		for op, units := range model.EstimateCost(res.Program).ByOp {
			ns += cal.PredictNs(op, units)
		}
		predictedMs = ns / 1e6
	}
	return CompileResponse{
		PredictedMillis: predictedMs,
		ID:              entry.ID,
		Cached:          cached,
		CompileMillis:   float64(entry.CompileTime) / float64(time.Millisecond),
		Summary:         res.Summary(),
		Params: ParamsJSON{
			LogN:          lit.LogN,
			LogQi:         lit.LogQi,
			LogP:          lit.LogP,
			Scale:         lit.Scale,
			AllowInsecure: lit.AllowInsecure,
		},
		InputScales:   res.InputScales(),
		RotationSteps: res.RotationSteps,
		Instructions:  res.CompiledStats.Terms,
	}
}

// --- /programs ---

// ProgramInfo is one row of GET /programs.
type ProgramInfo struct {
	ID           string  `json:"id"`
	Name         string  `json:"name"`
	VecSize      int     `json:"vec_size"`
	Instructions int     `json:"instructions"`
	Hits         uint64  `json:"hits"`
	CompiledAt   string  `json:"compiled_at"`
	CompileMS    float64 `json:"compile_ms"`
}

func (s *Server) handlePrograms(w http.ResponseWriter, r *http.Request) {
	entries := s.registry.List()
	out := make([]ProgramInfo, 0, len(entries))
	for _, e := range entries {
		out = append(out, programInfo(e))
	}
	writeJSON(w, http.StatusOK, out)
}

func programInfo(e *Entry) ProgramInfo {
	return ProgramInfo{
		ID:           e.ID,
		Name:         e.Result.Program.Name,
		VecSize:      e.Result.Program.VecSize,
		Instructions: e.Result.CompiledStats.Terms,
		Hits:         e.Hits(),
		CompiledAt:   e.CreatedAt.UTC().Format(time.RFC3339),
		CompileMS:    float64(e.CompileTime) / float64(time.Millisecond),
	}
}

func (s *Server) handleProgram(w http.ResponseWriter, r *http.Request) {
	entry, ok := s.registry.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown program %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, struct {
		ProgramInfo
		Compile CompileResponse `json:"compile"`
	}{programInfo(entry), s.compileResponse(entry, true)})
}

// --- /contexts ---

// EvalKeysJSON carries client-generated public evaluation keys: the
// relinearization key, plus rotation keys either as one whole
// RotationKeySet payload (RotationSet) or as one key per Galois element
// (Rotations: decimal Galois elements mapping to SwitchingKey payloads).
// All payloads are base64 of the ckks binary wire format.
type EvalKeysJSON struct {
	Relin       string            `json:"relin,omitempty"`
	RotationSet string            `json:"rotation_set,omitempty"`
	Rotations   map[string]string `json:"rotations,omitempty"`
}

// KeygenJSON asks the server to generate key material itself (demo mode).
type KeygenJSON struct {
	// Seed makes key generation deterministic when nonzero (tests only).
	Seed uint64 `json:"seed,omitempty"`
}

// ContextRequest is the body of POST /contexts. Exactly one of Keys (the
// paper's client-keygen model), Keygen (trusted demo mode), or Bundle (a
// portable bundle exported by a peer node; requires AllowContextTransfer)
// must be set. ContextID optionally pins the new context's id — the cluster
// router assigns ids up front so a context's placement on the hash ring is
// known before it exists; when the id is already installed for the same
// program, the request is idempotent and returns the existing context.
type ContextRequest struct {
	ProgramID string         `json:"program_id"`
	ContextID string         `json:"context_id,omitempty"`
	Keys      *EvalKeysJSON  `json:"keys,omitempty"`
	Keygen    *KeygenJSON    `json:"keygen,omitempty"`
	Bundle    *ContextBundle `json:"bundle,omitempty"`
}

// ContextResponse is the body returned by POST /contexts.
type ContextResponse struct {
	ContextID    string  `json:"context_id"`
	ProgramID    string  `json:"program_id"`
	KeygenMillis float64 `json:"keygen_ms,omitempty"`
}

// validContextID restricts caller-assigned context ids to path-safe tokens
// that cannot collide with store internals (a ".tmp" suffix would be swept
// as crash residue at the next reopen) or cluster id syntax.
func validContextID(id string) bool {
	if id == "" || len(id) > 64 || id[0] == '.' || strings.HasSuffix(id, ".tmp") {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		case c == '-' || c == '_' || c == '.':
		default:
			return false
		}
	}
	return true
}

func (s *Server) handleContexts(w http.ResponseWriter, r *http.Request) {
	var req ContextRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	modes := 0
	for _, set := range []bool{req.Keys != nil, req.Keygen != nil, req.Bundle != nil} {
		if set {
			modes++
		}
	}
	if modes != 1 {
		writeError(w, http.StatusBadRequest, "exactly one of \"keys\", \"keygen\", or \"bundle\" is required")
		return
	}
	if req.ProgramID == "" && req.Bundle != nil {
		req.ProgramID = req.Bundle.ProgramID
	}
	if req.ContextID != "" {
		if !validContextID(req.ContextID) {
			writeError(w, http.StatusBadRequest, "invalid context id %q", req.ContextID)
			return
		}
		// Idempotent replay: an id already installed for the same program
		// is returned as-is, so cluster replication and retries are safe.
		if existing, ok := s.lookupContext(req.ContextID); ok {
			if existing.Entry.ID != req.ProgramID {
				writeError(w, http.StatusConflict, "context %q already belongs to program %q", req.ContextID, existing.Entry.ID)
				return
			}
			writeJSON(w, http.StatusOK, ContextResponse{ContextID: existing.ID, ProgramID: existing.Entry.ID})
			return
		}
	}
	entry, ok := s.registry.Get(req.ProgramID)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown program %q; POST /compile first", req.ProgramID)
		return
	}

	ce := &contextEntry{Entry: entry, CreatedAt: time.Now()}
	var rlk *ckks.RelinearizationKey
	var rtk *ckks.RotationKeySet
	switch {
	case req.Bundle != nil:
		if !s.cfg.AllowContextTransfer {
			writeError(w, http.StatusForbidden, "context transfer is disabled on this server")
			return
		}
		if req.ContextID == "" {
			writeError(w, http.StatusBadRequest, "a bundle install requires \"context_id\"")
			return
		}
		if req.Bundle.ProgramID != "" && req.Bundle.ProgramID != req.ProgramID {
			writeError(w, http.StatusBadRequest, "bundle belongs to program %q, not %q", req.Bundle.ProgramID, req.ProgramID)
			return
		}
		req.Bundle.ProgramID = req.ProgramID
		restored, err := s.restoreContext(req.ContextID, req.Bundle)
		if err != nil {
			writeError(w, http.StatusUnprocessableEntity, "%v", err)
			return
		}
		ce = restored
	case req.Keygen != nil:
		if !s.cfg.AllowServerKeygen {
			writeError(w, http.StatusForbidden, "server-side keygen is disabled; supply client-generated evaluation keys")
			return
		}
		var prng *ckks.PRNG
		if req.Keygen.Seed != 0 {
			prng = ckks.NewTestPRNG(req.Keygen.Seed)
		}
		ctx, keys, err := execute.NewContext(entry.Result, prng)
		if err != nil {
			writeError(w, http.StatusUnprocessableEntity, "key generation: %v", err)
			return
		}
		ce.Ctx, ce.Keys = ctx, keys
		rlk, rtk = keys.Relin, keys.Rot
	default:
		var err error
		rlk, rtk, err = decodeEvalKeys(req.Keys)
		if err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
		ctx, err := execute.NewEvaluationContext(entry.Result, rlk, rtk)
		if err != nil {
			writeError(w, http.StatusUnprocessableEntity, "%v", err)
			return
		}
		ce.Ctx = ctx
	}

	id := req.ContextID
	if id == "" {
		var err error
		if id, err = randomID(); err != nil {
			writeError(w, http.StatusInternalServerError, "%v", err)
			return
		}
	}
	ce.ID = id

	// Build the portable bundle when durability or replication needs it:
	// the store record and the cluster transfer body are the same document.
	if ce.Bundle == nil && (s.cfg.Store != nil || s.cfg.AllowContextTransfer) {
		bundle, err := buildBundle(entry.ID, ce.Keys, rlk, rtk, ce.CreatedAt)
		if err != nil {
			writeError(w, http.StatusInternalServerError, "%v", err)
			return
		}
		if s.cfg.AllowContextTransfer {
			ce.Bundle = bundle
		}
		if err := s.persistContext(id, bundle); err != nil {
			writeError(w, http.StatusInternalServerError, "%v", err)
			return
		}
	} else if ce.Bundle != nil {
		if err := s.persistContext(id, ce.Bundle); err != nil {
			writeError(w, http.StatusInternalServerError, "%v", err)
			return
		}
	}

	installed := s.installContext(ce)
	writeJSON(w, http.StatusOK, ContextResponse{
		ContextID:    id,
		ProgramID:    entry.ID,
		KeygenMillis: float64(installed.Ctx.KeyGenTime) / float64(time.Millisecond),
	})
}

// ProgramSourceResponse is the body of GET /programs/{id}/source: the
// canonical serialized program and the exact compile options its id was
// derived from, so a peer node can rebuild an identical registry entry.
type ProgramSourceResponse struct {
	ID      string          `json:"id"`
	Program json.RawMessage `json:"program"`
	Options compile.Options `json:"options"`
}

func (s *Server) handleProgramSource(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	source, opts, ok := s.registry.Source(id)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown program %q", id)
		return
	}
	writeJSON(w, http.StatusOK, ProgramSourceResponse{ID: id, Program: source, Options: opts})
}

func decodeEvalKeys(keys *EvalKeysJSON) (*ckks.RelinearizationKey, *ckks.RotationKeySet, error) {
	var rlk *ckks.RelinearizationKey
	var rtk *ckks.RotationKeySet
	if keys.Relin != "" {
		data, err := base64.StdEncoding.DecodeString(keys.Relin)
		if err != nil {
			return nil, nil, fmt.Errorf("relin key: %w", err)
		}
		rlk = &ckks.RelinearizationKey{}
		if err := rlk.UnmarshalBinary(data); err != nil {
			return nil, nil, fmt.Errorf("relin key: %w", err)
		}
	}
	if keys.RotationSet != "" && len(keys.Rotations) > 0 {
		return nil, nil, fmt.Errorf("supply either \"rotation_set\" or \"rotations\", not both")
	}
	if keys.RotationSet != "" {
		data, err := base64.StdEncoding.DecodeString(keys.RotationSet)
		if err != nil {
			return nil, nil, fmt.Errorf("rotation set: %w", err)
		}
		rtk = &ckks.RotationKeySet{}
		if err := rtk.UnmarshalBinary(data); err != nil {
			return nil, nil, fmt.Errorf("rotation set: %w", err)
		}
	}
	if len(keys.Rotations) > 0 {
		rtk = &ckks.RotationKeySet{Keys: map[uint64]*ckks.SwitchingKey{}}
		for galStr, b64 := range keys.Rotations {
			galEl, err := strconv.ParseUint(galStr, 10, 64)
			if err != nil {
				return nil, nil, fmt.Errorf("rotation key %q: bad Galois element: %w", galStr, err)
			}
			data, err := base64.StdEncoding.DecodeString(b64)
			if err != nil {
				return nil, nil, fmt.Errorf("rotation key %q: %w", galStr, err)
			}
			swk := &ckks.SwitchingKey{}
			if err := swk.UnmarshalBinary(data); err != nil {
				return nil, nil, fmt.Errorf("rotation key %q: %w", galStr, err)
			}
			rtk.Keys[galEl] = swk
		}
	}
	return rlk, rtk, nil
}

func randomID() (string, error) {
	var b [12]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "", fmt.Errorf("serve: generating id: %w", err)
	}
	return hex.EncodeToString(b[:]), nil
}

// --- /execute ---

// ExecuteBatch is one input set of an /execute request. Cipher carries
// base64 ciphertexts (client-encrypted), Handles references stored
// ciphertext handles by id (resolved server-side, so chained jobs never
// round-trip ciphertext through the client), Plain carries the program's
// unencrypted inputs, and Values carries plaintext values for the program's
// Cipher inputs — allowed only on demo-mode contexts, where the server
// encrypts them (and decrypts the outputs) itself. Each Cipher input must be
// supplied by exactly one of Cipher, Handles, or Values.
type ExecuteBatch struct {
	Cipher  map[string]string    `json:"cipher,omitempty"`
	Handles map[string]string    `json:"handles,omitempty"`
	Plain   map[string][]float64 `json:"plain,omitempty"`
	Values  map[string][]float64 `json:"values,omitempty"`
}

// ExecuteRequest is the body of POST /execute/{program-id}. Batches run
// concurrently (bounded by the server's MaxConcurrentBatches) and each batch
// additionally fans out across Workers executor goroutines. Output selects
// the result form: "" returns ciphertext payloads (or decrypted values in
// demo mode), "handle" persists every encrypted output as a content-addressed
// handle and returns ids instead of payloads.
type ExecuteRequest struct {
	ContextID string         `json:"context_id"`
	Workers   int            `json:"workers,omitempty"`
	Scheduler string         `json:"scheduler,omitempty"`
	Output    string         `json:"output,omitempty"`
	Batches   []ExecuteBatch `json:"batches"`
}

// BatchStats summarizes one batch's execution.
type BatchStats struct {
	Instructions int     `json:"instructions"`
	Workers      int     `json:"workers"`
	WallMillis   float64 `json:"wall_ms"`
}

// BatchResult is the per-batch response: base64 ciphertext outputs, plus
// decrypted (or natively unencrypted) outputs in Values where available.
// When the request asked for "output": "handle", Handles maps each encrypted
// output to the id of its stored content-addressed handle instead.
type BatchResult struct {
	Cipher  map[string]string    `json:"cipher,omitempty"`
	Handles map[string]string    `json:"handles,omitempty"`
	Values  map[string][]float64 `json:"values,omitempty"`
	Error   string               `json:"error,omitempty"`
	Stats   BatchStats           `json:"stats"`
}

// ExecuteResponse is the body returned by POST /execute/{id}.
type ExecuteResponse struct {
	ProgramID string        `json:"program_id"`
	Results   []BatchResult `json:"results"`
}

func parseScheduler(s string) (execute.Scheduler, error) {
	switch s {
	case "", "parallel":
		return execute.SchedulerParallel, nil
	case "bulk":
		return execute.SchedulerBulkSynchronous, nil
	case "sequential":
		return execute.SchedulerSequential, nil
	}
	return 0, fmt.Errorf("unknown scheduler %q (want parallel, bulk, or sequential)", s)
}

func (s *Server) handleExecute(w http.ResponseWriter, r *http.Request) {
	programID := r.PathValue("id")
	var req ExecuteRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	// Resolve the program through the context, not the registry: a context
	// pins its compiled program, so LRU eviction never breaks a live context.
	ce, entry, status, err := s.resolveExecution(programID, req.ContextID)
	if err != nil {
		writeError(w, status, "%v", err)
		return
	}
	if len(req.Batches) == 0 {
		writeError(w, http.StatusBadRequest, "no batches")
		return
	}
	if len(req.Batches) > maxBatchesPerRequest {
		writeError(w, http.StatusRequestEntityTooLarge, "%d batches exceeds the per-request limit of %d", len(req.Batches), maxBatchesPerRequest)
		return
	}
	ropts, err := s.runOptions(req.Workers, req.Scheduler)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if err := validOutputMode(req.Output); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}

	// Fan the batches out across the worker pool: each batch is one
	// DAG-parallel execution, and up to maxConcurrent batches run at once.
	// The request context propagates into the executor, so a disconnected
	// client stops its in-flight work. The handle cache is shared across the
	// request's batches: a handle referenced by many batches is fetched and
	// deserialized once (resolved ciphertexts are read-only to the executor).
	maxConcurrent := s.cfg.MaxConcurrentBatches
	if maxConcurrent <= 0 {
		maxConcurrent = runtime.GOMAXPROCS(0)
	}
	cache := newHandleCache()
	results := make([]BatchResult, len(req.Batches))
	sem := make(chan struct{}, maxConcurrent)
	var wg sync.WaitGroup
	for i := range req.Batches {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			results[i] = s.runBatch(r.Context(), entry, ce, &req.Batches[i], nil, ropts, req.Output, cache)
		}(i)
	}
	wg.Wait()
	writeJSON(w, http.StatusOK, ExecuteResponse{ProgramID: programID, Results: results})
}

func batchError(format string, args ...any) BatchResult {
	return BatchResult{Error: fmt.Sprintf(format, args...)}
}

// runBatch executes one input set against a compiled program. decoded may
// carry inputs resolved ahead of time — fully (the jobs path decodes at
// admission) or partially (handle references resolved, demo values still
// pending); buildBatchInputs completes whatever is missing. outMode selects
// the result form ("", "handle", or "values"); cache, when non-nil, shares
// resolved handles across the batches of one request. stdctx cancellation
// aborts the execution.
func (s *Server) runBatch(stdctx context.Context, entry *Entry, ce *contextEntry, batch *ExecuteBatch, decoded *execute.EncryptedInputs, ropts execute.RunOptions, outMode string, cache *handleCache) BatchResult {
	result, _ := s.runBatchOutputs(stdctx, entry, ce, batch, decoded, ropts, outMode, cache)
	return result
}

// runBatchOutputs is runBatch exposing the raw executor outputs, so the
// pipeline runner can feed one stage's output ciphertexts straight into the
// next stage without a serialize/store/fetch round-trip.
func (s *Server) runBatchOutputs(stdctx context.Context, entry *Entry, ce *contextEntry, batch *ExecuteBatch, decoded *execute.EncryptedInputs, ropts execute.RunOptions, outMode string, cache *handleCache) (BatchResult, *execute.Outputs) {
	res := entry.Result
	enc, err := s.buildBatchInputs(stdctx, ce, res, batch, decoded, cache, false)
	if err != nil {
		s.metrics.RecordExecutionError()
		return batchError("%v", err), nil
	}
	if outMode == outputValues && ce.Keys == nil {
		s.metrics.RecordExecutionError()
		return batchError("\"output\": \"values\" needs a server-keygen (demo) context; this context has no keys"), nil
	}

	// The execute span carries per-instruction progress (readable on live
	// traces) and, after the run, the per-opcode time folded from RunStats.
	t := obs.TraceFromContext(stdctx)
	sp := t.StartSpan("execute", obs.SpanFromContext(stdctx))
	if sp != nil && ropts.Progress == nil {
		ropts.Progress = sp.Progress
	}
	// The instruction profiler samples this run; the trace id rides along so
	// drift events in /profile link back to their /traces entry.
	if rec := s.profiles.Recorder(entry.ID, res, t.ID()); rec != nil {
		ropts.OnInstruction = rec.OnInstruction
		defer rec.Finish()
	}
	if sp != nil && ropts.OnHoistedBatch == nil {
		// Record every hoisted rotation batch the executor dispatches as a
		// child span, so traces show how many rotations shared one
		// decomposition. StartSpan is goroutine-safe; the callback can fire
		// from any executor worker.
		ropts.OnHoistedBatch = func(rotations int) {
			hsp := t.StartSpan("rotate_hoisted", sp)
			hsp.SetAttr("rotations", strconv.Itoa(rotations))
			hsp.End()
		}
	}
	out, err := execute.RunContext(stdctx, ce.Ctx, res, enc, ropts)
	if err != nil {
		sp.SetAttr("error", err.Error())
		sp.End()
		// A cancelled run (client disconnect, job cancel, shutdown) is not an
		// execution failure; keep the failure counter meaningful for alerts.
		if stdctx.Err() == nil {
			s.metrics.RecordExecutionError()
		}
		return batchError("executing: %v", err), nil
	}
	if sp != nil {
		sp.SetAttr("workers", strconv.Itoa(out.Stats.Workers))
		for op, os := range out.Stats.PerOp {
			sp.SetAttr("op."+op+"_ms", strconv.FormatFloat(float64(os.Total)/float64(time.Millisecond), 'f', 3, 64))
		}
		sp.End()
	}
	s.metrics.RecordExecution(out.Stats)

	result := BatchResult{
		Stats: BatchStats{
			Instructions: out.Stats.Instructions,
			Workers:      out.Stats.Workers,
			WallMillis:   float64(out.Stats.WallTime) / float64(time.Millisecond),
		},
	}
	if outMode == outputHandle {
		result.Handles = map[string]string{}
		for name, ct := range out.Cipher {
			id, err := s.storeOutputHandle(ce, res, ct)
			if err != nil {
				s.metrics.RecordExecutionError()
				return batchError("storing output %q: %v", name, err), nil
			}
			result.Handles[name] = id
		}
		for name, v := range out.Plain {
			if result.Values == nil {
				result.Values = map[string][]float64{}
			}
			result.Values[name] = v[:min(res.Program.VecSize, len(v))]
		}
		return result, out
	}
	if ce.Keys != nil && (outMode == outputValues || len(batch.Values) > 0) {
		values, _ := execute.DecryptOutputs(ce.Ctx, res, ce.Keys, out)
		result.Values = values
		return result, out
	}
	result.Cipher = map[string]string{}
	for name, ct := range out.Cipher {
		data, err := ct.MarshalBinary()
		if err != nil {
			s.metrics.RecordExecutionError()
			return batchError("serializing output %q: %v", name, err), nil
		}
		result.Cipher[name] = base64.StdEncoding.EncodeToString(data)
	}
	for name, v := range out.Plain {
		if result.Values == nil {
			result.Values = map[string][]float64{}
		}
		result.Values[name] = v[:min(res.Program.VecSize, len(v))]
	}
	return result, out
}

// --- /healthz and /metrics ---

// HealthResponse is the body of GET /healthz.
type HealthResponse struct {
	Status        string  `json:"status"`
	Node          string  `json:"node,omitempty"`
	UptimeSeconds float64 `json:"uptime_seconds"`
	Programs      int     `json:"programs"`
	Contexts      int     `json:"contexts"`
	Goroutines    int     `json:"goroutines"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.ctxMu.Lock()
	contexts := len(s.contexts)
	s.ctxMu.Unlock()
	writeJSON(w, http.StatusOK, HealthResponse{
		Status:        "ok",
		Node:          s.cfg.NodeID,
		UptimeSeconds: time.Since(s.start).Seconds(),
		Programs:      s.registry.Stats().Size,
		Contexts:      contexts,
		Goroutines:    runtime.NumGoroutine(),
	})
}

// MetricsReport assembles the document served by GET /metrics. The cluster
// tier calls it directly so it can graft its own section onto the report.
func (s *Server) MetricsReport() MetricsReport {
	var storeStats *store.Stats
	if s.cfg.Store != nil {
		st := s.cfg.Store.Stats()
		storeStats = &st
	}
	rep := s.metrics.Report(s.registry.Stats(), s.jobs.Stats(), storeStats)
	rep.Node = s.cfg.NodeID
	cs := s.coalescer.Stats()
	rep.Coalesce = &cs
	hs := s.handles.Stats()
	rep.Handles = &hs
	return rep
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("format") == "prometheus" {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := s.WritePrometheus(w); err != nil {
			s.log.Warn("writing prometheus exposition", slog.String("error", err.Error()))
		}
		return
	}
	writeJSON(w, http.StatusOK, s.MetricsReport())
}
