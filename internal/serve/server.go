// Package serve implements evaserve, an HTTP JSON service exposing the full
// EVA pipeline: POST /compile turns an EVA program — either the serialized
// JSON program format or .eva source text — into a compiled program plus
// encryption parameters (cached in a concurrent LRU registry keyed by
// content hash, with singleflight deduplication so a distinct program
// compiles exactly once under concurrent load; both submission formats of
// the same program share one cache entry), POST /contexts
// installs evaluation keys — either client-generated, the paper's deployment
// model, or server-generated for the trusted demo mode — and POST
// /execute/{id} runs batches of encrypted input sets through the parallel
// executor, fanning the batches out across the runner's worker pool.
// GET /programs, GET /healthz and GET /metrics expose the registry contents,
// liveness, and request/cache/per-opcode-latency metrics.
//
// Long-running work goes through the asynchronous jobs API (jobs.go): POST
// /jobs enqueues an execution behind a bounded worker pool with
// memory-budget admission control, GET /jobs/{id} polls, GET
// /jobs/{id}/events streams progress over SSE, GET /jobs/{id}/result
// delivers results exactly once with TTL eviction, and DELETE /jobs/{id}
// cancels.
package serve

import (
	"container/list"
	"context"
	"crypto/rand"
	"encoding/base64"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"time"

	"eva/internal/analysis"
	"eva/internal/ckks"
	"eva/internal/compile"
	"eva/internal/core"
	"eva/internal/execute"
	"eva/internal/jobs"
	"eva/internal/lang"
	"eva/internal/rewrite"
)

// Config configures a Server.
type Config struct {
	// CacheCapacity bounds the compiled-program registry (0 = 128).
	CacheCapacity int
	// DefaultWorkers is the executor worker count when a request does not set
	// one (0 = GOMAXPROCS).
	DefaultWorkers int
	// MaxConcurrentBatches bounds how many batches of one /execute request
	// run simultaneously (0 = GOMAXPROCS). Each batch additionally
	// parallelizes internally across the executor's workers.
	MaxConcurrentBatches int
	// MaxBodyBytes caps the size of any request body (0 = 256 MiB — key
	// material for large rings runs to tens of megabytes, so the default is
	// generous). Oversized requests are rejected mid-read.
	MaxBodyBytes int64
	// MaxContexts bounds how many execution contexts (evaluation-key sets)
	// the server retains; the least recently used context is dropped when
	// the bound is exceeded (0 = 256). Contexts hold key material, which is
	// far heavier than compiled programs.
	MaxContexts int
	// AllowServerKeygen enables the trusted demo mode: POST /contexts with a
	// "keygen" clause makes the server generate and hold all key material,
	// including the secret key, so clients can submit plaintext values and
	// read back decrypted results. This breaks the paper's threat model (the
	// server can decrypt) and exists for demos and load tests only.
	AllowServerKeygen bool

	// JobWorkers is how many async jobs run concurrently (0 = 2); each job
	// additionally parallelizes internally across the executor's workers.
	JobWorkers int
	// JobQueueDepth bounds the async job queue (0 = 64); submissions beyond
	// it are shed with 429.
	JobQueueDepth int
	// JobMemoryBudgetBytes bounds the estimated resident ciphertext
	// footprint of all queued and running jobs (0 = 8 GiB); submissions that
	// would exceed it are shed with 429.
	JobMemoryBudgetBytes int64
	// JobResultTTL is how long finished jobs and unfetched results are
	// retained (0 = 2 minutes).
	JobResultTTL time.Duration
}

// Server is the evaserve HTTP service. Create one with NewServer and mount
// Handler on an http.Server.
type Server struct {
	cfg      Config
	registry *Registry
	metrics  *Metrics
	jobs     *jobs.Manager
	mux      *http.ServeMux
	start    time.Time

	ctxMu    sync.Mutex
	contexts map[string]*list.Element // values are *contextEntry
	ctxLRU   *list.List               // front = most recently used
}

// contextEntry is one installed execution context: the CKKS runtime objects
// for a compiled program plus, in demo mode only, the full key material. It
// pins the registry entry it was created against, so a context keeps working
// even after the compiled program is evicted from the LRU cache.
type contextEntry struct {
	ID        string
	Entry     *Entry
	Ctx       *execute.Context
	Keys      *execute.KeyMaterial // nil unless created by server-side keygen
	CreatedAt time.Time
}

// NewServer builds an evaserve service.
func NewServer(cfg Config) *Server {
	s := &Server{
		cfg:      cfg,
		registry: NewRegistry(cfg.CacheCapacity),
		metrics:  NewMetrics(),
		jobs: jobs.NewManager(jobs.Config{
			Workers:           cfg.JobWorkers,
			QueueDepth:        cfg.JobQueueDepth,
			MemoryBudgetBytes: cfg.JobMemoryBudgetBytes,
			ResultTTL:         cfg.JobResultTTL,
		}),
		mux:      http.NewServeMux(),
		start:    time.Now(),
		contexts: map[string]*list.Element{},
		ctxLRU:   list.New(),
	}
	s.mux.HandleFunc("POST /compile", s.route("compile", s.handleCompile))
	s.mux.HandleFunc("GET /programs", s.route("programs", s.handlePrograms))
	s.mux.HandleFunc("GET /programs/{id}", s.route("program", s.handleProgram))
	s.mux.HandleFunc("POST /contexts", s.route("contexts", s.handleContexts))
	s.mux.HandleFunc("POST /execute/{id}", s.route("execute", s.handleExecute))
	s.mux.HandleFunc("POST /jobs", s.route("jobs_submit", s.handleJobSubmit))
	s.mux.HandleFunc("GET /jobs/{id}", s.route("jobs_status", s.handleJobStatus))
	s.mux.HandleFunc("GET /jobs/{id}/events", s.route("jobs_events", s.handleJobEvents))
	s.mux.HandleFunc("GET /jobs/{id}/result", s.route("jobs_result", s.handleJobResult))
	s.mux.HandleFunc("DELETE /jobs/{id}", s.route("jobs_cancel", s.handleJobCancel))
	s.mux.HandleFunc("GET /healthz", s.route("healthz", s.handleHealthz))
	s.mux.HandleFunc("GET /metrics", s.route("metrics", s.handleMetrics))
	return s
}

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Jobs exposes the async job manager (for tests and tooling).
func (s *Server) Jobs() *jobs.Manager { return s.jobs }

// Close stops the async job subsystem: running jobs are cancelled and the
// worker pool drains. The HTTP handlers remain usable for synchronous
// requests, but further job submissions fail.
func (s *Server) Close() { s.jobs.Close() }

// Registry exposes the program registry (for tests and tooling).
func (s *Server) Registry() *Registry { return s.registry }

func (s *Server) route(name string, h http.HandlerFunc) http.HandlerFunc {
	maxBody := s.cfg.MaxBodyBytes
	if maxBody <= 0 {
		maxBody = 256 << 20
	}
	return func(w http.ResponseWriter, r *http.Request) {
		s.metrics.RecordRequest(name)
		if r.Body != nil {
			r.Body = http.MaxBytesReader(w, r.Body, maxBody)
		}
		h(w, r)
	}
}

// maxBatchesPerRequest caps how many input sets one /execute request may
// carry; each batch gets a goroutine parked on the fan-out semaphore, so the
// count must be bounded.
const maxBatchesPerRequest = 4096

// SourceError is one positioned diagnostic from compiling the "source" form
// of a program: where in the source text the problem is, what went wrong,
// and the offending line.
type SourceError struct {
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Message string `json:"message"`
	Snippet string `json:"snippet,omitempty"`
}

// apiError is the uniform error body. SourceErrors is populated only when a
// "source" program fails to parse or check.
type apiError struct {
	Error        string        `json:"error"`
	SourceErrors []SourceError `json:"source_errors,omitempty"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, apiError{Error: fmt.Sprintf(format, args...)})
}

// writeSourceError renders a lang diagnostic list as a structured error so
// clients can point at the offending line and column.
func writeSourceError(w http.ResponseWriter, err error) {
	body := apiError{Error: fmt.Sprintf("invalid source: %v", err)}
	if list, ok := lang.AsErrorList(err); ok {
		body.Error = fmt.Sprintf("invalid source: %d error(s)", len(list))
		for _, e := range list {
			body.SourceErrors = append(body.SourceErrors, SourceError{
				Line: e.Pos.Line, Col: e.Pos.Col, Message: e.Msg, Snippet: e.Snippet,
			})
		}
	}
	writeJSON(w, http.StatusBadRequest, body)
}

// --- /compile ---

// CompileOptionsJSON is the wire form of compile.Options. Zero values mean
// the paper's defaults; Rescale and ModSwitch take the strategy names also
// accepted by the evac command line.
type CompileOptionsJSON struct {
	MaxRescaleLog float64 `json:"max_rescale_log,omitempty"`
	WaterlineLog  float64 `json:"waterline_log,omitempty"`
	Rescale       string  `json:"rescale,omitempty"`
	ModSwitch     string  `json:"mod_switch,omitempty"`
	MinLogN       int     `json:"min_log_n,omitempty"`
	AllowInsecure bool    `json:"allow_insecure,omitempty"`
	Optimize      bool    `json:"optimize,omitempty"`
}

func (o *CompileOptionsJSON) toOptions() (compile.Options, error) {
	opts := compile.DefaultOptions()
	if o == nil {
		return opts, nil
	}
	if o.MaxRescaleLog > 0 {
		opts.MaxRescaleLog = o.MaxRescaleLog
	}
	opts.WaterlineLog = o.WaterlineLog
	opts.MinLogN = o.MinLogN
	opts.AllowInsecure = o.AllowInsecure
	opts.Optimize = o.Optimize
	var err error
	if o.Rescale != "" {
		if opts.Rescale, err = rewrite.ParseRescaleStrategy(o.Rescale); err != nil {
			return opts, err
		}
	}
	if o.ModSwitch != "" {
		if opts.ModSwitch, err = rewrite.ParseModSwitchStrategy(o.ModSwitch); err != nil {
			return opts, err
		}
	}
	return opts, nil
}

// CompileRequest is the body of POST /compile: a program in exactly one of
// two forms — Program, the JSON program format (the paper's Figure 1
// schema), or Source, textual .eva source — plus optional compile options.
// Both forms lower to the same IR and are cached under the same content
// hash, so submitting a program as source and then as JSON (or vice versa)
// compiles it once.
type CompileRequest struct {
	Program json.RawMessage     `json:"program,omitempty"`
	Source  string              `json:"source,omitempty"`
	Options *CompileOptionsJSON `json:"options,omitempty"`
}

// ParamsJSON is the wire form of the selected encryption parameters — enough
// for a client to reconstruct ckks.ParametersLiteral and generate matching
// keys locally.
type ParamsJSON struct {
	LogN          int     `json:"log_n"`
	LogQi         []int   `json:"log_qi"`
	LogP          int     `json:"log_p"`
	Scale         float64 `json:"scale"`
	AllowInsecure bool    `json:"allow_insecure,omitempty"`
}

// Literal converts the wire form back to a parameters literal.
func (p ParamsJSON) Literal() ckks.ParametersLiteral {
	return ckks.ParametersLiteral{
		LogN:          p.LogN,
		LogQi:         p.LogQi,
		LogP:          p.LogP,
		Scale:         p.Scale,
		AllowInsecure: p.AllowInsecure,
	}
}

// CompileResponse is the body returned by POST /compile.
type CompileResponse struct {
	ID            string             `json:"id"`
	Cached        bool               `json:"cached"`
	CompileMillis float64            `json:"compile_ms"`
	Summary       string             `json:"summary"`
	Params        ParamsJSON         `json:"params"`
	InputScales   map[string]float64 `json:"input_scales"`
	RotationSteps []int              `json:"rotation_steps"`
	Instructions  int                `json:"instructions"`
}

func (s *Server) handleCompile(w http.ResponseWriter, r *http.Request) {
	var req CompileRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	if (len(req.Program) == 0) == (req.Source == "") {
		writeError(w, http.StatusBadRequest, "exactly one of \"program\" or \"source\" is required")
		return
	}
	var prog *core.Program
	var err error
	if req.Source != "" {
		if prog, err = lang.ParseProgram(req.Source); err != nil {
			writeSourceError(w, err)
			return
		}
	} else if prog, err = core.DeserializeBytes(req.Program); err != nil {
		writeError(w, http.StatusBadRequest, "invalid program: %v", err)
		return
	}
	opts, err := req.Options.toOptions()
	if err != nil {
		writeError(w, http.StatusBadRequest, "invalid options: %v", err)
		return
	}
	entry, cached, err := s.registry.GetOrCompile(prog, opts)
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	if !cached {
		model := analysis.CostModel{LogN: entry.Result.LogN, TotalLevels: len(entry.Result.Plan.BitSizes)}
		s.metrics.RecordPredictedCost(model.EstimateCost(entry.Result.Program).ByOp)
	}
	writeJSON(w, http.StatusOK, s.compileResponse(entry, cached))
}

func (s *Server) compileResponse(entry *Entry, cached bool) CompileResponse {
	res := entry.Result
	lit := res.ParametersLiteral()
	return CompileResponse{
		ID:            entry.ID,
		Cached:        cached,
		CompileMillis: float64(entry.CompileTime) / float64(time.Millisecond),
		Summary:       res.Summary(),
		Params: ParamsJSON{
			LogN:          lit.LogN,
			LogQi:         lit.LogQi,
			LogP:          lit.LogP,
			Scale:         lit.Scale,
			AllowInsecure: lit.AllowInsecure,
		},
		InputScales:   res.InputScales(),
		RotationSteps: res.RotationSteps,
		Instructions:  res.CompiledStats.Terms,
	}
}

// --- /programs ---

// ProgramInfo is one row of GET /programs.
type ProgramInfo struct {
	ID           string  `json:"id"`
	Name         string  `json:"name"`
	VecSize      int     `json:"vec_size"`
	Instructions int     `json:"instructions"`
	Hits         uint64  `json:"hits"`
	CompiledAt   string  `json:"compiled_at"`
	CompileMS    float64 `json:"compile_ms"`
}

func (s *Server) handlePrograms(w http.ResponseWriter, r *http.Request) {
	entries := s.registry.List()
	out := make([]ProgramInfo, 0, len(entries))
	for _, e := range entries {
		out = append(out, programInfo(e))
	}
	writeJSON(w, http.StatusOK, out)
}

func programInfo(e *Entry) ProgramInfo {
	return ProgramInfo{
		ID:           e.ID,
		Name:         e.Result.Program.Name,
		VecSize:      e.Result.Program.VecSize,
		Instructions: e.Result.CompiledStats.Terms,
		Hits:         e.Hits(),
		CompiledAt:   e.CreatedAt.UTC().Format(time.RFC3339),
		CompileMS:    float64(e.CompileTime) / float64(time.Millisecond),
	}
}

func (s *Server) handleProgram(w http.ResponseWriter, r *http.Request) {
	entry, ok := s.registry.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown program %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, struct {
		ProgramInfo
		Compile CompileResponse `json:"compile"`
	}{programInfo(entry), s.compileResponse(entry, true)})
}

// --- /contexts ---

// EvalKeysJSON carries client-generated public evaluation keys: the
// relinearization key, plus rotation keys either as one whole
// RotationKeySet payload (RotationSet) or as one key per Galois element
// (Rotations: decimal Galois elements mapping to SwitchingKey payloads).
// All payloads are base64 of the ckks binary wire format.
type EvalKeysJSON struct {
	Relin       string            `json:"relin,omitempty"`
	RotationSet string            `json:"rotation_set,omitempty"`
	Rotations   map[string]string `json:"rotations,omitempty"`
}

// KeygenJSON asks the server to generate key material itself (demo mode).
type KeygenJSON struct {
	// Seed makes key generation deterministic when nonzero (tests only).
	Seed uint64 `json:"seed,omitempty"`
}

// ContextRequest is the body of POST /contexts. Exactly one of Keys (the
// paper's client-keygen model) or Keygen (trusted demo mode) must be set.
type ContextRequest struct {
	ProgramID string        `json:"program_id"`
	Keys      *EvalKeysJSON `json:"keys,omitempty"`
	Keygen    *KeygenJSON   `json:"keygen,omitempty"`
}

// ContextResponse is the body returned by POST /contexts.
type ContextResponse struct {
	ContextID    string  `json:"context_id"`
	ProgramID    string  `json:"program_id"`
	KeygenMillis float64 `json:"keygen_ms,omitempty"`
}

func (s *Server) handleContexts(w http.ResponseWriter, r *http.Request) {
	var req ContextRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	entry, ok := s.registry.Get(req.ProgramID)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown program %q; POST /compile first", req.ProgramID)
		return
	}
	if (req.Keys == nil) == (req.Keygen == nil) {
		writeError(w, http.StatusBadRequest, "exactly one of \"keys\" or \"keygen\" is required")
		return
	}

	ce := &contextEntry{Entry: entry, CreatedAt: time.Now()}
	switch {
	case req.Keygen != nil:
		if !s.cfg.AllowServerKeygen {
			writeError(w, http.StatusForbidden, "server-side keygen is disabled; supply client-generated evaluation keys")
			return
		}
		var prng *ckks.PRNG
		if req.Keygen.Seed != 0 {
			prng = ckks.NewTestPRNG(req.Keygen.Seed)
		}
		ctx, keys, err := execute.NewContext(entry.Result, prng)
		if err != nil {
			writeError(w, http.StatusUnprocessableEntity, "key generation: %v", err)
			return
		}
		ce.Ctx, ce.Keys = ctx, keys
	default:
		rlk, rtk, err := decodeEvalKeys(req.Keys)
		if err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
		ctx, err := execute.NewEvaluationContext(entry.Result, rlk, rtk)
		if err != nil {
			writeError(w, http.StatusUnprocessableEntity, "%v", err)
			return
		}
		ce.Ctx = ctx
	}

	id, err := randomID()
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	ce.ID = id
	maxContexts := s.cfg.MaxContexts
	if maxContexts <= 0 {
		maxContexts = 256
	}
	s.ctxMu.Lock()
	s.contexts[id] = s.ctxLRU.PushFront(ce)
	for s.ctxLRU.Len() > maxContexts {
		oldest := s.ctxLRU.Back()
		s.ctxLRU.Remove(oldest)
		delete(s.contexts, oldest.Value.(*contextEntry).ID)
	}
	s.ctxMu.Unlock()
	writeJSON(w, http.StatusOK, ContextResponse{
		ContextID:    id,
		ProgramID:    entry.ID,
		KeygenMillis: float64(ce.Ctx.KeyGenTime) / float64(time.Millisecond),
	})
}

func decodeEvalKeys(keys *EvalKeysJSON) (*ckks.RelinearizationKey, *ckks.RotationKeySet, error) {
	var rlk *ckks.RelinearizationKey
	var rtk *ckks.RotationKeySet
	if keys.Relin != "" {
		data, err := base64.StdEncoding.DecodeString(keys.Relin)
		if err != nil {
			return nil, nil, fmt.Errorf("relin key: %w", err)
		}
		rlk = &ckks.RelinearizationKey{}
		if err := rlk.UnmarshalBinary(data); err != nil {
			return nil, nil, fmt.Errorf("relin key: %w", err)
		}
	}
	if keys.RotationSet != "" && len(keys.Rotations) > 0 {
		return nil, nil, fmt.Errorf("supply either \"rotation_set\" or \"rotations\", not both")
	}
	if keys.RotationSet != "" {
		data, err := base64.StdEncoding.DecodeString(keys.RotationSet)
		if err != nil {
			return nil, nil, fmt.Errorf("rotation set: %w", err)
		}
		rtk = &ckks.RotationKeySet{}
		if err := rtk.UnmarshalBinary(data); err != nil {
			return nil, nil, fmt.Errorf("rotation set: %w", err)
		}
	}
	if len(keys.Rotations) > 0 {
		rtk = &ckks.RotationKeySet{Keys: map[uint64]*ckks.SwitchingKey{}}
		for galStr, b64 := range keys.Rotations {
			galEl, err := strconv.ParseUint(galStr, 10, 64)
			if err != nil {
				return nil, nil, fmt.Errorf("rotation key %q: bad Galois element: %w", galStr, err)
			}
			data, err := base64.StdEncoding.DecodeString(b64)
			if err != nil {
				return nil, nil, fmt.Errorf("rotation key %q: %w", galStr, err)
			}
			swk := &ckks.SwitchingKey{}
			if err := swk.UnmarshalBinary(data); err != nil {
				return nil, nil, fmt.Errorf("rotation key %q: %w", galStr, err)
			}
			rtk.Keys[galEl] = swk
		}
	}
	return rlk, rtk, nil
}

func randomID() (string, error) {
	var b [12]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "", fmt.Errorf("serve: generating id: %w", err)
	}
	return hex.EncodeToString(b[:]), nil
}

// --- /execute ---

// ExecuteBatch is one input set of an /execute request. Cipher carries
// base64 ciphertexts (client-encrypted), Plain carries the program's
// unencrypted inputs, and Values carries plaintext values for the program's
// Cipher inputs — allowed only on demo-mode contexts, where the server
// encrypts them (and decrypts the outputs) itself.
type ExecuteBatch struct {
	Cipher map[string]string    `json:"cipher,omitempty"`
	Plain  map[string][]float64 `json:"plain,omitempty"`
	Values map[string][]float64 `json:"values,omitempty"`
}

// ExecuteRequest is the body of POST /execute/{program-id}. Batches run
// concurrently (bounded by the server's MaxConcurrentBatches) and each batch
// additionally fans out across Workers executor goroutines.
type ExecuteRequest struct {
	ContextID string         `json:"context_id"`
	Workers   int            `json:"workers,omitempty"`
	Scheduler string         `json:"scheduler,omitempty"`
	Batches   []ExecuteBatch `json:"batches"`
}

// BatchStats summarizes one batch's execution.
type BatchStats struct {
	Instructions int     `json:"instructions"`
	Workers      int     `json:"workers"`
	WallMillis   float64 `json:"wall_ms"`
}

// BatchResult is the per-batch response: base64 ciphertext outputs, plus
// decrypted (or natively unencrypted) outputs in Values where available.
type BatchResult struct {
	Cipher map[string]string    `json:"cipher,omitempty"`
	Values map[string][]float64 `json:"values,omitempty"`
	Error  string               `json:"error,omitempty"`
	Stats  BatchStats           `json:"stats"`
}

// ExecuteResponse is the body returned by POST /execute/{id}.
type ExecuteResponse struct {
	ProgramID string        `json:"program_id"`
	Results   []BatchResult `json:"results"`
}

func parseScheduler(s string) (execute.Scheduler, error) {
	switch s {
	case "", "parallel":
		return execute.SchedulerParallel, nil
	case "bulk":
		return execute.SchedulerBulkSynchronous, nil
	case "sequential":
		return execute.SchedulerSequential, nil
	}
	return 0, fmt.Errorf("unknown scheduler %q (want parallel, bulk, or sequential)", s)
}

func (s *Server) handleExecute(w http.ResponseWriter, r *http.Request) {
	programID := r.PathValue("id")
	var req ExecuteRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	// Resolve the program through the context, not the registry: a context
	// pins its compiled program, so LRU eviction never breaks a live context.
	ce, entry, status, err := s.resolveExecution(programID, req.ContextID)
	if err != nil {
		writeError(w, status, "%v", err)
		return
	}
	if len(req.Batches) == 0 {
		writeError(w, http.StatusBadRequest, "no batches")
		return
	}
	if len(req.Batches) > maxBatchesPerRequest {
		writeError(w, http.StatusRequestEntityTooLarge, "%d batches exceeds the per-request limit of %d", len(req.Batches), maxBatchesPerRequest)
		return
	}
	ropts, err := s.runOptions(req.Workers, req.Scheduler)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}

	// Fan the batches out across the worker pool: each batch is one
	// DAG-parallel execution, and up to maxConcurrent batches run at once.
	// The request context propagates into the executor, so a disconnected
	// client stops its in-flight work.
	maxConcurrent := s.cfg.MaxConcurrentBatches
	if maxConcurrent <= 0 {
		maxConcurrent = runtime.GOMAXPROCS(0)
	}
	results := make([]BatchResult, len(req.Batches))
	sem := make(chan struct{}, maxConcurrent)
	var wg sync.WaitGroup
	for i := range req.Batches {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			results[i] = s.runBatch(r.Context(), entry, ce, &req.Batches[i], nil, ropts)
		}(i)
	}
	wg.Wait()
	writeJSON(w, http.StatusOK, ExecuteResponse{ProgramID: programID, Results: results})
}

func batchError(format string, args ...any) BatchResult {
	return BatchResult{Error: fmt.Sprintf(format, args...)}
}

// runBatch executes one input set against a compiled program. decoded may
// carry inputs decoded ahead of time (the jobs path decodes at admission);
// when nil, the batch's own wire inputs are decoded (or, in demo mode,
// encrypted) here. stdctx cancellation aborts the execution.
func (s *Server) runBatch(stdctx context.Context, entry *Entry, ce *contextEntry, batch *ExecuteBatch, decoded *execute.EncryptedInputs, ropts execute.RunOptions) BatchResult {
	res := entry.Result
	demo := len(batch.Values) > 0
	if demo && ce.Keys == nil {
		s.metrics.RecordExecutionError()
		return batchError("plaintext \"values\" need a server-keygen (demo) context; this context has no keys")
	}

	enc := decoded
	var err error
	switch {
	case enc != nil:
	case demo:
		all := execute.Inputs{}
		for name, v := range batch.Values {
			all[name] = v
		}
		for name, v := range batch.Plain {
			all[name] = v
		}
		enc, err = execute.EncryptInputs(ce.Ctx, res, ce.Keys, all, nil)
		if err != nil {
			s.metrics.RecordExecutionError()
			return batchError("encrypting values: %v", err)
		}
	default:
		if enc, err = decodeBatchInputs(res, ce.Ctx.Params, batch); err != nil {
			s.metrics.RecordExecutionError()
			return batchError("%v", err)
		}
	}

	out, err := execute.RunContext(stdctx, ce.Ctx, res, enc, ropts)
	if err != nil {
		// A cancelled run (client disconnect, job cancel, shutdown) is not an
		// execution failure; keep the failure counter meaningful for alerts.
		if stdctx.Err() == nil {
			s.metrics.RecordExecutionError()
		}
		return batchError("executing: %v", err)
	}
	s.metrics.RecordExecution(out.Stats)

	result := BatchResult{
		Stats: BatchStats{
			Instructions: out.Stats.Instructions,
			Workers:      out.Stats.Workers,
			WallMillis:   float64(out.Stats.WallTime) / float64(time.Millisecond),
		},
	}
	if demo {
		values, _ := execute.DecryptOutputs(ce.Ctx, res, ce.Keys, out)
		result.Values = values
		return result
	}
	result.Cipher = map[string]string{}
	for name, ct := range out.Cipher {
		data, err := ct.MarshalBinary()
		if err != nil {
			s.metrics.RecordExecutionError()
			return batchError("serializing output %q: %v", name, err)
		}
		result.Cipher[name] = base64.StdEncoding.EncodeToString(data)
	}
	for name, v := range out.Plain {
		if result.Values == nil {
			result.Values = map[string][]float64{}
		}
		result.Values[name] = v[:min(res.Program.VecSize, len(v))]
	}
	return result
}

// decodeBatchInputs turns a client-encrypted batch into executor inputs,
// checking that every program input is supplied with the right kind and that
// uploaded ciphertexts are well-formed for the program's parameters.
func decodeBatchInputs(res *compile.Result, params *ckks.Parameters, batch *ExecuteBatch) (*execute.EncryptedInputs, error) {
	enc := &execute.EncryptedInputs{
		Cipher: map[string]*ckks.Ciphertext{},
		Plain:  map[string][]float64{},
	}
	for _, in := range res.Program.Inputs() {
		if in.InType == core.TypeCipher {
			b64, ok := batch.Cipher[in.Name]
			if !ok {
				return nil, fmt.Errorf("missing ciphertext for input %q", in.Name)
			}
			data, err := base64.StdEncoding.DecodeString(b64)
			if err != nil {
				return nil, fmt.Errorf("input %q: %w", in.Name, err)
			}
			ct := &ckks.Ciphertext{}
			if err := ct.UnmarshalBinary(data); err != nil {
				return nil, fmt.Errorf("input %q: %w", in.Name, err)
			}
			// Reject malformed uploads before the executor touches them: the
			// ring layer assumes well-shaped NTT operands.
			if err := ct.Validate(params); err != nil {
				return nil, fmt.Errorf("input %q: %w", in.Name, err)
			}
			enc.Cipher[in.Name] = ct
		} else {
			v, ok := batch.Plain[in.Name]
			if !ok {
				return nil, fmt.Errorf("missing value for plain input %q", in.Name)
			}
			full, err := execute.PreparePlain(res, in.Name, v)
			if err != nil {
				return nil, err
			}
			enc.Plain[in.Name] = full
		}
	}
	return enc, nil
}

// --- /healthz and /metrics ---

// HealthResponse is the body of GET /healthz.
type HealthResponse struct {
	Status        string  `json:"status"`
	UptimeSeconds float64 `json:"uptime_seconds"`
	Programs      int     `json:"programs"`
	Contexts      int     `json:"contexts"`
	Goroutines    int     `json:"goroutines"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.ctxMu.Lock()
	contexts := len(s.contexts)
	s.ctxMu.Unlock()
	writeJSON(w, http.StatusOK, HealthResponse{
		Status:        "ok",
		UptimeSeconds: time.Since(s.start).Seconds(),
		Programs:      s.registry.Stats().Size,
		Contexts:      contexts,
		Goroutines:    runtime.NumGoroutine(),
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.metrics.Report(s.registry.Stats(), s.jobs.Stats()))
}
