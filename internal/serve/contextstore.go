package serve

import (
	"encoding/base64"
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"eva/internal/ckks"
	"eva/internal/execute"
	"eva/internal/jobs"
)

// Artifact-store kinds for installed contexts and finished job results.
const (
	kindContext = "context"
	kindResult  = "result"
)

// ContextBundle is the portable, durable form of an installed execution
// context: the program it belongs to plus every key needed to rebuild the
// CKKS runtime objects, each in the ckks binary wire format (base64). For
// contexts created by server-side keygen (demo mode) the bundle also
// carries the secret and public keys — the server already held them — so a
// restored or replicated demo context can keep encrypting plaintext values
// and decrypting outputs. Client-keygen bundles carry public evaluation
// material only, preserving the paper's threat model.
//
// The bundle doubles as the context's artifact-store record and as the wire
// body of the cluster replication surface (GET /contexts/{id}/bundle and
// the "bundle" clause of POST /contexts).
type ContextBundle struct {
	ProgramID string    `json:"program_id"`
	Demo      bool      `json:"demo,omitempty"`
	CreatedAt time.Time `json:"created_at,omitempty"`

	Relin       string `json:"relin,omitempty"`
	RotationSet string `json:"rotation_set,omitempty"`
	Secret      string `json:"secret,omitempty"` // demo contexts only
	Public      string `json:"public,omitempty"` // demo contexts only
}

func marshalKeyB64(m interface{ MarshalBinary() ([]byte, error) }) (string, error) {
	data, err := m.MarshalBinary()
	if err != nil {
		return "", err
	}
	return base64.StdEncoding.EncodeToString(data), nil
}

// buildBundle assembles the portable form of a context from its in-memory
// keys. rlk and rtk may be nil when the program needs neither; keys is nil
// for client-keygen contexts.
func buildBundle(programID string, keys *execute.KeyMaterial, rlk *ckks.RelinearizationKey, rtk *ckks.RotationKeySet, createdAt time.Time) (*ContextBundle, error) {
	b := &ContextBundle{ProgramID: programID, CreatedAt: createdAt}
	var err error
	if rlk != nil {
		if b.Relin, err = marshalKeyB64(rlk); err != nil {
			return nil, fmt.Errorf("serve: bundling relinearization key: %w", err)
		}
	}
	if rtk != nil {
		if b.RotationSet, err = marshalKeyB64(rtk); err != nil {
			return nil, fmt.Errorf("serve: bundling rotation keys: %w", err)
		}
	}
	if keys != nil {
		b.Demo = true
		if b.Secret, err = marshalKeyB64(keys.Secret); err != nil {
			return nil, fmt.Errorf("serve: bundling secret key: %w", err)
		}
		if b.Public, err = marshalKeyB64(keys.Public); err != nil {
			return nil, fmt.Errorf("serve: bundling public key: %w", err)
		}
	}
	return b, nil
}

func decodeKeyB64(b64, what string, m interface{ UnmarshalBinary([]byte) error }) error {
	data, err := base64.StdEncoding.DecodeString(b64)
	if err != nil {
		return fmt.Errorf("serve: %s: %w", what, err)
	}
	if err := m.UnmarshalBinary(data); err != nil {
		return fmt.Errorf("serve: %s: %w", what, err)
	}
	return nil
}

// restoreContext rebuilds a live execution context from a bundle: the
// program is resolved through the registry (which recompiles from the
// durable store on a cache miss) and the keys are validated the same way a
// fresh client upload would be.
func (s *Server) restoreContext(id string, b *ContextBundle) (*contextEntry, error) {
	entry, ok := s.registry.Get(b.ProgramID)
	if !ok {
		return nil, fmt.Errorf("serve: context %s: unknown program %q", id, b.ProgramID)
	}
	var rlk *ckks.RelinearizationKey
	var rtk *ckks.RotationKeySet
	if b.Relin != "" {
		rlk = &ckks.RelinearizationKey{}
		if err := decodeKeyB64(b.Relin, "relinearization key", rlk); err != nil {
			return nil, err
		}
	}
	if b.RotationSet != "" {
		rtk = &ckks.RotationKeySet{}
		if err := decodeKeyB64(b.RotationSet, "rotation keys", rtk); err != nil {
			return nil, err
		}
	}
	ctx, err := execute.NewEvaluationContext(entry.Result, rlk, rtk)
	if err != nil {
		return nil, fmt.Errorf("serve: restoring context %s: %w", id, err)
	}
	ce := &contextEntry{ID: id, Entry: entry, Ctx: ctx, CreatedAt: b.CreatedAt}
	if ce.CreatedAt.IsZero() {
		ce.CreatedAt = time.Now()
	}
	if b.Demo {
		if b.Secret == "" || b.Public == "" {
			return nil, fmt.Errorf("serve: context %s: demo bundle is missing key material", id)
		}
		sk := &ckks.SecretKey{}
		if err := decodeKeyB64(b.Secret, "secret key", sk); err != nil {
			return nil, err
		}
		pk := &ckks.PublicKey{}
		if err := decodeKeyB64(b.Public, "public key", pk); err != nil {
			return nil, err
		}
		ce.Keys = &execute.KeyMaterial{Secret: sk, Public: pk, Relin: rlk, Rot: rtk}
	}
	if s.cfg.AllowContextTransfer {
		ce.Bundle = b
	}
	return ce, nil
}

// persistContext writes a context's bundle to the durable store.
func (s *Server) persistContext(id string, b *ContextBundle) error {
	if s.cfg.Store == nil {
		return nil
	}
	data, err := json.Marshal(b)
	if err != nil {
		return fmt.Errorf("serve: encoding context %s: %w", id, err)
	}
	if err := s.cfg.Store.Put(kindContext, id, data); err != nil {
		return fmt.Errorf("serve: persisting context %s: %w", id, err)
	}
	return nil
}

// loadContext restores a context from the durable store and installs it in
// the LRU table, so execution against a context id survives restarts and
// LRU eviction.
func (s *Server) loadContext(id string) (*contextEntry, bool) {
	if s.cfg.Store == nil {
		return nil, false
	}
	data, err := s.cfg.Store.Get(kindContext, id)
	if err != nil {
		return nil, false
	}
	var b ContextBundle
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, false
	}
	ce, err := s.restoreContext(id, &b)
	if err != nil {
		return nil, false
	}
	return s.installContext(ce), true
}

// installContext inserts a context at the front of the LRU table, evicting
// beyond MaxContexts. If the id is already installed (a concurrent load or
// a replayed create), the existing entry wins so everyone agrees on one
// object.
func (s *Server) installContext(ce *contextEntry) *contextEntry {
	maxContexts := s.cfg.MaxContexts
	if maxContexts <= 0 {
		maxContexts = 256
	}
	s.ctxMu.Lock()
	defer s.ctxMu.Unlock()
	if elem, ok := s.contexts[ce.ID]; ok {
		s.ctxLRU.MoveToFront(elem)
		return elem.Value.(*contextEntry)
	}
	s.contexts[ce.ID] = s.ctxLRU.PushFront(ce)
	for s.ctxLRU.Len() > maxContexts {
		oldest := s.ctxLRU.Back()
		s.ctxLRU.Remove(oldest)
		delete(s.contexts, oldest.Value.(*contextEntry).ID)
	}
	return ce
}

// lookupContext returns an installed context, falling back to the durable
// store on a miss.
func (s *Server) lookupContext(id string) (*contextEntry, bool) {
	s.ctxMu.Lock()
	if elem, ok := s.contexts[id]; ok {
		s.ctxLRU.MoveToFront(elem)
		ce := elem.Value.(*contextEntry)
		s.ctxMu.Unlock()
		return ce, true
	}
	s.ctxMu.Unlock()
	return s.loadContext(id)
}

// handleContextBundle serves GET /contexts/{id}/bundle: the context's
// portable key bundle, for cluster replication. Gated by
// Config.AllowContextTransfer because demo bundles include the secret key.
func (s *Server) handleContextBundle(w http.ResponseWriter, r *http.Request) {
	if !s.cfg.AllowContextTransfer {
		writeError(w, http.StatusForbidden, "context transfer is disabled on this server")
		return
	}
	id := r.PathValue("id")
	ce, ok := s.lookupContext(id)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown context %q", id)
		return
	}
	if ce.Bundle == nil {
		// Installed before transfer was enabled, or rebuilt without a
		// bundle; reconstruct from the store if possible.
		if s.cfg.Store != nil {
			if data, err := s.cfg.Store.Get(kindContext, id); err == nil {
				var b ContextBundle
				if json.Unmarshal(data, &b) == nil {
					writeJSON(w, http.StatusOK, &b)
					return
				}
			}
		}
		writeError(w, http.StatusNotFound, "context %q has no exportable bundle", id)
		return
	}
	writeJSON(w, http.StatusOK, ce.Bundle)
}

// resultRecord is the stored form of a finished job's results.
type resultRecord struct {
	JobID      string        `json:"job_id"`
	Status     string        `json:"status"`
	Results    []BatchResult `json:"results"`
	FinishedAt time.Time     `json:"finished_at"`
}

// persistJobResult is the jobs.Manager OnFinish hook: completed results are
// written to the durable store before the job turns terminal, so a client
// that observes "done" can fetch the result even across a restart or after
// the in-memory TTL eviction.
func (s *Server) persistJobResult(snap jobs.Snapshot, result any) {
	if s.cfg.Store == nil || snap.Status != jobs.StatusDone {
		return
	}
	results, ok := result.([]BatchResult)
	if !ok {
		return
	}
	data, err := json.Marshal(resultRecord{
		JobID:      snap.ID,
		Status:     string(snap.Status),
		Results:    results,
		FinishedAt: snap.Finished,
	})
	if err != nil {
		return
	}
	// Best effort: a failed persist degrades to the old in-memory-only
	// behavior rather than failing the job.
	s.cfg.Store.Put(kindResult, snap.ID, data)
}

// fetchStoredResult serves the fetch-once contract from the durable store.
// The get-and-delete pair runs under resultMu so two concurrent fetches of
// a restart-survived result cannot both win.
func (s *Server) fetchStoredResult(id string) (*resultRecord, bool) {
	if s.cfg.Store == nil {
		return nil, false
	}
	s.resultMu.Lock()
	defer s.resultMu.Unlock()
	data, err := s.cfg.Store.Get(kindResult, id)
	if err != nil {
		return nil, false
	}
	var rec resultRecord
	if err := json.Unmarshal(data, &rec); err != nil {
		return nil, false
	}
	s.cfg.Store.Delete(kindResult, id)
	return &rec, true
}

// resultJanitor sweeps persisted artifacts whose lifetime exceeded their
// retention window — unfetched job results and stored ciphertext handles —
// so abandoned jobs and forgotten handles cannot grow the store without
// bound. The in-memory TTL still governs the job table; this only reclaims
// the durable copies. The tick is an eighth of the shortest enabled
// retention, clamped to [1s, 5min].
func (s *Server) resultJanitor() {
	defer s.janitorWG.Done()
	clampSweep := func(retention time.Duration) time.Duration {
		sweep := retention / 8
		if sweep > 5*time.Minute {
			sweep = 5 * time.Minute
		}
		if sweep < time.Second {
			sweep = time.Second
		}
		return sweep
	}
	resultRetention := s.cfg.ResultRetention
	if resultRetention == 0 {
		resultRetention = 24 * time.Hour
	}
	sweepResults := s.cfg.Store != nil && s.cfg.ResultRetention >= 0
	sweepHandles := s.handles.Retention() >= 0
	sweep := 5 * time.Minute
	if sweepResults {
		sweep = clampSweep(resultRetention)
	}
	if sweepHandles {
		if hs := clampSweep(s.handles.Retention()); hs < sweep {
			sweep = hs
		}
	}
	ticker := time.NewTicker(sweep)
	defer ticker.Stop()
	for {
		select {
		case <-s.janitorStop:
			return
		case <-ticker.C:
			if sweepResults {
				s.sweepResults(resultRetention)
			}
			if sweepHandles {
				s.handles.Sweep()
			}
		}
	}
}

func (s *Server) sweepResults(retention time.Duration) {
	ids, err := s.cfg.Store.List(kindResult)
	if err != nil {
		return
	}
	cutoff := time.Now().Add(-retention)
	for _, id := range ids {
		s.resultMu.Lock()
		data, err := s.cfg.Store.Get(kindResult, id)
		if err == nil {
			var rec resultRecord
			if json.Unmarshal(data, &rec) != nil || rec.FinishedAt.Before(cutoff) {
				s.cfg.Store.Delete(kindResult, id)
			}
		}
		s.resultMu.Unlock()
	}
}

// dropStoredResult removes a persisted result (after an in-memory fetch
// already delivered it, preserving fetch-once).
func (s *Server) dropStoredResult(id string) {
	if s.cfg.Store != nil {
		s.cfg.Store.Delete(kindResult, id)
	}
}

// storedResultExists reports whether an unfetched persisted result exists
// (without consuming it), for status queries about restart-survived jobs.
func (s *Server) storedResultExists(id string) (resultRecord, bool) {
	if s.cfg.Store == nil {
		return resultRecord{}, false
	}
	data, err := s.cfg.Store.Get(kindResult, id)
	if err != nil {
		return resultRecord{}, false
	}
	var rec resultRecord
	if err := json.Unmarshal(data, &rec); err != nil {
		return resultRecord{}, false
	}
	return rec, true
}
