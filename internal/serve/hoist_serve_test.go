package serve

import (
	"math/rand"
	"net/http"
	"strconv"
	"testing"

	"eva/internal/builder"
	"eva/internal/hetensor"
	"eva/internal/obs"
)

// matmulProgramRequest compiles a dim x dim diagonal-method matmul over a
// vecSize-slot vector into a CompileRequest — the hetensor workload whose
// rotations the executor dispatches as one hoisted batch.
func matmulProgramRequest(t testing.TB, vecSize, dim int) CompileRequest {
	t.Helper()
	rng := rand.New(rand.NewSource(21))
	b := builder.New("matmul", vecSize)
	tc := hetensor.NewCompiler(b, 25, 20)
	x := &hetensor.Vector{Value: b.InputWithWidth("x", dim, 30), Length: dim}
	weights := make([][]float64, dim)
	for i := range weights {
		weights[i] = make([]float64, dim)
		for j := range weights[i] {
			weights[i][j] = rng.Float64() - 0.5
		}
	}
	out, err := tc.Matmul("mm", x, weights, nil)
	if err != nil {
		t.Fatal(err)
	}
	b.Output("y", out.Value, 30)
	p, err := b.Program()
	if err != nil {
		t.Fatal(err)
	}
	return compileRequest(t, p)
}

// runMatmulJob compiles and executes the matmul workload as one async job on
// a fresh server and returns its finished trace.
func runMatmulJob(t *testing.T, cfg Config) obs.TraceJSON {
	t.Helper()
	cfg.AllowServerKeygen = true
	ts, _ := newTestServer(t, cfg)
	client := ts.Client()
	const dim = 8
	comp, resp := postJSON[CompileResponse](t, client, ts.URL+"/compile", matmulProgramRequest(t, 64, dim))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("compile: status %d", resp.StatusCode)
	}
	ctxResp, resp := postJSON[ContextResponse](t, client, ts.URL+"/contexts", ContextRequest{
		ProgramID: comp.ID,
		Keygen:    &KeygenJSON{Seed: 9},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("contexts: status %d", resp.StatusCode)
	}
	st, resp := postJSON[JobStatus](t, client, ts.URL+"/jobs", JobRequest{
		ProgramID: comp.ID,
		ContextID: ctxResp.ContextID,
		Batches:   []ExecuteBatch{{Values: map[string][]float64{"x": {1, 2, 3, 4, 5, 6, 7, 8}}}},
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("job submit: status %d", resp.StatusCode)
	}
	waitJobDone(t, client, ts.URL, st.JobID)
	return getJSON[obs.TraceJSON](t, client, ts.URL+"/jobs/"+st.JobID+"/trace")
}

// hoistedSpans walks a span tree counting rotate_hoisted spans and summing
// their "rotations" attributes.
func hoistedSpans(t *testing.T, spans []obs.SpanJSON) (batches, rotations int) {
	t.Helper()
	for _, sp := range spans {
		if sp.Name == "rotate_hoisted" {
			batches++
			n, err := strconv.Atoi(sp.Attrs["rotations"])
			if err != nil {
				t.Fatalf("rotate_hoisted span has rotations attr %q: %v", sp.Attrs["rotations"], err)
			}
			rotations += n
		}
		b, r := hoistedSpans(t, sp.Children)
		batches += b
		rotations += r
	}
	return batches, rotations
}

// TestJobTraceRecordsHoistedBatches executes a hetensor matmul through the
// jobs API and asserts — via the job's trace — that its rotations were
// dispatched as hoisted batches: the diagonal method needs dim-1 rotations of
// the shared input, so the trace must carry at least one rotate_hoisted span
// accounting for all of them.
func TestJobTraceRecordsHoistedBatches(t *testing.T) {
	tr := runMatmulJob(t, Config{})
	batches, rotations := hoistedSpans(t, tr.Spans)
	if batches < 1 || rotations < 7 {
		t.Fatalf("trace has %d rotate_hoisted spans covering %d rotations, want >= 1 covering >= 7", batches, rotations)
	}
}

// TestDisableHoistingSuppressesBatches runs the same workload with hoisting
// disabled server-wide and asserts no hoisted batches are dispatched (and the
// job still succeeds — the sequential path computes the same result).
func TestDisableHoistingSuppressesBatches(t *testing.T) {
	tr := runMatmulJob(t, Config{DisableHoisting: true})
	if batches, rotations := hoistedSpans(t, tr.Spans); batches != 0 {
		t.Fatalf("DisableHoisting run still traced %d rotate_hoisted spans (%d rotations)", batches, rotations)
	}
}
