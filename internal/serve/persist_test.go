package serve

import (
	"math"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	"eva/internal/store"
)

// persistentServer starts a server over a filesystem store rooted at dir.
func persistentServer(t testing.TB, dir string) (*httptest.Server, *Server, *store.FS) {
	t.Helper()
	st, err := store.OpenFS(dir)
	if err != nil {
		t.Fatal(err)
	}
	s := NewServer(Config{Store: st, AllowServerKeygen: true})
	ts := httptest.NewServer(s.Handler())
	return ts, s, st
}

func waitJobDone(t testing.TB, client *http.Client, base, jobID string) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		st := getJSON[JobStatus](t, client, base+"/jobs/"+jobID)
		switch st.Status {
		case "done":
			return
		case "failed", "cancelled":
			t.Fatalf("job %s terminal status %s: %s", jobID, st.Status, st.Error)
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s never finished", jobID)
}

// TestRestartDurability is the acceptance e2e for the artifact store: stop
// and restart a server onto the same data directory, then (a) execute a
// previously compiled program against a previously installed context with
// no recompilation round-trip, and (b) fetch the result of a job that
// finished before the restart — exactly once.
func TestRestartDurability(t *testing.T) {
	dir := t.TempDir()
	ts1, s1, st1 := persistentServer(t, dir)
	client := ts1.Client()
	prog := e2eProgram(t)

	comp, resp := postJSON[CompileResponse](t, client, ts1.URL+"/compile", compileRequest(t, prog))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("compile: status %d", resp.StatusCode)
	}
	ctxResp, resp := postJSON[ContextResponse](t, client, ts1.URL+"/contexts", ContextRequest{
		ProgramID: comp.ID,
		Keygen:    &KeygenJSON{Seed: 7},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("contexts: status %d", resp.StatusCode)
	}

	batch := ExecuteBatch{Values: map[string][]float64{
		"x": {1, 2, 3, 4, 5, 6, 7, 8},
		"y": {8, 7, 6, 5, 4, 3, 2, 1},
	}}
	// Reference run before the restart, for comparing output values after.
	execResp, resp := postJSON[ExecuteResponse](t, client, ts1.URL+"/execute/"+comp.ID, ExecuteRequest{
		ContextID: ctxResp.ContextID,
		Batches:   []ExecuteBatch{batch},
	})
	if resp.StatusCode != http.StatusOK || execResp.Results[0].Error != "" {
		t.Fatalf("pre-restart execute: status %d, err %q", resp.StatusCode, execResp.Results[0].Error)
	}
	want := execResp.Results[0].Values["out"]
	if len(want) == 0 {
		t.Fatal("pre-restart execute returned no output")
	}

	// A job that completes before the restart, result left unfetched.
	jobSt, resp := postJSON[JobStatus](t, client, ts1.URL+"/jobs", JobRequest{
		ProgramID: comp.ID,
		ContextID: ctxResp.ContextID,
		Batches:   []ExecuteBatch{batch},
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("job submit: status %d", resp.StatusCode)
	}
	waitJobDone(t, client, ts1.URL, jobSt.JobID)

	// "Crash" the node: close the HTTP frontend, the job subsystem, and the
	// store handle.
	ts1.Close()
	s1.Close()
	st1.Close()

	// Restart onto the same data directory.
	ts2, s2, st2 := persistentServer(t, dir)
	defer func() { ts2.Close(); s2.Close(); st2.Close() }()
	client2 := ts2.Client()

	// (a) Execute against the pre-restart program and context ids without
	// any /compile or /contexts round-trip.
	execResp2, resp := postJSON[ExecuteResponse](t, client2, ts2.URL+"/execute/"+comp.ID, ExecuteRequest{
		ContextID: ctxResp.ContextID,
		Batches:   []ExecuteBatch{batch},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-restart execute: status %d", resp.StatusCode)
	}
	if execResp2.Results[0].Error != "" {
		t.Fatalf("post-restart execute: %s", execResp2.Results[0].Error)
	}
	got := execResp2.Results[0].Values["out"]
	if len(got) != len(want) {
		t.Fatalf("post-restart output has %d values, want %d", len(got), len(want))
	}
	for i := range got {
		if math.Abs(got[i]-want[i]) > 1e-3 {
			t.Fatalf("post-restart output[%d] = %v, want %v", i, got[i], want[i])
		}
	}

	// The restored program id must be served from the store, not require a
	// client recompile: the registry counts it as a store load.
	if stats := s2.Registry().Stats(); stats.StoreLoads == 0 {
		t.Errorf("expected store loads after restart, got %+v", stats)
	}

	// (b) The pre-restart job's status and result survive; the result obeys
	// fetch-once.
	if st := getJSON[JobStatus](t, client2, ts2.URL+"/jobs/"+jobSt.JobID); st.Status != "done" {
		t.Fatalf("post-restart job status %q, want done", st.Status)
	}
	jr := getJSON[JobResult](t, client2, ts2.URL+"/jobs/"+jobSt.JobID+"/result")
	if len(jr.Results) != 1 || jr.Results[0].Error != "" {
		t.Fatalf("post-restart job result: %+v", jr)
	}
	for i, v := range jr.Results[0].Values["out"] {
		if math.Abs(v-want[i]) > 1e-3 {
			t.Fatalf("job result[%d] = %v, want %v", i, v, want[i])
		}
	}
	refetch, err := client2.Get(ts2.URL + "/jobs/" + jobSt.JobID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	refetch.Body.Close()
	if refetch.StatusCode == http.StatusOK {
		t.Fatal("job result was fetchable twice after a restart")
	}

	// The metrics report must expose the store section.
	metrics := getJSON[MetricsReport](t, client2, ts2.URL+"/metrics")
	if metrics.Store == nil || metrics.Store.Backend != "fs" || metrics.Store.Entries == 0 {
		t.Errorf("metrics store section: %+v", metrics.Store)
	}
}

// TestHandleRestartDurability: a ciphertext handle produced by a job before
// a restart resolves as an execution input after the restart onto the same
// data directory — the content-addressed registry is stateless over the
// durable store.
func TestHandleRestartDurability(t *testing.T) {
	dir := t.TempDir()
	ts1, s1, st1 := persistentServer(t, dir)
	client := ts1.Client()
	p1, c1, p2, c2 := pipelinePrograms(t, client, ts1.URL)

	x := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	y := []float64{4, 4, 4, 4, 2, 2, 2, 2}
	jobSt, resp := postJSON[JobStatus](t, client, ts1.URL+"/jobs", JobRequest{
		ProgramID: p1,
		ContextID: c1,
		Batches:   []ExecuteBatch{{Values: map[string][]float64{"x": x, "y": y}}},
		Output:    "handle",
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("job submit: status %d", resp.StatusCode)
	}
	waitJobDone(t, client, ts1.URL, jobSt.JobID)
	jr := getJSON[JobResult](t, client, ts1.URL+"/jobs/"+jobSt.JobID+"/result")
	handleID := jr.Results[0].Handles["out"]
	if handleID == "" {
		t.Fatalf("job produced no handle: %+v", jr.Results)
	}

	ts1.Close()
	s1.Close()
	st1.Close()

	ts2, s2, st2 := persistentServer(t, dir)
	defer func() { ts2.Close(); s2.Close(); st2.Close() }()
	client2 := ts2.Client()

	rec := getJSON[HandleRecordJSON](t, client2, ts2.URL+"/handles/"+handleID)
	if rec.Meta.ID != handleID || rec.Meta.ContextID != c1 || len(rec.Cipher) == 0 {
		t.Fatalf("post-restart handle record implausible: %+v (%d cipher bytes)", rec.Meta, len(rec.Cipher))
	}

	// Consume the pre-restart handle in the successor program without any
	// re-encryption or client round-trip of the ciphertext.
	execResp, resp := postJSON[ExecuteResponse](t, client2, ts2.URL+"/execute/"+p2, ExecuteRequest{
		ContextID: c2,
		Batches:   []ExecuteBatch{{Handles: map[string]string{"z": handleID}}},
		Output:    "values",
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-restart execute: status %d", resp.StatusCode)
	}
	if execResp.Results[0].Error != "" {
		t.Fatalf("post-restart execute: %s", execResp.Results[0].Error)
	}
	got := execResp.Results[0].Values["out2"]
	for i := range x {
		want := x[i] * y[i] * 0.5
		if math.Abs(got[i]-want) > 1e-2 {
			t.Errorf("slot %d: got %v, want %v", i, got[i], want)
		}
	}
}

// TestResultPersistsAcrossTTL: with a store configured, a result whose
// in-memory record was TTL-evicted is still fetchable exactly once.
func TestResultPersistsAcrossTTL(t *testing.T) {
	st := store.NewMemory()
	s := NewServer(Config{Store: st, AllowServerKeygen: true, JobResultTTL: 30 * time.Millisecond})
	ts := httptest.NewServer(s.Handler())
	defer func() { ts.Close(); s.Close() }()
	client := ts.Client()
	prog := e2eProgram(t)

	comp, _ := postJSON[CompileResponse](t, client, ts.URL+"/compile", compileRequest(t, prog))
	ctxResp, _ := postJSON[ContextResponse](t, client, ts.URL+"/contexts", ContextRequest{
		ProgramID: comp.ID, Keygen: &KeygenJSON{Seed: 3},
	})
	jobSt, resp := postJSON[JobStatus](t, client, ts.URL+"/jobs", JobRequest{
		ProgramID: comp.ID,
		ContextID: ctxResp.ContextID,
		Batches: []ExecuteBatch{{Values: map[string][]float64{
			"x": {1, 1, 1, 1, 1, 1, 1, 1}, "y": {2, 2, 2, 2, 2, 2, 2, 2},
		}}},
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d", resp.StatusCode)
	}
	waitJobDone(t, client, ts.URL, jobSt.JobID)

	// Outlive the TTL so the in-memory job record is evicted.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, ok := s.Jobs().Get(jobSt.JobID); !ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job record never TTL-evicted")
		}
		time.Sleep(10 * time.Millisecond)
	}

	jr := getJSON[JobResult](t, client, ts.URL+"/jobs/"+jobSt.JobID+"/result")
	if len(jr.Results) != 1 || jr.Results[0].Error != "" {
		t.Fatalf("post-TTL fetch: %+v", jr)
	}
	second, err := client.Get(ts.URL + "/jobs/" + jobSt.JobID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	second.Body.Close()
	if second.StatusCode == http.StatusOK {
		t.Fatal("fetch-once violated after TTL eviction")
	}
}

// TestResultRetentionSweep: persisted results abandoned past the retention
// window are reclaimed by the janitor.
func TestResultRetentionSweep(t *testing.T) {
	st := store.NewMemory()
	s := NewServer(Config{Store: st, AllowServerKeygen: true, ResultRetention: 50 * time.Millisecond})
	ts := httptest.NewServer(s.Handler())
	defer func() { ts.Close(); s.Close() }()
	client := ts.Client()
	prog := e2eProgram(t)

	comp, _ := postJSON[CompileResponse](t, client, ts.URL+"/compile", compileRequest(t, prog))
	ctxResp, _ := postJSON[ContextResponse](t, client, ts.URL+"/contexts", ContextRequest{
		ProgramID: comp.ID, Keygen: &KeygenJSON{Seed: 4},
	})
	jobSt, _ := postJSON[JobStatus](t, client, ts.URL+"/jobs", JobRequest{
		ProgramID: comp.ID, ContextID: ctxResp.ContextID,
		Batches: []ExecuteBatch{{Values: map[string][]float64{
			"x": {1, 1, 1, 1, 1, 1, 1, 1}, "y": {1, 1, 1, 1, 1, 1, 1, 1},
		}}},
	})
	waitJobDone(t, client, ts.URL, jobSt.JobID)

	deadline := time.Now().Add(10 * time.Second)
	for {
		ids, err := st.List("result")
		if err != nil {
			t.Fatal(err)
		}
		if len(ids) == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("abandoned result never swept: %v", ids)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestContextBundleTransfer: exporting a context's bundle and installing it
// on a second server yields a context that executes (and, for demo
// contexts, decrypts) identically — the replication primitive the cluster
// tier is built on.
func TestContextBundleTransfer(t *testing.T) {
	tsA, sA := newTestServer(t, Config{AllowServerKeygen: true, AllowContextTransfer: true})
	tsB, _ := newTestServer(t, Config{AllowServerKeygen: true, AllowContextTransfer: true})
	client := tsA.Client()
	prog := e2eProgram(t)

	comp, _ := postJSON[CompileResponse](t, client, tsA.URL+"/compile", compileRequest(t, prog))
	ctxResp, _ := postJSON[ContextResponse](t, client, tsA.URL+"/contexts", ContextRequest{
		ProgramID: comp.ID, ContextID: "shared-ctx-1", Keygen: &KeygenJSON{Seed: 9},
	})
	if ctxResp.ContextID != "shared-ctx-1" {
		t.Fatalf("assigned context id not honored: %q", ctxResp.ContextID)
	}

	bundle := getJSON[ContextBundle](t, client, tsA.URL+"/contexts/shared-ctx-1/bundle")
	if !bundle.Demo || bundle.Secret == "" || bundle.Relin == "" {
		t.Fatalf("demo bundle incomplete: %+v", bundle)
	}

	// The peer needs the program first (the cluster router ships it through
	// /compile with the exact original options).
	source, opts, ok := sA.ProgramSource(comp.ID)
	if !ok {
		t.Fatal("program source unavailable on the origin node")
	}
	optsJSON := OptionsJSON(opts)
	compB, resp := postJSON[CompileResponse](t, client, tsB.URL+"/compile", CompileRequest{
		Program: source, Options: &optsJSON,
	})
	if resp.StatusCode != http.StatusOK || compB.ID != comp.ID {
		t.Fatalf("peer compile: status %d id %s want %s", resp.StatusCode, compB.ID, comp.ID)
	}

	installResp, resp := postJSON[ContextResponse](t, client, tsB.URL+"/contexts", ContextRequest{
		ProgramID: comp.ID, ContextID: "shared-ctx-1", Bundle: &bundle,
	})
	if resp.StatusCode != http.StatusOK || installResp.ContextID != "shared-ctx-1" {
		t.Fatalf("bundle install: status %d, %+v", resp.StatusCode, installResp)
	}
	// Replays are idempotent.
	_, resp = postJSON[ContextResponse](t, client, tsB.URL+"/contexts", ContextRequest{
		ProgramID: comp.ID, ContextID: "shared-ctx-1", Bundle: &bundle,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("bundle replay: status %d", resp.StatusCode)
	}

	batch := ExecuteBatch{Values: map[string][]float64{
		"x": {3, 1, 4, 1, 5, 9, 2, 6}, "y": {2, 7, 1, 8, 2, 8, 1, 8},
	}}
	outA, _ := postJSON[ExecuteResponse](t, client, tsA.URL+"/execute/"+comp.ID, ExecuteRequest{
		ContextID: "shared-ctx-1", Batches: []ExecuteBatch{batch},
	})
	outB, _ := postJSON[ExecuteResponse](t, client, tsB.URL+"/execute/"+comp.ID, ExecuteRequest{
		ContextID: "shared-ctx-1", Batches: []ExecuteBatch{batch},
	})
	if outA.Results[0].Error != "" || outB.Results[0].Error != "" {
		t.Fatalf("execute errors: %q / %q", outA.Results[0].Error, outB.Results[0].Error)
	}
	a, b := outA.Results[0].Values["out"], outB.Results[0].Values["out"]
	if len(a) == 0 || len(a) != len(b) {
		t.Fatalf("output lengths %d vs %d", len(a), len(b))
	}
	// Each node encrypts the demo inputs with fresh randomness, so the
	// outputs agree to CKKS approximation error, not bit-exactly.
	for i := range a {
		if math.Abs(a[i]-b[i]) > 1e-3 {
			t.Fatalf("replicated context diverged at [%d]: %v vs %v", i, a[i], b[i])
		}
	}
}

// TestBundleTransferGated: without AllowContextTransfer both the export and
// the import surface are 403.
func TestBundleTransferGated(t *testing.T) {
	ts, _ := newTestServer(t, Config{AllowServerKeygen: true})
	client := ts.Client()
	prog := e2eProgram(t)
	comp, _ := postJSON[CompileResponse](t, client, ts.URL+"/compile", compileRequest(t, prog))
	_, _ = postJSON[ContextResponse](t, client, ts.URL+"/contexts", ContextRequest{
		ProgramID: comp.ID, ContextID: "gated", Keygen: &KeygenJSON{Seed: 1},
	})
	resp, err := client.Get(ts.URL + "/contexts/gated/bundle")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusForbidden {
		t.Errorf("bundle export without transfer enabled: status %d, want 403", resp.StatusCode)
	}
	_, postResp := postJSON[apiError](t, client, ts.URL+"/contexts", ContextRequest{
		ProgramID: comp.ID, ContextID: "gated2", Bundle: &ContextBundle{ProgramID: comp.ID},
	})
	if postResp.StatusCode != http.StatusForbidden {
		t.Errorf("bundle import without transfer enabled: status %d, want 403", postResp.StatusCode)
	}
}

// TestOptionsJSONRoundTrip: OptionsJSON → toOptions must reproduce the
// exact options struct, otherwise a program shipped between nodes would
// hash to a different id on arrival.
func TestOptionsJSONRoundTrip(t *testing.T) {
	cases := []*CompileOptionsJSON{
		nil,
		{AllowInsecure: true},
		{MaxRescaleLog: 40, WaterlineLog: 25, Rescale: "always", ModSwitch: "lazy", MinLogN: 12, Optimize: true},
		{Rescale: "fixed", ModSwitch: "none", AllowInsecure: true},
		{MaxRescaleLog: 30, AllowInsecure: true, ExtraLevels: 2},
	}
	for i, c := range cases {
		opts, err := c.toOptions()
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		wire := OptionsJSON(opts)
		back, err := wire.toOptions()
		if err != nil {
			t.Fatalf("case %d round-trip: %v", i, err)
		}
		if !reflect.DeepEqual(opts, back) {
			t.Errorf("case %d: %+v round-tripped to %+v", i, opts, back)
		}
	}
}
