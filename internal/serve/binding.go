package serve

import (
	"context"
	"encoding/base64"
	"errors"
	"fmt"

	"eva/internal/ckks"
	"eva/internal/compile"
	"eva/internal/execute"
	"eva/internal/handle"
)

// InputBinding is one wire-level input binding, shared by every execution
// entry point: /execute and /jobs batches (via ExecuteBatch.binding),
// coalesced submissions that fall back to the uncoalesced path, and pipeline
// stages (where PipelineInput is an alias of this type). Exactly one source
// must be set for a Cipher program input: Handle (a stored handle id), Stage
// (pipelines only: a 0-based index of an earlier stage, whose output named
// Output — defaulting to the producer's single encrypted output — feeds this
// input), Cipher (an inline base64 ciphertext), or Values (demo-mode
// plaintext, encrypted server-side). Plain program inputs take Plain (or
// Values).
type InputBinding struct {
	Handle string    `json:"handle,omitempty"`
	Stage  *int      `json:"stage,omitempty"`
	Output string    `json:"output,omitempty"`
	Cipher string    `json:"cipher,omitempty"`
	Values []float64 `json:"values,omitempty"`
	Plain  []float64 `json:"plain,omitempty"`
}

// binding folds one input's wire fields into the shared InputBinding view, so
// the batch entry points resolve inputs through the same code path as
// pipeline stages.
func (b *ExecuteBatch) binding(name string) InputBinding {
	return InputBinding{
		Cipher: b.Cipher[name],
		Handle: b.Handles[name],
		Plain:  b.Plain[name],
		Values: b.Values[name],
	}
}

// bindingResolver resolves InputBindings against one (context, program) pair.
// It owns the per-program chaining requirements (input level floors, the
// parameter fingerprint), computed lazily on the first handle or stage edge,
// and shares one handleCache across everything resolved for a request.
//
// The resolver returns errors without an entry-point prefix — callers add
// their own ("input %q:" on the batch paths, "stage %d: input %q:" on
// pipelines) — except chaining violations, which come back as *compatError so
// handlers can map them to structured 422s.
type bindingResolver struct {
	s        *Server
	ce       *contextEntry
	res      *compile.Result
	cache    *handleCache
	required map[string]int
	fpr      string
}

func (s *Server) newBindingResolver(ce *contextEntry, res *compile.Result, cache *handleCache) *bindingResolver {
	return &bindingResolver{s: s, ce: ce, res: res, cache: cache}
}

// want is the chaining requirement a stored handle (or upstream pipeline
// stage output) must satisfy to feed the named Cipher input.
func (r *bindingResolver) want(name string, logScale float64) handle.Want {
	if r.required == nil {
		r.required = requiredInputLevels(r.res)
		r.fpr = paramsFingerprint(r.ce.Ctx.Params)
	}
	return handle.Want{
		MinLevel: r.required[name],
		LogScale: logScale,
		Width:    r.res.Program.VecSize,
		ParamsID: r.fpr,
	}
}

// plain resolves a Plain program input from its binding: Plain takes
// precedence over Values. ok reports whether the binding carried either; the
// caller renders its own missing-value error when it did not.
func (r *bindingResolver) plain(name string, b InputBinding) (full []float64, ok bool, err error) {
	v := b.Plain
	if v == nil {
		v = b.Values
	}
	if v == nil {
		return nil, false, nil
	}
	full, err = execute.PreparePlain(r.res, name, v)
	return full, true, err
}

// cipherFromWire decodes an inline base64 ciphertext and validates it against
// the context's parameters. Malformed uploads are rejected before the
// executor touches them: the ring layer assumes well-shaped NTT operands.
func (r *bindingResolver) cipherFromWire(b64 string) (*ckks.Ciphertext, error) {
	data, err := base64.StdEncoding.DecodeString(b64)
	if err != nil {
		return nil, err
	}
	ct := &ckks.Ciphertext{}
	if err := ct.UnmarshalBinary(data); err != nil {
		return nil, err
	}
	if err := ct.Validate(r.ce.Ctx.Params); err != nil {
		return nil, err
	}
	return ct, nil
}

// cipherFromHandle resolves a handle reference (locally or from a peer) and
// checks it against the consuming input's chaining requirements. Chaining
// violations come back as *compatError; a resolution failure wraps
// handle.ErrNotFound for status mapping.
func (r *bindingResolver) cipherFromHandle(stdctx context.Context, name, id string, logScale float64) (*resolvedHandle, error) {
	rh, err := r.s.resolveHandle(stdctx, id, r.cache)
	if err != nil {
		return nil, err
	}
	if err := rh.meta.Check(r.want(name, logScale)); err != nil {
		var m *handle.Mismatch
		if errors.As(err, &m) {
			return nil, &compatError{input: name, mismatch: m}
		}
		return nil, err
	}
	if err := rh.ct.Validate(r.ce.Ctx.Params); err != nil {
		return nil, fmt.Errorf("handle %s: %w", id, err)
	}
	return rh, nil
}
