package serve

import (
	"net/http"

	"eva/internal/profile"
)

// handleProfile serves GET /profile: the instruction profiler's aggregated
// flight-recorder report — per-(opcode, level) latency/alloc histograms,
// drift events with trace-id exemplars, per-program sample counts, and the
// installed calibration. In a cluster, ?scope=cluster on the cluster handler
// scatter-gathers this endpoint across nodes and merges the reports.
func (s *Server) handleProfile(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.profiles.Report())
}

// Profiles exposes the instruction profiler (for tests, the cluster tier,
// and tooling).
func (s *Server) Profiles() *profile.Collector { return s.profiles }
