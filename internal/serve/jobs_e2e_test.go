package serve

import (
	"bufio"
	"context"
	"math"
	"net/http"
	"strings"
	"testing"
	"time"

	"eva/internal/execute"
	"eva/internal/jobs"
)

// jobsFixture compiles the e2e program and installs a demo (server-keygen)
// context, returning everything a jobs test needs.
type jobsFixture struct {
	url       string
	client    *http.Client
	srv       *Server
	programID string
	contextID string
	inputs    execute.Inputs
}

func newJobsFixture(t *testing.T, cfg Config) *jobsFixture {
	t.Helper()
	cfg.AllowServerKeygen = true
	ts, srv := newTestServer(t, cfg)
	client := ts.Client()
	comp, resp := postJSON[CompileResponse](t, client, ts.URL+"/compile", compileRequest(t, e2eProgram(t)))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("compile: status %d", resp.StatusCode)
	}
	ctxResp, resp := postJSON[ContextResponse](t, client, ts.URL+"/contexts", ContextRequest{
		ProgramID: comp.ID,
		Keygen:    &KeygenJSON{Seed: 5},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("contexts: status %d", resp.StatusCode)
	}
	return &jobsFixture{
		url:       ts.URL,
		client:    client,
		srv:       srv,
		programID: comp.ID,
		contextID: ctxResp.ContextID,
		inputs:    execute.Inputs{"x": {1, 2, 3, 4, 5, 6, 7, 8}, "y": {8, 7, 6, 5, 4, 3, 2, 1}},
	}
}

func (f *jobsFixture) submit(t *testing.T, batches int) (JobStatus, *http.Response) {
	t.Helper()
	sets := make([]ExecuteBatch, batches)
	for i := range sets {
		sets[i] = ExecuteBatch{Values: f.inputs}
	}
	return postJSON[JobStatus](t, f.client, f.url+"/jobs", JobRequest{
		ProgramID: f.programID,
		ContextID: f.contextID,
		Batches:   sets,
	})
}

// readSSE consumes a /jobs/{id}/events stream until it ends, returning the
// event type sequence.
func readSSE(t *testing.T, client *http.Client, url string) []string {
	t.Helper()
	resp, err := client.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q; want text/event-stream", ct)
	}
	var types []string
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		if ev, ok := strings.CutPrefix(sc.Text(), "event: "); ok {
			types = append(types, ev)
		}
	}
	return types
}

// TestJobsEnqueueStreamFetch is the happy path: enqueue, watch the SSE
// stream run queued → running → batch… → done, fetch the result once, and
// check it matches the unencrypted reference execution.
func TestJobsEnqueueStreamFetch(t *testing.T) {
	f := newJobsFixture(t, Config{})
	status, resp := f.submit(t, 2)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /jobs: status %d", resp.StatusCode)
	}
	if status.Status == "" || status.JobID == "" {
		t.Fatalf("bad submit response: %+v", status)
	}
	if loc := resp.Header.Get("Location"); loc != "/jobs/"+status.JobID {
		t.Errorf("Location = %q", loc)
	}

	types := readSSE(t, f.client, f.url+"/jobs/"+status.JobID+"/events")
	want := []string{"queued", "running", "batch", "batch", "done"}
	if strings.Join(types, ",") != strings.Join(want, ",") {
		t.Fatalf("event sequence %v; want %v", types, want)
	}

	final := getJSON[JobStatus](t, f.client, f.url+"/jobs/"+status.JobID)
	if final.Status != "done" || final.BatchesDone != 2 {
		t.Fatalf("final status %+v", final)
	}

	result := getJSON[JobResult](t, f.client, f.url+"/jobs/"+status.JobID+"/result")
	if len(result.Results) != 2 {
		t.Fatalf("%d results; want 2", len(result.Results))
	}
	ref, err := execute.RunReference(e2eProgram(t), f.inputs)
	if err != nil {
		t.Fatal(err)
	}
	for b, br := range result.Results {
		if br.Error != "" {
			t.Fatalf("batch %d error: %s", b, br.Error)
		}
		for j, wantV := range ref["out"] {
			if math.Abs(br.Values["out"][j]-wantV) > 1e-2 {
				t.Errorf("batch %d slot %d: got %v, want %v", b, j, br.Values["out"][j], wantV)
			}
		}
	}

	// Fetch-once: the second fetch is 410 Gone.
	resp2, err := f.client.Get(f.url + "/jobs/" + status.JobID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusGone {
		t.Errorf("second result fetch: status %d; want 410", resp2.StatusCode)
	}
}

// TestJobsQueueFull fills the single worker and the depth-1 queue with
// blocked jobs, then checks a submission over HTTP is shed with 429 and a
// Retry-After hint.
func TestJobsQueueFull(t *testing.T) {
	f := newJobsFixture(t, Config{JobWorkers: 1, JobQueueDepth: 1})
	release := make(chan struct{})
	defer close(release)
	blocked := func(ctx context.Context, _ func(int)) (any, error) {
		select {
		case <-release:
		case <-ctx.Done():
		}
		return nil, ctx.Err()
	}
	first, err := f.srv.Jobs().Submit(1, 0, blocked)
	if err != nil {
		t.Fatal(err)
	}
	// Wait for the worker to pick the first job up so the queue slot frees.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if s, ok := f.srv.Jobs().Get(first.ID); ok && s.Status == jobs.StatusRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("first job never started")
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := f.srv.Jobs().Submit(1, 0, blocked); err != nil {
		t.Fatal(err)
	}

	errBody, resp := f.submit(t, 1)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("submit with full queue: status %d (%+v); want 429", resp.StatusCode, errBody)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After header")
	}
	if shed := f.srv.Jobs().Stats().Shed; shed != 1 {
		t.Errorf("shed count = %d; want 1", shed)
	}
}

// TestJobsMemoryBudgetShed exhausts the admitted-bytes budget and checks the
// next submission is shed with 429, and that a job bigger than the whole
// budget is rejected with 413.
func TestJobsMemoryBudgetShed(t *testing.T) {
	budget := int64(64 << 20)
	f := newJobsFixture(t, Config{JobWorkers: 1, JobQueueDepth: 8, JobMemoryBudgetBytes: budget})
	release := make(chan struct{})
	defer close(release)
	_, err := f.srv.Jobs().Submit(1, budget, func(ctx context.Context, _ func(int)) (any, error) {
		select {
		case <-release:
		case <-ctx.Done():
		}
		return nil, ctx.Err()
	})
	if err != nil {
		t.Fatal(err)
	}
	errBody, resp := f.submit(t, 1)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("submit over budget: status %d (%+v); want 429", resp.StatusCode, errBody)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After header")
	}
}

// TestJobsResultTTLEviction: finished jobs and their unfetched results are
// evicted after the TTL; later polls and fetches 404.
func TestJobsResultTTLEviction(t *testing.T) {
	f := newJobsFixture(t, Config{JobResultTTL: 50 * time.Millisecond})
	status, resp := f.submit(t, 1)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /jobs: status %d", resp.StatusCode)
	}
	readSSE(t, f.client, f.url+"/jobs/"+status.JobID+"/events") // wait for done
	deadline := time.Now().Add(10 * time.Second)
	for {
		r, err := f.client.Get(f.url + "/jobs/" + status.JobID)
		if err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		if r.StatusCode == http.StatusNotFound {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never evicted after TTL")
		}
		time.Sleep(5 * time.Millisecond)
	}
	r, err := f.client.Get(f.url + "/jobs/" + status.JobID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusNotFound {
		t.Errorf("result fetch after TTL: status %d; want 404", r.StatusCode)
	}
}

// TestJobsCancelMidRun submits a long multi-batch job, waits for the first
// batch to finish, cancels over HTTP, and checks the job terminates as
// cancelled without running every batch.
func TestJobsCancelMidRun(t *testing.T) {
	f := newJobsFixture(t, Config{JobWorkers: 1})
	const batches = 64
	status, resp := f.submit(t, batches)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /jobs: status %d", resp.StatusCode)
	}
	id := status.JobID

	// Follow the stream until the first batch completes, then cancel.
	sresp, err := f.client.Get(f.url + "/jobs/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	sc := bufio.NewScanner(sresp.Body)
	for sc.Scan() {
		if strings.HasPrefix(sc.Text(), "event: batch") {
			break
		}
	}
	req, err := http.NewRequest(http.MethodDelete, f.url+"/jobs/"+id, nil)
	if err != nil {
		t.Fatal(err)
	}
	dresp, err := f.client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE /jobs/%s: status %d", id, dresp.StatusCode)
	}

	deadline := time.Now().Add(30 * time.Second)
	var final JobStatus
	for {
		final = getJSON[JobStatus](t, f.client, f.url+"/jobs/"+id)
		if final.Status == string(jobs.StatusCancelled) {
			break
		}
		if final.Status == string(jobs.StatusDone) {
			t.Skip("job finished before the cancel landed; nothing to assert")
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %q after cancel", final.Status)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if final.BatchesDone >= batches {
		t.Errorf("all %d batches ran despite cancellation", batches)
	}
	r, err := f.client.Get(f.url + "/jobs/" + id + "/result")
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusGone {
		t.Errorf("result of cancelled job: status %d; want 410", r.StatusCode)
	}
}

// TestJobsValidationErrors: bad submissions fail fast with 4xx.
func TestJobsValidationErrors(t *testing.T) {
	f := newJobsFixture(t, Config{})
	cases := []struct {
		name string
		req  JobRequest
		want int
	}{
		{"unknown context", JobRequest{ProgramID: f.programID, ContextID: "nope", Batches: []ExecuteBatch{{Values: f.inputs}}}, http.StatusNotFound},
		{"program mismatch", JobRequest{ProgramID: "wrong", ContextID: f.contextID, Batches: []ExecuteBatch{{Values: f.inputs}}}, http.StatusConflict},
		{"no batches", JobRequest{ProgramID: f.programID, ContextID: f.contextID}, http.StatusBadRequest},
		{"bad scheduler", JobRequest{ProgramID: f.programID, ContextID: f.contextID, Scheduler: "warp", Batches: []ExecuteBatch{{Values: f.inputs}}}, http.StatusBadRequest},
		{"missing input", JobRequest{ProgramID: f.programID, ContextID: f.contextID, Batches: []ExecuteBatch{{Plain: map[string][]float64{"x": {1}}}}}, http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			body, resp := postJSON[apiError](t, f.client, f.url+"/jobs", tc.req)
			if resp.StatusCode != tc.want {
				t.Fatalf("status %d (%+v); want %d", resp.StatusCode, body, tc.want)
			}
		})
	}
	// Unknown job ids 404 on every job route.
	for _, url := range []string{"/jobs/deadbeef", "/jobs/deadbeef/events", "/jobs/deadbeef/result"} {
		r, err := f.client.Get(f.url + url)
		if err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		if r.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s: status %d; want 404", url, r.StatusCode)
		}
	}
}

// TestJobsMetricsSurface: /metrics carries the queue counters.
func TestJobsMetricsSurface(t *testing.T) {
	f := newJobsFixture(t, Config{})
	status, resp := f.submit(t, 1)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /jobs: status %d", resp.StatusCode)
	}
	readSSE(t, f.client, f.url+"/jobs/"+status.JobID+"/events")
	report := getJSON[MetricsReport](t, f.client, f.url+"/metrics")
	if report.Jobs.Submitted != 1 || report.Jobs.Completed != 1 {
		t.Errorf("jobs metrics = %+v; want submitted=1 completed=1", report.Jobs)
	}
	if report.Jobs.BudgetBytes <= 0 || report.Jobs.Workers <= 0 {
		t.Errorf("jobs config metrics not populated: %+v", report.Jobs)
	}
}
