package serve

import (
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"eva/internal/execute"
	"eva/internal/obs"
	"eva/internal/store"
)

// TestJobTraceEndToEnd: a submitted job answers with a trace id (header and
// body), and GET /jobs/{id}/trace yields a span tree whose execute spans
// carry per-opcode totals matching the opcodes the program runs.
func TestJobTraceEndToEnd(t *testing.T) {
	f := newJobsFixture(t, Config{Store: store.NewMemory()})
	status, resp := f.submit(t, 2)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /jobs: status %d", resp.StatusCode)
	}
	if resp.Header.Get(obs.TraceHeader) == "" {
		t.Error("submit response carries no X-Eva-Trace header")
	}
	if status.TraceID == "" {
		t.Fatalf("submit response carries no trace_id: %+v", status)
	}
	if got := resp.Header.Get(obs.TraceHeader); got != status.TraceID {
		t.Errorf("header trace id %q != body trace id %q", got, status.TraceID)
	}
	waitJobDone(t, f.client, f.url, status.JobID)

	tr := getJSON[obs.TraceJSON](t, f.client, f.url+"/jobs/"+status.JobID+"/trace")
	if tr.TraceID != status.TraceID {
		t.Errorf("trace id %q; want %q", tr.TraceID, status.TraceID)
	}
	if tr.JobID != status.JobID {
		t.Errorf("trace job id %q; want %q", tr.JobID, status.JobID)
	}
	if !tr.Finished {
		t.Error("trace not finished after the job completed")
	}

	// Collect span names and execute-span attrs from the tree.
	names := map[string]int{}
	var execAttrs []map[string]string
	var walk func(spans []obs.SpanJSON)
	walk = func(spans []obs.SpanJSON) {
		for _, sp := range spans {
			names[sp.Name]++
			if sp.Name == "execute" {
				execAttrs = append(execAttrs, sp.Attrs)
			}
			walk(sp.Children)
		}
	}
	walk(tr.Spans)
	for _, want := range []string{"route:jobs_submit", "admission", "queue_wait", "store_write"} {
		if names[want] == 0 {
			t.Errorf("span %q missing from trace (have %v)", want, names)
		}
	}
	if names["execute"] != 2 {
		t.Errorf("%d execute spans; want 2 (one per batch)", names["execute"])
	}
	// The e2e program squares (RELINEARIZE+RESCALE), rotates, multiplies:
	// each execute span's per-op attrs must name those opcodes, matching
	// what RunStats reported for the batch.
	for i, attrs := range execAttrs {
		for _, op := range []string{"MULTIPLY", "RELINEARIZE", "RESCALE", "ROTATE_LEFT"} {
			if _, ok := attrs["op."+op+"_ms"]; !ok {
				t.Errorf("execute span %d: missing op.%s_ms attr (have %v)", i, op, attrs)
			}
		}
		if attrs["instructions_done"] == "" || attrs["instructions_done"] != attrs["instructions_total"] {
			t.Errorf("execute span %d: instruction progress %q/%q not complete",
				i, attrs["instructions_done"], attrs["instructions_total"])
		}
	}

	// The finished trace is also visible in the ring.
	traces := getJSON[TracesResponse](t, f.client, f.url+"/traces?limit=10")
	found := false
	for _, rt := range traces.Traces {
		if rt.TraceID == status.TraceID {
			found = true
		}
	}
	if !found {
		t.Errorf("trace %s not in GET /traces (got %d traces)", status.TraceID, traces.Count)
	}
}

// TestPrometheusConformance scrapes GET /metrics?format=prometheus after
// exercising the request, jobs, and store paths, and validates the output
// with the strict exposition parser: well-formed families, consistent
// histograms, and the families an operator's dashboards depend on.
func TestPrometheusConformance(t *testing.T) {
	f := newJobsFixture(t, Config{Store: store.NewMemory()})
	status, resp := f.submit(t, 1)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /jobs: status %d", resp.StatusCode)
	}
	waitJobDone(t, f.client, f.url, status.JobID)
	// A 404 so the per-route counters carry a non-2xx class.
	if r, err := f.client.Get(f.url + "/jobs/nope"); err == nil {
		io.Copy(io.Discard, r.Body)
		r.Body.Close()
	}

	r, err := f.client.Get(f.url + "/metrics?format=prometheus")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	if ct := r.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("Content-Type = %q; want the 0.0.4 text exposition", ct)
	}
	data, err := io.ReadAll(r.Body)
	if err != nil {
		t.Fatal(err)
	}
	families, err := obs.ParseExposition(data)
	if err != nil {
		t.Fatalf("exposition does not parse: %v\n%s", err, data)
	}
	for _, name := range []string{
		"eva_uptime_seconds",
		"eva_requests_total",
		"eva_request_duration_seconds",
		"eva_executions_total",
		"eva_op_duration_seconds",
		"eva_cache_entries",
		"eva_jobs_submitted_total",
		"eva_jobs_queue_depth",
		"eva_coalesce_batches_total",
		"eva_store_entries",
		"eva_trace_phase_duration_seconds",
	} {
		if _, ok := families[name]; !ok {
			t.Errorf("family %q missing from exposition", name)
		}
	}
	// Status classes must be distinguishable per route.
	req := families["eva_requests_total"]
	if req != nil {
		have2xx, have4xx := false, false
		for _, s := range req.Samples {
			switch s.Labels["code"] {
			case "2xx":
				have2xx = true
			case "4xx":
				have4xx = true
			}
		}
		if !have2xx || !have4xx {
			t.Errorf("eva_requests_total lacks status classes (2xx=%v 4xx=%v)", have2xx, have4xx)
		}
	}
	// The JSON report is unchanged by the Prometheus surface and still
	// carries the node id in single-node mode.
	report := getJSON[MetricsReport](t, f.client, f.url+"/metrics")
	if report.Node == "" {
		t.Error("MetricsReport.Node empty in single-node mode")
	}
	if len(report.Requests) == 0 || len(report.RequestsByClass) == 0 {
		t.Errorf("JSON report lost its request counters: %+v", report.Requests)
	}
}

// TestMetricsTraceConcurrency hammers the metrics aggregation (Report,
// RecordExecution, RecordRequest, the Prometheus renderer) while traces
// start, span, and finish concurrently. Run under -race this is the
// data-race canary for the whole observability surface.
func TestMetricsTraceConcurrency(t *testing.T) {
	s := NewServer(Config{AllowServerKeygen: true})
	defer s.Close()

	const goroutines = 8
	const iters = 200
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				switch g % 4 {
				case 0:
					s.metrics.RecordRequest("jobs_submit", 200+i%300, time.Duration(i)*time.Microsecond)
					s.metrics.RecordExecution(execute.RunStats{
						WallTime: time.Duration(i) * time.Microsecond,
						PerOp: map[string]*execute.OpStats{
							"MULTIPLY": {Count: 1, Total: time.Microsecond, Max: time.Microsecond, Buckets: make([]int, len(execute.OpLatencyBounds)+1)},
						},
					})
				case 1:
					s.MetricsReport()
				case 2:
					tr := s.tracer.Start("")
					sp := tr.StartSpan("execute", nil)
					sp.SetAttr("i", "x")
					sp.Progress(i, iters)
					sp.End()
					tr.Release()
				case 3:
					if err := s.WritePrometheus(io.Discard); err != nil {
						t.Errorf("WritePrometheus: %v", err)
					}
					s.tracer.Recent(0, 16)
				}
			}
		}(g)
	}
	wg.Wait()

	if err := s.WritePrometheus(io.Discard); err != nil {
		t.Fatalf("final WritePrometheus: %v", err)
	}
}
