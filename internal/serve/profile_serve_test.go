package serve

import (
	"io"
	"net/http"
	"strings"
	"testing"

	"eva/internal/profile"
	"eva/internal/store"
)

// TestProfileEndToEnd: with sampling at every instruction, one executed batch
// surfaces in GET /profile (buckets, per-program roll-up), in the Prometheus
// exposition (eva_profile_* families), and — after a flush — in the durable
// store as a kind-"profile" artifact that LoadProfiles can feed to Fit.
func TestProfileEndToEnd(t *testing.T) {
	st := store.NewMemory()
	f := newJobsFixture(t, Config{ProfileSampleRate: 1, Store: st})

	execResp, resp := postJSON[ExecuteResponse](t, f.client, f.url+"/execute/"+f.programID, ExecuteRequest{
		ContextID: f.contextID,
		Batches:   []ExecuteBatch{{Values: f.inputs}},
	})
	if resp.StatusCode != http.StatusOK || execResp.Results[0].Error != "" {
		t.Fatalf("execute: status %d, err %q", resp.StatusCode, execResp.Results[0].Error)
	}

	rep := getJSON[profile.Report](t, f.client, f.url+"/profile")
	if !rep.Enabled || rep.SampleRate != 1 {
		t.Fatalf("report enabled=%v rate=%d; want enabled at rate 1", rep.Enabled, rep.SampleRate)
	}
	if rep.Executions == 0 || rep.Instructions == 0 || rep.Samples == 0 {
		t.Fatalf("empty report after execute: %+v", rep)
	}
	if rep.Samples != rep.Instructions {
		t.Errorf("rate 1 sampled %d of %d instructions", rep.Samples, rep.Instructions)
	}
	if len(rep.Buckets) == 0 {
		t.Fatal("report has no buckets")
	}
	ops := map[string]bool{}
	for _, b := range rep.Buckets {
		ops[b.Op] = true
		if b.Count == 0 || b.TotalNS < 0 {
			t.Errorf("bucket %s/L%d: count=%d total_ns=%v", b.Op, b.Level, b.Count, b.TotalNS)
		}
	}
	// The e2e program squares (multiply+relinearize+rescale) and rotates.
	for _, op := range []string{"MULTIPLY", "RELINEARIZE", "RESCALE", "ROTATE_LEFT"} {
		if !ops[op] {
			t.Errorf("no bucket for op %s (have %v)", op, ops)
		}
	}
	found := false
	for _, ps := range rep.Programs {
		if ps.ProgramID == f.programID {
			found = true
			if ps.Samples == 0 {
				t.Error("program roll-up has zero samples")
			}
		}
	}
	if !found {
		t.Errorf("program %s missing from report programs %v", f.programID, rep.Programs)
	}
	// Real executions match the compiler's scale/level expectations exactly:
	// the flight recorder must not cry wolf.
	if rep.DriftCounts[profile.DriftKindLevel] != 0 || rep.DriftCounts[profile.DriftKindScale] != 0 {
		t.Errorf("spurious level/scale drift on a healthy execution: %v", rep.DriftCounts)
	}

	// The same aggregates are exported as Prometheus families.
	promResp, err := f.client.Get(f.url + "/metrics?format=prometheus")
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(promResp.Body)
	promResp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)
	for _, fam := range []string{"eva_profile_executions_total", "eva_profile_samples_total", "eva_profile_op_duration_seconds"} {
		if !strings.Contains(body, fam) {
			t.Errorf("prometheus exposition missing %s", fam)
		}
	}

	// Flush persists the per-program profile; the calibration pass can load
	// and fit it.
	f.srv.Profiles().Flush()
	profiles, err := profile.LoadProfiles(st)
	if err != nil {
		t.Fatal(err)
	}
	if len(profiles) != 1 || profiles[0].ProgramID != f.programID {
		t.Fatalf("store holds %d profiles; want the executed program's", len(profiles))
	}
	cal, err := profile.Fit(profiles)
	if err != nil {
		t.Fatalf("fit on persisted profile: %v", err)
	}
	if len(cal.NsPerUnit) == 0 || cal.BaselineNsPerUnit <= 0 {
		t.Fatalf("degenerate calibration from persisted profile: %+v", cal)
	}
}

// TestProfileDisabled: a negative sample rate turns the recorder off without
// touching the execution path, and /profile reports it honestly.
func TestProfileDisabled(t *testing.T) {
	f := newJobsFixture(t, Config{ProfileSampleRate: -1})
	execResp, resp := postJSON[ExecuteResponse](t, f.client, f.url+"/execute/"+f.programID, ExecuteRequest{
		ContextID: f.contextID,
		Batches:   []ExecuteBatch{{Values: f.inputs}},
	})
	if resp.StatusCode != http.StatusOK || execResp.Results[0].Error != "" {
		t.Fatalf("execute with profiler off: status %d, err %q", resp.StatusCode, execResp.Results[0].Error)
	}
	rep := getJSON[profile.Report](t, f.client, f.url+"/profile")
	if rep.Enabled || rep.Samples != 0 || len(rep.Buckets) != 0 {
		t.Fatalf("disabled profiler still recorded: %+v", rep)
	}
}

// TestCompilePredictedMillis: once a calibration is installed, /compile
// responses carry a calibrated wall-time estimate for the program.
func TestCompilePredictedMillis(t *testing.T) {
	ts, srv := newTestServer(t, Config{})
	client := ts.Client()

	comp, resp := postJSON[CompileResponse](t, client, ts.URL+"/compile", compileRequest(t, e2eProgram(t)))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("compile: status %d", resp.StatusCode)
	}
	if comp.PredictedMillis != 0 {
		t.Errorf("uncalibrated compile predicted %vms; want omitted", comp.PredictedMillis)
	}

	srv.Profiles().SetCalibration(&profile.Calibration{
		BaselineNsPerUnit: 0.5,
		NsPerUnit:         map[string]float64{"MULTIPLY": 1.25},
		Samples:           1000,
	})
	comp2, resp := postJSON[CompileResponse](t, client, ts.URL+"/compile", compileRequest(t, e2eProgram(t)))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("recompile: status %d", resp.StatusCode)
	}
	if comp2.PredictedMillis <= 0 {
		t.Fatal("calibrated compile carries no predicted_ms")
	}
}

// TestProfileCalibrationLoadedAtStartup: a calibration persisted in the store
// is installed when the server starts, and shows up in /profile.
func TestProfileCalibrationLoadedAtStartup(t *testing.T) {
	st := store.NewMemory()
	cal := &profile.Calibration{
		BaselineNsPerUnit: 2,
		NsPerUnit:         map[string]float64{"RESCALE": 7},
		Samples:           64,
	}
	if err := profile.SaveCalibration(st, cal); err != nil {
		t.Fatal(err)
	}
	ts, _ := newTestServer(t, Config{Store: st})
	rep := getJSON[profile.Report](t, ts.Client(), ts.URL+"/profile")
	if rep.Calibration == nil {
		t.Fatal("server did not load the stored calibration")
	}
	if rep.Calibration.NsPerUnit["RESCALE"] != 7 || rep.Calibration.Samples != 64 {
		t.Fatalf("loaded calibration mangled: %+v", rep.Calibration)
	}
}
