package serve

import (
	"context"
	"crypto/sha256"
	"encoding/base64"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"sync"

	"eva/internal/ckks"
	"eva/internal/compile"
	"eva/internal/core"
	"eva/internal/execute"
	"eva/internal/handle"
)

// The handle surface: PUT /handles stores a client ciphertext under its
// content address, GET /handles lists, GET /handles/{id} fetches the record
// (metadata + ciphertext bytes; also the cluster's node-to-node fetch path),
// DELETE /handles/{id} removes it. Stored handles feed back into execution as
// {"handles": {"input": "<id>"}} batch references on every entry point, and
// jobs with "output": "handle" persist their outputs as new handles.

// Output modes of an execution: "" returns payloads (decrypting in demo
// mode), outputHandle persists encrypted outputs as handles and returns ids,
// outputValues forces decryption (pipelines' final stage on demo contexts).
const (
	outputHandle = "handle"
	outputValues = "values"
)

func validOutputMode(mode string) error {
	switch mode {
	case "", outputHandle, outputValues:
		return nil
	}
	return fmt.Errorf("unknown output mode %q (want \"handle\" or \"values\")", mode)
}

// paramsFingerprint identifies an encryption-parameter set (ring degree,
// modulus chain, special prime) so handle metadata can reject chaining a
// ciphertext into a context with a different chain — the residues would be
// reinterpreted as garbage, not rejected, by the ring layer.
func paramsFingerprint(p *ckks.Parameters) string {
	h := sha256.New()
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(p.LogN()))
	h.Write(buf[:])
	for _, q := range p.Qi() {
		binary.LittleEndian.PutUint64(buf[:], q)
		h.Write(buf[:])
	}
	binary.LittleEndian.PutUint64(buf[:], p.SpecialPrime())
	h.Write(buf[:])
	return hex.EncodeToString(h.Sum(nil))[:16]
}

// requiredInputLevels computes, per Cipher input, how many levels the
// executor consumes below that input: the longest rescale/modswitch chain of
// any term the input reaches. A chained ciphertext entering at that input
// must have at least this many levels left. Inputs are tracked as bits in a
// reachability mask folded forward over the (topologically ordered) term
// list; programs with more than 64 Cipher inputs fall back to the whole
// program's depth for every input.
func requiredInputLevels(res *compile.Result) map[string]int {
	req := map[string]int{}
	idx := map[*core.Term]int{}
	names := []string{}
	for _, in := range res.Program.Inputs() {
		if in.InType == core.TypeCipher {
			idx[in] = len(names)
			names = append(names, in.Name)
			req[in.Name] = 0
		}
	}
	if len(names) == 0 {
		return req
	}
	if len(names) > 64 {
		depth := 0
		for _, c := range res.Chains {
			if len(c) > depth {
				depth = len(c)
			}
		}
		for _, name := range names {
			req[name] = depth
		}
		return req
	}
	masks := map[*core.Term]uint64{}
	for _, t := range res.Program.Terms() {
		var m uint64
		if i, ok := idx[t]; ok {
			m |= 1 << uint(i)
		}
		for _, p := range t.Parms() {
			m |= masks[p]
		}
		if m == 0 {
			continue
		}
		masks[t] = m
		d := len(res.Chains[t])
		if d == 0 {
			continue
		}
		for i, name := range names {
			if m&(1<<uint(i)) != 0 && d > req[name] {
				req[name] = d
			}
		}
	}
	return req
}

// resolvedHandle is a handle pulled into memory for execution: its metadata
// plus the deserialized ciphertext. The executor treats input ciphertexts as
// read-only, so one resolved handle is safely shared across inputs, batches,
// and pipeline stages without copying.
type resolvedHandle struct {
	meta handle.Meta
	ct   *ckks.Ciphertext
}

// handleCache shares resolved handles across the batches (and pipeline
// stages) of one request, so a handle referenced many times is fetched and
// deserialized once. Safe for the concurrent batch fan-out.
type handleCache struct {
	mu sync.Mutex
	m  map[string]*resolvedHandle
}

func newHandleCache() *handleCache {
	return &handleCache{m: map[string]*resolvedHandle{}}
}

// resolveHandle loads a handle for execution: from the request cache, the
// local registry, or — when the cluster tier installed a fetcher — a peer
// node (remote records are re-verified against their content address and
// cached locally, best effort).
func (s *Server) resolveHandle(stdctx context.Context, id string, cache *handleCache) (*resolvedHandle, error) {
	if cache != nil {
		cache.mu.Lock()
		rh, ok := cache.m[id]
		cache.mu.Unlock()
		if ok {
			return rh, nil
		}
	}
	meta, data, err := s.handles.Get(id)
	if err != nil {
		if !errors.Is(err, handle.ErrNotFound) {
			return nil, err
		}
		if s.handleFetch == nil {
			return nil, fmt.Errorf("%w: %s", handle.ErrNotFound, id)
		}
		rec, ferr := s.handleFetch(stdctx, id)
		if ferr != nil || rec == nil {
			return nil, fmt.Errorf("%w: %s (remote fetch: %v)", handle.ErrNotFound, id, ferr)
		}
		// Cache the fetched record locally; a quota rejection degrades to
		// using the record once without keeping it.
		if m, ierr := s.handles.Install(rec); ierr == nil {
			meta, data = m, rec.Data
		} else if got := handle.ID(rec.Meta.ContextID, rec.Data); got != rec.Meta.ID {
			return nil, fmt.Errorf("handle %s: peer record fails content verification", id)
		} else {
			meta, data = rec.Meta, rec.Data
		}
	}
	ct := &ckks.Ciphertext{}
	if err := ct.UnmarshalBinary(data); err != nil {
		return nil, fmt.Errorf("handle %s: decoding ciphertext: %w", id, err)
	}
	rh := &resolvedHandle{meta: meta, ct: ct}
	if cache != nil {
		cache.mu.Lock()
		cache.m[id] = rh
		cache.mu.Unlock()
	}
	return rh, nil
}

// storeOutputHandle persists one execution output as a content-addressed
// handle under the executing context, recording the metadata the chaining
// checker needs.
func (s *Server) storeOutputHandle(ce *contextEntry, res *compile.Result, ct *ckks.Ciphertext) (string, error) {
	data, err := ct.MarshalBinary()
	if err != nil {
		return "", err
	}
	meta, err := s.handles.Put(handle.Meta{
		ContextID: ce.ID,
		ParamsID:  paramsFingerprint(ce.Ctx.Params),
		Level:     ct.Level,
		LogScale:  math.Log2(ct.Scale),
		Width:     res.Program.VecSize,
	}, data)
	if err != nil {
		return "", err
	}
	return meta.ID, nil
}

// Incompat is one structured chaining rejection in a 422 body: which stage
// and input is incompatible with its supplied handle (or upstream stage
// output), on which property, with both sides rendered.
type Incompat struct {
	Stage    int    `json:"stage,omitempty"`
	Input    string `json:"input"`
	HandleID string `json:"handle,omitempty"`
	Field    string `json:"field"`
	Want     string `json:"want"`
	Got      string `json:"got"`
}

// compatError wraps a handle.Mismatch with the consuming input, so handlers
// can map it to a structured 422 while runBatch renders it as text.
type compatError struct {
	input    string
	mismatch *handle.Mismatch
}

func (e *compatError) Error() string {
	return fmt.Sprintf("input %q: %v", e.input, e.mismatch)
}

func (e *compatError) Unwrap() error { return e.mismatch }

func (e *compatError) incompat() Incompat {
	return Incompat{
		Input:    e.input,
		HandleID: e.mismatch.HandleID,
		Field:    e.mismatch.Field,
		Want:     e.mismatch.Want,
		Got:      e.mismatch.Got,
	}
}

// writeInputError maps an input-resolution failure to its status: chaining
// incompatibilities are structured 422s, unknown handles 404s, quota
// exhaustion 507, and everything else a plain 400.
func (s *Server) writeInputError(w http.ResponseWriter, err error) {
	var ce *compatError
	switch {
	case errors.As(err, &ce):
		writeJSON(w, http.StatusUnprocessableEntity, apiError{
			Error:             err.Error(),
			Incompatibilities: []Incompat{ce.incompat()},
		})
	case errors.Is(err, handle.ErrNotFound):
		writeError(w, http.StatusNotFound, "%v", err)
	case errors.Is(err, handle.ErrQuotaExceeded):
		writeError(w, http.StatusInsufficientStorage, "%v", err)
	default:
		writeError(w, http.StatusBadRequest, "%v", err)
	}
}

// buildBatchInputs resolves one batch's wire inputs into executor inputs:
// inline base64 ciphertexts are decoded and validated, handle references are
// resolved (locally or from a peer) and checked against the consuming
// program's compiled level/scale/width requirements, plain inputs are
// replicated, and — on demo contexts — plaintext values for Cipher inputs
// are encrypted. pre may carry inputs resolved earlier (the jobs admission
// path, or a pipeline stage's upstream outputs); they are taken as-is. When
// deferValues is true, plaintext Cipher values are left for the caller (the
// job worker encrypts them later) instead of being encrypted now.
func (s *Server) buildBatchInputs(stdctx context.Context, ce *contextEntry, res *compile.Result, batch *ExecuteBatch, pre *execute.EncryptedInputs, cache *handleCache, deferValues bool) (*execute.EncryptedInputs, error) {
	enc := &execute.EncryptedInputs{
		Cipher: map[string]*ckks.Ciphertext{},
		Plain:  map[string][]float64{},
	}
	if pre != nil {
		for k, v := range pre.Cipher {
			enc.Cipher[k] = v
		}
		for k, v := range pre.Plain {
			enc.Plain[k] = v
		}
		enc.EncryptTime = pre.EncryptTime
	}
	var pending execute.Inputs
	br := s.newBindingResolver(ce, res, cache)
	for _, in := range res.Program.Inputs() {
		b := batch.binding(in.Name)
		if in.InType != core.TypeCipher {
			if _, ok := enc.Plain[in.Name]; ok {
				continue
			}
			full, ok, err := br.plain(in.Name, b)
			if !ok {
				return nil, fmt.Errorf("missing value for plain input %q", in.Name)
			}
			if err != nil {
				return nil, err
			}
			enc.Plain[in.Name] = full
			continue
		}
		if _, ok := enc.Cipher[in.Name]; ok {
			continue
		}
		switch {
		case b.Cipher != "":
			ct, err := br.cipherFromWire(b.Cipher)
			if err != nil {
				return nil, fmt.Errorf("input %q: %w", in.Name, err)
			}
			enc.Cipher[in.Name] = ct
		case b.Handle != "":
			rh, err := br.cipherFromHandle(stdctx, in.Name, b.Handle, in.LogScale)
			if err != nil {
				var cerr *compatError
				if errors.As(err, &cerr) {
					return nil, err
				}
				return nil, fmt.Errorf("input %q: %w", in.Name, err)
			}
			enc.Cipher[in.Name] = rh.ct
		case b.Values != nil:
			if ce.Keys == nil {
				return nil, fmt.Errorf("plaintext \"values\" need a server-keygen (demo) context; this context has no keys")
			}
			if deferValues {
				continue
			}
			if pending == nil {
				pending = execute.Inputs{}
			}
			pending[in.Name] = b.Values
		default:
			return nil, fmt.Errorf("missing ciphertext for input %q (supply \"cipher\", \"handles\", or demo \"values\")", in.Name)
		}
	}
	if len(pending) > 0 {
		cts, d, err := execute.EncryptSelected(ce.Ctx, res, ce.Keys, pending, nil)
		if err != nil {
			return nil, fmt.Errorf("encrypting values: %v", err)
		}
		for name, ct := range cts {
			enc.Cipher[name] = ct
		}
		enc.EncryptTime += d
	}
	return enc, nil
}

// --- /handles handlers ---

// HandlePutRequest is the body of PUT /handles: a client-encrypted
// ciphertext (base64 ckks wire format) to store under a context's content
// address.
type HandlePutRequest struct {
	ContextID string `json:"context_id"`
	Cipher    string `json:"cipher"`
}

// HandleRecordJSON is the body of GET /handles/{id}: the metadata plus the
// ciphertext bytes. It is also the cluster's node-to-node transfer format.
type HandleRecordJSON struct {
	Meta   handle.Meta `json:"meta"`
	Cipher []byte      `json:"cipher"`
}

// HandleListResponse is the body of GET /handles.
type HandleListResponse struct {
	Handles []handle.Meta `json:"handles"`
	Stats   handle.Stats  `json:"stats"`
}

func (s *Server) handleHandlePut(w http.ResponseWriter, r *http.Request) {
	var req HandlePutRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	ce, ok := s.lookupContext(req.ContextID)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown context %q; POST /contexts first", req.ContextID)
		return
	}
	if req.Cipher == "" {
		writeError(w, http.StatusBadRequest, "\"cipher\" is required")
		return
	}
	data, err := base64.StdEncoding.DecodeString(req.Cipher)
	if err != nil {
		writeError(w, http.StatusBadRequest, "decoding ciphertext: %v", err)
		return
	}
	ct := &ckks.Ciphertext{}
	if err := ct.UnmarshalBinary(data); err != nil {
		writeError(w, http.StatusBadRequest, "decoding ciphertext: %v", err)
		return
	}
	if err := ct.Validate(ce.Ctx.Params); err != nil {
		writeError(w, http.StatusUnprocessableEntity, "ciphertext does not fit context %q: %v", req.ContextID, err)
		return
	}
	meta, err := s.handles.Put(handle.Meta{
		ContextID: ce.ID,
		ParamsID:  paramsFingerprint(ce.Ctx.Params),
		Level:     ct.Level,
		LogScale:  math.Log2(ct.Scale),
		Width:     ce.Entry.Result.Program.VecSize,
	}, data)
	if err != nil {
		if errors.Is(err, handle.ErrQuotaExceeded) {
			writeError(w, http.StatusInsufficientStorage, "%v", err)
			return
		}
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, meta)
}

func (s *Server) handleHandleList(w http.ResponseWriter, r *http.Request) {
	metas, err := s.handles.List()
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, HandleListResponse{Handles: metas, Stats: s.handles.Stats()})
}

func (s *Server) handleHandleGet(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	meta, data, err := s.handles.Get(id)
	if err != nil {
		if errors.Is(err, handle.ErrNotFound) {
			writeError(w, http.StatusNotFound, "unknown handle %q", id)
			return
		}
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, HandleRecordJSON{Meta: meta, Cipher: data})
}

func (s *Server) handleHandleDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if err := s.handles.Delete(id); err != nil {
		if errors.Is(err, handle.ErrNotFound) {
			writeError(w, http.StatusNotFound, "unknown handle %q", id)
			return
		}
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"deleted": id})
}
