package serve

import (
	"math"
	"net/http"
	"strings"
	"testing"

	"eva/internal/builder"
	"eva/internal/execute"
)

// quickstartSource is the textual form of the quickstart example
// (0.5·(x² + y)); quickstartBuilder constructs the identical program through
// the builder frontend.
const quickstartSource = `program quickstart vec=8;
input x @30;
input y @30;
result = (x * x + y) * 0.5@30;
output result @30;
`

func quickstartBuilder(t testing.TB) *builder.Builder {
	t.Helper()
	b := builder.New("quickstart", 8)
	x := b.Input("x", 30)
	y := b.Input("y", 30)
	b.Output("result", x.Square().Add(y).MulScalar(0.5, 30), 30)
	return b
}

// TestCompileSourceEndToEnd is the acceptance walkthrough: POST source text
// to /compile, create a demo context, execute a batch, and check the
// decrypted results against the reference semantics. It also checks that the
// source form shares its registry entry with the structurally identical JSON
// submission — one program, one compilation, whatever the wire format.
func TestCompileSourceEndToEnd(t *testing.T) {
	ts, _ := newTestServer(t, Config{AllowServerKeygen: true})
	client := ts.Client()

	comp, resp := postJSON[CompileResponse](t, client, ts.URL+"/compile", CompileRequest{
		Source:  quickstartSource,
		Options: &CompileOptionsJSON{AllowInsecure: true},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("compile: status %d", resp.StatusCode)
	}
	if comp.Cached {
		t.Error("first source compile reported as cached")
	}

	// Same source again: a cache hit.
	comp2, _ := postJSON[CompileResponse](t, client, ts.URL+"/compile", CompileRequest{
		Source:  quickstartSource,
		Options: &CompileOptionsJSON{AllowInsecure: true},
	})
	if !comp2.Cached || comp2.ID != comp.ID {
		t.Errorf("identical source not served from cache (cached=%v, id %s vs %s)", comp2.Cached, comp2.ID, comp.ID)
	}

	// The same program as a JSON submission: also the same entry.
	prog, err := quickstartBuilder(t).Program()
	if err != nil {
		t.Fatal(err)
	}
	comp3, _ := postJSON[CompileResponse](t, client, ts.URL+"/compile", compileRequest(t, prog))
	if !comp3.Cached || comp3.ID != comp.ID {
		t.Errorf("JSON submission of the same program missed the cache (cached=%v, id %s vs %s)", comp3.Cached, comp3.ID, comp.ID)
	}

	ctxResp, resp := postJSON[ContextResponse](t, client, ts.URL+"/contexts", ContextRequest{
		ProgramID: comp.ID,
		Keygen:    &KeygenJSON{Seed: 11},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("contexts: status %d", resp.StatusCode)
	}

	inputs := execute.Inputs{"x": {1, 2, 3, 4, 5, 6, 7, 8}, "y": {8, 7, 6, 5, 4, 3, 2, 1}}
	execResp, _ := postJSON[ExecuteResponse](t, client, ts.URL+"/execute/"+comp.ID, ExecuteRequest{
		ContextID: ctxResp.ContextID,
		Batches:   []ExecuteBatch{{Values: inputs}},
	})
	if len(execResp.Results) != 1 || execResp.Results[0].Error != "" {
		t.Fatalf("unexpected results: %+v", execResp.Results)
	}
	got := execResp.Results[0].Values["result"]
	for i := range inputs["x"] {
		want := 0.5 * (inputs["x"][i]*inputs["x"][i] + inputs["y"][i])
		if math.Abs(got[i]-want) > 1e-2 {
			t.Errorf("slot %d: got %v, want %v", i, got[i], want)
		}
	}
}

// TestCompileSourceErrors covers one case per error class: lexical, syntax,
// name resolution, width validation, and scale validation, plus the
// both-forms and neither-form request shapes. Every source failure must
// carry positioned structured diagnostics.
func TestCompileSourceErrors(t *testing.T) {
	ts, _ := newTestServer(t, Config{})
	client := ts.Client()

	cases := []struct {
		name    string
		source  string
		wantMsg string
		line    int
		col     int
	}{
		{
			"lexical", "program p vec=8;\ninput x @30;\noutput o = x ? x @30;",
			"unexpected character", 3, 14,
		},
		{
			"syntax", "program p vec=8;\ninput x @30\noutput x @30;",
			"expected \";\"", 3, 1,
		},
		{
			"undefined-name", "program p vec=8;\ninput x @30;\noutput o = x * z @30;",
			"undefined name", 3, 16,
		},
		{
			"bad-width", "program p vec=8;\ninput x width=3 @30;\noutput x @30;",
			"power of two", 2, 15,
		},
		{
			"bad-rescale-scale", "program p vec=8;\ninput x @30;\noutput o = rescale(x, -1) @30;",
			"rescale divisor", 3, 23,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			body, resp := postJSON[apiError](t, client, ts.URL+"/compile", CompileRequest{Source: tc.source})
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status %d, want 400", resp.StatusCode)
			}
			if len(body.SourceErrors) == 0 {
				t.Fatalf("no structured source errors in %+v", body)
			}
			first := body.SourceErrors[0]
			if first.Line != tc.line || first.Col != tc.col {
				t.Errorf("diagnostic at %d:%d, want %d:%d (%+v)", first.Line, first.Col, tc.line, tc.col, first)
			}
			if !strings.Contains(first.Message, tc.wantMsg) {
				t.Errorf("message %q missing %q", first.Message, tc.wantMsg)
			}
			if first.Snippet == "" {
				t.Errorf("missing snippet in %+v", first)
			}
		})
	}

	t.Run("both-forms", func(t *testing.T) {
		prog, err := quickstartBuilder(t).Program()
		if err != nil {
			t.Fatal(err)
		}
		req := compileRequest(t, prog)
		req.Source = quickstartSource
		body, resp := postJSON[apiError](t, client, ts.URL+"/compile", req)
		if resp.StatusCode != http.StatusBadRequest || !strings.Contains(body.Error, "exactly one") {
			t.Errorf("status %d, body %+v", resp.StatusCode, body)
		}
	})
	t.Run("neither-form", func(t *testing.T) {
		body, resp := postJSON[apiError](t, client, ts.URL+"/compile", CompileRequest{})
		if resp.StatusCode != http.StatusBadRequest || !strings.Contains(body.Error, "exactly one") {
			t.Errorf("status %d, body %+v", resp.StatusCode, body)
		}
	})
}
