package serve

import (
	"bytes"
	"context"
	"encoding/base64"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"testing"

	"eva/internal/builder"
	"eva/internal/ckks"
	"eva/internal/core"
	"eva/internal/execute"
	"eva/internal/handle"
)

// jsonBody marshals a request payload for a non-POST method.
func jsonBody(t testing.TB, v any) *bytes.Reader {
	t.Helper()
	data, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return bytes.NewReader(data)
}

func decodeBody(t testing.TB, resp *http.Response, v any) {
	t.Helper()
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil && resp.StatusCode == http.StatusOK {
		t.Fatalf("decoding response: %v", err)
	}
}

// handleFixture is the client-key-model handle test rig: a compiled program,
// a context holding only public evaluation keys, and the client-side key
// material needed to encrypt inputs and decrypt outputs locally.
type handleFixture struct {
	url       string
	client    *http.Client
	srv       *Server
	ts        *httptest.Server
	programID string
	contextID string
	params    *ckks.Parameters
	scales    map[string]float64
	encoder   *ckks.Encoder
	encryptor *ckks.Encryptor
	decryptor *ckks.Decryptor
}

func newHandleFixture(t testing.TB, cfg Config) *handleFixture {
	t.Helper()
	ts, srv := newTestServer(t, cfg)
	client := ts.Client()
	comp, resp := postJSON[CompileResponse](t, client, ts.URL+"/compile", compileRequest(t, e2eProgram(t)))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("compile: status %d", resp.StatusCode)
	}
	params, err := ckks.NewParameters(comp.Params.Literal())
	if err != nil {
		t.Fatal(err)
	}
	prng := ckks.NewTestPRNG(21)
	kg := ckks.NewKeyGenerator(params, prng)
	sk := kg.GenSecretKey()
	pk := kg.GenPublicKey(sk)
	rlk, err := kg.GenRelinearizationKey(sk)
	if err != nil {
		t.Fatal(err)
	}
	rtk, err := kg.GenRotationKeys(comp.RotationSteps, sk)
	if err != nil {
		t.Fatal(err)
	}
	rlkData, err := rlk.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	rtkData, err := rtk.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	ctxResp, resp := postJSON[ContextResponse](t, client, ts.URL+"/contexts", ContextRequest{
		ProgramID: comp.ID,
		Keys: &EvalKeysJSON{
			Relin:       base64.StdEncoding.EncodeToString(rlkData),
			RotationSet: base64.StdEncoding.EncodeToString(rtkData),
		},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("contexts: status %d", resp.StatusCode)
	}
	return &handleFixture{
		url:       ts.URL,
		client:    client,
		srv:       srv,
		ts:        ts,
		programID: comp.ID,
		contextID: ctxResp.ContextID,
		params:    params,
		scales:    comp.InputScales,
		encoder:   ckks.NewEncoder(params),
		encryptor: ckks.NewEncryptor(params, pk, prng),
		decryptor: ckks.NewDecryptor(params, sk),
	}
}

// encryptB64 encrypts one named input locally and returns the base64 wire form.
func (f *handleFixture) encryptB64(t testing.TB, name string, v []float64) string {
	t.Helper()
	pt, err := f.encoder.Encode(v, math.Exp2(f.scales[name]), f.params.MaxLevel())
	if err != nil {
		t.Fatal(err)
	}
	ct, err := f.encryptor.Encrypt(pt)
	if err != nil {
		t.Fatal(err)
	}
	data, err := ct.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	return base64.StdEncoding.EncodeToString(data)
}

// putHandle stores one locally encrypted input through PUT /handles.
func (f *handleFixture) putHandle(t testing.TB, name string, v []float64) string {
	t.Helper()
	meta, resp := f.putHandleRaw(t, f.encryptB64(t, name, v))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("PUT /handles: status %d", resp.StatusCode)
	}
	return meta.ID
}

func (f *handleFixture) putHandleRaw(t testing.TB, cipher string) (handle.Meta, *http.Response) {
	t.Helper()
	payload := HandlePutRequest{ContextID: f.contextID, Cipher: cipher}
	req, err := http.NewRequest(http.MethodPut, f.url+"/handles", jsonBody(t, payload))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := f.client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var meta handle.Meta
	decodeBody(t, resp, &meta)
	return meta, resp
}

// TestHandleCRUDAndExecute walks the content-addressed handle lifecycle in
// the client-key trust model: encrypt locally, store the ciphertext once,
// reference it by id from an execution, and verify dedup, listing, fetch,
// and deletion along the way.
func TestHandleCRUDAndExecute(t *testing.T) {
	f := newHandleFixture(t, Config{})
	x := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	y := []float64{8, 7, 6, 5, 4, 3, 2, 1}

	xB64 := f.encryptB64(t, "x", x)
	metaX, resp := f.putHandleRaw(t, xB64)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("PUT /handles: status %d", resp.StatusCode)
	}
	if metaX.ID == "" || metaX.ContextID != f.contextID || metaX.Width != 8 {
		t.Fatalf("implausible meta: %+v", metaX)
	}
	if metaX.Level != f.params.MaxLevel() {
		t.Errorf("fresh handle level %d, want %d", metaX.Level, f.params.MaxLevel())
	}
	if math.Abs(metaX.LogScale-f.scales["x"]) > 0.5 {
		t.Errorf("handle log scale %v, want ~%v", metaX.LogScale, f.scales["x"])
	}

	// Content addressing: storing identical bytes yields the same id.
	metaX2, _ := f.putHandleRaw(t, xB64)
	if metaX2.ID != metaX.ID {
		t.Errorf("re-put changed the id: %s vs %s", metaX2.ID, metaX.ID)
	}
	idY := f.putHandle(t, "y", y)

	list := getJSON[HandleListResponse](t, f.client, f.url+"/handles")
	if len(list.Handles) != 2 {
		t.Fatalf("%d handles listed, want 2", len(list.Handles))
	}
	if list.Stats.Puts != 2 || list.Stats.Dedups != 1 {
		t.Errorf("stats %+v, want 2 puts with 1 dedup", list.Stats)
	}

	rec := getJSON[HandleRecordJSON](t, f.client, f.url+"/handles/"+metaX.ID)
	if rec.Meta.ID != metaX.ID || len(rec.Cipher) == 0 {
		t.Fatalf("fetched record is implausible: meta %+v, %d cipher bytes", rec.Meta, len(rec.Cipher))
	}

	// Execute by reference: no ciphertext in the request body at all.
	execResp, resp := postJSON[ExecuteResponse](t, f.client, f.url+"/execute/"+f.programID, ExecuteRequest{
		ContextID: f.contextID,
		Batches:   []ExecuteBatch{{Handles: map[string]string{"x": metaX.ID, "y": idY}}},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("execute with handles: status %d", resp.StatusCode)
	}
	if len(execResp.Results) != 1 || execResp.Results[0].Error != "" {
		t.Fatalf("unexpected results: %+v", execResp.Results)
	}
	ref, err := execute.RunReference(e2eProgram(t), execute.Inputs{"x": x, "y": y})
	if err != nil {
		t.Fatal(err)
	}
	got := f.decryptOut(t, execResp.Results[0].Cipher["out"])
	for j, want := range ref["out"] {
		if math.Abs(got[j]-want) > 1e-2 {
			t.Errorf("slot %d: got %v, want %v", j, got[j], want)
		}
	}

	// Mixed sources in one batch: handle for x, inline upload for y.
	execResp, _ = postJSON[ExecuteResponse](t, f.client, f.url+"/execute/"+f.programID, ExecuteRequest{
		ContextID: f.contextID,
		Batches: []ExecuteBatch{{
			Handles: map[string]string{"x": metaX.ID},
			Cipher:  map[string]string{"y": f.encryptB64(t, "y", y)},
		}},
	})
	if len(execResp.Results) != 1 || execResp.Results[0].Error != "" {
		t.Fatalf("mixed-source batch failed: %+v", execResp.Results)
	}

	// Deletion is observable and referencing a deleted handle fails the batch.
	req, err := http.NewRequest(http.MethodDelete, f.url+"/handles/"+metaX.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	dresp, err := f.client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE /handles/{id}: status %d", dresp.StatusCode)
	}
	gresp, err := f.client.Get(f.url + "/handles/" + metaX.ID)
	if err != nil {
		t.Fatal(err)
	}
	gresp.Body.Close()
	if gresp.StatusCode != http.StatusNotFound {
		t.Errorf("GET deleted handle: status %d, want 404", gresp.StatusCode)
	}
	execResp, _ = postJSON[ExecuteResponse](t, f.client, f.url+"/execute/"+f.programID, ExecuteRequest{
		ContextID: f.contextID,
		Batches:   []ExecuteBatch{{Handles: map[string]string{"x": metaX.ID, "y": idY}}},
	})
	if len(execResp.Results) != 1 || execResp.Results[0].Error == "" {
		t.Errorf("deleted handle should fail the batch: %+v", execResp.Results)
	}

	// Garbage payloads and unknown contexts are rejected up front.
	_, resp = f.putHandleRaw(t, base64.StdEncoding.EncodeToString([]byte("junk")))
	if resp.StatusCode == http.StatusOK {
		t.Error("garbage cipher accepted by PUT /handles")
	}
	preq, err := http.NewRequest(http.MethodPut, f.url+"/handles", jsonBody(t, HandlePutRequest{ContextID: "nosuch", Cipher: xB64}))
	if err != nil {
		t.Fatal(err)
	}
	presp, err := f.client.Do(preq)
	if err != nil {
		t.Fatal(err)
	}
	presp.Body.Close()
	if presp.StatusCode != http.StatusNotFound {
		t.Errorf("PUT to unknown context: status %d, want 404", presp.StatusCode)
	}
}

func (f *handleFixture) decryptOut(t testing.TB, b64 string) []float64 {
	t.Helper()
	data, err := base64.StdEncoding.DecodeString(b64)
	if err != nil {
		t.Fatal(err)
	}
	ct := &ckks.Ciphertext{}
	if err := ct.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	return f.encoder.Decode(f.decryptor.Decrypt(ct))
}

// TestJobOutputHandles: a job submitted with "output": "handle" persists its
// encrypted outputs as content-addressed handles instead of shipping them
// back, and the handle section shows up in /metrics.
func TestJobOutputHandles(t *testing.T) {
	f := newJobsFixture(t, Config{JobWorkers: 1})
	status, resp := postJSON[JobStatus](t, f.client, f.url+"/jobs", JobRequest{
		ProgramID: f.programID,
		ContextID: f.contextID,
		Batches:   []ExecuteBatch{{Values: f.inputs}},
		Output:    "handle",
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d", resp.StatusCode)
	}
	readSSE(t, f.client, f.url+"/jobs/"+status.JobID+"/events")
	result := getJSON[JobResult](t, f.client, f.url+"/jobs/"+status.JobID+"/result")
	if len(result.Results) != 1 || result.Results[0].Error != "" {
		t.Fatalf("unexpected results: %+v", result.Results)
	}
	id := result.Results[0].Handles["out"]
	if id == "" {
		t.Fatalf("no handle for output \"out\": %+v", result.Results[0])
	}
	if len(result.Results[0].Cipher) != 0 {
		t.Errorf("handle-output job still shipped ciphertext: %+v", result.Results[0].Cipher)
	}
	rec := getJSON[HandleRecordJSON](t, f.client, f.url+"/handles/"+id)
	if rec.Meta.ContextID != f.contextID || rec.Meta.Width != 8 {
		t.Errorf("stored handle meta %+v", rec.Meta)
	}
	metrics := getJSON[MetricsReport](t, f.client, f.url+"/metrics")
	if metrics.Handles == nil || metrics.Handles.Puts == 0 || metrics.Handles.Entries == 0 {
		t.Errorf("metrics missing handle traffic: %+v", metrics.Handles)
	}
}

// pipelinePrograms compiles the two demo stage programs — out = x*y and
// out2 = z*0.5 — with one shared level of chaining headroom, and installs a
// demo context for each under the same keygen seed (identical parameter
// chains make the seeds derive identical keys, which is what lets stage 2
// operate on stage 1's ciphertext).
func pipelinePrograms(t testing.TB, client *http.Client, url string) (p1, c1, p2, c2 string) {
	t.Helper()
	b1 := builder.New("stage1", 8)
	b1.Output("out", b1.Input("x", 30).Mul(b1.Input("y", 30)), 30)
	b2 := builder.New("stage2", 8)
	b2.Output("out2", b2.Input("z", 30).MulScalar(0.5, 30), 30)
	// MaxRescaleLog 30 drops the waterline rescale threshold to 2^60, so each
	// stage's single product rescales back down to the 2^30 waterline — the
	// scale its successor's input expects. The shared level of headroom is
	// what the chaining consumes.
	opts := &CompileOptionsJSON{AllowInsecure: true, MaxRescaleLog: 30, ExtraLevels: 1}

	var ids []string
	for _, prog := range []*core.Program{mustProgram(t, b1), mustProgram(t, b2)} {
		comp, resp := postJSON[CompileResponse](t, client, url+"/compile", CompileRequest{
			Program: programJSON(t, prog),
			Options: opts,
		})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("compile %s: status %d", prog.Name, resp.StatusCode)
		}
		ctxResp, resp := postJSON[ContextResponse](t, client, url+"/contexts", ContextRequest{
			ProgramID: comp.ID,
			Keygen:    &KeygenJSON{Seed: 7},
		})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("context for %s: status %d", prog.Name, resp.StatusCode)
		}
		ids = append(ids, comp.ID, ctxResp.ContextID)
	}
	return ids[0], ids[1], ids[2], ids[3]
}

func mustProgram(t testing.TB, b *builder.Builder) *core.Program {
	t.Helper()
	prog, err := b.Program()
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

// TestPipelineEndToEnd is the tentpole acceptance test: a two-stage
// encrypted pipeline — stage 1 computes x*y, stage 2 halves it — executes
// entirely server-side. The intermediate ciphertext never leaves the server
// (stage 1's output is a handle, stage 2 consumes it by stage reference),
// and the decrypted final result matches the cleartext reference.
func TestPipelineEndToEnd(t *testing.T) {
	ts, _ := newTestServer(t, Config{AllowServerKeygen: true, JobWorkers: 1})
	client := ts.Client()
	p1, c1, p2, c2 := pipelinePrograms(t, client, ts.URL)

	x := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	y := []float64{2, 2, 2, 2, 3, 3, 3, 3}
	status, resp := postJSON[JobStatus](t, client, ts.URL+"/pipelines", PipelineRequest{
		Stages: []PipelineStage{
			{
				ProgramID: p1, ContextID: c1,
				Inputs: map[string]PipelineInput{
					"x": {Values: x},
					"y": {Values: y},
				},
			},
			{
				ProgramID: p2, ContextID: c2,
				Inputs: map[string]PipelineInput{
					"z": {Stage: intp(0)},
				},
				Output: "values",
			},
		},
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("pipeline submit: status %d (%+v)", resp.StatusCode, status)
	}
	if loc := resp.Header.Get("Location"); loc != "/jobs/"+status.JobID {
		t.Errorf("Location %q, want /jobs/%s", loc, status.JobID)
	}
	readSSE(t, client, ts.URL+"/jobs/"+status.JobID+"/events")
	final := getJSON[JobStatus](t, client, ts.URL+"/jobs/"+status.JobID)
	if final.Status != "done" {
		t.Fatalf("pipeline finished %s: %s", final.Status, final.Error)
	}
	result := getJSON[JobResult](t, client, ts.URL+"/jobs/"+status.JobID+"/result")
	if len(result.Results) != 2 {
		t.Fatalf("%d stage results, want 2", len(result.Results))
	}
	handleID := result.Results[0].Handles["out"]
	if handleID == "" {
		t.Fatalf("stage 0 produced no handle: %+v", result.Results[0])
	}
	rec := getJSON[HandleRecordJSON](t, client, ts.URL+"/handles/"+handleID)
	if rec.Meta.ContextID != c1 {
		t.Errorf("intermediate handle context %s, want %s", rec.Meta.ContextID, c1)
	}
	got := result.Results[1].Values["out2"]
	if got == nil {
		t.Fatalf("stage 1 produced no values: %+v", result.Results[1])
	}
	for j := range x {
		want := x[j] * y[j] * 0.5
		if math.Abs(got[j]-want) > 1e-2 {
			t.Errorf("slot %d: got %v, want %v", j, got[j], want)
		}
	}

	// The same final stage over an explicit handle reference must work too:
	// feed the stored intermediate back in by id.
	status2, resp := postJSON[JobStatus](t, client, ts.URL+"/pipelines", PipelineRequest{
		Stages: []PipelineStage{{
			ProgramID: p2, ContextID: c2,
			Inputs: map[string]PipelineInput{"z": {Handle: handleID}},
			Output: "values",
		}},
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("handle-input pipeline: status %d", resp.StatusCode)
	}
	readSSE(t, client, ts.URL+"/jobs/"+status2.JobID+"/events")
	result2 := getJSON[JobResult](t, client, ts.URL+"/jobs/"+status2.JobID+"/result")
	if len(result2.Results) != 1 || result2.Results[0].Error != "" {
		t.Fatalf("handle-input pipeline results: %+v", result2.Results)
	}
	for j := range x {
		want := x[j] * y[j] * 0.5
		if math.Abs(result2.Results[0].Values["out2"][j]-want) > 1e-2 {
			t.Errorf("slot %d: got %v, want %v", j, result2.Results[0].Values["out2"][j], want)
		}
	}
}

func intp(v int) *int { return &v }

// TestPipelineIncompatibleChaining: a stage whose input would arrive with no
// level budget left is rejected at submit time with a structured 422 naming
// the offending edge — nothing executes.
func TestPipelineIncompatibleChaining(t *testing.T) {
	ts, _ := newTestServer(t, Config{AllowServerKeygen: true, JobWorkers: 1})
	client := ts.Client()
	p1, c1, p2, c2 := pipelinePrograms(t, client, ts.URL)

	// Each halving stage consumes one level; with one level of headroom the
	// chain runs dry at the fourth stage, whose input would arrive with no
	// rescale budget left.
	vals := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	apiErr, resp := postJSON[apiError](t, client, ts.URL+"/pipelines", PipelineRequest{
		Stages: []PipelineStage{
			{ProgramID: p1, ContextID: c1, Inputs: map[string]PipelineInput{
				"x": {Values: vals}, "y": {Values: vals},
			}},
			{ProgramID: p2, ContextID: c2, Inputs: map[string]PipelineInput{
				"z": {Stage: intp(0)},
			}},
			{ProgramID: p2, ContextID: c2, Inputs: map[string]PipelineInput{
				"z": {Stage: intp(1)},
			}},
			{ProgramID: p2, ContextID: c2, Inputs: map[string]PipelineInput{
				"z": {Stage: intp(2)},
			}, Output: "values"},
		},
	})
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("status %d, want 422 (%+v)", resp.StatusCode, apiErr)
	}
	if len(apiErr.Incompatibilities) != 1 {
		t.Fatalf("%d incompatibilities, want 1: %+v", len(apiErr.Incompatibilities), apiErr.Incompatibilities)
	}
	inc := apiErr.Incompatibilities[0]
	if inc.Stage != 3 || inc.Input != "z" || inc.Field != "level" {
		t.Errorf("incompatibility %+v, want stage 3 input z field level", inc)
	}

	// Structural errors are immediate 400s: a forward reference.
	_, resp = postJSON[apiError](t, client, ts.URL+"/pipelines", PipelineRequest{
		Stages: []PipelineStage{
			{ProgramID: p2, ContextID: c2, Inputs: map[string]PipelineInput{
				"z": {Stage: intp(1)},
			}},
			{ProgramID: p1, ContextID: c1, Inputs: map[string]PipelineInput{
				"x": {Values: vals}, "y": {Values: vals},
			}},
		},
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("forward stage reference: status %d, want 400", resp.StatusCode)
	}

	// Exactly one source per cipher input.
	_, resp = postJSON[apiError](t, client, ts.URL+"/pipelines", PipelineRequest{
		Stages: []PipelineStage{{
			ProgramID: p1, ContextID: c1, Inputs: map[string]PipelineInput{
				"x": {Values: vals, Handle: "deadbeef"}, "y": {Values: vals},
			},
		}},
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("ambiguous input source: status %d, want 400", resp.StatusCode)
	}

	// Non-final decrypt stages are rejected.
	_, resp = postJSON[apiError](t, client, ts.URL+"/pipelines", PipelineRequest{
		Stages: []PipelineStage{
			{ProgramID: p1, ContextID: c1, Inputs: map[string]PipelineInput{
				"x": {Values: vals}, "y": {Values: vals},
			}, Output: "values"},
			{ProgramID: p2, ContextID: c2, Inputs: map[string]PipelineInput{
				"z": {Stage: intp(0)},
			}, Output: "values"},
		},
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("non-final values stage: status %d, want 400", resp.StatusCode)
	}
}

// BenchmarkHandleResolve measures handle input resolution — registry get,
// wire decode, parameter validation — through a cold per-request cache, the
// per-input overhead every handle-referencing execution pays. Tracked by the
// CI bench-regression gate.
func BenchmarkHandleResolve(b *testing.B) {
	f := newHandleFixture(b, Config{})
	id := f.putHandle(b, "x", []float64{1, 2, 3, 4, 5, 6, 7, 8})
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rh, err := f.srv.resolveHandle(ctx, id, newHandleCache())
		if err != nil {
			b.Fatal(err)
		}
		if rh.ct == nil {
			b.Fatal("nil ciphertext")
		}
	}
}
