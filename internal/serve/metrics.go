package serve

import (
	"sort"
	"sync"
	"time"

	"eva/internal/coalesce"
	"eva/internal/execute"
	"eva/internal/handle"
	"eva/internal/jobs"
	"eva/internal/obs"
	"eva/internal/store"
)

// Metrics aggregates service-level counters: per-route request counts, cache
// statistics (taken from the registry at report time), execution counts, and
// per-opcode latency histograms merged from every execution's RunStats. The
// measured histograms sit next to the per-opcode cost predicted by the
// analysis cost model (the same model the bench harness uses), so operators
// can see whether the service behaves the way the model says it should.
type Metrics struct {
	mu         sync.Mutex
	start      time.Time
	requests   map[string]*routeStats
	executions uint64
	execFailed uint64
	execTotal  time.Duration
	perOp      map[string]*execute.OpStats
	// predictedCost accumulates, per opcode, the cost-model estimate of every
	// program compiled by this process (abstract limb-element operations).
	predictedCost map[string]float64
}

// routeStats is one route's request accounting: total count, counts per
// status class ("2xx".."5xx"), and a latency histogram.
type routeStats struct {
	count   uint64
	byClass map[string]uint64
	latency *obs.Histogram
}

// NewMetrics returns an empty metrics collector.
func NewMetrics() *Metrics {
	return &Metrics{
		start:         time.Now(),
		requests:      map[string]*routeStats{},
		perOp:         map[string]*execute.OpStats{},
		predictedCost: map[string]float64{},
	}
}

// statusClass buckets an HTTP status code ("2xx", "4xx", ...).
func statusClass(status int) string {
	if status < 100 || status > 599 {
		return "other"
	}
	return string([]byte{byte('0' + status/100), 'x', 'x'})
}

// RecordRequest counts one request against a route label with its response
// status code and handling latency, so shed 4xx traffic is distinguishable
// from served 2xx traffic.
func (m *Metrics) RecordRequest(route string, status int, d time.Duration) {
	m.mu.Lock()
	rs := m.requests[route]
	if rs == nil {
		rs = &routeStats{byClass: map[string]uint64{}, latency: obs.NewHistogram(obs.DurationBounds)}
		m.requests[route] = rs
	}
	rs.count++
	rs.byClass[statusClass(status)]++
	rs.latency.Observe(d.Seconds())
	m.mu.Unlock()
}

// RecordExecution folds one batch execution's statistics into the aggregate.
func (m *Metrics) RecordExecution(stats execute.RunStats) {
	m.mu.Lock()
	m.executions++
	m.execTotal += stats.WallTime
	for op, os := range stats.PerOp {
		agg := m.perOp[op]
		if agg == nil {
			agg = &execute.OpStats{}
			m.perOp[op] = agg
		}
		agg.Merge(os)
	}
	m.mu.Unlock()
}

// RecordExecutionError counts one failed batch execution.
func (m *Metrics) RecordExecutionError() {
	m.mu.Lock()
	m.execFailed++
	m.mu.Unlock()
}

// RecordPredictedCost folds a compiled program's per-opcode cost-model
// estimate into the aggregate.
func (m *Metrics) RecordPredictedCost(byOp map[string]float64) {
	m.mu.Lock()
	for op, c := range byOp {
		m.predictedCost[op] += c
	}
	m.mu.Unlock()
}

// OpHistogram is the wire form of one opcode's latency aggregate.
type OpHistogram struct {
	Count   int     `json:"count"`
	TotalMS float64 `json:"total_ms"`
	MeanUS  float64 `json:"mean_us"`
	MaxUS   float64 `json:"max_us"`
	// BucketBounds are the histogram bucket upper bounds in microseconds;
	// the final bucket in Buckets is the overflow bucket.
	BucketBounds []float64 `json:"bucket_bounds_us"`
	Buckets      []int     `json:"buckets"`
	// PredictedShare is the opcode's share of the cost model's total
	// predicted cost across all programs compiled by this process.
	PredictedShare float64 `json:"predicted_cost_share"`
}

// MetricsReport is the JSON document served by GET /metrics.
type MetricsReport struct {
	Node          string            `json:"node,omitempty"`
	UptimeSeconds float64           `json:"uptime_seconds"`
	Requests      map[string]uint64 `json:"requests"`
	// RequestsByClass splits each route's count by status class, so 4xx
	// shed traffic is distinguishable from 2xx served traffic.
	RequestsByClass  map[string]map[string]uint64 `json:"requests_by_class"`
	Cache            CacheStats                   `json:"cache"`
	CacheHitRate     float64                      `json:"cache_hit_rate"`
	Executions       uint64                       `json:"executions"`
	ExecutionsFailed uint64                       `json:"executions_failed"`
	ExecTotalMS      float64                      `json:"execution_total_ms"`
	// Jobs reports the async execution subsystem: queue depth, running
	// jobs, admitted-versus-budget bytes, shed/rejected submissions, outcome
	// counters, and the summed queue wait.
	Jobs jobs.Stats `json:"jobs"`
	// Store reports the durable artifact store (entries and bytes per
	// artifact kind, hit/miss traffic); the registry's hit/miss of the
	// cache in front of it is in Cache.StoreLoads / Cache.StoreMisses.
	// Omitted when the server runs without durability.
	Store *store.Stats `json:"store,omitempty"`
	// Coalesce reports cross-request batching: batches dispatched, requests
	// coalesced, per-batch slot occupancy, and the amortized per-request
	// execution cost of the shared runs.
	Coalesce *coalesce.Stats `json:"coalesce,omitempty"`
	// Handles reports the content-addressed ciphertext handle registry:
	// resident entries and bytes against the quota, put/dedup/resolve
	// traffic, and sweep/quota rejections.
	Handles *handle.Stats          `json:"handles,omitempty"`
	PerOp   map[string]OpHistogram `json:"per_op_latency"`
}

// Report snapshots the metrics against the registry's cache counters, the
// job manager's queue counters, and the artifact store's contents.
func (m *Metrics) Report(cache CacheStats, jobStats jobs.Stats, storeStats *store.Stats) MetricsReport {
	m.mu.Lock()
	defer m.mu.Unlock()

	bounds := make([]float64, len(execute.OpLatencyBounds))
	for i, b := range execute.OpLatencyBounds {
		bounds[i] = float64(b) / float64(time.Microsecond)
	}
	var predictedTotal float64
	for _, c := range m.predictedCost {
		predictedTotal += c
	}
	perOp := make(map[string]OpHistogram, len(m.perOp))
	ops := make([]string, 0, len(m.perOp))
	for op := range m.perOp {
		ops = append(ops, op)
	}
	for op := range m.predictedCost {
		if _, ok := m.perOp[op]; !ok {
			ops = append(ops, op)
		}
	}
	sort.Strings(ops)
	for _, op := range ops {
		h := OpHistogram{BucketBounds: bounds}
		if os := m.perOp[op]; os != nil {
			h.Count = os.Count
			h.TotalMS = float64(os.Total) / float64(time.Millisecond)
			if os.Count > 0 {
				h.MeanUS = float64(os.Total) / float64(os.Count) / float64(time.Microsecond)
			}
			h.MaxUS = float64(os.Max) / float64(time.Microsecond)
			h.Buckets = append([]int(nil), os.Buckets...)
		}
		if predictedTotal > 0 {
			h.PredictedShare = m.predictedCost[op] / predictedTotal
		}
		perOp[op] = h
	}

	requests := make(map[string]uint64, len(m.requests))
	byClass := make(map[string]map[string]uint64, len(m.requests))
	for k, rs := range m.requests {
		requests[k] = rs.count
		classes := make(map[string]uint64, len(rs.byClass))
		for c, n := range rs.byClass {
			classes[c] = n
		}
		byClass[k] = classes
	}
	return MetricsReport{
		UptimeSeconds:    time.Since(m.start).Seconds(),
		Requests:         requests,
		RequestsByClass:  byClass,
		Cache:            cache,
		CacheHitRate:     cache.HitRate(),
		Executions:       m.executions,
		ExecutionsFailed: m.execFailed,
		ExecTotalMS:      float64(m.execTotal) / float64(time.Millisecond),
		Jobs:             jobStats,
		Store:            storeStats,
		PerOp:            perOp,
	}
}
