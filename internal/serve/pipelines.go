package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"strconv"

	"eva/internal/analysis"
	"eva/internal/ckks"
	"eva/internal/core"
	"eva/internal/execute"
	"eva/internal/handle"
	"eva/internal/jobs"
	"eva/internal/obs"
)

// POST /pipelines executes a validated DAG of compiled program stages
// server-side: each stage runs against its own program and context, its
// encrypted outputs chain straight into later stages' inputs in memory (and
// are persisted as content-addressed handles), so a multi-stage encrypted
// workload never round-trips ciphertext through the client. The checker
// verifies every stage edge — level budget, scale, slot width, parameter
// fingerprint — at submit time and rejects incompatible chaining with a
// structured 422 before anything runs. The whole pipeline is one job through
// internal/jobs (admission control, SSE progress per stage, cancel, result
// fetch-once), with a per-stage span recorded in the request trace.

// PipelineInput is one input binding of a pipeline stage — the shared
// InputBinding shape used by every execution entry point; see InputBinding
// for the exactly-one-source rules.
type PipelineInput = InputBinding

// PipelineStage is one stage of a pipeline: a compiled program, the context
// to execute it under, its input bindings, and the output form — "handle"
// (the default: encrypted outputs are persisted and their ids returned) or,
// on the final stage of a demo-context pipeline only, "values" (decrypted).
type PipelineStage struct {
	ProgramID string                   `json:"program_id"`
	ContextID string                   `json:"context_id"`
	Inputs    map[string]PipelineInput `json:"inputs"`
	Output    string                   `json:"output,omitempty"`
}

// PipelineRequest is the body of POST /pipelines.
type PipelineRequest struct {
	Stages    []PipelineStage `json:"stages"`
	Workers   int             `json:"workers,omitempty"`
	Scheduler string          `json:"scheduler,omitempty"`
}

// maxPipelineStages bounds a pipeline's length; each stage is a full
// program execution, so the cap mirrors maxBatchesPerRequest in spirit.
const maxPipelineStages = 64

// stageRef is a resolved stage-to-stage edge: which earlier stage's output
// feeds which input.
type stageRef struct {
	stage  int
	output string
}

// pipelineStagePlan is one stage after validation: everything the runner
// needs, with all submit-time-resolvable inputs already resolved.
type pipelineStagePlan struct {
	entry   *Entry
	ce      *contextEntry
	pre     *execute.EncryptedInputs // decoded ciphers + plain inputs
	refs    map[string]stageRef      // input name -> upstream stage output
	values  map[string][]float64     // demo values, encrypted at run time
	outMode string
	// entryLevel is the level the stage's cipher inputs enter at: fresh
	// encryptions start at MaxLevel, chained/handle inputs lower it. The
	// stage's own outputs sit len(chain) rescales below it.
	entryLevel int
}

// producerMeta is the statically known metadata of a stage's encrypted
// output, playing the role of a handle's Meta for edges that exist only
// inside the pipeline: the stage's entry level minus the compiled chain
// length fixes the output level, the compiled scale its log2 scale.
func producerMeta(plan *pipelineStagePlan, outName string) (handle.Meta, error) {
	res := plan.entry.Result
	for _, out := range res.Program.Outputs() {
		if out.Name != outName {
			continue
		}
		if res.Types[out.Term] != core.TypeCipher {
			return handle.Meta{}, fmt.Errorf("output %q of program %s is not encrypted", outName, plan.entry.ID)
		}
		return handle.Meta{
			ContextID: plan.ce.ID,
			ParamsID:  paramsFingerprint(plan.ce.Ctx.Params),
			Level:     plan.entryLevel - len(res.Chains[out.Term]),
			LogScale:  res.Scales[out.Term],
			Width:     res.Program.VecSize,
		}, nil
	}
	return handle.Meta{}, fmt.Errorf("program %s has no output %q", plan.entry.ID, outName)
}

// defaultCipherOutput returns the producer's single encrypted output name,
// erroring when the choice is ambiguous.
func defaultCipherOutput(entry *Entry) (string, error) {
	res := entry.Result
	var name string
	for _, out := range res.Program.Outputs() {
		if res.Types[out.Term] != core.TypeCipher {
			continue
		}
		if name != "" {
			return "", fmt.Errorf("program %s has several encrypted outputs; name one with \"output\"", entry.ID)
		}
		name = out.Name
	}
	if name == "" {
		return "", fmt.Errorf("program %s has no encrypted output to chain", entry.ID)
	}
	return name, nil
}

func (s *Server) handlePipelineSubmit(w http.ResponseWriter, r *http.Request) {
	var req PipelineRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	if len(req.Stages) == 0 {
		writeError(w, http.StatusBadRequest, "no stages")
		return
	}
	if len(req.Stages) > maxPipelineStages {
		writeError(w, http.StatusRequestEntityTooLarge, "%d stages exceeds the pipeline limit of %d", len(req.Stages), maxPipelineStages)
		return
	}
	ropts, err := s.runOptions(req.Workers, req.Scheduler)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}

	// Validate the whole DAG before anything runs. Chaining incompatibilities
	// are collected across every edge (not first-failure), so the 422 body
	// names every bad edge at once; structural errors fail immediately.
	cache := newHandleCache()
	plans := make([]*pipelineStagePlan, len(req.Stages))
	var incompats []Incompat
	pendingValues := 0
	handleBytes := map[string]int64{}
	for i := range req.Stages {
		st := &req.Stages[i]
		ce, entry, status, err := s.resolveExecution(st.ProgramID, st.ContextID)
		if err != nil {
			writeError(w, status, "stage %d: %v", i, err)
			return
		}
		plan := &pipelineStagePlan{
			entry: entry,
			ce:    ce,
			pre: &execute.EncryptedInputs{
				Cipher: map[string]*ckks.Ciphertext{},
				Plain:  map[string][]float64{},
			},
			refs:       map[string]stageRef{},
			values:     map[string][]float64{},
			outMode:    st.Output,
			entryLevel: ce.Ctx.Params.MaxLevel(),
		}
		switch plan.outMode {
		case "":
			plan.outMode = outputHandle
		case outputHandle:
		case outputValues:
			if i != len(req.Stages)-1 {
				writeError(w, http.StatusBadRequest, "stage %d: only the final stage may decrypt with \"output\": \"values\"", i)
				return
			}
			if ce.Keys == nil {
				writeError(w, http.StatusBadRequest, "stage %d: \"output\": \"values\" needs a server-keygen (demo) context", i)
				return
			}
		default:
			writeError(w, http.StatusBadRequest, "stage %d: unknown output mode %q", i, st.Output)
			return
		}

		res := entry.Result
		br := s.newBindingResolver(ce, res, cache)
		for _, in := range res.Program.Inputs() {
			binding, ok := st.Inputs[in.Name]
			if !ok {
				writeError(w, http.StatusBadRequest, "stage %d: missing binding for input %q", i, in.Name)
				return
			}
			if in.InType != core.TypeCipher {
				full, ok, err := br.plain(in.Name, binding)
				if !ok {
					writeError(w, http.StatusBadRequest, "stage %d: plain input %q needs \"plain\" values", i, in.Name)
					return
				}
				if err != nil {
					writeError(w, http.StatusBadRequest, "stage %d: %v", i, err)
					return
				}
				plan.pre.Plain[in.Name] = full
				continue
			}
			sources := 0
			for _, set := range []bool{binding.Handle != "", binding.Stage != nil, binding.Cipher != "", binding.Values != nil} {
				if set {
					sources++
				}
			}
			if sources != 1 {
				writeError(w, http.StatusBadRequest, "stage %d: input %q needs exactly one of \"handle\", \"stage\", \"cipher\", or \"values\"", i, in.Name)
				return
			}
			switch {
			case binding.Stage != nil:
				j := *binding.Stage
				if j < 0 || j >= i {
					writeError(w, http.StatusBadRequest, "stage %d: input %q references stage %d; stages may only consume earlier stages", i, in.Name, j)
					return
				}
				outName := binding.Output
				if outName == "" {
					if outName, err = defaultCipherOutput(plans[j].entry); err != nil {
						writeError(w, http.StatusBadRequest, "stage %d: input %q: %v", i, in.Name, err)
						return
					}
				}
				meta, err := producerMeta(plans[j], outName)
				if err != nil {
					writeError(w, http.StatusBadRequest, "stage %d: input %q: %v", i, in.Name, err)
					return
				}
				if err := meta.Check(br.want(in.Name, in.LogScale)); err != nil {
					var m *handle.Mismatch
					if errors.As(err, &m) {
						incompats = append(incompats, Incompat{
							Stage: i, Input: in.Name,
							HandleID: fmt.Sprintf("stage[%d].%s", j, outName),
							Field:    m.Field, Want: m.Want, Got: m.Got,
						})
						continue
					}
					writeError(w, http.StatusBadRequest, "stage %d: input %q: %v", i, in.Name, err)
					return
				}
				if meta.Level < plan.entryLevel {
					plan.entryLevel = meta.Level
				}
				plan.refs[in.Name] = stageRef{stage: j, output: outName}
			case binding.Handle != "":
				rh, err := br.cipherFromHandle(r.Context(), in.Name, binding.Handle, in.LogScale)
				if err != nil {
					var cerr *compatError
					if errors.As(err, &cerr) {
						inc := cerr.incompat()
						inc.Stage = i
						incompats = append(incompats, inc)
						continue
					}
					if errors.Is(err, handle.ErrNotFound) {
						writeError(w, http.StatusNotFound, "stage %d: input %q: %v", i, in.Name, err)
						return
					}
					writeError(w, http.StatusBadRequest, "stage %d: input %q: %v", i, in.Name, err)
					return
				}
				if rh.meta.Level < plan.entryLevel {
					plan.entryLevel = rh.meta.Level
				}
				plan.pre.Cipher[in.Name] = rh.ct
				handleBytes[rh.meta.ID] = int64(rh.ct.MemoryBytes())
			case binding.Cipher != "":
				ct, err := br.cipherFromWire(binding.Cipher)
				if err != nil {
					writeError(w, http.StatusBadRequest, "stage %d: input %q: %v", i, in.Name, err)
					return
				}
				if ct.Level < plan.entryLevel {
					plan.entryLevel = ct.Level
				}
				plan.pre.Cipher[in.Name] = ct
			default: // values
				if ce.Keys == nil {
					writeError(w, http.StatusBadRequest, "stage %d: input %q: plaintext \"values\" need a server-keygen (demo) context", i, in.Name)
					return
				}
				if len(binding.Values) == 0 || len(binding.Values) > res.Program.VecSize {
					writeError(w, http.StatusBadRequest, "stage %d: input %q has %d values; want 1..%d", i, in.Name, len(binding.Values), res.Program.VecSize)
					return
				}
				plan.values[in.Name] = binding.Values
				pendingValues++
			}
		}
		plans[i] = plan
	}
	if len(incompats) > 0 {
		writeJSON(w, http.StatusUnprocessableEntity, apiError{
			Error:             fmt.Sprintf("incompatible pipeline chaining: %d edge(s) rejected", len(incompats)),
			Incompatibilities: incompats,
		})
		return
	}

	// One admission charge for the whole pipeline: every distinct resolved
	// handle once, fresh-ciphertext placeholders for demo values, decoded
	// uploads and plain vectors per stage, and the heaviest stage's modeled
	// peak (stages run sequentially, so their peaks never stack).
	est := s.estimatePipelineBytes(plans, handleBytes, pendingValues)

	id, err := jobs.NewID()
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	t := obs.TraceFromContext(r.Context())
	routeSpan := obs.SpanFromContext(r.Context())
	s.bindJobTrace(id, t)
	admit := t.StartSpan("admission", routeSpan)
	queueSpan := t.StartSpan("queue_wait", routeSpan)
	snap, err := s.jobs.SubmitWithID(id, len(plans), est, func(jctx context.Context, batchDone func(int)) (any, error) {
		queueSpan.End()
		return s.runPipeline(obs.ContextWithTrace(jctx, t), t, routeSpan, plans, ropts, cache, batchDone)
	})
	admit.End()
	if err != nil {
		queueSpan.End()
		if bound := s.takeJobTrace(id); bound != nil {
			bound.Release()
		}
		s.writeAdmissionError(w, err)
		return
	}
	s.log.Debug("pipeline submitted",
		slog.String(obs.LogJobID, id),
		slog.String(obs.LogTraceID, t.ID()),
		slog.Int("stages", len(plans)),
		slog.Int64("est_bytes", est))
	w.Header().Set("Location", "/jobs/"+snap.ID)
	st := jobStatusJSON(snap)
	st.TraceID = t.ID()
	writeJSON(w, http.StatusAccepted, st)
}

// estimatePipelineBytes is the pipeline's admission estimate; see the call
// site for the accounting rules.
func (s *Server) estimatePipelineBytes(plans []*pipelineStagePlan, handleBytes map[string]int64, pendingValues int) int64 {
	var est int64
	for _, b := range handleBytes {
		est += b
	}
	var peak int64
	for _, plan := range plans {
		res := plan.entry.Result
		for name, ct := range plan.pre.Cipher {
			if _, viaHandle := plan.refs[name]; viaHandle {
				continue
			}
			est += int64(ct.MemoryBytes()) // uploads; handles counted above
		}
		for _, pv := range plan.pre.Plain {
			est += int64(8 * len(pv))
		}
		model := analysis.CostModel{LogN: res.LogN, TotalLevels: len(res.Plan.BitSizes)}
		if p := model.EstimatePeakMemoryBytes(res.Program); p > peak {
			peak = p
		}
	}
	if len(plans) > 0 {
		res := plans[0].entry.Result
		n := int64(1) << uint(res.LogN)
		est += int64(pendingValues) * 2 * int64(len(res.Plan.BitSizes)) * n * 8
	}
	return est + peak
}

// runPipeline executes the validated stages in order inside one job: each
// stage gets a pipeline_stage span, its upstream edges are wired from the
// raw in-memory outputs of earlier stages (no serialize/store round-trip),
// and its results — output handle ids, or decrypted values on the final demo
// stage — become the job's per-stage BatchResults. A failing stage fails the
// whole pipeline.
func (s *Server) runPipeline(jctx context.Context, t *obs.Trace, parent *obs.Span, plans []*pipelineStagePlan, ropts execute.RunOptions, cache *handleCache, batchDone func(int)) (any, error) {
	results := make([]BatchResult, len(plans))
	rawOuts := make([]*execute.Outputs, len(plans))
	for i, plan := range plans {
		if err := jctx.Err(); err != nil {
			return nil, err
		}
		sp := t.StartSpan("pipeline_stage", parent)
		sp.SetAttr("stage", strconv.Itoa(i))
		sp.SetAttr("program", plan.entry.ID)
		pre := &execute.EncryptedInputs{
			Cipher: map[string]*ckks.Ciphertext{},
			Plain:  plan.pre.Plain,
		}
		for name, ct := range plan.pre.Cipher {
			pre.Cipher[name] = ct
		}
		missing := ""
		for name, ref := range plan.refs {
			ct := rawOuts[ref.stage].Cipher[ref.output]
			if ct == nil {
				missing = fmt.Sprintf("stage %d produced no output %q for input %q", ref.stage, ref.output, name)
				break
			}
			pre.Cipher[name] = ct
		}
		if missing != "" {
			sp.SetAttr("error", missing)
			sp.End()
			return nil, fmt.Errorf("stage %d: %s", i, missing)
		}
		batch := &ExecuteBatch{Values: plan.values}
		stageCtx := obs.ContextWithSpan(jctx, sp)
		result, out := s.runBatchOutputs(stageCtx, plan.entry, plan.ce, batch, pre, ropts, plan.outMode, cache)
		sp.End()
		results[i] = result
		if result.Error != "" {
			return nil, fmt.Errorf("stage %d: %s", i, result.Error)
		}
		rawOuts[i] = out
		batchDone(i)
	}
	return results, nil
}
