package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"math"
	"math/rand"
	"net/http"
	"sync"
	"testing"
	"time"

	"eva/internal/builder"
	"eva/internal/core"
	"eva/internal/execute"
)

// coalesceProgram is rotation-free with width-4 encrypted inputs on a
// 32-slot vector: stride 4, so up to 8 callers share one ciphertext. The
// square forces RELINEARIZE + RESCALE, so the shared run exercises the full
// cipher pipeline, not just element-wise adds.
func coalesceProgram(t testing.TB) *core.Program {
	t.Helper()
	b := builder.New("coalesce-e2e", 32)
	x := b.InputWithWidth("x", 4, 30)
	y := b.InputWithWidth("y", 4, 30)
	b.Output("out", x.Square().Add(y).MulScalar(0.5, 30), 30)
	prog, err := b.Program()
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

// coalesceFixture compiles the rotation-free program onto a demo context.
type coalesceFixture struct {
	url       string
	client    *http.Client
	srv       *Server
	prog      *core.Program
	programID string
	contextID string
}

func newCoalesceFixture(t testing.TB, cfg Config) *coalesceFixture {
	t.Helper()
	cfg.AllowServerKeygen = true
	ts, srv := newTestServer(t, cfg)
	client := ts.Client()
	prog := coalesceProgram(t)
	comp, resp := postJSON[CompileResponse](t, client, ts.URL+"/compile", compileRequest(t, prog))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("compile: status %d", resp.StatusCode)
	}
	ctxResp, resp := postJSON[ContextResponse](t, client, ts.URL+"/contexts", ContextRequest{
		ProgramID: comp.ID,
		Keygen:    &KeygenJSON{Seed: 6},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("contexts: status %d", resp.StatusCode)
	}
	return &coalesceFixture{
		url: ts.URL, client: client, srv: srv,
		prog: prog, programID: comp.ID, contextID: ctxResp.ContextID,
	}
}

// callerInputs builds distinct width-4 inputs for caller i.
func callerInputs(i int) execute.Inputs {
	base := float64(i + 1)
	return execute.Inputs{
		"x": {base, base + 0.25, base + 0.5, base + 0.75},
		"y": {-base, base, -base / 2, base / 2},
	}
}

// wantOutput is caller i's exact cleartext result (the unencrypted
// reference execution), truncated to the caller's stride. CKKS outputs are
// compared against it within the same 1e-2 tolerance the unbatched e2e
// tests use — encryption noise differs run to run, so bit-equality between
// a coalesced and an unbatched run is not a meaningful check; equality to
// the shared cleartext reference within the program's precision is.
func (f *coalesceFixture) wantOutput(t testing.TB, i int) []float64 {
	t.Helper()
	ref, err := execute.RunReference(f.prog, callerInputs(i))
	if err != nil {
		t.Fatal(err)
	}
	return ref["out"][:4]
}

func (f *coalesceFixture) coalescedRequest(i int) JobRequest {
	in := callerInputs(i)
	return JobRequest{
		ProgramID: f.programID,
		ContextID: f.contextID,
		Batches:   []ExecuteBatch{{Values: map[string][]float64{"x": in["x"], "y": in["y"]}}},
	}
}

// postCoalesced submits one coalesced caller under ctx (cancellable).
func (f *coalesceFixture) postCoalesced(ctx context.Context, i int) (CoalesceResponse, int, error) {
	payload, err := json.Marshal(f.coalescedRequest(i))
	if err != nil {
		return CoalesceResponse{}, 0, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, f.url+"/jobs?coalesce=1", bytes.NewReader(payload))
	if err != nil {
		return CoalesceResponse{}, 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := f.client.Do(req)
	if err != nil {
		return CoalesceResponse{}, 0, err
	}
	defer resp.Body.Close()
	var out CoalesceResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return CoalesceResponse{}, resp.StatusCode, err
	}
	return out, resp.StatusCode, nil
}

// TestCoalesceSharedBatch: two concurrent narrow callers ride ONE batched
// execution — same batch job, disjoint slot ranges, correct per-caller
// results, occupancy visible in /metrics.
func TestCoalesceSharedBatch(t *testing.T) {
	f := newCoalesceFixture(t, Config{CoalesceMaxBatch: 2, CoalesceMaxWait: 10 * time.Second})
	var wg sync.WaitGroup
	responses := make([]CoalesceResponse, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, status, err := f.postCoalesced(context.Background(), i)
			if err != nil || status != http.StatusOK {
				t.Errorf("caller %d: status %d err %v", i, status, err)
				return
			}
			responses[i] = resp
		}(i)
	}
	wg.Wait()

	if responses[0].BatchJobID == "" || responses[0].BatchJobID != responses[1].BatchJobID {
		t.Fatalf("callers rode different batches: %q vs %q", responses[0].BatchJobID, responses[1].BatchJobID)
	}
	starts := map[int]bool{}
	for i, r := range responses {
		if r.BatchSize != 2 {
			t.Errorf("caller %d batch size %d; want 2", i, r.BatchSize)
		}
		if r.Slot.Width != 4 || r.Slot.Start%4 != 0 || starts[r.Slot.Start] {
			t.Errorf("caller %d slot %+v (dup=%v)", i, r.Slot, starts[r.Slot.Start])
		}
		starts[r.Slot.Start] = true
		if want := 8.0 / 32.0; r.Occupancy != want {
			t.Errorf("caller %d occupancy %v; want %v", i, r.Occupancy, want)
		}
		if r.Result.Error != "" {
			t.Fatalf("caller %d result error: %s", i, r.Result.Error)
		}
		want := f.wantOutput(t, i)
		got := r.Result.Values["out"]
		if len(got) != len(want) {
			t.Fatalf("caller %d got %d output slots; want %d", i, len(got), len(want))
		}
		for j := range want {
			if math.Abs(got[j]-want[j]) > 1e-2 {
				t.Errorf("caller %d slot %d: got %v, want %v", i, j, got[j], want[j])
			}
		}
	}

	report := getJSON[MetricsReport](t, f.client, f.url+"/metrics")
	if report.Coalesce == nil {
		t.Fatal("/metrics has no coalesce section")
	}
	if report.Coalesce.Batches != 1 || report.Coalesce.Requests != 2 {
		t.Errorf("coalesce metrics %+v; want 1 batch, 2 requests", report.Coalesce)
	}
	if report.Coalesce.LastBatchOccupancy != 8.0/32.0 {
		t.Errorf("last batch occupancy %v; want 0.25", report.Coalesce.LastBatchOccupancy)
	}
	if report.Coalesce.AmortizedRequestMS <= 0 {
		t.Errorf("amortized request ms %v; want > 0", report.Coalesce.AmortizedRequestMS)
	}
}

// TestCoalesceEstimateChargesBatchOnce is the admission-control regression
// test: a batch of k coalesced callers is charged like ONE job of this
// program — the shared ciphertexts are estimated once, not once per caller.
func TestCoalesceEstimateChargesBatchOnce(t *testing.T) {
	const k = 4
	f := newCoalesceFixture(t, Config{CoalesceMaxBatch: k, CoalesceMaxWait: 10 * time.Second})
	var wg sync.WaitGroup
	responses := make([]CoalesceResponse, k)
	for i := 0; i < k; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, status, err := f.postCoalesced(context.Background(), i)
			if err != nil || status != http.StatusOK {
				t.Errorf("caller %d: status %d err %v", i, status, err)
				return
			}
			responses[i] = resp
		}(i)
	}
	wg.Wait()
	batchID := responses[0].BatchJobID
	for i, r := range responses {
		if r.BatchJobID != batchID || r.BatchSize != k {
			t.Fatalf("caller %d: batch %q size %d; want %q size %d", i, r.BatchJobID, r.BatchSize, batchID, k)
		}
	}
	batchStatus := getJSON[JobStatus](t, f.client, f.url+"/jobs/"+batchID)

	// One unbatched job over the same program: the admission estimate of the
	// k-caller batch must equal it exactly (same program, same input kinds),
	// not k times it.
	single, resp := postJSON[JobStatus](t, f.client, f.url+"/jobs", f.coalescedRequest(0))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("unbatched submit: status %d", resp.StatusCode)
	}
	if batchStatus.EstBytes <= 0 || single.EstBytes <= 0 {
		t.Fatalf("estimates not populated: batch=%d single=%d", batchStatus.EstBytes, single.EstBytes)
	}
	if batchStatus.EstBytes != single.EstBytes {
		t.Errorf("coalesced batch estimated %d bytes, single job %d; a %d-caller batch must be charged once, not per caller",
			batchStatus.EstBytes, single.EstBytes, k)
	}
}

// TestCoalesceValidation: everything wrong with a caller is rejected before
// it can join (and poison) a batch.
func TestCoalesceValidation(t *testing.T) {
	f := newCoalesceFixture(t, Config{CoalesceMaxBatch: 2, CoalesceMaxWait: 20 * time.Millisecond})

	// A program that rotates is incompatible with slot packing.
	rot, resp := postJSON[CompileResponse](t, f.client, f.url+"/compile", compileRequest(t, e2eProgram(t)))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("compile rotating program: status %d", resp.StatusCode)
	}
	rotCtx, resp := postJSON[ContextResponse](t, f.client, f.url+"/contexts", ContextRequest{
		ProgramID: rot.ID, Keygen: &KeygenJSON{Seed: 7},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("context for rotating program: status %d", resp.StatusCode)
	}

	ok := f.coalescedRequest(0)
	twoBatches := ok
	twoBatches.Batches = append([]ExecuteBatch{}, ok.Batches[0], ok.Batches[0])
	wide := f.coalescedRequest(0)
	wide.Batches = []ExecuteBatch{{Values: map[string][]float64{
		"x": make([]float64, 32), "y": {1},
	}}}
	missing := f.coalescedRequest(0)
	missing.Batches = []ExecuteBatch{{Values: map[string][]float64{"x": {1}}}}
	encrypted := f.coalescedRequest(0)
	encrypted.Batches = []ExecuteBatch{{Cipher: map[string]string{"x": "AAAA", "y": "AAAA"}}}

	cases := []struct {
		name string
		req  JobRequest
		want int
	}{
		{"rotating program", JobRequest{ProgramID: rot.ID, ContextID: rotCtx.ContextID,
			Batches: []ExecuteBatch{{Values: map[string][]float64{"x": {1}, "y": {1}}}}}, http.StatusUnprocessableEntity},
		{"two batches", twoBatches, http.StatusBadRequest},
		{"input wider than stride", wide, http.StatusBadRequest},
		{"missing input", missing, http.StatusBadRequest},
		{"client-encrypted inputs", encrypted, http.StatusBadRequest},
		{"unknown context", JobRequest{ProgramID: f.programID, ContextID: "nope",
			Batches: ok.Batches}, http.StatusNotFound},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			body, resp := postJSON[apiError](t, f.client, f.url+"/jobs?coalesce=1", tc.req)
			if resp.StatusCode != tc.want {
				t.Fatalf("status %d (%+v); want %d", resp.StatusCode, body, tc.want)
			}
		})
	}
}

// TestCoalesceRace is the concurrency e2e: many submitters with jittered
// arrival against short-wait batches, a fraction cancelling mid-wait and
// mid-run. Run under -race in CI. Invariants: every surviving caller gets
// exactly its own reference result (within CKKS precision) — cancelled
// callers never poison co-batched peers — and every survivor's slot
// placement is internally consistent.
func TestCoalesceRace(t *testing.T) {
	f := newCoalesceFixture(t, Config{
		CoalesceMaxBatch: 4,
		CoalesceMaxWait:  15 * time.Millisecond,
		JobWorkers:       4,
	})
	const callers = 24
	rng := rand.New(rand.NewSource(42))
	jitters := make([]time.Duration, callers)
	cancels := make([]time.Duration, callers)
	for i := range jitters {
		jitters[i] = time.Duration(rng.Intn(20)) * time.Millisecond
		// Every 3rd caller cancels itself somewhere between "still waiting
		// in an unsealed batch" and "batch mid-run".
		if i%3 == 0 {
			cancels[i] = time.Duration(5+rng.Intn(40)) * time.Millisecond
		}
	}

	type outcome struct {
		resp      CoalesceResponse
		status    int
		err       error
		cancelled bool
	}
	results := make([]outcome, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			time.Sleep(jitters[i])
			ctx := context.Background()
			if cancels[i] > 0 {
				var cancel context.CancelFunc
				ctx, cancel = context.WithTimeout(ctx, cancels[i])
				defer cancel()
			}
			resp, status, err := f.postCoalesced(ctx, i)
			results[i] = outcome{resp: resp, status: status, err: err, cancelled: cancels[i] > 0}
		}(i)
	}
	wg.Wait()

	survivors := 0
	for i, out := range results {
		if out.err != nil || out.status != http.StatusOK {
			if !out.cancelled {
				t.Errorf("caller %d failed without cancelling: status %d err %v", i, out.status, out.err)
			}
			continue // a cancelled caller may fail; that's its own doing
		}
		survivors++
		r := out.resp
		if r.Result.Error != "" {
			t.Errorf("caller %d: result error %q", i, r.Result.Error)
			continue
		}
		if r.BatchSize < 1 || r.BatchSize > 4 {
			t.Errorf("caller %d: batch size %d out of bounds", i, r.BatchSize)
		}
		if r.Slot.Width != 4 || r.Slot.Start%4 != 0 || r.Slot.End() > 32 {
			t.Errorf("caller %d: bad slot %+v", i, r.Slot)
		}
		want := f.wantOutput(t, i)
		got := r.Result.Values["out"]
		if len(got) != len(want) {
			t.Errorf("caller %d: %d output slots; want %d", i, len(got), len(want))
			continue
		}
		for j := range want {
			if math.Abs(got[j]-want[j]) > 1e-2 {
				t.Errorf("caller %d slot %d: got %v, want %v — another caller's data?", i, j, got[j], want[j])
			}
		}
	}
	if survivors == 0 {
		t.Fatal("no caller survived; the test asserted nothing")
	}
	t.Logf("%d/%d callers survived", survivors, callers)

	s := f.srv.Coalescer().Stats()
	if s.Batches == 0 || s.Requests == 0 {
		t.Errorf("coalesce stats empty after the storm: %+v", s)
	}
	if s.SlotsUsed > s.SlotsTotal {
		t.Errorf("slots used %d exceed slots dispatched %d", s.SlotsUsed, s.SlotsTotal)
	}
}

// TestCoalesceUnbatchedAgreement: the same caller's inputs through the
// coalesced path and the plain /jobs path produce the same answer (within
// CKKS precision) — packing is semantically invisible.
func TestCoalesceUnbatchedAgreement(t *testing.T) {
	f := newCoalesceFixture(t, Config{CoalesceMaxBatch: 2, CoalesceMaxWait: 10 * time.Second})
	var wg sync.WaitGroup
	coalesced := make([]CoalesceResponse, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, status, err := f.postCoalesced(context.Background(), i)
			if err != nil || status != http.StatusOK {
				t.Errorf("caller %d: status %d err %v", i, status, err)
				return
			}
			coalesced[i] = resp
		}(i)
	}
	wg.Wait()

	for i := 0; i < 2; i++ {
		status, resp := postJSON[JobStatus](t, f.client, f.url+"/jobs", f.coalescedRequest(i))
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("unbatched submit %d: status %d", i, resp.StatusCode)
		}
		readSSE(t, f.client, f.url+"/jobs/"+status.JobID+"/events")
		result := getJSON[JobResult](t, f.client, f.url+"/jobs/"+status.JobID+"/result")
		if len(result.Results) != 1 || result.Results[0].Error != "" {
			t.Fatalf("unbatched job %d: %+v", i, result.Results)
		}
		unbatched := result.Results[0].Values["out"][:4]
		got := coalesced[i].Result.Values["out"]
		for j := range unbatched {
			if math.Abs(got[j]-unbatched[j]) > 2e-2 {
				t.Errorf("caller %d slot %d: coalesced %v vs unbatched %v", i, j, got[j], unbatched[j])
			}
		}
	}
}
