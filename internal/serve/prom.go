package serve

import (
	"io"
	"sort"
	"time"

	"eva/internal/execute"
	"eva/internal/obs"
)

// WritePrometheus renders the full metrics surface in the Prometheus text
// exposition format: per-route request counters split by status class with
// latency histograms, cache/execution counters, per-opcode latency
// histograms (RunStats buckets converted to seconds), jobs/store/coalesce
// gauges, and the tracer's per-phase duration histograms. The JSON report
// (GET /metrics) is unchanged; this is GET /metrics?format=prometheus.
func (s *Server) WritePrometheus(w io.Writer) error {
	p := obs.NewPromWriter(w)

	m := s.metrics
	m.mu.Lock()
	uptime := time.Since(m.start).Seconds()
	routes := make([]string, 0, len(m.requests))
	for r := range m.requests {
		routes = append(routes, r)
	}
	sort.Strings(routes)

	p.Meta("eva_uptime_seconds", "Seconds since the server started.", "gauge")
	p.Sample("eva_uptime_seconds", nil, uptime)

	if len(routes) > 0 {
		p.Meta("eva_requests_total", "HTTP requests by route and status class.", "counter")
		for _, route := range routes {
			rs := m.requests[route]
			classes := make([]string, 0, len(rs.byClass))
			for c := range rs.byClass {
				classes = append(classes, c)
			}
			sort.Strings(classes)
			for _, c := range classes {
				p.Sample("eva_requests_total", map[string]string{"route": route, "code": c}, float64(rs.byClass[c]))
			}
		}
		p.Meta("eva_request_duration_seconds", "HTTP request handling latency by route.", "histogram")
		for _, route := range routes {
			p.Histogram("eva_request_duration_seconds", map[string]string{"route": route}, m.requests[route].latency.Snapshot())
		}
	}

	p.Meta("eva_executions_total", "Batch executions completed.", "counter")
	p.Sample("eva_executions_total", nil, float64(m.executions))
	p.Meta("eva_execution_errors_total", "Batch executions failed (cancellations excluded).", "counter")
	p.Sample("eva_execution_errors_total", nil, float64(m.execFailed))
	p.Meta("eva_execution_seconds_total", "Summed wall time of batch executions.", "counter")
	p.Sample("eva_execution_seconds_total", nil, m.execTotal.Seconds())

	if len(m.perOp) > 0 {
		opBounds := make([]float64, len(execute.OpLatencyBounds))
		for i, b := range execute.OpLatencyBounds {
			opBounds[i] = b.Seconds()
		}
		ops := make([]string, 0, len(m.perOp))
		for op := range m.perOp {
			ops = append(ops, op)
		}
		sort.Strings(ops)
		p.Meta("eva_op_duration_seconds", "Per-opcode instruction latency across all executions.", "histogram")
		for _, op := range ops {
			os := m.perOp[op]
			snap := obs.HistogramSnapshot{
				Bounds: opBounds,
				Counts: make([]uint64, len(opBounds)+1),
				Sum:    os.Total.Seconds(),
				Count:  uint64(os.Count),
			}
			for i, n := range os.Buckets {
				if i < len(snap.Counts) {
					snap.Counts[i] = uint64(n)
				}
			}
			p.Histogram("eva_op_duration_seconds", map[string]string{"op": op}, snap)
		}
	}

	var predictedTotal float64
	for _, c := range m.predictedCost {
		predictedTotal += c
	}
	if predictedTotal > 0 {
		predOps := make([]string, 0, len(m.predictedCost))
		for op := range m.predictedCost {
			predOps = append(predOps, op)
		}
		sort.Strings(predOps)
		p.Meta("eva_op_predicted_cost_share", "Per-opcode share of the cost model's total predicted cost.", "gauge")
		for _, op := range predOps {
			p.Sample("eva_op_predicted_cost_share", map[string]string{"op": op}, m.predictedCost[op]/predictedTotal)
		}
	}
	m.mu.Unlock()

	cache := s.registry.Stats()
	p.Meta("eva_cache_entries", "Compiled programs resident in the registry cache.", "gauge")
	p.Sample("eva_cache_entries", nil, float64(cache.Size))
	p.Meta("eva_cache_hits_total", "Registry cache hits.", "counter")
	p.Sample("eva_cache_hits_total", nil, float64(cache.Hits))
	p.Meta("eva_cache_misses_total", "Registry cache misses.", "counter")
	p.Sample("eva_cache_misses_total", nil, float64(cache.Misses))
	p.Meta("eva_cache_evictions_total", "Registry cache evictions.", "counter")
	p.Sample("eva_cache_evictions_total", nil, float64(cache.Evictions))

	js := s.jobs.Stats()
	p.Meta("eva_jobs_queue_depth", "Jobs waiting for a worker.", "gauge")
	p.Sample("eva_jobs_queue_depth", nil, float64(js.QueueDepth))
	p.Meta("eva_jobs_running", "Jobs currently executing.", "gauge")
	p.Sample("eva_jobs_running", nil, float64(js.Running))
	p.Meta("eva_jobs_admitted_bytes", "Estimated resident bytes of admitted jobs.", "gauge")
	p.Sample("eva_jobs_admitted_bytes", nil, float64(js.AdmittedBytes))
	p.Meta("eva_jobs_budget_bytes", "Admission-control memory budget.", "gauge")
	p.Sample("eva_jobs_budget_bytes", nil, float64(js.BudgetBytes))
	p.Meta("eva_jobs_submitted_total", "Jobs admitted.", "counter")
	p.Sample("eva_jobs_submitted_total", nil, float64(js.Submitted))
	p.Meta("eva_jobs_completed_total", "Jobs finished successfully.", "counter")
	p.Sample("eva_jobs_completed_total", nil, float64(js.Completed))
	p.Meta("eva_jobs_failed_total", "Jobs that failed.", "counter")
	p.Sample("eva_jobs_failed_total", nil, float64(js.Failed))
	p.Meta("eva_jobs_cancelled_total", "Jobs cancelled.", "counter")
	p.Sample("eva_jobs_cancelled_total", nil, float64(js.Cancelled))
	p.Meta("eva_jobs_shed_total", "Submissions shed by queue or budget pressure.", "counter")
	p.Sample("eva_jobs_shed_total", nil, float64(js.Shed))
	p.Meta("eva_jobs_rejected_total", "Submissions rejected as too large for the budget.", "counter")
	p.Sample("eva_jobs_rejected_total", nil, float64(js.Rejected))
	p.Meta("eva_jobs_wait_seconds_total", "Summed queue wait of started jobs.", "counter")
	p.Sample("eva_jobs_wait_seconds_total", nil, js.TotalWaitMillis/1000)

	cs := s.coalescer.Stats()
	p.Meta("eva_coalesce_open_waiters", "Callers waiting in unsealed batches.", "gauge")
	p.Sample("eva_coalesce_open_waiters", nil, float64(cs.OpenWaiters))
	p.Meta("eva_coalesce_batches_total", "Coalesced batches dispatched.", "counter")
	p.Sample("eva_coalesce_batches_total", nil, float64(cs.Batches))
	p.Meta("eva_coalesce_requests_total", "Callers sealed into dispatched batches.", "counter")
	p.Sample("eva_coalesce_requests_total", nil, float64(cs.Requests))
	p.Meta("eva_coalesce_evicted_total", "Callers cancelled before their batch sealed.", "counter")
	p.Sample("eva_coalesce_evicted_total", nil, float64(cs.Evicted))
	p.Meta("eva_coalesce_abandoned_total", "Callers cancelled after their batch sealed.", "counter")
	p.Sample("eva_coalesce_abandoned_total", nil, float64(cs.Abandoned))
	p.Meta("eva_coalesce_occupancy", "Cumulative slot occupancy of dispatched batches.", "gauge")
	p.Sample("eva_coalesce_occupancy", nil, cs.Occupancy)

	if s.cfg.Store != nil {
		ss := s.cfg.Store.Stats()
		p.Meta("eva_store_entries", "Artifacts resident in the durable store.", "gauge")
		p.Sample("eva_store_entries", nil, float64(ss.Entries))
		p.Meta("eva_store_bytes", "Bytes resident in the durable store.", "gauge")
		p.Sample("eva_store_bytes", nil, float64(ss.Bytes))
		p.Meta("eva_store_gets_total", "Store read operations.", "counter")
		p.Sample("eva_store_gets_total", nil, float64(ss.Gets))
		p.Meta("eva_store_puts_total", "Store write operations.", "counter")
		p.Sample("eva_store_puts_total", nil, float64(ss.Puts))
		p.Meta("eva_store_misses_total", "Store reads that found nothing.", "counter")
		p.Sample("eva_store_misses_total", nil, float64(ss.Misses))
	}

	hs := s.handles.Stats()
	p.Meta("eva_handles_entries", "Ciphertext handles resident in the registry.", "gauge")
	p.Sample("eva_handles_entries", nil, float64(hs.Entries))
	p.Meta("eva_handles_bytes", "Bytes resident in the handle registry.", "gauge")
	p.Sample("eva_handles_bytes", nil, float64(hs.Bytes))
	p.Meta("eva_handles_quota_bytes", "Configured handle byte quota.", "gauge")
	p.Sample("eva_handles_quota_bytes", nil, float64(hs.QuotaBytes))
	p.Meta("eva_handles_puts_total", "Handles stored.", "counter")
	p.Sample("eva_handles_puts_total", nil, float64(hs.Puts))
	p.Meta("eva_handles_dedups_total", "Handle puts that hit an existing content address.", "counter")
	p.Sample("eva_handles_dedups_total", nil, float64(hs.Dedups))
	p.Meta("eva_handles_resolves_total", "Handle reads (input resolution and fetches).", "counter")
	p.Sample("eva_handles_resolves_total", nil, float64(hs.Resolves))
	p.Meta("eva_handles_misses_total", "Handle reads of unknown ids.", "counter")
	p.Sample("eva_handles_misses_total", nil, float64(hs.Misses))
	p.Meta("eva_handles_deletes_total", "Handles deleted.", "counter")
	p.Sample("eva_handles_deletes_total", nil, float64(hs.Deletes))
	p.Meta("eva_handles_swept_total", "Handles reclaimed by retention sweeps.", "counter")
	p.Sample("eva_handles_swept_total", nil, float64(hs.Swept))
	p.Meta("eva_handles_quota_rejected_total", "Handle puts refused by the byte quota.", "counter")
	p.Sample("eva_handles_quota_rejected_total", nil, float64(hs.QuotaRejected))

	phases := s.tracer.PhaseHistograms()
	if len(phases) > 0 {
		names := make([]string, 0, len(phases))
		for name := range phases {
			names = append(names, name)
		}
		sort.Strings(names)
		p.Meta("eva_trace_phase_duration_seconds", "Span durations of finished traces by phase.", "histogram")
		for _, name := range names {
			p.Histogram("eva_trace_phase_duration_seconds", map[string]string{"phase": name}, phases[name])
		}
	}

	s.profiles.WriteProm(p)
	return p.Err()
}
