// Package apps contains the application suite the paper evaluates in Section
// 8.3 (Table 8): 3-dimensional path length, linear / polynomial /
// multivariate regression, Sobel filter detection and Harris corner
// detection. Every application provides the EVA program (built through the
// frontend), an input generator, and an independent plain implementation used
// to validate the homomorphic results.
package apps

import (
	"fmt"
	"math/rand"

	"eva/internal/builder"
	"eva/internal/core"
	"eva/internal/execute"
)

// sqrtPoly is the 3rd-degree polynomial approximation of the square root used
// by the paper's PyEVA examples (Figure 6): sqrt(x) ~ 2.214x - 1.098x² + 0.173x³
// for x in (0, 2].
var sqrtPoly = []float64{0, 2.214, -1.098, 0.173}

func sqrtApprox(x float64) float64 {
	return 2.214*x - 1.098*x*x + 0.173*x*x*x
}

// PaperResult records the corresponding row of Table 8 for comparison.
type PaperResult struct {
	VectorSize  int
	LinesOfCode int
	TimeSeconds float64
}

// App bundles one benchmark application.
type App struct {
	Name    string
	Program *core.Program
	// LinesOfCode is the size of the frontend code constructing the program
	// (the Table 8 programmability metric).
	LinesOfCode int
	// Paper is the paper's reported row for this application.
	Paper PaperResult
	// MakeInputs generates a random input assignment.
	MakeInputs func(rng *rand.Rand) execute.Inputs
	// Plain computes the expected outputs directly (independently of the EVA
	// graph), with the same cyclic-rotation semantics as the program.
	Plain func(in execute.Inputs) map[string][]float64
}

// PathLength3D builds the secure fitness-tracking kernel: given encrypted
// per-step displacements dx, dy, dz, it computes the total path length
// sum_i sqrt(dx_i²+dy_i²+dz_i²) using the polynomial square-root approximation.
func PathLength3D(vecSize int) (*App, error) {
	b := builder.New("path_length_3d", vecSize)
	const scale = 30
	dx := b.Input("dx", scale)
	dy := b.Input("dy", scale)
	dz := b.Input("dz", scale)
	norm2 := dx.Square().Add(dy.Square()).Add(dz.Square())
	step := norm2.Polynomial(sqrtPoly, scale)
	total := step.SumSlots(vecSize)
	b.Output("length", total, scale)
	prog, err := b.Program()
	if err != nil {
		return nil, fmt.Errorf("apps: path length: %w", err)
	}
	return &App{
		Name:        "3-dimensional Path Length",
		Program:     prog,
		LinesOfCode: 12,
		Paper:       PaperResult{VectorSize: 4096, LinesOfCode: 45, TimeSeconds: 0.394},
		MakeInputs: func(rng *rand.Rand) execute.Inputs {
			return execute.Inputs{
				"dx": randomVec(rng, vecSize, 0.5),
				"dy": randomVec(rng, vecSize, 0.5),
				"dz": randomVec(rng, vecSize, 0.5),
			}
		},
		Plain: func(in execute.Inputs) map[string][]float64 {
			total := 0.0
			steps := make([]float64, vecSize)
			for i := 0; i < vecSize; i++ {
				n2 := in["dx"][i]*in["dx"][i] + in["dy"][i]*in["dy"][i] + in["dz"][i]*in["dz"][i]
				steps[i] = sqrtApprox(n2)
			}
			for _, s := range steps {
				total += s
			}
			out := make([]float64, vecSize)
			for i := range out {
				// SumSlots produces the cyclic window sum in every slot; slot 0
				// holds the total.
				s := 0.0
				for j := 0; j < vecSize; j++ {
					s += steps[(i+j)%vecSize]
				}
				out[i] = s
			}
			_ = total
			return map[string][]float64{"length": out}
		},
	}, nil
}

// LinearRegression evaluates y = w·x + c on an encrypted vector of samples
// with plaintext model parameters.
func LinearRegression(vecSize int) (*App, error) {
	b := builder.New("linear_regression", vecSize)
	const scale = 30
	const w, c = 1.7, -0.31
	x := b.Input("x", scale)
	y := x.MulScalar(w, scale).AddScalar(c, scale)
	b.Output("y", y, scale)
	prog, err := b.Program()
	if err != nil {
		return nil, fmt.Errorf("apps: linear regression: %w", err)
	}
	return &App{
		Name:        "Linear Regression",
		Program:     prog,
		LinesOfCode: 6,
		Paper:       PaperResult{VectorSize: 2048, LinesOfCode: 10, TimeSeconds: 0.027},
		MakeInputs: func(rng *rand.Rand) execute.Inputs {
			return execute.Inputs{"x": randomVec(rng, vecSize, 1)}
		},
		Plain: func(in execute.Inputs) map[string][]float64 {
			out := make([]float64, vecSize)
			for i := range out {
				out[i] = w*in["x"][i] + c
			}
			return map[string][]float64{"y": out}
		},
	}, nil
}

// PolynomialRegression evaluates a cubic model y = c0 + c1·x + c2·x² + c3·x³
// on an encrypted vector of samples.
func PolynomialRegression(vecSize int) (*App, error) {
	b := builder.New("polynomial_regression", vecSize)
	const scale = 30
	coeffs := []float64{0.5, 1.2, -0.7, 0.25}
	x := b.Input("x", scale)
	y := x.Polynomial(coeffs, scale)
	b.Output("y", y, scale)
	prog, err := b.Program()
	if err != nil {
		return nil, fmt.Errorf("apps: polynomial regression: %w", err)
	}
	return &App{
		Name:        "Polynomial Regression",
		Program:     prog,
		LinesOfCode: 7,
		Paper:       PaperResult{VectorSize: 4096, LinesOfCode: 15, TimeSeconds: 0.104},
		MakeInputs: func(rng *rand.Rand) execute.Inputs {
			return execute.Inputs{"x": randomVec(rng, vecSize, 1)}
		},
		Plain: func(in execute.Inputs) map[string][]float64 {
			out := make([]float64, vecSize)
			for i := range out {
				x := in["x"][i]
				out[i] = coeffs[0] + coeffs[1]*x + coeffs[2]*x*x + coeffs[3]*x*x*x
			}
			return map[string][]float64{"y": out}
		},
	}, nil
}

// MultivariateRegression evaluates y = w·x + c where every sample packs
// `features` consecutive slots of the encrypted vector; the prediction for a
// sample lands in its first slot.
func MultivariateRegression(vecSize, features int) (*App, error) {
	if features <= 0 || features&(features-1) != 0 || features > vecSize {
		return nil, fmt.Errorf("apps: feature count %d must be a power of two at most %d", features, vecSize)
	}
	b := builder.New("multivariate_regression", vecSize)
	const scale = 30
	weights := make([]float64, features)
	for i := range weights {
		weights[i] = 0.3 + 0.2*float64(i)
	}
	const c = 0.11
	x := b.Input("x", scale)
	dot := x.DotPlain(weights, scale, features)
	y := dot.AddScalar(c, 2*scale)
	b.Output("y", y, scale)
	prog, err := b.Program()
	if err != nil {
		return nil, fmt.Errorf("apps: multivariate regression: %w", err)
	}
	return &App{
		Name:        "Multivariate Regression",
		Program:     prog,
		LinesOfCode: 9,
		Paper:       PaperResult{VectorSize: 2048, LinesOfCode: 15, TimeSeconds: 0.094},
		MakeInputs: func(rng *rand.Rand) execute.Inputs {
			return execute.Inputs{"x": randomVec(rng, vecSize, 1)}
		},
		Plain: func(in execute.Inputs) map[string][]float64 {
			out := make([]float64, vecSize)
			for i := range out {
				s := 0.0
				// The packed layout makes slots with i%features == 0 carry the
				// predictions; other slots hold rotated partial products, which
				// the plain model mirrors exactly.
				for j := 0; j < features; j++ {
					idx := (i + j) % vecSize
					s += weights[idx%features] * in["x"][idx]
				}
				out[i] = s + c
			}
			return map[string][]float64{"y": out}
		},
	}, nil
}

// randomVec draws values uniformly from (-amplitude, amplitude).
func randomVec(rng *rand.Rand, n int, amplitude float64) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = (rng.Float64()*2 - 1) * amplitude
	}
	return v
}

// randomImage draws pixel intensities from [0, amplitude).
func randomImage(rng *rand.Rand, n int, amplitude float64) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.Float64() * amplitude
	}
	return v
}

func checkImageSize(size int) error {
	if size < 4 || size&(size-1) != 0 {
		return fmt.Errorf("apps: image size %d must be a power of two of at least 4", size)
	}
	return nil
}
