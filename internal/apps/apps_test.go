package apps

import (
	"math"
	"math/rand"
	"testing"

	"eva/internal/ckks"
	"eva/internal/compile"
	"eva/internal/execute"
)

func matchOutputs(t *testing.T, name string, got, want map[string][]float64, tol float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: output count %d, want %d", name, len(got), len(want))
	}
	for out, w := range want {
		g, ok := got[out]
		if !ok {
			t.Fatalf("%s: missing output %q", name, out)
		}
		for i := range w {
			if math.Abs(g[i]-w[i]) > tol {
				t.Fatalf("%s output %q slot %d: got %g want %g", name, out, i, g[i], w[i])
			}
		}
	}
}

// TestAppsReferenceMatchesPlain validates the program graphs: the EVA
// reference executor must agree with the independent plain implementations.
func TestAppsReferenceMatchesPlain(t *testing.T) {
	suite, err := Suite(64, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(suite) != 6 {
		t.Fatalf("suite has %d apps, want 6", len(suite))
	}
	rng := rand.New(rand.NewSource(11))
	for _, app := range suite {
		in := app.MakeInputs(rng)
		ref, err := execute.RunReference(app.Program, in)
		if err != nil {
			t.Fatalf("%s: %v", app.Name, err)
		}
		matchOutputs(t, app.Name, ref, app.Plain(in), 1e-9)
		if app.LinesOfCode <= 0 || app.Paper.LinesOfCode <= 0 {
			t.Errorf("%s: missing lines-of-code metadata", app.Name)
		}
	}
}

// TestAppsCompile ensures every application compiles under the default
// pipeline and produces sensible parameter plans.
func TestAppsCompile(t *testing.T) {
	suite, err := Suite(64, 8)
	if err != nil {
		t.Fatal(err)
	}
	for _, app := range suite {
		opts := compile.DefaultOptions()
		opts.AllowInsecure = true
		res, err := compile.Compile(app.Program, opts)
		if err != nil {
			t.Fatalf("%s: %v", app.Name, err)
		}
		if res.Plan.NumPrimes() < 2 {
			t.Errorf("%s: suspicious prime count %d", app.Name, res.Plan.NumPrimes())
		}
	}
}

// TestAppsEncryptedExecution runs the cheaper applications end to end under
// encryption and compares against the plain implementation.
func TestAppsEncryptedExecution(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping encrypted application runs in -short mode")
	}
	rng := rand.New(rand.NewSource(12))
	prng := ckks.NewTestPRNG(13)

	cases := []struct {
		app *App
		err error
		tol float64
	}{}
	lin, err := LinearRegression(64)
	cases = append(cases, struct {
		app *App
		err error
		tol float64
	}{lin, err, 1e-3})
	sob, err := SobelFilter(8)
	cases = append(cases, struct {
		app *App
		err error
		tol float64
	}{sob, err, 5e-2})
	path, err := PathLength3D(16)
	cases = append(cases, struct {
		app *App
		err error
		tol float64
	}{path, err, 5e-2})

	for _, c := range cases {
		if c.err != nil {
			t.Fatal(c.err)
		}
		app := c.app
		in := app.MakeInputs(rng)
		want := app.Plain(in)

		opts := compile.DefaultOptions()
		opts.AllowInsecure = true
		res, err := compile.Compile(app.Program, opts)
		if err != nil {
			t.Fatalf("%s: compile: %v", app.Name, err)
		}
		ctx, keys, err := execute.NewContext(res, prng)
		if err != nil {
			t.Fatalf("%s: context: %v", app.Name, err)
		}
		enc, err := execute.EncryptInputs(ctx, res, keys, in, prng)
		if err != nil {
			t.Fatalf("%s: encrypt: %v", app.Name, err)
		}
		out, err := execute.Run(ctx, res, enc, execute.RunOptions{Scheduler: execute.SchedulerParallel})
		if err != nil {
			t.Fatalf("%s: run: %v", app.Name, err)
		}
		dec, _ := execute.DecryptOutputs(ctx, res, keys, out)
		matchOutputs(t, app.Name, dec, want, c.tol)
	}
}

func TestAppArgumentValidation(t *testing.T) {
	if _, err := SobelFilter(3); err == nil {
		t.Error("expected error for non power-of-two image size")
	}
	if _, err := HarrisCornerDetection(2); err == nil {
		t.Error("expected error for tiny image size")
	}
	if _, err := MultivariateRegression(64, 3); err == nil {
		t.Error("expected error for non power-of-two feature count")
	}
	if _, err := MultivariateRegression(4, 8); err == nil {
		t.Error("expected error for feature count exceeding vector size")
	}
	if _, err := Suite(64, 3); err == nil {
		t.Error("expected suite error for bad image size")
	}
}
