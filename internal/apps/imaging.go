package apps

import (
	"fmt"
	"math/rand"

	"eva/internal/builder"
	"eva/internal/execute"
)

// sobelX is the horizontal Sobel kernel; the vertical kernel is its transpose.
var sobelX = [3][3]float64{{-1, 0, 1}, {-2, 0, 2}, {-1, 0, 1}}

// sobelGradients emits the shared gradient computation of the Sobel and
// Harris programs: Ix and Iy from a packed size×size image, using one
// rotation per kernel tap exactly as the PyEVA program of Figure 6 does.
// Rotations are cyclic, so the image border wraps around; the plain
// references below use the same convention.
func sobelGradients(image builder.Expr, size int, scale float64) (ix, iy builder.Expr) {
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			rot := image.RotateLeft(i*size + j)
			h := rot.MulScalar(sobelX[i][j], scale)
			v := rot.MulScalar(sobelX[j][i], scale)
			if i == 0 && j == 0 {
				ix, iy = h, v
				continue
			}
			ix = ix.Add(h)
			iy = iy.Add(v)
		}
	}
	return ix, iy
}

// plainSobelGradients mirrors sobelGradients on plain data.
func plainSobelGradients(img []float64, size int) (ix, iy []float64) {
	n := len(img)
	ix = make([]float64, n)
	iy = make([]float64, n)
	for p := 0; p < n; p++ {
		for i := 0; i < 3; i++ {
			for j := 0; j < 3; j++ {
				v := img[(p+i*size+j)%n]
				ix[p] += v * sobelX[i][j]
				iy[p] += v * sobelX[j][i]
			}
		}
	}
	return ix, iy
}

// SobelFilter builds the Sobel edge-detection program of Figure 6 for a
// size×size encrypted image packed row-major into a single vector. The output
// is the gradient magnitude approximated with the cubic square-root polynomial.
func SobelFilter(size int) (*App, error) {
	if err := checkImageSize(size); err != nil {
		return nil, err
	}
	vecSize := size * size
	const scale = 30
	b := builder.New("sobel", vecSize)
	image := b.Input("image", scale)
	ix, iy := sobelGradients(image, size, scale)
	magnitude := ix.Square().Add(iy.Square()).Polynomial(sqrtPoly, scale)
	b.Output("edges", magnitude, scale)
	prog, err := b.Program()
	if err != nil {
		return nil, fmt.Errorf("apps: sobel: %w", err)
	}
	return &App{
		Name:        "Sobel Filter Detection",
		Program:     prog,
		LinesOfCode: 22,
		Paper:       PaperResult{VectorSize: 4096, LinesOfCode: 35, TimeSeconds: 0.511},
		MakeInputs: func(rng *rand.Rand) execute.Inputs {
			return execute.Inputs{"image": randomImage(rng, vecSize, 0.5)}
		},
		Plain: func(in execute.Inputs) map[string][]float64 {
			img := in["image"]
			ix, iy := plainSobelGradients(img, size)
			out := make([]float64, vecSize)
			for p := range out {
				out[p] = sqrtApprox(ix[p]*ix[p] + iy[p]*iy[p])
			}
			return map[string][]float64{"edges": out}
		},
	}, nil
}

// boxSum3 sums a value over its 3x3 neighbourhood (cyclically) using rotations.
func boxSum3(e builder.Expr, size int) builder.Expr {
	acc := e
	first := true
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if i == 0 && j == 0 {
				continue
			}
			rot := e.RotateLeft(i*size + j)
			if first {
				acc = e.Add(rot)
				first = false
			} else {
				acc = acc.Add(rot)
			}
		}
	}
	return acc
}

func plainBoxSum3(v []float64, size int) []float64 {
	n := len(v)
	out := make([]float64, n)
	for p := 0; p < n; p++ {
		for i := 0; i < 3; i++ {
			for j := 0; j < 3; j++ {
				out[p] += v[(p+i*size+j)%n]
			}
		}
	}
	return out
}

// HarrisCornerDetection builds the Harris corner detector, the most complex
// CKKS application the paper evaluates: Sobel gradients, windowed second
// moments, and the corner response det(M) - k·trace(M)².
func HarrisCornerDetection(size int) (*App, error) {
	if err := checkImageSize(size); err != nil {
		return nil, err
	}
	vecSize := size * size
	const scale = 30
	const k = 0.04
	b := builder.New("harris", vecSize)
	image := b.Input("image", scale)
	ix, iy := sobelGradients(image, size, scale)
	sxx := boxSum3(ix.Square(), size)
	syy := boxSum3(iy.Square(), size)
	sxy := boxSum3(ix.Mul(iy), size)
	det := sxx.Mul(syy).Sub(sxy.Square())
	trace := sxx.Add(syy)
	response := det.Sub(trace.Square().MulScalar(k, scale))
	b.Output("response", response, scale)
	prog, err := b.Program()
	if err != nil {
		return nil, fmt.Errorf("apps: harris: %w", err)
	}
	return &App{
		Name:        "Harris Corner Detection",
		Program:     prog,
		LinesOfCode: 30,
		Paper:       PaperResult{VectorSize: 4096, LinesOfCode: 40, TimeSeconds: 1.004},
		MakeInputs: func(rng *rand.Rand) execute.Inputs {
			return execute.Inputs{"image": randomImage(rng, vecSize, 0.5)}
		},
		Plain: func(in execute.Inputs) map[string][]float64 {
			img := in["image"]
			ix, iy := plainSobelGradients(img, size)
			ix2 := make([]float64, vecSize)
			iy2 := make([]float64, vecSize)
			ixy := make([]float64, vecSize)
			for p := range img {
				ix2[p] = ix[p] * ix[p]
				iy2[p] = iy[p] * iy[p]
				ixy[p] = ix[p] * iy[p]
			}
			sxx := plainBoxSum3(ix2, size)
			syy := plainBoxSum3(iy2, size)
			sxy := plainBoxSum3(ixy, size)
			out := make([]float64, vecSize)
			for p := range out {
				det := sxx[p]*syy[p] - sxy[p]*sxy[p]
				trace := sxx[p] + syy[p]
				out[p] = det - k*trace*trace
			}
			return map[string][]float64{"response": out}
		},
	}, nil
}

// Suite describes the application set of Table 8 at a configurable scale.
// imageSize controls the Sobel/Harris image side; vecSize controls the other
// applications' vector length.
func Suite(vecSize, imageSize int) ([]*App, error) {
	var out []*App
	makers := []func() (*App, error){
		func() (*App, error) { return PathLength3D(vecSize) },
		func() (*App, error) { return LinearRegression(vecSize) },
		func() (*App, error) { return PolynomialRegression(vecSize) },
		func() (*App, error) { return MultivariateRegression(vecSize, 4) },
		func() (*App, error) { return SobelFilter(imageSize) },
		func() (*App, error) { return HarrisCornerDetection(imageSize) },
	}
	for _, mk := range makers {
		app, err := mk()
		if err != nil {
			return nil, err
		}
		out = append(out, app)
	}
	return out, nil
}
