package ckks

import (
	"fmt"

	"eva/internal/numth"
	"eva/internal/ring"
)

// SecretKey is the RLWE secret: a ternary polynomial stored in NTT form over
// the full chain (Value) and over the special prime (ValueSpecial), the
// latter being required when generating switching keys.
type SecretKey struct {
	Value        *ring.Poly
	ValueSpecial []uint64
	signed       []int64 // the raw ternary coefficients, kept to derive rotated secrets
}

// PublicKey is a (b, a) = (-a*s + e, a) RLWE sample in NTT form at the top level.
type PublicKey struct {
	B *ring.Poly
	A *ring.Poly
}

// SwitchingKey re-encrypts, under the owner's secret s, a "foreign" secret s'
// (either s² for relinearization or a rotated copy of s for rotations). It
// holds one RLWE sample per RNS decomposition digit, over the chain primes
// (BQ/AQ) and the special prime (BP/AP), all in NTT form.
type SwitchingKey struct {
	BQ []*ring.Poly
	AQ []*ring.Poly
	BP [][]uint64
	AP [][]uint64
}

// Validate checks that the switching key is well-shaped for the parameter
// set: one digit per chain prime, every chain polynomial carrying a full
// complement of limbs of length N, and special-prime limbs of length N.
// Keys deserialized from untrusted sources must pass this check before use —
// the key-switching kernels assume well-shaped operands.
func (swk *SwitchingKey) Validate(params *Parameters) error {
	digits := params.MaxLevel() + 1
	if len(swk.BQ) != digits || len(swk.AQ) != digits || len(swk.BP) != digits || len(swk.AP) != digits {
		return fmt.Errorf("ckks: switching key has %d/%d/%d/%d digits; want %d",
			len(swk.BQ), len(swk.AQ), len(swk.BP), len(swk.AP), digits)
	}
	n := params.N()
	for j := 0; j < digits; j++ {
		for _, p := range []*ring.Poly{swk.BQ[j], swk.AQ[j]} {
			if p == nil || len(p.Coeffs) != digits {
				return fmt.Errorf("ckks: switching-key digit %d chain polynomial is malformed", j)
			}
			for _, limb := range p.Coeffs {
				if len(limb) != n {
					return fmt.Errorf("ckks: switching-key digit %d has a limb of %d coefficients; ring degree is %d", j, len(limb), n)
				}
			}
		}
		if len(swk.BP[j]) != n || len(swk.AP[j]) != n {
			return fmt.Errorf("ckks: switching-key digit %d special limbs have %d/%d coefficients; want %d", j, len(swk.BP[j]), len(swk.AP[j]), n)
		}
	}
	return nil
}

// RelinearizationKey holds the switching key for s².
type RelinearizationKey struct {
	Key *SwitchingKey
}

// RotationKeySet maps Galois elements to their switching keys. One key per
// distinct rotation step is required, exactly as the paper describes.
type RotationKeySet struct {
	Keys map[uint64]*SwitchingKey
}

// KeyGenerator produces all key material for a parameter set.
type KeyGenerator struct {
	params  *Parameters
	sampler *sampler
}

// NewKeyGenerator returns a key generator; prng may be nil to use a secure default.
func NewKeyGenerator(params *Parameters, prng *PRNG) *KeyGenerator {
	return &KeyGenerator{params: params, sampler: newSampler(params, prng)}
}

// GenSecretKey samples a fresh ternary secret key.
func (kg *KeyGenerator) GenSecretKey() *SecretKey {
	signed := kg.sampler.ternarySigned()
	return kg.secretFromSigned(signed)
}

func (kg *KeyGenerator) secretFromSigned(signed []int64) *SecretKey {
	params := kg.params
	r := params.RingQ()
	sk := &SecretKey{signed: signed}
	sk.Value = kg.sampler.signedToPolyQ(signed, params.MaxLevel())
	r.NTT(sk.Value)
	if sp := params.SpecialModulus(); sp != nil {
		sk.ValueSpecial = kg.sampler.signedToSpecial(signed)
		sp.NTT(sk.ValueSpecial)
	}
	return sk
}

// GenPublicKey derives a public key from the secret key.
func (kg *KeyGenerator) GenPublicKey(sk *SecretKey) *PublicKey {
	params := kg.params
	r := params.RingQ()
	level := params.MaxLevel()
	a := kg.sampler.uniformQ(level, true)
	e := kg.sampler.signedToPolyQ(kg.sampler.gaussianSigned(), level)
	r.NTT(e)
	b := r.NewPoly(level)
	r.MulCoeffs(a, sk.Value, b)
	r.Neg(b, b)
	r.Add(b, e, b)
	return &PublicKey{B: b, A: a}
}

// GenRelinearizationKey generates the switching key for s², enabling
// RELINEARIZE of degree-2 ciphertexts back to degree 1.
func (kg *KeyGenerator) GenRelinearizationKey(sk *SecretKey) (*RelinearizationKey, error) {
	if kg.params.SpecialModulus() == nil {
		return nil, fmt.Errorf("ckks: parameters have no special prime; relinearization keys unavailable")
	}
	r := kg.params.RingQ()
	s2 := r.NewPoly(kg.params.MaxLevel())
	r.MulCoeffs(sk.Value, sk.Value, s2) // NTT domain: s², consistent across limbs since s is tiny
	swk := kg.genSwitchingKey(sk, s2)
	return &RelinearizationKey{Key: swk}, nil
}

// GenRotationKeys generates Galois switching keys for the given rotation
// steps (positive = left rotation, negative = right).
func (kg *KeyGenerator) GenRotationKeys(steps []int, sk *SecretKey) (*RotationKeySet, error) {
	if kg.params.SpecialModulus() == nil {
		return nil, fmt.Errorf("ckks: parameters have no special prime; rotation keys unavailable")
	}
	params := kg.params
	r := params.RingQ()
	set := &RotationKeySet{Keys: make(map[uint64]*SwitchingKey, len(steps))}
	for _, k := range steps {
		galEl := params.GaloisElementForRotation(k)
		if _, done := set.Keys[galEl]; done {
			continue
		}
		// s' = s(X^galEl): permute the secret in coefficient domain.
		sCoeff := sk.Value.CopyNew()
		r.InvNTT(sCoeff)
		sRot := r.NewPoly(params.MaxLevel())
		r.Automorphism(sCoeff, galEl, sRot)
		r.NTT(sRot)
		set.Keys[galEl] = kg.genSwitchingKey(sk, sRot)
	}
	return set, nil
}

// genSwitchingKey builds a switching key encrypting sPrime (NTT form, full
// level) under sk, following the SEAL-style single-special-prime RNS
// construction: digit j carries P·s' in its j-th limb.
func (kg *KeyGenerator) genSwitchingKey(sk *SecretKey, sPrime *ring.Poly) *SwitchingKey {
	params := kg.params
	r := params.RingQ()
	sp := params.SpecialModulus()
	level := params.MaxLevel()
	digits := level + 1
	swk := &SwitchingKey{
		BQ: make([]*ring.Poly, digits),
		AQ: make([]*ring.Poly, digits),
		BP: make([][]uint64, digits),
		AP: make([][]uint64, digits),
	}
	n := params.N()
	for j := 0; j < digits; j++ {
		aQ := kg.sampler.uniformQ(level, true)
		aP := kg.sampler.uniformSpecial()
		eSigned := kg.sampler.gaussianSigned()
		eQ := kg.sampler.signedToPolyQ(eSigned, level)
		r.NTT(eQ)
		eP := kg.sampler.signedToSpecial(eSigned)
		sp.NTT(eP)

		// bQ = -aQ*s + eQ over the chain primes.
		bQ := r.NewPoly(level)
		r.MulCoeffs(aQ, sk.Value, bQ)
		r.Neg(bQ, bQ)
		r.Add(bQ, eQ, bQ)
		// bP = -aP*sP + eP over the special prime.
		bP := make([]uint64, n)
		p := sp.Q
		for t := 0; t < n; t++ {
			bP[t] = numth.AddMod(numth.NegMod(numth.MulMod(aP[t], sk.ValueSpecial[t], p), p), eP[t], p)
		}
		// Add P·s' into limb j only (the RNS decomposition factor).
		qj := r.Moduli[j].Q
		factor := p % qj
		for t := 0; t < n; t++ {
			bQ.Coeffs[j][t] = numth.AddMod(bQ.Coeffs[j][t], numth.MulMod(factor, sPrime.Coeffs[j][t], qj), qj)
		}
		swk.BQ[j], swk.AQ[j], swk.BP[j], swk.AP[j] = bQ, aQ, bP, aP
	}
	return swk
}
