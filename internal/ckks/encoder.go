package ckks

import (
	"fmt"
	"math"
	"math/big"
	"math/cmplx"

	"eva/internal/ring"
)

// Plaintext is an unencrypted ring element carrying a scale and a level, as
// produced by the Encoder and consumed by the Encryptor and by
// plaintext-ciphertext operations.
type Plaintext struct {
	Value *ring.Poly
	Scale float64
	Level int
}

// CopyNew returns a deep copy of the plaintext.
func (p *Plaintext) CopyNew() *Plaintext {
	return &Plaintext{Value: p.Value.CopyNew(), Scale: p.Scale, Level: p.Level}
}

// Encoder maps vectors of complex (or real) numbers to and from CKKS
// plaintexts using the canonical embedding of the 2N-th cyclotomic field
// (the "special FFT" over the orbit of 5 modulo 2N).
type Encoder struct {
	params   *Parameters
	m        int          // 2N
	rotGroup []int        // 5^i mod 2N for i < slots
	roots    []complex128 // exp(2*pi*i*j/m) for j <= m
}

// NewEncoder builds an encoder for the given parameters.
func NewEncoder(params *Parameters) *Encoder {
	slots := params.Slots()
	m := 2 * params.N()
	e := &Encoder{
		params:   params,
		m:        m,
		rotGroup: make([]int, slots),
		roots:    make([]complex128, m+1),
	}
	fivePow := 1
	for i := 0; i < slots; i++ {
		e.rotGroup[i] = fivePow
		fivePow = (fivePow * 5) % m
	}
	for j := 0; j <= m; j++ {
		angle := 2 * math.Pi * float64(j) / float64(m)
		e.roots[j] = cmplx.Rect(1, angle)
	}
	return e
}

// Slots returns the number of plaintext slots.
func (e *Encoder) Slots() int { return e.params.Slots() }

func arrayBitReverse(vals []complex128) {
	n := len(vals)
	for i, j := 1, 0; i < n; i++ {
		bit := n >> 1
		for ; j&bit != 0; bit >>= 1 {
			j ^= bit
		}
		j ^= bit
		if i < j {
			vals[i], vals[j] = vals[j], vals[i]
		}
	}
}

// fftSpecial evaluates the canonical embedding (coefficients -> slot values).
func (e *Encoder) fftSpecial(vals []complex128) {
	n := len(vals)
	arrayBitReverse(vals)
	for length := 2; length <= n; length <<= 1 {
		for i := 0; i < n; i += length {
			lenh := length >> 1
			lenq := length << 2
			for j := 0; j < lenh; j++ {
				idx := (e.rotGroup[j] % lenq) * e.m / lenq
				u := vals[i+j]
				v := vals[i+j+lenh] * e.roots[idx]
				vals[i+j] = u + v
				vals[i+j+lenh] = u - v
			}
		}
	}
}

// fftSpecialInv inverts fftSpecial (slot values -> coefficients).
func (e *Encoder) fftSpecialInv(vals []complex128) {
	n := len(vals)
	for length := n; length >= 2; length >>= 1 {
		for i := 0; i < n; i += length {
			lenh := length >> 1
			lenq := length << 2
			for j := 0; j < lenh; j++ {
				idx := (lenq - (e.rotGroup[j] % lenq)) * e.m / lenq
				u := vals[i+j] + vals[i+j+lenh]
				v := (vals[i+j] - vals[i+j+lenh]) * e.roots[idx]
				vals[i+j] = u
				vals[i+j+lenh] = v
			}
		}
	}
	arrayBitReverse(vals)
	inv := complex(1/float64(n), 0)
	for i := range vals {
		vals[i] *= inv
	}
}

// EncodeComplex encodes up to Slots() complex values at the given scale and
// level. Shorter inputs are replicated to fill all slots (matching EVA's
// treatment of inputs whose vector size divides the slot count); the input
// length must be a power of two.
func (e *Encoder) EncodeComplex(values []complex128, scale float64, level int) (*Plaintext, error) {
	slots := e.params.Slots()
	if len(values) == 0 || len(values) > slots {
		return nil, fmt.Errorf("ckks: encoding %d values into %d slots", len(values), slots)
	}
	if len(values)&(len(values)-1) != 0 {
		return nil, fmt.Errorf("ckks: input length %d is not a power of two", len(values))
	}
	if level < 0 || level > e.params.MaxLevel() {
		return nil, fmt.Errorf("ckks: level %d out of range [0,%d]", level, e.params.MaxLevel())
	}
	if scale <= 0 {
		return nil, fmt.Errorf("ckks: scale must be positive")
	}
	buf := make([]complex128, slots)
	for i := 0; i < slots; i++ {
		buf[i] = values[i%len(values)]
	}
	e.fftSpecialInv(buf)

	r := e.params.RingQ()
	pt := r.NewPoly(level)
	n := e.params.N()
	for j := 0; j < slots; j++ {
		encodeCoefficient(real(buf[j])*scale, j, pt, r)
		encodeCoefficient(imag(buf[j])*scale, j+slots, pt, r)
	}
	_ = n
	r.NTT(pt)
	return &Plaintext{Value: pt, Scale: scale, Level: level}, nil
}

// Encode encodes real values (see EncodeComplex for the semantics of short inputs).
func (e *Encoder) Encode(values []float64, scale float64, level int) (*Plaintext, error) {
	cv := make([]complex128, len(values))
	for i, v := range values {
		cv[i] = complex(v, 0)
	}
	return e.EncodeComplex(cv, scale, level)
}

// EncodeSingle encodes the same scalar in every slot.
func (e *Encoder) EncodeSingle(value float64, scale float64, level int) (*Plaintext, error) {
	return e.Encode([]float64{value}, scale, level)
}

// encodeCoefficient rounds x to the nearest integer and stores its residues
// into coefficient idx of every limb of pt. Values beyond the int64 range are
// handled exactly through big.Float.
func encodeCoefficient(x float64, idx int, pt *ring.Poly, r *ring.Ring) {
	if math.Abs(x) < 9.0e18 {
		c := int64(math.Round(x))
		for i := range pt.Coeffs {
			pt.Coeffs[i][idx] = reduceSigned(c, r.Moduli[i].Q)
		}
		return
	}
	// Exact path for very large scaled values.
	bf := new(big.Float).SetPrec(256).SetFloat64(x)
	bi, _ := bf.Int(nil)
	for i := range pt.Coeffs {
		q := new(big.Int).SetUint64(r.Moduli[i].Q)
		res := new(big.Int).Mod(bi, q)
		pt.Coeffs[i][idx] = res.Uint64()
	}
}

// DecodeComplex decodes a plaintext back into its slot values.
func (e *Encoder) DecodeComplex(pt *Plaintext) []complex128 {
	r := e.params.RingQ()
	value := pt.Value
	if value.IsNTT {
		value = value.CopyNew()
		r.InvNTT(value)
	}
	level := value.Level()
	slots := e.params.Slots()

	coeffs := e.centeredBigCoeffs(value, level)
	buf := make([]complex128, slots)
	scale := pt.Scale
	for j := 0; j < slots; j++ {
		re := bigToFloat(coeffs[j]) / scale
		im := bigToFloat(coeffs[j+slots]) / scale
		buf[j] = complex(re, im)
	}
	e.fftSpecial(buf)
	return buf
}

// Decode decodes a plaintext and returns the real parts of its slot values.
func (e *Encoder) Decode(pt *Plaintext) []float64 {
	cv := e.DecodeComplex(pt)
	out := make([]float64, len(cv))
	for i, c := range cv {
		out[i] = real(c)
	}
	return out
}

// centeredBigCoeffs CRT-reconstructs each coefficient of value as a centered
// big integer modulo the product of the limbs at the given level.
func (e *Encoder) centeredBigCoeffs(value *ring.Poly, level int) []*big.Int {
	r := e.params.RingQ()
	n := e.params.N()

	bigQ := big.NewInt(1)
	for i := 0; i <= level; i++ {
		bigQ.Mul(bigQ, new(big.Int).SetUint64(r.Moduli[i].Q))
	}
	// CRT basis: for each limb, (Q/qi) * ((Q/qi)^-1 mod qi).
	basis := make([]*big.Int, level+1)
	for i := 0; i <= level; i++ {
		qi := new(big.Int).SetUint64(r.Moduli[i].Q)
		qHat := new(big.Int).Div(bigQ, qi)
		qHatInv := new(big.Int).ModInverse(new(big.Int).Mod(qHat, qi), qi)
		basis[i] = new(big.Int).Mul(qHat, qHatInv)
	}
	half := new(big.Int).Rsh(bigQ, 1)
	out := make([]*big.Int, n)
	acc := new(big.Int)
	term := new(big.Int)
	for j := 0; j < n; j++ {
		acc.SetInt64(0)
		for i := 0; i <= level; i++ {
			term.Mul(basis[i], new(big.Int).SetUint64(value.Coeffs[i][j]))
			acc.Add(acc, term)
		}
		acc.Mod(acc, bigQ)
		c := new(big.Int).Set(acc)
		if c.Cmp(half) > 0 {
			c.Sub(c, bigQ)
		}
		out[j] = c
	}
	return out
}

func bigToFloat(x *big.Int) float64 {
	f, _ := new(big.Float).SetInt(x).Float64()
	return f
}
