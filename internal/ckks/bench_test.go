package ckks

import (
	"testing"
)

// benchContext builds a realistic parameter set (N = 2^13, four 40-60 bit
// primes) for micro-benchmarking the primitive homomorphic operations whose
// costs drive every end-to-end number in the paper.
func benchContext(b *testing.B) *testContext {
	return newTestContext(b, 13, []int{60, 40, 40, 40}, 60, 1<<40, []int{1})
}

func benchVectors(tc *testContext) ([]float64, []float64) {
	a := make([]float64, tc.params.Slots())
	c := make([]float64, tc.params.Slots())
	for i := range a {
		a[i] = float64(i%17) / 17
		c[i] = float64(i%13) / 13
	}
	return a, c
}

func BenchmarkEncode(b *testing.B) {
	tc := benchContext(b)
	values, _ := benchVectors(tc)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tc.enc.Encode(values, tc.params.DefaultScale(), tc.params.MaxLevel()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecode(b *testing.B) {
	tc := benchContext(b)
	values, _ := benchVectors(tc)
	pt, _ := tc.enc.Encode(values, tc.params.DefaultScale(), tc.params.MaxLevel())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tc.enc.Decode(pt)
	}
}

func BenchmarkEncrypt(b *testing.B) {
	tc := benchContext(b)
	values, _ := benchVectors(tc)
	pt, _ := tc.enc.Encode(values, tc.params.DefaultScale(), tc.params.MaxLevel())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tc.encr.Encrypt(pt); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecrypt(b *testing.B) {
	tc := benchContext(b)
	values, _ := benchVectors(tc)
	ct := tc.encrypt(b, values)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tc.decr.Decrypt(ct)
	}
}

func BenchmarkAddCiphertexts(b *testing.B) {
	tc := benchContext(b)
	va, vb := benchVectors(tc)
	cta, ctb := tc.encrypt(b, va), tc.encrypt(b, vb)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tc.eval.Add(cta, ctb); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMulCiphertexts(b *testing.B) {
	tc := benchContext(b)
	va, vb := benchVectors(tc)
	cta, ctb := tc.encrypt(b, va), tc.encrypt(b, vb)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tc.eval.Mul(cta, ctb); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMulPlain(b *testing.B) {
	tc := benchContext(b)
	va, vb := benchVectors(tc)
	cta := tc.encrypt(b, va)
	pt, _ := tc.enc.Encode(vb, tc.params.DefaultScale(), tc.params.MaxLevel())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tc.eval.MulPlain(cta, pt); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRelinearize(b *testing.B) {
	tc := benchContext(b)
	va, vb := benchVectors(tc)
	prod, err := tc.eval.Mul(tc.encrypt(b, va), tc.encrypt(b, vb))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tc.eval.Relinearize(prod); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRescale(b *testing.B) {
	tc := benchContext(b)
	va, vb := benchVectors(tc)
	prod, err := tc.eval.Mul(tc.encrypt(b, va), tc.encrypt(b, vb))
	if err != nil {
		b.Fatal(err)
	}
	relin, err := tc.eval.Relinearize(prod)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tc.eval.Rescale(relin); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRotate(b *testing.B) {
	tc := benchContext(b)
	va, _ := benchVectors(tc)
	ct := tc.encrypt(b, va)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tc.eval.RotateLeft(ct, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKeyGeneration(b *testing.B) {
	params := testParams(b, 13, []int{60, 40, 40, 40}, 60, 1<<40)
	prng := NewTestPRNG(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		kg := NewKeyGenerator(params, prng)
		sk := kg.GenSecretKey()
		kg.GenPublicKey(sk)
		if _, err := kg.GenRelinearizationKey(sk); err != nil {
			b.Fatal(err)
		}
	}
}
