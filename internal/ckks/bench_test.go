package ckks

import (
	"testing"
)

// benchContext builds a realistic parameter set (N = 2^13, four 40-60 bit
// primes) for micro-benchmarking the primitive homomorphic operations whose
// costs drive every end-to-end number in the paper.
func benchContext(b *testing.B) *testContext {
	return newTestContext(b, 13, []int{60, 40, 40, 40}, 60, 1<<40, []int{1})
}

func benchVectors(tc *testContext) ([]float64, []float64) {
	a := make([]float64, tc.params.Slots())
	c := make([]float64, tc.params.Slots())
	for i := range a {
		a[i] = float64(i%17) / 17
		c[i] = float64(i%13) / 13
	}
	return a, c
}

func BenchmarkEncode(b *testing.B) {
	tc := benchContext(b)
	values, _ := benchVectors(tc)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tc.enc.Encode(values, tc.params.DefaultScale(), tc.params.MaxLevel()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecode(b *testing.B) {
	tc := benchContext(b)
	values, _ := benchVectors(tc)
	pt, _ := tc.enc.Encode(values, tc.params.DefaultScale(), tc.params.MaxLevel())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tc.enc.Decode(pt)
	}
}

func BenchmarkEncrypt(b *testing.B) {
	tc := benchContext(b)
	values, _ := benchVectors(tc)
	pt, _ := tc.enc.Encode(values, tc.params.DefaultScale(), tc.params.MaxLevel())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tc.encr.Encrypt(pt); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecrypt(b *testing.B) {
	tc := benchContext(b)
	values, _ := benchVectors(tc)
	ct := tc.encrypt(b, values)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tc.decr.Decrypt(ct)
	}
}

func BenchmarkAddCiphertexts(b *testing.B) {
	tc := benchContext(b)
	va, vb := benchVectors(tc)
	cta, ctb := tc.encrypt(b, va), tc.encrypt(b, vb)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tc.eval.Add(cta, ctb); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMulCiphertexts(b *testing.B) {
	tc := benchContext(b)
	va, vb := benchVectors(tc)
	cta, ctb := tc.encrypt(b, va), tc.encrypt(b, vb)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tc.eval.Mul(cta, ctb); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMulPlain(b *testing.B) {
	tc := benchContext(b)
	va, vb := benchVectors(tc)
	cta := tc.encrypt(b, va)
	pt, _ := tc.enc.Encode(vb, tc.params.DefaultScale(), tc.params.MaxLevel())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tc.eval.MulPlain(cta, pt); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRelinearize(b *testing.B) {
	tc := benchContext(b)
	va, vb := benchVectors(tc)
	prod, err := tc.eval.Mul(tc.encrypt(b, va), tc.encrypt(b, vb))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tc.eval.Relinearize(prod); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRescale(b *testing.B) {
	tc := benchContext(b)
	va, vb := benchVectors(tc)
	prod, err := tc.eval.Mul(tc.encrypt(b, va), tc.encrypt(b, vb))
	if err != nil {
		b.Fatal(err)
	}
	relin, err := tc.eval.Relinearize(prod)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tc.eval.Rescale(relin); err != nil {
			b.Fatal(err)
		}
	}
}

// benchRotationContext builds the shared parameter set for the rotation
// benchmarks: N = 2^13 with a deep modulus chain (eight 40-bit scaling primes
// under a 60-bit first prime), the regime EVA's deep circuits — and the
// rotation-heavy matmul/conv kernels riding on them — actually run at. Depth
// matters for the hoisting ratio: the shared decompose half grows
// quadratically with the chain length (digits x limbs transforms) while the
// per-element half stays linear, so shallow chains understate what hoisting
// buys a real workload. Keys for steps 1-8 cover the hoisted batch below.
func benchRotationContext(b *testing.B) *testContext {
	return newTestContext(b, 13, []int{60, 40, 40, 40, 40, 40, 40, 40, 40}, 60, 1<<40,
		[]int{1, 2, 3, 4, 5, 6, 7, 8})
}

func BenchmarkRotate(b *testing.B) {
	tc := benchRotationContext(b)
	va, _ := benchVectors(tc)
	ct := tc.encrypt(b, va)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tc.eval.RotateLeft(ct, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRotateHoisted measures an 8-rotation hoisted batch on the same
// parameters as BenchmarkRotate; the acceptance bar for hoisting is ns/op
// here at less than half of 8x BenchmarkRotate's ns/op.
func BenchmarkRotateHoisted(b *testing.B) {
	tc := benchRotationContext(b)
	va, _ := benchVectors(tc)
	ct := tc.encrypt(b, va)
	ks := []int{1, 2, 3, 4, 5, 6, 7, 8}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tc.eval.RotateHoisted(ct, ks); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKeyGeneration(b *testing.B) {
	params := testParams(b, 13, []int{60, 40, 40, 40}, 60, 1<<40)
	prng := NewTestPRNG(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		kg := NewKeyGenerator(params, prng)
		sk := kg.GenSecretKey()
		kg.GenPublicKey(sk)
		if _, err := kg.GenRelinearizationKey(sk); err != nil {
			b.Fatal(err)
		}
	}
}
