package ckks

import (
	"fmt"

	"eva/internal/numth"
	"eva/internal/ring"
)

// keySwitch applies the switching key swk to the polynomial d (NTT form, at
// the given level), producing the pair (ks0, ks1) such that
// ks0 + ks1·s ≈ d·s', where s' is the secret the switching key encodes
// (s² for relinearization, a rotated s for rotations).
//
// This is the SEAL-style single-special-prime RNS key switch: d is decomposed
// into its RNS limbs, each limb is lifted to the extended basis {q_0..q_level, P},
// multiplied against the matching key digit, and the accumulated result is
// scaled back down by P with rounding.
func (ev *Evaluator) keySwitch(d *ring.Poly, level int, swk *SwitchingKey) (ks0, ks1 *ring.Poly, err error) {
	params := ev.params
	sp := params.SpecialModulus()
	if sp == nil {
		return nil, nil, fmt.Errorf("ckks: key switching requires a special prime")
	}
	if len(swk.BQ) < level+1 {
		return nil, nil, fmt.Errorf("ckks: switching key has %d digits, need %d", len(swk.BQ), level+1)
	}
	r := params.RingQ()
	n := params.N()

	dCoeff := d.CopyNew()
	r.InvNTT(dCoeff)

	acc0Q := r.NewPoly(level)
	acc1Q := r.NewPoly(level)
	acc0Q.IsNTT, acc1Q.IsNTT = true, true
	acc0P := make([]uint64, n)
	acc1P := make([]uint64, n)

	extQ := r.NewPoly(level)
	extP := make([]uint64, n)
	p := sp.Q

	for j := 0; j <= level; j++ {
		qj := r.Moduli[j].Q
		limb := dCoeff.Coeffs[j]
		// Lift limb j to every chain prime at this level and to the special prime.
		r.ExtendBasisSmall(limb, qj, extQ)
		reduceCentered(limb, qj, p, extP)
		r.NTT(extQ)
		sp.NTT(extP)

		r.MulCoeffsAndAdd(extQ, swk.BQ[j], acc0Q)
		r.MulCoeffsAndAdd(extQ, swk.AQ[j], acc1Q)
		mulAddSpecial(extP, swk.BP[j], acc0P, p)
		mulAddSpecial(extP, swk.AP[j], acc1P, p)
		extQ.IsNTT = false // reset for the next iteration's ExtendBasisSmall
	}

	ks0 = ev.modDownByP(acc0Q, acc0P)
	ks1 = ev.modDownByP(acc1Q, acc1P)
	return ks0, ks1, nil
}

// reduceCentered reduces the residues `limb` (modulo srcQ) into dst modulo
// dstQ using centered representatives.
func reduceCentered(limb []uint64, srcQ, dstQ uint64, dst []uint64) {
	srcMod := srcQ % dstQ
	for j, v := range limb {
		if v > srcQ/2 {
			dst[j] = numth.SubMod(v%dstQ, srcMod, dstQ)
		} else {
			dst[j] = v % dstQ
		}
	}
}

// mulAddSpecial accumulates acc += a*b element-wise modulo the special prime.
func mulAddSpecial(a, b, acc []uint64, p uint64) {
	for j := range acc {
		acc[j] = numth.AddMod(acc[j], numth.MulMod(a[j], b[j], p), p)
	}
}

// modDownByP divides the value represented by (accQ, accP) — an RNS value over
// the basis {q_0..q_level, P} in NTT form — by the special prime P with
// rounding, returning the result over {q_0..q_level} in NTT form.
func (ev *Evaluator) modDownByP(accQ *ring.Poly, accP []uint64) *ring.Poly {
	params := ev.params
	r := params.RingQ()
	sp := params.SpecialModulus()
	p := sp.Q
	half := p >> 1

	r.InvNTT(accQ)
	sp.InvNTT(accP)

	level := accQ.Level()
	out := r.NewPoly(level)
	for i := 0; i <= level; i++ {
		q := r.Moduli[i].Q
		pInv := numth.MustInvMod(p%q, q)
		halfMod := half % q
		ai, oi := accQ.Coeffs[i], out.Coeffs[i]
		for j := range oi {
			lastShift := numth.AddMod(accP[j], half, p)
			tmp := numth.SubMod(ai[j], lastShift%q, q)
			tmp = numth.AddMod(tmp, halfMod, q)
			oi[j] = numth.MulMod(tmp, pInv, q)
		}
	}
	r.NTT(out)
	return out
}
