package ckks

import (
	"fmt"

	"eva/internal/numth"
	"eva/internal/ring"
)

// Key switching is split into two halves so rotation batches can share work:
//
//   - decomposeNTT performs the expensive half — the InvNTT of the input and
//     the per-digit mod-up (ExtendBasisSmall/ReduceCentered to the extended
//     basis {q_0..q_level, P}) followed by the forward NTT of every extended
//     digit. Its output depends only on the input polynomial, not on the
//     switching key or the Galois element.
//
//   - keySwitchHoisted performs the cheap half for one key: the inner product
//     of the (optionally automorphism-permuted) extended digits against the
//     key digits, and the final modDownByP.
//
// The hoisting trick (Halevi–Shoup) is that the RNS digit decomposition
// commutes with the Galois automorphism: a digit is a centered lift of a
// per-coefficient residue, the automorphism only permutes and negates
// coefficients, and the centered lift of a negated residue is the negated
// centered lift for odd primes. So φ(decompose(c1)) = decompose(φ(c1))
// bit-exactly, and a batch of rotations of one ciphertext can decompose c1
// once and apply a cheap NTT-domain permutation per Galois element instead of
// redoing the InvNTT/mod-up/NTT per rotation.

// hoistedDecomp holds the decomposed, mod-upped digits of one polynomial:
// extQ[j] is digit j lifted to every chain prime at the decomposition level
// and extP[j] is the same digit's special-prime limb, both in NTT form. The
// buffers come from the evaluator's pools; release with ev.releaseDecomp.
type hoistedDecomp struct {
	level int
	extQ  []*ring.Poly
	extP  []*[]uint64
	// extPView dereferences extP once so the inner-product kernel can take
	// the special-prime digits as a plain [][]uint64.
	extPView [][]uint64
}

// decomposeNTT runs the shared half of a key switch on d (NTT form, at the
// given level): one InvNTT plus, per digit, the basis extension and forward
// NTTs. The result can be fed to keySwitchHoisted any number of times, with
// any switching key and Galois element.
func (ev *Evaluator) decomposeNTT(d *ring.Poly, level int) (*hoistedDecomp, error) {
	params := ev.params
	sp := params.SpecialModulus()
	if sp == nil {
		return nil, fmt.Errorf("ckks: key switching requires a special prime")
	}
	r := params.RingQ()

	dCoeff := ev.pool.Get(level)
	dCoeff.Copy(d)
	r.InvNTT(dCoeff)

	h := &hoistedDecomp{
		level:    level,
		extQ:     make([]*ring.Poly, level+1),
		extP:     make([]*[]uint64, level+1),
		extPView: make([][]uint64, level+1),
	}
	for j := 0; j <= level; j++ {
		qj := r.Moduli[j].Q
		limb := dCoeff.Coeffs[j]
		extQ := ev.pool.Get(level)
		extP := ev.buf.Get()
		r.ExtendBasisSmall(limb, qj, extQ)
		sp.ReduceCentered(limb, qj, *extP)
		r.NTT(extQ)
		sp.NTT(*extP)
		h.extQ[j] = extQ
		h.extP[j] = extP
		h.extPView[j] = *extP
	}
	ev.pool.Put(dCoeff)
	return h, nil
}

// releaseDecomp returns the decomposition's scratch buffers to the pools.
func (ev *Evaluator) releaseDecomp(h *hoistedDecomp) {
	for j := range h.extQ {
		ev.pool.Put(h.extQ[j])
		ev.buf.Put(h.extP[j])
	}
}

// keySwitchHoisted applies the switching key swk to the decomposed digits h,
// producing (ks0, ks1) such that ks0 + ks1·s ≈ φ_galEl(d)·s', where d is the
// polynomial h was decomposed from and s' the secret swk encodes. galEl == 1
// is the identity (plain key switch); odd galEl > 1 permutes each digit in
// the NTT domain before the inner product, which is where a hoisted rotation
// saves its transforms. The returned polynomials come from the evaluator's
// pool; the caller releases them with ev.pool.Put.
//
// h is only read, so concurrent calls with distinct Galois elements may share
// one decomposition.
func (ev *Evaluator) keySwitchHoisted(h *hoistedDecomp, swk *SwitchingKey, galEl uint64) (ks0, ks1 *ring.Poly, err error) {
	params := ev.params
	level := h.level
	if len(swk.BQ) < level+1 {
		return nil, nil, fmt.Errorf("ckks: switching key has %d digits, need %d", len(swk.BQ), level+1)
	}
	r := params.RingQ()
	sp := params.SpecialModulus()
	brP := sp.Barrett()
	var idx []uint32
	if galEl != 1 {
		idx = r.AutomorphismNTTIndex(galEl)
	}

	// The paired inner-product kernels overwrite their accumulators, fuse the
	// Galois permutation into the digit gather, and share each gathered digit
	// between the B and A halves of the key, so there is no zeroing pass, no
	// permutation scratch, a single load of every digit coefficient, and one
	// Barrett reduction per output coefficient regardless of the digit count.
	acc0Q := ev.pool.Get(level)
	acc1Q := ev.pool.Get(level)
	r.InnerProductAutoNTTPair(h.extQ, swk.BQ, swk.AQ, galEl, acc0Q, acc1Q)
	acc0P := ev.buf.Get()
	acc1P := ev.buf.Get()
	ring.InnerProductAutoVecPair(h.extPView, swk.BP, swk.AP, idx, *acc0P, *acc1P, brP)

	ks0 = ev.modDownByP(acc0Q, *acc0P)
	ks1 = ev.modDownByP(acc1Q, *acc1P)
	ev.pool.Put(acc0Q)
	ev.pool.Put(acc1Q)
	ev.buf.Put(acc0P)
	ev.buf.Put(acc1P)
	return ks0, ks1, nil
}

// keySwitch applies the switching key swk to the polynomial d (NTT form, at
// the given level), producing the pair (ks0, ks1) such that
// ks0 + ks1·s ≈ d·s', where s' is the secret the switching key encodes
// (s² for relinearization, a rotated s for rotations). It is the
// decompose-once, switch-once composition of the two halves above.
//
// The returned polynomials are drawn from the evaluator's scratch pool; the
// caller owns them and must release them with ev.pool.Put once their values
// have been consumed.
func (ev *Evaluator) keySwitch(d *ring.Poly, level int, swk *SwitchingKey) (ks0, ks1 *ring.Poly, err error) {
	if len(swk.BQ) < level+1 {
		return nil, nil, fmt.Errorf("ckks: switching key has %d digits, need %d", len(swk.BQ), level+1)
	}
	h, err := ev.decomposeNTT(d, level)
	if err != nil {
		return nil, nil, err
	}
	ks0, ks1, err = ev.keySwitchHoisted(h, swk, 1)
	ev.releaseDecomp(h)
	return ks0, ks1, err
}

// modDownByP divides the value represented by (accQ, accP) — an RNS value over
// the basis {q_0..q_level, P} in NTT form — by the special prime P with
// rounding, returning the result over {q_0..q_level} in NTT form. The result
// comes from the evaluator's pool (every slot is written); accQ is left
// untouched in NTT form, accP is consumed as scratch. All per-limb constants
// are precomputed on the parameter set, so this never runs an inverse on the
// hot path.
//
// The rounded division (acc − [acc]_P + offsets)·P⁻¹ is a per-coefficient
// linear map, so it commutes with the NTT: only the correction term [acc]_P
// needs the coefficient domain (one InvNTT of the single special limb plus
// one forward NTT of the lifted correction), while accQ itself never leaves
// the NTT domain. That replaces the InvNTT of every accumulator limb — per
// key switch, 2·(level+1) limb transforms — with pointwise work, which is
// what makes the per-element half of a hoisted rotation cheap.
func (ev *Evaluator) modDownByP(accQ *ring.Poly, accP []uint64) *ring.Poly {
	params := ev.params
	r := params.RingQ()
	sp := params.SpecialModulus()
	p := sp.Q
	half := p >> 1

	sp.InvNTT(accP)
	// Shift by P/2 once — the shifted residue is shared by every chain limb
	// below, so this single pass replaces a per-limb AddMod. accP is caller
	// scratch and is consumed here.
	for j := range accP {
		accP[j] = numth.AddMod(accP[j], half, p)
	}

	level := accQ.Level()
	out := ev.pool.Get(level)
	// Correction polynomial in the coefficient domain: the centered residue
	// of acc modulo P lifted to each chain prime, with the rounding offsets
	// folded in (out serves as its own scratch).
	for i := 0; i <= level; i++ {
		q := r.Moduli[i].Q
		br := r.Moduli[i].Barrett()
		halfMod := params.pHalfModQ[i]
		oi := out.Coeffs[i]
		for j := range oi {
			oi[j] = numth.SubMod(br.ReduceWord(accP[j]), halfMod, q)
		}
	}
	out.IsNTT = false
	r.NTT(out)
	// out = (accQ − correction)·P⁻¹, pointwise in the NTT domain — exactly
	// the coefficient-domain rounded division pushed through the transform.
	for i := 0; i <= level; i++ {
		q := r.Moduli[i].Q
		pInv := params.pInvModQ[i]
		pInvShoup := params.pInvShoupModQ[i]
		ai, oi := accQ.Coeffs[i], out.Coeffs[i]
		for j := range oi {
			oi[j] = numth.MulModShoup(numth.SubMod(ai[j], oi[j], q), pInv, pInvShoup, q)
		}
	}
	return out
}
