package ckks

import (
	"fmt"

	"eva/internal/numth"
	"eva/internal/ring"
)

// keySwitch applies the switching key swk to the polynomial d (NTT form, at
// the given level), producing the pair (ks0, ks1) such that
// ks0 + ks1·s ≈ d·s', where s' is the secret the switching key encodes
// (s² for relinearization, a rotated s for rotations).
//
// This is the SEAL-style single-special-prime RNS key switch: d is decomposed
// into its RNS limbs, each limb is lifted to the extended basis {q_0..q_level, P},
// multiplied against the matching key digit, and the accumulated result is
// scaled back down by P with rounding.
//
// The returned polynomials are drawn from the evaluator's scratch pool; the
// caller owns them and must release them with ev.pool.Put once their values
// have been consumed.
func (ev *Evaluator) keySwitch(d *ring.Poly, level int, swk *SwitchingKey) (ks0, ks1 *ring.Poly, err error) {
	params := ev.params
	sp := params.SpecialModulus()
	if sp == nil {
		return nil, nil, fmt.Errorf("ckks: key switching requires a special prime")
	}
	if len(swk.BQ) < level+1 {
		return nil, nil, fmt.Errorf("ckks: switching key has %d digits, need %d", len(swk.BQ), level+1)
	}
	r := params.RingQ()
	brP := sp.Barrett()

	dCoeff := ev.pool.Get(level)
	dCoeff.Copy(d)
	r.InvNTT(dCoeff)

	acc0Q := ev.pool.GetZero(level)
	acc1Q := ev.pool.GetZero(level)
	acc0Q.IsNTT, acc1Q.IsNTT = true, true
	acc0P := ev.buf.GetZero()
	acc1P := ev.buf.GetZero()

	extQ := ev.pool.Get(level)
	extP := ev.buf.Get()

	for j := 0; j <= level; j++ {
		qj := r.Moduli[j].Q
		limb := dCoeff.Coeffs[j]
		// Lift limb j to every chain prime at this level and to the special prime.
		r.ExtendBasisSmall(limb, qj, extQ)
		sp.ReduceCentered(limb, qj, *extP)
		r.NTT(extQ)
		sp.NTT(*extP)

		r.MulCoeffsAndAdd(extQ, swk.BQ[j], acc0Q)
		r.MulCoeffsAndAdd(extQ, swk.AQ[j], acc1Q)
		mulAddSpecial(*extP, swk.BP[j], *acc0P, brP)
		mulAddSpecial(*extP, swk.AP[j], *acc1P, brP)
		extQ.IsNTT = false // reset for the next iteration's ExtendBasisSmall
	}
	ev.pool.Put(dCoeff)
	ev.pool.Put(extQ)
	ev.buf.Put(extP)

	ks0 = ev.modDownByP(acc0Q, *acc0P)
	ks1 = ev.modDownByP(acc1Q, *acc1P)
	ev.pool.Put(acc0Q)
	ev.pool.Put(acc1Q)
	ev.buf.Put(acc0P)
	ev.buf.Put(acc1P)
	return ks0, ks1, nil
}

// mulAddSpecial accumulates acc += a*b element-wise modulo the special prime.
func mulAddSpecial(a, b, acc []uint64, br numth.Barrett) {
	q := br.Q
	for j := range acc {
		acc[j] = numth.AddMod(acc[j], br.MulMod(a[j], b[j]), q)
	}
}

// modDownByP divides the value represented by (accQ, accP) — an RNS value over
// the basis {q_0..q_level, P} in NTT form — by the special prime P with
// rounding, returning the result over {q_0..q_level} in NTT form. The result
// comes from the evaluator's pool (every slot is written); accQ and accP are
// left in coefficient form. All per-limb constants are precomputed on the
// parameter set, so this never runs an inverse on the hot path.
func (ev *Evaluator) modDownByP(accQ *ring.Poly, accP []uint64) *ring.Poly {
	params := ev.params
	r := params.RingQ()
	sp := params.SpecialModulus()
	p := sp.Q
	half := p >> 1

	r.InvNTT(accQ)
	sp.InvNTT(accP)

	level := accQ.Level()
	out := ev.pool.Get(level)
	for i := 0; i <= level; i++ {
		q := r.Moduli[i].Q
		br := r.Moduli[i].Barrett()
		pInv := params.pInvModQ[i]
		pInvShoup := params.pInvShoupModQ[i]
		halfMod := params.pHalfModQ[i]
		ai, oi := accQ.Coeffs[i], out.Coeffs[i]
		for j := range oi {
			lastShift := numth.AddMod(accP[j], half, p)
			tmp := numth.SubMod(ai[j], br.ReduceWord(lastShift), q)
			tmp = numth.AddMod(tmp, halfMod, q)
			oi[j] = numth.MulModShoup(tmp, pInv, pInvShoup, q)
		}
	}
	r.NTT(out)
	return out
}
