package ckks

import (
	"math"
	"math/rand"
	"testing"
)

// testContext bundles everything needed for scheme-level tests.
type testContext struct {
	params *Parameters
	enc    *Encoder
	kg     *KeyGenerator
	sk     *SecretKey
	pk     *PublicKey
	rlk    *RelinearizationKey
	rtk    *RotationKeySet
	encr   *Encryptor
	decr   *Decryptor
	eval   *Evaluator
}

func newTestContext(t testing.TB, logN int, logQi []int, logP int, scale float64, rotations []int) *testContext {
	t.Helper()
	params, err := NewParameters(ParametersLiteral{
		LogN: logN, LogQi: logQi, LogP: logP, Scale: scale, AllowInsecure: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	prng := NewTestPRNG(42)
	kg := NewKeyGenerator(params, prng)
	sk := kg.GenSecretKey()
	pk := kg.GenPublicKey(sk)
	var rlk *RelinearizationKey
	var rtk *RotationKeySet
	if logP > 0 {
		rlk, err = kg.GenRelinearizationKey(sk)
		if err != nil {
			t.Fatal(err)
		}
		if len(rotations) > 0 {
			rtk, err = kg.GenRotationKeys(rotations, sk)
			if err != nil {
				t.Fatal(err)
			}
		}
	}
	return &testContext{
		params: params,
		enc:    NewEncoder(params),
		kg:     kg,
		sk:     sk,
		pk:     pk,
		rlk:    rlk,
		rtk:    rtk,
		encr:   NewEncryptor(params, pk, prng),
		decr:   NewDecryptor(params, sk),
		eval:   NewEvaluator(params, EvaluationKeys{Rlk: rlk, Rtk: rtk}),
	}
}

func (tc *testContext) randomVector(seed int64, scale float64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	v := make([]float64, tc.params.Slots())
	for i := range v {
		v[i] = rng.Float64()*2 - 1
		_ = scale
	}
	return v
}

func (tc *testContext) encrypt(t testing.TB, values []float64) *Ciphertext {
	t.Helper()
	pt, err := tc.enc.Encode(values, tc.params.DefaultScale(), tc.params.MaxLevel())
	if err != nil {
		t.Fatal(err)
	}
	ct, err := tc.encr.Encrypt(pt)
	if err != nil {
		t.Fatal(err)
	}
	return ct
}

func (tc *testContext) decryptTo(t testing.TB, ct *Ciphertext) []float64 {
	t.Helper()
	return tc.enc.Decode(tc.decr.Decrypt(ct))
}

func requireClose(t testing.TB, got, want []float64, tol float64, msg string) {
	t.Helper()
	if d := maxAbsDiff(got, want); d > tol {
		t.Fatalf("%s: max error %g exceeds tolerance %g", msg, d, tol)
	}
}

func TestEncryptDecrypt(t *testing.T) {
	tc := newTestContext(t, 12, []int{50, 40}, 50, 1<<40, nil)
	values := tc.randomVector(1, 0)
	ct := tc.encrypt(t, values)
	requireClose(t, tc.decryptTo(t, ct), values, 1e-6, "encrypt/decrypt")
}

func TestHomomorphicAddSub(t *testing.T) {
	tc := newTestContext(t, 12, []int{50, 40}, 50, 1<<40, nil)
	a := tc.randomVector(2, 0)
	b := tc.randomVector(3, 0)
	cta, ctb := tc.encrypt(t, a), tc.encrypt(t, b)

	sum, err := tc.eval.Add(cta, ctb)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]float64, len(a))
	for i := range want {
		want[i] = a[i] + b[i]
	}
	requireClose(t, tc.decryptTo(t, sum), want, 1e-6, "ct+ct")

	diff, err := tc.eval.Sub(cta, ctb)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		want[i] = a[i] - b[i]
	}
	requireClose(t, tc.decryptTo(t, diff), want, 1e-6, "ct-ct")

	neg, err := tc.eval.Negate(cta)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		want[i] = -a[i]
	}
	requireClose(t, tc.decryptTo(t, neg), want, 1e-6, "negate")
}

func TestHomomorphicPlainOps(t *testing.T) {
	tc := newTestContext(t, 12, []int{50, 40}, 50, 1<<40, nil)
	a := tc.randomVector(4, 0)
	b := tc.randomVector(5, 0)
	cta := tc.encrypt(t, a)
	ptb, err := tc.enc.Encode(b, tc.params.DefaultScale(), tc.params.MaxLevel())
	if err != nil {
		t.Fatal(err)
	}

	sum, err := tc.eval.AddPlain(cta, ptb)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]float64, len(a))
	for i := range want {
		want[i] = a[i] + b[i]
	}
	requireClose(t, tc.decryptTo(t, sum), want, 1e-6, "ct+pt")

	diff, err := tc.eval.SubPlain(cta, ptb)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		want[i] = a[i] - b[i]
	}
	requireClose(t, tc.decryptTo(t, diff), want, 1e-6, "ct-pt")

	prod, err := tc.eval.MulPlain(cta, ptb)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		want[i] = a[i] * b[i]
	}
	requireClose(t, tc.decryptTo(t, prod), want, 1e-5, "ct*pt")
	if prod.Scale != cta.Scale*ptb.Scale {
		t.Errorf("ct*pt scale = %g, want %g", prod.Scale, cta.Scale*ptb.Scale)
	}
}

func TestHomomorphicMulRelinearizeRescale(t *testing.T) {
	tc := newTestContext(t, 12, []int{50, 40, 40}, 50, 1<<40, nil)
	a := tc.randomVector(6, 0)
	b := tc.randomVector(7, 0)
	cta, ctb := tc.encrypt(t, a), tc.encrypt(t, b)

	prod, err := tc.eval.Mul(cta, ctb)
	if err != nil {
		t.Fatal(err)
	}
	if prod.Degree() != 2 {
		t.Fatalf("ct*ct degree = %d, want 2", prod.Degree())
	}
	want := make([]float64, len(a))
	for i := range want {
		want[i] = a[i] * b[i]
	}
	// Degree-2 ciphertexts decrypt correctly via c0 + c1 s + c2 s².
	requireClose(t, tc.decryptTo(t, prod), want, 1e-5, "degree-2 product")

	relin, err := tc.eval.Relinearize(prod)
	if err != nil {
		t.Fatal(err)
	}
	if relin.Degree() != 1 {
		t.Fatalf("relinearized degree = %d, want 1", relin.Degree())
	}
	requireClose(t, tc.decryptTo(t, relin), want, 1e-4, "relinearized product")

	rescaled, err := tc.eval.Rescale(relin)
	if err != nil {
		t.Fatal(err)
	}
	if rescaled.Level != relin.Level-1 {
		t.Fatalf("rescaled level = %d, want %d", rescaled.Level, relin.Level-1)
	}
	wantScale := relin.Scale / float64(tc.params.Qi()[relin.Level])
	if math.Abs(rescaled.Scale-wantScale)/wantScale > 1e-12 {
		t.Errorf("rescaled scale = %g, want %g", rescaled.Scale, wantScale)
	}
	requireClose(t, tc.decryptTo(t, rescaled), want, 1e-4, "rescaled product")
}

func TestMultiplicativeDepthTwo(t *testing.T) {
	// x²·y³-style depth: compute ((a·b rescale)·c rescale) and compare.
	tc := newTestContext(t, 12, []int{40, 35, 35}, 50, 1<<35, nil)
	a := tc.randomVector(8, 0)
	b := tc.randomVector(9, 0)
	c := tc.randomVector(10, 0)
	cta, ctb, ctc := tc.encrypt(t, a), tc.encrypt(t, b), tc.encrypt(t, c)

	ab, err := tc.eval.Mul(cta, ctb)
	if err != nil {
		t.Fatal(err)
	}
	ab, err = tc.eval.Relinearize(ab)
	if err != nil {
		t.Fatal(err)
	}
	ab, err = tc.eval.Rescale(ab)
	if err != nil {
		t.Fatal(err)
	}
	// Bring c down to ab's level.
	ctcLow, err := tc.eval.ModSwitch(ctc)
	if err != nil {
		t.Fatal(err)
	}
	abc, err := tc.eval.Mul(ab, ctcLow)
	if err != nil {
		t.Fatal(err)
	}
	abc, err = tc.eval.Relinearize(abc)
	if err != nil {
		t.Fatal(err)
	}
	abc, err = tc.eval.Rescale(abc)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]float64, len(a))
	for i := range want {
		want[i] = a[i] * b[i] * c[i]
	}
	requireClose(t, tc.decryptTo(t, abc), want, 1e-3, "depth-2 product")
}

func TestRotation(t *testing.T) {
	tc := newTestContext(t, 12, []int{50, 40}, 50, 1<<40, []int{1, 2, 5, -1})
	slots := tc.params.Slots()
	values := make([]float64, slots)
	for i := range values {
		values[i] = float64(i % 16)
	}
	ct := tc.encrypt(t, values)
	for _, k := range []int{1, 2, 5} {
		rot, err := tc.eval.RotateLeft(ct, k)
		if err != nil {
			t.Fatal(err)
		}
		want := make([]float64, slots)
		for i := range want {
			want[i] = values[(i+k)%slots]
		}
		requireClose(t, tc.decryptTo(t, rot), want, 1e-4, "rotate left")
	}
	rot, err := tc.eval.RotateRight(ct, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]float64, slots)
	for i := range want {
		want[i] = values[((i-1)+slots)%slots]
	}
	requireClose(t, tc.decryptTo(t, rot), want, 1e-4, "rotate right")

	// Rotation by 0 is the identity and needs no key.
	same, err := tc.eval.RotateLeft(ct, 0)
	if err != nil {
		t.Fatal(err)
	}
	requireClose(t, tc.decryptTo(t, same), values, 1e-6, "rotate by zero")
}

func TestModSwitchPreservesValues(t *testing.T) {
	tc := newTestContext(t, 12, []int{50, 40}, 50, 1<<40, nil)
	values := tc.randomVector(11, 0)
	ct := tc.encrypt(t, values)
	down, err := tc.eval.ModSwitch(ct)
	if err != nil {
		t.Fatal(err)
	}
	if down.Level != ct.Level-1 {
		t.Fatalf("level after modswitch = %d, want %d", down.Level, ct.Level-1)
	}
	if down.Scale != ct.Scale {
		t.Errorf("modswitch changed scale")
	}
	requireClose(t, tc.decryptTo(t, down), values, 1e-6, "modswitch")
}

func TestEvaluatorErrors(t *testing.T) {
	tc := newTestContext(t, 12, []int{50, 40}, 50, 1<<40, nil)
	a := tc.encrypt(t, tc.randomVector(12, 0))
	b := tc.encrypt(t, tc.randomVector(13, 0))

	// Level mismatch.
	bLow, _ := tc.eval.ModSwitch(b)
	if _, err := tc.eval.Add(a, bLow); err == nil {
		t.Error("expected level-mismatch error from Add")
	}
	if _, err := tc.eval.Mul(a, bLow); err == nil {
		t.Error("expected level-mismatch error from Mul")
	}

	// Scale mismatch.
	bBad := b.CopyNew()
	bBad.Scale *= 2
	if _, err := tc.eval.Add(a, bBad); err == nil {
		t.Error("expected scale-mismatch error from Add")
	}
	if _, err := tc.eval.Sub(a, bBad); err == nil {
		t.Error("expected scale-mismatch error from Sub")
	}

	// Degree constraint on multiplication and rotation.
	prod, _ := tc.eval.Mul(a, b)
	if _, err := tc.eval.Mul(prod, a); err == nil {
		t.Error("expected degree error multiplying a degree-2 ciphertext")
	}
	if _, err := tc.eval.RotateLeft(prod, 1); err == nil {
		t.Error("expected degree error rotating a degree-2 ciphertext")
	}

	// Rescaling below level 0.
	low, _ := tc.eval.Rescale(a)
	if _, err := tc.eval.Rescale(low); err == nil {
		t.Error("expected error rescaling at level 0")
	}
	if _, err := tc.eval.ModSwitch(low); err == nil {
		t.Error("expected error modswitching at level 0")
	}

	// Missing rotation key.
	if _, err := tc.eval.RotateLeft(a, 3); err == nil {
		t.Error("expected missing-rotation-key error")
	}
}

func TestParametersAccessors(t *testing.T) {
	params := testParams(t, 12, []int{50, 40, 30}, 55, 1<<40)
	if params.N() != 4096 || params.Slots() != 2048 {
		t.Errorf("N/Slots = %d/%d", params.N(), params.Slots())
	}
	if params.MaxLevel() != 2 {
		t.Errorf("MaxLevel = %d, want 2", params.MaxLevel())
	}
	if params.LogQ() != 120 || params.LogQP() != 175 {
		t.Errorf("LogQ/LogQP = %d/%d", params.LogQ(), params.LogQP())
	}
	if len(params.Qi()) != 3 || len(params.LogQi()) != 3 {
		t.Errorf("Qi/LogQi lengths wrong")
	}
	if params.SpecialPrime() == 0 || params.SpecialModulus() == nil {
		t.Error("special prime missing")
	}
	if params.QAtLevel(0) <= 0 {
		t.Error("QAtLevel(0) not positive")
	}
	other := testParams(t, 12, []int{50, 40, 30}, 55, 1<<40)
	if !params.Equal(other) {
		t.Error("identical literals should produce equal parameters")
	}
	if params.String() == "" {
		t.Error("empty String()")
	}
}

func TestParameterValidation(t *testing.T) {
	cases := []ParametersLiteral{
		{LogN: 5, LogQi: []int{30}, Scale: 1 << 30},                                 // logN too small
		{LogN: 12, LogQi: nil, Scale: 1 << 30},                                      // no primes
		{LogN: 12, LogQi: []int{30}, Scale: 0},                                      // bad scale
		{LogN: 12, LogQi: []int{10}, Scale: 1 << 30, AllowInsecure: true},           // prime too small
		{LogN: 12, LogQi: []int{61}, Scale: 1 << 30, AllowInsecure: true},           // prime too large
		{LogN: 12, LogQi: []int{60, 60}, LogP: 60, Scale: 1 << 30},                  // exceeds security bound
		{LogN: 12, LogQi: []int{30}, LogP: 10, Scale: 1 << 30, AllowInsecure: true}, // bad special prime size
	}
	for i, lit := range cases {
		if _, err := NewParameters(lit); err == nil {
			t.Errorf("case %d: expected parameter validation error", i)
		}
	}
}

func TestMinLogNFor(t *testing.T) {
	cases := []struct {
		logQP, minLogN, want int
	}{
		{100, 10, 12},
		{360, 10, 14},
		{480, 10, 15},
		{810, 10, 15},
		{1225, 10, 16},
		{200, 14, 14},
	}
	for _, c := range cases {
		got, err := MinLogNFor(c.logQP, c.minLogN)
		if err != nil {
			t.Fatalf("MinLogNFor(%d): %v", c.logQP, err)
		}
		if got != c.want {
			t.Errorf("MinLogNFor(%d, %d) = %d, want %d", c.logQP, c.minLogN, got, c.want)
		}
	}
	if _, err := MinLogNFor(5000, 10); err == nil {
		t.Error("expected error for impossible modulus size")
	}
}

func TestGaloisElementForRotation(t *testing.T) {
	params := testParams(t, 11, []int{40}, 0, 1<<30)
	m := uint64(2 * params.N())
	if params.GaloisElementForRotation(0) != 1 {
		t.Error("rotation by 0 should map to Galois element 1")
	}
	if params.GaloisElementForRotation(1) != 5 {
		t.Error("rotation by 1 should map to Galois element 5")
	}
	// Negative rotations wrap around the slot count.
	neg := params.GaloisElementForRotation(-1)
	pos := params.GaloisElementForRotation(params.Slots() - 1)
	if neg != pos {
		t.Errorf("rotation by -1 (%d) != rotation by slots-1 (%d)", neg, pos)
	}
	for _, k := range []int{2, 3, 7} {
		if params.GaloisElementForRotation(k)%2 != 1 || params.GaloisElementForRotation(k) >= m {
			t.Errorf("Galois element for %d out of range", k)
		}
	}
}

func TestCiphertextHelpers(t *testing.T) {
	tc := newTestContext(t, 11, []int{40, 30}, 0, 1<<30, nil)
	ct := NewCiphertext(tc.params, 2, 1, 1<<30)
	if ct.Degree() != 1 || ct.Level != 1 {
		t.Error("NewCiphertext shape wrong")
	}
	cp := ct.CopyNew()
	cp.Value[0].Coeffs[0][0] = 12345
	if ct.Value[0].Coeffs[0][0] == 12345 {
		t.Error("CopyNew did not deep-copy")
	}
	if ct.MemoryBytes() <= 0 {
		t.Error("MemoryBytes not positive")
	}
	if ct.String() == "" {
		t.Error("empty String()")
	}
}

func TestKeyGenErrorsWithoutSpecialPrime(t *testing.T) {
	params := testParams(t, 11, []int{40}, 0, 1<<30)
	kg := NewKeyGenerator(params, NewTestPRNG(1))
	sk := kg.GenSecretKey()
	if _, err := kg.GenRelinearizationKey(sk); err == nil {
		t.Error("expected error generating relinearization key without special prime")
	}
	if _, err := kg.GenRotationKeys([]int{1}, sk); err == nil {
		t.Error("expected error generating rotation keys without special prime")
	}
}
