package ckks

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// Property-based tests of the scheme's algebraic invariants, driven by
// testing/quick over random seeds.

func TestPropertyEncodeDecodeRoundTrip(t *testing.T) {
	params := testParams(t, 11, []int{50}, 0, 1<<35)
	enc := NewEncoder(params)
	property := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		values := make([]float64, params.Slots())
		for i := range values {
			values[i] = rng.Float64()*8 - 4
		}
		pt, err := enc.Encode(values, params.DefaultScale(), 0)
		if err != nil {
			return false
		}
		decoded := enc.Decode(pt)
		for i := range values {
			if math.Abs(decoded[i]-values[i]) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestPropertyHomomorphicLinearity checks Enc(a) + Enc(b) decrypts to a+b and
// that plaintext multiplication distributes over addition, for random vectors.
func TestPropertyHomomorphicLinearity(t *testing.T) {
	tc := newTestContext(t, 12, []int{50, 40}, 50, 1<<40, nil)
	property := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := make([]float64, tc.params.Slots())
		b := make([]float64, tc.params.Slots())
		c := make([]float64, tc.params.Slots())
		for i := range a {
			a[i] = rng.Float64()*2 - 1
			b[i] = rng.Float64()*2 - 1
			c[i] = rng.Float64()*2 - 1
		}
		cta, ctb := tc.encrypt(t, a), tc.encrypt(t, b)
		ptc, err := tc.enc.Encode(c, tc.params.DefaultScale(), tc.params.MaxLevel())
		if err != nil {
			return false
		}
		// (a+b)*c == a*c + b*c (all with plaintext c).
		sum, err := tc.eval.Add(cta, ctb)
		if err != nil {
			return false
		}
		lhs, err := tc.eval.MulPlain(sum, ptc)
		if err != nil {
			return false
		}
		ac, err := tc.eval.MulPlain(cta, ptc)
		if err != nil {
			return false
		}
		bc, err := tc.eval.MulPlain(ctb, ptc)
		if err != nil {
			return false
		}
		rhs, err := tc.eval.Add(ac, bc)
		if err != nil {
			return false
		}
		l := tc.decryptTo(t, lhs)
		r := tc.decryptTo(t, rhs)
		for i := range l {
			want := (a[i] + b[i]) * c[i]
			if math.Abs(l[i]-want) > 1e-4 || math.Abs(r[i]-want) > 1e-4 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 8}); err != nil {
		t.Error(err)
	}
}

// TestPropertyRotationComposition checks that rotating by i and then by j is
// the same as rotating by i+j.
func TestPropertyRotationComposition(t *testing.T) {
	tc := newTestContext(t, 11, []int{50, 40}, 50, 1<<40, []int{1, 2, 3})
	values := make([]float64, tc.params.Slots())
	for i := range values {
		values[i] = float64(i % 32)
	}
	ct := tc.encrypt(t, values)
	property := func(pick uint8) bool {
		i := int(pick%2) + 1 // 1 or 2
		j := 3 - i           // so i+j = 3, for which a key exists
		ri, err := tc.eval.RotateLeft(ct, i)
		if err != nil {
			return false
		}
		rij, err := tc.eval.RotateLeft(ri, j)
		if err != nil {
			return false
		}
		direct, err := tc.eval.RotateLeft(ct, i+j)
		if err != nil {
			return false
		}
		a := tc.decryptTo(t, rij)
		b := tc.decryptTo(t, direct)
		for k := range a {
			if math.Abs(a[k]-b[k]) > 1e-3 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 4}); err != nil {
		t.Error(err)
	}
}
