package ckks

import (
	"testing"
)

// The tests in this file are the allocation regression guards for the pooled
// scratch-buffer design: once the evaluator's pools are warm, the
// relinearize/rotate/rescale hot paths must only allocate their result
// ciphertexts, never the key-switch scratch polynomials (and, per the
// no-inverse-recompute guard, no big-number scratch from re-deriving the
// rescale or mod-down constants that are precomputed on Ring/Parameters).

func TestRelinearizeSteadyStateAllocs(t *testing.T) {
	tc := newTestContext(t, 11, []int{50, 40}, 50, 1<<40, nil)
	va := make([]float64, tc.params.Slots())
	for i := range va {
		va[i] = float64(i%7) / 7
	}
	prod, err := tc.eval.Mul(tc.encrypt(t, va), tc.encrypt(t, va))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tc.eval.Relinearize(prod); err != nil { // warm the pools
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		if _, err := tc.eval.Relinearize(prod); err != nil {
			t.Fatal(err)
		}
	})
	// Seed code allocated 31 objects per op (every scratch poly fresh);
	// the pooled path needs about half that, all attributable to the
	// returned ciphertext. Leave headroom for an occasional GC-emptied pool.
	if allocs > 22 {
		t.Errorf("Relinearize allocates %.0f objects per op in steady state, want <= 22", allocs)
	}
}

func TestRotateSteadyStateAllocs(t *testing.T) {
	tc := newTestContext(t, 11, []int{50, 40}, 50, 1<<40, []int{1})
	va := make([]float64, tc.params.Slots())
	for i := range va {
		va[i] = float64(i%5) / 5
	}
	ct := tc.encrypt(t, va)
	if _, err := tc.eval.RotateLeft(ct, 1); err != nil { // warm the pools
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		if _, err := tc.eval.RotateLeft(ct, 1); err != nil {
			t.Fatal(err)
		}
	})
	// Seed code: 47 objects per rotation (coefficient-domain round trip plus
	// fresh key-switch scratch).
	if allocs > 22 {
		t.Errorf("RotateLeft allocates %.0f objects per op in steady state, want <= 22", allocs)
	}
}

func TestRescaleSteadyStateAllocs(t *testing.T) {
	tc := newTestContext(t, 11, []int{50, 40}, 50, 1<<40, nil)
	va := make([]float64, tc.params.Slots())
	for i := range va {
		va[i] = float64(i%3) / 3
	}
	prod, err := tc.eval.Mul(tc.encrypt(t, va), tc.encrypt(t, va))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tc.eval.Rescale(prod); err != nil { // warm the pools
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		if _, err := tc.eval.Rescale(prod); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 16 {
		t.Errorf("Rescale allocates %.0f objects per op in steady state, want <= 16", allocs)
	}
}

// TestPolyPoolLevels checks the pool hands back polynomials of the requested
// level with a cleared NTT flag, and that GetZero actually zeroes recycled
// buffers.
func TestPolyPoolLevels(t *testing.T) {
	tc := newTestContext(t, 10, []int{45, 40, 40}, 45, 1<<40, nil)
	pp := tc.eval.pool
	for level := 0; level <= tc.params.MaxLevel(); level++ {
		p := pp.Get(level)
		if p.Level() != level {
			t.Fatalf("pool returned level %d, want %d", p.Level(), level)
		}
		if p.IsNTT {
			t.Fatal("pool returned a polynomial with IsNTT set")
		}
		for i := range p.Coeffs {
			for j := range p.Coeffs[i] {
				p.Coeffs[i][j] = 12345
			}
		}
		p.IsNTT = true
		pp.Put(p)
		z := pp.GetZero(level)
		if z.IsNTT {
			t.Fatal("GetZero returned a polynomial with IsNTT set")
		}
		for i := range z.Coeffs {
			for j := range z.Coeffs[i] {
				if z.Coeffs[i][j] != 0 {
					t.Fatal("GetZero returned a dirty polynomial")
				}
			}
		}
		pp.Put(z)
	}
	cp := tc.eval.buf
	b := cp.Get()
	if len(*b) != tc.params.N() {
		t.Fatalf("coeff pool buffer length %d, want %d", len(*b), tc.params.N())
	}
	(*b)[0] = 999
	cp.Put(b)
	if z := cp.GetZero(); (*z)[0] != 0 {
		t.Fatal("coeff pool GetZero returned a dirty buffer")
	}
}
