// Package ckks implements the RNS variant of the CKKS approximate
// homomorphic encryption scheme (Cheon-Kim-Kim-Song, with the full-RNS
// optimizations of Cheon-Han-Kim-Kim-Song). It plays the role that Microsoft
// SEAL plays for the EVA paper: encoding of complex/real vectors into ring
// elements, key generation, encryption, and the homomorphic evaluation
// operations used by the EVA executor (add, subtract, multiply, relinearize,
// rescale, modulus switch, and slot rotation).
//
// The implementation is self-contained (standard library only) and favors
// clarity over raw speed, but its cost profile matches real RNS-CKKS
// libraries: every operation scales with the ring degree N and the number of
// remaining RNS limbs, which is what makes the EVA compiler's
// parameter-minimizing optimizations measurable.
package ckks

import (
	"fmt"
	"math"

	"eva/internal/numth"
	"eva/internal/ring"
)

// MaxLogModulusBits is the largest bit size accepted for a single chain prime
// (SEAL uses 60; see Constraint 4 in the paper).
const MaxLogModulusBits = 60

// heStandardBound maps log2(N) to the maximum total log2(Q*P) permitted for
// 128-bit security by the HomomorphicEncryption.org security standard (the
// table SEAL enforces). Exceeding the bound for a given N is rejected.
var heStandardBound = map[int]int{
	10: 27,
	11: 54,
	12: 109,
	13: 218,
	14: 438,
	15: 881,
	16: 1772,
	17: 3524,
}

// MaxLogQP returns the 128-bit-security bound on the total modulus bit count
// for ring degree 2^logN, or 0 if logN is unsupported.
func MaxLogQP(logN int) int { return heStandardBound[logN] }

// MinLogNFor returns the smallest supported log2(N) whose security bound
// admits a total modulus of logQP bits, or an error if none does.
func MinLogNFor(logQP int, minLogN int) (int, error) {
	for logN := minLogN; logN <= 17; logN++ {
		if bound, ok := heStandardBound[logN]; ok && logQP <= bound {
			return logN, nil
		}
	}
	return 0, fmt.Errorf("ckks: no supported ring degree admits a %d-bit modulus", logQP)
}

// Parameters describes a full RNS-CKKS parameter set: the ring degree, the
// modulus chain (in consumption order: Qi[len-1] is dropped by the first
// RESCALE), the special prime used for key switching, and the default scale.
type Parameters struct {
	logN     int
	logSlots int
	qi       []uint64
	logQi    []int
	p        uint64
	logP     int
	scale    float64
	sigma    float64

	ringQ   *ring.Ring
	special *ring.Modulus

	// Precomputed mod-down constants for the special prime P, indexed by
	// chain-prime position, so keySwitch/modDownByP never run an
	// extended-Euclid inverse on the relinearize/rotate hot path:
	//   pInvModQ[i]      = (P mod q_i)^{-1} mod q_i
	//   pInvShoupModQ[i] = Shoup quotient of pInvModQ[i]
	//   pHalfModQ[i]     = (P/2) mod q_i
	pInvModQ      []uint64
	pInvShoupModQ []uint64
	pHalfModQ     []uint64
}

// ParametersLiteral is the user-facing description from which Parameters are
// generated. LogQi lists the bit sizes of the chain primes with LogQi[0]
// being the base prime (consumed last) and LogQi[len-1] consumed by the
// first rescale. LogP is the special key-switching prime bit size.
type ParametersLiteral struct {
	LogN  int
	LogQi []int
	LogP  int
	Scale float64
	Sigma float64 // standard deviation of the error distribution; 0 means the default 3.2

	// AllowInsecure disables the 128-bit security check on the total modulus
	// size. It exists for unit tests and scaled-down benchmarks that use small
	// rings; production parameter selection never sets it.
	AllowInsecure bool
}

// DefaultSigma is the standard deviation of the RLWE error distribution.
const DefaultSigma = 3.2

// NewParameters generates concrete primes for the literal and validates the
// result against the security standard.
func NewParameters(lit ParametersLiteral) (*Parameters, error) {
	if lit.LogN < 10 || lit.LogN > 17 {
		return nil, fmt.Errorf("ckks: logN %d out of supported range [10,17]", lit.LogN)
	}
	if len(lit.LogQi) == 0 {
		return nil, fmt.Errorf("ckks: at least one chain prime is required")
	}
	if lit.Scale <= 0 {
		return nil, fmt.Errorf("ckks: scale must be positive")
	}
	totalBits := lit.LogP
	for _, b := range lit.LogQi {
		if b < 20 || b > MaxLogModulusBits {
			return nil, fmt.Errorf("ckks: chain prime bit size %d out of range [20,%d]", b, MaxLogModulusBits)
		}
		totalBits += b
	}
	if lit.LogP != 0 && (lit.LogP < 20 || lit.LogP > numth.MaxModulusBits) {
		return nil, fmt.Errorf("ckks: special prime bit size %d out of range", lit.LogP)
	}
	if bound, ok := heStandardBound[lit.LogN]; !lit.AllowInsecure && (!ok || totalBits > bound) {
		return nil, fmt.Errorf("ckks: total modulus of %d bits exceeds the %d-bit security bound for logN=%d (insecure parameters)", totalBits, heStandardBound[lit.LogN], lit.LogN)
	}
	sigma := lit.Sigma
	if sigma == 0 {
		sigma = DefaultSigma
	}

	// Generate distinct primes, grouping requests by bit size so equal bit
	// sizes yield distinct primes.
	used := map[uint64]bool{}
	qi := make([]uint64, len(lit.LogQi))
	for i, b := range lit.LogQi {
		ps, err := numth.GenerateNTTPrimes(b, lit.LogN, 1, used)
		if err != nil {
			return nil, err
		}
		qi[i] = ps[0]
		used[ps[0]] = true
	}
	var p uint64
	if lit.LogP > 0 {
		ps, err := numth.GenerateNTTPrimes(lit.LogP, lit.LogN, 1, used)
		if err != nil {
			return nil, err
		}
		p = ps[0]
	}

	ringQ, err := ring.NewRing(lit.LogN, qi)
	if err != nil {
		return nil, err
	}
	var special *ring.Modulus
	if p != 0 {
		special, err = ring.NewModulus(p, lit.LogN)
		if err != nil {
			return nil, err
		}
	}
	params := &Parameters{
		logN:     lit.LogN,
		logSlots: lit.LogN - 1,
		qi:       qi,
		logQi:    append([]int(nil), lit.LogQi...),
		p:        p,
		logP:     lit.LogP,
		scale:    lit.Scale,
		sigma:    sigma,
		ringQ:    ringQ,
		special:  special,
	}
	if p != 0 {
		params.pInvModQ = make([]uint64, len(qi))
		params.pInvShoupModQ = make([]uint64, len(qi))
		params.pHalfModQ = make([]uint64, len(qi))
		for i, q := range qi {
			params.pInvModQ[i] = numth.MustInvMod(p%q, q)
			params.pInvShoupModQ[i] = numth.ShoupPrecomp(params.pInvModQ[i], q)
			params.pHalfModQ[i] = (p >> 1) % q
		}
	}
	return params, nil
}

// LogN returns log2 of the ring degree.
func (p *Parameters) LogN() int { return p.logN }

// N returns the ring degree.
func (p *Parameters) N() int { return 1 << uint(p.logN) }

// Slots returns the number of plaintext slots (N/2).
func (p *Parameters) Slots() int { return 1 << uint(p.logSlots) }

// LogSlots returns log2 of the slot count.
func (p *Parameters) LogSlots() int { return p.logSlots }

// MaxLevel returns the level of a fresh ciphertext (number of chain primes - 1).
func (p *Parameters) MaxLevel() int { return len(p.qi) - 1 }

// Qi returns the chain primes (consumption order: last element dropped first).
func (p *Parameters) Qi() []uint64 { return append([]uint64(nil), p.qi...) }

// LogQi returns the requested bit sizes of the chain primes.
func (p *Parameters) LogQi() []int { return append([]int(nil), p.logQi...) }

// SpecialPrime returns the key-switching special prime (0 if none).
func (p *Parameters) SpecialPrime() uint64 { return p.p }

// LogQP returns the total bit count of all chain primes plus the special prime.
func (p *Parameters) LogQP() int {
	total := p.logP
	for _, b := range p.logQi {
		total += b
	}
	return total
}

// LogQ returns the total bit count of the chain primes (without the special prime).
func (p *Parameters) LogQ() int {
	total := 0
	for _, b := range p.logQi {
		total += b
	}
	return total
}

// DefaultScale returns the default encoding scale.
func (p *Parameters) DefaultScale() float64 { return p.scale }

// Sigma returns the error distribution standard deviation.
func (p *Parameters) Sigma() float64 { return p.sigma }

// RingQ returns the RNS ring over the chain primes.
func (p *Parameters) RingQ() *ring.Ring { return p.ringQ }

// SpecialModulus returns the precomputed NTT tables of the special prime, or
// nil if the parameter set has no special prime (and therefore cannot
// relinearize or rotate).
func (p *Parameters) SpecialModulus() *ring.Modulus { return p.special }

// QAtLevel returns the product of the chain primes up to the given level as a
// float64 (used for noise-budget style diagnostics only).
func (p *Parameters) QAtLevel(level int) float64 {
	q := 1.0
	for i := 0; i <= level && i < len(p.qi); i++ {
		q *= float64(p.qi[i])
	}
	return q
}

// GaloisElementForRotation returns the Galois automorphism exponent realizing
// a cyclic left rotation of the plaintext slots by k positions (k may be
// negative for right rotations).
func (p *Parameters) GaloisElementForRotation(k int) uint64 {
	slots := uint64(p.Slots())
	m := uint64(2 * p.N())
	kk := ((int64(k) % int64(slots)) + int64(slots)) % int64(slots)
	return numth.PowMod(5, uint64(kk), m)
}

// Equal reports whether two parameter sets use identical primes, degree and scale.
func (p *Parameters) Equal(o *Parameters) bool {
	if p.logN != o.logN || p.p != o.p || p.scale != o.scale || len(p.qi) != len(o.qi) {
		return false
	}
	for i := range p.qi {
		if p.qi[i] != o.qi[i] {
			return false
		}
	}
	return true
}

func (p *Parameters) String() string {
	return fmt.Sprintf("ckks.Parameters{logN=%d, logQP=%d, levels=%d, scale=2^%.0f}",
		p.logN, p.LogQP(), len(p.qi), math.Log2(p.scale))
}
