package ckks

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math"

	"eva/internal/ring"
)

// Binary serialization of ciphertexts, plaintexts and public key material.
// In the paper's deployment model the client encrypts inputs locally and
// ships ciphertexts (and evaluation keys) to the untrusted server, so wire
// formats are part of the system. The format is a simple
// length-prefixed little-endian encoding; it is versioned by a magic byte so
// it can evolve.

const (
	magicCiphertext byte = 0xC1
	magicPlaintext  byte = 0xA1
	magicPublicKey  byte = 0xB1
	magicSecretKey  byte = 0xE1
)

func writePoly(buf *bytes.Buffer, p *ring.Poly) {
	var flags byte
	if p.IsNTT {
		flags = 1
	}
	buf.WriteByte(flags)
	binary.Write(buf, binary.LittleEndian, uint32(len(p.Coeffs)))
	binary.Write(buf, binary.LittleEndian, uint32(len(p.Coeffs[0])))
	for _, limb := range p.Coeffs {
		binary.Write(buf, binary.LittleEndian, limb)
	}
}

func readPoly(r *bytes.Reader) (*ring.Poly, error) {
	flags, err := r.ReadByte()
	if err != nil {
		return nil, fmt.Errorf("ckks: reading polynomial header: %w", err)
	}
	var limbs, n uint32
	if err := binary.Read(r, binary.LittleEndian, &limbs); err != nil {
		return nil, err
	}
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return nil, err
	}
	if limbs == 0 || limbs > 64 || n == 0 || n > (1<<18) {
		return nil, fmt.Errorf("ckks: implausible polynomial shape %dx%d", limbs, n)
	}
	p := &ring.Poly{Coeffs: make([][]uint64, limbs), IsNTT: flags&1 == 1}
	for i := range p.Coeffs {
		p.Coeffs[i] = make([]uint64, n)
		if err := binary.Read(r, binary.LittleEndian, p.Coeffs[i]); err != nil {
			return nil, fmt.Errorf("ckks: reading polynomial limb %d: %w", i, err)
		}
	}
	return p, nil
}

// MarshalBinary encodes the ciphertext.
func (ct *Ciphertext) MarshalBinary() ([]byte, error) {
	buf := &bytes.Buffer{}
	buf.WriteByte(magicCiphertext)
	binary.Write(buf, binary.LittleEndian, uint32(len(ct.Value)))
	binary.Write(buf, binary.LittleEndian, uint32(ct.Level))
	binary.Write(buf, binary.LittleEndian, math.Float64bits(ct.Scale))
	for _, p := range ct.Value {
		writePoly(buf, p)
	}
	return buf.Bytes(), nil
}

// UnmarshalBinary decodes a ciphertext produced by MarshalBinary.
func (ct *Ciphertext) UnmarshalBinary(data []byte) error {
	r := bytes.NewReader(data)
	magic, err := r.ReadByte()
	if err != nil || magic != magicCiphertext {
		return fmt.Errorf("ckks: not a ciphertext payload")
	}
	var size, level uint32
	var scaleBits uint64
	if err := binary.Read(r, binary.LittleEndian, &size); err != nil {
		return err
	}
	if err := binary.Read(r, binary.LittleEndian, &level); err != nil {
		return err
	}
	if err := binary.Read(r, binary.LittleEndian, &scaleBits); err != nil {
		return err
	}
	if size == 0 || size > 8 {
		return fmt.Errorf("ckks: implausible ciphertext size %d", size)
	}
	ct.Value = make([]*ring.Poly, size)
	ct.Level = int(level)
	ct.Scale = math.Float64frombits(scaleBits)
	for i := range ct.Value {
		if ct.Value[i], err = readPoly(r); err != nil {
			return err
		}
	}
	return nil
}

// MarshalBinary encodes the plaintext.
func (pt *Plaintext) MarshalBinary() ([]byte, error) {
	buf := &bytes.Buffer{}
	buf.WriteByte(magicPlaintext)
	binary.Write(buf, binary.LittleEndian, uint32(pt.Level))
	binary.Write(buf, binary.LittleEndian, math.Float64bits(pt.Scale))
	writePoly(buf, pt.Value)
	return buf.Bytes(), nil
}

// UnmarshalBinary decodes a plaintext produced by MarshalBinary.
func (pt *Plaintext) UnmarshalBinary(data []byte) error {
	r := bytes.NewReader(data)
	magic, err := r.ReadByte()
	if err != nil || magic != magicPlaintext {
		return fmt.Errorf("ckks: not a plaintext payload")
	}
	var level uint32
	var scaleBits uint64
	if err := binary.Read(r, binary.LittleEndian, &level); err != nil {
		return err
	}
	if err := binary.Read(r, binary.LittleEndian, &scaleBits); err != nil {
		return err
	}
	pt.Level = int(level)
	pt.Scale = math.Float64frombits(scaleBits)
	pt.Value, err = readPoly(r)
	return err
}

// MarshalBinary encodes the public key.
func (pk *PublicKey) MarshalBinary() ([]byte, error) {
	buf := &bytes.Buffer{}
	buf.WriteByte(magicPublicKey)
	writePoly(buf, pk.B)
	writePoly(buf, pk.A)
	return buf.Bytes(), nil
}

// UnmarshalBinary decodes a public key produced by MarshalBinary.
func (pk *PublicKey) UnmarshalBinary(data []byte) error {
	r := bytes.NewReader(data)
	magic, err := r.ReadByte()
	if err != nil || magic != magicPublicKey {
		return fmt.Errorf("ckks: not a public-key payload")
	}
	if pk.B, err = readPoly(r); err != nil {
		return err
	}
	pk.A, err = readPoly(r)
	return err
}

// MarshalBinary encodes the secret key (including its special-prime limb).
// Handle with care: this is the decryption key.
func (sk *SecretKey) MarshalBinary() ([]byte, error) {
	buf := &bytes.Buffer{}
	buf.WriteByte(magicSecretKey)
	writePoly(buf, sk.Value)
	binary.Write(buf, binary.LittleEndian, uint32(len(sk.ValueSpecial)))
	binary.Write(buf, binary.LittleEndian, sk.ValueSpecial)
	return buf.Bytes(), nil
}

// UnmarshalBinary decodes a secret key produced by MarshalBinary. The raw
// ternary form used to derive rotated secrets is not serialized, so a
// restored secret key can decrypt but cannot generate new rotation keys.
func (sk *SecretKey) UnmarshalBinary(data []byte) error {
	r := bytes.NewReader(data)
	magic, err := r.ReadByte()
	if err != nil || magic != magicSecretKey {
		return fmt.Errorf("ckks: not a secret-key payload")
	}
	if sk.Value, err = readPoly(r); err != nil {
		return err
	}
	var n uint32
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return err
	}
	if n > (1 << 18) {
		return fmt.Errorf("ckks: implausible special-limb length %d", n)
	}
	sk.ValueSpecial = make([]uint64, n)
	return binary.Read(r, binary.LittleEndian, sk.ValueSpecial)
}
