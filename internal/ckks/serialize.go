package ckks

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math"
	"sort"

	"eva/internal/ring"
)

// Binary serialization of ciphertexts, plaintexts and public key material.
// In the paper's deployment model the client encrypts inputs locally and
// ships ciphertexts (and evaluation keys) to the untrusted server, so wire
// formats are part of the system. The format is a simple
// length-prefixed little-endian encoding; it is versioned by a magic byte so
// it can evolve.

const (
	magicCiphertext   byte = 0xC1
	magicPlaintext    byte = 0xA1
	magicPublicKey    byte = 0xB1
	magicSecretKey    byte = 0xE1
	magicSwitchingKey byte = 0xD1
	magicRelinKey     byte = 0xD2
	magicRotationKeys byte = 0xD3
)

func writePoly(buf *bytes.Buffer, p *ring.Poly) {
	var flags byte
	if p.IsNTT {
		flags = 1
	}
	buf.WriteByte(flags)
	binary.Write(buf, binary.LittleEndian, uint32(len(p.Coeffs)))
	binary.Write(buf, binary.LittleEndian, uint32(len(p.Coeffs[0])))
	for _, limb := range p.Coeffs {
		binary.Write(buf, binary.LittleEndian, limb)
	}
}

func readPoly(r *bytes.Reader) (*ring.Poly, error) {
	flags, err := r.ReadByte()
	if err != nil {
		return nil, fmt.Errorf("ckks: reading polynomial header: %w", err)
	}
	var limbs, n uint32
	if err := binary.Read(r, binary.LittleEndian, &limbs); err != nil {
		return nil, err
	}
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return nil, err
	}
	if limbs == 0 || limbs > 64 || n == 0 || n > (1<<18) {
		return nil, fmt.Errorf("ckks: implausible polynomial shape %dx%d", limbs, n)
	}
	p := &ring.Poly{Coeffs: make([][]uint64, limbs), IsNTT: flags&1 == 1}
	for i := range p.Coeffs {
		p.Coeffs[i] = make([]uint64, n)
		if err := binary.Read(r, binary.LittleEndian, p.Coeffs[i]); err != nil {
			return nil, fmt.Errorf("ckks: reading polynomial limb %d: %w", i, err)
		}
	}
	return p, nil
}

// MarshalBinary encodes the ciphertext.
func (ct *Ciphertext) MarshalBinary() ([]byte, error) {
	buf := &bytes.Buffer{}
	buf.WriteByte(magicCiphertext)
	binary.Write(buf, binary.LittleEndian, uint32(len(ct.Value)))
	binary.Write(buf, binary.LittleEndian, uint32(ct.Level))
	binary.Write(buf, binary.LittleEndian, math.Float64bits(ct.Scale))
	for _, p := range ct.Value {
		writePoly(buf, p)
	}
	return buf.Bytes(), nil
}

// UnmarshalBinary decodes a ciphertext produced by MarshalBinary.
func (ct *Ciphertext) UnmarshalBinary(data []byte) error {
	r := bytes.NewReader(data)
	magic, err := r.ReadByte()
	if err != nil || magic != magicCiphertext {
		return fmt.Errorf("ckks: not a ciphertext payload")
	}
	var size, level uint32
	var scaleBits uint64
	if err := binary.Read(r, binary.LittleEndian, &size); err != nil {
		return err
	}
	if err := binary.Read(r, binary.LittleEndian, &level); err != nil {
		return err
	}
	if err := binary.Read(r, binary.LittleEndian, &scaleBits); err != nil {
		return err
	}
	if size == 0 || size > 8 {
		return fmt.Errorf("ckks: implausible ciphertext size %d", size)
	}
	ct.Value = make([]*ring.Poly, size)
	ct.Level = int(level)
	ct.Scale = math.Float64frombits(scaleBits)
	for i := range ct.Value {
		if ct.Value[i], err = readPoly(r); err != nil {
			return err
		}
	}
	return nil
}

// MarshalBinary encodes the plaintext.
func (pt *Plaintext) MarshalBinary() ([]byte, error) {
	buf := &bytes.Buffer{}
	buf.WriteByte(magicPlaintext)
	binary.Write(buf, binary.LittleEndian, uint32(pt.Level))
	binary.Write(buf, binary.LittleEndian, math.Float64bits(pt.Scale))
	writePoly(buf, pt.Value)
	return buf.Bytes(), nil
}

// UnmarshalBinary decodes a plaintext produced by MarshalBinary.
func (pt *Plaintext) UnmarshalBinary(data []byte) error {
	r := bytes.NewReader(data)
	magic, err := r.ReadByte()
	if err != nil || magic != magicPlaintext {
		return fmt.Errorf("ckks: not a plaintext payload")
	}
	var level uint32
	var scaleBits uint64
	if err := binary.Read(r, binary.LittleEndian, &level); err != nil {
		return err
	}
	if err := binary.Read(r, binary.LittleEndian, &scaleBits); err != nil {
		return err
	}
	pt.Level = int(level)
	pt.Scale = math.Float64frombits(scaleBits)
	pt.Value, err = readPoly(r)
	return err
}

// MarshalBinary encodes the public key.
func (pk *PublicKey) MarshalBinary() ([]byte, error) {
	buf := &bytes.Buffer{}
	buf.WriteByte(magicPublicKey)
	writePoly(buf, pk.B)
	writePoly(buf, pk.A)
	return buf.Bytes(), nil
}

// UnmarshalBinary decodes a public key produced by MarshalBinary.
func (pk *PublicKey) UnmarshalBinary(data []byte) error {
	r := bytes.NewReader(data)
	magic, err := r.ReadByte()
	if err != nil || magic != magicPublicKey {
		return fmt.Errorf("ckks: not a public-key payload")
	}
	if pk.B, err = readPoly(r); err != nil {
		return err
	}
	pk.A, err = readPoly(r)
	return err
}

func writeSpecialLimb(buf *bytes.Buffer, limb []uint64) {
	binary.Write(buf, binary.LittleEndian, uint32(len(limb)))
	binary.Write(buf, binary.LittleEndian, limb)
}

func readSpecialLimb(r *bytes.Reader) ([]uint64, error) {
	var n uint32
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return nil, err
	}
	if n > (1 << 18) {
		return nil, fmt.Errorf("ckks: implausible special-limb length %d", n)
	}
	limb := make([]uint64, n)
	if err := binary.Read(r, binary.LittleEndian, limb); err != nil {
		return nil, err
	}
	return limb, nil
}

func writeSwitchingKey(buf *bytes.Buffer, swk *SwitchingKey) {
	binary.Write(buf, binary.LittleEndian, uint32(len(swk.BQ)))
	for j := range swk.BQ {
		writePoly(buf, swk.BQ[j])
		writePoly(buf, swk.AQ[j])
		writeSpecialLimb(buf, swk.BP[j])
		writeSpecialLimb(buf, swk.AP[j])
	}
}

func readSwitchingKey(r *bytes.Reader) (*SwitchingKey, error) {
	var digits uint32
	if err := binary.Read(r, binary.LittleEndian, &digits); err != nil {
		return nil, err
	}
	if digits == 0 || digits > 64 {
		return nil, fmt.Errorf("ckks: implausible switching-key digit count %d", digits)
	}
	swk := &SwitchingKey{
		BQ: make([]*ring.Poly, digits),
		AQ: make([]*ring.Poly, digits),
		BP: make([][]uint64, digits),
		AP: make([][]uint64, digits),
	}
	var err error
	for j := uint32(0); j < digits; j++ {
		if swk.BQ[j], err = readPoly(r); err != nil {
			return nil, err
		}
		if swk.AQ[j], err = readPoly(r); err != nil {
			return nil, err
		}
		if swk.BP[j], err = readSpecialLimb(r); err != nil {
			return nil, err
		}
		if swk.AP[j], err = readSpecialLimb(r); err != nil {
			return nil, err
		}
	}
	return swk, nil
}

// MarshalBinary encodes the switching key.
func (swk *SwitchingKey) MarshalBinary() ([]byte, error) {
	buf := &bytes.Buffer{}
	buf.WriteByte(magicSwitchingKey)
	writeSwitchingKey(buf, swk)
	return buf.Bytes(), nil
}

// UnmarshalBinary decodes a switching key produced by MarshalBinary.
func (swk *SwitchingKey) UnmarshalBinary(data []byte) error {
	r := bytes.NewReader(data)
	magic, err := r.ReadByte()
	if err != nil || magic != magicSwitchingKey {
		return fmt.Errorf("ckks: not a switching-key payload")
	}
	decoded, err := readSwitchingKey(r)
	if err != nil {
		return err
	}
	*swk = *decoded
	return nil
}

// MarshalBinary encodes the relinearization key. In the paper's deployment
// model this is public evaluation material the client ships to the server
// alongside its encrypted inputs.
func (rlk *RelinearizationKey) MarshalBinary() ([]byte, error) {
	buf := &bytes.Buffer{}
	buf.WriteByte(magicRelinKey)
	writeSwitchingKey(buf, rlk.Key)
	return buf.Bytes(), nil
}

// UnmarshalBinary decodes a relinearization key produced by MarshalBinary.
func (rlk *RelinearizationKey) UnmarshalBinary(data []byte) error {
	r := bytes.NewReader(data)
	magic, err := r.ReadByte()
	if err != nil || magic != magicRelinKey {
		return fmt.Errorf("ckks: not a relinearization-key payload")
	}
	rlk.Key, err = readSwitchingKey(r)
	return err
}

// MarshalBinary encodes the rotation key set: one Galois switching key per
// distinct rotation step the compiled program needs. Keys are written in
// ascending Galois-element order so the encoding is deterministic.
func (rtk *RotationKeySet) MarshalBinary() ([]byte, error) {
	buf := &bytes.Buffer{}
	buf.WriteByte(magicRotationKeys)
	galEls := make([]uint64, 0, len(rtk.Keys))
	for galEl := range rtk.Keys {
		galEls = append(galEls, galEl)
	}
	sort.Slice(galEls, func(i, j int) bool { return galEls[i] < galEls[j] })
	binary.Write(buf, binary.LittleEndian, uint32(len(galEls)))
	for _, galEl := range galEls {
		binary.Write(buf, binary.LittleEndian, galEl)
		writeSwitchingKey(buf, rtk.Keys[galEl])
	}
	return buf.Bytes(), nil
}

// UnmarshalBinary decodes a rotation key set produced by MarshalBinary.
func (rtk *RotationKeySet) UnmarshalBinary(data []byte) error {
	r := bytes.NewReader(data)
	magic, err := r.ReadByte()
	if err != nil || magic != magicRotationKeys {
		return fmt.Errorf("ckks: not a rotation-key-set payload")
	}
	var n uint32
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return err
	}
	if n > (1 << 16) {
		return fmt.Errorf("ckks: implausible rotation-key count %d", n)
	}
	rtk.Keys = make(map[uint64]*SwitchingKey, n)
	for i := uint32(0); i < n; i++ {
		var galEl uint64
		if err := binary.Read(r, binary.LittleEndian, &galEl); err != nil {
			return err
		}
		if rtk.Keys[galEl], err = readSwitchingKey(r); err != nil {
			return err
		}
	}
	return nil
}

// MarshalBinary encodes the secret key (including its special-prime limb).
// Handle with care: this is the decryption key.
func (sk *SecretKey) MarshalBinary() ([]byte, error) {
	buf := &bytes.Buffer{}
	buf.WriteByte(magicSecretKey)
	writePoly(buf, sk.Value)
	binary.Write(buf, binary.LittleEndian, uint32(len(sk.ValueSpecial)))
	binary.Write(buf, binary.LittleEndian, sk.ValueSpecial)
	return buf.Bytes(), nil
}

// UnmarshalBinary decodes a secret key produced by MarshalBinary. The raw
// ternary form used to derive rotated secrets is not serialized, so a
// restored secret key can decrypt but cannot generate new rotation keys.
func (sk *SecretKey) UnmarshalBinary(data []byte) error {
	r := bytes.NewReader(data)
	magic, err := r.ReadByte()
	if err != nil || magic != magicSecretKey {
		return fmt.Errorf("ckks: not a secret-key payload")
	}
	if sk.Value, err = readPoly(r); err != nil {
		return err
	}
	var n uint32
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return err
	}
	if n > (1 << 18) {
		return fmt.Errorf("ckks: implausible special-limb length %d", n)
	}
	sk.ValueSpecial = make([]uint64, n)
	return binary.Read(r, binary.LittleEndian, sk.ValueSpecial)
}
